#!/usr/bin/env bash
# Membership smoke test — the split-brain fencing gate run by CI and ctest.
#
# Scenario: two durable backends behind an `mpa forward` front. SIGSTOP
# (not kill) the backend hosting a long mission: the process is alive
# but silent — the classic split brain. The front must declare it down
# past --down-after and fail the mission over to the survivor. When the
# stopped process is SIGCONT'd it wakes as a STALLED INCARNATION (same
# epoch, still executing its orphaned copy); the front's auto-rejoin
# must fence that copy BY NAME before trusting the backend again, so
# exactly ONE terminal result ever reaches a client — byte-identical to
# an uninterrupted reference run — and the fence is visible in stats.
#
# Usage: membership_smoke.sh /path/to/mpa [workdir]
set -u

MPA=${1:?usage: membership_smoke.sh /path/to/mpa [workdir]}
WORKDIR=${2:-.}
JDIR_A="$WORKDIR/member_journal_a"
JDIR_B="$WORKDIR/member_journal_b"
LOG_A="$WORKDIR/member_serve_a.log"
LOG_B="$WORKDIR/member_serve_b.log"
LOG_F="$WORKDIR/member_forward.log"

# All three daemons die with the script on ANY exit path. A SIGSTOPped
# process holds TERM pending until continued, so CONT precedes TERM.
PID_A=
PID_B=
PID_F=
cleanup() {
  for pid in "${PID_F:-}" "${PID_A:-}" "${PID_B:-}"; do
    if [ -n "$pid" ]; then
      kill -CONT "$pid" 2>/dev/null
      kill "$pid" 2>/dev/null
      wait "$pid" 2>/dev/null
    fi
  done
}
trap cleanup EXIT

fail() {
  echo "membership_smoke: $*" >&2
  exit 1
}

# Waits for "listening on A:P" in $1 while pid $2 stays alive; echoes P.
wait_port() {
  local log=$1 pid=$2 port=
  for _ in $(seq 1 300); do
    port=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "$log" 2>/dev/null | head -1)
    if [ -n "$port" ]; then
      echo "$port"
      return 0
    fi
    kill -0 "$pid" 2>/dev/null || return 1
    sleep 0.1
  done
  return 1
}

rm -rf "$JDIR_A" "$JDIR_B"
rm -f "$LOG_A" "$LOG_B" "$LOG_F"

# ---- two durable backends + the federation front -----------------------
"$MPA" serve --arrays 2 --journal "$JDIR_A" --checkpoint-every 3 >"$LOG_A" 2>&1 &
PID_A=$!
"$MPA" serve --arrays 2 --journal "$JDIR_B" --checkpoint-every 3 >"$LOG_B" 2>&1 &
PID_B=$!
PORT_A=$(wait_port "$LOG_A" "$PID_A") \
  || fail "backend A never reported its port: $(cat "$LOG_A" 2>/dev/null)"
PORT_B=$(wait_port "$LOG_B" "$PID_B") \
  || fail "backend B never reported its port: $(cat "$LOG_B" 2>/dev/null)"

# A short southbound io timeout keeps down-detection of the silent (but
# connectable) stopped backend quick: two timed-out polls, not hangs.
"$MPA" forward --poll-ms 100 --down-after 2 --timeout-ms 1500 \
  "127.0.0.1:$PORT_A:$JDIR_A" "127.0.0.1:$PORT_B:$JDIR_B" >"$LOG_F" 2>&1 &
PID_F=$!
PORT_F=$(wait_port "$LOG_F" "$PID_F") \
  || fail "front never reported its port: $(cat "$LOG_F" 2>/dev/null)"

# The membership table knows both incarnations from the boot poll.
"$MPA" backend list --port "$PORT_F" | grep -q "yes" \
  || fail "backend list shows no reachable member"

# ---- long mission, then freeze its host --------------------------------
"$MPA" submit --port "$PORT_F" denoise longrun lanes=2 generations=400 size=32 --detach \
  || fail "long submit failed"

# The journal growing a checkpoint sidecar identifies the hosting
# backend — and proves the mission is genuinely mid-flight.
VICTIM_PID=
VICTIM_PORT=
for _ in $(seq 1 600); do
  if ls "$JDIR_A"/job-*.ckpt >/dev/null 2>&1; then
    VICTIM_PID=$PID_A VICTIM_PORT=$PORT_A
    break
  fi
  if ls "$JDIR_B"/job-*.ckpt >/dev/null 2>&1; then
    VICTIM_PID=$PID_B VICTIM_PORT=$PORT_B
    break
  fi
  kill -0 "$PID_F" 2>/dev/null || fail "front died early: $(cat "$LOG_F")"
  sleep 0.05
done
[ -n "$VICTIM_PID" ] || fail "no checkpoint appeared in either backend journal"

kill -STOP "$VICTIM_PID" || fail "could not SIGSTOP the victim"

# ---- the failover lands while the corpse is still frozen ---------------
RECOVERED=$("$MPA" result --port "$PORT_F" --job longrun --retries 5 --timeout-ms 8000) \
  || fail "result after SIGSTOP failed: $RECOVERED"
REC_LINE=$(echo "$RECOVERED" | sed -n 's/.*\(fitness [0-9]*, genotype [0-9a-fx]*\).*/\1/p' | head -1)
[ -n "$REC_LINE" ] || fail "cannot parse failed-over result: $RECOVERED"

REFERENCE=$("$MPA" submit --port "$PORT_F" denoise reference lanes=2 generations=400 size=32 --quiet) \
  || fail "reference submit failed: $REFERENCE"
REF_LINE=$(echo "$REFERENCE" | sed -n 's/.*\(fitness [0-9]*, genotype [0-9a-fx]*\).*/\1/p' | head -1)
[ -n "$REF_LINE" ] || fail "cannot parse reference result: $REFERENCE"
[ "$REC_LINE" = "$REF_LINE" ] \
  || fail "failed-over result differs from uninterrupted run: recovered='$REC_LINE' reference='$REF_LINE'"

# First terminal wins: a repeat read serves the identical cached payload.
AGAIN=$("$MPA" result --port "$PORT_F" --job longrun --retries 5 --timeout-ms 8000) \
  || fail "repeat result failed: $AGAIN"
AGAIN_LINE=$(echo "$AGAIN" | sed -n 's/.*\(fitness [0-9]*, genotype [0-9a-fx]*\).*/\1/p' | head -1)
[ "$AGAIN_LINE" = "$REC_LINE" ] \
  || fail "repeat result diverged: first='$REC_LINE' repeat='$AGAIN_LINE'"

# ---- thaw the corpse: the stalled incarnation must be fenced -----------
kill -CONT "$VICTIM_PID" || fail "could not SIGCONT the victim"

FENCES=
for _ in $(seq 1 60); do
  STATS=$("$MPA" stats --port "$PORT_F" --timeout-ms 4000 2>/dev/null)
  FENCES=$(echo "$STATS" | sed -n 's/.*[ (]\([0-9][0-9]*\) fence cancels.*/\1/p' | head -1)
  if [ -n "$FENCES" ] && [ "$FENCES" -ge 1 ]; then
    break
  fi
  FENCES=
  kill -0 "$PID_F" 2>/dev/null || fail "front died during rejoin: $(cat "$LOG_F")"
  sleep 0.3
done
[ -n "$FENCES" ] || fail "fence cancel never showed up in stats"
echo "membership_smoke: fence visible ($FENCES cancel(s))"

# The corpse's own ledger confirms its copy was cancelled BY NAME — it
# never produced (and can never produce) a second terminal result.
FENCED=0
for _ in $(seq 1 60); do
  if "$MPA" ps --port "$VICTIM_PORT" --timeout-ms 4000 2>/dev/null \
      | grep -q "longrun.*cancelled"; then
    FENCED=1
    break
  fi
  sleep 0.3
done
[ "$FENCED" = 1 ] || fail "stalled incarnation was never cancelled on the corpse"

# The rejoin + fence are part of the public health story.
HEALTH=$("$MPA" health --port "$PORT_F" --cluster --timeout-ms 4000) \
  || fail "health --cluster failed after rejoin: $HEALTH"
echo "$HEALTH" | grep -qi "rejoin" \
  || fail "health --cluster does not show the rejoin fence: $HEALTH"

# The revived member is a full citizen again: routed work still lands.
POST=$("$MPA" submit --port "$PORT_F" denoise postfence lanes=1 generations=8 size=16) \
  || fail "post-fence submit failed: $POST"
echo "$POST" | grep -q "done: fitness" || fail "no post-fence result in: $POST"

"$MPA" drain --port "$PORT_F" --wait || fail "front drain failed"
wait "$PID_F" || fail "front exited non-zero after drain"
PID_F=

echo "membership_smoke: OK ($REC_LINE, fences=$FENCES)"
