#!/usr/bin/env bash
# End-to-end mission-service smoke test, exercising the real binaries the
# way an operator would: start `mpa serve` on an ephemeral loopback port,
# submit a mission with `mpa submit` from another process, inspect it
# with `mpa ps`, then gracefully drain the daemon and check it exits
# cleanly having completed the mission.
#
# Usage: service_smoke.sh /path/to/mpa [workdir]
set -u

MPA=${1:?usage: service_smoke.sh /path/to/mpa [workdir]}
WORKDIR=${2:-.}
LOG="$WORKDIR/service_smoke_serve.log"
SUBMIT_OUT="$WORKDIR/service_smoke_submit.log"

# The daemon dies with the script on ANY exit path (fail, set -u abort,
# test-harness timeout sending TERM) — never leak an orphaned server.
SERVER_PID=
cleanup() {
  if [ -n "${SERVER_PID:-}" ]; then
    kill "$SERVER_PID" 2>/dev/null
    wait "$SERVER_PID" 2>/dev/null
  fi
}
trap cleanup EXIT

fail() {
  echo "service_smoke: $*" >&2
  exit 1
}

rm -f "$LOG" "$SUBMIT_OUT"
"$MPA" serve --arrays 2 --max-inflight 4 >"$LOG" 2>&1 &
SERVER_PID=$!

# The daemon prints its (ephemeral) port on the first line; wait for it.
PORT=
for _ in $(seq 1 300); do
  PORT=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "$LOG" 2>/dev/null | head -1)
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "daemon died: $(cat "$LOG" 2>/dev/null)"
  sleep 0.1
done
[ -n "$PORT" ] || fail "daemon never reported its port"

"$MPA" submit --port "$PORT" denoise smoke lanes=1 generations=8 size=16 \
  >"$SUBMIT_OUT" 2>&1 || fail "submit failed: $(cat "$SUBMIT_OUT")"
grep -q "done: fitness" "$SUBMIT_OUT" || fail "no result in: $(cat "$SUBMIT_OUT")"

"$MPA" ps --port "$PORT" | grep -q "smoke.*done" || fail "ps does not show the finished job"

"$MPA" cancel --port "$PORT" --job 999 >/dev/null 2>&1 && fail "cancel of unknown job must exit non-zero"

"$MPA" drain --port "$PORT" --wait || fail "drain failed"
wait "$SERVER_PID" || fail "daemon exited non-zero after drain"
SERVER_PID=  # exited cleanly; nothing left for the trap
grep -q "drained after 1 missions (1 done" "$LOG" || fail "unexpected drain summary: $(cat "$LOG")"

echo "service_smoke: OK (port $PORT)"
