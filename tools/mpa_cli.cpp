// mpa — the command-line front end to the MPA-EHW library.
//
// Subcommands:
//   info      [--stages N]                       resource model + floorplan
//   evolve    --train in.pgm --ref ref.pgm       evolve a filter on the
//             [--arrays N] [--generations N]     platform and append it to
//             [--two-level] [--seed N]           a genotype library file
//             --lib filters.txt --name NAME
//   filter    --lib filters.txt --name NAME      apply a saved filter
//             --in x.pgm --out y.pgm
//   schematic --lib filters.txt --name NAME      ASCII circuit + liveness
//   campaign  --lib filters.txt --name NAME      systematic PE fault
//             --train in.pgm --ref ref.pgm       campaign + criticality map
//   batch     --manifest jobs.txt [--arrays N]   run a manifest of
//             [--cache N] [--sequential]         heterogeneous missions
//                                                concurrently on one
//                                                scheduler ArrayPool
//   demo      [--size N] [--noise D]             end-to-end synthetic demo
//
// Every run is deterministic for a given --seed; batch results are
// bit-identical whether jobs are multiplexed or run --sequential.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "ehw/analysis/campaign.hpp"
#include "ehw/analysis/report.hpp"
#include "ehw/common/cli.hpp"
#include "ehw/common/table.hpp"
#include "ehw/evo/serialize.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/noise.hpp"
#include "ehw/img/pgm_io.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/pe/liveness.hpp"
#include "ehw/platform/evolution_driver.hpp"
#include "ehw/resources/floorplan.hpp"
#include "ehw/resources/model.hpp"
#include "ehw/sched/array_pool.hpp"
#include "ehw/sched/missions.hpp"

namespace {

using namespace ehw;

constexpr const char* kInfoUsage = "mpa info [--stages N]";
constexpr const char* kEvolveUsage =
    "mpa evolve --train in.pgm --ref ref.pgm --lib filters.txt --name NAME "
    "[--arrays N] [--generations N] [--rate K] [--two-level] [--seed N]";
constexpr const char* kFilterUsage =
    "mpa filter --lib filters.txt --name NAME --in x.pgm --out y.pgm";
constexpr const char* kSchematicUsage =
    "mpa schematic --lib filters.txt --name NAME";
constexpr const char* kCampaignUsage =
    "mpa campaign --lib filters.txt --name NAME --train in.pgm --ref ref.pgm "
    "[--recover] [--generations N]";
constexpr const char* kBatchUsage =
    "mpa batch --manifest jobs.txt [--arrays N] [--cache N] [--max-jobs N] "
    "[--sequential]";
constexpr const char* kDemoUsage = "mpa demo [--size N] [--noise D] [--seed N]";

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: mpa <info|evolve|filter|schematic|campaign|batch|demo> "
               "[options]\n"
               "  %s\n  %s\n  %s\n  %s\n  %s\n  %s\n  %s\n",
               kInfoUsage, kEvolveUsage, kFilterUsage, kSchematicUsage,
               kCampaignUsage, kBatchUsage, kDemoUsage);
}

int usage() {
  print_usage(stderr);
  return 2;
}

[[noreturn]] void fail(const std::string& message,
                       const char* cmd_usage = nullptr) {
  std::fprintf(stderr, "mpa: %s\n", message.c_str());
  if (cmd_usage != nullptr) std::fprintf(stderr, "usage: %s\n", cmd_usage);
  std::exit(1);
}

/// Required-option lookup: a missing or valueless option prints the
/// subcommand's usage and exits non-zero instead of running ahead.
std::string require(const Cli& cli, const std::string& key,
                    const char* cmd_usage) {
  const std::string v = cli.get(key, "");
  if (v.empty()) fail("missing required option --" + key, cmd_usage);
  return v;
}

int cmd_info(const Cli& cli) {
  const auto stages = static_cast<std::size_t>(cli.get_int("stages", 3));
  resources::render_floorplan(std::cout, stages);
  const resources::UtilizationReport report = resources::utilization(stages);
  Table table({"module", "instances", "slices (total)"});
  for (const auto& m : report.modules) {
    table.add_row({m.module, Table::integer(m.instances),
                   Table::integer(m.total().slices)});
  }
  table.add_row({"TOTAL", "", Table::integer(report.total.slices)});
  table.print(std::cout);
  std::printf("device occupancy: %.1f%% of a Virtex-5 LX110T\n",
              report.device_slice_percent);
  return 0;
}

platform::PlatformConfig make_platform_config(const Cli& cli,
                                              std::size_t line_width,
                                              ThreadPool* pool) {
  platform::PlatformConfig pc;
  pc.num_arrays = static_cast<std::size_t>(cli.get_int("arrays", 3));
  pc.line_width = line_width;
  pc.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  pc.pool = pool;
  return pc;
}

int cmd_evolve(const Cli& cli) {
  const img::Image train = img::read_pgm(require(cli, "train", kEvolveUsage));
  const img::Image ref = img::read_pgm(require(cli, "ref", kEvolveUsage));
  if (!train.same_shape(ref)) fail("train/ref images differ in shape");
  const std::string lib_path = require(cli, "lib", kEvolveUsage);
  const std::string name = require(cli, "name", kEvolveUsage);

  ThreadPool pool;
  platform::EvolvablePlatform plat(
      make_platform_config(cli, train.width(), &pool));
  std::vector<std::size_t> lanes(plat.num_arrays());
  for (std::size_t a = 0; a < lanes.size(); ++a) lanes[a] = a;

  evo::EsConfig es;
  es.generations =
      static_cast<Generation>(cli.get_int("generations", 2000));
  es.mutation_rate = static_cast<std::size_t>(cli.get_int("rate", 3));
  es.two_level = cli.has("two-level");
  es.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const platform::IntrinsicResult r =
      platform::evolve_on_platform(plat, lanes, train, ref, es);

  std::printf("evolved %llu generations, fitness %llu, %.2f s simulated, "
              "%llu DPR writes\n",
              static_cast<unsigned long long>(r.es.generations_run),
              static_cast<unsigned long long>(r.es.best_fitness),
              sim::to_seconds(r.duration),
              static_cast<unsigned long long>(r.pe_writes));

  evo::GenotypeLibrary lib;
  std::ifstream existing(lib_path);
  if (existing) lib = evo::GenotypeLibrary::load(existing);
  lib.put(name, r.es.best);
  lib.save_file(lib_path);
  std::printf("saved '%s' to %s (%zu entries)\n", name.c_str(),
              lib_path.c_str(), lib.size());
  return 0;
}

int cmd_filter(const Cli& cli) {
  const evo::GenotypeLibrary lib =
      evo::GenotypeLibrary::load_file(require(cli, "lib", kFilterUsage));
  const std::string name = require(cli, "name", kFilterUsage);
  if (!lib.contains(name)) fail("library has no entry '" + name + "'");
  const img::Image in = img::read_pgm(require(cli, "in", kFilterUsage));
  const std::string out_path = require(cli, "out", kFilterUsage);

  ThreadPool pool;
  platform::EvolvablePlatform plat(
      make_platform_config(cli, in.width(), &pool));
  plat.configure_array(0, lib.get(name), 0);
  const img::Image out = plat.process_independent(0, in);
  img::write_pgm(out, out_path);
  std::printf("filtered %zux%zu image with '%s' -> %s\n", in.width(),
              in.height(), name.c_str(), out_path.c_str());
  return 0;
}

int cmd_schematic(const Cli& cli) {
  const evo::GenotypeLibrary lib =
      evo::GenotypeLibrary::load_file(require(cli, "lib", kSchematicUsage));
  const std::string name = require(cli, "name", kSchematicUsage);
  if (!lib.contains(name)) fail("library has no entry '" + name + "'");
  const evo::Genotype& g = lib.get(name);
  std::printf("%s\n%s", g.to_string().c_str(),
              pe::render_schematic(g.to_array()).c_str());
  return 0;
}

int cmd_campaign(const Cli& cli) {
  const evo::GenotypeLibrary lib =
      evo::GenotypeLibrary::load_file(require(cli, "lib", kCampaignUsage));
  const std::string name = require(cli, "name", kCampaignUsage);
  if (!lib.contains(name)) fail("library has no entry '" + name + "'");
  const img::Image train = img::read_pgm(require(cli, "train", kCampaignUsage));
  const img::Image ref = img::read_pgm(require(cli, "ref", kCampaignUsage));

  ThreadPool pool;
  platform::EvolvablePlatform plat(
      make_platform_config(cli, train.width(), &pool));
  plat.configure_array(0, lib.get(name), 0);

  analysis::CampaignConfig ccfg;
  ccfg.run_recovery = cli.has("recover");
  ccfg.recovery_es.generations =
      static_cast<Generation>(cli.get_int("generations", 500));
  const analysis::CampaignResult result =
      analysis::run_pe_fault_campaign(plat, 0, train, ref, ccfg);
  analysis::render_criticality_map(std::cout, result, plat.config().shape);
  analysis::render_campaign_table(std::cout, result);
  return 0;
}

const char* status_name(sched::JobStatus status) {
  switch (status) {
    case sched::JobStatus::kQueued: return "queued";
    case sched::JobStatus::kRunning: return "running";
    case sched::JobStatus::kDone: return "done";
    case sched::JobStatus::kFailed: return "FAILED";
    case sched::JobStatus::kCancelled: return "cancelled";
  }
  return "?";
}

int cmd_batch(const Cli& cli) {
  const std::string manifest_path = require(cli, "manifest", kBatchUsage);
  std::ifstream manifest(manifest_path);
  if (!manifest) fail("cannot open manifest " + manifest_path, kBatchUsage);
  const std::vector<sched::MissionSpec> specs =
      sched::parse_manifest(manifest);
  if (specs.empty()) fail("manifest has no jobs: " + manifest_path);

  sched::PoolConfig pool_config;
  pool_config.num_arrays =
      static_cast<std::size_t>(cli.get_int("arrays", 8));
  pool_config.cache_capacity =
      static_cast<std::size_t>(cli.get_int("cache", 512));
  pool_config.max_concurrent_jobs =
      static_cast<std::size_t>(cli.get_int("max-jobs", 0));
  if (cli.has("sequential")) pool_config.max_concurrent_jobs = 1;
  ThreadPool host_pool;
  pool_config.host_pool = &host_pool;

  sched::ArrayPool pool(pool_config);
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<sched::MissionRunner>> runners;
  runners.reserve(specs.size());
  for (const sched::MissionSpec& spec : specs) {
    runners.push_back(pool.submit(sched::make_job_config(spec),
                                  sched::make_job_body(spec)));
  }
  pool.wait_all();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  const sched::ArrayPool::ScheduleReport schedule = pool.simulated_schedule();

  Table table({"job", "kind", "lanes", "status", "gens", "fitness", "sim s",
               "pool window s", "cache hit%"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const sched::MissionSpec& spec = specs[i];
    const sched::JobOutcome& outcome = runners[i]->result();
    const bool cascade = spec.kind == sched::MissionKind::kCascade;
    const Fitness fitness = cascade ? outcome.cascade.chain_fitness
                                    : outcome.intrinsic.es.best_fitness;
    const auto generations =
        cascade ? static_cast<std::uint64_t>(spec.generations)
                : static_cast<std::uint64_t>(
                      outcome.intrinsic.es.generations_run);
    const sched::ArrayPool::ScheduleEntry& window = schedule.jobs[i];
    table.add_row(
        {spec.name, sched::kind_name(spec.kind), Table::integer(spec.lanes),
         status_name(runners[i]->status()), Table::integer(generations),
         Table::integer(fitness),
         Table::num(sim::to_seconds(outcome.stats.mission_time), 3),
         Table::num(sim::to_seconds(window.start), 3) + "-" +
             Table::num(sim::to_seconds(window.end), 3),
         Table::num(100.0 * outcome.stats.cache_hit_rate(), 1)});
    if (runners[i]->status() == sched::JobStatus::kFailed) {
      std::fprintf(stderr, "mpa batch: job '%s' failed: %s\n",
                   spec.name.c_str(), outcome.error.c_str());
    }
  }
  table.print(std::cout);

  const sched::CacheStats cache = pool.cache_stats();
  std::printf(
      "pool: %zu arrays, %zu jobs | simulated makespan %.3f s "
      "(serialized %.3f s, speedup %.2fx, %.2f missions/sim-s)\n"
      "compiled-array cache: %llu hits / %llu misses (%.1f%% hit rate, "
      "%llu evictions) | host wall %.0f ms\n",
      pool.num_arrays(), specs.size(), sim::to_seconds(schedule.makespan),
      sim::to_seconds(schedule.serialized), schedule.speedup(),
      schedule.missions_per_sim_second(),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses), 100.0 * cache.hit_rate(),
      static_cast<unsigned long long>(cache.evictions), wall_ms);

  for (const auto& runner : runners) {
    if (runner->status() != sched::JobStatus::kDone) return 1;
  }
  return 0;
}

int cmd_demo(const Cli& cli) {
  const auto size = static_cast<std::size_t>(cli.get_int("size", 64));
  const double noise = cli.get_double("noise", 0.3);
  const img::Image clean = img::make_scene(size, size, 7);
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));
  const img::Image noisy = img::add_salt_pepper(clean, noise, rng);
  img::write_pgm(clean, "demo_ref.pgm");
  img::write_pgm(noisy, "demo_train.pgm");
  std::printf(
      "wrote demo_train.pgm / demo_ref.pgm (%zux%zu, %.0f%% salt&pepper)\n"
      "try:\n"
      "  mpa evolve --train demo_train.pgm --ref demo_ref.pgm "
      "--lib demo_lib.txt --name denoise --generations 2000\n"
      "  mpa filter --lib demo_lib.txt --name denoise --in demo_train.pgm "
      "--out demo_out.pgm\n"
      "  mpa schematic --lib demo_lib.txt --name denoise\n"
      "  mpa campaign --lib demo_lib.txt --name denoise --train "
      "demo_train.pgm --ref demo_ref.pgm --recover\n",
      size, size, noise * 100);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    print_usage(stdout);
    return 0;
  }
  const Cli cli(argc - 1, argv + 1);
  try {
    if (cmd == "info") return cmd_info(cli);
    if (cmd == "evolve") return cmd_evolve(cli);
    if (cmd == "filter") return cmd_filter(cli);
    if (cmd == "schematic") return cmd_schematic(cli);
    if (cmd == "campaign") return cmd_campaign(cli);
    if (cmd == "batch") return cmd_batch(cli);
    if (cmd == "demo") return cmd_demo(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mpa %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  std::fprintf(stderr, "mpa: unknown subcommand '%s'\n", cmd.c_str());
  return usage();
}
