// mpa — the command-line front end to the MPA-EHW library.
//
// Subcommands:
//   info      [--stages N]                       resource model + floorplan
//   evolve    --train in.pgm --ref ref.pgm       evolve a filter on the
//             [--arrays N] [--generations N]     platform and append it to
//             [--two-level] [--seed N]           a genotype library file
//             --lib filters.txt --name NAME
//   filter    --lib filters.txt --name NAME      apply a saved filter
//             --in x.pgm --out y.pgm
//   schematic --lib filters.txt --name NAME      ASCII circuit + liveness
//   campaign  --lib filters.txt --name NAME      systematic PE fault
//             --train in.pgm --ref ref.pgm       campaign + criticality map
//   batch     --manifest jobs.txt [--arrays N]   run a manifest of
//             [--cache N] [--sequential]         heterogeneous missions
//                                                concurrently on one
//                                                scheduler ArrayPool
//   serve     [--port N] [--arrays N] ...        run the mission service
//             [--journal DIR] [--pools N]        daemon; --pools shards the
//             [--arrays-per-pool N]              arrays into N placement-
//             [--checkpoint-every N] [--no-warm] routed pools; --journal
//                                                makes it durable
//   forward   [--port N] [--poll-ms N] ...       run the federation front
//             host:port[:journal] ...            daemon over backend
//                                                daemons (same protocol)
//   submit    --port N <kind> <name> [k=v ...]   submit a mission to a
//                                                daemon and stream it
//   result    --port N --job ID|NAME             fetch (block for) one
//                                                job's final result
//   ps        --port N [--cluster]               list daemon jobs + stats
//   stats     --port N                           per-pool / per-backend
//                                                capacity + placement rows
//   cancel    --port N --job ID|NAME             cancel a daemon job
//   drain     --port N [--wait]                  drain the daemon (finish
//                                                jobs, refuse new ones)
//   checkpoint <kind> <name> [k=v ...]           run a mission standalone,
//             --out ck.json [--every N]          checkpointing to a file
//             [--preempt G]                      (optionally stop early)
//   restore   --from ck.json [--lanes N]         resume a checkpointed
//                                                mission to completion
//                                                (optionally on a
//                                                different lane count)
//   health    --port N                           per-array health, fault
//                                                counters + migrations
//   top       --port N [--cluster]               live refreshing terminal
//             [--interval MS] [--count N]        dashboard over the stats/
//                                                list/health ops (q quits)
//   trace     [OUT.json] --port N                dump the daemon's span
//             [--arm|--disarm] [--clear]         rings as Chrome trace-
//                                                event JSON (load into
//                                                chrome://tracing or
//                                                ui.perfetto.dev)
//   demo      [--size N] [--noise D]             end-to-end synthetic demo
//   version                                      build version + protocol
//
// Every run is deterministic for a given --seed; batch results are
// bit-identical whether jobs are multiplexed or run --sequential, and
// service results are bit-identical to standalone runs of the same spec.
// A preempted + restored run lands on the bit-identical result of an
// uninterrupted one — `mpa checkpoint --preempt` then `mpa restore`
// prints the same result line as `mpa checkpoint` run to completion.
//
// Fault injection: `mpa serve --fault-plan SPEC` (or the EHW_FAULT_PLAN
// environment variable) arms the deterministic fault layer for chaos
// testing — see common/fault.hpp for the plan grammar. `mpa submit
// --retries N [--timeout-ms M]` turns the client into a reconnecting one
// with idempotent resubmit keyed by mission name.

#include <poll.h>
#include <termios.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "ehw/analysis/campaign.hpp"
#include "ehw/analysis/report.hpp"
#include "ehw/common/cli.hpp"
#include "ehw/common/fault.hpp"
#include "ehw/common/table.hpp"
#include "ehw/common/version.hpp"
#include "ehw/evo/serialize.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/noise.hpp"
#include "ehw/img/pgm_io.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/obs/trace.hpp"
#include "ehw/pe/liveness.hpp"
#include "ehw/platform/evolution_driver.hpp"
#include "ehw/resources/floorplan.hpp"
#include "ehw/resources/model.hpp"
#include "ehw/sched/array_pool.hpp"
#include "ehw/sched/checkpoint_store.hpp"
#include "ehw/sched/missions.hpp"
#include "ehw/svc/client.hpp"
#include "ehw/svc/forwarder.hpp"
#include "ehw/svc/metrics_http.hpp"
#include "ehw/svc/server.hpp"

namespace {

using namespace ehw;

constexpr const char* kInfoUsage = "mpa info [--stages N]";
constexpr const char* kEvolveUsage =
    "mpa evolve --train in.pgm --ref ref.pgm --lib filters.txt --name NAME "
    "[--arrays N] [--generations N] [--rate K] [--two-level] [--seed N]";
constexpr const char* kFilterUsage =
    "mpa filter --lib filters.txt --name NAME --in x.pgm --out y.pgm";
constexpr const char* kSchematicUsage =
    "mpa schematic --lib filters.txt --name NAME";
constexpr const char* kCampaignUsage =
    "mpa campaign --lib filters.txt --name NAME --train in.pgm --ref ref.pgm "
    "[--recover] [--generations N]";
constexpr const char* kBatchUsage =
    "mpa batch --manifest jobs.txt [--arrays N] [--cache N] [--max-jobs N] "
    "[--sequential]";
constexpr const char* kServeUsage =
    "mpa serve [--port N] [--address A] [--pools N] [--arrays-per-pool N] "
    "[--arrays N] [--cache N] [--max-jobs N] [--max-inflight N] "
    "[--journal DIR] [--checkpoint-every N] [--no-warm] [--fault-plan SPEC] "
    "[--metrics-port N] [--idle-timeout-ms N] [--max-line BYTES]";
constexpr const char* kForwardUsage =
    "mpa forward [--port N] [--address A] [--poll-ms N] [--down-after N] "
    "[--timeout-ms N] [--metrics-port N] [--idle-timeout-ms N] "
    "[--max-line BYTES] host:port[:journal] ...";
constexpr const char* kSubmitUsage =
    "mpa submit --port N [--address A] <kind> <name> [key=value ...] "
    "[--detach] [--quiet] [--retries N] [--timeout-ms N] | "
    "mpa submit --port N --manifest jobs.txt [--detach]";
constexpr const char* kResultUsage =
    "mpa result --port N [--address A] --job ID|NAME "
    "[--retries N] [--timeout-ms N]";
constexpr const char* kPsUsage =
    "mpa ps --port N [--address A] [--cluster]";
constexpr const char* kStatsUsage = "mpa stats --port N [--address A]";
constexpr const char* kCancelUsage =
    "mpa cancel --port N [--address A] --job ID|NAME";
constexpr const char* kDrainUsage =
    "mpa drain --port N [--address A] [--wait]";
constexpr const char* kCheckpointUsage =
    "mpa checkpoint <kind> <name> [key=value ...] --out ck.json "
    "[--every N] [--preempt G]";
constexpr const char* kRestoreUsage =
    "mpa restore --from ck.json [--lanes N]";
constexpr const char* kHealthUsage =
    "mpa health --port N [--address A] [--cluster]";
constexpr const char* kBackendUsage =
    "mpa backend <list|add|remove> --port N [--address A] "
    "[host:port[:journal]] [--backend INDEX]";
constexpr const char* kTopUsage =
    "mpa top --port N [--address A] [--cluster] [--interval MS] [--count N]";
constexpr const char* kTraceUsage =
    "mpa trace [OUT.json] --port N [--address A] [--arm|--disarm] [--clear]";
constexpr const char* kDemoUsage = "mpa demo [--size N] [--noise D] [--seed N]";

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: mpa <info|evolve|filter|schematic|campaign|batch|serve|"
               "forward|submit|result|ps|stats|cancel|drain|checkpoint|"
               "restore|health|backend|top|trace|demo|version> [options]\n"
               "  %s\n  %s\n  %s\n  %s\n  %s\n  %s\n  %s\n  %s\n  %s\n  %s\n"
               "  %s\n  %s\n  %s\n  %s\n  %s\n  %s\n  %s\n  %s\n  %s\n  %s\n"
               "  %s\n  mpa version\n",
               kInfoUsage, kEvolveUsage, kFilterUsage, kSchematicUsage,
               kCampaignUsage, kBatchUsage, kServeUsage, kForwardUsage,
               kSubmitUsage, kResultUsage, kPsUsage, kStatsUsage,
               kCancelUsage, kDrainUsage, kCheckpointUsage, kRestoreUsage,
               kHealthUsage, kBackendUsage, kTopUsage, kTraceUsage,
               kDemoUsage);
}

int usage() {
  print_usage(stderr);
  return 2;
}

[[noreturn]] void fail(const std::string& message,
                       const char* cmd_usage = nullptr) {
  std::fprintf(stderr, "mpa: %s\n", message.c_str());
  if (cmd_usage != nullptr) std::fprintf(stderr, "usage: %s\n", cmd_usage);
  std::exit(1);
}

/// Required-option lookup: a missing or valueless option prints the
/// subcommand's usage and exits non-zero instead of running ahead.
std::string require(const Cli& cli, const std::string& key,
                    const char* cmd_usage) {
  const std::string v = cli.get(key, "");
  if (v.empty()) fail("missing required option --" + key, cmd_usage);
  return v;
}

int cmd_info(const Cli& cli) {
  const auto stages = static_cast<std::size_t>(cli.get_int("stages", 3));
  resources::render_floorplan(std::cout, stages);
  const resources::UtilizationReport report = resources::utilization(stages);
  Table table({"module", "instances", "slices (total)"});
  for (const auto& m : report.modules) {
    table.add_row({m.module, Table::integer(m.instances),
                   Table::integer(m.total().slices)});
  }
  table.add_row({"TOTAL", "", Table::integer(report.total.slices)});
  table.print(std::cout);
  std::printf("device occupancy: %.1f%% of a Virtex-5 LX110T\n",
              report.device_slice_percent);
  return 0;
}

platform::PlatformConfig make_platform_config(const Cli& cli,
                                              std::size_t line_width,
                                              ThreadPool* pool) {
  platform::PlatformConfig pc;
  pc.num_arrays = static_cast<std::size_t>(cli.get_int("arrays", 3));
  pc.line_width = line_width;
  pc.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  pc.pool = pool;
  return pc;
}

int cmd_evolve(const Cli& cli) {
  const img::Image train = img::read_pgm(require(cli, "train", kEvolveUsage));
  const img::Image ref = img::read_pgm(require(cli, "ref", kEvolveUsage));
  if (!train.same_shape(ref)) fail("train/ref images differ in shape");
  const std::string lib_path = require(cli, "lib", kEvolveUsage);
  const std::string name = require(cli, "name", kEvolveUsage);

  ThreadPool pool;
  platform::EvolvablePlatform plat(
      make_platform_config(cli, train.width(), &pool));
  std::vector<std::size_t> lanes(plat.num_arrays());
  for (std::size_t a = 0; a < lanes.size(); ++a) lanes[a] = a;

  evo::EsConfig es;
  es.generations =
      static_cast<Generation>(cli.get_int("generations", 2000));
  es.mutation_rate = static_cast<std::size_t>(cli.get_int("rate", 3));
  es.two_level = cli.has("two-level");
  es.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const platform::IntrinsicResult r =
      platform::evolve_on_platform(plat, lanes, train, ref, es);

  std::printf("evolved %llu generations, fitness %llu, %.2f s simulated, "
              "%llu DPR writes\n",
              static_cast<unsigned long long>(r.es.generations_run),
              static_cast<unsigned long long>(r.es.best_fitness),
              sim::to_seconds(r.duration),
              static_cast<unsigned long long>(r.pe_writes));

  evo::GenotypeLibrary lib;
  std::ifstream existing(lib_path);
  if (existing) lib = evo::GenotypeLibrary::load(existing);
  lib.put(name, r.es.best);
  lib.save_file(lib_path);
  std::printf("saved '%s' to %s (%zu entries)\n", name.c_str(),
              lib_path.c_str(), lib.size());
  return 0;
}

int cmd_filter(const Cli& cli) {
  const evo::GenotypeLibrary lib =
      evo::GenotypeLibrary::load_file(require(cli, "lib", kFilterUsage));
  const std::string name = require(cli, "name", kFilterUsage);
  if (!lib.contains(name)) fail("library has no entry '" + name + "'");
  const img::Image in = img::read_pgm(require(cli, "in", kFilterUsage));
  const std::string out_path = require(cli, "out", kFilterUsage);

  ThreadPool pool;
  platform::EvolvablePlatform plat(
      make_platform_config(cli, in.width(), &pool));
  plat.configure_array(0, lib.get(name), 0);
  const img::Image out = plat.process_independent(0, in);
  img::write_pgm(out, out_path);
  std::printf("filtered %zux%zu image with '%s' -> %s\n", in.width(),
              in.height(), name.c_str(), out_path.c_str());
  return 0;
}

int cmd_schematic(const Cli& cli) {
  const evo::GenotypeLibrary lib =
      evo::GenotypeLibrary::load_file(require(cli, "lib", kSchematicUsage));
  const std::string name = require(cli, "name", kSchematicUsage);
  if (!lib.contains(name)) fail("library has no entry '" + name + "'");
  const evo::Genotype& g = lib.get(name);
  std::printf("%s\n%s", g.to_string().c_str(),
              pe::render_schematic(g.to_array()).c_str());
  return 0;
}

int cmd_campaign(const Cli& cli) {
  const evo::GenotypeLibrary lib =
      evo::GenotypeLibrary::load_file(require(cli, "lib", kCampaignUsage));
  const std::string name = require(cli, "name", kCampaignUsage);
  if (!lib.contains(name)) fail("library has no entry '" + name + "'");
  const img::Image train = img::read_pgm(require(cli, "train", kCampaignUsage));
  const img::Image ref = img::read_pgm(require(cli, "ref", kCampaignUsage));

  ThreadPool pool;
  platform::EvolvablePlatform plat(
      make_platform_config(cli, train.width(), &pool));
  plat.configure_array(0, lib.get(name), 0);

  analysis::CampaignConfig ccfg;
  ccfg.run_recovery = cli.has("recover");
  ccfg.recovery_es.generations =
      static_cast<Generation>(cli.get_int("generations", 500));
  const analysis::CampaignResult result =
      analysis::run_pe_fault_campaign(plat, 0, train, ref, ccfg);
  analysis::render_criticality_map(std::cout, result, plat.config().shape);
  analysis::render_campaign_table(std::cout, result);
  return 0;
}

const char* status_name(sched::JobStatus status) {
  switch (status) {
    case sched::JobStatus::kQueued: return "queued";
    case sched::JobStatus::kRunning: return "running";
    case sched::JobStatus::kDone: return "done";
    case sched::JobStatus::kFailed: return "FAILED";
    case sched::JobStatus::kCancelled: return "cancelled";
    case sched::JobStatus::kPreempted: return "preempted";
  }
  return "?";
}

int cmd_batch(const Cli& cli) {
  const std::string manifest_path = require(cli, "manifest", kBatchUsage);
  std::ifstream manifest(manifest_path);
  if (!manifest) fail("cannot open manifest " + manifest_path, kBatchUsage);
  const std::vector<sched::MissionSpec> specs =
      sched::parse_manifest(manifest);
  if (specs.empty()) fail("manifest has no jobs: " + manifest_path);

  sched::PoolConfig pool_config;
  pool_config.num_arrays =
      static_cast<std::size_t>(cli.get_int("arrays", 8));
  pool_config.cache_capacity =
      static_cast<std::size_t>(cli.get_int("cache", 512));
  pool_config.max_concurrent_jobs =
      static_cast<std::size_t>(cli.get_int("max-jobs", 0));
  if (cli.has("sequential")) pool_config.max_concurrent_jobs = 1;
  ThreadPool host_pool;
  pool_config.host_pool = &host_pool;

  sched::ArrayPool pool(pool_config);
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<sched::MissionRunner>> runners;
  runners.reserve(specs.size());
  for (const sched::MissionSpec& spec : specs) {
    runners.push_back(pool.submit(sched::make_job_config(spec),
                                  sched::make_job_body(spec)));
  }
  pool.wait_all();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  const sched::ArrayPool::ScheduleReport schedule = pool.simulated_schedule();

  Table table({"job", "kind", "lanes", "status", "gens", "fitness", "sim s",
               "pool window s", "cache hit%"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const sched::MissionSpec& spec = specs[i];
    const sched::JobOutcome& outcome = runners[i]->result();
    const bool cascade = spec.kind == sched::MissionKind::kCascade;
    const Fitness fitness = cascade ? outcome.cascade.chain_fitness
                                    : outcome.intrinsic.es.best_fitness;
    const auto generations =
        cascade ? static_cast<std::uint64_t>(spec.generations)
                : static_cast<std::uint64_t>(
                      outcome.intrinsic.es.generations_run);
    const sched::ArrayPool::ScheduleEntry& window = schedule.jobs[i];
    table.add_row(
        {spec.name, sched::kind_name(spec.kind), Table::integer(spec.lanes),
         status_name(runners[i]->status()), Table::integer(generations),
         Table::integer(fitness),
         Table::num(sim::to_seconds(outcome.stats.mission_time), 3),
         Table::num(sim::to_seconds(window.start), 3) + "-" +
             Table::num(sim::to_seconds(window.end), 3),
         Table::num(100.0 * outcome.stats.cache_hit_rate(), 1)});
    if (runners[i]->status() == sched::JobStatus::kFailed) {
      std::fprintf(stderr, "mpa batch: job '%s' failed: %s\n",
                   spec.name.c_str(), outcome.error.c_str());
    }
  }
  table.print(std::cout);

  const sched::CacheStats cache = pool.cache_stats();
  std::printf(
      "pool: %zu arrays, %zu jobs | simulated makespan %.3f s "
      "(serialized %.3f s, speedup %.2fx, %.2f missions/sim-s)\n"
      "compiled-array cache: %llu hits / %llu misses (%.1f%% hit rate, "
      "%llu evictions) | host wall %.0f ms\n",
      pool.num_arrays(), specs.size(), sim::to_seconds(schedule.makespan),
      sim::to_seconds(schedule.serialized), schedule.speedup(),
      schedule.missions_per_sim_second(),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses), 100.0 * cache.hit_rate(),
      static_cast<unsigned long long>(cache.evictions), wall_ms);

  for (const auto& runner : runners) {
    if (runner->status() != sched::JobStatus::kDone) return 1;
  }
  return 0;
}

int cmd_version() {
  std::printf("mpa %s (service protocol %d)\n", kVersion,
              svc::kProtocolVersion);
  return 0;
}

std::uint16_t require_port(const Cli& cli, const char* cmd_usage) {
  const std::int64_t port = cli.get_int("port", 0);
  if (port <= 0 || port > 65535) {
    fail("missing or invalid --port", cmd_usage);
  }
  return static_cast<std::uint16_t>(port);
}

svc::Client make_client(const Cli& cli, const char* cmd_usage) {
  return svc::Client(require_port(cli, cmd_usage),
                     cli.get("address", "127.0.0.1"),
                     static_cast<int>(cli.get_int("timeout-ms", 0)));
}

/// Reconnect policy from the shared --retries / --timeout-ms flags.
svc::RetryPolicy retry_policy_from_cli(const Cli& cli) {
  svc::RetryPolicy policy;
  policy.retries = static_cast<int>(cli.get_int("retries", 0));
  policy.io_timeout_ms = static_cast<int>(cli.get_int("timeout-ms", 0));
  return policy;
}

/// Boolean-flag lookup that catches the Cli parser's bare-flag hazard: a
/// `--flag` directly followed by a non-flag token swallows that token as
/// its value ("--quiet lanes=4" silently drops lanes=4 from the spec).
/// Fail loudly instead of submitting a corrupted mission.
bool bare_flag(const Cli& cli, const std::string& flag,
               const char* cmd_usage) {
  if (!cli.has(flag)) return false;
  if (!cli.get(flag, "").empty()) {
    fail("--" + flag + " takes no value (it swallowed '" +
             cli.get(flag, "") + "' — place flags after the spec)",
         cmd_usage);
  }
  return true;
}

/// Installs the process-wide fault plan from --fault-plan or, when the
/// flag is absent, the EHW_FAULT_PLAN environment variable. Serving with
/// an armed plan is how the chaos suite exercises the self-healing
/// paths; production runs simply never pass either.
void arm_fault_plan(const Cli& cli, const char* daemon = "serve",
                    const char* cmd_usage = kServeUsage) {
  std::string spec = cli.get("fault-plan", "");
  if (spec.empty()) {
    const char* env = std::getenv("EHW_FAULT_PLAN");
    if (env != nullptr) spec = env;
  }
  if (spec.empty()) return;
  fault::FaultPlan plan;
  const std::string error = fault::parse_plan(spec, plan);
  if (!error.empty()) fail("bad fault plan: " + error, cmd_usage);
  fault::install(plan);
  std::printf("mpa %s: FAULT PLAN ARMED (%s) — runs are for chaos "
              "testing only\n",
              daemon, spec.c_str());
}

/// Shared --metrics-port handling for serve/forward: binds the
/// Prometheus endpoint (0 = ephemeral) and prints the scrape URL —
/// scripts parse the port from that line, like the listening line.
std::unique_ptr<svc::MetricsHttp> make_metrics_endpoint(
    const Cli& cli, const char* cmd_usage, const char* daemon,
    const std::string& address, std::function<std::string()> producer) {
  if (!cli.has("metrics-port")) return nullptr;
  const std::int64_t port = cli.get_int("metrics-port", 0);
  if (port < 0 || port > 65535) {
    fail("invalid --metrics-port (0 = ephemeral, else 1-65535)", cmd_usage);
  }
  auto endpoint = std::make_unique<svc::MetricsHttp>(
      address, static_cast<std::uint16_t>(port), std::move(producer));
  std::printf("mpa %s: metrics on http://%s:%u/metrics\n", daemon,
              address.c_str(), static_cast<unsigned>(endpoint->port()));
  return endpoint;
}

int cmd_serve(const Cli& cli) {
  arm_fault_plan(cli);
  // The daemon always records spans — the per-thread rings are near-free
  // and `mpa trace` must have data on demand. Benches and library
  // embedders construct Server directly and stay disarmed.
  obs::Tracer::global().arm();
  svc::ServerConfig config;
  config.address = cli.get("address", "127.0.0.1");
  const std::int64_t port = cli.get_int("port", 0);
  if (port < 0 || port > 65535) {
    fail("invalid --port (0 = ephemeral, else 1-65535)", kServeUsage);
  }
  config.port = static_cast<std::uint16_t>(port);
  const std::int64_t pools = cli.get_int("pools", 1);
  if (pools < 1) fail("invalid --pools (>= 1)", kServeUsage);
  config.pools = static_cast<std::size_t>(pools);
  // --arrays-per-pool is the sharded spelling; --arrays stays as the
  // single-pool spelling (and the per-pool width when both are given
  // their defaults).
  config.pool.num_arrays = static_cast<std::size_t>(
      cli.get_int("arrays-per-pool", cli.get_int("arrays", 8)));
  config.pool.cache_capacity =
      static_cast<std::size_t>(cli.get_int("cache", 512));
  config.pool.max_concurrent_jobs =
      static_cast<std::size_t>(cli.get_int("max-jobs", 0));
  config.max_inflight =
      static_cast<std::size_t>(cli.get_int("max-inflight", 0));
  config.journal_dir = cli.get("journal", "");
  const std::int64_t checkpoint_every = cli.get_int("checkpoint-every", 25);
  if (checkpoint_every < 0) {
    fail("invalid --checkpoint-every (generations, 0 = off)", kServeUsage);
  }
  config.checkpoint_every = static_cast<std::uint64_t>(checkpoint_every);
  config.persist_warm = !bare_flag(cli, "no-warm", kServeUsage);
  // Protocol armor: a served daemon always bounds idle sessions and
  // frame length (library embedders opt in). 0 disables the idle bound.
  const std::int64_t idle_ms = cli.get_int("idle-timeout-ms", 300'000);
  if (idle_ms < 0) fail("invalid --idle-timeout-ms (>= 0)", kServeUsage);
  config.idle_timeout_ms = static_cast<int>(idle_ms);
  const std::int64_t max_line = cli.get_int("max-line", 0);
  if (max_line < 0) fail("invalid --max-line (bytes, 0 = default)",
                         kServeUsage);
  config.max_line = static_cast<std::size_t>(max_line);
  ThreadPool host_pool;
  config.pool.host_pool = &host_pool;

  svc::Server server(std::move(config));
  std::printf("mpa serve: listening on %s:%u (%zu pools x %zu arrays, "
              "protocol %d, version %s)\n",
              server.config().address.c_str(),
              static_cast<unsigned>(server.port()),
              server.group().pool_count(), server.group().arrays_per_pool(),
              svc::kProtocolVersion, kVersion);
  const std::unique_ptr<svc::MetricsHttp> metrics = make_metrics_endpoint(
      cli, kServeUsage, "serve", server.config().address,
      [&server] { return server.metrics_text(); });
  if (!server.config().journal_dir.empty()) {
    const svc::JournalStats journal = server.journal_stats();
    std::printf(
        "mpa serve: journal %s | replayed %llu records (%llu finished "
        "re-served, %llu resumed, %llu from checkpoint)%s\n",
        server.config().journal_dir.c_str(),
        static_cast<unsigned long long>(journal.replayed_records),
        static_cast<unsigned long long>(journal.replayed_finished),
        static_cast<unsigned long long>(journal.resumed),
        static_cast<unsigned long long>(journal.resumed_from_checkpoint),
        journal.truncated_tail ? " [truncated tail]" : "");
  }
  std::printf("mpa serve: submit with `mpa submit --port %u <kind> <name> "
              "[key=value ...]`, stop with `mpa drain --port %u --wait`\n",
              static_cast<unsigned>(server.port()),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);  // scripts parse the port from this line

  server.wait_drained();
  server.stop();

  const svc::ServiceStats service = server.service_stats();
  const sched::ArrayPool::PoolStats pool = server.group().stats().total;
  const sched::CacheStats cache = server.group().cache_stats();
  std::printf(
      "mpa serve: drained after %llu missions (%llu done, %llu failed, "
      "%llu cancelled, %llu rejected) over %llu connections | cache %.1f%% "
      "hit rate\n",
      static_cast<unsigned long long>(service.submitted),
      static_cast<unsigned long long>(pool.done),
      static_cast<unsigned long long>(pool.failed),
      static_cast<unsigned long long>(pool.cancelled),
      static_cast<unsigned long long>(service.rejected),
      static_cast<unsigned long long>(service.connections),
      100.0 * cache.hit_rate());
  return pool.failed == 0 ? 0 : 1;
}

/// Parses one `host:port[:journal]` backend endpoint (bare `port` means
/// loopback; the optional journal dir is the backend's --journal path as
/// visible from THIS host, enabling checkpoint-carrying failover).
svc::BackendConfig parse_backend(const std::string& arg) {
  svc::BackendConfig backend;
  std::string port_text = arg;
  const std::size_t first = arg.find(':');
  if (first != std::string::npos) {
    backend.address = arg.substr(0, first);
    const std::size_t second = arg.find(':', first + 1);
    if (second != std::string::npos) {
      port_text = arg.substr(first + 1, second - first - 1);
      backend.journal_dir = arg.substr(second + 1);
    } else {
      port_text = arg.substr(first + 1);
    }
  }
  char* end = nullptr;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0' || port <= 0 || port > 65535) {
    fail("bad backend '" + arg + "' (want host:port[:journal])",
         kForwardUsage);
  }
  backend.port = static_cast<std::uint16_t>(port);
  return backend;
}

int cmd_forward(const Cli& cli) {
  arm_fault_plan(cli, "forward", kForwardUsage);
  svc::ForwarderConfig config;
  config.address = cli.get("address", "127.0.0.1");
  const std::int64_t port = cli.get_int("port", 0);
  if (port < 0 || port > 65535) {
    fail("invalid --port (0 = ephemeral, else 1-65535)", kForwardUsage);
  }
  config.port = static_cast<std::uint16_t>(port);
  config.poll_ms = static_cast<int>(cli.get_int("poll-ms", 250));
  config.down_after = static_cast<int>(cli.get_int("down-after", 2));
  config.io_timeout_ms = static_cast<int>(cli.get_int("timeout-ms", 5000));
  const std::int64_t idle_ms = cli.get_int("idle-timeout-ms", 300'000);
  if (idle_ms < 0) fail("invalid --idle-timeout-ms (>= 0)", kForwardUsage);
  config.idle_timeout_ms = static_cast<int>(idle_ms);
  const std::int64_t max_line = cli.get_int("max-line", 0);
  if (max_line < 0) fail("invalid --max-line (bytes, 0 = default)",
                         kForwardUsage);
  config.max_line = static_cast<std::size_t>(max_line);
  for (const std::string& arg : cli.positional()) {
    config.backends.push_back(parse_backend(arg));
  }
  if (config.backends.empty()) {
    fail("no backends given (host:port[:journal] ...)", kForwardUsage);
  }

  svc::Forwarder forwarder(std::move(config));
  const svc::ForwarderStats boot = forwarder.forwarder_stats();
  std::printf("mpa forward: listening on %s:%u (%zu backends, %zu up, "
              "protocol %d, version %s)\n",
              forwarder.config().address.c_str(),
              static_cast<unsigned>(forwarder.port()),
              forwarder.config().backends.size(), boot.backends_up,
              svc::kProtocolVersion, kVersion);
  const std::unique_ptr<svc::MetricsHttp> metrics = make_metrics_endpoint(
      cli, kForwardUsage, "forward", forwarder.config().address,
      [&forwarder] { return forwarder.metrics_text(); });
  std::printf("mpa forward: submit with `mpa submit --port %u <kind> <name> "
              "[key=value ...]`, stop with `mpa drain --port %u --wait`\n",
              static_cast<unsigned>(forwarder.port()),
              static_cast<unsigned>(forwarder.port()));
  std::fflush(stdout);  // scripts parse the port from this line

  forwarder.wait_drained();
  const svc::ForwarderStats stats = forwarder.forwarder_stats();
  forwarder.stop();
  std::printf(
      "mpa forward: drained after %llu missions (%llu rejected, %llu shed, "
      "%llu failovers, %llu resumed from checkpoint, %llu fence cancels, "
      "%llu rejoins)\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.failovers),
      static_cast<unsigned long long>(stats.failover_resumed),
      static_cast<unsigned long long>(stats.fences),
      static_cast<unsigned long long>(stats.rejoins));
  return 0;
}

/// One line of placement-policy counters (shared by pool and cluster
/// stats views).
void print_placement(const Json* placement, const char* shard_noun) {
  if (placement == nullptr) return;
  std::printf(
      "placement: %llu %s | %llu placed, %llu affinity hits, %llu spills\n",
      static_cast<unsigned long long>(
          placement->get_number(shard_noun, 0)),
      shard_noun,
      static_cast<unsigned long long>(placement->get_number("placed", 0)),
      static_cast<unsigned long long>(
          placement->get_number("affinity_hits", 0)),
      static_cast<unsigned long long>(placement->get_number("spills", 0)));
}

/// "p50 1.2ms / p99 8.4ms" for one histogram summary in the stats
/// response's telemetry section; "-" while it has no samples.
std::string hist_brief(const Json* telemetry, const char* key) {
  const Json* hist = telemetry != nullptr ? telemetry->get(key) : nullptr;
  if (hist == nullptr ||
      static_cast<std::uint64_t>(hist->get_number("count", 0)) == 0) {
    return "-";
  }
  return "p50 " +
         format_duration_ns(
             static_cast<std::uint64_t>(hist->get_number("p50_ns", 0))) +
         " / p99 " +
         format_duration_ns(
             static_cast<std::uint64_t>(hist->get_number("p99_ns", 0)));
}

int cmd_stats(const Cli& cli) {
  svc::Client client = make_client(cli, kStatsUsage);
  const Json stats = client.stats();
  if (!stats.get_bool("ok", false)) {
    std::fprintf(stderr, "mpa stats: %s\n",
                 stats.get_string("error", "unknown error").c_str());
    return 1;
  }
  const auto row_int = [](const Json& row, const char* key) {
    return Table::integer(static_cast<std::uint64_t>(row.get_number(key, 0)));
  };
  if (stats.get_string("role", "") == "forwarder") {
    Table table({"backend", "endpoint", "up", "arrays", "free", "running",
                 "queued", "done", "failed"});
    const Json* cluster = stats.get("cluster");
    const Json* backends =
        cluster != nullptr ? cluster->get("backends") : nullptr;
    if (backends != nullptr && backends->is_array()) {
      for (const Json& row : backends->as_array()) {
        table.add_row(
            {row_int(row, "backend"),
             row.get_string("address", "?") + ":" +
                 Table::integer(
                     static_cast<std::uint64_t>(row.get_number("port", 0))),
             row.get_bool("reachable", false) ? "yes" : "NO",
             row_int(row, "arrays"), row_int(row, "free_arrays"),
             row_int(row, "running"), row_int(row, "queued"),
             row_int(row, "done"), row_int(row, "failed")});
      }
    }
    table.print(std::cout);
    print_placement(stats.get("placement"), "backends");
    if (const Json* fwd = stats.get("forwarder"); fwd != nullptr) {
      std::printf(
          "forwarder: %llu submitted, %llu rejected (%llu shed) | "
          "%llu failovers (%llu resumed), %llu fence cancels, %llu rejoins "
          "| %llu routes, %llu/%llu backends up%s\n",
          static_cast<unsigned long long>(fwd->get_number("submitted", 0)),
          static_cast<unsigned long long>(fwd->get_number("rejected", 0)),
          static_cast<unsigned long long>(fwd->get_number("shed", 0)),
          static_cast<unsigned long long>(fwd->get_number("failovers", 0)),
          static_cast<unsigned long long>(
              fwd->get_number("failover_resumed", 0)),
          static_cast<unsigned long long>(fwd->get_number("fences", 0)),
          static_cast<unsigned long long>(fwd->get_number("rejoins", 0)),
          static_cast<unsigned long long>(fwd->get_number("routes", 0)),
          static_cast<unsigned long long>(fwd->get_number("backends_up", 0)),
          static_cast<unsigned long long>(
              backends != nullptr ? backends->as_array().size() : 0),
          fwd->get_bool("draining", false) ? " (draining)" : "");
    }
    return 0;
  }
  // Daemon view: one row per pool shard plus the aggregate.
  Table table({"pool", "arrays", "free", "running", "queued", "submitted",
               "done", "failed", "quarantined"});
  const auto pool_row = [&](const std::string& label, const Json& row) {
    table.add_row({label, row_int(row, "arrays"), row_int(row, "free_arrays"),
                   row_int(row, "running"), row_int(row, "queued"),
                   row_int(row, "submitted"), row_int(row, "done"),
                   row_int(row, "failed"), row_int(row, "quarantined")});
  };
  const Json* pools = stats.get("pools");
  if (pools != nullptr && pools->is_array()) {
    for (const Json& row : pools->as_array()) {
      pool_row(row_int(row, "pool"), row);
    }
  }
  if (const Json* pool = stats.get("pool"); pool != nullptr) {
    pool_row("TOTAL", *pool);
  }
  table.print(std::cout);
  print_placement(stats.get("placement"), "pools");
  const Json* cache = stats.get("cache");
  const Json* memo = stats.get("memo");
  if (cache != nullptr && memo != nullptr) {
    const double cache_total = cache->get_number("hits", 0) +
                               cache->get_number("misses", 0);
    const double memo_total =
        memo->get_number("hits", 0) + memo->get_number("misses", 0);
    std::printf(
        "cache: %.1f%% hit rate (%llu evictions) | memo: %.1f%% hit rate "
        "(%llu entries)\n",
        100.0 * cache->get_number("hits", 0) / std::max(1.0, cache_total),
        static_cast<unsigned long long>(cache->get_number("evictions", 0)),
        100.0 * memo->get_number("hits", 0) / std::max(1.0, memo_total),
        static_cast<unsigned long long>(memo->get_number("evictions", 0)));
  }
  if (const Json* telemetry = stats.get("telemetry"); telemetry != nullptr) {
    std::printf("latency: submit->ack %s | mission wall %s\n",
                hist_brief(telemetry, "submit_ack_latency").c_str(),
                hist_brief(telemetry, "mission_wall_time").c_str());
  }
  return 0;
}

/// mpa submit --manifest: the whole job file goes up in ONE submit_batch
/// round trip (atomic admission), then results are collected per job.
int cmd_submit_manifest(const Cli& cli, const std::string& manifest_path) {
  std::ifstream manifest(manifest_path);
  if (!manifest) fail("cannot open manifest " + manifest_path, kSubmitUsage);
  const std::vector<sched::MissionSpec> specs =
      sched::parse_manifest(manifest);
  if (specs.empty()) fail("manifest has no jobs: " + manifest_path);
  const bool detach = bare_flag(cli, "detach", kSubmitUsage);

  svc::Client client = make_client(cli, kSubmitUsage);
  const svc::Client::BatchSubmitted submitted = client.submit_batch(specs);
  if (!submitted.ok) {
    std::fprintf(stderr, "mpa submit: batch rejected: %s\n",
                 submitted.error.c_str());
    return 1;
  }
  std::printf("submitted %zu jobs in one batch to service %s\n",
              submitted.jobs.size(), client.server_version().c_str());
  if (detach) return 0;

  Table table({"job", "name", "kind", "status", "fitness", "sim s",
               "memo hit%"});
  bool all_done = true;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const Json result = client.result(submitted.jobs[i]);
    const std::string status = result.get_string("status", "?");
    all_done = all_done && status == "done";
    const double memo_total = result.get_number("memo_hits", 0) +
                              result.get_number("memo_misses", 0);
    table.add_row(
        {Table::integer(submitted.jobs[i]), specs[i].name,
         sched::kind_name(specs[i].kind), status,
         Table::integer(
             static_cast<std::uint64_t>(result.get_number("best_fitness", 0))),
         Table::num(result.get_number("sim_s", 0.0), 3),
         Table::num(100.0 * result.get_number("memo_hits", 0) /
                        std::max(1.0, memo_total),
                    1)});
  }
  table.print(std::cout);
  return all_done ? 0 : 1;
}

/// Builds a mission spec from positionals: <kind> <name> [key=value ...]
/// (the Cli treats the subcommand word as argv[0], so positionals start
/// at the mission kind). Shared by submit and checkpoint.
sched::MissionSpec spec_from_args(const Cli& cli, const char* cmd_usage) {
  const std::vector<std::string>& args = cli.positional();
  if (args.size() < 2) fail("missing mission kind and name", cmd_usage);
  sched::MissionSpec spec;
  if (!sched::parse_kind(args[0], spec.kind)) {
    fail("unknown mission kind '" + args[0] + "'", cmd_usage);
  }
  spec.name = args[1];
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::size_t eq = args[i].find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == args[i].size()) {
      fail("expected key=value, got '" + args[i] + "'", cmd_usage);
    }
    const std::string error = sched::apply_spec_option(
        spec, args[i].substr(0, eq), args[i].substr(eq + 1));
    if (!error.empty()) fail(error, cmd_usage);
  }
  const std::string invalid = sched::validate_spec(spec);
  if (!invalid.empty()) fail(invalid, cmd_usage);
  return spec;
}

/// Shared result-response printer (cmd_result and the retrying submit).
int print_result_response(const Json& response) {
  if (!response.get_bool("ok", false)) {
    std::fprintf(stderr, "mpa result: %s\n",
                 response.get_string("error", "unknown error").c_str());
    return 1;
  }
  const std::string status = response.get_string("status", "?");
  const auto id =
      static_cast<unsigned long long>(response.get_number("job", 0));
  if (status != "done") {
    std::printf("job %llu %s: %s\n", id, status.c_str(),
                response.get_string("error", "(no error detail)").c_str());
    return 1;
  }
  std::printf(
      "job %llu done%s: fitness %llu, genotype %s, %llu generations, "
      "%.3f sim s\n",
      id, response.get_bool("replayed", false) ? " (replayed)" : "",
      static_cast<unsigned long long>(
          response.get_number("best_fitness", 0)),
      response.get_string("genotype_hash", "?").c_str(),
      static_cast<unsigned long long>(response.get_number("generations", 0)),
      response.get_number("sim_s", 0.0));
  return 0;
}

/// --retries path: at-most-once submit keyed by the mission name, then a
/// blocking result fetch — every op reconnects with exponential backoff,
/// so the mission survives daemon restarts (journal replay re-serves the
/// name) without ever double-running. Note --timeout-ms also bounds the
/// blocking result read; size it to the mission or leave it at 0.
int cmd_submit_retrying(const Cli& cli, const sched::MissionSpec& spec,
                        bool detach) {
  const svc::RetryPolicy policy = retry_policy_from_cli(cli);
  const std::uint16_t port = require_port(cli, kSubmitUsage);
  const std::string address = cli.get("address", "127.0.0.1");
  const svc::IdempotentSubmit submitted =
      svc::submit_idempotent(port, address, spec, policy);
  if (!submitted.ok) {
    std::fprintf(stderr, "mpa submit: rejected: %s\n",
                 submitted.error.c_str());
    return 1;
  }
  std::printf("submitted job %llu (%s %s)%s\n",
              static_cast<unsigned long long>(submitted.job),
              sched::kind_name(spec.kind), spec.name.c_str(),
              submitted.already_known ? " [already known, not resubmitted]"
                                      : "");
  if (detach) return 0;
  // Follow the mission BY NAME: watch_mission re-resolves and
  // re-subscribes across daemon restarts and forwarder failovers (the
  // job id may change; the name never does), so --wait rides through.
  const bool quiet = bare_flag(cli, "quiet", kSubmitUsage);
  const std::uint64_t every =
      std::max<std::uint64_t>(1, spec.generations / 10);
  try {
    const std::string status = svc::watch_mission(
        port, address, spec.name, policy,
        [&](std::uint64_t waves) {
          if (quiet) return;
          std::fprintf(stderr, "%s: %llu waves\n", spec.name.c_str(),
                       static_cast<unsigned long long>(waves));
        },
        every);
    if (!quiet) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(), status.c_str());
    }
  } catch (const std::exception& e) {
    // The stream is a convenience; the result fetch below is the truth.
    std::fprintf(stderr, "mpa submit: %s\n", e.what());
  }
  const Json response = svc::with_retry(
      port, address, policy,
      [&spec](svc::Client& client) { return client.result_by_name(spec.name); });
  return print_result_response(response);
}

int cmd_submit(const Cli& cli) {
  const std::string manifest_path = cli.get("manifest", "");
  if (!manifest_path.empty()) return cmd_submit_manifest(cli, manifest_path);
  const sched::MissionSpec spec = spec_from_args(cli, kSubmitUsage);
  const bool detach = bare_flag(cli, "detach", kSubmitUsage);
  if (cli.get_int("retries", 0) > 0) {
    return cmd_submit_retrying(cli, spec, detach);
  }

  svc::Client client = make_client(cli, kSubmitUsage);
  const svc::Client::Submitted submitted = client.submit(spec);
  if (!submitted.ok) {
    std::fprintf(stderr, "mpa submit: rejected: %s\n",
                 submitted.error.c_str());
    return 1;
  }
  std::printf("submitted job %llu (%s %s) to service %s\n",
              static_cast<unsigned long long>(submitted.job),
              sched::kind_name(spec.kind), spec.name.c_str(),
              client.server_version().c_str());
  if (detach) return 0;

  const bool quiet = bare_flag(cli, "quiet", kSubmitUsage);
  // ~10 progress lines regardless of the mission's budget.
  const std::uint64_t every =
      std::max<std::uint64_t>(1, spec.generations / 10);
  const std::string status = client.watch(
      submitted.job,
      [&](std::uint64_t waves) {
        if (quiet) return;
        std::fprintf(stderr, "job %llu: %llu waves\n",
                     static_cast<unsigned long long>(submitted.job),
                     static_cast<unsigned long long>(waves));
      },
      every);
  const Json result = client.result(submitted.job);
  std::printf("job %llu %s: ", static_cast<unsigned long long>(submitted.job),
              status.c_str());
  if (status == "done") {
    std::printf("fitness %llu, genotype %s, %llu generations, %.3f sim s, "
                "cache %.1f%%\n",
                static_cast<unsigned long long>(
                    result.get_number("best_fitness", 0)),
                result.get_string("genotype_hash", "?").c_str(),
                static_cast<unsigned long long>(
                    result.get_number("generations", 0)),
                result.get_number("sim_s", 0.0),
                100.0 * result.get_number("cache_hits", 0) /
                    std::max(1.0, result.get_number("cache_hits", 0) +
                                      result.get_number("cache_misses", 0)));
    return 0;
  }
  std::printf("%s\n", result.get_string("error", "(no error detail)").c_str());
  return 1;
}

/// Job reference fields: all-digits means an id, anything else a name.
void set_job_field(Json& request, const std::string& job) {
  if (!job.empty() &&
      job.find_first_not_of("0123456789") == std::string::npos) {
    request.set("job", static_cast<std::uint64_t>(std::stoull(job)));
  } else {
    request.set("job", job);
  }
}

int cmd_result(const Cli& cli) {
  const std::string job = require(cli, "job", kResultUsage);
  Json request = Json::object();
  request.set("op", "result");
  set_job_field(request, job);
  if (cli.get_int("retries", 0) > 0) {
    // Result is idempotent (a pure read), so a lost connection just
    // re-asks a fresh one — the restarted daemon re-serves finished
    // results from its journal.
    const Json response = svc::with_retry(
        require_port(cli, kResultUsage), cli.get("address", "127.0.0.1"),
        retry_policy_from_cli(cli),
        [&request](svc::Client& client) { return client.request(request); });
    return print_result_response(response);
  }
  svc::Client client = make_client(cli, kResultUsage);
  return print_result_response(client.request(request));
}

/// Final line of a standalone checkpoint/restore run. The fields are the
/// bit-identity contract: a restored run prints the same fitness and
/// genotype hash as the uninterrupted run of the same spec.
int report_standalone_outcome(const char* verb,
                              const sched::MissionSpec& spec,
                              const sched::JobOutcome& outcome) {
  if (!outcome.error.empty()) {
    std::fprintf(stderr, "mpa %s: mission failed: %s\n", verb,
                 outcome.error.c_str());
    return 1;
  }
  const Json body =
      svc::outcome_to_json(spec.kind, sched::JobStatus::kDone, outcome);
  std::printf(
      "mpa %s: %s %s fitness %llu genotype %s generations %llu "
      "sim %.3f s\n",
      verb, sched::kind_name(spec.kind), spec.name.c_str(),
      static_cast<unsigned long long>(body.get_number("best_fitness", 0)),
      body.get_string("genotype_hash", "?").c_str(),
      static_cast<unsigned long long>(body.get_number("generations", 0)),
      body.get_number("sim_s", 0.0));
  return 0;
}

int cmd_checkpoint(const Cli& cli) {
  const sched::MissionSpec spec = spec_from_args(cli, kCheckpointUsage);
  const std::string out_path = require(cli, "out", kCheckpointUsage);
  const std::int64_t every = cli.get_int("every", 25);
  const std::int64_t preempt = cli.get_int("preempt", 0);
  if (every < 0 || preempt < 0) {
    fail("--every and --preempt must be >= 0", kCheckpointUsage);
  }

  sched::MissionCheckpointing ck;
  ck.every = static_cast<Generation>(every);
  ck.preempt_after = static_cast<Generation>(preempt);
  std::uint64_t written = 0;
  std::string sink_error;
  // One file, atomically replaced each time: the latest checkpoint wins.
  ck.sink = [&](const platform::MissionCheckpoint& state) {
    const std::string error =
        sched::save_mission_checkpoint(out_path, spec, state);
    if (error.empty()) {
      ++written;
    } else {
      sink_error = error;
    }
  };
  ThreadPool host_pool;
  const sched::JobOutcome outcome =
      sched::run_spec_standalone(spec, &host_pool, ck);
  if (!sink_error.empty()) fail("checkpoint write failed: " + sink_error);
  if (preempt != 0) {
    std::printf("mpa checkpoint: preempted %s %s after %llu generations; "
                "%llu checkpoints -> %s\n"
                "mpa checkpoint: resume with `mpa restore --from %s`\n",
                sched::kind_name(spec.kind), spec.name.c_str(),
                static_cast<unsigned long long>(preempt),
                static_cast<unsigned long long>(written), out_path.c_str(),
                out_path.c_str());
    return 0;
  }
  std::printf("mpa checkpoint: %llu checkpoints -> %s\n",
              static_cast<unsigned long long>(written), out_path.c_str());
  return report_standalone_outcome("checkpoint", spec, outcome);
}

int cmd_restore(const Cli& cli) {
  const std::string from = require(cli, "from", kRestoreUsage);
  sched::MissionSpec spec;
  auto resume = std::make_shared<platform::MissionCheckpoint>();
  if (const std::string error =
          sched::load_mission_checkpoint(from, spec, *resume);
      !error.empty()) {
    fail("cannot load " + from + ": " + error, kRestoreUsage);
  }
  // --lanes resumes onto a different physical slice width (migration in
  // miniature): the checkpoint's logical lane count still drives the
  // evolution, so fitness/genotype stay bit-identical; with fewer lanes
  // than logical the simulated time honestly dilates. Cascades refuse a
  // mismatch (stage count is structure).
  const std::int64_t lanes = cli.get_int("lanes", 0);
  if (lanes < 0) fail("--lanes must be >= 1", kRestoreUsage);
  if (lanes > 0) spec.lanes = static_cast<std::size_t>(lanes);
  sched::MissionCheckpointing ck;
  ck.resume = std::move(resume);
  ThreadPool host_pool;
  const sched::JobOutcome outcome =
      sched::run_spec_standalone(spec, &host_pool, ck);
  return report_standalone_outcome("restore", spec, outcome);
}

int cmd_ps(const Cli& cli) {
  const bool cluster = bare_flag(cli, "cluster", kPsUsage);
  svc::Client client = make_client(cli, kPsUsage);
  const Json list = client.list();
  const Json stats = client.stats();
  std::vector<std::string> columns = {"job",   "name",   "kind",
                                      "lanes", "status", "waves", "age"};
  if (cluster) columns.push_back("backend");
  Table table(columns);
  const Json* jobs = list.get("jobs");
  if (jobs != nullptr && jobs->is_array()) {
    for (const Json& entry : jobs->as_array()) {
      std::vector<std::string> row = {
          Table::integer(
              static_cast<std::uint64_t>(entry.get_number("job", 0))),
          entry.get_string("name", "?"), entry.get_string("kind", "?"),
          Table::integer(
              static_cast<std::uint64_t>(entry.get_number("lanes", 0))),
          entry.get_string("status", "?"),
          Table::integer(
              static_cast<std::uint64_t>(entry.get_number("waves", 0))),
          // Jobs replayed from an older daemon incarnation carry no
          // admission stamp — age is unknowable, not zero.
          entry.get("age_ms") != nullptr
              ? format_duration_ms(static_cast<std::uint64_t>(
                    entry.get_number("age_ms", 0)))
              : "-"};
      if (cluster) {
        row.push_back(entry.get("backend") != nullptr
                          ? Table::integer(static_cast<std::uint64_t>(
                                entry.get_number("backend", 0)))
                          : "-");
      }
      table.add_row(row);
    }
  }
  table.print(std::cout);
  if (cluster) {
    if (const Json* fwd = stats.get("forwarder"); fwd != nullptr) {
      std::printf(
          "cluster: %llu submitted, %llu rejected | %llu failovers "
          "(%llu resumed) | %llu backends up%s\n",
          static_cast<unsigned long long>(fwd->get_number("submitted", 0)),
          static_cast<unsigned long long>(fwd->get_number("rejected", 0)),
          static_cast<unsigned long long>(fwd->get_number("failovers", 0)),
          static_cast<unsigned long long>(
              fwd->get_number("failover_resumed", 0)),
          static_cast<unsigned long long>(fwd->get_number("backends_up", 0)),
          fwd->get_bool("draining", false) ? " (draining)" : "");
    }
  }
  const Json* pool = stats.get("pool");
  const Json* service = stats.get("service");
  if (pool != nullptr && service != nullptr) {
    std::printf(
        "pool: %llu arrays (%llu free) | running %llu, queued %llu | "
        "inflight %llu/%llu%s | submitted %llu, rejected %llu\n",
        static_cast<unsigned long long>(pool->get_number("arrays", 0)),
        static_cast<unsigned long long>(pool->get_number("free_arrays", 0)),
        static_cast<unsigned long long>(pool->get_number("running", 0)),
        static_cast<unsigned long long>(pool->get_number("queued", 0)),
        static_cast<unsigned long long>(service->get_number("inflight", 0)),
        static_cast<unsigned long long>(
            service->get_number("max_inflight", 0)),
        service->get_bool("draining", false) ? " (draining)" : "",
        static_cast<unsigned long long>(service->get_number("submitted", 0)),
        static_cast<unsigned long long>(service->get_number("rejected", 0)));
  }
  const Json* journal = stats.get("journal");
  if (journal != nullptr) {
    std::printf(
        "journal: %s | %llu appended, %llu replayed (%llu re-served, "
        "%llu resumed, %llu from checkpoint), %llu checkpoints written%s\n",
        journal->get_string("dir", "?").c_str(),
        static_cast<unsigned long long>(journal->get_number("appended", 0)),
        static_cast<unsigned long long>(
            journal->get_number("replayed_records", 0)),
        static_cast<unsigned long long>(
            journal->get_number("replayed_finished", 0)),
        static_cast<unsigned long long>(journal->get_number("resumed", 0)),
        static_cast<unsigned long long>(
            journal->get_number("resumed_from_checkpoint", 0)),
        static_cast<unsigned long long>(
            journal->get_number("checkpoints_written", 0)),
        journal->get_bool("truncated_tail", false) ? " [truncated tail]"
                                                   : "");
  }
  return 0;
}

int cmd_cancel(const Cli& cli) {
  const std::string job = require(cli, "job", kCancelUsage);
  svc::Client client = make_client(cli, kCancelUsage);
  Json request = Json::object();
  request.set("op", "cancel");
  if (job.find_first_not_of("0123456789") == std::string::npos) {
    request.set("job", static_cast<std::uint64_t>(std::stoull(job)));
  } else {
    request.set("job", job);  // by name
  }
  const Json response = client.request(request);
  if (!response.get_bool("ok", false)) {
    std::fprintf(stderr, "mpa cancel: %s\n",
                 response.get_string("error", "unknown error").c_str());
    return 1;
  }
  std::printf("cancel requested for job %llu (status %s)\n",
              static_cast<unsigned long long>(response.get_number("job", 0)),
              response.get_string("status", "?").c_str());
  return 0;
}

int cmd_drain(const Cli& cli) {
  const bool wait = bare_flag(cli, "wait", kDrainUsage);
  svc::Client client = make_client(cli, kDrainUsage);
  const Json response = client.drain(wait);
  if (!response.get_bool("ok", false)) {
    std::fprintf(stderr, "mpa drain: %s\n",
                 response.get_string("error", "unknown error").c_str());
    return 1;
  }
  std::printf("service draining; %llu missions still in flight\n",
              static_cast<unsigned long long>(
                  response.get_number("inflight", 0)));
  return 0;
}

int cmd_health(const Cli& cli) {
  const bool cluster = bare_flag(cli, "cluster", kHealthUsage);
  svc::Client client = make_client(cli, kHealthUsage);
  Json request = Json::object();
  request.set("op", "health");
  const Json response = client.request(request);
  if (!response.get_bool("ok", false)) {
    std::fprintf(stderr, "mpa health: %s\n",
                 response.get_string("error", "unknown error").c_str());
    return 1;
  }
  if (cluster) {
    // Forwarder view: one row per backend daemon. "STALE" flags a
    // backend that answers but whose last good stats poll is older than
    // 2x the poll cadence — suspect placement data, not an outage.
    Table table({"backend", "endpoint", "reachable", "epoch", "poll age",
                 "stale", "healthy", "quarantined", "preempted", "migrated",
                 "last fence"});
    const Json* backends = response.get("backends");
    if (backends != nullptr && backends->is_array()) {
      for (const Json& entry : backends->as_array()) {
        if (entry.get_bool("removed", false)) {
          table.add_row(
              {Table::integer(static_cast<std::uint64_t>(
                   entry.get_number("backend", 0))),
               entry.get_string("address", "?") + ":" +
                   Table::integer(static_cast<std::uint64_t>(
                       entry.get_number("port", 0))),
               "removed", "-", "-", "-", "-", "-", "-", "-", "-"});
          continue;
        }
        table.add_row(
            {Table::integer(
                 static_cast<std::uint64_t>(entry.get_number("backend", 0))),
             entry.get_string("address", "?") + ":" +
                 Table::integer(static_cast<std::uint64_t>(
                     entry.get_number("port", 0))),
             entry.get_bool("reachable", false) ? "yes" : "NO",
             entry.get("epoch") != nullptr
                 ? Table::integer(static_cast<std::uint64_t>(
                       entry.get_number("epoch", 0)))
                 : "-",
             entry.get("poll_age_ms") != nullptr
                 ? format_duration_ms(static_cast<std::uint64_t>(
                       entry.get_number("poll_age_ms", 0)))
                 : "-",
             entry.get("stale") != nullptr
                 ? (entry.get_bool("stale", false) ? "STALE" : "no")
                 : "-",
             Table::integer(
                 static_cast<std::uint64_t>(entry.get_number("healthy", 0))),
             Table::integer(static_cast<std::uint64_t>(
                 entry.get_number("quarantined", 0))),
             Table::integer(static_cast<std::uint64_t>(
                 entry.get_number("preempted", 0))),
             Table::integer(static_cast<std::uint64_t>(
                 entry.get_number("migrations", 0))),
             entry.get_string("last_fence", "-")});
      }
    }
    table.print(std::cout);
    std::printf(
        "cluster: healthy %llu, quarantined %llu, stale backends %llu, "
        "unreachable backends %llu\n",
        static_cast<unsigned long long>(response.get_number("healthy", 0)),
        static_cast<unsigned long long>(
            response.get_number("quarantined", 0)),
        static_cast<unsigned long long>(response.get_number("stale", 0)),
        static_cast<unsigned long long>(
            response.get_number("unreachable", 0)));
    return response.get_number("unreachable", 0) == 0 ? 0 : 1;
  }
  Table table({"array", "pool", "state", "job"});
  const Json* arrays = response.get("arrays");
  if (arrays != nullptr && arrays->is_array()) {
    for (const Json& entry : arrays->as_array()) {
      std::string state = entry.get_string("state", "?");
      if (entry.get_bool("pending_quarantine", false)) {
        state += " (quarantine pending)";
      }
      table.add_row(
          {Table::integer(
               static_cast<std::uint64_t>(entry.get_number("array", 0))),
           Table::integer(
               static_cast<std::uint64_t>(entry.get_number("pool", 0))),
           state, entry.get_string("job", "")});
    }
  }
  table.print(std::cout);
  std::printf(
      "healthy %llu, quarantined %llu | preempted %llu, migrated %llu, "
      "deadline-expired %llu\n",
      static_cast<unsigned long long>(response.get_number("healthy", 0)),
      static_cast<unsigned long long>(response.get_number("quarantined", 0)),
      static_cast<unsigned long long>(response.get_number("preempted", 0)),
      static_cast<unsigned long long>(response.get_number("migrations", 0)),
      static_cast<unsigned long long>(
          response.get_number("deadline_expired", 0)));
  const Json* faults = response.get("faults");
  if (faults != nullptr && faults->get_bool("active", false)) {
    std::printf("fault plan ACTIVE:\n");
    const Json* sites = faults->get("sites");
    if (sites != nullptr && sites->is_object()) {
      for (const auto& [site, counters] : sites->as_object()) {
        std::printf("  %-16s %llu hits, %llu fired\n", site.c_str(),
                    static_cast<unsigned long long>(
                        counters.get_number("hits", 0)),
                    static_cast<unsigned long long>(
                        counters.get_number("fired", 0)));
      }
    }
  }
  return 0;
}

/// mpa backend: live cluster membership against a forwarder — list the
/// member table (epochs, fences), add a daemon without restarting, or
/// tombstone one (its unfinished missions evacuate to the survivors).
int cmd_backend(const Cli& cli) {
  const std::vector<std::string>& args = cli.positional();
  if (args.empty()) fail("missing action (list|add|remove)", kBackendUsage);
  const std::string& action = args.front();
  svc::Client client = make_client(cli, kBackendUsage);
  Json request = Json::object();
  request.set("op", "backend");
  request.set("action", action);
  if (action == "add") {
    if (args.size() != 2) {
      fail("backend add needs one host:port[:journal] endpoint",
           kBackendUsage);
    }
    const svc::BackendConfig endpoint = parse_backend(args[1]);
    request.set("address", endpoint.address);
    request.set("port", static_cast<std::uint64_t>(endpoint.port));
    if (!endpoint.journal_dir.empty()) {
      request.set("journal", endpoint.journal_dir);
    }
  } else if (action == "remove") {
    const std::int64_t index = cli.get_int("backend", -1);
    if (index < 0) fail("backend remove needs --backend INDEX", kBackendUsage);
    request.set("backend", static_cast<std::uint64_t>(index));
  } else if (action != "list") {
    fail("unknown action '" + action + "' (list|add|remove)", kBackendUsage);
  }
  const Json response = client.request(request);
  if (!response.get_bool("ok", false)) {
    std::fprintf(stderr, "mpa backend: %s\n",
                 response.get_string("error", "unknown error").c_str());
    return 1;
  }
  if (action == "add") {
    std::printf("backend %llu added (%s)\n",
                static_cast<unsigned long long>(
                    response.get_number("backend", 0)),
                response.get_bool("reachable", false)
                    ? "reachable"
                    : "NOT reachable yet — it will be polled");
    return 0;
  }
  if (action == "remove") {
    std::printf("backend %llu removed, %llu mission(s) evacuated\n",
                static_cast<unsigned long long>(
                    response.get_number("backend", 0)),
                static_cast<unsigned long long>(
                    response.get_number("evacuated", 0)));
    return 0;
  }
  Table table({"backend", "endpoint", "reachable", "epoch", "instance",
               "rejoins", "fences", "last fence"});
  const Json* backends = response.get("backends");
  if (backends != nullptr && backends->is_array()) {
    for (const Json& entry : backends->as_array()) {
      const std::string endpoint =
          entry.get_string("address", "?") + ":" +
          Table::integer(
              static_cast<std::uint64_t>(entry.get_number("port", 0)));
      if (entry.get_bool("removed", false)) {
        table.add_row(
            {Table::integer(static_cast<std::uint64_t>(
                 entry.get_number("backend", 0))),
             endpoint, "removed", "-", "-", "-", "-", "-"});
        continue;
      }
      table.add_row(
          {Table::integer(
               static_cast<std::uint64_t>(entry.get_number("backend", 0))),
           endpoint, entry.get_bool("reachable", false) ? "yes" : "NO",
           entry.get("epoch") != nullptr
               ? Table::integer(static_cast<std::uint64_t>(
                     entry.get_number("epoch", 0)))
               : "-",
           entry.get_string("instance_id", "-"),
           Table::integer(
               static_cast<std::uint64_t>(entry.get_number("rejoins", 0))),
           Table::integer(
               static_cast<std::uint64_t>(entry.get_number("fences", 0))),
           entry.get_string("last_fence", "-")});
    }
  }
  table.print(std::cout);
  return 0;
}

/// mpa trace: the `trace` protocol op. Ops run in dump-before-clear
/// order, so `mpa trace out.json --clear` snapshots the rings and then
/// resets them — the natural profiling loop.
int cmd_trace(const Cli& cli) {
  const bool arm = bare_flag(cli, "arm", kTraceUsage);
  const bool disarm = bare_flag(cli, "disarm", kTraceUsage);
  const bool clear = bare_flag(cli, "clear", kTraceUsage);
  if (arm && disarm) fail("--arm and --disarm conflict", kTraceUsage);
  const std::vector<std::string>& args = cli.positional();
  if (args.size() > 1) fail("expected at most one OUT.json", kTraceUsage);
  const std::string out_path = args.empty() ? "" : args.front();
  if (out_path.empty() && !arm && !disarm && !clear) {
    fail("nothing to do (give OUT.json and/or --arm/--disarm/--clear)",
         kTraceUsage);
  }

  svc::Client client = make_client(cli, kTraceUsage);
  const auto trace_op = [&client](const char* mode) -> Json {
    Json request = Json::object();
    request.set("op", "trace");
    request.set("mode", mode);
    Json response = client.request(request);
    if (!response.get_bool("ok", false)) {
      fail("trace " + std::string(mode) + " failed: " +
           response.get_string("error", "unknown error"));
    }
    return response;
  };

  Json last = Json::object();
  if (arm) last = trace_op("arm");
  if (disarm) last = trace_op("disarm");
  if (!out_path.empty()) {
    last = trace_op("dump");
    const Json* trace = last.get("trace");
    if (trace == nullptr) fail("daemon sent no trace section");
    std::ofstream out(out_path);
    if (!out) fail("cannot open " + out_path + " for writing");
    out << trace->dump() << "\n";
    out.close();
    if (!out) fail("short write to " + out_path);
    const Json* events = trace->get("traceEvents");
    const std::size_t spans =
        events != nullptr && events->is_array() ? events->as_array().size()
                                                : 0;
    std::printf("mpa trace: wrote %zu spans to %s (load into "
                "chrome://tracing or ui.perfetto.dev)\n",
                spans, out_path.c_str());
  }
  if (clear) last = trace_op("clear");
  std::printf("mpa trace: tracer %s | %llu spans in the rings, %llu "
              "dropped\n",
              last.get_bool("armed", false) ? "armed" : "disarmed",
              static_cast<unsigned long long>(
                  last.get_number("recorded", 0)),
              static_cast<unsigned long long>(last.get_number("dropped", 0)));
  return 0;
}

/// Puts stdin into raw no-echo per-key mode for `mpa top` so a bare `q`
/// quits; the saved state is restored on destruction (including during
/// the unwind when the daemon hangs up mid-watch). A non-tty stdin (CI,
/// pipes) is left alone and top degrades to plain interval sleeps.
class RawStdin {
 public:
  RawStdin() {
    if (::isatty(STDIN_FILENO) != 1) return;
    if (::tcgetattr(STDIN_FILENO, &saved_) != 0) return;
    termios raw = saved_;
    raw.c_lflag &= ~static_cast<tcflag_t>(ICANON | ECHO);
    raw.c_cc[VMIN] = 0;
    raw.c_cc[VTIME] = 0;
    active_ = ::tcsetattr(STDIN_FILENO, TCSANOW, &raw) == 0;
  }
  ~RawStdin() {
    if (active_) ::tcsetattr(STDIN_FILENO, TCSANOW, &saved_);
  }
  RawStdin(const RawStdin&) = delete;
  RawStdin& operator=(const RawStdin&) = delete;
  [[nodiscard]] bool active() const noexcept { return active_; }

 private:
  termios saved_{};
  bool active_ = false;
};

/// Sleeps up to `ms` between frames; true means the user pressed q.
/// (Ctrl-C still raises SIGINT — raw mode keeps ISIG.)
bool top_wait_quit(bool keys, int ms) {
  if (!keys) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return false;
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  for (;;) {
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count();
    if (left <= 0) return false;
    pollfd pfd{STDIN_FILENO, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(left));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) return false;  // interval elapsed: next frame
    char c = 0;
    if (::read(STDIN_FILENO, &c, 1) == 1 && (c == 'q' || c == 'Q')) {
      return true;
    }
  }
}

/// "p50 412us / p99 1.3ms" from one of the stats op's telemetry
/// summaries; "-" until the histogram has samples.
/// One `mpa top` frame, composed off-screen and emitted as a single
/// write after the clear escape so the redraw doesn't flicker. `health`
/// is non-null only for the forwarder view (stale backend flags).
std::string render_top_frame(const Json& stats, const Json& list,
                             const Json* health, const std::string& endpoint,
                             double interval_s, bool keys) {
  std::string out = "mpa top - " + endpoint + " - every " +
                    Table::num(interval_s, 1) + "s" +
                    (keys ? " - q quits" : "") + "\n\n";
  char line[512];
  const bool cluster_view = stats.get_string("role", "") == "forwarder";
  if (cluster_view) {
    Table table({"backend", "endpoint", "up", "stale", "poll age", "free",
                 "running", "queued", "done", "failed"});
    const Json* cluster = stats.get("cluster");
    const Json* backends =
        cluster != nullptr ? cluster->get("backends") : nullptr;
    // The health op's backend rows are index-aligned with the stats
    // op's (both walk the configured backend list in order).
    const Json* health_backends =
        health != nullptr ? health->get("backends") : nullptr;
    if (backends != nullptr && backends->is_array()) {
      const auto& rows = backends->as_array();
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const Json& row = rows[i];
        std::string stale = "-";
        if (health_backends != nullptr && health_backends->is_array() &&
            i < health_backends->as_array().size()) {
          const Json& h = health_backends->as_array()[i];
          if (h.get("stale") != nullptr) {
            stale = h.get_bool("stale", false) ? "STALE" : "no";
          }
        }
        table.add_row(
            {Table::integer(
                 static_cast<std::uint64_t>(row.get_number("backend", 0))),
             row.get_string("address", "?") + ":" +
                 Table::integer(static_cast<std::uint64_t>(
                     row.get_number("port", 0))),
             row.get_bool("reachable", false) ? "yes" : "NO", stale,
             row.get("poll_age_ms") != nullptr
                 ? format_duration_ms(static_cast<std::uint64_t>(
                       row.get_number("poll_age_ms", 0)))
                 : "-",
             Table::integer(static_cast<std::uint64_t>(
                 row.get_number("free_arrays", 0))),
             Table::integer(
                 static_cast<std::uint64_t>(row.get_number("running", 0))),
             Table::integer(
                 static_cast<std::uint64_t>(row.get_number("queued", 0))),
             Table::integer(
                 static_cast<std::uint64_t>(row.get_number("done", 0))),
             Table::integer(static_cast<std::uint64_t>(
                 row.get_number("failed", 0)))});
      }
    }
    out += table.to_string();
    if (const Json* fwd = stats.get("forwarder"); fwd != nullptr) {
      std::snprintf(
          line, sizeof(line),
          "forwarder: %llu submitted, %llu rejected | %llu failovers "
          "(%llu resumed) | %llu routes, %llu backends up%s\n",
          static_cast<unsigned long long>(fwd->get_number("submitted", 0)),
          static_cast<unsigned long long>(fwd->get_number("rejected", 0)),
          static_cast<unsigned long long>(fwd->get_number("failovers", 0)),
          static_cast<unsigned long long>(
              fwd->get_number("failover_resumed", 0)),
          static_cast<unsigned long long>(fwd->get_number("routes", 0)),
          static_cast<unsigned long long>(
              fwd->get_number("backends_up", 0)),
          fwd->get_bool("draining", false) ? " (draining)" : "");
      out += line;
    }
  } else {
    const Json* pool = stats.get("pool");
    const Json* service = stats.get("service");
    if (pool != nullptr && service != nullptr) {
      std::snprintf(
          line, sizeof(line),
          "pool: %llu arrays (%llu free) | running %llu, queued %llu | "
          "inflight %llu/%llu%s | submitted %llu, rejected %llu\n",
          static_cast<unsigned long long>(pool->get_number("arrays", 0)),
          static_cast<unsigned long long>(
              pool->get_number("free_arrays", 0)),
          static_cast<unsigned long long>(pool->get_number("running", 0)),
          static_cast<unsigned long long>(pool->get_number("queued", 0)),
          static_cast<unsigned long long>(
              service->get_number("inflight", 0)),
          static_cast<unsigned long long>(
              service->get_number("max_inflight", 0)),
          service->get_bool("draining", false) ? " (draining)" : "",
          static_cast<unsigned long long>(
              service->get_number("submitted", 0)),
          static_cast<unsigned long long>(
              service->get_number("rejected", 0)));
      out += line;
    }
    const Json* telemetry = stats.get("telemetry");
    out += "latency: submit->ack " +
           hist_brief(telemetry, "submit_ack_latency") + " | mission wall " +
           hist_brief(telemetry, "mission_wall_time") + "\n";
    const Json* cache = stats.get("cache");
    const Json* memo = stats.get("memo");
    if (cache != nullptr && memo != nullptr) {
      const double cache_total =
          cache->get_number("hits", 0) + cache->get_number("misses", 0);
      const double memo_total =
          memo->get_number("hits", 0) + memo->get_number("misses", 0);
      std::snprintf(line, sizeof(line),
                    "cache: %.1f%% hit | memo: %.1f%% hit | tracer %s\n",
                    100.0 * cache->get_number("hits", 0) /
                        std::max(1.0, cache_total),
                    100.0 * memo->get_number("hits", 0) /
                        std::max(1.0, memo_total),
                    telemetry != nullptr &&
                            telemetry->get_bool("trace_armed", false)
                        ? "armed"
                        : "disarmed");
      out += line;
    }
  }
  out += "\n";
  const Json* jobs = list.get("jobs");
  if (jobs != nullptr && jobs->is_array()) {
    const auto& rows = jobs->as_array();
    // Newest page of jobs; older history scrolls off like top(1).
    constexpr std::size_t kTopJobs = 15;
    const std::size_t first =
        rows.size() > kTopJobs ? rows.size() - kTopJobs : 0;
    std::vector<std::string> columns = {"job",   "name",  "kind",
                                        "status", "waves", "age"};
    if (cluster_view) columns.push_back("backend");
    Table table(columns);
    for (std::size_t i = first; i < rows.size(); ++i) {
      const Json& entry = rows[i];
      std::vector<std::string> row = {
          Table::integer(
              static_cast<std::uint64_t>(entry.get_number("job", 0))),
          entry.get_string("name", "?"), entry.get_string("kind", "?"),
          entry.get_string("status", "?"),
          Table::integer(
              static_cast<std::uint64_t>(entry.get_number("waves", 0))),
          entry.get("age_ms") != nullptr
              ? format_duration_ms(static_cast<std::uint64_t>(
                    entry.get_number("age_ms", 0)))
              : "-"};
      if (cluster_view) {
        row.push_back(entry.get("backend") != nullptr
                          ? Table::integer(static_cast<std::uint64_t>(
                                entry.get_number("backend", 0)))
                          : "-");
      }
      table.add_row(row);
    }
    if (first > 0) {
      out += Table::integer(first) + " older jobs not shown\n";
    }
    out += table.to_string();
  }
  return out;
}

int cmd_top(const Cli& cli) {
  const bool cluster = bare_flag(cli, "cluster", kTopUsage);
  const std::int64_t interval = cli.get_int("interval", 1000);
  if (interval < 50) fail("--interval must be >= 50 ms", kTopUsage);
  const std::int64_t count = cli.get_int("count", 0);
  if (count < 0) fail("--count must be >= 0 (0 = run until q)", kTopUsage);
  const std::uint16_t port = require_port(cli, kTopUsage);
  const std::string address = cli.get("address", "127.0.0.1");
  const std::string endpoint = address + ":" + std::to_string(port);
  svc::Client client = make_client(cli, kTopUsage);
  RawStdin keys;
  for (std::int64_t frame = 0; count == 0 || frame < count; ++frame) {
    if (frame != 0 &&
        top_wait_quit(keys.active(), static_cast<int>(interval))) {
      break;
    }
    const Json stats = client.stats();
    const Json list = client.list();
    Json health = Json::object();
    const bool want_health =
        cluster || stats.get_string("role", "") == "forwarder";
    if (want_health) {
      Json request = Json::object();
      request.set("op", "health");
      health = client.request(request);
    }
    const std::string body =
        render_top_frame(stats, list, want_health ? &health : nullptr,
                         endpoint, static_cast<double>(interval) / 1000.0,
                         keys.active());
    std::fputs("\x1b[2J\x1b[H", stdout);  // clear screen, cursor home
    std::fputs(body.c_str(), stdout);
    std::fflush(stdout);
  }
  return 0;
}

int cmd_demo(const Cli& cli) {
  const auto size = static_cast<std::size_t>(cli.get_int("size", 64));
  const double noise = cli.get_double("noise", 0.3);
  const img::Image clean = img::make_scene(size, size, 7);
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));
  const img::Image noisy = img::add_salt_pepper(clean, noise, rng);
  img::write_pgm(clean, "demo_ref.pgm");
  img::write_pgm(noisy, "demo_train.pgm");
  std::printf(
      "wrote demo_train.pgm / demo_ref.pgm (%zux%zu, %.0f%% salt&pepper)\n"
      "try:\n"
      "  mpa evolve --train demo_train.pgm --ref demo_ref.pgm "
      "--lib demo_lib.txt --name denoise --generations 2000\n"
      "  mpa filter --lib demo_lib.txt --name denoise --in demo_train.pgm "
      "--out demo_out.pgm\n"
      "  mpa schematic --lib demo_lib.txt --name denoise\n"
      "  mpa campaign --lib demo_lib.txt --name denoise --train "
      "demo_train.pgm --ref demo_ref.pgm --recover\n",
      size, size, noise * 100);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    print_usage(stdout);
    return 0;
  }
  if (cmd == "version" || cmd == "--version" || cmd == "-V") {
    return cmd_version();
  }
  const Cli cli(argc - 1, argv + 1);
  try {
    if (cmd == "info") return cmd_info(cli);
    if (cmd == "evolve") return cmd_evolve(cli);
    if (cmd == "filter") return cmd_filter(cli);
    if (cmd == "schematic") return cmd_schematic(cli);
    if (cmd == "campaign") return cmd_campaign(cli);
    if (cmd == "batch") return cmd_batch(cli);
    if (cmd == "serve") return cmd_serve(cli);
    if (cmd == "forward") return cmd_forward(cli);
    if (cmd == "submit") return cmd_submit(cli);
    if (cmd == "result") return cmd_result(cli);
    if (cmd == "ps") return cmd_ps(cli);
    if (cmd == "stats") return cmd_stats(cli);
    if (cmd == "cancel") return cmd_cancel(cli);
    if (cmd == "drain") return cmd_drain(cli);
    if (cmd == "checkpoint") return cmd_checkpoint(cli);
    if (cmd == "restore") return cmd_restore(cli);
    if (cmd == "health") return cmd_health(cli);
    if (cmd == "backend") return cmd_backend(cli);
    if (cmd == "top") return cmd_top(cli);
    if (cmd == "trace") return cmd_trace(cli);
    if (cmd == "demo") return cmd_demo(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mpa %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  std::fprintf(stderr, "mpa: unknown subcommand '%s'\n", cmd.c_str());
  return usage();
}
