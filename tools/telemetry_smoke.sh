#!/usr/bin/env bash
# End-to-end telemetry smoke test: start `mpa serve` with the Prometheus
# endpoint on an ephemeral port, submit a mission, scrape /metrics and
# require the mission counters/histograms to have moved, render one
# `mpa top` frame, dump the span rings with `mpa trace` and validate the
# output as Chrome trace-event JSON.
#
# Usage: telemetry_smoke.sh /path/to/mpa [workdir]
set -u

MPA=${1:?usage: telemetry_smoke.sh /path/to/mpa [workdir]}
WORKDIR=${2:-.}
LOG="$WORKDIR/telemetry_smoke_serve.log"
SCRAPE="$WORKDIR/telemetry_smoke_scrape.txt"
TRACE="$WORKDIR/telemetry_smoke_trace.json"
TOP="$WORKDIR/telemetry_smoke_top.txt"

SERVER_PID=
cleanup() {
  if [ -n "${SERVER_PID:-}" ]; then
    kill "$SERVER_PID" 2>/dev/null
    wait "$SERVER_PID" 2>/dev/null
  fi
}
trap cleanup EXIT

fail() {
  echo "telemetry_smoke: $*" >&2
  exit 1
}

# Plain-bash HTTP GET (the CI image need not ship curl): /dev/tcp plus a
# HTTP/1.0 request; MetricsHttp answers one response and closes.
scrape_metrics() {
  local port=$1 out=$2
  exec 3<>"/dev/tcp/127.0.0.1/$port" || return 1
  printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
  cat <&3 >"$out"
  exec 3<&- 3>&-
}

rm -f "$LOG" "$SCRAPE" "$TRACE" "$TOP"
"$MPA" serve --arrays 2 --max-inflight 4 --metrics-port 0 >"$LOG" 2>&1 &
SERVER_PID=$!

# The daemon prints the service port and the metrics port; wait for both.
PORT=
MPORT=
for _ in $(seq 1 300); do
  PORT=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "$LOG" 2>/dev/null | head -1)
  MPORT=$(sed -n 's/.*metrics on http:\/\/[0-9.]*:\([0-9]*\).*/\1/p' "$LOG" 2>/dev/null | head -1)
  [ -n "$PORT" ] && [ -n "$MPORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "daemon died: $(cat "$LOG" 2>/dev/null)"
  sleep 0.1
done
[ -n "$PORT" ] || fail "daemon never reported its port"
[ -n "$MPORT" ] || fail "daemon never reported its metrics port"

# Idle scrape: the endpoint answers with zeroed mission counters.
scrape_metrics "$MPORT" "$SCRAPE" || fail "cannot scrape :$MPORT"
grep -q "^# TYPE mpa_missions_submitted_total counter" "$SCRAPE" ||
  fail "no counter TYPE line in idle scrape: $(head -5 "$SCRAPE")"
grep -q "^mpa_missions_submitted_total 0$" "$SCRAPE" ||
  fail "idle scrape should report 0 submissions"

"$MPA" submit --port "$PORT" denoise tsmoke lanes=1 generations=8 size=16 \
  >/dev/null 2>&1 || fail "submit failed"

# Post-mission scrape: counters moved, the latency histogram has samples
# and the scrape-time gauges are present.
scrape_metrics "$MPORT" "$SCRAPE" || fail "cannot re-scrape :$MPORT"
grep -q "^mpa_missions_submitted_total 1$" "$SCRAPE" ||
  fail "submitted counter did not move: $(grep mpa_missions "$SCRAPE")"
grep -q "^mpa_submit_ack_latency_ns_count [1-9]" "$SCRAPE" ||
  fail "submit latency histogram is empty"
grep -q "^mpa_mission_wall_time_ns_count [1-9]" "$SCRAPE" ||
  fail "mission wall-time histogram is empty"
grep -q "^mpa_free_arrays " "$SCRAPE" || fail "no scrape-time gauges"
grep -q "_bucket{le=\"+Inf\"}" "$SCRAPE" || fail "no +Inf histogram edge"

# One mpa top frame over the same daemon (non-tty stdin: draws and exits).
"$MPA" top --port "$PORT" --count 1 --interval 100 </dev/null >"$TOP" 2>&1 ||
  fail "mpa top failed: $(cat "$TOP")"
grep -q "pool:" "$TOP" || fail "top frame has no pool line: $(cat "$TOP")"
grep -q "latency:" "$TOP" || fail "top frame has no latency line"
grep -q "tsmoke" "$TOP" || fail "top frame does not list the job"

# The ps age column rides the new additive age_ms field.
"$MPA" ps --port "$PORT" | grep -q "age" || fail "ps has no age column"

# Dump the span rings and validate Chrome trace-event JSON shape.
"$MPA" trace "$TRACE" --port "$PORT" >/dev/null || fail "trace dump failed"
[ -s "$TRACE" ] || fail "trace dump is empty"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$TRACE" <<'EOF' || fail "trace JSON invalid"
import json, sys
with open(sys.argv[1]) as handle:
    trace = json.load(handle)
events = trace["traceEvents"]
assert isinstance(events, list) and events, "no spans recorded"
names = {e["name"] for e in events}
for event in events:
    assert event["ph"] == "X", event
    assert "ts" in event and "dur" in event and "tid" in event, event
# The daemon's submit handler must have traced itself.
assert "submit" in names, sorted(names)
EOF
else
  grep -q '"traceEvents":\[{' "$TRACE" || fail "no spans in trace dump"
  grep -q '"ph":"X"' "$TRACE" || fail "no complete events in trace dump"
fi

# --clear resets the rings; an immediate dump is empty.
"$MPA" trace --clear --port "$PORT" >/dev/null || fail "trace clear failed"
"$MPA" trace "$TRACE" --port "$PORT" >/dev/null || fail "re-dump failed"
grep -q '"traceEvents":\[\]' "$TRACE" || fail "clear left spans behind"

"$MPA" drain --port "$PORT" --wait || fail "drain failed"
wait "$SERVER_PID" || fail "daemon exited non-zero after drain"
SERVER_PID=

echo "telemetry_smoke: OK (service $PORT, metrics $MPORT)"
