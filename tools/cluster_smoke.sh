#!/usr/bin/env bash
# Federation smoke test — the cluster gate run by CI and ctest.
#
# Scenario: two durable backend daemons behind an `mpa forward` front.
# Submit through the front, then kill -9 the backend hosting a long
# mission mid-flight and require the front to (a) fail the mission over
# to the surviving backend from its journaled checkpoint and land on the
# BIT-IDENTICAL result of an uninterrupted run, and (b) report the dead
# backend in `mpa health --cluster` (non-zero exit while unreachable).
#
# Usage: cluster_smoke.sh /path/to/mpa [workdir]
set -u

MPA=${1:?usage: cluster_smoke.sh /path/to/mpa [workdir]}
WORKDIR=${2:-.}
JDIR_A="$WORKDIR/cluster_journal_a"
JDIR_B="$WORKDIR/cluster_journal_b"
LOG_A="$WORKDIR/cluster_serve_a.log"
LOG_B="$WORKDIR/cluster_serve_b.log"
LOG_F="$WORKDIR/cluster_forward.log"

# All three daemons die with the script on ANY exit path (fail, set -u
# abort, harness timeout) — never leak an orphaned process.
PID_A=
PID_B=
PID_F=
cleanup() {
  for pid in "${PID_F:-}" "${PID_A:-}" "${PID_B:-}"; do
    if [ -n "$pid" ]; then
      kill "$pid" 2>/dev/null
      wait "$pid" 2>/dev/null
    fi
  done
}
trap cleanup EXIT

fail() {
  echo "cluster_smoke: $*" >&2
  exit 1
}

# Waits for "listening on A:P" in $1 while pid $2 stays alive; echoes P.
wait_port() {
  local log=$1 pid=$2 port=
  for _ in $(seq 1 300); do
    port=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "$log" 2>/dev/null | head -1)
    if [ -n "$port" ]; then
      echo "$port"
      return 0
    fi
    kill -0 "$pid" 2>/dev/null || return 1
    sleep 0.1
  done
  return 1
}

rm -rf "$JDIR_A" "$JDIR_B"
rm -f "$LOG_A" "$LOG_B" "$LOG_F"

# ---- two durable backends + the federation front -----------------------
"$MPA" serve --arrays 2 --journal "$JDIR_A" --checkpoint-every 3 >"$LOG_A" 2>&1 &
PID_A=$!
"$MPA" serve --arrays 2 --journal "$JDIR_B" --checkpoint-every 3 >"$LOG_B" 2>&1 &
PID_B=$!
PORT_A=$(wait_port "$LOG_A" "$PID_A") \
  || fail "backend A never reported its port: $(cat "$LOG_A" 2>/dev/null)"
PORT_B=$(wait_port "$LOG_B" "$PID_B") \
  || fail "backend B never reported its port: $(cat "$LOG_B" 2>/dev/null)"

"$MPA" forward --poll-ms 100 --down-after 2 \
  "127.0.0.1:$PORT_A:$JDIR_A" "127.0.0.1:$PORT_B:$JDIR_B" >"$LOG_F" 2>&1 &
PID_F=$!
PORT_F=$(wait_port "$LOG_F" "$PID_F") \
  || fail "front never reported its port: $(cat "$LOG_F" 2>/dev/null)"

# ---- routed quick mission: front speaks the plain client protocol ------
QUICK=$("$MPA" submit --port "$PORT_F" denoise quick lanes=1 generations=8 size=16) \
  || fail "routed submit failed: $QUICK"
echo "$QUICK" | grep -q "done: fitness" || fail "no routed result in: $QUICK"

"$MPA" health --port "$PORT_F" --cluster | grep -q "unreachable backends 0" \
  || fail "health --cluster does not show both backends up"

# ---- kill -9 the backend hosting a long mission mid-flight -------------
"$MPA" submit --port "$PORT_F" denoise longrun lanes=2 generations=400 size=32 --detach \
  || fail "long submit failed"

# Wait for a checkpoint sidecar so the failover genuinely RESUMES
# mid-mission; the journal holding it identifies the hosting backend.
VICTIM_JDIR=
for _ in $(seq 1 600); do
  if ls "$JDIR_A"/job-*.ckpt >/dev/null 2>&1; then
    VICTIM_JDIR=$JDIR_A
    break
  fi
  if ls "$JDIR_B"/job-*.ckpt >/dev/null 2>&1; then
    VICTIM_JDIR=$JDIR_B
    break
  fi
  kill -0 "$PID_F" 2>/dev/null || fail "front died early: $(cat "$LOG_F")"
  sleep 0.05
done
[ -n "$VICTIM_JDIR" ] || fail "no checkpoint appeared in either backend journal"

if [ "$VICTIM_JDIR" = "$JDIR_A" ]; then
  kill -9 "$PID_A"; wait "$PID_A" 2>/dev/null; PID_A=
else
  kill -9 "$PID_B"; wait "$PID_B" 2>/dev/null; PID_B=
fi

# The front must bring the orphaned mission to a terminal state on the
# survivor — resumed from its checkpoint, bit-identical to an
# uninterrupted run of the same spec.
RECOVERED=$("$MPA" result --port "$PORT_F" --job longrun --retries 5) \
  || fail "result after backend kill failed: $RECOVERED"
REC_LINE=$(echo "$RECOVERED" | sed -n 's/.*\(fitness [0-9]*, genotype [0-9a-fx]*\).*/\1/p' | head -1)
[ -n "$REC_LINE" ] || fail "cannot parse failed-over result: $RECOVERED"

REFERENCE=$("$MPA" submit --port "$PORT_F" denoise reference lanes=2 generations=400 size=32 --quiet) \
  || fail "reference submit failed: $REFERENCE"
REF_LINE=$(echo "$REFERENCE" | sed -n 's/.*\(fitness [0-9]*, genotype [0-9a-fx]*\).*/\1/p' | head -1)
[ -n "$REF_LINE" ] || fail "cannot parse reference result: $REFERENCE"

[ "$REC_LINE" = "$REF_LINE" ] \
  || fail "failed-over result differs from uninterrupted run: recovered='$REC_LINE' reference='$REF_LINE'"

# ---- the dead backend is visible, loudly -------------------------------
HEALTH=$("$MPA" health --port "$PORT_F" --cluster)
HEALTH_RC=$?
[ "$HEALTH_RC" -ne 0 ] || fail "health --cluster exited 0 with a dead backend"
echo "$HEALTH" | grep -q "unreachable backends 1" \
  || fail "health --cluster does not report the dead backend: $HEALTH"
echo "$HEALTH" | grep -q "NO" \
  || fail "health --cluster does not mark the dead backend unreachable: $HEALTH"

"$MPA" ps --port "$PORT_F" --cluster | grep -q "longrun.*done" \
  || fail "ps --cluster does not show the failed-over mission done"

"$MPA" drain --port "$PORT_F" --wait || fail "front drain failed"
wait "$PID_F" || fail "front exited non-zero after drain"
PID_F=

echo "cluster_smoke: OK ($REC_LINE, victim=$(basename "$VICTIM_JDIR"))"
