#!/usr/bin/env bash
# Chaos smoke test — the self-healing gate run by CI and ctest.
#
# Scenario: start a daemon with a hostile deterministic fault plan
# (socket stalls and severed connections, injected task throws, lane
# SEUs that quarantine arrays mid-flight, journal fsync and checkpoint
# I/O faults), drive a fleet of missions through the retrying client,
# and require that EVERY mission reaches a terminal state — done, or a
# clean reported failure — with the daemon alive throughout. A hang, a
# daemon crash, or a client giving up with "unreachable" all fail the
# gate. `mpa health` must report the degraded pool and the fired fault
# counters while the storm is still armed.
#
# Usage: chaos_smoke.sh /path/to/mpa [workdir]
set -u

MPA=${1:?usage: chaos_smoke.sh /path/to/mpa [workdir]}
WORKDIR=${2:-.}
JDIR="$WORKDIR/chaos_journal"
LOG="$WORKDIR/chaos_serve.log"

# Sequenced triggers, seeded coins: the same storm every run. Socket
# faults keep firing forever; task throws and SEUs are capped so the
# pool degrades but never collapses (4 arrays, at most 2 quarantined).
PLAN='sock_read_stall=after:5,every:6;sock_write_stall=after:7,every:8;'
PLAN+='sock_read_error=after:12,every:9;task_throw=after:1,every:3,count:3;'
PLAN+='lane_seu=after:25,every:40,count:2;fsync=every:3;'
PLAN+='checkpoint_io=every:5;stall-ms=100;seed=99'

SERVER_PID=
cleanup() {
  if [ -n "${SERVER_PID:-}" ]; then
    kill "$SERVER_PID" 2>/dev/null
    wait "$SERVER_PID" 2>/dev/null
  fi
}
trap cleanup EXIT

fail() {
  echo "chaos_smoke: $*" >&2
  exit 1
}

# Waits for "listening on A:P" in $1 while pid $2 stays alive; echoes P.
wait_port() {
  local log=$1 pid=$2 port=
  for _ in $(seq 1 300); do
    port=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "$log" 2>/dev/null | head -1)
    if [ -n "$port" ]; then
      echo "$port"
      return 0
    fi
    kill -0 "$pid" 2>/dev/null || return 1
    sleep 0.1
  done
  return 1
}

rm -rf "$JDIR"
rm -f "$LOG"

# ---- daemon with the storm armed ---------------------------------------
"$MPA" serve --arrays 4 --journal "$JDIR" --checkpoint-every 3 \
  --fault-plan "$PLAN" >"$LOG" 2>&1 &
SERVER_PID=$!
PORT=$(wait_port "$LOG" "$SERVER_PID") \
  || fail "daemon never reported its port: $(cat "$LOG" 2>/dev/null)"
grep -q "FAULT PLAN ARMED" "$LOG" || fail "daemon did not arm the fault plan"

# ---- a fleet of missions through the retrying client -------------------
# --retries reconnects through severed connections with backoff and
# resubmits idempotently (dedup by mission name); --timeout-ms unsticks
# reads held by injected stalls.
SUBMIT_FLAGS="--retries 8 --timeout-ms 4000 --detach"
"$MPA" submit --port "$PORT" denoise    ch1 lanes=2 generations=120 size=16 $SUBMIT_FLAGS \
  || fail "submit ch1 failed"
"$MPA" submit --port "$PORT" edge       ch2 lanes=2 generations=100 size=16 $SUBMIT_FLAGS \
  || fail "submit ch2 failed"
"$MPA" submit --port "$PORT" morphology ch3 lanes=1 generations=100 size=16 $SUBMIT_FLAGS \
  || fail "submit ch3 failed"
"$MPA" submit --port "$PORT" denoise    ch4 lanes=2 generations=120 size=16 $SUBMIT_FLAGS \
  || fail "submit ch4 failed"

# Every mission must land: done, or a failure the service REPORTS. The
# client exhausting its retries ("unreachable") or a dead daemon is a
# robustness bug, not an acceptable outcome.
DONE_COUNT=0
for name in ch1 ch2 ch3 ch4; do
  OUT=$("$MPA" result --port "$PORT" --job "$name" --retries 8 --timeout-ms 4000 2>&1)
  STATUS=$?
  kill -0 "$SERVER_PID" 2>/dev/null || fail "daemon died during $name: $(cat "$LOG")"
  if [ "$STATUS" -eq 0 ]; then
    DONE_COUNT=$((DONE_COUNT + 1))
    echo "chaos_smoke: $name done ($OUT)"
  else
    case "$OUT" in
      *unreachable*) fail "$name: client gave up: $OUT" ;;
      *) echo "chaos_smoke: $name failed cleanly ($OUT)" ;;
    esac
  fi
done
[ "$DONE_COUNT" -ge 1 ] \
  || fail "no mission survived the storm — retry/migration path is dead"

# ---- health under fire -------------------------------------------------
HEALTH=
for _ in $(seq 1 8); do
  HEALTH=$("$MPA" health --port "$PORT" --timeout-ms 4000 2>&1) && break
  HEALTH=
  sleep 0.2
done
[ -n "$HEALTH" ] || fail "health op never succeeded"
echo "$HEALTH" | grep -q "healthy " || fail "health misses pool summary: $HEALTH"
echo "$HEALTH" | grep -q "fault plan ACTIVE:" \
  || fail "health does not report the armed fault plan: $HEALTH"

# ---- the service core still serves -------------------------------------
# After the storm's capped faults are spent the daemon must still take
# and finish new work on its degraded (but non-empty) pool.
"$MPA" submit --port "$PORT" denoise aftermath lanes=1 generations=60 size=16 $SUBMIT_FLAGS \
  || fail "post-storm submit failed"
AFTER=$("$MPA" result --port "$PORT" --job aftermath --retries 8 --timeout-ms 4000 2>&1)
STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  case "$AFTER" in
    *unreachable*) fail "post-storm client gave up: $AFTER" ;;
    *"injected task fault"*) echo "chaos_smoke: aftermath ate a leftover injected fault ($AFTER)" ;;
    *) fail "post-storm mission failed: $AFTER" ;;
  esac
else
  echo "chaos_smoke: aftermath done ($AFTER)"
fi

# ---- graceful exit through the persistent socket faults ----------------
DRAINED=0
for _ in $(seq 1 8); do
  if "$MPA" drain --port "$PORT" --wait --timeout-ms 4000 2>/dev/null; then
    DRAINED=1
    break
  fi
  kill -0 "$SERVER_PID" 2>/dev/null || { DRAINED=1; break; }  # already down
  sleep 0.2
done
[ "$DRAINED" = 1 ] || fail "drain never got through"
# `mpa serve` exits 1 when missions failed during its lifetime — expected
# under an armed fault plan. Anything else (aborts, signals land >128)
# means the daemon did not survive the storm intact.
wait "$SERVER_PID"
SERVE_EXIT=$?
[ "$SERVE_EXIT" -le 1 ] || fail "daemon crashed (exit $SERVE_EXIT): $(cat "$LOG")"
SERVER_PID=

echo "chaos_smoke: OK (done=$DONE_COUNT/4 + aftermath, plan: $PLAN)"
