#!/usr/bin/env bash
# Chaos smoke test — the self-healing gate run by CI and ctest.
#
# Scenario: start a daemon with a hostile deterministic fault plan
# (socket stalls and severed connections, injected task throws, lane
# SEUs that quarantine arrays mid-flight, journal fsync and checkpoint
# I/O faults), drive a fleet of missions through the retrying client,
# and require that EVERY mission reaches a terminal state — done, or a
# clean reported failure — with the daemon alive throughout. A hang, a
# daemon crash, or a client giving up with "unreachable" all fail the
# gate. `mpa health` must report the degraded pool and the fired fault
# counters while the storm is still armed.
#
# A second, federated stage arms the membership-layer fault sites
# (poll_error, backend_hello, oversize_line) on an `mpa forward` front:
# injected poll failures and hello corruption churn backends through the
# down/rejoin path, and injected oversize reads sever frames mid-stream —
# routed missions must still land and the front must drain cleanly.
#
# Usage: chaos_smoke.sh /path/to/mpa [workdir]
set -u

MPA=${1:?usage: chaos_smoke.sh /path/to/mpa [workdir]}
WORKDIR=${2:-.}
JDIR="$WORKDIR/chaos_journal"
LOG="$WORKDIR/chaos_serve.log"
JDIR_FB="$WORKDIR/chaos_fed_journal"
LOG_FB="$WORKDIR/chaos_fed_serve.log"
LOG_FF="$WORKDIR/chaos_forward.log"

# Sequenced triggers, seeded coins: the same storm every run. Socket
# faults keep firing forever; task throws and SEUs are capped so the
# pool degrades but never collapses (4 arrays, at most 2 quarantined).
PLAN='sock_read_stall=after:5,every:6;sock_write_stall=after:7,every:8;'
PLAN+='sock_read_error=after:12,every:9;task_throw=after:1,every:3,count:3;'
PLAN+='lane_seu=after:25,every:40,count:2;fsync=every:3;'
PLAN+='checkpoint_io=every:5;stall-ms=100;seed=99'

SERVER_PID=
FED_PID=
FWD_PID=
cleanup() {
  for pid in "${FWD_PID:-}" "${FED_PID:-}" "${SERVER_PID:-}"; do
    if [ -n "$pid" ]; then
      kill "$pid" 2>/dev/null
      wait "$pid" 2>/dev/null
    fi
  done
}
trap cleanup EXIT

fail() {
  echo "chaos_smoke: $*" >&2
  exit 1
}

# Waits for "listening on A:P" in $1 while pid $2 stays alive; echoes P.
wait_port() {
  local log=$1 pid=$2 port=
  for _ in $(seq 1 300); do
    port=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "$log" 2>/dev/null | head -1)
    if [ -n "$port" ]; then
      echo "$port"
      return 0
    fi
    kill -0 "$pid" 2>/dev/null || return 1
    sleep 0.1
  done
  return 1
}

rm -rf "$JDIR"
rm -f "$LOG"

# ---- daemon with the storm armed ---------------------------------------
"$MPA" serve --arrays 4 --journal "$JDIR" --checkpoint-every 3 \
  --fault-plan "$PLAN" >"$LOG" 2>&1 &
SERVER_PID=$!
PORT=$(wait_port "$LOG" "$SERVER_PID") \
  || fail "daemon never reported its port: $(cat "$LOG" 2>/dev/null)"
grep -q "FAULT PLAN ARMED" "$LOG" || fail "daemon did not arm the fault plan"

# ---- a fleet of missions through the retrying client -------------------
# --retries reconnects through severed connections with backoff and
# resubmits idempotently (dedup by mission name); --timeout-ms unsticks
# reads held by injected stalls.
SUBMIT_FLAGS="--retries 8 --timeout-ms 4000 --detach"
"$MPA" submit --port "$PORT" denoise    ch1 lanes=2 generations=120 size=16 $SUBMIT_FLAGS \
  || fail "submit ch1 failed"
"$MPA" submit --port "$PORT" edge       ch2 lanes=2 generations=100 size=16 $SUBMIT_FLAGS \
  || fail "submit ch2 failed"
"$MPA" submit --port "$PORT" morphology ch3 lanes=1 generations=100 size=16 $SUBMIT_FLAGS \
  || fail "submit ch3 failed"
"$MPA" submit --port "$PORT" denoise    ch4 lanes=2 generations=120 size=16 $SUBMIT_FLAGS \
  || fail "submit ch4 failed"

# Every mission must land: done, or a failure the service REPORTS. The
# client exhausting its retries ("unreachable") or a dead daemon is a
# robustness bug, not an acceptable outcome.
DONE_COUNT=0
for name in ch1 ch2 ch3 ch4; do
  OUT=$("$MPA" result --port "$PORT" --job "$name" --retries 8 --timeout-ms 4000 2>&1)
  STATUS=$?
  kill -0 "$SERVER_PID" 2>/dev/null || fail "daemon died during $name: $(cat "$LOG")"
  if [ "$STATUS" -eq 0 ]; then
    DONE_COUNT=$((DONE_COUNT + 1))
    echo "chaos_smoke: $name done ($OUT)"
  else
    case "$OUT" in
      *unreachable*) fail "$name: client gave up: $OUT" ;;
      *) echo "chaos_smoke: $name failed cleanly ($OUT)" ;;
    esac
  fi
done
[ "$DONE_COUNT" -ge 1 ] \
  || fail "no mission survived the storm — retry/migration path is dead"

# ---- health under fire -------------------------------------------------
HEALTH=
for _ in $(seq 1 8); do
  HEALTH=$("$MPA" health --port "$PORT" --timeout-ms 4000 2>&1) && break
  HEALTH=
  sleep 0.2
done
[ -n "$HEALTH" ] || fail "health op never succeeded"
echo "$HEALTH" | grep -q "healthy " || fail "health misses pool summary: $HEALTH"
echo "$HEALTH" | grep -q "fault plan ACTIVE:" \
  || fail "health does not report the armed fault plan: $HEALTH"

# ---- the service core still serves -------------------------------------
# After the storm's capped faults are spent the daemon must still take
# and finish new work on its degraded (but non-empty) pool.
"$MPA" submit --port "$PORT" denoise aftermath lanes=1 generations=60 size=16 $SUBMIT_FLAGS \
  || fail "post-storm submit failed"
AFTER=$("$MPA" result --port "$PORT" --job aftermath --retries 8 --timeout-ms 4000 2>&1)
STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  case "$AFTER" in
    *unreachable*) fail "post-storm client gave up: $AFTER" ;;
    *"injected task fault"*) echo "chaos_smoke: aftermath ate a leftover injected fault ($AFTER)" ;;
    *) fail "post-storm mission failed: $AFTER" ;;
  esac
else
  echo "chaos_smoke: aftermath done ($AFTER)"
fi

# ---- graceful exit through the persistent socket faults ----------------
DRAINED=0
for _ in $(seq 1 8); do
  if "$MPA" drain --port "$PORT" --wait --timeout-ms 4000 2>/dev/null; then
    DRAINED=1
    break
  fi
  kill -0 "$SERVER_PID" 2>/dev/null || { DRAINED=1; break; }  # already down
  sleep 0.2
done
[ "$DRAINED" = 1 ] || fail "drain never got through"
# `mpa serve` exits 1 when missions failed during its lifetime — expected
# under an armed fault plan. Anything else (aborts, signals land >128)
# means the daemon did not survive the storm intact.
wait "$SERVER_PID"
SERVE_EXIT=$?
[ "$SERVE_EXIT" -le 1 ] || fail "daemon crashed (exit $SERVE_EXIT): $(cat "$LOG")"
SERVER_PID=

# ---- federated storm: the membership layer under injected faults -------
# A healthy backend behind a front whose OWN fault plan corrupts the
# membership machinery: capped poll errors and hello corruption churn
# the backend through down/rejoin, and injected oversize reads sever
# frames mid-stream. Routed work must still land; the front must stay
# up and drain cleanly.
rm -rf "$JDIR_FB"
rm -f "$LOG_FB" "$LOG_FF"
FED_PLAN='poll_error=after:2,every:4,count:6;backend_hello=after:3,every:5,count:4;'
FED_PLAN+='oversize_line=after:6,every:9,count:3;seed=41'

"$MPA" serve --arrays 2 --journal "$JDIR_FB" --checkpoint-every 3 >"$LOG_FB" 2>&1 &
FED_PID=$!
PORT_FB=$(wait_port "$LOG_FB" "$FED_PID") \
  || fail "federated backend never reported its port: $(cat "$LOG_FB" 2>/dev/null)"

"$MPA" forward --poll-ms 100 --down-after 2 --timeout-ms 2000 \
  --fault-plan "$FED_PLAN" "127.0.0.1:$PORT_FB:$JDIR_FB" >"$LOG_FF" 2>&1 &
FWD_PID=$!
PORT_FF=$(wait_port "$LOG_FF" "$FWD_PID") \
  || fail "front never reported its port: $(cat "$LOG_FF" 2>/dev/null)"
grep -q "FAULT PLAN ARMED" "$LOG_FF" || fail "front did not arm the fault plan"

# Submit through the storm: injected faults can sever the front's
# southbound connection mid-submit, which surfaces as a clean rejection.
# Submits are idempotent by mission name, so the fix is simply to retry.
for name in fed1 fed2; do
  SUBMITTED=0
  for _ in $(seq 1 20); do
    if "$MPA" submit --port "$PORT_FF" denoise "$name" lanes=1 generations=60 size=16 $SUBMIT_FLAGS; then
      SUBMITTED=1
      break
    fi
    kill -0 "$FWD_PID" 2>/dev/null || fail "front died submitting $name: $(cat "$LOG_FF")"
    sleep 0.3
  done
  [ "$SUBMITTED" = 1 ] || fail "federated submit $name never got through the storm"
done
for name in fed1 fed2; do
  OUT=$("$MPA" result --port "$PORT_FF" --job "$name" --retries 8 --timeout-ms 4000 2>&1)
  STATUS=$?
  kill -0 "$FWD_PID" 2>/dev/null || fail "front died during $name: $(cat "$LOG_FF")"
  if [ "$STATUS" -eq 0 ]; then
    echo "chaos_smoke: $name done ($OUT)"
  else
    case "$OUT" in
      *unreachable*) fail "$name: client gave up on the stormed front: $OUT" ;;
      *) echo "chaos_smoke: $name failed cleanly ($OUT)" ;;
    esac
  fi
done

FED_DRAINED=0
for _ in $(seq 1 8); do
  if "$MPA" drain --port "$PORT_FF" --wait --timeout-ms 4000 2>/dev/null; then
    FED_DRAINED=1
    break
  fi
  kill -0 "$FWD_PID" 2>/dev/null || { FED_DRAINED=1; break; }
  sleep 0.2
done
[ "$FED_DRAINED" = 1 ] || fail "front drain never got through the storm"
wait "$FWD_PID"
FWD_EXIT=$?
[ "$FWD_EXIT" -le 1 ] || fail "front crashed (exit $FWD_EXIT): $(cat "$LOG_FF")"
FWD_PID=
kill "$FED_PID" 2>/dev/null
wait "$FED_PID" 2>/dev/null
FED_PID=

echo "chaos_smoke: OK (done=$DONE_COUNT/4 + aftermath, plan: $PLAN; federated plan: $FED_PLAN)"
