#!/usr/bin/env bash
# Crash-recovery smoke test — the durability gate run by CI and ctest.
#
# Scenario: start a durable daemon (`mpa serve --journal`), submit a
# long mission, kill -9 the daemon mid-flight, restart it on the same
# journal, and assert the recovered mission lands on the BIT-IDENTICAL
# result (fitness + genotype hash) of an uninterrupted run of the same
# spec — resumed from its latest checkpoint, not merely restarted.
#
# Usage: recovery_smoke.sh /path/to/mpa [workdir]
set -u

MPA=${1:?usage: recovery_smoke.sh /path/to/mpa [workdir]}
WORKDIR=${2:-.}
JDIR="$WORKDIR/recovery_journal"
LOG1="$WORKDIR/recovery_serve1.log"
LOG2="$WORKDIR/recovery_serve2.log"

# Whatever happens (fail, set -u abort, harness timeout), take the
# daemon down with the script — never leak an orphaned server.
SERVER_PID=
cleanup() {
  if [ -n "${SERVER_PID:-}" ]; then
    kill "$SERVER_PID" 2>/dev/null
    wait "$SERVER_PID" 2>/dev/null
  fi
}
trap cleanup EXIT

fail() {
  echo "recovery_smoke: $*" >&2
  exit 1
}

# Waits for "listening on A:P" in $1 while pid $2 stays alive; echoes P.
wait_port() {
  local log=$1 pid=$2 port=
  for _ in $(seq 1 300); do
    port=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "$log" 2>/dev/null | head -1)
    if [ -n "$port" ]; then
      echo "$port"
      return 0
    fi
    kill -0 "$pid" 2>/dev/null || return 1
    sleep 0.1
  done
  return 1
}

rm -rf "$JDIR"
rm -f "$LOG1" "$LOG2"

# ---- incarnation 1: durable daemon, long mission, kill -9 mid-flight ----
"$MPA" serve --arrays 2 --journal "$JDIR" --checkpoint-every 3 >"$LOG1" 2>&1 &
SERVER_PID=$!
PORT=$(wait_port "$LOG1" "$SERVER_PID") \
  || fail "daemon 1 never reported its port: $(cat "$LOG1" 2>/dev/null)"

"$MPA" submit --port "$PORT" denoise rec lanes=2 generations=400 size=32 --detach \
  || fail "submit failed"

# Wait for a checkpoint sidecar so recovery genuinely RESUMES mid-mission
# (a from-scratch rerun would also be bit-identical, but would not
# exercise the restore path).
CKPT_SEEN=0
for _ in $(seq 1 600); do
  if ls "$JDIR"/job-*.ckpt >/dev/null 2>&1; then
    CKPT_SEEN=1
    break
  fi
  kill -0 "$SERVER_PID" 2>/dev/null || fail "daemon 1 died early: $(cat "$LOG1")"
  sleep 0.05
done
[ "$CKPT_SEEN" = 1 ] || echo "recovery_smoke: warning: no checkpoint before the kill (mission may have finished; journal will re-serve)"

kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=

# ---- incarnation 2: same journal; the mission resumes and finishes -----
"$MPA" serve --arrays 2 --journal "$JDIR" --checkpoint-every 3 >"$LOG2" 2>&1 &
SERVER_PID=$!
PORT2=$(wait_port "$LOG2" "$SERVER_PID") \
  || fail "daemon 2 never reported its port: $(cat "$LOG2" 2>/dev/null)"
grep -q "journal $JDIR" "$LOG2" || fail "daemon 2 did not report its journal: $(cat "$LOG2")"

RECOVERED=$("$MPA" result --port "$PORT2" --job rec) \
  || fail "result after recovery failed: $RECOVERED"
REC_LINE=$(echo "$RECOVERED" | sed -n 's/.*\(fitness [0-9]*, genotype [0-9a-fx]*\).*/\1/p' | head -1)
[ -n "$REC_LINE" ] || fail "cannot parse recovered result: $RECOVERED"

# ---- reference: the identical spec, uninterrupted, same daemon ---------
# Deliberately the SAME mission name: daemons must tolerate duplicate
# names across restarts (lookup by name resolves to the latest id).
REFERENCE=$("$MPA" submit --port "$PORT2" denoise rec lanes=2 generations=400 size=32 --quiet) \
  || fail "reference submit failed: $REFERENCE"
REF_LINE=$(echo "$REFERENCE" | sed -n 's/.*\(fitness [0-9]*, genotype [0-9a-fx]*\).*/\1/p' | head -1)
[ -n "$REF_LINE" ] || fail "cannot parse reference result: $REFERENCE"

[ "$REC_LINE" = "$REF_LINE" ] \
  || fail "recovered result differs from uninterrupted run: recovered='$REC_LINE' reference='$REF_LINE'"

"$MPA" ps --port "$PORT2" | grep -q "journal: " || fail "ps does not show the journal"

"$MPA" drain --port "$PORT2" --wait || fail "drain failed"
wait "$SERVER_PID" || fail "daemon 2 exited non-zero after drain"
SERVER_PID=

[ -f "$JDIR/warm.json" ] || fail "graceful stop did not persist warm state"
ls "$JDIR"/job-*.ckpt >/dev/null 2>&1 && fail "checkpoint sidecars not cleaned up after finish"

echo "recovery_smoke: OK ($REC_LINE, checkpoint_seen=$CKPT_SEEN)"
