#!/usr/bin/env python3
"""Compare two BENCH_core.json labels and fail on perf regressions.

CI's bench-smoke job runs the micro benchmarks into a fresh file
(label ci-smoke) and then diffs the watched benchmarks against the last
label recorded in the repo's BENCH_core.json trajectory:

    tools/bench_diff.py --current BENCH_core_ci.json \
        --baseline BENCH_core.json --tolerance 25

Exit status 1 when any watched benchmark's cpu_time grew by more than
--tolerance percent; missing benchmarks on either side are reported but
only fatal when NOTHING matched (a silent no-op diff would read as a
pass). Stdlib only — runs on a bare CI python3.
"""

import argparse
import json
import sys

# Prefix-matched: "BM_ServiceThroughput" covers /1, /4, /8.
DEFAULT_WATCH = ["BM_FitnessAgainst/256", "BM_ServiceThroughput",
                 "BM_ClusterThroughput", "BM_TelemetryOverhead"]


def load_label(path, label):
    with open(path) as handle:
        data = json.load(handle)
    runs = data.get("runs", {})
    if not runs:
        sys.exit(f"bench_diff: no runs in {path}")
    if label is None or label == "last":
        label = list(runs)[-1]  # insertion order == record order
    if label not in runs:
        sys.exit(f"bench_diff: label {label!r} not in {path} "
                 f"(has: {', '.join(runs)})")
    benches = {b["name"]: b for b in runs[label].get("benchmarks", [])}
    return label, benches


def watched(names, watch):
    return [n for n in names
            if any(n == w or n.startswith(w + "/") for w in watch)]


def pick_metric(cur, base):
    """Returns (key, higher_is_better) for the fairest shared metric.

    Throughput benchmarks publish a wall-clock rate (missions_per_wall_s
    or items_per_second) — cpu_time on those measures only the
    coordinating thread and swings wildly. Latency benchmarks fall back
    to cpu_time.
    """
    for key in ("missions_per_wall_s", "items_per_second"):
        if key in cur and key in base:
            return key, True
    return "cpu_time", False


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="bench JSON holding the fresh run")
    parser.add_argument("--current-label", default="last",
                        help="label inside --current (default: last)")
    parser.add_argument("--baseline", required=True,
                        help="bench JSON holding the reference trajectory")
    parser.add_argument("--baseline-label", default="last",
                        help="label inside --baseline (default: last)")
    parser.add_argument("--tolerance", type=float, default=25.0,
                        help="allowed cpu_time growth in percent")
    parser.add_argument("--watch", nargs="*", default=DEFAULT_WATCH,
                        help="benchmark names/prefixes to gate on")
    args = parser.parse_args()

    cur_label, current = load_label(args.current, args.current_label)
    base_label, baseline = load_label(args.baseline, args.baseline_label)
    print(f"bench_diff: {cur_label!r} vs baseline {base_label!r} "
          f"(tolerance {args.tolerance:g}%)")

    names = watched(sorted(set(current) | set(baseline)), args.watch)
    if not names:
        sys.exit("bench_diff: no watched benchmark present on either side")

    regressions = []
    compared = 0
    for name in names:
        cur, base = current.get(name), baseline.get(name)
        if cur is None or base is None:
            side = "current" if cur is None else "baseline"
            print(f"  ~ {name}: missing from {side} run, skipped")
            continue
        metric, higher_is_better = pick_metric(cur, base)
        unit = "/s" if higher_is_better else " " + cur.get("time_unit", "?")
        if not higher_is_better and cur.get("time_unit") != base.get(
                "time_unit"):
            sys.exit(f"bench_diff: {name}: time_unit changed "
                     f"({base.get('time_unit')} -> {cur.get('time_unit')}); "
                     "refusing to compare")
        delta = (cur[metric] / base[metric] - 1.0) * 100.0
        regressed = (-delta if higher_is_better else delta) > args.tolerance
        compared += 1
        if regressed:
            regressions.append(name)
        print(f"  {'!' if regressed else ' '} {name} [{metric}]: "
              f"{base[metric]:.4g} -> {cur[metric]:.4g}{unit} "
              f"({delta:+.1f}%) {'REGRESSION' if regressed else 'ok'}")

    if compared == 0:
        sys.exit("bench_diff: watched benchmarks never overlapped; "
                 "nothing was actually compared")
    if regressions:
        sys.exit(f"bench_diff: {len(regressions)} regression(s) beyond "
                 f"{args.tolerance:g}%: {', '.join(regressions)}")
    print(f"bench_diff: OK ({compared} benchmarks within tolerance)")


if __name__ == "__main__":
    main()
