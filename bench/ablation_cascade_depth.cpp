// Ablation — cascade depth (§VII: "the cascaded modes offer unrivaled
// quality, which could be adjusted by selecting a variable number of
// stages"). Grows the chain one evolved stage at a time on a 4-array
// platform and reports chain fitness and resource cost per depth — the
// quality/area trade-off a mission planner would use, and the future-work
// "dynamically scalable" scenario exercised through the bypass fabric.

#include <iostream>

#include "bench_util.hpp"
#include "ehw/platform/adaptive_depth.hpp"
#include "ehw/resources/model.hpp"

using namespace ehw;
using namespace ehw::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchParams params = BenchParams::from_cli(cli, /*runs=*/2,
                                                   /*generations=*/700);
  const std::size_t size = static_cast<std::size_t>(cli.get_int("size", 48));
  const std::size_t arrays =
      static_cast<std::size_t>(cli.get_int("arrays", 4));
  print_banner("Ablation: cascade depth vs quality vs area",
               "chain grown one evolved stage at a time (bypass spares); "
               "40% salt&pepper denoise",
               params);

  ThreadPool pool;
  std::vector<RunningStats> per_depth(arrays);
  for (std::size_t run = 0; run < params.runs; ++run) {
    const Workload w = make_workload(size, 0.4, params.seed + 41 * run);
    platform::EvolvablePlatform plat(platform_config(arrays, size, &pool));
    platform::AdaptiveDepthConfig cfg;
    cfg.target = 1;  // unreachable: grow to the full depth
    cfg.es.generations = params.generations;
    cfg.es.seed = params.seed * 17 + run;
    std::vector<std::size_t> lanes(arrays);
    for (std::size_t a = 0; a < arrays; ++a) lanes[a] = a;
    const platform::AdaptiveDepthResult r = platform::grow_cascade_to_target(
        plat, lanes, w.noisy, w.clean, cfg);
    for (std::size_t d = 0; d < r.fitness_per_depth.size(); ++d) {
      per_depth[d].add(static_cast<double>(r.fitness_per_depth[d]));
    }
  }

  Table table({"stages", "avg chain MAE", "improvement vs 1 stage",
               "platform slices (Fig. 10 model)"});
  const double depth1 = per_depth[0].mean();
  for (std::size_t d = 0; d < arrays; ++d) {
    const resources::UtilizationReport usage = resources::utilization(d + 1);
    table.add_row(
        {std::to_string(d + 1), Table::num(per_depth[d].mean(), 0),
         Table::num(100.0 * (depth1 - per_depth[d].mean()) / depth1, 1) + "%",
         Table::integer(usage.total.slices)});
  }
  table.print(std::cout);
  std::cout << "\nreading: each extra stage buys quality at a ~constant "
               "slice cost — the scalable-footprint trade-off of §III.B.\n";
  return 0;
}
