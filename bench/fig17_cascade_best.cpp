// Fig. 17 — BEST per-stage fitness of the 3-stage cascade, same three
// schemes as Fig. 16 (best over the repeated runs instead of the mean).

#include <iostream>

#include "cascade_common.hpp"

using namespace ehw;
using namespace ehw::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchParams params = BenchParams::from_cli(cli, /*runs=*/3,
                                                   /*generations=*/700);
  const std::size_t size = static_cast<std::size_t>(cli.get_int("size", 64));
  const double noise = cli.get_double("noise", 0.4);
  print_banner("Fig. 17: cascaded modes, BEST fitness per stage",
               "3-stage cascade on 40% salt&pepper; best run per scheme",
               params);

  ThreadPool pool;
  const CascadeOutcome outcome =
      run_cascade_experiment(size, noise, params, &pool);
  print_cascade_table(
      outcome, [](const std::vector<double>& xs) { return min_of(xs); },
      "best");
  std::cout << "\npaper shape: as Fig. 16 — adapted cascades dominate; the "
               "two cascaded-evolution schedules are nearly equal.\n";
  return 0;
}
