// Fig. 16 — AVERAGE per-stage fitness of the 3-stage cascade: same filter
// in every stage vs adapted filters (sequential cascaded evolution) vs
// adapted filters (interleaved cascaded evolution), on 40% salt & pepper.
//
// Expected shape (paper): the same-filter chain improves from stage 1 to 2
// but DEGRADES at stage 3 (the filter is not specialized for its own
// output's noise level); adapted filters keep improving at every stage and
// end clearly lower; sequential vs interleaved differ very little.

#include <iostream>

#include "cascade_common.hpp"

using namespace ehw;
using namespace ehw::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchParams params = BenchParams::from_cli(cli, /*runs=*/3,
                                                   /*generations=*/700);
  const std::size_t size = static_cast<std::size_t>(cli.get_int("size", 64));
  const double noise = cli.get_double("noise", 0.4);
  print_banner("Fig. 16: cascaded modes, AVERAGE fitness per stage",
               "3-stage cascade on 40% salt&pepper; same filter vs "
               "sequential vs interleaved cascaded evolution",
               params);

  ThreadPool pool;
  const CascadeOutcome outcome =
      run_cascade_experiment(size, noise, params, &pool);
  print_cascade_table(
      outcome, [](const std::vector<double>& xs) { return mean_of(xs); },
      "average");
  std::cout << "\npaper shape: same-filter worsens by stage 3; adapted "
               "filters improve monotonically; sequential ~= interleaved.\n";
  return 0;
}
