// Fig. 18 — The qualitative demo: a 128x128 image with 40% salt & pepper
// noise filtered by a three-stage adapted cascade. The paper reports an
// output MAE around 8000 (aggregated over the frame) and notes that the
// conventional median filter is far worse ("more than twice the value
// obtained for just one stage") and not cascadable.
//
// Writes PGMs next to the binary: fig18_clean.pgm, fig18_noisy.pgm,
// fig18_stage{1,2,3}.pgm, fig18_median.pgm.

#include <iostream>

#include "bench_util.hpp"
#include "ehw/img/filters.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/pgm_io.hpp"
#include "ehw/platform/cascade_evolution.hpp"

using namespace ehw;
using namespace ehw::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchParams params = BenchParams::from_cli(cli, /*runs=*/1,
                                                   /*generations=*/5000);
  const std::size_t size = static_cast<std::size_t>(cli.get_int("size", 64));
  const double noise = cli.get_double("noise", 0.4);
  print_banner("Fig. 18: three-stage adapted cascade on 40% salt&pepper",
               "evolved collaborative cascade vs the golden median filter; "
               "PGMs written alongside",
               params);

  ThreadPool pool;
  const Workload w = make_workload(size, noise, params.seed);
  platform::EvolvablePlatform plat(platform_config(3, size, &pool));
  platform::CascadeConfig cfg;
  cfg.es.generations = params.generations;
  cfg.es.seed = params.seed;
  cfg.schedule = platform::CascadeSchedule::kSequential;
  const platform::CascadeResult r =
      platform::evolve_cascade(plat, {0, 1, 2}, w.noisy, w.clean, cfg);

  std::vector<img::Image> stages;
  plat.process_cascade_into(w.noisy, stages);

  const img::Image median1 = img::median3x3(w.noisy);
  const img::Image median3 =
      img::apply_n(w.noisy, 3, [](const img::Image& x) {
        return img::median3x3(x);
      });

  const Fitness noisy_mae = img::aggregated_mae(w.noisy, w.clean);
  Table table({"image", "aggregated MAE vs clean", "per-pixel MAE", "PSNR [dB]"});
  const auto row = [&](const std::string& name, const img::Image& im) {
    table.add_row({name, Table::integer(img::aggregated_mae(im, w.clean)),
                   Table::num(img::mean_absolute_error(im, w.clean), 2),
                   Table::num(img::psnr(im, w.clean), 1)});
  };
  table.add_row({"noisy input", Table::integer(noisy_mae),
                 Table::num(img::mean_absolute_error(w.noisy, w.clean), 2),
                 Table::num(img::psnr(w.noisy, w.clean), 1)});
  row("evolved stage 1", stages[0]);
  row("evolved stage 2", stages[1]);
  row("evolved cascade (3 stages)", stages[2]);
  row("median 3x3 (golden)", median1);
  row("median 3x3 applied 3x", median3);
  table.print(std::cout);

  img::write_pgm(w.clean, "fig18_clean.pgm");
  img::write_pgm(w.noisy, "fig18_noisy.pgm");
  img::write_pgm(stages[0], "fig18_stage1.pgm");
  img::write_pgm(stages[1], "fig18_stage2.pgm");
  img::write_pgm(stages[2], "fig18_stage3.pgm");
  img::write_pgm(median1, "fig18_median.pgm");
  std::cout << "\nwrote fig18_{clean,noisy,stage1,stage2,stage3,median}.pgm\n"
            << "paper shape: cascade output MAE ~8000 at 128x128 (40% S&P); "
               "median filter much worse and not cascadable (3x median "
               "blurs without removing residual impulses).\n";
  return 0;
}
