// Fig. 14 — Average evolution time of the classic EA vs the NEW two-level
// -mutation EA (both on 3 arrays, 128x128, 9 offspring/generation).
//
// The two-level EA mutates only the first batch at the nominal rate k and
// chains the remaining batches per array lane at rate 1, so consecutive
// circuits on a lane differ in at most one gene and the DPR bill per
// generation collapses. Expected shape (paper): the new-EA curve is lower
// and much FLATTER in k than the classic curve.

#include <iostream>

#include "speedup_common.hpp"

using namespace ehw;
using namespace ehw::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchParams params = BenchParams::from_cli(cli, /*runs=*/3,
                                                   /*generations=*/250);
  const std::size_t size =
      static_cast<std::size_t>(cli.get_int("size", 128));
  print_banner("Fig. 14: classic vs two-level EA, evolution time",
               "3 arrays, 128x128; two-level mutation chains batches at "
               "k=1 to cut DPR traffic",
               params);

  ThreadPool pool;
  const std::vector<std::size_t> rates{1, 3, 5};
  const SpeedupSeries classic = measure_speedup(
      size, 3, /*two_level=*/false, rates, params, &pool, "classic EA");
  const SpeedupSeries two_level = measure_speedup(
      size, 3, /*two_level=*/true, rates, params, &pool, "two-level EA");
  print_speedup_table({classic, two_level}, rates);

  std::cout << "\nDPR traffic (PE writes per generation):\n";
  Table writes({"mutation rate k", "classic EA", "two-level EA"});
  for (std::size_t i = 0; i < rates.size(); ++i) {
    writes.add_row({"k=" + std::to_string(rates[i]),
                    Table::num(classic.points[i].pe_writes_per_gen, 1),
                    Table::num(two_level.points[i].pe_writes_per_gen, 1)});
  }
  writes.print(std::cout);

  std::cout << "\npaper shape: the new (two-level) strategy is faster at "
               "every k and nearly flat in k, because only 3 of the 9 "
               "offspring carry k-gene mutations.\n";
  return 0;
}
