#pragma once
// Shared harness for Figs. 12/13/14: average evolution time over repeated
// runs, per mutation rate, for a chosen array count and EA variant. The
// measured quantity is SIMULATED platform time per generation (the Fig. 11
// pipeline), reported scaled to the paper's 100 000 generations.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "ehw/platform/evolution_driver.hpp"

namespace ehw::bench {

struct SpeedupPoint {
  std::size_t mutation_rate = 0;
  double seconds_100k = 0.0;     // avg evolution time scaled to 100k gens
  double stddev_100k = 0.0;
  double avg_fitness = 0.0;      // avg best fitness at budget end
  double pe_writes_per_gen = 0.0;
};

struct SpeedupSeries {
  std::string label;
  std::vector<SpeedupPoint> points;
};

/// Runs `params.runs` independent evolutions for every k in `rates` and
/// returns the averaged series.
inline SpeedupSeries measure_speedup(std::size_t image_size,
                                     std::size_t num_arrays, bool two_level,
                                     const std::vector<std::size_t>& rates,
                                     const BenchParams& params,
                                     ThreadPool* pool, std::string label) {
  SpeedupSeries series;
  series.label = std::move(label);
  for (const std::size_t k : rates) {
    RunningStats time_stats;
    RunningStats fitness_stats;
    RunningStats writes_stats;
    for (std::size_t run = 0; run < params.runs; ++run) {
      const Workload w =
          make_workload(image_size, 0.2, params.seed + run * 1000 + k);
      platform::EvolvablePlatform plat(
          platform_config(num_arrays, image_size, pool));
      std::vector<std::size_t> lanes(num_arrays);
      for (std::size_t a = 0; a < num_arrays; ++a) lanes[a] = a;

      evo::EsConfig cfg;
      cfg.lambda = 9;  // nine chromosomes per generation (§VI.B)
      cfg.mutation_rate = k;
      cfg.two_level = two_level;
      cfg.generations = params.generations;
      cfg.seed = params.seed * 7919 + run * 131 + k;
      cfg.record_history = false;

      const platform::IntrinsicResult r =
          platform::evolve_on_platform(plat, lanes, w.noisy, w.clean, cfg);
      time_stats.add(scale_to_100k(r.duration, r.es.generations_run));
      fitness_stats.add(static_cast<double>(r.es.best_fitness));
      writes_stats.add(static_cast<double>(r.pe_writes) /
                       static_cast<double>(r.es.generations_run));
    }
    series.points.push_back(SpeedupPoint{k, time_stats.mean(),
                                         time_stats.stddev(),
                                         fitness_stats.mean(),
                                         writes_stats.mean()});
  }
  return series;
}

inline void print_speedup_table(const std::vector<SpeedupSeries>& series,
                                const std::vector<std::size_t>& rates) {
  std::vector<std::string> header{"mutation rate k"};
  for (const auto& s : series) {
    header.push_back(s.label + " [s/100k gens]");
  }
  header.push_back("saving [s]");
  Table table(header);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    std::vector<std::string> row{"k=" + std::to_string(rates[i])};
    for (const auto& s : series) {
      row.push_back(Table::num(s.points[i].seconds_100k, 1) + " +- " +
                    Table::num(s.points[i].stddev_100k, 1));
    }
    row.push_back(Table::num(series.front().points[i].seconds_100k -
                                 series.back().points[i].seconds_100k,
                             1));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

/// Renders one generation's Fig. 11-style pipeline diagram for 1 vs N
/// arrays (R boxes on the icap lane, F boxes on the array lanes).
inline void render_generation_trace(std::size_t image_size,
                                    std::size_t num_arrays, ThreadPool* pool,
                                    std::uint64_t seed) {
  platform::PlatformConfig pc = platform_config(num_arrays, image_size, pool);
  pc.enable_trace = true;
  platform::EvolvablePlatform plat(pc);
  const Workload w = make_workload(image_size, 0.2, seed);
  std::vector<std::size_t> lanes(num_arrays);
  for (std::size_t a = 0; a < num_arrays; ++a) lanes[a] = a;
  evo::EsConfig cfg;
  cfg.generations = 2;  // warm-up + one recorded steady generation
  cfg.seed = seed;
  platform::evolve_on_platform(plat, lanes, w.noisy, w.clean, cfg);
  std::cout << "\nFig. 11 pipeline, " << num_arrays
            << " array(s), one generation (R=reconfig, F=evaluate):\n";
  plat.trace().render_gantt(std::cout, plat.timeline(), 100);
}

}  // namespace ehw::bench
