// Fig. 20 — TMR mission timeline with fault injection and recovery by
// imitation: three arrays run the same circuit in parallel; a permanent
// fault strikes one; the fitness voter flags it; scrubbing fails to clear
// it; evolution by imitation rebuilds the array online while the pixel
// voter keeps the output stream valid.
//
// The table reproduces the figure's series: per-generation fitness of the
// recovering array (MAE vs the healthy pair) with the two healthy arrays'
// flat traces alongside. The paper observes full recovery after ~40 000
// generations at its budget; the reduced default shows the same trajectory
// shape (divergence spike -> monotone decay -> below-threshold residual).

#include <iostream>

#include "bench_util.hpp"
#include "ehw/platform/evolution_driver.hpp"
#include "ehw/platform/imitation.hpp"
#include "ehw/platform/self_healing.hpp"

using namespace ehw;
using namespace ehw::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchParams params = BenchParams::from_cli(cli, /*runs=*/1,
                                                   /*generations=*/2500);
  const std::size_t size = static_cast<std::size_t>(cli.get_int("size", 64));
  // Fault position: (1,2) by default — observable for full-mesh circuits
  // but reroutable; pass --fault-row/--fault-col for harder cells like
  // (0,1) on the primary datapath.
  const std::size_t fault_row =
      static_cast<std::size_t>(cli.get_int("fault-row", 1));
  const std::size_t fault_col =
      static_cast<std::size_t>(cli.get_int("fault-col", 2));
  print_banner("Fig. 20: TMR mode, fault injection and imitation recovery",
               "3 arrays in parallel; permanent PE fault at mission time; "
               "online recovery by imitation",
               params);

  ThreadPool pool;
  const Workload w = make_workload(size, 0.2, params.seed);
  platform::EvolvablePlatform plat(platform_config(3, size, &pool));

  // Initial evolution (paper step a) and TMR deployment.
  evo::EsConfig init_cfg;
  init_cfg.generations = params.generations / 3;
  init_cfg.seed = params.seed;
  const platform::IntrinsicResult evolved = platform::evolve_on_platform(
      plat, {0, 1, 2}, w.noisy, w.clean, init_cfg);

  platform::TmrSelfHealing::Config hcfg;
  hcfg.voter_threshold = 100;  // the 'practically identical' threshold
  hcfg.recovery_es.generations = params.generations;
  hcfg.recovery_es.seed = params.seed * 3 + 1;
  platform::TmrSelfHealing tmr(plat, {0, 1, 2}, hcfg);
  tmr.deploy(evolved.es.best);

  // Healthy frames, then the fault.
  const auto healthy = tmr.process_frame(w.noisy);
  std::cout << "pre-fault frame: fitness = {" << healthy.fitness[0] << ", "
            << healthy.fitness[1] << ", " << healthy.fitness[2]
            << "}, voter unanimous = "
            << (healthy.vote.faulty.has_value() ? "no" : "yes") << "\n";

  plat.inject_pe_fault(2, fault_row, fault_col);
  const auto fault_frame = tmr.process_frame(w.noisy);
  std::cout << "fault frame:     fitness = {" << fault_frame.fitness[0]
            << ", " << fault_frame.fitness[1] << ", "
            << fault_frame.fitness[2] << "}, voter blames array "
            << (fault_frame.vote.faulty ? std::to_string(
                                              *fault_frame.vote.faulty)
                                        : std::string("none"))
            << ", recovered this frame = "
            << (fault_frame.recovered_this_frame ? "yes" : "no") << "\n\n";

  // Reconstruct the recovery trajectory (the Fig. 20 series) by re-running
  // the imitation with history recording on an identical scenario.
  platform::EvolvablePlatform replay(platform_config(3, size, &pool));
  platform::evolve_on_platform(replay, {0, 1, 2}, w.noisy, w.clean, init_cfg);
  sim::SimTime barrier = replay.now();
  for (std::size_t a = 0; a < 3; ++a) {
    barrier = replay.configure_array(a, evolved.es.best, barrier).end;
  }
  replay.inject_pe_fault(2, fault_row, fault_col);
  platform::ImitationConfig icfg;
  icfg.es = hcfg.recovery_es;
  icfg.es.record_history = true;
  icfg.es.target = hcfg.voter_threshold;
  const platform::ImitationResult recovery =
      platform::evolve_by_imitation(replay, 2, 0, w.noisy, icfg);

  Table table({"generation", "array0 (healthy)", "array1 (healthy)",
               "array2 (recovering, MAE vs master)"});
  const auto& history = recovery.es.history;
  const std::size_t max_rows = 24;
  const std::size_t stride =
      history.size() > max_rows ? history.size() / max_rows : 1;
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (i % stride != 0 && i + 1 != history.size()) continue;
    table.add_row({Table::integer(history[i].generation), "0", "0",
                   Table::integer(history[i].fitness)});
  }
  table.print(std::cout);

  std::cout << "\nrecovery summary: residual " << recovery.residual
            << " after " << recovery.es.generations_run
            << " generations (threshold " << hcfg.voter_threshold << "); "
            << (recovery.residual <= hcfg.voter_threshold
                    ? "FUNCTIONAL RECOVERY"
                    : "partial recovery (paste keeps the TMR voter valid)")
            << "\n";
  std::cout << "healing log:\n";
  for (const auto& e : tmr.events()) {
    std::cout << "  t=" << sim::to_milliseconds(e.time) << " ms array "
              << e.array << ": " << platform::healing_event_name(e.kind)
              << " (fitness " << e.fitness << ") " << e.detail << "\n";
  }
  std::cout << "\npaper shape: flat equal traces -> divergence at the fault "
               "-> imitation pulls the faulty array back to ~zero (paper: "
               "~40k generations at full budget).\n";
  return 0;
}
