#pragma once
// Shared scaffolding for the figure-reproduction benches.
//
// Every bench accepts:
//   --full            paper-scale parameters (50 runs x 100 000 generations
//                     where applicable) — hours of runtime;
//   --runs=N          repetitions to average over;
//   --generations=N   generation budget (measured or per-stage);
//   --seed=N          master seed.
// Defaults are reduced configurations sized for minutes, documented on
// stdout and in EXPERIMENTS.md. Evolution-time figures report simulated
// time scaled to the paper's 100 000 generations: the per-generation DPR /
// evaluation pipeline is stationary, so measured-mean x 100k is the
// quantity the paper plots.

#include <cstdio>
#include <string>

#include "ehw/common/cli.hpp"
#include "ehw/common/rng.hpp"
#include "ehw/common/stats.hpp"
#include "ehw/common/table.hpp"
#include "ehw/common/thread_pool.hpp"
#include "ehw/img/noise.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/platform/platform.hpp"

namespace ehw::bench {

struct BenchParams {
  bool full = false;
  std::size_t runs = 3;
  Generation generations = 300;
  std::uint64_t seed = 2013;  // year of the paper

  static BenchParams from_cli(const Cli& cli, std::size_t default_runs,
                              Generation default_generations) {
    BenchParams p;
    p.full = cli.has("full");
    p.runs = static_cast<std::size_t>(
        cli.get_int("runs", p.full ? 50 : static_cast<std::int64_t>(
                                              default_runs)));
    p.generations = static_cast<Generation>(cli.get_int(
        "generations",
        p.full ? 100000 : static_cast<std::int64_t>(default_generations)));
    p.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2013));
    return p;
  }
};

/// The paper's benchmark workload: a scene corrupted by salt & pepper
/// noise; evolution maps noisy -> clean.
struct Workload {
  img::Image clean;
  img::Image noisy;
};

inline Workload make_workload(std::size_t size, double noise_density,
                              std::uint64_t seed) {
  Workload w;
  w.clean = img::make_scene(size, size, seed);
  Rng rng(seed ^ 0x5A17AC1DULL);
  w.noisy = img::add_salt_pepper(w.clean, noise_density, rng);
  return w;
}

inline platform::PlatformConfig platform_config(std::size_t arrays,
                                                std::size_t line_width,
                                                ThreadPool* pool) {
  platform::PlatformConfig cfg;
  cfg.num_arrays = arrays;
  cfg.shape = {4, 4};
  cfg.line_width = line_width;
  cfg.seed = 0xF16A2013;
  cfg.pool = pool;
  return cfg;
}

inline void print_banner(const char* figure, const char* description,
                         const BenchParams& p) {
  std::printf("=== %s ===\n%s\n", figure, description);
  std::printf(
      "config: %s | runs=%zu generations=%llu seed=%llu\n"
      "(evolution-time figures are SIMULATED platform time; pass --full for "
      "the paper's 50x100k-generation statistics)\n\n",
      p.full ? "FULL (paper-scale)" : "reduced (default)", p.runs,
      static_cast<unsigned long long>(p.generations),
      static_cast<unsigned long long>(p.seed));
}

/// Scale a measured mean-per-generation simulated duration to the paper's
/// 100 000-generation budget, in seconds.
inline double scale_to_100k(sim::SimTime duration, Generation generations) {
  if (generations == 0) return 0.0;
  return sim::to_seconds(duration) /
         static_cast<double>(generations) * 100000.0;
}

}  // namespace ehw::bench
