// Fig. 10 / §VI.A — Resource utilization and floorplan.
//
// Regenerates the paper's resource numbers: the floorplan of the 3-stage
// platform on the Virtex-5 LX110T, the static-control and per-ACB
// slice/FF/LUT costs, the PE / array CLB footprints, and the 67.53 us
// per-PE reconfiguration time (cross-checked against the live engine).

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "ehw/reconfig/engine.hpp"
#include "ehw/resources/floorplan.hpp"
#include "ehw/resources/model.hpp"

using namespace ehw;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::size_t stages =
      static_cast<std::size_t>(cli.get_int("stages", 3));

  std::printf("=== Fig. 10 / §VI.A: resource utilization (%zu stages) ===\n\n",
              stages);
  resources::render_floorplan(std::cout, stages);

  Table table({"module", "instances", "slices (each)", "FFs (each)",
               "LUTs (each)", "slices (total)"});
  const resources::UtilizationReport report = resources::utilization(stages);
  for (const auto& m : report.modules) {
    table.add_row({m.module, Table::integer(m.instances),
                   Table::integer(m.each.slices), Table::integer(m.each.ffs),
                   Table::integer(m.each.luts),
                   Table::integer(m.total().slices)});
  }
  table.add_row({"TOTAL", "", "", "", "", Table::integer(report.total.slices)});
  std::printf("\n");
  table.print(std::cout);
  std::printf("device occupancy (Virtex-5 LX110T slices): %.1f%%\n\n",
              report.device_slice_percent);

  // Reconfiguration costs, cross-checked against the simulated engine.
  const resources::ReconfigCosts costs = resources::reconfig_costs(stages);
  fpga::FabricGeometry geometry(stages, {4, 4});
  fpga::ConfigMemory memory(geometry.total_words());
  reconfig::PbsLibrary library(geometry.words_per_slot());
  sim::Timeline timeline;
  reconfig::ReconfigurationEngine engine(memory, geometry, library, timeline);
  const sim::ResourceId array0 = timeline.add_resource("array0");
  const sim::Interval one_pe = engine.write_pe({0, 0, 0}, 0, 0, array0);

  Table rc({"quantity", "model", "measured on engine"});
  rc.add_row({"per-PE reconfiguration", Table::num(costs.per_pe_us, 2) + " us",
              Table::num(sim::to_microseconds(one_pe.duration()), 2) + " us"});
  rc.add_row({"full 4x4 array rewrite", Table::num(costs.full_array_us, 1) + " us",
              Table::num(sim::to_microseconds(one_pe.duration()) * 16, 1) +
                  " us"});
  rc.add_row({"full platform rewrite",
              Table::num(costs.full_platform_us, 1) + " us",
              Table::num(sim::to_microseconds(one_pe.duration()) * 16 *
                             static_cast<double>(stages),
                         1) +
                  " us"});
  rc.print(std::cout);
  std::printf(
      "\npaper: static control 733 slices / 1365 FF / 1817 LUT; ACB 754 "
      "slices / 1642 FF / 1528 LUT;\n       PE = 2 CLB cols x 5 CLBs; array "
      "= 160 CLBs; 67.53 us per PE at 100 MHz ICAP.\n");
  return 0;
}
