// Ablation / future work — systematic fault-resistance assessment (§VI.D
// systematic injection + §VII "an overall fault resistance assessment,
// with realistic fault models, needs to be performed"):
//   1. PE-level campaign: dummy-PE fault in every position of a deployed
//      evolved circuit; criticality map + recovery classification;
//   2. SEU sweep: configuration-bit flips with scrub verification; per-PE
//      architectural vulnerability factors.

#include <iostream>

#include "bench_util.hpp"
#include "ehw/analysis/campaign.hpp"
#include "ehw/analysis/report.hpp"
#include "ehw/analysis/seu_sweep.hpp"
#include "ehw/platform/evolution_driver.hpp"

using namespace ehw;
using namespace ehw::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchParams params = BenchParams::from_cli(cli, /*runs=*/1,
                                                   /*generations=*/600);
  const std::size_t size = static_cast<std::size_t>(cli.get_int("size", 48));
  print_banner("Ablation: systematic fault campaign & SEU sweep",
               "dummy-PE fault in every cell of an evolved denoiser + "
               "sampled configuration-bit flips with scrub verification",
               params);

  ThreadPool pool;
  const Workload w = make_workload(size, 0.25, params.seed);
  platform::EvolvablePlatform plat(platform_config(1, size, &pool));
  evo::EsConfig es;
  es.generations = params.generations;
  es.seed = params.seed;
  const platform::IntrinsicResult evolved =
      platform::evolve_on_platform(plat, {0}, w.noisy, w.clean, es);
  plat.configure_array(0, evolved.es.best, plat.now());
  std::cout << "deployed evolved denoiser, fitness "
            << evolved.es.best_fitness << "\n\n";

  analysis::CampaignConfig ccfg;
  ccfg.run_recovery = true;
  ccfg.recovery_es.generations = params.generations / 2;
  ccfg.recovery_es.seed = params.seed + 1;
  const analysis::CampaignResult campaign =
      analysis::run_pe_fault_campaign(plat, 0, w.noisy, w.clean, ccfg);
  analysis::render_criticality_map(std::cout, campaign, plat.config().shape);
  std::cout << '\n';
  analysis::render_campaign_table(std::cout, campaign);

  std::cout << "\nSEU sweep (sampled bits, scrub verified after each):\n";
  analysis::SeuSweepConfig scfg;
  scfg.bit_stride =
      static_cast<std::size_t>(cli.get_int("bit-stride", params.full ? 1 : 16));
  const analysis::SeuSweepResult sweep =
      analysis::run_seu_sweep(plat, 0, w.noisy, scfg);
  analysis::render_seu_table(std::cout, sweep);

  std::cout << "\nreading: the evolved circuit only exposes the cells its "
               "datapath actually uses; every sampled SEU scrubbed clean "
               "(transient), while dummy-PE faults persist until "
               "re-evolution — the §V classification boundary.\n";
  return 0;
}
