// Fig. 19 — Evolution by imitation after a permanent PE fault: starting
// the apprentice from the master's genotype vs from a random genotype.
//
// Expected shape (paper): the "imitated" (master-genotype) start reaches a
// residual around/below the ~100-MAE "practically identical" threshold,
// while the random start stays orders of magnitude above within the same
// budget (random imitation fitness is ~3 orders above the threshold).

#include <iostream>

#include "bench_util.hpp"
#include "ehw/platform/evolution_driver.hpp"
#include "ehw/platform/imitation.hpp"

using namespace ehw;
using namespace ehw::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchParams params = BenchParams::from_cli(cli, /*runs=*/6,
                                                   /*generations=*/3000);
  const std::size_t size = static_cast<std::size_t>(cli.get_int("size", 48));
  print_banner("Fig. 19: imitation recovery, master-genotype vs random start",
               "apprentice array carries a permanent (dummy-PE) fault and "
               "imitates a working neighbour; fitness = MAE(apprentice, "
               "master)",
               params);

  ThreadPool pool;
  // The paper's fault campaign is systematic over array positions; the
  // reduced default cycles the injected PE across runs so the average is
  // not dominated by one lucky/unlucky cell.
  const std::pair<std::size_t, std::size_t> fault_cells[] = {
      {0, 1}, {1, 1}, {0, 2}, {2, 0}, {1, 2}, {0, 3}, {3, 1}, {2, 2}};
  RunningStats imitated, random_start, baseline_random;
  for (std::size_t run = 0; run < params.runs; ++run) {
    const Workload w = make_workload(size, 0.2, params.seed + 31 * run);
    const auto [fr, fc] = fault_cells[run % std::size(fault_cells)];

    for (const bool from_master : {true, false}) {
      platform::EvolvablePlatform plat(platform_config(3, size, &pool));
      // Evolve a working master first (reduced budget: any reasonable
      // filter works as the imitation target).
      evo::EsConfig master_cfg;
      master_cfg.generations = std::min<Generation>(800, params.generations);
      master_cfg.seed = params.seed + run * 71;
      const platform::IntrinsicResult master = platform::evolve_on_platform(
          plat, {1}, w.noisy, w.clean, master_cfg);
      plat.configure_array(1, master.es.best, plat.now());

      // Permanent fault on the apprentice.
      plat.inject_pe_fault(0, fr, fc);

      // Record the random-imitation level (what an unevolved apprentice
      // scores): the paper's "3 orders of magnitude above threshold".
      if (from_master) {
        Rng rng(params.seed + run);
        plat.configure_array(0, evo::Genotype::random({4, 4}, rng),
                             plat.now());
        const img::Image master_out = plat.filter_array(1, w.noisy);
        const img::Image apprentice_out = plat.filter_array(0, w.noisy);
        baseline_random.add(static_cast<double>(
            img::aggregated_mae(apprentice_out, master_out)));
      }

      platform::ImitationConfig icfg;
      icfg.es.generations = params.generations;
      icfg.es.seed = params.seed * 13 + run;
      icfg.es.mutation_rate = 3;
      icfg.start_from_master = from_master;
      const platform::ImitationResult r =
          platform::evolve_by_imitation(plat, 0, 1, w.noisy, icfg);
      (from_master ? imitated : random_start)
          .add(static_cast<double>(r.es.best_fitness));
    }
  }

  Table table({"evolution strategy", "avg residual MAE", "min", "max"});
  table.add_row({"imitated start (master genotype)",
                 Table::num(imitated.mean(), 0),
                 Table::num(imitated.min(), 0),
                 Table::num(imitated.max(), 0)});
  table.add_row({"random start", Table::num(random_start.mean(), 0),
                 Table::num(random_start.min(), 0),
                 Table::num(random_start.max(), 0)});
  table.add_row({"(unevolved apprentice level)",
                 Table::num(baseline_random.mean(), 0),
                 Table::num(baseline_random.min(), 0),
                 Table::num(baseline_random.max(), 0)});
  table.print(std::cout);
  std::cout << "\npaper shape: imitated start far below random start; "
               "threshold ~100 MAE counts as 'functionally identical', "
               "random level ~3 orders of magnitude above.\n";
  return 0;
}
