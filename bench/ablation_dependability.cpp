// Ablation / future work — dependability assessment: combines the
// platform's OWN measurements (SEU architectural vulnerability from the
// sweep, imitation recovery time from a live run, scrub pass duration)
// with environment upset rates to estimate availability and MTBF for
// simplex vs TMR operation — the paper's deep-space motivation (§II)
// turned into numbers.

#include <iostream>

#include "bench_util.hpp"
#include "ehw/analysis/dependability.hpp"
#include "ehw/analysis/seu_sweep.hpp"
#include "ehw/platform/evolution_driver.hpp"
#include "ehw/platform/imitation.hpp"

using namespace ehw;
using namespace ehw::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchParams params = BenchParams::from_cli(cli, /*runs=*/1,
                                                   /*generations=*/800);
  const std::size_t size = static_cast<std::size_t>(cli.get_int("size", 48));
  print_banner("Ablation: dependability estimate (simplex vs TMR)",
               "AVF measured by SEU sweep + recovery time measured by a "
               "live imitation run -> availability/MTBF per environment",
               params);

  ThreadPool pool;
  const Workload w = make_workload(size, 0.25, params.seed);
  platform::EvolvablePlatform plat(platform_config(3, size, &pool));
  evo::EsConfig es;
  es.generations = params.generations;
  es.seed = params.seed;
  const platform::IntrinsicResult evolved =
      platform::evolve_on_platform(plat, {0, 1, 2}, w.noisy, w.clean, es);
  sim::SimTime barrier = plat.now();
  for (std::size_t a = 0; a < 3; ++a) {
    barrier = plat.configure_array(a, evolved.es.best, barrier).end;
  }

  // Measured inputs.
  analysis::SeuSweepConfig scfg;
  scfg.bit_stride = params.full ? 4 : 32;
  const analysis::SeuSweepResult sweep =
      analysis::run_seu_sweep(plat, 0, w.noisy, scfg);

  plat.inject_pe_fault(1, 0, 1);
  platform::ImitationConfig icfg;
  icfg.es.generations = params.generations;
  icfg.es.seed = params.seed + 9;
  const sim::SimTime t0 = plat.now();
  const platform::ImitationResult recovery =
      platform::evolve_by_imitation(plat, 1, 0, w.noisy, icfg);
  const sim::SimTime recovery_time = plat.now() - t0;
  plat.clear_pe_fault(1, 0, 1);

  std::cout << "measured: AVF=" << Table::num(sweep.overall_avf(), 3)
            << " over " << sweep.total_flips() << " flips; imitation "
            << "recovery " << Table::num(sim::to_seconds(recovery_time), 3)
            << " s (residual " << recovery.residual << ")\n\n";

  struct Environment {
    const char* name;
    double upsets_per_bit_second;
  };
  const Environment envs[] = {
      {"ground level", 1e-13},
      {"LEO (quiet)", 1e-10},
      {"GEO (quiet)", 1e-9},
      {"solar flare", 1e-7},
  };

  Table table({"environment", "observable faults/s", "simplex MTBF [s]",
               "simplex avail.", "TMR MTBF [s]", "TMR avail."});
  for (const auto& env : envs) {
    analysis::DependabilityInputs in;
    in.upsets_per_bit_second = env.upsets_per_bit_second;
    in.config_bits =
        static_cast<double>(plat.geometry().total_words()) * 32.0;
    in.avf = sweep.overall_avf();
    in.scrub_period = sim::milliseconds(10.0);
    in.recovery_time = recovery_time;
    in.permanent_fraction = 0.01;
    const analysis::DependabilityReport r =
        analysis::estimate_dependability(in);
    table.add_row({env.name, Table::num(r.observable_rate, 9),
                   Table::num(r.simplex_mtbf, 1),
                   Table::num(r.simplex_availability, 6),
                   Table::num(r.tmr_mtbf, 1),
                   Table::num(r.tmr_availability, 6)});
  }
  table.print(std::cout);
  std::cout << "\nreading: the TMR mode's double-fault exposure window is "
               "tiny, so its MTBF exceeds simplex by orders of magnitude — "
               "the quantitative case for the paper's parallel mode in "
               "§II's space scenarios.\n";
  return 0;
}
