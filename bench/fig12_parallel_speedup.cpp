// Fig. 12 — Average evolution time vs mutation rate, 1 array vs 3 arrays,
// 128x128 images (paper: 50 runs of 100 000 generations each; k in
// {1,3,5}; offspring distributed over the arrays with a single shared
// reconfiguration engine).
//
// Expected shape (paper): time grows with k in both modes; the 3-array
// parallel-evolution curve sits a roughly CONSTANT amount below the single
// -array curve (the overlapped evaluation time), ~50 s at this image size.
//
// Pass --trace to also render the Fig. 11 pipeline diagrams.

#include <iostream>

#include "speedup_common.hpp"

using namespace ehw;
using namespace ehw::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchParams params = BenchParams::from_cli(cli, /*runs=*/3,
                                                   /*generations=*/250);
  const std::size_t size =
      static_cast<std::size_t>(cli.get_int("size", 128));
  print_banner("Fig. 12: parallel-evolution speed-up (128x128)",
               "average evolution time, 1 vs 3 arrays, k in {1,3,5}; "
               "simulated platform time scaled to 100k generations",
               params);

  ThreadPool pool;
  const std::vector<std::size_t> rates{1, 3, 5};
  const SpeedupSeries single = measure_speedup(
      size, 1, /*two_level=*/false, rates, params, &pool, "1 array");
  const SpeedupSeries triple = measure_speedup(
      size, 3, /*two_level=*/false, rates, params, &pool, "3 arrays");
  print_speedup_table({single, triple}, rates);

  std::cout << "\nDPR traffic (PE writes per generation):\n";
  Table writes({"mutation rate k", "1 array", "3 arrays"});
  for (std::size_t i = 0; i < rates.size(); ++i) {
    writes.add_row({"k=" + std::to_string(rates[i]),
                    Table::num(single.points[i].pe_writes_per_gen, 1),
                    Table::num(triple.points[i].pe_writes_per_gen, 1)});
  }
  writes.print(std::cout);

  if (cli.has("trace")) {
    render_generation_trace(size, 1, &pool, params.seed);
    render_generation_trace(size, 3, &pool, params.seed);
  }
  std::cout << "\npaper shape: both curves rise with k; 3-array curve lower "
               "by a ~constant saving (~50 s at 128x128).\n";
  return 0;
}
