// google-benchmark microbenches for the library's hot paths: window
// evaluation, whole-frame filtering (row kernel vs scalar), hardware-model
// fitness, population batch evaluation, mutation, offspring generation,
// configuration decode and DPR diffing. Emitted as BENCH_core.json by
// bench/run_bench so the perf trajectory is tracked across PRs.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "ehw/common/work_steal.hpp"
#include "ehw/sched/placement.hpp"
#include "ehw/evo/batch.hpp"
#include "ehw/evo/fitness.hpp"
#include "ehw/evo/fitness_memo.hpp"
#include "ehw/evo/mutation.hpp"
#include "ehw/img/filters.hpp"
#include "ehw/evo/offspring.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/noise.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/obs/metrics.hpp"
#include "ehw/obs/trace.hpp"
#include "ehw/pe/compiled.hpp"
#include "ehw/platform/platform.hpp"
#include "ehw/sched/array_pool.hpp"
#include "ehw/sched/missions.hpp"
#include "ehw/svc/client.hpp"
#include "ehw/svc/forwarder.hpp"
#include "ehw/svc/server.hpp"

namespace {

using namespace ehw;

evo::Genotype bench_genotype(std::uint64_t seed = 7) {
  Rng rng(seed);
  return evo::Genotype::random({4, 4}, rng);
}

std::vector<evo::Genotype> bench_population(std::size_t count) {
  Rng rng(1234);
  std::vector<evo::Genotype> population;
  population.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    population.push_back(evo::Genotype::random({4, 4}, rng));
  }
  return population;
}

void BM_WindowEvaluate(benchmark::State& state) {
  const pe::CompiledArray compiled(bench_genotype().to_array());
  const Pixel window[9] = {10, 20, 30, 40, 50, 60, 70, 80, 90};
  std::size_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.evaluate(window, x++, 0));
  }
}
BENCHMARK(BM_WindowEvaluate);

void BM_MeshWindowEvaluate(benchmark::State& state) {
  // Reference mesh model (used by equivalence sweeps): must not allocate.
  const pe::SystolicArray mesh = bench_genotype().to_array();
  const Pixel window[9] = {10, 20, 30, 40, 50, 60, 70, 80, 90};
  std::size_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh.evaluate(window, x++, 0));
  }
}
BENCHMARK(BM_MeshWindowEvaluate);

void BM_FilterFrame(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const pe::CompiledArray compiled(bench_genotype().to_array());
  const img::Image src = img::make_scene(size, size, 3);
  img::Image dst(size, size);
  for (auto _ : state) {
    compiled.filter_into(src, dst, nullptr);
    benchmark::DoNotOptimize(dst.row(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size * size));
}
BENCHMARK(BM_FilterFrame)->Arg(64)->Arg(128)->Arg(256);

void BM_FitnessAgainst(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const pe::CompiledArray compiled(bench_genotype().to_array());
  const img::Image src = img::make_scene(size, size, 3);
  const img::Image ref = img::make_scene(size, size, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.fitness_against(src, ref));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size * size));
}
BENCHMARK(BM_FitnessAgainst)->Arg(64)->Arg(128)->Arg(256);

void BM_FitnessScalarPath(benchmark::State& state) {
  // The pre-row-kernel per-window path (gather + step-interpret every
  // pixel), kept as the baseline the row kernel is compared against.
  const auto size = static_cast<std::size_t>(state.range(0));
  const pe::CompiledArray compiled(bench_genotype().to_array());
  const img::Image src = img::make_scene(size, size, 3);
  const img::Image ref = img::make_scene(size, size, 4);
  for (auto _ : state) {
    Pixel win[pe::kWindowTaps];
    Fitness acc = 0;
    for (std::size_t y = 0; y < size; ++y) {
      for (std::size_t x = 0; x < size; ++x) {
        img::gather_window3x3(src, x, y, win);
        const int out = compiled.evaluate(win, x, y);
        acc += static_cast<Fitness>(
            std::abs(out - static_cast<int>(ref.at(x, y))));
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size * size));
}
BENCHMARK(BM_FitnessScalarPath)->Arg(64)->Arg(256);

void BM_BatchEvaluate(benchmark::State& state) {
  // Population-level parallelism: one whole candidate per worker (the
  // software analogue of one candidate per physical array).
  const auto count = static_cast<std::size_t>(state.range(0));
  const std::vector<evo::Genotype> population = bench_population(count);
  const img::Image src = img::make_scene(128, 128, 3);
  const img::Image ref = img::make_scene(128, 128, 4);
  const evo::BatchEvaluator evaluator(src, ref, &ThreadPool::global());
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate_genotypes(population));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * 128 * 128));
}
BENCHMARK(BM_BatchEvaluate)->Arg(9)->Arg(16);

void BM_InnerRowParallel(benchmark::State& state) {
  // The pre-batch approach: candidates sequential, rows parallel inside
  // each candidate — one fork/join barrier per candidate.
  const auto count = static_cast<std::size_t>(state.range(0));
  const std::vector<evo::Genotype> population = bench_population(count);
  const img::Image src = img::make_scene(128, 128, 3);
  const img::Image ref = img::make_scene(128, 128, 4);
  for (auto _ : state) {
    Fitness acc = 0;
    for (const evo::Genotype& g : population) {
      const pe::CompiledArray compiled(g.to_array());
      acc += compiled.fitness_against(src, ref, &ThreadPool::global());
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * 128 * 128));
}
BENCHMARK(BM_InnerRowParallel)->Arg(9)->Arg(16);

void BM_DefectiveRowKernel(benchmark::State& state) {
  // The defective-cell row path: same mesh as BM_FitnessAgainst but with
  // two dummy PEs injected, so the vectorized SplitMix64 lane kernel
  // (pe/simd.hpp defective_row) carries part of every row.
  const auto size = static_cast<std::size_t>(state.range(0));
  pe::SystolicArray mesh = bench_genotype().to_array();
  pe::CellConfig dead;
  dead.defective = true;
  dead.defect_seed = 0xD00D;
  mesh.set_cell(0, 1, dead);
  dead.defect_seed = 0xBEEF;
  mesh.set_cell(2, 2, dead);
  const pe::CompiledArray compiled(mesh);
  const img::Image src = img::make_scene(size, size, 3);
  const img::Image ref = img::make_scene(size, size, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.fitness_against(src, ref));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size * size));
}
BENCHMARK(BM_DefectiveRowKernel)->Arg(64)->Arg(256);

void BM_FitnessMemoWarmReplay(benchmark::State& state) {
  // A warm identical population wave served from the FitnessMemo: what a
  // replayed mission pays per candidate instead of streaming the frame.
  const auto count = static_cast<std::size_t>(state.range(0));
  const std::vector<evo::Genotype> population = bench_population(count);
  const img::Image src = img::make_scene(128, 128, 3);
  const img::Image ref = img::make_scene(128, 128, 4);
  evo::FitnessMemo memo(1 << 12);
  const evo::BatchEvaluator evaluator(src, ref, nullptr, &memo);
  benchmark::DoNotOptimize(evaluator.evaluate_genotypes(population));  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate_genotypes(population));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * 128 * 128));
  state.counters["memo_hit_rate"] = memo.stats().hit_rate();
}
BENCHMARK(BM_FitnessMemoWarmReplay)->Arg(9)->Arg(16);

void BM_WorkStealDispatch(benchmark::State& state) {
  // Dispatch cost of the shared execution core: N no-op job bodies
  // through submit + drain. Compare BM_ThreadPerJobDispatch for what the
  // scheduler paid per job before the work-stealing rewrite.
  const auto jobs = static_cast<std::size_t>(state.range(0));
  WorkStealPool pool(2);
  for (auto _ : state) {
    std::atomic<std::size_t> done{0};
    for (std::size_t j = 0; j < jobs; ++j) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    while (done.load(std::memory_order_relaxed) != jobs) {
      std::this_thread::yield();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
  state.counters["steals"] =
      static_cast<double>(pool.stats().stolen);
}
BENCHMARK(BM_WorkStealDispatch)->Arg(64);

void BM_ThreadPerJobDispatch(benchmark::State& state) {
  // The pre-PR-5 execution model: one host thread created and joined per
  // job body.
  const auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::atomic<std::size_t> done{0};
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (std::size_t j = 0; j < jobs; ++j) {
      threads.emplace_back(
          [&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    for (std::thread& t : threads) t.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_ThreadPerJobDispatch)->Arg(64);

void BM_AggregatedMae(benchmark::State& state) {
  const img::Image a = img::make_scene(128, 128, 5);
  const img::Image b = img::make_scene(128, 128, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(img::aggregated_mae(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          128 * 128);
}
BENCHMARK(BM_AggregatedMae);

void BM_Mutation(benchmark::State& state) {
  Rng rng(9);
  evo::Genotype g = bench_genotype();
  for (auto _ : state) {
    benchmark::DoNotOptimize(evo::mutate(g, 3, rng));
  }
}
BENCHMARK(BM_Mutation);

void BM_TwoLevelOffspring(benchmark::State& state) {
  Rng rng(10);
  const evo::Genotype parent = bench_genotype();
  for (auto _ : state) {
    benchmark::DoNotOptimize(evo::two_level_offspring(parent, 9, 3, 3, rng));
  }
}
BENCHMARK(BM_TwoLevelOffspring);

void BM_PlatformConfigureDiff(benchmark::State& state) {
  platform::PlatformConfig pc;
  pc.num_arrays = 1;
  pc.line_width = 64;
  platform::EvolvablePlatform plat(pc);
  Rng rng(11);
  evo::Genotype g = bench_genotype();
  plat.configure_array(0, g, 0);
  for (auto _ : state) {
    evo::mutate(g, 1, rng);
    benchmark::DoNotOptimize(plat.configure_array(0, g, 0));
  }
}
BENCHMARK(BM_PlatformConfigureDiff);

void BM_DecodeArray(benchmark::State& state) {
  platform::PlatformConfig pc;
  pc.num_arrays = 1;
  pc.line_width = 64;
  platform::EvolvablePlatform plat(pc);
  plat.configure_array(0, bench_genotype(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plat.decode_array(0));
  }
}
BENCHMARK(BM_DecodeArray);

void BM_SchedulerThroughput(benchmark::State& state) {
  // Multi-mission scheduler: 8 identical single-lane denoise missions on
  // an 8-array pool with 1/4/8 jobs admitted concurrently. Wall time
  // measures host-side multiplexing overhead; the counters record the
  // pool's *simulated* schedule (missions per simulated second and the
  // speedup over one-at-a-time), which is the hardware-faithful
  // throughput metric and is host-independent.
  const auto concurrency = static_cast<std::size_t>(state.range(0));
  sched::MissionSpec spec;
  spec.kind = sched::MissionKind::kDenoise;
  spec.lanes = 1;
  spec.size = 32;
  spec.generations = 30;
  sched::ArrayPool::ScheduleReport report;
  for (auto _ : state) {
    sched::PoolConfig config;
    config.num_arrays = 8;
    config.max_concurrent_jobs = concurrency;
    sched::ArrayPool pool(config);
    for (int j = 0; j < 8; ++j) {
      // snprintf instead of string concatenation: gcc 12 -O3 trips a
      // -Wrestrict false positive on operator+(const char*, string&&).
      char name[8];
      std::snprintf(name, sizeof name, "m%d", j);
      spec.name = name;
      spec.seed = static_cast<std::uint64_t>(100 + j);
      pool.submit(sched::make_job_config(spec), sched::make_job_body(spec));
    }
    report = pool.simulated_schedule();
    benchmark::DoNotOptimize(report.makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
  state.counters["missions_per_sim_s"] = report.missions_per_sim_second();
  state.counters["sim_speedup"] = report.speedup();
}
BENCHMARK(BM_SchedulerThroughput)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ServiceThroughput(benchmark::State& state) {
  // The mission service end to end: one daemon over an 8-array pool, N
  // concurrent client connections each submitting a stream of short
  // single-lane denoise missions over loopback TCP and blocking on the
  // result. items/s == missions/s through the full protocol +
  // scheduler + evolution stack (host wall-clock, unlike the simulated
  // BM_SchedulerThroughput metric).
  const auto clients = static_cast<std::size_t>(state.range(0));
  constexpr int kMissionsPerClient = 4;
  svc::ServerConfig config;
  config.pool.num_arrays = 8;
  config.max_inflight = 64;
  svc::Server server(config);
  std::atomic<std::uint64_t> completed{0};
  const auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&server, &completed, c] {
        svc::Client client(server.port());
        sched::MissionSpec spec;
        spec.kind = sched::MissionKind::kDenoise;
        spec.lanes = 1;
        spec.size = 32;
        spec.generations = 30;
        for (int j = 0; j < kMissionsPerClient; ++j) {
          char name[16];
          std::snprintf(name, sizeof name, "c%zu-m%d", c, j);
          spec.name = name;
          spec.seed = 100 + static_cast<std::uint64_t>(j);
          const svc::Client::Submitted submitted = client.submit(spec);
          if (!submitted.ok) continue;
          const Json result = client.result(submitted.job);
          if (result.get_string("status", "") == "done") {
            completed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  // items/s divides by the measuring thread's CPU time, which mostly
  // sleeps here; the honest service throughput is missions per WALL
  // second, recorded as an explicit counter.
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  state.SetItemsProcessed(static_cast<std::int64_t>(completed.load()));
  state.counters["missions_per_wall_s"] =
      wall_seconds > 0.0
          ? static_cast<double>(completed.load()) / wall_seconds
          : 0.0;
  server.drain();
  server.wait_drained();
  server.stop();
}
BENCHMARK(BM_ServiceThroughput)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PlacementPolicy(benchmark::State& state) {
  // Raw routing cost: one place() over 8 targets, cycling 16 mission
  // fingerprints so the affinity table serves a mix of warm hits and
  // cold insertions — the per-submit overhead a forwarder or pool group
  // adds on top of the scheduler.
  sched::PlacementPolicy policy;
  std::vector<sched::PlacementTarget> targets(8);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    targets[i].total_arrays = 8;
    targets[i].free_arrays = 4 + i % 4;
    targets[i].running = 4 - i % 4;
    targets[i].queued = i % 3;
  }
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        policy.place(0x9E3779B97F4A7C15ULL * (1 + key++ % 16), 1, targets));
  }
  const sched::PlacementPolicy::Stats stats = policy.stats();
  state.counters["affinity_hit_rate"] =
      stats.placed == 0 ? 0.0
                        : static_cast<double>(stats.affinity_hits) /
                              static_cast<double>(stats.placed);
}
BENCHMARK(BM_PlacementPolicy);

void BM_ClusterThroughput(benchmark::State& state) {
  // The federation layer's cache-locality win, sized for a single-core
  // host: 8 distinct mission fingerprints (distinct scene_seeds)
  // submitted round-robin through a forwarder over N backends. Each
  // backend's FitnessMemo/compiled cache holds ~5 missions' entries, so
  // one backend interleaving all 8 fingerprints evicts each mission's
  // warm state before it repeats (cyclic LRU thrash, every round cold),
  // while affinity routing over 2/4 backends parks each fingerprint on
  // a backend whose working set fits — every repeat replays from the
  // memo and skips compilation + frame streaming. The N=1 baseline runs
  // behind a forwarder too, so the comparison isolates warmth, not
  // protocol hops. Results are bit-identical either way; only host
  // wall time moves (missions_per_wall_s is the honest metric).
  const auto backends = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kFingerprints = 8;
  constexpr int kRoundsPerIteration = 2;
  std::vector<std::unique_ptr<svc::Server>> servers;
  svc::ForwarderConfig front;
  for (std::size_t i = 0; i < backends; ++i) {
    svc::ServerConfig config;
    config.pool.num_arrays = 2;
    config.pool.line_width = 64;
    config.pool.cache_capacity = 1000;
    config.pool.fitness_memo_capacity = 1000;
    servers.push_back(std::make_unique<svc::Server>(config));
    svc::BackendConfig backend;
    backend.port = servers.back()->port();
    front.backends.push_back(backend);
  }
  front.poll_ms = 200;
  svc::Forwarder forwarder(std::move(front));
  svc::Client client(forwarder.port());
  sched::MissionSpec spec;
  spec.kind = sched::MissionKind::kDenoise;
  spec.lanes = 1;
  spec.size = 320;  // frame streaming dominates a cold mission's cost
  spec.generations = 3;
  spec.lambda = 60;  // same candidate count, fewer wave barriers
  std::uint64_t completed = 0;
  std::uint64_t serial = 0;
  const auto run_round = [&](std::uint64_t* counter) {
    for (std::size_t k = 0; k < kFingerprints; ++k) {
      char name[24];
      std::snprintf(name, sizeof name, "cl-%llu",
                    static_cast<unsigned long long>(serial++));
      spec.name = name;
      spec.scene_seed = 40 + k;  // the fingerprint: everything else fixed
      const svc::Client::Submitted submitted = client.submit(spec);
      if (!submitted.ok) continue;
      const Json result = client.result(submitted.job);
      if (counter != nullptr &&
          result.get_string("status", "") == "done") {
        ++*counter;
      }
    }
  };
  run_round(nullptr);  // warmup: placement learned, caches primed/thrashed
  const auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    for (int round = 0; round < kRoundsPerIteration; ++round) {
      run_round(&completed);
    }
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  state.SetItemsProcessed(static_cast<std::int64_t>(completed));
  state.counters["missions_per_wall_s"] =
      wall_seconds > 0.0 ? static_cast<double>(completed) / wall_seconds : 0.0;
  evo::FitnessMemoStats memo;
  for (const auto& server : servers) {
    const evo::FitnessMemoStats s = server->group().memo_stats();
    memo.hits += s.hits;
    memo.misses += s.misses;
    memo.evictions += s.evictions;
  }
  state.counters["memo_hit_rate"] = memo.hit_rate();
  const Json front_stats = client.stats();
  if (const Json* placement = front_stats.get("placement")) {
    const double placed = placement->get_number("placed", 0);
    state.counters["affinity_rate"] =
        placed > 0 ? placement->get_number("affinity_hits", 0) / placed : 0.0;
  }
  const svc::ForwarderStats routed = forwarder.forwarder_stats();
  state.counters["failovers"] = static_cast<double>(routed.failovers);
  forwarder.stop();
  for (const auto& server : servers) server->stop();
}
BENCHMARK(BM_ClusterThroughput)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_TelemetryOverhead(benchmark::State& state) {
  // The telemetry fast path as it sits in the hot loops: one span guard
  // plus a counter bump and a histogram record per iteration. Arg(0)
  // runs disarmed — the shape every bench and library embedder pays,
  // which the 25% bench-diff gate holds near-free — and Arg(1) runs
  // armed to price the ring writes a live `mpa trace` turns on.
  const bool armed = state.range(0) != 0;
  obs::Tracer& tracer = obs::Tracer::global();
  if (armed) {
    tracer.arm();
  } else {
    tracer.disarm();
  }
  obs::Registry registry;
  obs::Counter& ops = registry.counter("bench_ops_total");
  obs::Histogram& latency = registry.histogram("bench_latency_ns");
  std::uint64_t tick = 1;
  for (auto _ : state) {
    EHW_TRACE_SPAN("bench_overhead");
    ops.add();
    latency.record(tick);
    benchmark::DoNotOptimize(tick += 7);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["spans_dropped"] = static_cast<double>(tracer.dropped());
  tracer.disarm();
  tracer.clear();
}
BENCHMARK(BM_TelemetryOverhead)->Arg(0)->Arg(1);

void BM_MedianGolden(benchmark::State& state) {
  const img::Image src = img::make_scene(128, 128, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(img::median3x3(src));
  }
}
BENCHMARK(BM_MedianGolden);

}  // namespace

BENCHMARK_MAIN();
