// google-benchmark microbenches for the library's hot paths: window
// evaluation, whole-frame filtering, hardware-model fitness, mutation,
// offspring generation, configuration decode and DPR diffing.

#include <benchmark/benchmark.h>

#include "ehw/evo/fitness.hpp"
#include "ehw/evo/mutation.hpp"
#include "ehw/img/filters.hpp"
#include "ehw/evo/offspring.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/noise.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/pe/compiled.hpp"
#include "ehw/platform/platform.hpp"

namespace {

using namespace ehw;

evo::Genotype bench_genotype(std::uint64_t seed = 7) {
  Rng rng(seed);
  return evo::Genotype::random({4, 4}, rng);
}

void BM_WindowEvaluate(benchmark::State& state) {
  const pe::CompiledArray compiled(bench_genotype().to_array());
  const Pixel window[9] = {10, 20, 30, 40, 50, 60, 70, 80, 90};
  std::size_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.evaluate(window, x++, 0));
  }
}
BENCHMARK(BM_WindowEvaluate);

void BM_FilterFrame(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const pe::CompiledArray compiled(bench_genotype().to_array());
  const img::Image src = img::make_scene(size, size, 3);
  img::Image dst(size, size);
  for (auto _ : state) {
    compiled.filter_into(src, dst, nullptr);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size * size));
}
BENCHMARK(BM_FilterFrame)->Arg(64)->Arg(128)->Arg(256);

void BM_FitnessAgainst(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const pe::CompiledArray compiled(bench_genotype().to_array());
  const img::Image src = img::make_scene(size, size, 3);
  const img::Image ref = img::make_scene(size, size, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.fitness_against(src, ref));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size * size));
}
BENCHMARK(BM_FitnessAgainst)->Arg(64)->Arg(128);

void BM_AggregatedMae(benchmark::State& state) {
  const img::Image a = img::make_scene(128, 128, 5);
  const img::Image b = img::make_scene(128, 128, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(img::aggregated_mae(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          128 * 128);
}
BENCHMARK(BM_AggregatedMae);

void BM_Mutation(benchmark::State& state) {
  Rng rng(9);
  evo::Genotype g = bench_genotype();
  for (auto _ : state) {
    benchmark::DoNotOptimize(evo::mutate(g, 3, rng));
  }
}
BENCHMARK(BM_Mutation);

void BM_TwoLevelOffspring(benchmark::State& state) {
  Rng rng(10);
  const evo::Genotype parent = bench_genotype();
  for (auto _ : state) {
    benchmark::DoNotOptimize(evo::two_level_offspring(parent, 9, 3, 3, rng));
  }
}
BENCHMARK(BM_TwoLevelOffspring);

void BM_PlatformConfigureDiff(benchmark::State& state) {
  platform::PlatformConfig pc;
  pc.num_arrays = 1;
  pc.line_width = 64;
  platform::EvolvablePlatform plat(pc);
  Rng rng(11);
  evo::Genotype g = bench_genotype();
  plat.configure_array(0, g, 0);
  for (auto _ : state) {
    evo::mutate(g, 1, rng);
    benchmark::DoNotOptimize(plat.configure_array(0, g, 0));
  }
}
BENCHMARK(BM_PlatformConfigureDiff);

void BM_DecodeArray(benchmark::State& state) {
  platform::PlatformConfig pc;
  pc.num_arrays = 1;
  pc.line_width = 64;
  platform::EvolvablePlatform plat(pc);
  plat.configure_array(0, bench_genotype(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plat.decode_array(0));
  }
}
BENCHMARK(BM_DecodeArray);

void BM_MedianGolden(benchmark::State& state) {
  const img::Image src = img::make_scene(128, 128, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(img::median3x3(src));
  }
}
BENCHMARK(BM_MedianGolden);

}  // namespace

BENCHMARK_MAIN();
