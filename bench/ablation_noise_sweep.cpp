// Ablation — noise-density sweep (the Fig. 18 workload family): evolved
// single stage and evolved 3-stage cascade vs the conventional golden
// filters (median, mean, Gaussian, open/close morphology) across salt &
// pepper densities. Shows where evolution pays off: the crossover between
// model-based filters and adapted cascades as noise grows.

#include <iostream>

#include "bench_util.hpp"
#include "ehw/img/filters.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/morphology.hpp"
#include "ehw/platform/cascade_evolution.hpp"

using namespace ehw;
using namespace ehw::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchParams params = BenchParams::from_cli(cli, /*runs=*/1,
                                                   /*generations=*/1500);
  const std::size_t size = static_cast<std::size_t>(cli.get_int("size", 48));
  print_banner("Ablation: noise-density sweep, evolved vs golden filters",
               "aggregated MAE vs clean for salt&pepper densities "
               "10%..50%",
               params);

  ThreadPool pool;
  Table table({"density", "noisy", "evolved 1-stage", "evolved cascade(3)",
               "median", "mean", "gaussian", "open/close"});
  for (const double density : {0.10, 0.20, 0.30, 0.40, 0.50}) {
    const Workload w = make_workload(size, density,
                                     params.seed + static_cast<std::uint64_t>(
                                                       density * 1000));
    platform::EvolvablePlatform plat(platform_config(3, size, &pool));
    platform::CascadeConfig cfg;
    cfg.es.generations = params.generations;
    cfg.es.seed = params.seed;
    const platform::CascadeResult r =
        platform::evolve_cascade(plat, {0, 1, 2}, w.noisy, w.clean, cfg);

    const auto mae = [&](const img::Image& im) {
      return Table::integer(img::aggregated_mae(im, w.clean));
    };
    const img::Image oc = img::close3x3(img::open3x3(w.noisy));
    table.add_row({Table::num(density * 100, 0) + "%", mae(w.noisy),
                   Table::integer(r.stages[0].stage_fitness),
                   Table::integer(r.chain_fitness), mae(img::median3x3(w.noisy)),
                   mae(img::mean3x3(w.noisy)), mae(img::gaussian3x3(w.noisy)),
                   mae(oc)});
  }
  table.print(std::cout);
  std::cout << "\nreading: linear filters (mean/gaussian) degrade fast with "
               "density; the adapted cascade tracks (and at higher budgets "
               "beats) the median across the sweep — the paper's Fig. 18 "
               "claim generalized over noise levels.\n";
  return 0;
}
