// Fig. 13 — Same experiment as Fig. 12 with 256x256 images (4x the
// pixels): evaluation time quadruples while reconfiguration time does not,
// so the parallel-evolution saving grows ~4x (paper: ~200 s vs ~50 s).

#include <iostream>

#include "speedup_common.hpp"

using namespace ehw;
using namespace ehw::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchParams params = BenchParams::from_cli(cli, /*runs=*/2,
                                                   /*generations=*/120);
  const std::size_t size =
      static_cast<std::size_t>(cli.get_int("size", 256));
  print_banner("Fig. 13: parallel-evolution speed-up (256x256)",
               "as Fig. 12 at 4x the pixels: the saving scales with "
               "evaluation time",
               params);

  ThreadPool pool;
  const std::vector<std::size_t> rates{1, 3, 5};
  const SpeedupSeries single = measure_speedup(
      size, 1, /*two_level=*/false, rates, params, &pool, "1 array");
  const SpeedupSeries triple = measure_speedup(
      size, 3, /*two_level=*/false, rates, params, &pool, "3 arrays");
  print_speedup_table({single, triple}, rates);

  std::cout << "\npaper shape: same rising curves, but the constant saving "
               "is ~4x the 128x128 one (~200 s): the benefit of parallel "
               "evolution grows with evaluation time.\n";
  return 0;
}
