// Ablation — evolutionary-algorithm design choices (DESIGN.md §5):
//   * offspring count lambda (the paper fixes 9: three batches of three);
//   * neutral drift (CGP's accept-equal-fitness rule);
//   * classic vs two-level offspring generation,
// all at an equal *evaluation* budget (generations x lambda constant), on
// the salt & pepper denoise task. Reported: average best fitness and the
// simulated evolution time — showing why the published configuration is a
// sensible corner.

#include <iostream>

#include "bench_util.hpp"
#include "ehw/platform/evolution_driver.hpp"

using namespace ehw;
using namespace ehw::bench;

namespace {

struct Variant {
  std::string name;
  std::size_t lambda;
  bool two_level;
  bool drift;
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchParams params = BenchParams::from_cli(cli, /*runs=*/3,
                                                   /*generations=*/900);
  const std::size_t size = static_cast<std::size_t>(cli.get_int("size", 48));
  print_banner("Ablation: ES design choices",
               "lambda / neutral drift / two-level mutation at equal "
               "evaluation budget (generations x lambda held constant)",
               params);

  ThreadPool pool;
  const std::vector<Variant> variants{
      {"lambda=9 classic +drift (paper baseline)", 9, false, true},
      {"lambda=9 two-level +drift (paper new EA)", 9, true, true},
      {"lambda=9 classic -drift", 9, false, false},
      {"lambda=3 classic +drift", 3, false, true},
      {"lambda=15 classic +drift", 15, false, true},
  };

  const std::uint64_t eval_budget = params.generations * 9;
  Table table({"variant", "avg best MAE", "stddev", "avg sim time [s/100k]",
               "PE writes/gen"});
  for (const auto& v : variants) {
    RunningStats fit, time, writes;
    for (std::size_t run = 0; run < params.runs; ++run) {
      const Workload w = make_workload(size, 0.3, params.seed + 101 * run);
      platform::EvolvablePlatform plat(platform_config(3, size, &pool));
      evo::EsConfig cfg;
      cfg.lambda = v.lambda;
      cfg.two_level = v.two_level;
      cfg.accept_equal_fitness = v.drift;
      cfg.mutation_rate = 3;
      cfg.generations = eval_budget / v.lambda;  // equal evaluations
      cfg.seed = params.seed * 31 + run;
      cfg.record_history = false;
      const platform::IntrinsicResult r = platform::evolve_on_platform(
          plat, {0, 1, 2}, w.noisy, w.clean, cfg);
      fit.add(static_cast<double>(r.es.best_fitness));
      time.add(scale_to_100k(r.duration, r.es.generations_run));
      writes.add(static_cast<double>(r.pe_writes) /
                 static_cast<double>(r.es.generations_run));
    }
    table.add_row({v.name, Table::num(fit.mean(), 0),
                   Table::num(fit.stddev(), 0), Table::num(time.mean(), 1),
                   Table::num(writes.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nreading: lambda trades generation count against wave "
               "width at equal evaluations; drift matters on plateaus; "
               "two-level buys its time saving without a fitness penalty.\n";
  return 0;
}
