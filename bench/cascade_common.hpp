#pragma once
// Shared harness for Figs. 16/17: per-stage fitness of a 3-stage cascade
// under the three schemes the paper compares:
//   "same filter"           — one evolved chromosome copied to all stages
//                             (iterative application of the same circuit);
//   "adapted (sequential)"  — collaborative cascaded evolution, stage i+1
//                             evolved on stage i's output ("random" in the
//                             paper: stages start from fresh genotypes);
//   "adapted (interleaved)" — one generation per stage in rotation.
// Per-stage fitness is the aggregated MAE of the cascade output AFTER that
// stage vs the common (clean) reference.

#include <array>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "ehw/evo/fitness.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/platform/cascade_evolution.hpp"
#include "ehw/platform/evolution_driver.hpp"

namespace ehw::bench {

inline constexpr std::size_t kStages = 3;

struct CascadeOutcome {
  // fitness_after_stage[scheme][stage], one entry per run.
  std::array<std::array<std::vector<double>, kStages>, 3> samples;
  static constexpr const char* kSchemeNames[3] = {
      "same filter", "adapted (sequential)", "adapted (interleaved)"};
};

/// Fitness after each stage for the currently configured platform chain.
inline std::array<Fitness, kStages> stage_fitness(
    platform::EvolvablePlatform& plat, const img::Image& noisy,
    const img::Image& clean) {
  std::vector<img::Image> stages;
  plat.process_cascade_into(noisy, stages);
  std::array<Fitness, kStages> out{};
  for (std::size_t s = 0; s < kStages; ++s) {
    out[s] = img::aggregated_mae(stages[s], clean);
  }
  return out;
}

inline CascadeOutcome run_cascade_experiment(std::size_t size,
                                             double noise_density,
                                             const BenchParams& params,
                                             ThreadPool* pool) {
  CascadeOutcome outcome;
  for (std::size_t run = 0; run < params.runs; ++run) {
    const Workload w = make_workload(size, noise_density,
                                     params.seed + 13 * run);

    // Scheme 0: same evolved filter in every stage.
    {
      platform::EvolvablePlatform plat(platform_config(kStages, size, pool));
      evo::EsConfig cfg;
      cfg.generations = params.generations;
      cfg.seed = params.seed + run * 997;
      const platform::IntrinsicResult r = platform::evolve_on_platform(
          plat, {0, 1, 2}, w.noisy, w.clean, cfg);
      sim::SimTime barrier = plat.now();
      for (std::size_t a = 0; a < kStages; ++a) {
        barrier = plat.configure_array(a, r.es.best, barrier).end;
      }
      const auto fits = stage_fitness(plat, w.noisy, w.clean);
      for (std::size_t s = 0; s < kStages; ++s) {
        outcome.samples[0][s].push_back(static_cast<double>(fits[s]));
      }
    }

    // Schemes 1/2: collaborative cascaded evolution.
    for (const auto& [scheme, schedule] :
         {std::pair{std::size_t{1}, platform::CascadeSchedule::kSequential},
          std::pair{std::size_t{2},
                    platform::CascadeSchedule::kInterleaved}}) {
      platform::EvolvablePlatform plat(platform_config(kStages, size, pool));
      platform::CascadeConfig cfg;
      cfg.es.generations = params.generations;
      cfg.es.seed = params.seed + run * 997;
      cfg.fitness = platform::CascadeFitness::kSeparate;
      cfg.schedule = schedule;
      platform::evolve_cascade(plat, {0, 1, 2}, w.noisy, w.clean, cfg);
      const auto fits = stage_fitness(plat, w.noisy, w.clean);
      for (std::size_t s = 0; s < kStages; ++s) {
        outcome.samples[scheme][s].push_back(static_cast<double>(fits[s]));
      }
    }
  }
  return outcome;
}

/// Prints the figure's series; `reduce` maps a sample vector to the
/// reported scalar (mean for Fig. 16, min for Fig. 17).
template <typename Reduce>
void print_cascade_table(const CascadeOutcome& outcome, Reduce reduce,
                         const char* value_name) {
  Table table({"stage", std::string(CascadeOutcome::kSchemeNames[0]),
               std::string(CascadeOutcome::kSchemeNames[1]),
               std::string(CascadeOutcome::kSchemeNames[2])});
  for (std::size_t s = 0; s < kStages; ++s) {
    table.add_row({"after stage " + std::to_string(s + 1),
                   Table::num(reduce(outcome.samples[0][s]), 0),
                   Table::num(reduce(outcome.samples[1][s]), 0),
                   Table::num(reduce(outcome.samples[2][s]), 0)});
  }
  table.print(std::cout);
  std::cout << "(" << value_name << " aggregated MAE vs the clean reference; "
            << "lower is better)\n";
}

}  // namespace ehw::bench
