// Fig. 15 — FITNESS of the classic EA vs the two-level EA per mutation
// rate. The paper pairs this with Fig. 14: the new strategy "was mainly
// created to reduce evolution time" and "also provides better results in
// terms of fitness". Two comparisons are reported:
//   * equal GENERATIONS — same candidate budget; two-level spends fewer
//     DPR writes but explores with shorter steps, and
//   * equal SIMULATED TIME — the deployment-relevant view: within the
//     time the classic EA needs for its run, the two-level EA fits ~1.5-2x
//     more generations (Fig. 14's saving) and converts them into fitness.

#include <iostream>

#include "bench_util.hpp"
#include "ehw/platform/evolution_driver.hpp"

using namespace ehw;
using namespace ehw::bench;

namespace {

struct Sample {
  double classic_fitness = 0;
  double two_level_equal_gen = 0;
  double two_level_equal_time = 0;
};

Sample run_pair(std::size_t size, std::size_t k, Generation generations,
                std::uint64_t seed, ThreadPool* pool) {
  const Workload w = make_workload(size, 0.2, seed);
  Sample s;
  sim::SimTime classic_time = 0;
  {
    platform::EvolvablePlatform plat(platform_config(3, size, pool));
    evo::EsConfig cfg;
    cfg.mutation_rate = k;
    cfg.generations = generations;
    cfg.seed = seed * 5 + 1;
    cfg.record_history = false;
    const platform::IntrinsicResult r = platform::evolve_on_platform(
        plat, {0, 1, 2}, w.noisy, w.clean, cfg);
    s.classic_fitness = static_cast<double>(r.es.best_fitness);
    classic_time = r.duration;
  }
  sim::SimTime two_level_time = 0;
  {
    platform::EvolvablePlatform plat(platform_config(3, size, pool));
    evo::EsConfig cfg;
    cfg.mutation_rate = k;
    cfg.two_level = true;
    cfg.generations = generations;
    cfg.seed = seed * 5 + 1;
    cfg.record_history = false;
    const platform::IntrinsicResult r = platform::evolve_on_platform(
        plat, {0, 1, 2}, w.noisy, w.clean, cfg);
    s.two_level_equal_gen = static_cast<double>(r.es.best_fitness);
    two_level_time = r.duration;
  }
  {
    // Equal-time run: scale the generation budget by the measured
    // per-generation speed advantage (Fig. 14).
    const auto scaled = static_cast<Generation>(
        static_cast<double>(generations) *
        static_cast<double>(classic_time) /
        static_cast<double>(std::max<sim::SimTime>(1, two_level_time)));
    platform::EvolvablePlatform plat(platform_config(3, size, pool));
    evo::EsConfig cfg;
    cfg.mutation_rate = k;
    cfg.two_level = true;
    cfg.generations = scaled;
    cfg.seed = seed * 5 + 1;
    cfg.record_history = false;
    const platform::IntrinsicResult r = platform::evolve_on_platform(
        plat, {0, 1, 2}, w.noisy, w.clean, cfg);
    s.two_level_equal_time = static_cast<double>(r.es.best_fitness);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchParams params = BenchParams::from_cli(cli, /*runs=*/5,
                                                   /*generations=*/1200);
  const std::size_t size = static_cast<std::size_t>(cli.get_int("size", 48));
  print_banner("Fig. 15: classic vs two-level EA, average fitness",
               "3 arrays, salt&pepper denoise; equal-generation AND "
               "equal-simulated-time comparisons; lower MAE is better",
               params);

  ThreadPool pool;
  Table table({"mutation rate k", "classic EA", "two-level (equal gens)",
               "two-level (equal time)", "equal-time verdict"});
  for (const std::size_t k : {1, 3, 5}) {
    RunningStats classic, equal_gen, equal_time;
    for (std::size_t run = 0; run < params.runs; ++run) {
      const Sample s = run_pair(size, k, params.generations,
                                params.seed + run * 1000 + k, &pool);
      classic.add(s.classic_fitness);
      equal_gen.add(s.two_level_equal_gen);
      equal_time.add(s.two_level_equal_time);
    }
    table.add_row({"k=" + std::to_string(k), Table::num(classic.mean(), 0),
                   Table::num(equal_gen.mean(), 0),
                   Table::num(equal_time.mean(), 0),
                   equal_time.mean() <= classic.mean() * 1.02
                       ? "equal or better"
                       : "worse"});
  }
  table.print(std::cout);
  std::cout << "\npaper shape: at the time budget the classic EA needs, the "
               "two-level EA reaches equal or better fitness (its Fig. 14 "
               "speed advantage converts into extra generations).\n";
  return 0;
}
