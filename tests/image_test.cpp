// Tests for ehw/img: container semantics, window gathering, PGM I/O,
// synthetic scenes, noise injectors, golden filters and metrics.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ehw/common/rng.hpp"
#include "ehw/img/filters.hpp"
#include "ehw/img/image.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/noise.hpp"
#include "ehw/img/pgm_io.hpp"
#include "ehw/img/synthetic.hpp"

namespace ehw::img {
namespace {

TEST(Image, BasicAccessors) {
  Image im(4, 3, 7);
  EXPECT_EQ(im.width(), 4u);
  EXPECT_EQ(im.height(), 3u);
  EXPECT_EQ(im.pixel_count(), 12u);
  EXPECT_EQ(im.at(0, 0), 7);
  im.set(2, 1, 99);
  EXPECT_EQ(im.at(2, 1), 99);
  EXPECT_EQ(im.row(1)[2], 99);
}

TEST(Image, ClampedAccessReplicatesBorder) {
  Image im(3, 3);
  for (std::size_t y = 0; y < 3; ++y) {
    for (std::size_t x = 0; x < 3; ++x) {
      im.set(x, y, static_cast<Pixel>(10 * y + x));
    }
  }
  EXPECT_EQ(im.at_clamped(-1, -1), im.at(0, 0));
  EXPECT_EQ(im.at_clamped(3, 1), im.at(2, 1));
  EXPECT_EQ(im.at_clamped(1, 5), im.at(1, 2));
  EXPECT_EQ(im.at_clamped(1, 1), im.at(1, 1));
}

TEST(Image, WindowGatherOrderAndBorders) {
  Image im(3, 3);
  for (std::size_t i = 0; i < 9; ++i) {
    im.set(i % 3, i / 3, static_cast<Pixel>(i));
  }
  Pixel win[9];
  gather_window3x3(im, 1, 1, win);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(win[i], i);
  // Corner window replicates.
  gather_window3x3(im, 0, 0, win);
  EXPECT_EQ(win[0], im.at(0, 0));
  EXPECT_EQ(win[4], im.at(0, 0));
  EXPECT_EQ(win[8], im.at(1, 1));
}

TEST(Image, EqualityIsDeep) {
  Image a(2, 2, 1), b(2, 2, 1);
  EXPECT_EQ(a, b);
  b.set(0, 0, 2);
  EXPECT_FALSE(a == b);
}

TEST(PgmIo, BinaryRoundTrip) {
  Image im = make_scene(17, 11, 5);
  std::stringstream ss;
  write_pgm(im, ss);
  const Image back = read_pgm(ss);
  EXPECT_EQ(im, back);
}

TEST(PgmIo, ReadsAsciiVariant) {
  std::stringstream ss("P2\n# comment\n2 2\n255\n0 128\n255 64\n");
  const Image im = read_pgm(ss);
  EXPECT_EQ(im.at(0, 0), 0);
  EXPECT_EQ(im.at(1, 0), 128);
  EXPECT_EQ(im.at(0, 1), 255);
  EXPECT_EQ(im.at(1, 1), 64);
}

TEST(PgmIo, RejectsMalformed) {
  std::stringstream bad_magic("P7\n2 2\n255\n");
  EXPECT_THROW(read_pgm(bad_magic), std::runtime_error);
  std::stringstream truncated("P5\n4 4\n255\nab");
  EXPECT_THROW(read_pgm(truncated), std::runtime_error);
}

TEST(Synthetic, SceneIsDeterministicInSeed) {
  EXPECT_EQ(make_scene(32, 32, 9), make_scene(32, 32, 9));
  EXPECT_NE(make_scene(32, 32, 9), make_scene(32, 32, 10));
}

TEST(Synthetic, SceneHasDynamicRange) {
  const Image s = make_scene(64, 64, 3);
  Pixel lo = 255, hi = 0;
  for (std::size_t y = 0; y < s.height(); ++y) {
    for (std::size_t x = 0; x < s.width(); ++x) {
      lo = std::min(lo, s.at(x, y));
      hi = std::max(hi, s.at(x, y));
    }
  }
  EXPECT_GT(hi - lo, 80);  // edges + blobs guarantee real contrast
}

TEST(Synthetic, GradientMonotone) {
  const Image g = make_gradient(16, 4, 0, 255);
  for (std::size_t x = 1; x < 16; ++x) {
    EXPECT_GE(g.at(x, 2), g.at(x - 1, 2));
  }
  EXPECT_EQ(g.at(0, 0), 0);
  EXPECT_EQ(g.at(15, 0), 255);
}

TEST(Synthetic, CheckerboardAlternates) {
  const Image c = make_checkerboard(8, 8, 2, 10, 200);
  EXPECT_EQ(c.at(0, 0), 200);
  EXPECT_EQ(c.at(2, 0), 10);
  EXPECT_EQ(c.at(0, 2), 10);
  EXPECT_EQ(c.at(2, 2), 200);
}

TEST(Synthetic, CalibrationPatternDeterministic) {
  EXPECT_EQ(make_calibration_pattern(32, 32), make_calibration_pattern(32, 32));
}

TEST(Noise, SaltPepperDensity) {
  const Image clean = make_constant(100, 100, 128);
  Rng rng(1);
  const Image noisy = add_salt_pepper(clean, 0.3, rng);
  const double frac = differing_fraction(clean, noisy);
  EXPECT_NEAR(frac, 0.3, 0.03);
  // Corrupted pixels are exactly 0 or 255.
  for (std::size_t y = 0; y < noisy.height(); ++y) {
    for (std::size_t x = 0; x < noisy.width(); ++x) {
      const Pixel p = noisy.at(x, y);
      EXPECT_TRUE(p == 128 || p == 0 || p == 255);
    }
  }
}

TEST(Noise, ZeroDensityIsIdentity) {
  const Image clean = make_scene(20, 20, 2);
  Rng rng(1);
  EXPECT_EQ(add_salt_pepper(clean, 0.0, rng), clean);
  EXPECT_EQ(add_impulse(clean, 0.0, rng), clean);
}

TEST(Noise, GaussianSigmaZeroIsIdentity) {
  const Image clean = make_scene(20, 20, 2);
  Rng rng(1);
  EXPECT_EQ(add_gaussian(clean, 0.0, rng), clean);
}

TEST(Noise, GaussianPerturbsMildly) {
  const Image clean = make_constant(64, 64, 128);
  Rng rng(1);
  const Image noisy = add_gaussian(clean, 10.0, rng);
  const double mae = mean_absolute_error(clean, noisy);
  // E|N(0,10)| ~ 8.0
  EXPECT_NEAR(mae, 8.0, 1.5);
}

TEST(Filters, MedianRemovesIsolatedImpulse) {
  Image im = make_constant(9, 9, 100);
  im.set(4, 4, 255);
  const Image out = median3x3(im);
  EXPECT_EQ(out.at(4, 4), 100);
}

TEST(Filters, MedianOfKnownWindow) {
  Image im(3, 3);
  const Pixel vals[9] = {9, 1, 8, 2, 7, 3, 6, 4, 5};
  for (std::size_t i = 0; i < 9; ++i) im.set(i % 3, i / 3, vals[i]);
  EXPECT_EQ(median3x3(im).at(1, 1), 5);
}

TEST(Filters, MeanOnConstantIsConstant) {
  const Image im = make_constant(8, 8, 57);
  EXPECT_EQ(mean3x3(im), im);
}

TEST(Filters, GaussianPreservesConstant) {
  const Image im = make_constant(8, 8, 200);
  EXPECT_EQ(gaussian3x3(im), im);
}

TEST(Filters, SobelZeroOnFlat) {
  const Image im = make_constant(8, 8, 91);
  const Image e = sobel_magnitude(im);
  for (std::size_t y = 0; y < e.height(); ++y) {
    for (std::size_t x = 0; x < e.width(); ++x) EXPECT_EQ(e.at(x, y), 0);
  }
}

TEST(Filters, SobelRespondsToEdge) {
  Image im(8, 8, 0);
  for (std::size_t y = 0; y < 8; ++y) {
    for (std::size_t x = 4; x < 8; ++x) im.set(x, y, 255);
  }
  const Image e = sobel_magnitude(im);
  EXPECT_EQ(e.at(1, 4), 0);    // far from edge
  EXPECT_GT(e.at(4, 4), 200);  // on the edge
}

TEST(Filters, ConvolveIdentityKernel) {
  const Image im = make_scene(16, 16, 8);
  const int kernel[9] = {0, 0, 0, 0, 1, 0, 0, 0, 0};
  EXPECT_EQ(convolve3x3(im, kernel, 1), im);
}

TEST(Filters, ApplyNChainsFilter) {
  const Image im = make_scene(16, 16, 8);
  const Image twice = apply_n(im, 2, [](const Image& x) { return mean3x3(x); });
  EXPECT_EQ(twice, mean3x3(mean3x3(im)));
}

TEST(Metrics, AggregatedMaeBasics) {
  const Image a = make_constant(4, 4, 10);
  const Image b = make_constant(4, 4, 13);
  EXPECT_EQ(aggregated_mae(a, a), 0u);
  EXPECT_EQ(aggregated_mae(a, b), 16u * 3u);
  EXPECT_EQ(aggregated_mae(b, a), 16u * 3u);  // symmetric
  EXPECT_DOUBLE_EQ(mean_absolute_error(a, b), 3.0);
}

TEST(Metrics, TriangleInequalityHolds) {
  const Image a = make_scene(16, 16, 1);
  const Image b = make_scene(16, 16, 2);
  const Image c = make_scene(16, 16, 3);
  EXPECT_LE(aggregated_mae(a, c),
            aggregated_mae(a, b) + aggregated_mae(b, c));
}

TEST(Metrics, PsnrIdenticalIsInfinite) {
  const Image a = make_scene(8, 8, 4);
  EXPECT_TRUE(std::isinf(psnr(a, a)));
}

TEST(Metrics, PsnrOrdersNoiseLevels) {
  const Image clean = make_scene(64, 64, 4);
  Rng r1(1), r2(2);
  const Image mild = add_salt_pepper(clean, 0.05, r1);
  const Image heavy = add_salt_pepper(clean, 0.4, r2);
  EXPECT_GT(psnr(clean, mild), psnr(clean, heavy));
}

TEST(Metrics, MaxAbsDifference) {
  Image a = make_constant(4, 4, 100);
  Image b = a;
  b.set(2, 2, 250);
  EXPECT_EQ(max_abs_difference(a, b), 150);
  EXPECT_EQ(max_abs_difference(a, a), 0);
}

TEST(Metrics, ShapeMismatchThrows) {
  const Image a(4, 4), b(4, 5);
  EXPECT_THROW((void)aggregated_mae(a, b), std::logic_error);
}

}  // namespace
}  // namespace ehw::img
