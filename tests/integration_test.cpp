// End-to-end integration tests: full evolve -> deploy -> mission -> fault
// -> heal cycles across every subsystem, exactly as the examples use the
// public API.

#include <gtest/gtest.h>

#include "ehw/evo/fitness.hpp"
#include "ehw/img/filters.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/noise.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/platform/cascade_evolution.hpp"
#include "ehw/platform/evolution_driver.hpp"
#include "ehw/platform/self_healing.hpp"
#include "test_util.hpp"

namespace ehw {
namespace {

TEST(Integration, EvolveDeployAndFilterUnseenImage) {
  // Evolve a denoiser on one scene, then apply it to a DIFFERENT scene
  // with the same noise process: quality must transfer.
  platform::EvolvablePlatform plat(test::small_platform_config(3));
  const auto train = test::make_denoise_workload(32, 0.2, 61);
  const platform::IntrinsicResult r = platform::evolve_on_platform(
      plat, {0, 1, 2}, train.noisy, train.clean, [] {
        evo::EsConfig cfg;
        cfg.generations = 250;
        cfg.seed = 61;
        return cfg;
      }());
  plat.configure_array(0, r.es.best, plat.now());

  const auto fresh = test::make_denoise_workload(32, 0.2, 62);
  const img::Image filtered = plat.process_independent(0, fresh.noisy);
  const Fitness before = img::aggregated_mae(fresh.noisy, fresh.clean);
  const Fitness after = img::aggregated_mae(filtered, fresh.clean);
  EXPECT_LT(after, before);
}

TEST(Integration, ParallelEvolutionMatchesFitnessQualityOfIndependent) {
  // Parallel evolution is a scheduling change, not an algorithm change:
  // for the same seed and parameters it must reach identical fitness.
  // (Timing benefits are covered in drivers_test with realistic frame
  // sizes; at tiny test frames DPR dominates and the saving vanishes —
  // the paper's own Fig. 12-vs-13 observation.)
  const auto w = test::make_denoise_workload(32, 0.25, 63);
  evo::EsConfig cfg;
  cfg.generations = 150;
  cfg.seed = 63;

  platform::EvolvablePlatform single(test::small_platform_config(1));
  const auto r1 =
      platform::evolve_on_platform(single, {0}, w.noisy, w.clean, cfg);
  platform::EvolvablePlatform triple(test::small_platform_config(3));
  const auto r3 = platform::evolve_on_platform(triple, {0, 1, 2}, w.noisy,
                                               w.clean, cfg);
  // Identical candidate streams -> identical best fitness.
  EXPECT_EQ(r1.es.best_fitness, r3.es.best_fitness);
}

TEST(Integration, CascadeBeatsSingleStageOnHeavyNoise) {
  // The Fig. 16/17 story end-to-end: a 3-stage adapted cascade reaches
  // lower fitness than its own first stage alone on 40% salt & pepper.
  platform::EvolvablePlatform plat(test::small_platform_config(3));
  const auto w = test::make_denoise_workload(32, 0.4, 64);
  platform::CascadeConfig cfg;
  cfg.es.generations = 150;
  cfg.es.seed = 64;
  const platform::CascadeResult r =
      platform::evolve_cascade(plat, {0, 1, 2}, w.noisy, w.clean, cfg);
  EXPECT_LT(r.chain_fitness, r.stages[0].stage_fitness);
}

TEST(Integration, MissionWithTmrSurvivesFaultSequence) {
  // Full §V.B mission: deploy TMR, stream frames, inject a permanent
  // fault mid-mission, keep streaming. The voted stream must track the
  // golden output on every frame.
  platform::EvolvablePlatform plat(test::small_platform_config(3));
  const auto w = test::make_denoise_workload(32, 0.2, 65);
  const platform::IntrinsicResult evolved = platform::evolve_on_platform(
      plat, {0, 1, 2}, w.noisy, w.clean, [] {
        evo::EsConfig cfg;
        cfg.generations = 120;
        cfg.seed = 65;
        return cfg;
      }());

  platform::TmrSelfHealing::Config hcfg;
  hcfg.voter_threshold = 50;
  hcfg.recovery_es.generations = 150;
  hcfg.recovery_es.seed = 66;
  platform::TmrSelfHealing tmr(plat, {0, 1, 2}, hcfg);
  tmr.deploy(evolved.es.best);

  Rng rng(66);
  for (int frame = 0; frame < 6; ++frame) {
    const img::Image clean = img::make_scene(32, 32, 100 + frame);
    const img::Image noisy = img::add_salt_pepper(clean, 0.2, rng);
    // Golden = what a healthy majority produces this frame (array 0 stays
    // healthy throughout; after a paste it holds the recovered circuit).
    const img::Image golden = plat.filter_array(0, noisy);
    if (frame == 3) plat.inject_pe_fault(2, 0, 1);
    const auto r = tmr.process_frame(noisy);
    if (frame < 3) {
      EXPECT_FALSE(r.vote.faulty.has_value());
    }
    // TMR guarantee: the voted stream of every frame tracks the healthy
    // majority — including the frame where the fault strikes.
    EXPECT_EQ(r.voted, golden);
  }
  // The healing log contains the whole §V.B sequence.
  bool scrubbed = false, imitated = false;
  for (const auto& e : tmr.events()) {
    scrubbed |= e.kind == platform::HealingEventKind::kScrubbed;
    imitated |= e.kind == platform::HealingEventKind::kImitationRecovered;
  }
  EXPECT_TRUE(scrubbed);
  EXPECT_TRUE(imitated);
}

TEST(Integration, EvolvedFilterBeatsMedianBaselineEventually) {
  // Fig. 18's comparison point: on salt & pepper the evolved cascade is
  // competitive with (and with enough budget better than) the golden
  // median filter. With a reduced test budget we assert the weaker,
  // budget-independent property: the cascade beats a single median pass
  // cascaded the same number of times OR comes within 2x of the single
  // median (shape check, not absolute).
  platform::EvolvablePlatform plat(test::small_platform_config(3));
  const auto w = test::make_denoise_workload(32, 0.4, 67);
  platform::CascadeConfig cfg;
  cfg.es.generations = 200;
  cfg.es.seed = 67;
  const platform::CascadeResult r =
      platform::evolve_cascade(plat, {0, 1, 2}, w.noisy, w.clean, cfg);

  const img::Image median1 = img::median3x3(w.noisy);
  const Fitness median_fit = img::aggregated_mae(median1, w.clean);
  EXPECT_LT(r.chain_fitness, 2 * median_fit);
}

TEST(Integration, RegisterBusViewConsistentAfterEvolution) {
  // After an intrinsic run, the RO registers expose the platform state the
  // paper's MicroBlaze software would read.
  platform::EvolvablePlatform plat(test::small_platform_config(2));
  const auto w = test::make_denoise_workload(24, 0.2, 68);
  evo::EsConfig cfg;
  cfg.generations = 40;
  cfg.seed = 68;
  platform::evolve_on_platform(plat, {0, 1}, w.noisy, w.clean, cfg);
  EXPECT_EQ(plat.reg_read(platform::kRegNumAcbs), 2u);
  for (std::size_t a = 0; a < 2; ++a) {
    EXPECT_TRUE(plat.acb(a).fitness_valid());
    const platform::RegValue lat = plat.reg_read(
        platform::RegisterFile::acb_reg(a, platform::kRegLatency));
    EXPECT_GE(lat, 5u);
    EXPECT_LE(lat, 8u);
  }
}

TEST(Integration, ExtrinsicAndIntrinsicEvolutionAgreeWithoutFaults) {
  // The intrinsic path (through fabric, engine, decode) must produce the
  // same evolutionary trajectory as the extrinsic path for equal seeds —
  // the fabric is transparent when healthy.
  const auto w = test::make_denoise_workload(24, 0.2, 69);
  evo::EsConfig cfg;
  cfg.generations = 60;
  cfg.seed = 69;
  const evo::EsResult ext = evo::evolve_extrinsic(cfg, {4, 4}, w.noisy, w.clean);

  platform::EvolvablePlatform plat(test::small_platform_config(1));
  Rng seed_rng(cfg.seed ^ 0xA5A5A5A5A5A5A5A5ULL);
  const evo::Genotype parent = evo::Genotype::random({4, 4}, seed_rng);
  const platform::IntrinsicResult intr =
      platform::evolve_on_platform(plat, {0}, w.noisy, w.clean, cfg, &parent);
  EXPECT_EQ(ext.best_fitness, intr.es.best_fitness);
}

}  // namespace
}  // namespace ehw
