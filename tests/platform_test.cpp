// Tests for ehw/platform core pieces: the self-addressing register file,
// ACB control semantics, voters, and the EvolvablePlatform's configure /
// evaluate / fault / scrub behaviour.

#include <gtest/gtest.h>

#include "ehw/evo/fitness.hpp"
#include "ehw/img/noise.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/platform/platform.hpp"
#include "ehw/platform/voter.hpp"
#include "test_util.hpp"

namespace ehw::platform {
namespace {

TEST(RegisterFile, GlobalBlockIsReadOnly) {
  RegisterFile regs(3);
  EXPECT_EQ(regs.read(kRegNumAcbs), 3u);
  EXPECT_EQ(regs.read(kRegPlatformId) & 0xFF, 3u);
  regs.write(kRegNumAcbs, 99);  // ignored
  EXPECT_EQ(regs.read(kRegNumAcbs), 3u);
}

TEST(RegisterFile, DecodeMapsAcbBlocks) {
  RegisterFile regs(3);
  std::size_t acb = 0;
  RegAddr off = 0;
  EXPECT_TRUE(regs.decode(RegisterFile::acb_reg(2, kRegCtrl), &acb, &off));
  EXPECT_EQ(acb, 2u);
  EXPECT_EQ(off, kRegCtrl);
  EXPECT_FALSE(regs.decode(0x50, nullptr, nullptr));  // below ACB base
  EXPECT_FALSE(regs.decode(RegisterFile::acb_reg(3, 0), nullptr, nullptr));
}

TEST(RegisterFile, RoRegistersIgnoreBusWrites) {
  RegisterFile regs(1);
  const RegAddr fit = RegisterFile::acb_reg(0, kRegFitnessLo);
  regs.write(fit, 0x1234);
  EXPECT_EQ(regs.read(fit), 0u);
  regs.publish(fit, 0x1234);  // hardware side can
  EXPECT_EQ(regs.read(fit), 0x1234u);
}

TEST(RegisterFile, RwRegistersAcceptWrites) {
  RegisterFile regs(2);
  const RegAddr tap = RegisterFile::acb_reg(1, kRegInputTap0 + 3);
  regs.write(tap, 7);
  EXPECT_EQ(regs.read(tap), 7u);
}

TEST(Acb, ControlBitFields) {
  RegisterFile regs(2);
  ArrayControlBlock acb(regs, 1, 8, 4, 32, 100.0);
  EXPECT_FALSE(acb.bypass());
  acb.set_bypass(true);
  EXPECT_TRUE(acb.bypass());
  acb.set_input_source(InputSource::kPrevious);
  EXPECT_EQ(acb.input_source(), InputSource::kPrevious);
  acb.set_fitness_source(FitnessSource::kNeighborVsOut);
  EXPECT_EQ(acb.fitness_source(), FitnessSource::kNeighborVsOut);
  // Fields do not clobber each other.
  EXPECT_TRUE(acb.bypass());
  acb.set_bypass(false);
  EXPECT_EQ(acb.input_source(), InputSource::kPrevious);
}

TEST(Acb, TapsMaskLikeHardware) {
  RegisterFile regs(1);
  ArrayControlBlock acb(regs, 0, 8, 4, 32, 100.0);
  // Raw register poke with an oversized value: the 9-to-1 mux wraps.
  regs.write(RegisterFile::acb_reg(0, kRegInputTap0), 9 + 4);
  EXPECT_EQ(acb.input_taps()[0], 4);
}

TEST(Acb, FitnessPublication64Bit) {
  RegisterFile regs(1);
  ArrayControlBlock acb(regs, 0, 8, 4, 32, 100.0);
  EXPECT_FALSE(acb.fitness_valid());
  const Fitness big = (Fitness{0xAB} << 32) | 0x12345678u;
  acb.publish_fitness(big);
  EXPECT_TRUE(acb.fitness_valid());
  EXPECT_EQ(acb.read_fitness_registers(), big);
  acb.invalidate_fitness();
  EXPECT_FALSE(acb.fitness_valid());
}

TEST(LineFifoModel, FillCyclesAndCapacity) {
  LineFifo fifo(128, 100.0);
  EXPECT_EQ(fifo.fill_cycles(), 2u * 128u + 2u);
  EXPECT_EQ(fifo.capacity_pixels(), 3u * 128u);
  EXPECT_EQ(fifo.fill_time(), sim::cycles_at_mhz(258, 100.0));
}

TEST(FitnessVoterTest, UnanimousAndSingleDeviant) {
  FitnessVoter voter(10);
  EXPECT_FALSE(voter.vote({100, 105, 95}).faulty.has_value());
  const FitnessVote v = voter.vote({100, 400, 95});
  ASSERT_TRUE(v.faulty.has_value());
  EXPECT_EQ(*v.faulty, 1u);
  EXPECT_FALSE(v.inconclusive);
}

TEST(FitnessVoterTest, EachPositionLocalizable) {
  FitnessVoter voter(0);
  EXPECT_EQ(*voter.vote({9, 1, 1}).faulty, 0u);
  EXPECT_EQ(*voter.vote({1, 9, 1}).faulty, 1u);
  EXPECT_EQ(*voter.vote({1, 1, 9}).faulty, 2u);
}

TEST(FitnessVoterTest, AllDifferentIsInconclusive) {
  FitnessVoter voter(0);
  const FitnessVote v = voter.vote({1, 100, 10000});
  EXPECT_FALSE(v.faulty.has_value());
  EXPECT_TRUE(v.inconclusive);
}

TEST(PixelVoterTest, MajorityWins) {
  img::Image a = img::make_constant(4, 4, 10);
  img::Image b = img::make_constant(4, 4, 10);
  img::Image c = img::make_constant(4, 4, 99);
  const PixelVoteResult r = PixelVoter::vote(a, b, c);
  EXPECT_EQ(r.majority, a);
  EXPECT_EQ(r.outvoted[2], 16u);
  EXPECT_EQ(r.outvoted[0], 0u);
  EXPECT_EQ(r.no_majority, 0u);
}

TEST(PixelVoterTest, NoMajorityEmitsMedian) {
  img::Image a = img::make_constant(1, 1, 10);
  img::Image b = img::make_constant(1, 1, 20);
  img::Image c = img::make_constant(1, 1, 30);
  const PixelVoteResult r = PixelVoter::vote(a, b, c);
  EXPECT_EQ(r.majority.at(0, 0), 20);
  EXPECT_EQ(r.no_majority, 1u);
}

TEST(PixelVoterTest, MasksSingleFaultExactly) {
  // Property: whenever two streams agree, the third cannot influence the
  // voted output.
  const img::Image good = img::make_scene(16, 16, 3);
  Rng rng(4);
  const img::Image bad = img::add_salt_pepper(good, 0.5, rng);
  const PixelVoteResult r = PixelVoter::vote(good, bad, good);
  EXPECT_EQ(r.majority, good);
}

/// ---------------------------------------------------------------------------
struct PlatformFixture : ::testing::Test {
  PlatformFixture() : plat(test::small_platform_config(3)) {}
  EvolvablePlatform plat;
};

TEST_F(PlatformFixture, FirstConfigureWritesAllCells) {
  Rng rng(1);
  const evo::Genotype g = evo::Genotype::random({4, 4}, rng);
  const sim::Interval span = plat.configure_array(0, g, 0);
  EXPECT_EQ(plat.engine_stats().pe_writes, 16u);
  EXPECT_EQ(span.duration(), 16 * reconfig::kPeReconfigTime);
  ASSERT_TRUE(plat.configured_genotype(0).has_value());
  EXPECT_EQ(*plat.configured_genotype(0), g);
}

TEST_F(PlatformFixture, ReconfigureWritesOnlyDiff) {
  Rng rng(2);
  const evo::Genotype g = evo::Genotype::random({4, 4}, rng);
  plat.configure_array(0, g, 0);
  const std::uint64_t before = plat.engine_stats().pe_writes;
  evo::Genotype h = g;
  h.set_function_gene(5, (h.function_gene(5) + 1) % 16);
  h.set_tap_gene(0, (h.tap_gene(0) + 1) % 9);  // register gene: free
  plat.configure_array(0, h, 0);
  EXPECT_EQ(plat.engine_stats().pe_writes, before + 1);
}

TEST_F(PlatformFixture, IdenticalReconfigureIsFree) {
  Rng rng(3);
  const evo::Genotype g = evo::Genotype::random({4, 4}, rng);
  plat.configure_array(1, g, 0);
  const std::uint64_t before = plat.engine_stats().pe_writes;
  const sim::Interval span = plat.configure_array(1, g, 12345);
  EXPECT_EQ(plat.engine_stats().pe_writes, before);
  EXPECT_EQ(span.start, 12345);
  EXPECT_EQ(span.duration(), 0);
}

TEST_F(PlatformFixture, IntrinsicMatchesExtrinsicWithoutFaults) {
  Rng rng(4);
  const img::Image src = img::make_scene(32, 32, 9);
  for (int rep = 0; rep < 10; ++rep) {
    const evo::Genotype g = evo::Genotype::random({4, 4}, rng);
    plat.configure_array(2, g, 0);
    const img::Image intrinsic = plat.filter_array(2, src);
    const img::Image extrinsic = evo::apply_genotype(g, src);
    EXPECT_EQ(intrinsic, extrinsic);
  }
}

TEST_F(PlatformFixture, EvaluatePublishesFitnessToRegisters) {
  const img::Image src = img::make_scene(32, 32, 10);
  const img::Image ref = img::make_scene(32, 32, 11);
  plat.configure_array(0, test::identity_genotype(), 0);
  const EvaluationResult ev = plat.evaluate_array(0, src, ref, 0);
  EXPECT_EQ(ev.fitness, img::aggregated_mae(src, ref));  // identity filter
  // The EA reads the same value over the bus.
  EXPECT_EQ(plat.acb(0).read_fitness_registers(), ev.fitness);
  EXPECT_TRUE(plat.acb(0).fitness_valid());
}

TEST_F(PlatformFixture, EvaluateChargesFrameTime) {
  const img::Image src = img::make_scene(32, 32, 1);
  plat.configure_array(0, test::identity_genotype(), 0);
  const sim::SimTime t0 = plat.now();
  const EvaluationResult ev = plat.evaluate_array(0, src, src, t0);
  EXPECT_EQ(ev.span.duration(), plat.frame_time(32, 32));
  // 32x32 + latency margin cycles at 100 MHz ~ 10.36 us.
  EXPECT_NEAR(sim::to_microseconds(ev.span.duration()), 10.36, 0.2);
}

TEST_F(PlatformFixture, PeFaultMakesArrayDefective) {
  plat.configure_array(0, test::identity_genotype(), 0);
  const img::Image src = img::make_scene(32, 32, 5);
  const img::Image healthy = plat.filter_array(0, src);
  plat.inject_pe_fault(0, 0, 1);  // row 0 carries the output path
  EXPECT_TRUE(plat.has_pe_fault(0, 0, 1));
  const img::Image faulty = plat.filter_array(0, src);
  EXPECT_NE(healthy, faulty);
  // The decoded view marks the cell defective.
  EXPECT_TRUE(plat.decode_array(0).any_defective());
}

TEST_F(PlatformFixture, PeFaultSurvivesReconfigurationAndScrub) {
  plat.configure_array(0, test::identity_genotype(), 0);
  plat.inject_pe_fault(0, 0, 2);
  // Scrub: the dummy content *is* the intended plane now; nothing heals.
  std::size_t corrected = 0, uncorrectable = 0;
  plat.scrub_array(0, plat.now(), &corrected, &uncorrectable);
  EXPECT_TRUE(plat.decode_array(0).any_defective());
  // Reconfiguring the cell with a fresh genotype keeps the dummy (locked).
  Rng rng(6);
  plat.configure_array(0, evo::Genotype::random({4, 4}, rng), plat.now());
  EXPECT_TRUE(plat.decode_array(0).any_defective());
  // Until the damage is repaired explicitly.
  plat.clear_pe_fault(0, 0, 2);
  EXPECT_FALSE(plat.decode_array(0).any_defective());
}

TEST_F(PlatformFixture, SeuIsScrubbable) {
  plat.configure_array(1, test::identity_genotype(), 0);
  plat.inject_seu(1);
  EXPECT_GT(plat.config_memory().upset_word_count(), 0u);
  std::size_t corrected = 0, uncorrectable = 0;
  plat.scrub_array(1, plat.now(), &corrected, &uncorrectable);
  EXPECT_GE(corrected, 1u);
  EXPECT_EQ(uncorrectable, 0u);
  EXPECT_EQ(plat.config_memory().upset_word_count(), 0u);
  EXPECT_FALSE(plat.decode_array(1).any_defective());
}

TEST_F(PlatformFixture, LpdResistsScrub) {
  plat.configure_array(2, test::identity_genotype(), 0);
  plat.inject_lpd(2);
  std::size_t corrected = 0, uncorrectable = 0;
  plat.scrub_array(2, plat.now(), &corrected, &uncorrectable);
  EXPECT_EQ(uncorrectable, 1u);
  EXPECT_TRUE(plat.decode_array(2).any_defective());
}

TEST_F(PlatformFixture, ParallelModeFiltersSameInput) {
  Rng rng(7);
  const evo::Genotype g = evo::Genotype::random({4, 4}, rng);
  for (std::size_t a = 0; a < 3; ++a) plat.configure_array(a, g, 0);
  const img::Image src = img::make_scene(24, 24, 8);
  const auto outs = plat.process_parallel(src);
  ASSERT_EQ(outs.size(), 3u);
  EXPECT_EQ(outs[0], outs[1]);
  EXPECT_EQ(outs[1], outs[2]);
}

TEST_F(PlatformFixture, CascadeAppliesStagesInOrder) {
  Rng rng(8);
  const evo::Genotype g0 = evo::Genotype::random({4, 4}, rng);
  const evo::Genotype g1 = evo::Genotype::random({4, 4}, rng);
  const evo::Genotype g2 = evo::Genotype::random({4, 4}, rng);
  plat.configure_array(0, g0, 0);
  plat.configure_array(1, g1, 0);
  plat.configure_array(2, g2, 0);
  const img::Image src = img::make_scene(24, 24, 9);
  std::vector<img::Image> stages;
  const img::Image out = plat.process_cascade(src, &stages);
  ASSERT_EQ(stages.size(), 3u);
  const img::Image manual = evo::apply_genotype(
      g2, evo::apply_genotype(g1, evo::apply_genotype(g0, src)));
  EXPECT_EQ(out, manual);
  EXPECT_EQ(stages[2], manual);
}

TEST_F(PlatformFixture, BypassSkipsStageButKeepsStream) {
  Rng rng(9);
  const evo::Genotype g0 = evo::Genotype::random({4, 4}, rng);
  const evo::Genotype g2 = evo::Genotype::random({4, 4}, rng);
  plat.configure_array(0, g0, 0);
  plat.configure_array(1, test::identity_genotype(), 0);
  plat.configure_array(2, g2, 0);
  plat.acb(1).set_bypass(true);
  const img::Image src = img::make_scene(24, 24, 10);
  const img::Image out = plat.process_cascade(src);
  const img::Image manual =
      evo::apply_genotype(g2, evo::apply_genotype(g0, src));
  EXPECT_EQ(out, manual);
}

TEST_F(PlatformFixture, CascadeLatencyCountsActiveStages) {
  plat.configure_array(0, test::identity_genotype(), 0);
  plat.configure_array(1, test::identity_genotype(), 0);
  plat.configure_array(2, test::identity_genotype(), 0);
  const std::uint64_t full = plat.cascade_latency_cycles();
  plat.acb(1).set_bypass(true);
  const std::uint64_t bypassed = plat.cascade_latency_cycles();
  EXPECT_LT(bypassed, full);
  // Each active stage: 2*32+2 FIFO + 5 pipeline = 71 cycles.
  EXPECT_EQ(full, 3u * (2 * 32 + 2 + 5));
}

TEST_F(PlatformFixture, ResetTimeClearsTimelineAndStats) {
  Rng rng(10);
  plat.configure_array(0, evo::Genotype::random({4, 4}, rng), 0);
  EXPECT_GT(plat.now(), 0);
  plat.reset_time();
  EXPECT_EQ(plat.now(), 0);
  EXPECT_EQ(plat.engine_stats().pe_writes, 0u);
}

TEST_F(PlatformFixture, RegisterDrivenMuxAffectsDecode) {
  // Drive the tap registers directly over the bus, as the EA would.
  plat.configure_array(0, test::identity_genotype(), 0);
  plat.reg_write(RegisterFile::acb_reg(0, kRegInputTap0), 7);
  const pe::SystolicArray arr = plat.decode_array(0);
  EXPECT_EQ(arr.input_select(0), 7);
}

}  // namespace
}  // namespace ehw::platform
