// Exact accounting tests for the simulated-time model: the Fig. 11
// pipeline admits closed forms that the drivers must reproduce to the
// nanosecond.

#include <gtest/gtest.h>

#include "ehw/img/metrics.hpp"
#include "ehw/platform/evolution_driver.hpp"
#include "ehw/reconfig/engine.hpp"
#include "test_util.hpp"

namespace ehw::platform {
namespace {

TEST(TimingModel, SingleArrayRunIsExactlySerial) {
  // With ONE array, every DPR write and every evaluation serializes on the
  // array resource, so:
  //   duration == pe_writes * kPeReconfigTime
  //             + (lambda * generations + 1) * frame_time.
  EvolvablePlatform plat(test::small_platform_config(1));
  const auto w = test::make_denoise_workload(32, 0.2, 301);
  evo::EsConfig cfg;
  cfg.lambda = 9;
  cfg.mutation_rate = 3;
  cfg.generations = 12;
  cfg.seed = 301;
  const IntrinsicResult r =
      evolve_on_platform(plat, {0}, w.noisy, w.clean, cfg);
  const sim::SimTime frame = plat.frame_time(32, 32);
  const sim::SimTime expected =
      static_cast<sim::SimTime>(r.pe_writes) * reconfig::kPeReconfigTime +
      static_cast<sim::SimTime>(9 * 12 + 1) * frame;
  EXPECT_EQ(r.duration, expected);
}

TEST(TimingModel, FrameTimeFormula) {
  EvolvablePlatform plat(test::small_platform_config(1));
  // width*height + rows + cols + 4 drain cycles at 100 MHz.
  const std::uint64_t cycles = 128 * 128 + 4 + 4 + 4;
  EXPECT_EQ(plat.frame_time(128, 128), sim::cycles_at_mhz(cycles, 100.0));
  // 128x128 ~ 163.96 us: the paper's one-pixel-per-cycle stream.
  EXPECT_NEAR(sim::to_microseconds(plat.frame_time(128, 128)), 163.96, 0.01);
}

TEST(TimingModel, ParallelSavingIsBoundedByOverlappedEvaluations) {
  // The 3-array schedule can save at most (lambda - 1) evaluations per
  // generation plus pipeline drain vs the serial single-array schedule,
  // and must never save more.
  const auto w = test::make_denoise_workload(64, 0.2, 302);
  evo::EsConfig cfg;
  cfg.lambda = 9;
  cfg.mutation_rate = 1;
  cfg.generations = 20;
  cfg.seed = 302;
  EvolvablePlatform single(test::small_platform_config(1, 64));
  const IntrinsicResult r1 =
      evolve_on_platform(single, {0}, w.noisy, w.clean, cfg);
  EvolvablePlatform triple(test::small_platform_config(3, 64));
  const IntrinsicResult r3 =
      evolve_on_platform(triple, {0, 1, 2}, w.noisy, w.clean, cfg);
  // Identical candidate streams: same number of evaluations; the triple
  // run wrote the two extra initial array fills.
  const sim::SimTime frame = single.frame_time(64, 64);
  const sim::SimTime max_saving =
      static_cast<sim::SimTime>(cfg.generations) * 8 * frame;
  EXPECT_LT(r3.duration, r1.duration);  // it does save at this frame size
  const sim::SimTime extra_writes =
      static_cast<sim::SimTime>(r3.pe_writes - r1.pe_writes) *
      reconfig::kPeReconfigTime;
  EXPECT_LE(r1.duration - r3.duration + extra_writes, max_saving + frame);
}

TEST(TimingModel, ReconfigurationDiffCostIsPerChangedCell) {
  EvolvablePlatform plat(test::small_platform_config(1));
  Rng rng(303);
  const evo::Genotype a = evo::Genotype::random({4, 4}, rng);
  plat.configure_array(0, a, 0);
  const sim::SimTime t0 = plat.now();
  // Change exactly three function genes.
  evo::Genotype b = a;
  for (std::size_t cell : {std::size_t{1}, std::size_t{6}, std::size_t{11}}) {
    b.set_function_gene(cell, (b.function_gene(cell) + 1) % 16);
  }
  const sim::Interval span = plat.configure_array(0, b, t0);
  EXPECT_EQ(span.duration(), 3 * reconfig::kPeReconfigTime);
}

TEST(TimingModel, ScrubChargesPerSlot) {
  EvolvablePlatform plat(test::small_platform_config(1));
  plat.configure_array(0, test::identity_genotype(), 0);
  const sim::SimTime t0 = plat.now();
  const sim::Interval span = plat.scrub_array(0, t0);
  // 16 slots, each a full engine pass.
  EXPECT_EQ(span.end - span.start, 16 * reconfig::kPeReconfigTime);
}

TEST(TimingModel, EvolutionTimeScalesWithImageArea) {
  // Fig. 12 vs Fig. 13: 4x the pixels -> the evaluation share of the
  // generation grows 4x while the DPR share stays fixed.
  evo::EsConfig cfg;
  cfg.lambda = 9;
  cfg.mutation_rate = 3;
  cfg.generations = 8;
  cfg.seed = 304;
  sim::SimTime eval_share[2];
  std::size_t i = 0;
  for (const std::size_t size : {64, 128}) {
    EvolvablePlatform plat(test::small_platform_config(1, size));
    const auto w = test::make_denoise_workload(size, 0.2, 304);
    const IntrinsicResult r =
        evolve_on_platform(plat, {0}, w.noisy, w.clean, cfg);
    // Serial identity: whatever is not DPR is evaluation, exactly.
    eval_share[i] =
        r.duration -
        static_cast<sim::SimTime>(r.pe_writes) * reconfig::kPeReconfigTime;
    EXPECT_EQ(eval_share[i],
              static_cast<sim::SimTime>(9 * 8 + 1) * plat.frame_time(size,
                                                                     size));
    ++i;
  }
  // The evaluation share quadruples with 4x pixels (up to the few fixed
  // pipeline-latency cycles per frame).
  const double eval_ratio = static_cast<double>(eval_share[1]) /
                            static_cast<double>(eval_share[0]);
  EXPECT_NEAR(eval_ratio, 4.0, 0.05);
}

}  // namespace
}  // namespace ehw::platform
