// Tests for the deterministic fault-injection layer: the plan grammar,
// the after/every/count/prob trigger rules, determinism of the seeded
// per-hit coin across reinstalls, counter observability and the
// zero-cost (one relaxed load) disabled path.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ehw/common/fault.hpp"

namespace ehw::fault {
namespace {

/// Every test leaves the process with no plan installed — the suite
/// shares one process with every other fault-armed test.
class FaultTest : public testing::Test {
 protected:
  void TearDown() override { uninstall(); }
};

TEST_F(FaultTest, SiteNamesRoundTrip) {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    const auto site = static_cast<Site>(i);
    Site parsed{};
    ASSERT_TRUE(parse_site(site_name(site), parsed)) << site_name(site);
    EXPECT_EQ(parsed, site);
  }
  // The fsync shorthand maps to the journal site.
  Site alias{};
  ASSERT_TRUE(parse_site("fsync", alias));
  EXPECT_EQ(alias, Site::kJournalFsync);
  EXPECT_FALSE(parse_site("no_such_site", alias));
}

TEST_F(FaultTest, ParsePlanGrammar) {
  FaultPlan plan;
  // Bare site = fire on every hit; rule clauses tune the trigger; the
  // global clauses set seed and stall duration.
  ASSERT_EQ(parse_plan("sock_read_stall;fsync=after:1,count:1;"
                       "lane_seu=after:10,every:2,prob:0.5;"
                       "stall-ms=200;seed=42",
                       plan),
            "");
  EXPECT_TRUE(plan.rule(Site::kSockReadStall).armed);
  EXPECT_EQ(plan.rule(Site::kSockReadStall).after, 0u);
  EXPECT_EQ(plan.rule(Site::kSockReadStall).every, 1u);
  EXPECT_TRUE(plan.rule(Site::kJournalFsync).armed);
  EXPECT_EQ(plan.rule(Site::kJournalFsync).after, 1u);
  EXPECT_EQ(plan.rule(Site::kJournalFsync).count, 1u);
  EXPECT_TRUE(plan.rule(Site::kLaneSeu).armed);
  EXPECT_EQ(plan.rule(Site::kLaneSeu).after, 10u);
  EXPECT_EQ(plan.rule(Site::kLaneSeu).every, 2u);
  EXPECT_DOUBLE_EQ(plan.rule(Site::kLaneSeu).prob, 0.5);
  EXPECT_FALSE(plan.rule(Site::kSockWriteError).armed);
  EXPECT_EQ(plan.stall_ms, 200u);
  EXPECT_EQ(plan.seed, 42u);

  // Whitespace around clauses and empty clauses are tolerated.
  ASSERT_EQ(parse_plan(" task_throw ;; checkpoint_io=count:3 ", plan), "");
  EXPECT_TRUE(plan.rule(Site::kTaskThrow).armed);
  EXPECT_EQ(plan.rule(Site::kCheckpointIo).count, 3u);

  // An empty spec is a valid (never-firing) plan.
  ASSERT_EQ(parse_plan("", plan), "");
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    EXPECT_FALSE(plan.rules[i].armed);
  }
}

TEST_F(FaultTest, ParsePlanRejectsBadSpecs) {
  FaultPlan plan;
  EXPECT_NE(parse_plan("transmogrifier", plan), "");
  EXPECT_NE(parse_plan("task_throw=frobnicate:1", plan), "");
  EXPECT_NE(parse_plan("task_throw=after", plan), "");       // no colon
  EXPECT_NE(parse_plan("task_throw=after:x", plan), "");     // not a number
  EXPECT_NE(parse_plan("task_throw=every:0", plan), "");     // every >= 1
  EXPECT_NE(parse_plan("task_throw=prob:1.5", plan), "");    // prob in 0..1
  EXPECT_NE(parse_plan("seed=abc", plan), "");
  EXPECT_NE(parse_plan("stall-ms=9999999", plan), "");       // capped
}

TEST_F(FaultTest, DisabledSitesNeverFireAndCostNothingToQuery) {
  uninstall();
  EXPECT_FALSE(active());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(should_fire(Site::kTaskThrow));
  }
  // Hits are not even counted while no plan is installed.
  install(FaultPlan{});
  EXPECT_EQ(hits(Site::kTaskThrow), 0u);
  uninstall();
}

TEST_F(FaultTest, AfterEveryCountRuleSequencing) {
  FaultPlan plan;
  ASSERT_EQ(parse_plan("task_throw=after:3,every:2,count:2", plan), "");
  install(plan);
  // Hits 1-3 skipped (after), then every 2nd eligible hit fires, capped
  // at 2 fires: hits 4 and 6 fire, nothing else ever.
  std::vector<int> fired_hits;
  for (int hit = 1; hit <= 20; ++hit) {
    if (should_fire(Site::kTaskThrow)) fired_hits.push_back(hit);
  }
  EXPECT_EQ(fired_hits, (std::vector<int>{4, 6}));
  EXPECT_EQ(hits(Site::kTaskThrow), 20u);
  EXPECT_EQ(fired(Site::kTaskThrow), 2u);
}

TEST_F(FaultTest, ProbabilisticFiringIsDeterministicPerPlanSeed) {
  const auto pattern = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.rule(Site::kLaneSeu).armed = true;
    plan.rule(Site::kLaneSeu).prob = 0.3;
    plan.seed = seed;
    install(plan);
    std::vector<bool> fires;
    fires.reserve(200);
    for (int i = 0; i < 200; ++i) {
      fires.push_back(should_fire(Site::kLaneSeu));
    }
    uninstall();
    return fires;
  };
  const std::vector<bool> first = pattern(7);
  // Same seed: the identical hit-indexed coin sequence, every reinstall.
  EXPECT_EQ(pattern(7), first);
  // Different seed: a different sequence (with p=0.3 over 200 draws the
  // odds of a collision are negligible).
  EXPECT_NE(pattern(8), first);
  // The coin actually discriminates: some fire, most don't.
  const auto fires =
      static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 200u);
}

TEST_F(FaultTest, InstallResetsCountersAndScopedPlanUninstalls) {
  {
    ScopedPlan scoped("task_delay");
    EXPECT_TRUE(active());
    EXPECT_TRUE(should_fire(Site::kTaskDelay));
    EXPECT_EQ(hits(Site::kTaskDelay), 1u);
  }
  EXPECT_FALSE(active());
  ScopedPlan again("task_delay=after:1");
  // Reinstalling reset the counters: hit 1 is again the skipped one.
  EXPECT_FALSE(should_fire(Site::kTaskDelay));
  EXPECT_EQ(hits(Site::kTaskDelay), 1u);
  EXPECT_TRUE(should_fire(Site::kTaskDelay));
}

TEST_F(FaultTest, ScopedPlanRejectsBadSpecByAsserting) {
  EXPECT_THROW(ScopedPlan bad("not_a_site"), std::exception);
}

}  // namespace
}  // namespace ehw::fault
