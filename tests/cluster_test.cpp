// Tests for the federation layer: a svc::Forwarder fronting in-process
// backend daemons through the ordinary client protocol. Covers
// placement-routed submits (results bit-identical to standalone runs no
// matter which backend hosts them), batch fan-out, name-keyed ops,
// watch streaming through the front, cluster stats/health views, drain
// fan-out, and multi-pool sharded servers behind the front.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "ehw/sched/missions.hpp"
#include "ehw/svc/client.hpp"
#include "ehw/svc/forwarder.hpp"
#include "ehw/svc/server.hpp"

namespace ehw::svc {
namespace {

sched::MissionSpec quick_spec(const std::string& name,
                              std::uint64_t scene_seed,
                              Generation generations = 30) {
  sched::MissionSpec spec;
  spec.kind = sched::MissionKind::kDenoise;
  spec.name = name;
  spec.generations = generations;
  spec.size = 16;
  spec.scene_seed = scene_seed;
  return spec;
}

ServerConfig backend_config(std::size_t arrays = 2, std::size_t pools = 1) {
  ServerConfig config;
  config.pools = pools;
  config.pool.num_arrays = arrays;
  config.pool.line_width = 16;
  return config;
}

/// Two in-process backends + a forwarder over them, ready to serve.
struct Cluster {
  explicit Cluster(std::size_t backends = 2, std::size_t pools = 1) {
    for (std::size_t i = 0; i < backends; ++i) {
      servers.push_back(
          std::make_unique<Server>(backend_config(2, pools)));
    }
    ForwarderConfig config;
    for (const auto& server : servers) {
      BackendConfig backend;
      backend.port = server->port();
      config.backends.push_back(backend);
    }
    config.poll_ms = 50;
    forwarder = std::make_unique<Forwarder>(std::move(config));
  }
  ~Cluster() {
    forwarder->stop();
    for (const auto& server : servers) server->stop();
  }
  [[nodiscard]] Client client() const { return Client(forwarder->port()); }

  std::vector<std::unique_ptr<Server>> servers;
  std::unique_ptr<Forwarder> forwarder;
};

void expect_matches_standalone(const Json& result,
                               const sched::MissionSpec& spec) {
  const sched::JobOutcome alone = sched::run_spec_standalone(spec);
  EXPECT_EQ(result.get_string("status", "?"), "done") << spec.name;
  EXPECT_EQ(static_cast<Fitness>(result.get_number("best_fitness", 0)),
            alone.intrinsic.es.best_fitness)
      << spec.name;
  EXPECT_EQ(result.get_string("genotype_hash", "?"),
            hash_hex(alone.intrinsic.es.best.hash()))
      << spec.name;
  EXPECT_EQ(result.get_string("sim_ns", "?"),
            std::to_string(alone.stats.mission_time))
      << spec.name;
}

// --- routing + bit identity -------------------------------------------------

TEST(Cluster, RoutedResultsAreBitIdenticalToStandalone) {
  Cluster cluster;
  Client client = cluster.client();
  const std::vector<sched::MissionSpec> specs{
      quick_spec("c0", 3), quick_spec("c1", 4), quick_spec("c2", 5),
      quick_spec("c3", 6)};
  std::vector<std::uint64_t> jobs;
  for (const sched::MissionSpec& spec : specs) {
    const Client::Submitted submitted = client.submit(spec);
    ASSERT_TRUE(submitted.ok) << submitted.error;
    jobs.push_back(submitted.job);
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_matches_standalone(client.result(jobs[i]), specs[i]);
  }
  // The cluster actually used more than one backend for 4 distinct
  // fingerprints over 2x2 arrays.
  const ForwarderStats stats = cluster.forwarder->forwarder_stats();
  EXPECT_EQ(stats.submitted, specs.size());
  EXPECT_EQ(stats.failovers, 0u);
}

TEST(Cluster, FrontIdsAreClusterScopedAndNameOpsResolve) {
  Cluster cluster;
  Client client = cluster.client();
  const sched::MissionSpec a = quick_spec("named-a", 3);
  const sched::MissionSpec b = quick_spec("named-b", 4);
  const Client::Submitted sa = client.submit(a);
  const Client::Submitted sb = client.submit(b);
  ASSERT_TRUE(sa.ok && sb.ok);
  EXPECT_NE(sa.job, sb.job);  // front ids, not backend ids

  // Name-keyed status/result resolve through the route table.
  const Json status = client.status_by_name("named-b");
  EXPECT_TRUE(status.get_bool("ok", false));
  EXPECT_EQ(static_cast<std::uint64_t>(status.get_number("job", 0)), sb.job);
  expect_matches_standalone(client.result_by_name("named-a"), a);

  const Json missing = client.status_by_name("never-submitted");
  EXPECT_FALSE(missing.get_bool("ok", false));
  EXPECT_EQ(missing.get_string("code", ""), "unknown_job");
}

TEST(Cluster, BatchSubmitRoutesPerSpecAndPreservesOrder) {
  Cluster cluster;
  Client client = cluster.client();
  const std::vector<sched::MissionSpec> specs{
      quick_spec("b0", 7), quick_spec("b1", 8), quick_spec("b2", 9)};
  const Client::BatchSubmitted batch = client.submit_batch(specs);
  ASSERT_TRUE(batch.ok) << batch.error;
  ASSERT_EQ(batch.jobs.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_matches_standalone(client.result(batch.jobs[i]), specs[i]);
  }
}

TEST(Cluster, WatchStreamsThroughTheFront) {
  Cluster cluster;
  Client client = cluster.client();
  const sched::MissionSpec spec = quick_spec("watched", 3, 40);
  const Client::Submitted submitted = client.submit(spec);
  ASSERT_TRUE(submitted.ok);

  std::atomic<std::uint64_t> last_waves{0};
  std::atomic<int> events{0};
  const std::string status = client.watch(
      submitted.job,
      [&](std::uint64_t waves) {
        last_waves.store(waves);
        ++events;
      },
      /*every=*/5);
  EXPECT_EQ(status, "done");
  EXPECT_GT(events.load(), 0);
  EXPECT_GT(last_waves.load(), 0u);
}

TEST(Cluster, RepeatFingerprintsGainAffinity) {
  Cluster cluster;
  Client client = cluster.client();
  // Same fingerprint five times (distinct names): after the first
  // placement the rest must be affinity hits on the same backend.
  for (int i = 0; i < 5; ++i) {
    const Client::Submitted submitted =
        client.submit(quick_spec("rep-" + std::to_string(i), 21));
    ASSERT_TRUE(submitted.ok);
    static_cast<void>(client.result(submitted.job));
  }
  Json request = Json::object();
  request.set("op", "stats");
  const Json stats = client.request(request);
  const Json* placement = stats.get("placement");
  ASSERT_NE(placement, nullptr);
  EXPECT_GE(placement->get_number("affinity_hits", 0), 4.0);
}

// --- cluster views ----------------------------------------------------------

TEST(Cluster, StatsExposeClusterAndForwarderSections) {
  Cluster cluster;
  Client client = cluster.client();
  const Client::Submitted submitted = client.submit(quick_spec("sv", 3));
  ASSERT_TRUE(submitted.ok);
  static_cast<void>(client.result(submitted.job));

  const Json stats = client.stats();
  ASSERT_TRUE(stats.get_bool("ok", false));
  EXPECT_EQ(stats.get_string("role", ""), "forwarder");
  const Json* cluster_section = stats.get("cluster");
  ASSERT_NE(cluster_section, nullptr);
  const Json* backends = cluster_section->get("backends");
  ASSERT_NE(backends, nullptr);
  ASSERT_TRUE(backends->is_array());
  EXPECT_EQ(backends->as_array().size(), 2u);
  for (const Json& backend : backends->as_array()) {
    EXPECT_TRUE(backend.get_bool("reachable", false));
  }
  const Json* forwarder = stats.get("forwarder");
  ASSERT_NE(forwarder, nullptr);
  EXPECT_EQ(forwarder->get_number("submitted", 0), 1.0);
  EXPECT_EQ(forwarder->get_number("backends_up", 0), 2.0);
  // The aggregate "pool" section sums backend arrays: generic tooling
  // (mpa ps) reads the same keys it reads from a daemon.
  const Json* pool = stats.get("pool");
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->get_number("arrays", 0), 4.0);
}

TEST(Cluster, HealthAggregatesBackends) {
  Cluster cluster;
  Client client = cluster.client();
  Json request = Json::object();
  request.set("op", "health");
  const Json health = client.request(request);
  ASSERT_TRUE(health.get_bool("ok", false));
  EXPECT_TRUE(health.get_bool("cluster", false));
  const Json* backends = health.get("backends");
  ASSERT_NE(backends, nullptr);
  ASSERT_TRUE(backends->is_array());
  EXPECT_EQ(backends->as_array().size(), 2u);
  EXPECT_EQ(health.get_number("healthy", 0), 4.0);
  EXPECT_EQ(health.get_number("unreachable", 0), 0.0);
}

TEST(Cluster, ListShowsRoutesWithBackends) {
  Cluster cluster;
  Client client = cluster.client();
  const Client::Submitted submitted = client.submit(quick_spec("ls", 3));
  ASSERT_TRUE(submitted.ok);
  static_cast<void>(client.result(submitted.job));

  const Json list = client.list();
  ASSERT_TRUE(list.get_bool("ok", false));
  const Json* jobs = list.get("jobs");
  ASSERT_NE(jobs, nullptr);
  ASSERT_TRUE(jobs->is_array());
  ASSERT_EQ(jobs->as_array().size(), 1u);
  const Json& entry = jobs->as_array()[0];
  EXPECT_EQ(entry.get_string("name", "?"), "ls");
  EXPECT_EQ(entry.get_string("status", "?"), "done");
  EXPECT_NE(entry.get("backend"), nullptr);
}

// --- drain ------------------------------------------------------------------

TEST(Cluster, DrainFansOutAndRefusesNewMissions) {
  Cluster cluster;
  Client client = cluster.client();
  const Json drained = client.drain(/*wait=*/true);
  EXPECT_TRUE(drained.get_bool("ok", false));

  const Client::Submitted refused = client.submit(quick_spec("late", 3));
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.code, "draining");
  // The fan-out reached the backends too: a direct submit is refused.
  Client direct(cluster.servers[0]->port());
  const Client::Submitted backend_refused =
      direct.submit(quick_spec("late2", 3));
  EXPECT_FALSE(backend_refused.ok);
  EXPECT_EQ(backend_refused.code, "draining");
}

// --- sharded backends behind the front --------------------------------------

TEST(Cluster, ShardedBackendsServeBitIdenticalResults) {
  // Each backend daemon itself shards into 2 pools: the two placement
  // layers (forwarder -> backend, group -> pool) compose without
  // touching results.
  Cluster cluster(/*backends=*/2, /*pools=*/2);
  Client client = cluster.client();
  const std::vector<sched::MissionSpec> specs{
      quick_spec("sh0", 31), quick_spec("sh1", 32), quick_spec("sh2", 33)};
  std::vector<std::uint64_t> jobs;
  for (const sched::MissionSpec& spec : specs) {
    const Client::Submitted submitted = client.submit(spec);
    ASSERT_TRUE(submitted.ok) << submitted.error;
    jobs.push_back(submitted.job);
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_matches_standalone(client.result(jobs[i]), specs[i]);
  }
  // The backend's stats expose its per-pool rows through the forwarder's
  // poll (additive daemon sections, satellite of the sharding layer).
  Client direct(cluster.servers[0]->port());
  const Json stats = direct.stats();
  const Json* pools = stats.get("pools");
  ASSERT_NE(pools, nullptr);
  ASSERT_TRUE(pools->is_array());
  EXPECT_EQ(pools->as_array().size(), 2u);
}

}  // namespace
}  // namespace ehw::svc
