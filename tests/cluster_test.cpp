// Tests for the federation layer: a svc::Forwarder fronting in-process
// backend daemons through the ordinary client protocol. Covers
// placement-routed submits (results bit-identical to standalone runs no
// matter which backend hosts them), batch fan-out, name-keyed ops,
// watch streaming through the front, cluster stats/health views, drain
// fan-out, and multi-pool sharded servers behind the front.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ehw/common/persist.hpp"
#include "ehw/sched/missions.hpp"
#include "ehw/svc/client.hpp"
#include "ehw/svc/forwarder.hpp"
#include "ehw/svc/server.hpp"

namespace ehw::svc {
namespace {

sched::MissionSpec quick_spec(const std::string& name,
                              std::uint64_t scene_seed,
                              Generation generations = 30) {
  sched::MissionSpec spec;
  spec.kind = sched::MissionKind::kDenoise;
  spec.name = name;
  spec.generations = generations;
  spec.size = 16;
  spec.scene_seed = scene_seed;
  return spec;
}

ServerConfig backend_config(std::size_t arrays = 2, std::size_t pools = 1) {
  ServerConfig config;
  config.pools = pools;
  config.pool.num_arrays = arrays;
  config.pool.line_width = 16;
  return config;
}

/// Two in-process backends + a forwarder over them, ready to serve.
struct Cluster {
  explicit Cluster(std::size_t backends = 2, std::size_t pools = 1) {
    for (std::size_t i = 0; i < backends; ++i) {
      servers.push_back(
          std::make_unique<Server>(backend_config(2, pools)));
    }
    ForwarderConfig config;
    for (const auto& server : servers) {
      BackendConfig backend;
      backend.port = server->port();
      config.backends.push_back(backend);
    }
    config.poll_ms = 50;
    forwarder = std::make_unique<Forwarder>(std::move(config));
  }
  ~Cluster() {
    forwarder->stop();
    for (const auto& server : servers) server->stop();
  }
  [[nodiscard]] Client client() const { return Client(forwarder->port()); }

  std::vector<std::unique_ptr<Server>> servers;
  std::unique_ptr<Forwarder> forwarder;
};

/// Polls `pred` until it holds or ~`timeout_ms` elapsed.
bool wait_until(const std::function<bool()>& pred, int timeout_ms = 15000) {
  for (int waited = 0; waited < timeout_ms; waited += 5) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// Blocks until the routed job reports at least `waves` progress.
void wait_for_waves(Client& client, std::uint64_t job, std::uint64_t waves) {
  ASSERT_TRUE(wait_until([&] {
    return client.status(job).get_number("waves", 0) >=
           static_cast<double>(waves);
  })) << "job never reached " << waves << " waves";
}

/// The {"op":"backend","action":"list"} membership table.
Json backend_list(Client& client) {
  Json request = Json::object();
  request.set("op", "backend");
  request.set("action", "list");
  return client.request(request);
}

void expect_matches_standalone(const Json& result,
                               const sched::MissionSpec& spec) {
  const sched::JobOutcome alone = sched::run_spec_standalone(spec);
  EXPECT_EQ(result.get_string("status", "?"), "done") << spec.name;
  EXPECT_EQ(static_cast<Fitness>(result.get_number("best_fitness", 0)),
            alone.intrinsic.es.best_fitness)
      << spec.name;
  EXPECT_EQ(result.get_string("genotype_hash", "?"),
            hash_hex(alone.intrinsic.es.best.hash()))
      << spec.name;
  EXPECT_EQ(result.get_string("sim_ns", "?"),
            std::to_string(alone.stats.mission_time))
      << spec.name;
}

// --- routing + bit identity -------------------------------------------------

TEST(Cluster, RoutedResultsAreBitIdenticalToStandalone) {
  Cluster cluster;
  Client client = cluster.client();
  const std::vector<sched::MissionSpec> specs{
      quick_spec("c0", 3), quick_spec("c1", 4), quick_spec("c2", 5),
      quick_spec("c3", 6)};
  std::vector<std::uint64_t> jobs;
  for (const sched::MissionSpec& spec : specs) {
    const Client::Submitted submitted = client.submit(spec);
    ASSERT_TRUE(submitted.ok) << submitted.error;
    jobs.push_back(submitted.job);
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_matches_standalone(client.result(jobs[i]), specs[i]);
  }
  // The cluster actually used more than one backend for 4 distinct
  // fingerprints over 2x2 arrays.
  const ForwarderStats stats = cluster.forwarder->forwarder_stats();
  EXPECT_EQ(stats.submitted, specs.size());
  EXPECT_EQ(stats.failovers, 0u);
}

TEST(Cluster, FrontIdsAreClusterScopedAndNameOpsResolve) {
  Cluster cluster;
  Client client = cluster.client();
  const sched::MissionSpec a = quick_spec("named-a", 3);
  const sched::MissionSpec b = quick_spec("named-b", 4);
  const Client::Submitted sa = client.submit(a);
  const Client::Submitted sb = client.submit(b);
  ASSERT_TRUE(sa.ok && sb.ok);
  EXPECT_NE(sa.job, sb.job);  // front ids, not backend ids

  // Name-keyed status/result resolve through the route table.
  const Json status = client.status_by_name("named-b");
  EXPECT_TRUE(status.get_bool("ok", false));
  EXPECT_EQ(static_cast<std::uint64_t>(status.get_number("job", 0)), sb.job);
  expect_matches_standalone(client.result_by_name("named-a"), a);

  const Json missing = client.status_by_name("never-submitted");
  EXPECT_FALSE(missing.get_bool("ok", false));
  EXPECT_EQ(missing.get_string("code", ""), "unknown_job");
}

TEST(Cluster, BatchSubmitRoutesPerSpecAndPreservesOrder) {
  Cluster cluster;
  Client client = cluster.client();
  const std::vector<sched::MissionSpec> specs{
      quick_spec("b0", 7), quick_spec("b1", 8), quick_spec("b2", 9)};
  const Client::BatchSubmitted batch = client.submit_batch(specs);
  ASSERT_TRUE(batch.ok) << batch.error;
  ASSERT_EQ(batch.jobs.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_matches_standalone(client.result(batch.jobs[i]), specs[i]);
  }
}

TEST(Cluster, WatchStreamsThroughTheFront) {
  Cluster cluster;
  Client client = cluster.client();
  const sched::MissionSpec spec = quick_spec("watched", 3, 40);
  const Client::Submitted submitted = client.submit(spec);
  ASSERT_TRUE(submitted.ok);

  std::atomic<std::uint64_t> last_waves{0};
  std::atomic<int> events{0};
  const std::string status = client.watch(
      submitted.job,
      [&](std::uint64_t waves) {
        last_waves.store(waves);
        ++events;
      },
      /*every=*/5);
  EXPECT_EQ(status, "done");
  EXPECT_GT(events.load(), 0);
  EXPECT_GT(last_waves.load(), 0u);
}

TEST(Cluster, RepeatFingerprintsGainAffinity) {
  Cluster cluster;
  Client client = cluster.client();
  // Same fingerprint five times (distinct names): after the first
  // placement the rest must be affinity hits on the same backend.
  for (int i = 0; i < 5; ++i) {
    const Client::Submitted submitted =
        client.submit(quick_spec("rep-" + std::to_string(i), 21));
    ASSERT_TRUE(submitted.ok);
    static_cast<void>(client.result(submitted.job));
  }
  Json request = Json::object();
  request.set("op", "stats");
  const Json stats = client.request(request);
  const Json* placement = stats.get("placement");
  ASSERT_NE(placement, nullptr);
  EXPECT_GE(placement->get_number("affinity_hits", 0), 4.0);
}

// --- cluster views ----------------------------------------------------------

TEST(Cluster, StatsExposeClusterAndForwarderSections) {
  Cluster cluster;
  Client client = cluster.client();
  const Client::Submitted submitted = client.submit(quick_spec("sv", 3));
  ASSERT_TRUE(submitted.ok);
  static_cast<void>(client.result(submitted.job));

  const Json stats = client.stats();
  ASSERT_TRUE(stats.get_bool("ok", false));
  EXPECT_EQ(stats.get_string("role", ""), "forwarder");
  const Json* cluster_section = stats.get("cluster");
  ASSERT_NE(cluster_section, nullptr);
  const Json* backends = cluster_section->get("backends");
  ASSERT_NE(backends, nullptr);
  ASSERT_TRUE(backends->is_array());
  EXPECT_EQ(backends->as_array().size(), 2u);
  for (const Json& backend : backends->as_array()) {
    EXPECT_TRUE(backend.get_bool("reachable", false));
  }
  const Json* forwarder = stats.get("forwarder");
  ASSERT_NE(forwarder, nullptr);
  EXPECT_EQ(forwarder->get_number("submitted", 0), 1.0);
  EXPECT_EQ(forwarder->get_number("backends_up", 0), 2.0);
  // The aggregate "pool" section sums backend arrays: generic tooling
  // (mpa ps) reads the same keys it reads from a daemon.
  const Json* pool = stats.get("pool");
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->get_number("arrays", 0), 4.0);
}

TEST(Cluster, HealthAggregatesBackends) {
  Cluster cluster;
  Client client = cluster.client();
  Json request = Json::object();
  request.set("op", "health");
  const Json health = client.request(request);
  ASSERT_TRUE(health.get_bool("ok", false));
  EXPECT_TRUE(health.get_bool("cluster", false));
  const Json* backends = health.get("backends");
  ASSERT_NE(backends, nullptr);
  ASSERT_TRUE(backends->is_array());
  EXPECT_EQ(backends->as_array().size(), 2u);
  EXPECT_EQ(health.get_number("healthy", 0), 4.0);
  EXPECT_EQ(health.get_number("unreachable", 0), 0.0);
}

TEST(Cluster, ListShowsRoutesWithBackends) {
  Cluster cluster;
  Client client = cluster.client();
  const Client::Submitted submitted = client.submit(quick_spec("ls", 3));
  ASSERT_TRUE(submitted.ok);
  static_cast<void>(client.result(submitted.job));

  const Json list = client.list();
  ASSERT_TRUE(list.get_bool("ok", false));
  const Json* jobs = list.get("jobs");
  ASSERT_NE(jobs, nullptr);
  ASSERT_TRUE(jobs->is_array());
  ASSERT_EQ(jobs->as_array().size(), 1u);
  const Json& entry = jobs->as_array()[0];
  EXPECT_EQ(entry.get_string("name", "?"), "ls");
  EXPECT_EQ(entry.get_string("status", "?"), "done");
  EXPECT_NE(entry.get("backend"), nullptr);
}

// --- drain ------------------------------------------------------------------

TEST(Cluster, DrainFansOutAndRefusesNewMissions) {
  Cluster cluster;
  Client client = cluster.client();
  const Json drained = client.drain(/*wait=*/true);
  EXPECT_TRUE(drained.get_bool("ok", false));

  const Client::Submitted refused = client.submit(quick_spec("late", 3));
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.code, "draining");
  // The fan-out reached the backends too: a direct submit is refused.
  Client direct(cluster.servers[0]->port());
  const Client::Submitted backend_refused =
      direct.submit(quick_spec("late2", 3));
  EXPECT_FALSE(backend_refused.ok);
  EXPECT_EQ(backend_refused.code, "draining");
}

// --- sharded backends behind the front --------------------------------------

TEST(Cluster, ShardedBackendsServeBitIdenticalResults) {
  // Each backend daemon itself shards into 2 pools: the two placement
  // layers (forwarder -> backend, group -> pool) compose without
  // touching results.
  Cluster cluster(/*backends=*/2, /*pools=*/2);
  Client client = cluster.client();
  const std::vector<sched::MissionSpec> specs{
      quick_spec("sh0", 31), quick_spec("sh1", 32), quick_spec("sh2", 33)};
  std::vector<std::uint64_t> jobs;
  for (const sched::MissionSpec& spec : specs) {
    const Client::Submitted submitted = client.submit(spec);
    ASSERT_TRUE(submitted.ok) << submitted.error;
    jobs.push_back(submitted.job);
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_matches_standalone(client.result(jobs[i]), specs[i]);
  }
  // The backend's stats expose its per-pool rows through the forwarder's
  // poll (additive daemon sections, satellite of the sharding layer).
  Client direct(cluster.servers[0]->port());
  const Json stats = direct.stats();
  const Json* pools = stats.get("pools");
  ASSERT_NE(pools, nullptr);
  ASSERT_TRUE(pools->is_array());
  EXPECT_EQ(pools->as_array().size(), 2u);
}

// --- membership armor: epochs, fencing, rejoin, shedding --------------------

TEST(Forwarder, RevivalBackoffIsSeededDeterministicAndBounded) {
  for (int round = 0; round <= 12; ++round) {
    for (std::size_t index = 0; index < 3; ++index) {
      const std::uint64_t delay =
          Forwarder::backoff_delay_ns(50, 99, index, round);
      // Pure: replaying the same (seed, backend, round) replays the
      // exact revival schedule — the chaos-smoke reproducibility
      // contract.
      EXPECT_EQ(delay, Forwarder::backoff_delay_ns(50, 99, index, round));
      // Bounded: exponential base capped at max(poll, 10 s), jitter
      // strictly under half the base.
      const std::uint64_t base_ms =
          std::min<std::uint64_t>(50ULL << std::min(round, 6), 10'000);
      EXPECT_GE(delay, base_ms * 1'000'000ULL);
      EXPECT_LT(delay, base_ms * 3 / 2 * 1'000'000ULL + 1'000'000ULL);
    }
  }
  // A different seed decorrelates the fleet's schedule (some round must
  // draw different jitter — identical across ALL rounds would mean the
  // seed is ignored).
  bool diverged = false;
  for (int round = 0; round <= 12 && !diverged; ++round) {
    diverged = Forwarder::backoff_delay_ns(50, 99, 0, round) !=
               Forwarder::backoff_delay_ns(50, 7, 0, round);
  }
  EXPECT_TRUE(diverged);
}

TEST(Cluster, SplitBrainFenceCancelsTheStalledIncarnationExactlyOnce) {
  Cluster cluster;  // poll_ms = 50: revival polls land within the test
  Client client = cluster.client();
  // Long enough that the stalled copy is still mid-run when the revival
  // fence reaches it (the fence poll lands within a few hundred ms).
  const sched::MissionSpec spec = quick_spec("split-brain", 3, 2000);
  const Client::Submitted submitted = client.submit(spec);
  ASSERT_TRUE(submitted.ok) << submitted.error;
  wait_for_waves(client, submitted.job, 2);
  const Json status = client.status(submitted.job);
  const auto victim =
      static_cast<std::size_t>(status.get_number("backend", 0));

  // Declare the hosting backend dead while its server keeps executing —
  // the SIGSTOP shape of a split brain. The route fails over; the
  // "corpse" keeps running its now-orphaned incarnation.
  cluster.forwarder->mark_backend_down(victim);

  // The poller revives the corpse (same epoch: stalled, not restarted)
  // and must fence the stalled incarnation BY NAME before trusting it.
  ASSERT_TRUE(wait_until([&] {
    return cluster.forwarder->forwarder_stats().rejoins >= 1;
  })) << "backend never rejoined";
  const ForwarderStats stats = cluster.forwarder->forwarder_stats();
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_GE(stats.fences, 1u);

  // The rejoin implies the fence already ran: the corpse's copy was
  // cancelled BY NAME, so it can never surface a second answer.
  Client corpse(cluster.servers[victim]->port());
  ASSERT_TRUE(wait_until([&] {
    const Json zombie = corpse.status_by_name("split-brain");
    const std::string state = zombie.get_string("status", "");
    return state == "cancelled" || state == "failed";
  })) << "stalled incarnation was never fenced";

  // Exactly one execution reaches a terminal result: the survivor's —
  // bit-identical to an uninterrupted standalone run.
  const Json result = client.result(submitted.job);
  expect_matches_standalone(result, spec);

  // Repeat reads serve the same cached terminal payload (first wins).
  EXPECT_EQ(client.result(submitted.job).dump(), result.dump());

  // The fence is visible in the membership table too.
  const Json members = backend_list(client);
  ASSERT_TRUE(members.get_bool("ok", false));
  const Json& row = members.get("backends")->as_array()[victim];
  EXPECT_GE(row.get_number("rejoins", 0), 1.0);
  EXPECT_GE(row.get_number("fences", 0), 1.0);
  EXPECT_NE(row.get_string("last_fence", "").find("fenced"),
            std::string::npos);
}

TEST(Cluster, ColdRejoinAfterRestartBumpsEpochAndIsVisible) {
  // Backend 0 is durable so its identity survives the restart with a
  // bumped epoch; backend 1 keeps the cluster alive in between.
  const std::string dir = testing::TempDir() + "ehw_cluster_epoch";
  static_cast<void>(remove_file(dir + "/instance.json"));
  static_cast<void>(remove_file(dir + "/journal.jsonl"));
  static_cast<void>(remove_file(dir + "/warm.json"));
  ServerConfig c0 = backend_config(2);
  c0.journal_dir = dir;
  auto b0 = std::make_unique<Server>(c0);
  Server b1(backend_config(2));

  ForwarderConfig fc;
  BackendConfig e0;
  e0.port = b0->port();
  BackendConfig e1;
  e1.port = b1.port();
  fc.backends = {e0, e1};
  fc.poll_ms = 50;
  Forwarder forwarder(std::move(fc));
  Client client(forwarder.port());

  // The boot poll learned the first incarnation's identity.
  {
    const Json members = backend_list(client);
    ASSERT_TRUE(members.get_bool("ok", false));
    const Json& row = members.get("backends")->as_array()[0];
    EXPECT_TRUE(row.get_bool("reachable", false));
    EXPECT_EQ(row.get_number("epoch", 0), 1.0);
  }

  const std::uint16_t port = b0->port();
  b0->stop();
  ASSERT_TRUE(wait_until([&] {
    const Json members = backend_list(client);
    return !members.get("backends")->as_array()[0].get_bool("reachable",
                                                            true);
  })) << "dead backend never declared down";

  // Same journal, same port, new process: epoch 1 -> 2. The auto-rejoin
  // must classify this as a COLD rejoin (warm state gone).
  c0.port = port;
  b0 = std::make_unique<Server>(c0);
  ASSERT_TRUE(wait_until([&] {
    const Json members = backend_list(client);
    const Json& row = members.get("backends")->as_array()[0];
    return row.get_bool("reachable", false) &&
           row.get_number("epoch", 0) == 2.0;
  })) << "restarted backend never rejoined with the bumped epoch";
  {
    const Json members = backend_list(client);
    const Json& row = members.get("backends")->as_array()[0];
    EXPECT_NE(row.get_string("last_fence", "").find("cold rejoin: epoch 1 -> 2"),
              std::string::npos);
    EXPECT_GE(row.get_number("rejoins", 0), 1.0);
  }
  EXPECT_GE(forwarder.forwarder_stats().rejoins, 1u);

  // The revived member serves missions, bit-identical as ever.
  const sched::MissionSpec spec = quick_spec("after-rejoin", 9);
  const Client::Submitted submitted = client.submit(spec);
  ASSERT_TRUE(submitted.ok) << submitted.error;
  expect_matches_standalone(client.result(submitted.job), spec);

  forwarder.stop();
  b0->stop();
  b1.stop();
}

TEST(Cluster, BrownoutShedsLowPriorityWhenEveryBackendIsStacked) {
  // Two 1-array backends. One endless runner each occupies the array;
  // one queued mission each makes the cluster SATURATED (work stacked
  // everywhere), which is the brownout admission trigger.
  std::vector<std::unique_ptr<Server>> servers;
  for (int i = 0; i < 2; ++i) {
    ServerConfig config = backend_config(1);
    config.max_inflight = 8;  // plenty of queue: shedding is the FORWARDER's
    servers.push_back(std::make_unique<Server>(config));
  }
  ForwarderConfig fc;
  for (const auto& server : servers) {
    BackendConfig backend;
    backend.port = server->port();
    fc.backends.push_back(backend);
  }
  fc.poll_ms = 50;
  Forwarder forwarder(std::move(fc));
  Client client(forwarder.port());

  std::vector<std::uint64_t> runners;
  // The hogs never finish on their own; cancel them on EVERY exit path
  // or the forwarder's drain would wait on them forever.
  struct CancelRunners {
    Client& client;
    std::vector<std::uint64_t>& jobs;
    ~CancelRunners() {
      for (const std::uint64_t job : jobs) {
        static_cast<void>(client.cancel(job));
      }
    }
  } cancel_guard{client, runners};
  for (int i = 0; i < 2; ++i) {
    const Client::Submitted hog = client.submit(
        quick_spec("hog-" + std::to_string(i), 50 + static_cast<unsigned>(i),
                   100000000));
    ASSERT_TRUE(hog.ok) << hog.error;
    runners.push_back(hog.job);
  }
  for (int i = 0; i < 2; ++i) {
    const Client::Submitted stacked = client.submit(quick_spec(
        "stack-" + std::to_string(i), 60 + static_cast<unsigned>(i), 5));
    ASSERT_TRUE(stacked.ok) << stacked.error;
  }
  // The shed predicate reads polled queue depths; wait for the poll to
  // see work stacked on every backend.
  ASSERT_TRUE(wait_until([&] {
    const Json stats = client.stats();
    const Json* backends = stats.get("cluster")->get("backends");
    for (const Json& row : backends->as_array()) {
      if (row.get_number("queued", 0) < 1.0) return false;
    }
    return true;
  })) << "queues never showed as stacked";

  // Default priority (0) is shed with explicit backpressure...
  const Client::Submitted shed =
      client.submit(quick_spec("shed-me", 70, 5));
  ASSERT_FALSE(shed.ok);
  EXPECT_EQ(shed.code, "queue_full");
  EXPECT_GE(shed.retry_after_ms, 100u);
  EXPECT_GE(forwarder.forwarder_stats().shed, 1u);

  // ...an all-low batch is refused wholesale...
  const Client::BatchSubmitted batch = client.submit_batch(
      {quick_spec("shed-b0", 71, 5), quick_spec("shed-b1", 72, 5)});
  ASSERT_FALSE(batch.ok);
  EXPECT_EQ(batch.code, "queue_full");

  // ...while priority > 0 rides through the brownout and queues.
  sched::MissionSpec urgent = quick_spec("urgent", 73, 5);
  urgent.priority = 1;
  const Client::Submitted accepted = client.submit(urgent);
  ASSERT_TRUE(accepted.ok) << accepted.error;

  // Unstack: cancel the hogs; everything queued completes normally.
  for (const std::uint64_t job : runners) {
    EXPECT_TRUE(client.cancel(job));
  }
  runners.clear();  // the guard's work is done
  expect_matches_standalone(client.result(accepted.job), urgent);

  forwarder.stop();
  for (const auto& server : servers) server->stop();
}

TEST(Cluster, BackendAddAndRemoveReshapeMembershipLive) {
  Cluster cluster;  // 2 backends
  Client client = cluster.client();
  const sched::MissionSpec spec = quick_spec("evacuee", 3, 200);
  const Client::Submitted submitted = client.submit(spec);
  ASSERT_TRUE(submitted.ok) << submitted.error;
  wait_for_waves(client, submitted.job, 2);
  const auto victim = static_cast<std::size_t>(
      client.status(submitted.job).get_number("backend", 0));

  // Grow the cluster live: the new member is polled before add returns.
  Server extra(backend_config(2));
  Json add = Json::object();
  add.set("op", "backend");
  add.set("action", "add");
  add.set("address", "127.0.0.1");
  add.set("port", static_cast<std::uint64_t>(extra.port()));
  const Json added = client.request(add);
  ASSERT_TRUE(added.get_bool("ok", false))
      << added.get_string("error", "");
  EXPECT_EQ(added.get_number("backend", 0), 2.0);
  EXPECT_TRUE(added.get_bool("reachable", false));
  EXPECT_EQ(added.get_number("epoch", 0), 1.0);

  // Tombstone the member hosting the running mission: its route must
  // evacuate to the survivors and still finish bit-identical.
  Json remove = Json::object();
  remove.set("op", "backend");
  remove.set("action", "remove");
  remove.set("backend", static_cast<std::uint64_t>(victim));
  const Json removed = client.request(remove);
  ASSERT_TRUE(removed.get_bool("ok", false))
      << removed.get_string("error", "");
  EXPECT_EQ(removed.get_number("evacuated", 0), 1.0);
  expect_matches_standalone(client.result(submitted.job), spec);
  EXPECT_GE(cluster.forwarder->forwarder_stats().failovers, 1u);

  // The tombstone stays visible (indices never shift) and is idempotent.
  const Json members = backend_list(client);
  EXPECT_TRUE(
      members.get("backends")->as_array()[victim].get_bool("removed", false));
  EXPECT_TRUE(client.request(remove).get_bool("ok", false));

  // The last member can never be removed: the cluster must stay placeable.
  for (std::size_t i = 0; i < 3; ++i) {
    if (i == victim) continue;
    Json request = Json::object();
    request.set("op", "backend");
    request.set("action", "remove");
    request.set("backend", static_cast<std::uint64_t>(i));
    const Json response = client.request(request);
    if (response.get_bool("ok", false)) continue;
    EXPECT_NE(response.get_string("error", "").find("last backend"),
              std::string::npos);
  }
  // Exactly one member survived, and it still serves.
  const sched::MissionSpec after = quick_spec("after-remove", 11);
  const Client::Submitted last = client.submit(after);
  ASSERT_TRUE(last.ok) << last.error;
  expect_matches_standalone(client.result(last.job), after);
  extra.stop();
}

}  // namespace
}  // namespace ehw::svc
