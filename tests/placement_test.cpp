// Tests for the scale-out placement layer: PlacementPolicy scoring
// (locality beats round-robin on repeat fingerprints, degraded pools are
// deprioritized, full pools spill) and PoolGroup sharding (bit-identical
// results regardless of pool count, lock-free stats aggregation,
// warm-state round trips including the single-pool upgrade path).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ehw/sched/missions.hpp"
#include "ehw/sched/placement.hpp"
#include "ehw/sched/pool_group.hpp"

namespace ehw::sched {
namespace {

MissionSpec quick_spec(std::string name, std::uint64_t scene_seed,
                       Generation generations = 30) {
  MissionSpec spec;
  spec.kind = MissionKind::kDenoise;
  spec.name = std::move(name);
  spec.size = 16;
  spec.generations = generations;
  spec.scene_seed = scene_seed;
  return spec;
}

PlacementTarget idle_target(std::size_t arrays) {
  PlacementTarget target;
  target.total_arrays = arrays;
  target.free_arrays = arrays;
  return target;
}

// --- fingerprint ------------------------------------------------------------

TEST(PlacementPolicy, FingerprintTracksWarmStateNotIdentity) {
  const MissionSpec a = quick_spec("alpha", 7);
  MissionSpec b = quick_spec("beta", 7);
  // Same frames, same candidate stream, different mission name: the warm
  // state is shared, so the fingerprint must be too.
  EXPECT_EQ(PlacementPolicy::fingerprint(a), PlacementPolicy::fingerprint(b));

  b.scene_seed = 8;  // different frames -> different warm state
  EXPECT_NE(PlacementPolicy::fingerprint(a), PlacementPolicy::fingerprint(b));

  MissionSpec c = quick_spec("alpha", 7);
  c.seed = 99;  // different candidate stream
  EXPECT_NE(PlacementPolicy::fingerprint(a), PlacementPolicy::fingerprint(c));

  MissionSpec d = quick_spec("alpha", 7);
  d.priority = -3;  // scheduling detail, not warm-state content
  EXPECT_EQ(PlacementPolicy::fingerprint(a), PlacementPolicy::fingerprint(d));
}

// --- scoring ----------------------------------------------------------------

TEST(PlacementPolicy, RepeatFingerprintStaysOnItsWarmPool) {
  PlacementPolicy policy;
  const std::vector<PlacementTarget> targets{idle_target(4), idle_target(4)};

  const PlacementPolicy::Decision first = policy.place(42, 1, targets);
  ASSERT_TRUE(first.ok);
  EXPECT_FALSE(first.affinity_hit);

  // A naive round-robin would alternate; locality must pin the repeat to
  // the pool that already holds the fingerprint's memo/cache entries.
  for (int repeat = 0; repeat < 4; ++repeat) {
    const PlacementPolicy::Decision again = policy.place(42, 1, targets);
    ASSERT_TRUE(again.ok);
    EXPECT_EQ(again.target, first.target);
    EXPECT_TRUE(again.affinity_hit);
  }
  const PlacementPolicy::Stats stats = policy.stats();
  EXPECT_EQ(stats.placed, 5u);
  EXPECT_EQ(stats.affinity_hits, 4u);
  EXPECT_EQ(stats.spills, 0u);
}

TEST(PlacementPolicy, ColdKeysSpreadAcrossEqualPools) {
  PlacementPolicy policy;
  std::vector<PlacementTarget> targets{idle_target(4), idle_target(4)};
  const PlacementPolicy::Decision first = policy.place(1, 2, targets);
  ASSERT_TRUE(first.ok);
  // Feed the decision back (as live quick_stats would): the busier pool
  // must lose the next cold placement.
  targets[first.target].free_arrays -= 2;
  targets[first.target].running += 1;
  const PlacementPolicy::Decision second = policy.place(2, 2, targets);
  ASSERT_TRUE(second.ok);
  EXPECT_NE(second.target, first.target);
}

TEST(PlacementPolicy, DegradedPoolsAreDeprioritized) {
  PlacementPolicy policy;
  PlacementTarget degraded = idle_target(4);
  degraded.quarantined = 2;
  degraded.free_arrays = 2;
  const std::vector<PlacementTarget> targets{degraded, idle_target(4)};
  const PlacementPolicy::Decision decision = policy.place(7, 1, targets);
  ASSERT_TRUE(decision.ok);
  EXPECT_EQ(decision.target, 1u);
}

TEST(PlacementPolicy, FullWarmPoolSpillsAndAffinityFollows) {
  PlacementPolicy policy;
  std::vector<PlacementTarget> targets{idle_target(4), idle_target(4)};
  const PlacementPolicy::Decision first = policy.place(9, 1, targets);
  ASSERT_TRUE(first.ok);

  // The warm pool is saturated: capacity overrides warmth.
  targets[first.target].free_arrays = 0;
  targets[first.target].running = 4;
  targets[first.target].queued = 6;
  const PlacementPolicy::Decision spilled = policy.place(9, 1, targets);
  ASSERT_TRUE(spilled.ok);
  EXPECT_NE(spilled.target, first.target);
  EXPECT_TRUE(spilled.spilled);

  // The affinity moved with the spill: once both pools are idle again
  // the fingerprint's home is the spill target.
  targets[first.target] = idle_target(4);
  const PlacementPolicy::Decision after = policy.place(9, 1, targets);
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.target, spilled.target);
  EXPECT_TRUE(after.affinity_hit);
}

TEST(PlacementPolicy, UnreachableAndUndersizedTargetsAreSkipped) {
  PlacementPolicy policy;
  PlacementTarget down = idle_target(8);
  down.reachable = false;
  const std::vector<PlacementTarget> targets{down, idle_target(2)};

  // Only the small pool is eligible; a 2-lane mission fits it.
  const PlacementPolicy::Decision fits = policy.place(1, 2, targets);
  ASSERT_TRUE(fits.ok);
  EXPECT_EQ(fits.target, 1u);

  // 4 lanes can never fit 2 healthy arrays, and the big pool is down.
  const PlacementPolicy::Decision none = policy.place(2, 4, targets);
  EXPECT_FALSE(none.ok);
  EXPECT_FALSE(none.error.empty());
}

TEST(PlacementPolicy, ForgetTargetDropsItsAffinities) {
  PlacementPolicy policy;
  const std::vector<PlacementTarget> targets{idle_target(4), idle_target(4)};
  const PlacementPolicy::Decision first = policy.place(5, 1, targets);
  ASSERT_TRUE(first.ok);
  policy.forget_target(first.target);
  const PlacementPolicy::Decision again = policy.place(5, 1, targets);
  ASSERT_TRUE(again.ok);
  EXPECT_FALSE(again.affinity_hit);  // the corpse's warmth is gone
}

TEST(PlacementPolicy, ScoreArithmetic) {
  const PlacementTarget idle = idle_target(4);
  PlacementTarget busy = idle_target(4);
  busy.free_arrays = 1;
  busy.running = 3;

  // Warm-and-fits beats an equally idle cold pool.
  EXPECT_GT(PlacementPolicy::score(idle, 1, /*warm=*/true),
            PlacementPolicy::score(idle, 1, /*warm=*/false));
  // An idle cold pool beats a saturated warm one (spill incentive).
  PlacementTarget full = idle_target(4);
  full.free_arrays = 0;
  full.running = 4;
  full.queued = 4;
  EXPECT_GT(PlacementPolicy::score(idle, 1, /*warm=*/false),
            PlacementPolicy::score(full, 1, /*warm=*/true));
  // Quarantine damage outweighs mild load.
  PlacementTarget degraded = idle_target(4);
  degraded.quarantined = 2;
  degraded.free_arrays = 2;
  EXPECT_GT(PlacementPolicy::score(busy, 1, /*warm=*/false),
            PlacementPolicy::score(degraded, 1, /*warm=*/false));
}

// --- PoolGroup --------------------------------------------------------------

PoolGroupConfig group_config(std::size_t pools, std::size_t arrays) {
  PoolGroupConfig config;
  config.pools = pools;
  config.pool.num_arrays = arrays;
  return config;
}

TEST(PoolGroup, ShardedResultsAreBitIdenticalToStandalone) {
  const std::vector<MissionSpec> specs{
      quick_spec("g0", 3), quick_spec("g1", 4), quick_spec("g2", 5),
      quick_spec("g3", 6)};
  PoolGroup group(group_config(2, 2));
  std::vector<PoolGroup::Placed> placed;
  for (const MissionSpec& spec : specs) {
    placed.push_back(group.submit(spec, make_job_config(spec),
                                  make_job_body(spec)));
  }
  group.wait_all();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_EQ(placed[i].runner->status(), JobStatus::kDone) << specs[i].name;
    const JobOutcome alone = run_spec_standalone(specs[i]);
    const JobOutcome& pooled = placed[i].runner->result();
    EXPECT_EQ(pooled.intrinsic.es.best_fitness,
              alone.intrinsic.es.best_fitness);
    EXPECT_EQ(pooled.intrinsic.es.best.hash(), alone.intrinsic.es.best.hash());
    EXPECT_EQ(pooled.stats.mission_time, alone.stats.mission_time);
  }
}

TEST(PoolGroup, RepeatMissionsLandOnTheirWarmPool) {
  PoolGroup group(group_config(2, 2));
  const MissionSpec hot = quick_spec("hot", 11);
  std::size_t home = 0;
  for (int round = 0; round < 3; ++round) {
    MissionSpec spec = hot;
    spec.name = "hot-" + std::to_string(round);  // name is not the key
    const PoolGroup::Placed placed =
        group.submit(spec, make_job_config(spec), make_job_body(spec));
    group.wait_all();
    ASSERT_EQ(placed.runner->status(), JobStatus::kDone);
    if (round == 0) {
      home = placed.pool;
    } else {
      EXPECT_EQ(placed.pool, home);
      EXPECT_TRUE(placed.affinity_hit);
    }
  }
  EXPECT_EQ(group.placement_stats().affinity_hits, 2u);
}

TEST(PoolGroup, StatsAggregateAcrossPools) {
  PoolGroup group(group_config(2, 2));
  const std::vector<MissionSpec> specs{quick_spec("s0", 3),
                                       quick_spec("s1", 4),
                                       quick_spec("s2", 5)};
  for (const MissionSpec& spec : specs) {
    static_cast<void>(
        group.submit(spec, make_job_config(spec), make_job_body(spec)));
  }
  group.wait_all();
  const PoolGroup::GroupStats stats = group.stats();
  ASSERT_EQ(stats.per_pool.size(), 2u);
  EXPECT_EQ(stats.total.num_arrays, 4u);
  EXPECT_EQ(stats.total.submitted, specs.size());
  EXPECT_EQ(stats.total.done, specs.size());
  EXPECT_EQ(stats.per_pool[0].submitted + stats.per_pool[1].submitted,
            specs.size());
  // The lock-free mirrors must agree with the mutex-guarded books once
  // the pools are quiet.
  for (std::size_t p = 0; p < 2; ++p) {
    const ArrayPool::PoolStats quick = group.pool(p).quick_stats();
    const ArrayPool::PoolStats slow = group.pool(p).pool_stats();
    EXPECT_EQ(quick.submitted, slow.submitted);
    EXPECT_EQ(quick.done, slow.done);
    EXPECT_EQ(quick.free_arrays, slow.free_arrays);
    EXPECT_EQ(quick.queued, slow.queued);
  }
}

TEST(PoolGroup, QuarantineDegradedGroupFailsUnsatisfiableLeaseCleanly) {
  // Every pool loses an array to quarantine: a 2-lane lease fits no
  // pool's HEALTHY capacity. The group must hand the job to the
  // least-degraded pool so ArrayPool's unsatisfiable-eviction path fails
  // it with its normal error — identical to single-pool semantics.
  PoolGroup group(group_config(2, 2));
  group.pool(0).quarantine_array(0);
  group.pool(1).quarantine_array(0);
  MissionSpec spec = quick_spec("wide", 3);
  spec.lanes = 2;
  const PoolGroup::Placed placed =
      group.submit(spec, make_job_config(spec), make_job_body(spec));
  group.wait_all();
  EXPECT_EQ(placed.runner->status(), JobStatus::kFailed);
  EXPECT_FALSE(placed.runner->result().error.empty());
}

TEST(PoolGroup, WarmStateRoundTripsInGroupFormat) {
  PoolGroupConfig config = group_config(2, 2);
  Json exported;
  {
    PoolGroup group(config);
    const std::vector<MissionSpec> specs{quick_spec("w0", 3),
                                         quick_spec("w1", 4)};
    for (const MissionSpec& spec : specs) {
      static_cast<void>(
          group.submit(spec, make_job_config(spec), make_job_body(spec)));
    }
    group.wait_all();
    exported = group.export_warm_state();
  }
  EXPECT_EQ(exported.get_string("format", "?"), "mpa-warm-group-v1");

  PoolGroup fresh(config);
  const ArrayPool::WarmLoadStats warm = fresh.import_warm_state(exported);
  EXPECT_GT(warm.memo_loaded, 0u);
}

TEST(PoolGroup, ImportAcceptsSinglePoolWarmFormat) {
  // The upgrade path: a daemon that ran pre-sharded exports
  // "mpa-warm-v1"; a sharded group must still accept it (into pool 0).
  PoolConfig solo_config;
  solo_config.num_arrays = 2;
  Json exported;
  {
    ArrayPool solo(solo_config);
    const MissionSpec spec = quick_spec("solo", 3);
    static_cast<void>(solo.submit(make_job_config(spec), make_job_body(spec)));
    solo.wait_all();
    exported = solo.export_warm_state();
  }
  EXPECT_EQ(exported.get_string("format", "?"), "mpa-warm-v1");

  PoolGroup group(group_config(2, 2));
  const ArrayPool::WarmLoadStats warm = group.import_warm_state(exported);
  EXPECT_GT(warm.memo_loaded, 0u);
}

}  // namespace
}  // namespace ehw::sched
