// Tests for ehw/sim: time units, the clock, and the Timeline resource
// model that realizes the Fig. 11 engine/array pipeline.

#include <gtest/gtest.h>

#include <sstream>

#include "ehw/sim/clock.hpp"
#include "ehw/sim/time.hpp"
#include "ehw/sim/timeline.hpp"
#include "ehw/sim/trace.hpp"

namespace ehw::sim {
namespace {

TEST(SimTimeUnits, Conversions) {
  EXPECT_EQ(microseconds(1.0), 1000);
  EXPECT_EQ(milliseconds(1.0), 1000000);
  EXPECT_EQ(seconds(1.0), 1000000000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(67.53)), 67.53);
}

TEST(SimTimeUnits, CyclesAtMhz) {
  // 100 cycles at 100 MHz = 1 us.
  EXPECT_EQ(cycles_at_mhz(100, 100.0), microseconds(1.0));
  // One 128x128 frame at 100 MHz = 163.84 us.
  EXPECT_EQ(cycles_at_mhz(128 * 128, 100.0), microseconds(163.84));
}

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advance_to(50);  // never backwards
  EXPECT_EQ(clock.now(), 100);
  clock.advance_to(400);
  EXPECT_EQ(clock.now(), 400);
  EXPECT_THROW(clock.advance(-1), std::logic_error);
}

TEST(Timeline, SerializesOneResource) {
  Timeline tl;
  const ResourceId r = tl.add_resource("engine");
  const Interval a = tl.reserve(r, 0, 10);
  const Interval b = tl.reserve(r, 0, 5);
  EXPECT_EQ(a.start, 0);
  EXPECT_EQ(a.end, 10);
  EXPECT_EQ(b.start, 10);  // waits for the engine
  EXPECT_EQ(b.end, 15);
}

TEST(Timeline, HonoursEarliest) {
  Timeline tl;
  const ResourceId r = tl.add_resource("r");
  const Interval a = tl.reserve(r, 100, 10);
  EXPECT_EQ(a.start, 100);
  const Interval b = tl.reserve(r, 50, 10);  // resource is the later bound
  EXPECT_EQ(b.start, 110);
}

TEST(Timeline, IndependentResourcesOverlap) {
  Timeline tl;
  const ResourceId a = tl.add_resource("array0");
  const ResourceId b = tl.add_resource("array1");
  const Interval ia = tl.reserve(a, 0, 100);
  const Interval ib = tl.reserve(b, 0, 100);
  EXPECT_EQ(ia.start, 0);
  EXPECT_EQ(ib.start, 0);  // true parallelism
  EXPECT_EQ(tl.makespan(), 100);
}

TEST(Timeline, ReservePairBlocksBoth) {
  Timeline tl;
  const ResourceId engine = tl.add_resource("engine");
  const ResourceId array = tl.add_resource("array");
  // Array busy evaluating until t=50.
  tl.reserve(array, 0, 50);
  // A reconfiguration needs engine AND array: must wait for the array.
  const Interval r = tl.reserve_pair(engine, array, 0, 10);
  EXPECT_EQ(r.start, 50);
  EXPECT_EQ(r.end, 60);
  // Both horizons moved.
  EXPECT_EQ(tl.free_at(engine), 60);
  EXPECT_EQ(tl.free_at(array), 60);
}

TEST(Timeline, Fig11PipelineShape) {
  // One engine, three arrays; R=10, F=7. Nine candidates, three per array.
  // Reconfigurations serialize on the engine; evaluations overlap.
  Timeline tl;
  const ResourceId engine = tl.add_resource("engine");
  const ResourceId arrays[3] = {tl.add_resource("a0"), tl.add_resource("a1"),
                                tl.add_resource("a2")};
  SimTime last_eval_end = 0;
  for (int i = 0; i < 9; ++i) {
    const ResourceId arr = arrays[i % 3];
    const Interval r = tl.reserve_pair(engine, arr, 0, 10);
    const Interval f = tl.reserve(arr, r.end, 7);
    last_eval_end = std::max(last_eval_end, f.end);
  }
  // Serial engine: 9 x 10 = 90; last evaluation drains after it.
  EXPECT_EQ(tl.free_at(engine), 90);
  EXPECT_EQ(last_eval_end, 97);
  // The single-array equivalent is strictly 9 x (10 + 7) = 153.
  Timeline single;
  const ResourceId e1 = single.add_resource("engine");
  const ResourceId a1 = single.add_resource("a0");
  SimTime end1 = 0;
  for (int i = 0; i < 9; ++i) {
    const Interval r = single.reserve_pair(e1, a1, 0, 10);
    const Interval f = single.reserve(a1, r.end, 7);
    end1 = f.end;
  }
  EXPECT_EQ(end1, 153);
  EXPECT_LT(last_eval_end, end1);  // parallel evaluation wins
}

TEST(Timeline, ResetKeepsResources) {
  Timeline tl;
  const ResourceId r = tl.add_resource("r");
  tl.reserve(r, 0, 42);
  tl.reset();
  EXPECT_EQ(tl.resource_count(), 1u);
  EXPECT_EQ(tl.free_at(r), 0);
  EXPECT_EQ(tl.resource_name(r), "r");
}

TEST(Trace, RecordsOnlyWhenEnabled) {
  Trace trace;
  trace.record(0, "R", {0, 10});
  EXPECT_TRUE(trace.events().empty());
  trace.enable(true);
  trace.record(0, "R", {0, 10});
  EXPECT_EQ(trace.events().size(), 1u);
}

TEST(Trace, GanttRendersLanes) {
  Timeline tl;
  const ResourceId engine = tl.add_resource("icap");
  const ResourceId array = tl.add_resource("array0");
  Trace trace;
  trace.enable(true);
  trace.record(engine, "R1", tl.reserve(engine, 0, 50));
  trace.record(array, "F1", tl.reserve(array, 50, 50));
  std::ostringstream os;
  trace.render_gantt(os, tl, 40);
  const std::string s = os.str();
  EXPECT_NE(s.find("icap"), std::string::npos);
  EXPECT_NE(s.find("array0"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
}

}  // namespace
}  // namespace ehw::sim
