// Shape-generalization property tests: the paper fixes 4x4 arrays, but the
// architecture (and §VII's future work on individually scalable arrays)
// implies nothing magic about that size. Every layer — genotype, mesh,
// compiled evaluator, fabric decode, intrinsic evolution — must work for
// arbitrary rows x cols.

#include <gtest/gtest.h>

#include "ehw/evo/fitness.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/pe/compiled.hpp"
#include "ehw/platform/evolution_driver.hpp"
#include "test_util.hpp"

namespace ehw {
namespace {

struct ShapeCase {
  std::size_t rows;
  std::size_t cols;
};

class ShapeSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(ShapeSweep, GenotypeGeneBlocksSized) {
  const auto [rows, cols] = GetParam();
  Rng rng(rows * 31 + cols);
  const evo::Genotype g =
      evo::Genotype::random({rows, cols}, rng);
  EXPECT_EQ(g.cell_count(), rows * cols);
  EXPECT_EQ(g.input_count(), rows + cols);
  EXPECT_EQ(g.gene_count(), rows * cols + rows + cols + 1);
  EXPECT_LT(g.output_row(), rows);
}

TEST_P(ShapeSweep, CompiledMatchesMesh) {
  const auto [rows, cols] = GetParam();
  Rng rng(rows * 97 + cols);
  for (int rep = 0; rep < 5; ++rep) {
    const evo::Genotype g = evo::Genotype::random({rows, cols}, rng);
    const pe::SystolicArray mesh = g.to_array();
    const pe::CompiledArray compiled(mesh);
    const img::Image src = img::make_scene(16, 16, rep + 1);
    EXPECT_EQ(mesh.filter(src), compiled.filter(src));
  }
}

TEST_P(ShapeSweep, DeadRowCountMatchesOutputRow) {
  const auto [rows, cols] = GetParam();
  Rng rng(rows * 131 + cols);
  evo::Genotype g = evo::Genotype::random({rows, cols}, rng);
  for (std::uint8_t out = 0; out < rows; ++out) {
    g.set_output_row(out);
    const pe::CompiledArray compiled(g.to_array());
    EXPECT_EQ(compiled.active_cell_count(), (out + 1u) * cols);
  }
}

TEST_P(ShapeSweep, IntrinsicEqualsExtrinsicThroughFabric) {
  const auto [rows, cols] = GetParam();
  if (rows + cols > 8 + 8) GTEST_SKIP() << "register map holds 8 taps";
  platform::PlatformConfig pc;
  pc.num_arrays = 2;
  pc.shape = {rows, cols};
  pc.line_width = 20;
  platform::EvolvablePlatform plat(pc);
  Rng rng(rows * 7 + cols);
  const img::Image src = img::make_scene(20, 20, 3);
  for (int rep = 0; rep < 5; ++rep) {
    const evo::Genotype g = evo::Genotype::random({rows, cols}, rng);
    plat.configure_array(1, g, 0);
    EXPECT_EQ(plat.filter_array(1, src), evo::apply_genotype(g, src));
  }
}

TEST_P(ShapeSweep, EvolutionRunsAndImproves) {
  const auto [rows, cols] = GetParam();
  if (rows + cols > 8 + 8) GTEST_SKIP() << "register map holds 8 taps";
  platform::PlatformConfig pc;
  pc.num_arrays = 1;
  pc.shape = {rows, cols};
  pc.line_width = 24;
  platform::EvolvablePlatform plat(pc);
  const auto w = test::make_denoise_workload(24, 0.2, rows * 11 + cols);
  evo::EsConfig cfg;
  cfg.generations = 60;
  cfg.seed = 5;
  const platform::IntrinsicResult r =
      platform::evolve_on_platform(plat, {0}, w.noisy, w.clean, cfg);
  // A 1x1 array can at best reproduce its input (two window taps, one
  // op): it only has to MATCH the noisy baseline; anything larger must
  // strictly improve on it.
  const Fitness baseline = img::aggregated_mae(w.noisy, w.clean);
  if (rows * cols >= 4) {
    EXPECT_LT(r.es.best_fitness, baseline);
  } else {
    EXPECT_LE(r.es.best_fitness, baseline);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeSweep,
    ::testing::Values(ShapeCase{1, 1}, ShapeCase{2, 2}, ShapeCase{2, 4},
                      ShapeCase{4, 2}, ShapeCase{4, 4}, ShapeCase{3, 5},
                      ShapeCase{6, 2}),
    [](const ::testing::TestParamInfo<ShapeCase>& info) {
      return std::to_string(info.param.rows) + "x" +
             std::to_string(info.param.cols);
    });

TEST(ShapeLimits, MuxCountLimitsInputBlocks) {
  // The ACB register map carries 8 input-tap registers; a platform whose
  // shape needs more must be rejected loudly, not mis-addressed.
  platform::PlatformConfig pc;
  pc.num_arrays = 1;
  pc.shape = {6, 6};  // 12 inputs > 8 registers
  EXPECT_THROW(platform::EvolvablePlatform plat(pc), std::logic_error);
}

}  // namespace
}  // namespace ehw
