// Tests for genotype serialization and the genotype library file format.

#include <gtest/gtest.h>

#include <sstream>

#include "ehw/evo/serialize.hpp"
#include "test_util.hpp"

namespace ehw::evo {
namespace {

TEST(Serialize, RoundTripsRandomGenotypes) {
  Rng rng(101);
  for (int rep = 0; rep < 30; ++rep) {
    const Genotype g = Genotype::random({4, 4}, rng);
    const Genotype back = deserialize_genotype(serialize_genotype(g));
    EXPECT_EQ(g, back);
  }
}

TEST(Serialize, RoundTripsNonSquareShapes) {
  Rng rng(102);
  for (const fpga::ArrayShape shape :
       {fpga::ArrayShape{2, 2}, fpga::ArrayShape{3, 5},
        fpga::ArrayShape{6, 2}, fpga::ArrayShape{8, 8}}) {
    const Genotype g = Genotype::random(shape, rng);
    const Genotype back = deserialize_genotype(serialize_genotype(g));
    EXPECT_EQ(g, back);
  }
}

TEST(Serialize, FormatIsStable) {
  const Genotype g = test::identity_genotype();
  const std::string s = serialize_genotype(g);
  EXPECT_EQ(s.rfind("MPA1 4 4 | 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 | "
                    "4 4 4 4 4 4 4 4 | 0",
                    0),
            0u)
      << s;
}

TEST(Serialize, RejectsMalformedInput) {
  EXPECT_THROW(deserialize_genotype(""), std::runtime_error);
  EXPECT_THROW(deserialize_genotype("NOPE 4 4 | 1 | 1 | 0"),
               std::runtime_error);
  // Wrong gene count.
  EXPECT_THROW(deserialize_genotype("MPA1 2 2 | 1 2 3 | 0 0 0 0 | 0"),
               std::runtime_error);
  // Function gene out of range.
  EXPECT_THROW(
      deserialize_genotype("MPA1 2 2 | 16 0 0 0 | 0 0 0 0 | 0"),
      std::runtime_error);
  // Tap out of range.
  EXPECT_THROW(deserialize_genotype("MPA1 2 2 | 1 2 3 4 | 9 0 0 0 | 0"),
               std::runtime_error);
  // Output row out of range.
  EXPECT_THROW(deserialize_genotype("MPA1 2 2 | 1 2 3 4 | 0 0 0 0 | 2"),
               std::runtime_error);
  // Trailing garbage.
  EXPECT_THROW(
      deserialize_genotype("MPA1 2 2 | 1 2 3 4 | 0 0 0 0 | 0 junk"),
      std::runtime_error);
}

TEST(Serialize, PhenotypePreservedThroughRoundTrip) {
  Rng rng(103);
  const Genotype g = Genotype::random({4, 4}, rng);
  const Genotype back = deserialize_genotype(serialize_genotype(g));
  const img::Image scene = img::make_scene(24, 24, 9);
  EXPECT_EQ(g.to_array().filter(scene), back.to_array().filter(scene));
}

TEST(GenotypeLibraryFile, PutGetContains) {
  Rng rng(104);
  GenotypeLibrary lib;
  EXPECT_FALSE(lib.contains("denoise"));
  lib.put("denoise", Genotype::random({4, 4}, rng));
  EXPECT_TRUE(lib.contains("denoise"));
  EXPECT_EQ(lib.size(), 1u);
  EXPECT_THROW((void)lib.get("absent"), std::logic_error);
}

TEST(GenotypeLibraryFile, StreamRoundTrip) {
  Rng rng(105);
  GenotypeLibrary lib;
  lib.put("denoise", Genotype::random({4, 4}, rng));
  lib.put("edges", Genotype::random({4, 4}, rng));
  lib.put("smooth", Genotype::random({2, 3}, rng));
  std::stringstream ss;
  lib.save(ss);
  const GenotypeLibrary back = GenotypeLibrary::load(ss);
  EXPECT_EQ(back.size(), 3u);
  EXPECT_EQ(back.get("denoise"), lib.get("denoise"));
  EXPECT_EQ(back.get("edges"), lib.get("edges"));
  EXPECT_EQ(back.get("smooth"), lib.get("smooth"));
}

TEST(GenotypeLibraryFile, OverwriteReplaces) {
  Rng rng(106);
  GenotypeLibrary lib;
  const Genotype a = Genotype::random({4, 4}, rng);
  const Genotype b = Genotype::random({4, 4}, rng);
  lib.put("x", a);
  lib.put("x", b);
  EXPECT_EQ(lib.size(), 1u);
  EXPECT_EQ(lib.get("x"), b);
}

TEST(GenotypeLibraryFile, CommentsAndBlanksIgnored) {
  std::stringstream ss(
      "# header comment\n\nf := " +
      serialize_genotype(test::identity_genotype()) + "\n# trailing\n");
  const GenotypeLibrary lib = GenotypeLibrary::load(ss);
  EXPECT_EQ(lib.size(), 1u);
  EXPECT_EQ(lib.get("f"), test::identity_genotype());
}

TEST(GenotypeLibraryFile, MalformedLineRejected) {
  std::stringstream ss("name-without-separator MPA1 ...\n");
  EXPECT_THROW(GenotypeLibrary::load(ss), std::runtime_error);
}

TEST(GenotypeLibraryFile, FileRoundTrip) {
  Rng rng(107);
  GenotypeLibrary lib;
  lib.put("mission", Genotype::random({4, 4}, rng));
  const std::string path = "/tmp/ehw_genolib_test.txt";
  lib.save_file(path);
  const GenotypeLibrary back = GenotypeLibrary::load_file(path);
  EXPECT_EQ(back.get("mission"), lib.get("mission"));
}

}  // namespace
}  // namespace ehw::evo
