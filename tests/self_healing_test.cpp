// Tests for the §V self-healing controllers: calibration-based detection,
// scrubbing classification (transient vs permanent), bypass + imitation
// recovery, and the TMR voter strategy.

#include <gtest/gtest.h>

#include "ehw/img/metrics.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/platform/evolution_driver.hpp"
#include "ehw/platform/self_healing.hpp"
#include "test_util.hpp"

namespace ehw::platform {
namespace {

evo::EsConfig recovery_es(Generation generations = 80) {
  evo::EsConfig cfg;
  cfg.lambda = 9;
  cfg.mutation_rate = 3;
  cfg.generations = generations;
  cfg.seed = 404;
  return cfg;
}

bool has_event(const std::vector<HealingEvent>& events,
               HealingEventKind kind) {
  for (const auto& e : events) {
    if (e.kind == kind) return true;
  }
  return false;
}

struct CascadeHealFixture : ::testing::Test {
  CascadeHealFixture() : plat(test::small_platform_config(3)) {
    // Deploy evolved-ish circuits: identity works for the calibration
    // input==reference pairing, giving baseline fitness 0.
    for (std::size_t a = 0; a < 3; ++a) {
      plat.configure_array(a, test::identity_genotype(), 0);
    }
  }

  CascadeSelfHealing::Config make_config(bool reference_available = true) {
    CascadeSelfHealing::Config cfg;
    cfg.calibration_input = img::make_calibration_pattern(32, 32);
    cfg.calibration_reference = cfg.calibration_input;  // identity target
    cfg.tolerance = 0;
    cfg.recovery_es = recovery_es();
    cfg.reference_available = reference_available;
    return cfg;
  }

  EvolvablePlatform plat;
};

TEST_F(CascadeHealFixture, HealthyChecksPass) {
  CascadeSelfHealing healer(plat, {0, 1, 2}, make_config());
  healer.record_baseline();
  EXPECT_EQ(healer.baseline(0), 0u);
  EXPECT_TRUE(healer.run_calibration_check());
  EXPECT_TRUE(has_event(healer.events(), HealingEventKind::kCheckPassed));
  EXPECT_FALSE(
      has_event(healer.events(), HealingEventKind::kDivergenceDetected));
}

TEST_F(CascadeHealFixture, RequiresBaselineBeforeCheck) {
  CascadeSelfHealing healer(plat, {0, 1, 2}, make_config());
  EXPECT_THROW(healer.run_calibration_check(), std::logic_error);
}

TEST_F(CascadeHealFixture, SeuClassifiedTransientAndScrubbedAway) {
  CascadeSelfHealing healer(plat, {0, 1, 2}, make_config());
  healer.record_baseline();
  plat.inject_seu(1);
  // The SEU may or may not hit logic that the selected output row can
  // observe (§V: the number of supported faults depends on the problem).
  const bool healthy = healer.run_calibration_check();
  EXPECT_TRUE(healthy);  // transient faults never end a check unhealthy
  if (has_event(healer.events(), HealingEventKind::kDivergenceDetected)) {
    // Observable: it must have been scrubbed away and classified
    // transient, and the fabric must be clean again.
    EXPECT_TRUE(has_event(healer.events(), HealingEventKind::kScrubbed));
    EXPECT_TRUE(
        has_event(healer.events(), HealingEventKind::kTransientRecovered));
    EXPECT_FALSE(
        has_event(healer.events(), HealingEventKind::kPermanentDeclared));
    EXPECT_EQ(plat.config_memory().upset_word_count(), 0u);
  } else {
    // Invisible at the output: the upset word lingers until a blind scrub.
    EXPECT_EQ(plat.config_memory().upset_word_count(), 1u);
    std::size_t corrected = 0;
    plat.scrub_array(1, plat.now(), &corrected, nullptr);
    EXPECT_EQ(corrected, 1u);
    EXPECT_EQ(plat.config_memory().upset_word_count(), 0u);
  }
}

TEST_F(CascadeHealFixture, PermanentFaultRecoveredByReEvolution) {
  CascadeSelfHealing healer(plat, {0, 1, 2}, make_config(true));
  healer.record_baseline();
  plat.inject_pe_fault(1, 0, 2);  // output row -> observable
  const bool healthy = healer.run_calibration_check();
  EXPECT_FALSE(healthy);  // a permanent fault was found
  EXPECT_TRUE(has_event(healer.events(), HealingEventKind::kScrubbed));
  EXPECT_TRUE(
      has_event(healer.events(), HealingEventKind::kPermanentDeclared));
  EXPECT_TRUE(has_event(healer.events(), HealingEventKind::kBypassEngaged));
  EXPECT_TRUE(has_event(healer.events(), HealingEventKind::kReEvolved));
  // Follow-up check passes against the refreshed baseline.
  EXPECT_TRUE(healer.run_calibration_check());
}

TEST_F(CascadeHealFixture, ReferenceLostRecoversByImitation) {
  CascadeSelfHealing healer(plat, {0, 1, 2}, make_config(false));
  healer.record_baseline();
  plat.inject_pe_fault(1, 0, 1);
  const bool healthy = healer.run_calibration_check();
  EXPECT_FALSE(healthy);
  EXPECT_TRUE(
      has_event(healer.events(), HealingEventKind::kImitationRecovered));
  EXPECT_FALSE(has_event(healer.events(), HealingEventKind::kReEvolved));
  // Recovery learned from the neighbour: follow-up checks pass.
  EXPECT_TRUE(healer.run_calibration_check());
}

/// ---------------------------------------------------------------------------
struct TmrFixture : ::testing::Test {
  TmrFixture() : plat(test::small_platform_config(3)) {}

  TmrSelfHealing::Config make_config() {
    TmrSelfHealing::Config cfg;
    cfg.voter_threshold = 50;  // similarity threshold (§V.B)
    cfg.recovery_es = recovery_es(120);
    cfg.paste_on_partial_recovery = true;
    return cfg;
  }

  EvolvablePlatform plat;
};

TEST_F(TmrFixture, HealthyFramesUnanimous) {
  TmrSelfHealing tmr(plat, {0, 1, 2}, make_config());
  Rng rng(51);
  tmr.deploy(evo::Genotype::random({4, 4}, rng));
  const img::Image frame = img::make_scene(32, 32, 51);
  const auto r = tmr.process_frame(frame);
  EXPECT_FALSE(r.vote.faulty.has_value());
  EXPECT_FALSE(r.vote.inconclusive);
  EXPECT_EQ(r.fitness[0], 0u);
  EXPECT_EQ(r.fitness[1], 0u);
  EXPECT_EQ(r.fitness[2], 0u);
  // Voted output equals each healthy array's output.
  EXPECT_EQ(r.voted, plat.filter_array(0, frame));
}

TEST_F(TmrFixture, VotedOutputMasksSingleFault) {
  TmrSelfHealing tmr(plat, {0, 1, 2}, make_config());
  Rng rng(52);
  const evo::Genotype circuit = evo::Genotype::random({4, 4}, rng);
  tmr.deploy(circuit);
  const img::Image frame = img::make_scene(32, 32, 52);
  const img::Image golden = plat.filter_array(0, frame);
  plat.inject_pe_fault(2, 0, 1);
  const auto r = tmr.process_frame(frame);
  // Even while healing ran, the voted output never deviated from golden.
  EXPECT_EQ(r.voted, golden);
}

TEST_F(TmrFixture, FaultDetectedLocalizedAndRecovered) {
  TmrSelfHealing tmr(plat, {0, 1, 2}, make_config());
  // Identity circuit: the output rides row 0, so a fault in (0, 2) is on
  // the live path and guaranteed observable.
  tmr.deploy(test::identity_genotype());
  const img::Image frame = img::make_scene(32, 32, 53);
  plat.inject_pe_fault(1, 0, 2);
  const auto r = tmr.process_frame(frame);
  ASSERT_TRUE(r.vote.faulty.has_value());
  EXPECT_EQ(*r.vote.faulty, 1u);
  EXPECT_TRUE(r.recovered_this_frame);
  EXPECT_TRUE(has_event(tmr.events(), HealingEventKind::kScrubbed));
  EXPECT_TRUE(
      has_event(tmr.events(), HealingEventKind::kPermanentDeclared));
  EXPECT_TRUE(
      has_event(tmr.events(), HealingEventKind::kImitationRecovered));
  // Next frame: the platform is consistent again (within the threshold).
  const auto r2 = tmr.process_frame(frame);
  EXPECT_FALSE(r2.vote.faulty.has_value());
}

TEST_F(TmrFixture, SeuHealsAsTransient) {
  TmrSelfHealing tmr(plat, {0, 1, 2}, make_config());
  Rng rng(54);
  tmr.deploy(evo::Genotype::random({4, 4}, rng));
  const img::Image frame = img::make_scene(32, 32, 54);
  plat.inject_seu(0);
  const auto r = tmr.process_frame(frame);
  if (r.vote.faulty.has_value()) {
    // When the flip was observable, it must have healed as transient: no
    // permanent event, no imitation — and the scrub cleaned the fabric.
    EXPECT_TRUE(
        has_event(tmr.events(), HealingEventKind::kTransientRecovered));
    EXPECT_FALSE(
        has_event(tmr.events(), HealingEventKind::kPermanentDeclared));
    EXPECT_EQ(plat.config_memory().upset_word_count(), 0u);
  } else {
    // Invisible flip: nothing scrubbed it yet.
    EXPECT_EQ(plat.config_memory().upset_word_count(), 1u);
  }
}

TEST_F(TmrFixture, PasteRealignsAllArraysAfterPartialRecovery) {
  TmrSelfHealing tmr(plat, {0, 1, 2}, make_config());
  Rng rng(55);
  tmr.deploy(evo::Genotype::random({4, 4}, rng));
  const img::Image frame = img::make_scene(32, 32, 55);
  plat.inject_pe_fault(1, 0, 3);
  tmr.process_frame(frame);
  if (has_event(tmr.events(), HealingEventKind::kGenotypePasted)) {
    // All three arrays hold the recovered chromosome now.
    const auto& g0 = plat.configured_genotype(0);
    const auto& g1 = plat.configured_genotype(1);
    const auto& g2 = plat.configured_genotype(2);
    ASSERT_TRUE(g0 && g1 && g2);
    EXPECT_EQ(*g0, *g1);
    EXPECT_EQ(*g1, *g2);
  }
}

}  // namespace
}  // namespace ehw::platform
