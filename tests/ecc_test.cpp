// Tests for the frame-level SECDED ECC and blind scrubbing.

#include <gtest/gtest.h>

#include "ehw/fpga/ecc.hpp"
#include "ehw/common/rng.hpp"

namespace ehw::fpga {
namespace {

struct EccFixture : ::testing::Test {
  EccFixture()
      : geometry(2, ArrayShape{4, 4}),
        memory(geometry.total_words()),
        ecc(geometry) {
    // Configuration-like content everywhere.
    Rng rng(42);
    for (std::size_t i = 0; i < memory.size(); ++i) {
      memory.write(i, static_cast<ConfigWord>(rng()));
    }
    ecc.resync_all(memory);
  }

  FabricGeometry geometry;
  ConfigMemory memory;
  FrameEcc ecc;
};

TEST_F(EccFixture, CleanFabricChecksClean) {
  for (std::size_t f = 0; f < ecc.frame_count(); ++f) {
    EXPECT_EQ(ecc.check_and_correct_frame(memory, f).status,
              EccStatus::kClean);
  }
  const FrameEcc::SweepReport report = ecc.blind_scrub(memory);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_GT(report.duration, 0);
}

TEST_F(EccFixture, SingleFlipLocatedAndRepaired) {
  Rng rng(7);
  for (int rep = 0; rep < 40; ++rep) {
    const std::size_t word = rng.below(memory.size());
    const auto bit = static_cast<unsigned>(rng.below(32));
    const ConfigWord before = memory.read(word);
    memory.flip_bit(word, bit);
    const std::size_t frame =
        word / geometry.layout().words_per_frame;
    const EccFrameCheck check = ecc.check_and_correct_frame(memory, frame);
    ASSERT_EQ(check.status, EccStatus::kCorrectedSingle);
    EXPECT_EQ(check.corrected_word, word);
    EXPECT_EQ(check.corrected_bit, bit);
    EXPECT_EQ(memory.read(word), before);  // repaired in place
  }
}

TEST_F(EccFixture, BlindScrubHealsScatteredUpsets) {
  Rng rng(9);
  // One upset per frame at most (SECDED's domain).
  std::size_t injected = 0;
  for (std::size_t f = 0; f < ecc.frame_count(); f += 3) {
    const std::size_t word =
        f * geometry.layout().words_per_frame + rng.below(8);
    memory.flip_bit(word, static_cast<unsigned>(rng.below(32)));
    ++injected;
  }
  EXPECT_EQ(memory.upset_word_count(), injected);
  const FrameEcc::SweepReport report = ecc.blind_scrub(memory);
  EXPECT_EQ(report.corrected(), injected);
  EXPECT_EQ(report.uncorrectable(), 0u);
  EXPECT_EQ(memory.upset_word_count(), 0u);
}

TEST_F(EccFixture, DoubleFlipDetectedNotCorrected) {
  // Two flips in the same frame: parity is even again, syndrome nonzero.
  const std::size_t base = 0;
  memory.flip_bit(base + 1, 3);
  memory.flip_bit(base + 4, 17);
  const EccFrameCheck check = ecc.check_and_correct_frame(memory, 0);
  EXPECT_EQ(check.status, EccStatus::kDetectedDouble);
  // Contents untouched (no mis-correction).
  EXPECT_EQ(memory.upset_word_count(), 2u);
}

TEST_F(EccFixture, ResyncSlotFollowsReconfiguration) {
  // A deliberate write changes the content; after resync the frame is
  // clean again, and a subsequent upset is still caught.
  const SlotAddress slot{1, 2, 3};
  const std::size_t base = geometry.slot_word_base(slot);
  memory.write(base + 2, 0xCAFEBABE);
  ecc.resync_slot(memory, slot);
  const std::size_t frame = (base + 2) / geometry.layout().words_per_frame;
  EXPECT_EQ(ecc.check_and_correct_frame(memory, frame).status,
            EccStatus::kClean);
  memory.flip_bit(base + 2, 30);
  EXPECT_EQ(ecc.check_and_correct_frame(memory, frame).status,
            EccStatus::kCorrectedSingle);
}

TEST_F(EccFixture, SyndromePositionEncodesBit) {
  const FrameEcc::Syndrome before = ecc.compute_syndrome(memory, 5);
  const std::size_t word = 5 * geometry.layout().words_per_frame + 3;
  memory.flip_bit(word, 9);
  const FrameEcc::Syndrome after = ecc.compute_syndrome(memory, 5);
  // XOR difference = 1-based in-frame position of the flipped bit.
  EXPECT_EQ(after.position ^ before.position, 3u * 32u + 9u + 1u);
  EXPECT_NE(after.parity, before.parity);
}

}  // namespace
}  // namespace ehw::fpga
