// Tests for the self-healing service core: task-exception propagation
// into failed results, per-job deadlines, lane quarantine (free and
// leased arrays, unsatisfiable queued jobs), checkpoint-based preemption
// and migration — sched-level resubmit and the full server hop — with
// the bit-identity guarantee: a migrated mission lands on the same
// fitness/genotype (and, when the new slice is at least as wide, the
// same simulated time) as an uninterrupted run. Plus the reconnecting
// client: retry with backoff across a daemon restart and idempotent
// resubmit keyed by mission name through journal dedup.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ehw/common/fault.hpp"
#include "ehw/common/persist.hpp"
#include "ehw/sched/array_pool.hpp"
#include "ehw/sched/missions.hpp"
#include "ehw/svc/client.hpp"
#include "ehw/svc/forwarder.hpp"
#include "ehw/svc/server.hpp"

namespace ehw::sched {
namespace {

MissionSpec quick_spec(const std::string& name, Generation generations,
                       std::size_t lanes = 2, std::uint64_t seed = 5) {
  MissionSpec spec;
  spec.kind = MissionKind::kDenoise;
  spec.name = name;
  spec.lanes = lanes;
  spec.generations = generations;
  spec.size = 16;
  spec.seed = seed;
  return spec;
}

PoolConfig small_pool(std::size_t arrays) {
  PoolConfig config;
  config.num_arrays = arrays;
  config.line_width = 16;
  return config;
}

/// Uninterrupted reference for the bit-identity checks.
struct Reference {
  Fitness fitness = 0;
  std::uint64_t genotype_hash = 0;
  sim::SimTime sim_time = 0;
};

Reference standalone_reference(const MissionSpec& spec) {
  const JobOutcome alone = run_spec_standalone(spec);
  Reference ref;
  ref.fitness = alone.intrinsic.es.best_fitness;
  ref.genotype_hash = alone.intrinsic.es.best.hash();
  ref.sim_time = alone.stats.mission_time;
  return ref;
}

/// Thread-safe holder for the latest checkpoint a sink observed.
struct LatestCheckpoint {
  std::mutex mutex;
  std::shared_ptr<const platform::MissionCheckpoint> state;

  MissionCheckpointing checkpointing(Generation every = 0) {
    MissionCheckpointing ck;
    ck.every = every;
    ck.sink = [this](const platform::MissionCheckpoint& saved) {
      const std::lock_guard lock(mutex);
      state = std::make_shared<platform::MissionCheckpoint>(saved);
    };
    return ck;
  }

  std::shared_ptr<const platform::MissionCheckpoint> get() {
    const std::lock_guard lock(mutex);
    return state;
  }
};

/// Finds an array currently leased by a running job (any job).
std::size_t leased_array(ArrayPool& pool) {
  for (int tries = 0; tries < 10000; ++tries) {
    for (const ArrayPool::ArrayHealth& health : pool.array_health()) {
      if (health.state == ArrayPool::ArrayHealth::State::kLeased) {
        return health.id;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  throw std::runtime_error("no array was ever leased");
}

// --- task-exception propagation ---------------------------------------------

TEST(Robustness, JobBodyExceptionBecomesFailedResultNotCrash) {
  ArrayPool pool(small_pool(1));
  const auto runner =
      pool.submit(JobConfig{.name = "poison", .lanes = 1},
                  [](MissionContext&, JobOutcome&) {
                    throw std::runtime_error("boom: poisoned job body");
                  });
  runner->result();
  EXPECT_EQ(runner->status(), JobStatus::kFailed);
  EXPECT_NE(runner->result().error.find("boom"), std::string::npos);

  // The pool (and its worker threads) survived; the next job is fine.
  const MissionSpec spec = quick_spec("after-poison", 8, 1);
  const auto next = pool.submit(make_job_config(spec), make_job_body(spec));
  next->result();
  EXPECT_EQ(next->status(), JobStatus::kDone);
  EXPECT_EQ(pool.pool_stats().failed, 1u);
  EXPECT_EQ(pool.pool_stats().done, 1u);
}

TEST(Robustness, TaskThrowFaultFailsExactlyOneJobCleanly) {
  fault::ScopedPlan plan("task_throw=count:1");
  ArrayPool pool(small_pool(1));
  const MissionSpec first = quick_spec("seu-victim", 8, 1);
  const auto victim =
      pool.submit(make_job_config(first), make_job_body(first));
  victim->result();
  EXPECT_EQ(victim->status(), JobStatus::kFailed);
  EXPECT_FALSE(victim->result().error.empty());

  // count:1 is spent; the follow-up job runs clean on the same pool.
  const MissionSpec second = quick_spec("seu-survivor", 8, 1);
  const auto survivor =
      pool.submit(make_job_config(second), make_job_body(second));
  survivor->result();
  EXPECT_EQ(survivor->status(), JobStatus::kDone);
}

// --- deadlines --------------------------------------------------------------

TEST(Robustness, DeadlineExpiryFailsTheJobAndIsCounted) {
  ArrayPool pool(small_pool(1));
  MissionSpec spec = quick_spec("overdue", 100000000, 1);
  ASSERT_EQ(apply_spec_option(spec, "deadline-ms", "50"), "");
  ASSERT_EQ(spec.deadline_ms, 50u);
  const auto runner =
      pool.submit(make_job_config(spec), make_job_body(spec));
  runner->result();
  EXPECT_EQ(runner->status(), JobStatus::kFailed);
  EXPECT_TRUE(runner->deadline_exceeded());
  EXPECT_FALSE(runner->result().error.empty());
  EXPECT_EQ(pool.pool_stats().deadline_expired, 1u);

  // A deadline generous enough never fires.
  MissionSpec relaxed = quick_spec("on-time", 8, 1);
  relaxed.deadline_ms = 60000;
  const auto ok =
      pool.submit(make_job_config(relaxed), make_job_body(relaxed));
  ok->result();
  EXPECT_EQ(ok->status(), JobStatus::kDone);
  EXPECT_FALSE(ok->deadline_exceeded());
}

// --- lane quarantine --------------------------------------------------------

TEST(Robustness, QuarantineFreeArrayShrinksCapacityAndHealRestoresIt) {
  ArrayPool pool(small_pool(2));
  EXPECT_EQ(pool.healthy_arrays(), 2u);
  pool.quarantine_array(0);
  EXPECT_EQ(pool.healthy_arrays(), 1u);
  EXPECT_EQ(pool.array_health()[0].state,
            ArrayPool::ArrayHealth::State::kQuarantined);
  EXPECT_EQ(pool.pool_stats().quarantined, 1u);

  // Degraded scheduling: a 1-lane job still runs on the healthy array.
  const MissionSpec spec = quick_spec("degraded", 8, 1);
  const auto runner =
      pool.submit(make_job_config(spec), make_job_body(spec));
  runner->result();
  EXPECT_EQ(runner->status(), JobStatus::kDone);

  EXPECT_TRUE(pool.heal_array(0));
  EXPECT_EQ(pool.healthy_arrays(), 2u);
  EXPECT_FALSE(pool.heal_array(0));  // already healthy
}

TEST(Robustness, QuarantineLeasedArrayPreemptsItsJob) {
  ArrayPool pool(small_pool(2));
  const MissionSpec spec = quick_spec("evicted", 100000000, 2);
  const auto runner =
      pool.submit(make_job_config(spec), make_job_body(spec));
  const std::size_t id = leased_array(pool);
  pool.quarantine_array(id);
  // Leased: the quarantine is pending until the lease releases, and the
  // job is asked to preempt at its next generation boundary.
  runner->result();
  EXPECT_EQ(runner->status(), JobStatus::kPreempted);
  EXPECT_EQ(pool.healthy_arrays(), 1u);
  EXPECT_EQ(pool.array_health()[id].state,
            ArrayPool::ArrayHealth::State::kQuarantined);
  EXPECT_EQ(pool.pool_stats().preempted, 1u);
}

TEST(Robustness, QuarantineFailsQueuedJobsThatCanNeverFit) {
  ArrayPool pool(small_pool(2));
  const MissionSpec hog = quick_spec("hog", 100000000, 1);
  const auto hog_runner =
      pool.submit(make_job_config(hog), make_job_body(hog));
  const std::size_t hog_array = leased_array(pool);
  const MissionSpec wide = quick_spec("wide", 10, 2);
  const auto wide_runner =
      pool.submit(make_job_config(wide), make_job_body(wide));

  // Quarantining the FREE array leaves healthy capacity 1: the queued
  // 2-lane job can never be placed and must fail now, not wait forever.
  pool.quarantine_array(hog_array == 0 ? 1 : 0);
  wide_runner->result();
  EXPECT_EQ(wide_runner->status(), JobStatus::kFailed);
  EXPECT_FALSE(wide_runner->result().error.empty());

  hog_runner->cancel();
  hog_runner->wait();
}

// --- checkpoint-based migration ---------------------------------------------

TEST(Robustness, PreemptedJobResumesOnEqualSliceBitIdentically) {
  // Long enough that the quarantine below always lands mid-flight.
  const MissionSpec spec = quick_spec("migrant", 400, 2);
  const Reference ref = standalone_reference(spec);

  ArrayPool pool(small_pool(3));
  LatestCheckpoint latest;
  const auto first = pool.submit(make_job_config(spec),
                                 make_job_body(spec, latest.checkpointing()));
  const std::size_t victim = leased_array(pool);
  // Let it make real progress first, so the preempt checkpoint captures a
  // genuinely mid-mission state rather than generation zero.
  while (first->waves_completed() < 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pool.quarantine_array(victim);
  first->result();
  ASSERT_EQ(first->status(), JobStatus::kPreempted);
  const auto resume = latest.get();
  ASSERT_NE(resume, nullptr);
  ASSERT_FALSE(resume->lane_genotypes.empty());

  // Resubmit from the checkpoint; 2 healthy arrays still grant the full
  // 2-lane slice, so the result is bit-identical INCLUDING simulated
  // time.
  MissionCheckpointing ck;
  ck.resume = resume;
  const auto second =
      pool.submit(make_job_config(spec), make_job_body(spec, ck));
  second->result();
  ASSERT_EQ(second->status(), JobStatus::kDone);
  const JobOutcome& outcome = second->result();
  EXPECT_EQ(outcome.intrinsic.es.best_fitness, ref.fitness);
  EXPECT_EQ(outcome.intrinsic.es.best.hash(), ref.genotype_hash);
  EXPECT_EQ(outcome.stats.mission_time, ref.sim_time);
}

TEST(Robustness, RestoreOntoWiderSliceIsBitIdenticalIncludingSimTime) {
  const MissionSpec spec = quick_spec("widen", 30, 2);
  const Reference ref = standalone_reference(spec);

  LatestCheckpoint latest;
  MissionCheckpointing ck = latest.checkpointing();
  ck.preempt_after = 10;
  const JobOutcome preempted = run_spec_standalone(spec, nullptr, ck);
  EXPECT_TRUE(preempted.intrinsic.preempted);
  ASSERT_NE(latest.get(), nullptr);

  // 3 physical arrays host the checkpoint's 2 logical lanes: the extra
  // array is never booked, so even simulated time matches.
  MissionSpec wider = spec;
  wider.lanes = 3;
  MissionCheckpointing restore;
  restore.resume = latest.get();
  const JobOutcome resumed = run_spec_standalone(wider, nullptr, restore);
  EXPECT_EQ(resumed.intrinsic.es.best_fitness, ref.fitness);
  EXPECT_EQ(resumed.intrinsic.es.best.hash(), ref.genotype_hash);
  EXPECT_EQ(resumed.stats.mission_time, ref.sim_time);
}

TEST(Robustness, RestoreOntoNarrowerSliceKeepsFitnessAndGenotype) {
  const MissionSpec spec = quick_spec("narrow", 30, 2);
  const Reference ref = standalone_reference(spec);

  LatestCheckpoint latest;
  MissionCheckpointing ck = latest.checkpointing();
  ck.preempt_after = 10;
  static_cast<void>(run_spec_standalone(spec, nullptr, ck));
  ASSERT_NE(latest.get(), nullptr);

  // 1 physical array hosts both logical lanes: evolution (offspring,
  // RNG, fitness) is bit-identical; simulated time is honestly
  // recomputed for the multiplexed fabric rather than pinned to the
  // 2-array reference, so only its existence is asserted here.
  MissionSpec narrower = spec;
  narrower.lanes = 1;
  MissionCheckpointing restore;
  restore.resume = latest.get();
  const JobOutcome resumed = run_spec_standalone(narrower, nullptr, restore);
  EXPECT_EQ(resumed.intrinsic.es.best_fitness, ref.fitness);
  EXPECT_EQ(resumed.intrinsic.es.best.hash(), ref.genotype_hash);
  EXPECT_GT(resumed.stats.mission_time, 0u);
}

}  // namespace
}  // namespace ehw::sched

namespace ehw::svc {
namespace {

sched::MissionSpec service_spec(const std::string& name,
                                Generation generations,
                                std::size_t lanes = 2) {
  sched::MissionSpec spec;
  spec.kind = sched::MissionKind::kDenoise;
  spec.name = name;
  spec.lanes = lanes;
  spec.generations = generations;
  spec.size = 16;
  spec.seed = 5;
  return spec;
}

ServerConfig small_server(std::size_t arrays) {
  ServerConfig config;
  config.pool.num_arrays = arrays;
  config.pool.line_width = 16;
  return config;
}

std::string fresh_dir(const std::string& leaf) {
  const std::string dir = testing::TempDir() + leaf;
  static_cast<void>(remove_file(dir + "/journal.jsonl"));
  static_cast<void>(remove_file(dir + "/warm.json"));
  for (std::uint64_t id = 1; id <= 16; ++id) {
    static_cast<void>(
        remove_file(dir + "/job-" + std::to_string(id) + ".ckpt"));
  }
  return dir;
}

/// Blocks until the named job reports at least `waves` progress.
void wait_for_waves(Client& client, std::uint64_t job, std::uint64_t waves) {
  for (int tries = 0; tries < 20000; ++tries) {
    const Json status = client.status(job);
    if (status.get_number("waves", 0) >= static_cast<double>(waves)) return;
    const std::string state = status.get_string("status", "?");
    ASSERT_TRUE(state == "queued" || state == "running" ||
                state == "preempted")
        << "job reached " << state << " before " << waves << " waves";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "job never reached " << waves << " waves";
}

/// One leased array id, polled from the server's pool.
std::size_t leased_array(Server& server) {
  for (int tries = 0; tries < 10000; ++tries) {
    for (const auto& health : server.pool().array_health()) {
      if (health.state ==
          sched::ArrayPool::ArrayHealth::State::kLeased) {
        return health.id;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  throw std::runtime_error("no array was ever leased");
}

TEST(SvcRobustness, QuarantineMidFlightMigratesMissionBitIdentically) {
  const sched::MissionSpec spec = service_spec("migrate-me", 120);
  const sched::JobOutcome alone = sched::run_spec_standalone(spec);

  Server server(small_server(3));
  Client client(server.port());
  const Client::Submitted submitted = client.submit(spec);
  ASSERT_TRUE(submitted.ok) << submitted.error;
  wait_for_waves(client, submitted.job, 10);

  // Pull a leased array out from under the mission: the scheduler
  // preempts it at a generation boundary and the server migrates it onto
  // the healthy remainder (still 2 arrays — a full-width slice).
  server.pool().quarantine_array(leased_array(server));
  const Json result = client.result(submitted.job);
  ASSERT_TRUE(result.get_bool("ok", false));
  EXPECT_EQ(result.get_string("status", "?"), "done");
  EXPECT_EQ(static_cast<Fitness>(result.get_number("best_fitness", 0)),
            alone.intrinsic.es.best_fitness);
  EXPECT_EQ(result.get_string("genotype_hash", "?"),
            hash_hex(alone.intrinsic.es.best.hash()));
  EXPECT_EQ(result.get_string("sim_ns", "?"),
            std::to_string(alone.stats.mission_time));
  EXPECT_EQ(server.service_stats().migrations, 1u);

  // The health op reports the degraded pool and the migration.
  Json health_req = Json::object();
  health_req.set("op", "health");
  const Json health = client.request(health_req);
  ASSERT_TRUE(health.get_bool("ok", false));
  EXPECT_EQ(health.get_number("quarantined", 0), 1.0);
  EXPECT_EQ(health.get_number("healthy", 0), 2.0);
  EXPECT_EQ(health.get_number("migrations", 0), 1.0);
  server.stop();
}

TEST(SvcRobustness, MigrationOntoNarrowerSliceKeepsFitnessAndGenotype) {
  const sched::MissionSpec spec = service_spec("degrade-me", 120);
  const sched::JobOutcome alone = sched::run_spec_standalone(spec);

  Server server(small_server(2));
  Client client(server.port());
  const Client::Submitted submitted = client.submit(spec);
  ASSERT_TRUE(submitted.ok) << submitted.error;
  wait_for_waves(client, submitted.job, 10);

  // Only 1 healthy array remains for the 2-lane mission: it migrates
  // onto a degraded slice. Fitness/genotype stay bit-identical; the
  // simulated time honestly reflects the lost parallelism.
  server.pool().quarantine_array(leased_array(server));
  const Json result = client.result(submitted.job);
  ASSERT_TRUE(result.get_bool("ok", false));
  EXPECT_EQ(result.get_string("status", "?"), "done");
  EXPECT_EQ(static_cast<Fitness>(result.get_number("best_fitness", 0)),
            alone.intrinsic.es.best_fitness);
  EXPECT_EQ(result.get_string("genotype_hash", "?"),
            hash_hex(alone.intrinsic.es.best.hash()));
  EXPECT_EQ(server.service_stats().migrations, 1u);
  server.stop();
}

TEST(SvcRobustness, UnmigratableCascadeFailsCleanlyAndServiceSurvives) {
  Server server(small_server(2));
  Client client(server.port());
  sched::MissionSpec spec = service_spec("stuck-cascade", 200);
  spec.kind = sched::MissionKind::kCascade;
  const Client::Submitted submitted = client.submit(spec);
  ASSERT_TRUE(submitted.ok) << submitted.error;
  wait_for_waves(client, submitted.job, 10);

  // A cascade's stage count IS its structure: with one array quarantined
  // only 1 healthy remains, no slice can host the 2-stage chain, and the
  // mission fails terminally — but cleanly, with the daemon intact.
  server.pool().quarantine_array(leased_array(server));
  const Json result = client.result(submitted.job);
  ASSERT_TRUE(result.get_bool("ok", false));
  EXPECT_EQ(result.get_string("status", "?"), "failed");
  EXPECT_NE(result.get_string("error", "").find("migration failed"),
            std::string::npos);

  const sched::MissionSpec after = service_spec("after-failure", 8, 1);
  const Client::Submitted next = client.submit(after);
  ASSERT_TRUE(next.ok) << next.error;
  EXPECT_EQ(client.result(next.job).get_string("status", "?"), "done");
  server.stop();
}

// --- reconnecting client ----------------------------------------------------

TEST(SvcRobustness, IdempotentResubmitDedupesAcrossDaemonRestart) {
  const std::string dir = fresh_dir("ehw_robust_restart");
  const sched::MissionSpec spec = service_spec("once-only", 10, 1);
  RetryPolicy policy;
  policy.retries = 2;
  policy.backoff_ms = 20;

  std::uint16_t port = 0;
  std::string first_fitness;
  {
    ServerConfig config = small_server(2);
    config.journal_dir = dir;
    Server server(config);
    port = server.port();
    const IdempotentSubmit submitted =
        submit_idempotent(port, "127.0.0.1", spec, policy);
    ASSERT_TRUE(submitted.ok) << submitted.error;
    EXPECT_FALSE(submitted.already_known);
    const Json result =
        with_retry(port, "127.0.0.1", policy, [&](Client& client) {
          return client.result_by_name(spec.name);
        });
    ASSERT_EQ(result.get_string("status", "?"), "done");
    first_fitness = result.dump();

    // Same daemon, same name: the probe resolves it, nothing reruns.
    const IdempotentSubmit again =
        submit_idempotent(port, "127.0.0.1", spec, policy);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_TRUE(again.already_known);
    EXPECT_EQ(again.job, submitted.job);
    server.stop();
  }

  // Restart on the same port with the same journal. The resubmit's probe
  // finds the replayed mission — journal dedup across incarnations.
  ServerConfig config = small_server(2);
  config.journal_dir = dir;
  config.port = port;
  Server server(config);
  const IdempotentSubmit after_restart =
      submit_idempotent(port, "127.0.0.1", spec, policy);
  ASSERT_TRUE(after_restart.ok) << after_restart.error;
  EXPECT_TRUE(after_restart.already_known);
  const Json replayed =
      with_retry(port, "127.0.0.1", policy, [&](Client& client) {
        return client.result_by_name(spec.name);
      });
  EXPECT_EQ(replayed.get_string("status", "?"), "done");
  EXPECT_TRUE(replayed.get_bool("replayed", false));
  // The re-served result carries the journaled run's numbers.
  const Json original = Json::parse(first_fitness);
  EXPECT_EQ(replayed.get_number("best_fitness", -1),
            original.get_number("best_fitness", -2));
  EXPECT_EQ(replayed.get_string("genotype_hash", "a"),
            original.get_string("genotype_hash", "b"));
  server.stop();
}

TEST(SvcRobustness, WithRetryReconnectsWithBackoffWhileDaemonComesUp) {
  const std::string dir = fresh_dir("ehw_robust_backoff");
  const sched::MissionSpec spec = service_spec("latecomer", 8, 1);

  std::uint16_t port = 0;
  {
    ServerConfig config = small_server(2);
    config.journal_dir = dir;
    Server warmup(config);
    port = warmup.port();
    RetryPolicy eager;
    const IdempotentSubmit submitted =
        submit_idempotent(port, "127.0.0.1", spec, eager);
    ASSERT_TRUE(submitted.ok) << submitted.error;
    Client client(port);
    ASSERT_EQ(client.result(submitted.job).get_string("status", "?"),
              "done");
    warmup.stop();
  }  // daemon is now DOWN

  // Fail-fast policy: with the daemon down, no retries means an error.
  RetryPolicy fail_fast;
  const IdempotentSubmit refused =
      submit_idempotent(port, "127.0.0.1", spec, fail_fast);
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.code, "unreachable");

  // Patient policy: the daemon restarts while with_retry is backing off;
  // the reconnect lands and the journal-replayed mission dedupes.
  std::unique_ptr<Server> revived;
  std::thread restarter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    ServerConfig config = small_server(2);
    config.journal_dir = dir;
    config.port = port;
    revived = std::make_unique<Server>(config);
  });
  RetryPolicy patient;
  patient.retries = 30;
  patient.backoff_ms = 25;
  const IdempotentSubmit reconnected =
      submit_idempotent(port, "127.0.0.1", spec, patient);
  restarter.join();
  ASSERT_TRUE(reconnected.ok) << reconnected.error;
  EXPECT_TRUE(reconnected.already_known);
  revived->stop();
}

TEST(SvcRobustness, SubmitBatchStaysAllOrNothingUnderInjectedFaults) {
  // Journal fsyncs fail and checkpoint writes error: durability degrades,
  // admission atomicity and results must not.
  fault::ScopedPlan plan("fsync;checkpoint_io");
  ServerConfig config = small_server(2);
  config.journal_dir = fresh_dir("ehw_robust_batch");
  config.max_inflight = 2;
  Server server(config);
  Client client(server.port());

  std::vector<sched::MissionSpec> three;
  three.push_back(service_spec("bat-0", 8, 1));
  three.push_back(service_spec("bat-1", 8, 1));
  three.push_back(service_spec("bat-2", 8, 1));
  const Client::BatchSubmitted rejected = client.submit_batch(three);
  ASSERT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.code, "queue_full");
  EXPECT_EQ(client.list().get("jobs")->as_array().size(), 0u);

  three.pop_back();
  const Client::BatchSubmitted accepted = client.submit_batch(three);
  ASSERT_TRUE(accepted.ok) << accepted.error;
  ASSERT_EQ(accepted.jobs.size(), 2u);
  for (std::size_t i = 0; i < accepted.jobs.size(); ++i) {
    const Json result = client.result(accepted.jobs[i]);
    EXPECT_EQ(result.get_string("status", "?"), "done") << i;
    const sched::JobOutcome alone = sched::run_spec_standalone(three[i]);
    EXPECT_EQ(static_cast<Fitness>(result.get_number("best_fitness", 0)),
              alone.intrinsic.es.best_fitness);
  }
  EXPECT_GT(fault::hits(fault::Site::kJournalFsync), 0u);
  server.stop();
}

// --- cluster failover -------------------------------------------------------

TEST(SvcRobustness, BackendDeathMidMissionFailsOverFromCheckpoint) {
  const sched::MissionSpec spec = service_spec("cluster-failover", 200, 1);
  const sched::JobOutcome alone = sched::run_spec_standalone(spec);

  // Two durable backends; checkpoints every 4 generations give the
  // forwarder something to resume the mission from.
  ServerConfig c0 = small_server(2);
  c0.journal_dir = fresh_dir("ehw_cluster_b0");
  c0.checkpoint_every = 4;
  ServerConfig c1 = small_server(2);
  c1.journal_dir = fresh_dir("ehw_cluster_b1");
  c1.checkpoint_every = 4;
  Server b0(c0);
  Server b1(c1);

  ForwarderConfig fc;
  BackendConfig e0;
  e0.port = b0.port();
  e0.journal_dir = c0.journal_dir;
  BackendConfig e1;
  e1.port = b1.port();
  e1.journal_dir = c1.journal_dir;
  fc.backends = {e0, e1};
  // A poll cadence far beyond the test window: the chaos hook marks a
  // backend dead while its in-process server keeps running, and a
  // successful poll in between would resurrect it mid-test.
  fc.poll_ms = 60'000;
  Forwarder forwarder(std::move(fc));
  Client client(forwarder.port());

  const Client::Submitted submitted = client.submit(spec);
  ASSERT_TRUE(submitted.ok) << submitted.error;
  // Past the third checkpoint: the failover must find a sidecar and
  // resume, not restart from scratch.
  wait_for_waves(client, submitted.job, 12);
  const Json status = client.status(submitted.job);
  const auto backend =
      static_cast<std::size_t>(status.get_number("backend", 0));

  forwarder.mark_backend_down(backend);

  // The blocking result ride through the failover: the route moves to
  // the survivor, resumes from the dead backend's checkpoint, and the
  // answer is bit-identical to an uninterrupted standalone run.
  const Json result = client.result(submitted.job);
  EXPECT_EQ(result.get_string("status", "?"), "done");
  EXPECT_EQ(static_cast<Fitness>(result.get_number("best_fitness", 0)),
            alone.intrinsic.es.best_fitness);
  EXPECT_EQ(result.get_string("genotype_hash", "?"),
            hash_hex(alone.intrinsic.es.best.hash()));
  EXPECT_EQ(result.get_string("sim_ns", "?"),
            std::to_string(alone.stats.mission_time));

  const ForwarderStats stats = forwarder.forwarder_stats();
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_EQ(stats.failover_resumed, 1u);
  EXPECT_EQ(stats.backends_up, 1u);

  forwarder.stop();
  b0.stop();
  b1.stop();
}

TEST(SvcRobustness, BackendDeathWithoutCheckpointRestartsFromScratch) {
  // No journal dirs configured at the forwarder: failover cannot read a
  // checkpoint, so the mission restarts from scratch on the survivor —
  // slower, but still bit-identical.
  const sched::MissionSpec spec = service_spec("cluster-rescratch", 80, 1);
  const sched::JobOutcome alone = sched::run_spec_standalone(spec);

  Server b0(small_server(2));
  Server b1(small_server(2));
  ForwarderConfig fc;
  BackendConfig e0;
  e0.port = b0.port();
  BackendConfig e1;
  e1.port = b1.port();
  fc.backends = {e0, e1};
  fc.poll_ms = 60'000;
  Forwarder forwarder(std::move(fc));
  Client client(forwarder.port());

  const Client::Submitted submitted = client.submit(spec);
  ASSERT_TRUE(submitted.ok) << submitted.error;
  wait_for_waves(client, submitted.job, 4);
  const Json status = client.status(submitted.job);
  forwarder.mark_backend_down(
      static_cast<std::size_t>(status.get_number("backend", 0)));

  const Json result = client.result(submitted.job);
  EXPECT_EQ(result.get_string("status", "?"), "done");
  EXPECT_EQ(static_cast<Fitness>(result.get_number("best_fitness", 0)),
            alone.intrinsic.es.best_fitness);
  EXPECT_EQ(result.get_string("genotype_hash", "?"),
            hash_hex(alone.intrinsic.es.best.hash()));

  const ForwarderStats stats = forwarder.forwarder_stats();
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_EQ(stats.failover_resumed, 0u);

  forwarder.stop();
  b0.stop();
  b1.stop();
}

TEST(SvcRobustness, NoSurvivingBackendFailsTheRouteCleanly) {
  Server b0(small_server(2));
  ForwarderConfig fc;
  BackendConfig e0;
  e0.port = b0.port();
  fc.backends = {e0};
  fc.poll_ms = 60'000;
  Forwarder forwarder(std::move(fc));
  Client client(forwarder.port());

  const sched::MissionSpec spec = service_spec("cluster-doomed", 200, 1);
  const Client::Submitted submitted = client.submit(spec);
  ASSERT_TRUE(submitted.ok) << submitted.error;
  wait_for_waves(client, submitted.job, 2);
  forwarder.mark_backend_down(0);

  // The only backend is gone: the route finishes "failed" locally with
  // the reason, instead of hanging the blocked result forever.
  const Json result = client.result(submitted.job);
  EXPECT_EQ(result.get_string("status", "?"), "failed");
  EXPECT_NE(result.get_string("error", "").find("failover"),
            std::string::npos);
  EXPECT_EQ(forwarder.forwarder_stats().failovers, 0u);

  forwarder.stop();
  b0.stop();
}

}  // namespace
}  // namespace ehw::svc
