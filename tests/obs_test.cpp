// Tests for ehw/obs: log-bucketed histogram boundaries and merges, the
// metric registry (stable handles, Prometheus/JSON exposition, scrape
// racing live mutation), the span tracer (ring wraparound, concurrent
// recording, Chrome trace-event export round-trip), mission profile
// collection, and the shared duration formatter. The concurrency cases
// run under CI's TSan job (suite names match its Obs regex).

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ehw/common/json.hpp"
#include "ehw/common/table.hpp"
#include "ehw/obs/metrics.hpp"
#include "ehw/obs/trace.hpp"

namespace ehw {
namespace {

// --- Histogram --------------------------------------------------------------

TEST(ObsHistogram, BucketBoundariesFollowBitWidth) {
  // Bucket 0 is the exact value 0; bucket b >= 1 is [2^(b-1), 2^b - 1].
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(obs::Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(obs::Histogram::bucket_of(~std::uint64_t{0}), 64u);

  EXPECT_EQ(obs::Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(obs::Histogram::bucket_upper(10), 1023u);
  EXPECT_EQ(obs::Histogram::bucket_upper(64), ~std::uint64_t{0});
  // Every value lands inside its own bucket's bounds.
  for (const std::uint64_t v : {0ull, 1ull, 7ull, 100ull, 4096ull,
                                (1ull << 40) + 5, ~0ull}) {
    const std::size_t b = obs::Histogram::bucket_of(v);
    EXPECT_LE(v, obs::Histogram::bucket_upper(b)) << v;
    if (b > 0) EXPECT_GT(v, obs::Histogram::bucket_upper(b - 1)) << v;
  }
}

TEST(ObsHistogram, RecordsAndSnapshots) {
  obs::Histogram hist;
  hist.record(0);
  hist.record(100);
  hist.record(100);
  hist.record(5000);
  const obs::Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 5200u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[obs::Histogram::bucket_of(100)], 2u);
  EXPECT_EQ(snap.buckets[obs::Histogram::bucket_of(5000)], 1u);
  EXPECT_DOUBLE_EQ(snap.mean(), 1300.0);
}

TEST(ObsHistogram, SnapshotMergeIsExact) {
  obs::Histogram a;
  obs::Histogram b;
  for (std::uint64_t v = 0; v < 100; ++v) a.record(v);
  for (std::uint64_t v = 100; v < 300; ++v) b.record(v);
  obs::Histogram::Snapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count, 300u);
  EXPECT_EQ(merged.sum, 299u * 300u / 2u);
  std::uint64_t total = 0;
  for (std::size_t bucket = 0; bucket < obs::Histogram::kBuckets; ++bucket) {
    total += merged.buckets[bucket];
  }
  EXPECT_EQ(total, 300u);
}

TEST(ObsHistogram, QuantileLandsInTheRightBucket) {
  obs::Histogram hist;
  for (int i = 0; i < 1000; ++i) hist.record(100);  // bucket 7: [64,127]
  const obs::Histogram::Snapshot snap = hist.snapshot();
  EXPECT_GE(snap.quantile(0.5), 64.0);
  EXPECT_LE(snap.quantile(0.5), 128.0);
  EXPECT_LE(snap.quantile(0.1), snap.quantile(0.9));
  // Degenerate inputs stay sane.
  EXPECT_EQ(obs::Histogram().snapshot().quantile(0.5), 0.0);
  EXPECT_GE(snap.quantile(-1.0), 0.0);
  EXPECT_LE(snap.quantile(2.0), 128.0);
}

// --- Registry ---------------------------------------------------------------

TEST(ObsRegistry, HandlesAreFindOrCreateAndStable) {
  obs::Registry registry;
  obs::Counter& c1 = registry.counter("mpa_test_total");
  obs::Counter& c2 = registry.counter("mpa_test_total");
  EXPECT_EQ(&c1, &c2);
  c1.add();
  c2.add(2);
  EXPECT_EQ(c1.value(), 3u);
  obs::Gauge& g = registry.gauge("mpa_test_level");
  g.set(2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(registry.gauge("mpa_test_level").value(), 3.0);
}

TEST(ObsRegistry, PrometheusExpositionShape) {
  obs::Registry registry;
  registry.counter("mpa_widgets_total").add(7);
  registry.gauge("mpa_backend_up{backend=\"2\"}").set(1.0);
  registry.histogram("mpa_latency_ns").record(100);
  registry.histogram("mpa_latency_ns").record(5000);
  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE mpa_widgets_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("mpa_widgets_total 7\n"), std::string::npos);
  // TYPE lines carry the base name; the sample keeps its labels.
  EXPECT_NE(text.find("# TYPE mpa_backend_up gauge\n"), std::string::npos);
  EXPECT_NE(text.find("mpa_backend_up{backend=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE mpa_latency_ns histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("mpa_latency_ns_bucket{le=\"127\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("mpa_latency_ns_bucket{le=\"8191\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("mpa_latency_ns_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("mpa_latency_ns_sum 5100\n"), std::string::npos);
  EXPECT_NE(text.find("mpa_latency_ns_count 2\n"), std::string::npos);
}

TEST(ObsRegistry, JsonExpositionRoundTrips) {
  obs::Registry registry;
  registry.counter("events").add(42);
  registry.gauge("depth").set(3.0);
  registry.histogram("lat").record(100);
  const Json parsed = Json::parse(registry.to_json().dump());
  EXPECT_EQ(parsed.get("counters")->get_string("events", ""), "42");
  EXPECT_DOUBLE_EQ(parsed.get("gauges")->get_number("depth", 0), 3.0);
  const Json* lat = parsed.get("histograms")->get("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->get_string("count", ""), "1");
  EXPECT_EQ(lat->get_string("sum", ""), "100");
  ASSERT_TRUE(lat->get("buckets")->is_array());
  EXPECT_EQ(lat->get("buckets")->as_array().size(), 1u);
}

TEST(ObsRegistry, ScrapeRacesLiveMutationSafely) {
  // Writers hammer a counter and a histogram while a reader snapshots
  // and renders — the relaxed-atomic contract TSan verifies in CI.
  obs::Registry registry;
  obs::Counter& counter = registry.counter("race_total");
  obs::Histogram& hist = registry.histogram("race_ns");
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&counter, &hist] {
      for (int i = 0; i < kPerWriter; ++i) {
        counter.add();
        hist.record(static_cast<std::uint64_t>(i));
      }
    });
  }
  std::string last_text;
  for (int i = 0; i < 50; ++i) {
    last_text = registry.to_prometheus();
    (void)registry.to_json();
    (void)hist.snapshot();
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(hist.snapshot().count,
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
  EXPECT_FALSE(last_text.empty());
}

// --- Tracer -----------------------------------------------------------------

/// The tracer is process-global; every test starts and ends with a
/// disarmed, empty ring set so suites can't leak spans into each other.
class ObsTracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::global().disarm();
    obs::Tracer::global().clear();
  }
  void TearDown() override {
    obs::Tracer::global().disarm();
    obs::Tracer::global().clear();
  }
};

TEST_F(ObsTracerTest, DisarmedGuardsRecordNothing) {
  {
    EHW_TRACE_SPAN("invisible");
  }
  EXPECT_EQ(obs::Tracer::global().recorded(), 0u);
  EXPECT_FALSE(obs::Tracer::armed());
}

TEST_F(ObsTracerTest, ArmedGuardsRecordSpans) {
  obs::Tracer::global().arm();
  {
    EHW_TRACE_SPAN("phase_a");
    EHW_TRACE_SPAN("phase_b");
  }
  obs::Tracer::global().disarm();
  EXPECT_EQ(obs::Tracer::global().recorded(), 2u);
  EXPECT_EQ(obs::Tracer::global().dropped(), 0u);
}

TEST_F(ObsTracerTest, RingWrapsAndCountsDrops) {
  obs::Tracer& tracer = obs::Tracer::global();
  const std::uint64_t n = obs::Tracer::kRingCapacity + 10;
  for (std::uint64_t i = 0; i < n; ++i) {
    tracer.record("wrap", i, 1);
  }
  EXPECT_EQ(tracer.recorded(), n);
  EXPECT_EQ(tracer.dropped(), 10u);
  // Export keeps the newest kRingCapacity spans for this thread.
  const Json trace = tracer.export_chrome();
  const auto& events = trace.get("traceEvents")->as_array();
  EXPECT_EQ(events.size(), obs::Tracer::kRingCapacity);
  // The oldest surviving span is #10 (ts in µs: 10ns / 1e3).
  EXPECT_DOUBLE_EQ(events.front().get_number("ts", -1), 10.0 / 1e3);
}

TEST_F(ObsTracerTest, ChromeExportRoundTripsThroughJson) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.record("compile", 2500, 1500);
  tracer.record("wave", 4000, 250);
  const Json parsed = Json::parse(tracer.export_chrome().dump());
  EXPECT_EQ(parsed.get_string("displayTimeUnit", ""), "ms");
  const Json* events = parsed.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->as_array().size(), 2u);
  const Json& first = events->as_array()[0];
  EXPECT_EQ(first.get_string("name", ""), "compile");
  EXPECT_EQ(first.get_string("ph", ""), "X");  // complete event
  EXPECT_DOUBLE_EQ(first.get_number("ts", 0), 2.5);   // µs
  EXPECT_DOUBLE_EQ(first.get_number("dur", 0), 1.5);  // µs
  EXPECT_EQ(first.get_number("pid", 0), 1.0);
  EXPECT_GE(first.get_number("tid", 0), 1.0);
}

TEST_F(ObsTracerTest, ClearEmptiesEveryRing) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.record("gone", 1, 1);
  tracer.clear();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.export_chrome().get("traceEvents")->as_array().size(), 0u);
}

TEST_F(ObsTracerTest, ConcurrentSpanRecording) {
  obs::Tracer::global().arm();
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 2000;  // < kRingCapacity: no drops
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        EHW_TRACE_SPAN("worker_phase");
      }
    });
  }
  // Export concurrently with the recorders (the scrape path).
  for (int i = 0; i < 20; ++i) {
    (void)obs::Tracer::global().export_chrome();
    (void)obs::Tracer::global().recorded();
  }
  for (std::thread& t : threads) t.join();
  obs::Tracer::global().disarm();
  EXPECT_EQ(obs::Tracer::global().recorded(),
            static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(obs::Tracer::global().dropped(), 0u);
  // Each recording thread got its own ring (distinct export tids).
  const Json trace = obs::Tracer::global().export_chrome();
  std::set<double> tids;
  for (const Json& event : trace.get("traceEvents")->as_array()) {
    tids.insert(event.get_number("tid", 0));
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

// --- Profiles ---------------------------------------------------------------

TEST(ObsProfile, CollectorAggregatesByPhaseInFirstSeenOrder) {
  obs::ProfileCollector profile;
  EXPECT_TRUE(profile.empty());
  // Names are identity-compared literals; reuse the same pointers.
  static const char* const kCompile = "compile";
  static const char* const kWave = "wave";
  profile.add(kCompile, 100);
  profile.add(kWave, 10);
  profile.add(kWave, 20);
  EXPECT_FALSE(profile.empty());
  const Json json = profile.to_json();
  const auto& phases = json.get("phases")->as_array();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].get_string("phase", ""), "compile");
  EXPECT_EQ(phases[0].get_number("count", 0), 1.0);
  EXPECT_EQ(phases[0].get_string("total_ns", ""), "100");
  EXPECT_EQ(phases[1].get_string("phase", ""), "wave");
  EXPECT_EQ(phases[1].get_number("count", 0), 2.0);
  EXPECT_EQ(phases[1].get_string("total_ns", ""), "30");
}

TEST(ObsProfile, SpanGuardsFeedTheProfileWithTracerDisarmed) {
  obs::Tracer::global().disarm();
  obs::Tracer::global().clear();
  obs::ProfileCollector profile;
  {
    obs::ProfileScope scope(&profile);
    EHW_TRACE_SPAN("profiled_phase");
  }
  // Profile captured the span; the disarmed tracer recorded nothing.
  EXPECT_FALSE(profile.empty());
  EXPECT_EQ(obs::Tracer::global().recorded(), 0u);
  // Outside the scope the guard is back to the free path.
  {
    EHW_TRACE_SPAN("profiled_phase");
  }
  const Json json = profile.to_json();
  const auto& phases = json.get("phases")->as_array();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].get_number("count", 0), 1.0);
}

TEST(ObsProfile, ScopesNestAndRestore) {
  obs::ProfileCollector outer;
  obs::ProfileCollector inner;
  {
    obs::ProfileScope outer_scope(&outer);
    {
      obs::ProfileScope inner_scope(&inner);
      EHW_TRACE_SPAN("inner_only");
    }
    EHW_TRACE_SPAN("outer_only");
  }
  const Json outer_json = outer.to_json();
  const auto& outer_phases = outer_json.get("phases")->as_array();
  ASSERT_EQ(outer_phases.size(), 1u);
  EXPECT_EQ(outer_phases[0].get_string("phase", ""), "outer_only");
  const Json inner_json = inner.to_json();
  const auto& inner_phases = inner_json.get("phases")->as_array();
  ASSERT_EQ(inner_phases.size(), 1u);
  EXPECT_EQ(inner_phases[0].get_string("phase", ""), "inner_only");
}

// --- Duration formatting ----------------------------------------------------

TEST(ObsDurationFormat, ScalesToTheLeadingUnit) {
  EXPECT_EQ(format_duration_ns(0), "0ns");
  EXPECT_EQ(format_duration_ns(815), "815ns");
  EXPECT_EQ(format_duration_ns(12'300), "12.3us");
  EXPECT_EQ(format_duration_ns(45'600'000), "45.6ms");
  EXPECT_EQ(format_duration_ns(3'200'000'000ull), "3.2s");
  EXPECT_EQ(format_duration_ns(312'000'000'000ull), "5m12s");
  EXPECT_EQ(format_duration_ns(7'380'000'000'000ull), "2h03m");
  EXPECT_EQ(format_duration_ns(100'800'000'000'000ull), "1d04h");
}

TEST(ObsDurationFormat, MillisecondWrapperSaturates) {
  EXPECT_EQ(format_duration_ms(0), "0ns");
  EXPECT_EQ(format_duration_ms(1500), "1.5s");
  // A ms count whose ns equivalent would overflow u64 still formats
  // (saturating multiply), it just pins at the u64 ceiling.
  EXPECT_FALSE(format_duration_ms(~std::uint64_t{0}).empty());
}

}  // namespace
}  // namespace ehw
