// Tests for the MissionController and the dependability estimator.

#include <gtest/gtest.h>

#include "ehw/analysis/dependability.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/noise.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/platform/evolution_driver.hpp"
#include "ehw/platform/mission.hpp"
#include "test_util.hpp"

namespace ehw::platform {
namespace {

evo::Genotype evolve_mission_circuit(EvolvablePlatform& plat,
                                     const img::Image& noisy,
                                     const img::Image& clean) {
  evo::EsConfig es;
  es.generations = 120;
  es.seed = 777;
  return evolve_on_platform(plat, {0, 1, 2}, noisy, clean, es).es.best;
}

struct MissionFixture : ::testing::Test {
  MissionFixture() : plat(test::small_platform_config(3)) {}

  MissionConfig tmr_config() {
    MissionConfig cfg;
    cfg.mode = MissionMode::kParallelTmr;
    cfg.ecc_scrub_period = 2;
    cfg.voter_threshold = 100;
    cfg.recovery_es.generations = 100;
    cfg.recovery_es.seed = 5;
    return cfg;
  }

  EvolvablePlatform plat;
};

TEST_F(MissionFixture, TmrMissionStreamsFrames) {
  const auto w = test::make_denoise_workload(32, 0.2, 201);
  const evo::Genotype circuit = evolve_mission_circuit(plat, w.noisy, w.clean);
  MissionController mission(plat, tmr_config());
  mission.deploy(circuit);

  Rng rng(3);
  for (int f = 0; f < 4; ++f) {
    const img::Image clean = img::make_scene(32, 32, 300 + f);
    const img::Image noisy = img::add_salt_pepper(clean, 0.2, rng);
    const img::Image out = mission.process_frame(noisy);
    EXPECT_TRUE(out.same_shape(noisy));
  }
  EXPECT_EQ(mission.stats().frames, 4u);
  EXPECT_EQ(mission.stats().ecc_scrubs, 2u);  // period 2
  EXPECT_EQ(mission.stats().faults_detected, 0u);
  EXPECT_GT(mission.stats().mission_time, 0);
}

TEST_F(MissionFixture, EccScrubCleansSeusBeforeTheyBite) {
  const auto w = test::make_denoise_workload(32, 0.2, 202);
  const evo::Genotype circuit = evolve_mission_circuit(plat, w.noisy, w.clean);
  MissionController mission(plat, tmr_config());
  mission.deploy(circuit);

  plat.inject_seu(0);
  plat.inject_seu(1);
  EXPECT_EQ(plat.config_memory().upset_word_count(), 2u);
  // Frame 1: no scrub yet (period 2). Frame 2 runs the blind scrub.
  Rng rng(4);
  const img::Image noisy =
      img::add_salt_pepper(img::make_scene(32, 32, 400), 0.2, rng);
  (void)mission.process_frame(noisy);
  (void)mission.process_frame(noisy);
  EXPECT_EQ(plat.config_memory().upset_word_count(), 0u);
  EXPECT_EQ(mission.stats().ecc_corrected_bits, 2u);
}

TEST_F(MissionFixture, TmrMissionHealsPermanentFault) {
  const auto w = test::make_denoise_workload(32, 0.2, 203);
  const evo::Genotype circuit = evolve_mission_circuit(plat, w.noisy, w.clean);
  MissionController mission(plat, tmr_config());
  mission.deploy(circuit);

  plat.inject_pe_fault(1, 0, 1);
  Rng rng(5);
  const img::Image noisy =
      img::add_salt_pepper(img::make_scene(32, 32, 500), 0.2, rng);
  (void)mission.process_frame(noisy);
  EXPECT_EQ(mission.stats().faults_detected, 1u);
  EXPECT_EQ(mission.stats().permanent_recoveries, 1u);
  // Steady state afterwards.
  (void)mission.process_frame(noisy);
  EXPECT_EQ(mission.stats().faults_detected, 1u);
}

TEST_F(MissionFixture, CascadedMissionRunsCalibration) {
  const auto w = test::make_denoise_workload(32, 0.2, 204);
  MissionConfig cfg;
  cfg.mode = MissionMode::kCascaded;
  cfg.ecc_scrub_period = 0;
  cfg.calibration_period = 2;
  cfg.recovery_es.generations = 60;
  cfg.recovery_es.seed = 6;
  cfg.calibration_input = img::make_calibration_pattern(32, 32);
  // Identity circuit passes the calibration input through unchanged.
  cfg.calibration_reference = cfg.calibration_input;
  EvolvablePlatform plat2(test::small_platform_config(3));
  MissionController mission(plat2, cfg);
  mission.deploy(test::identity_genotype());

  Rng rng(7);
  const img::Image frame =
      img::add_salt_pepper(img::make_scene(32, 32, 600), 0.1, rng);
  (void)mission.process_frame(frame);
  (void)mission.process_frame(frame);
  EXPECT_EQ(mission.stats().calibration_checks, 1u);
  EXPECT_EQ(mission.stats().faults_detected, 0u);
}

TEST_F(MissionFixture, IndependentModeIsPlainFiltering) {
  const auto w = test::make_denoise_workload(24, 0.2, 205);
  MissionConfig cfg;
  cfg.mode = MissionMode::kIndependent;
  cfg.ecc_scrub_period = 0;
  MissionController mission(plat, cfg);
  mission.deploy(test::identity_genotype());
  const img::Image out = mission.process_frame(w.noisy);
  EXPECT_EQ(out, w.noisy);  // identity circuit
  EXPECT_TRUE(mission.healing_events().empty());
}

TEST(Dependability, RatesScaleWithInputs) {
  analysis::DependabilityInputs in;
  in.config_bits = 48 * 40 * 32;  // 3-array fabric
  in.upsets_per_bit_second = 1e-8;
  in.avf = 0.4;
  const analysis::DependabilityReport base =
      analysis::estimate_dependability(in);
  EXPECT_GT(base.observable_rate, 0.0);
  EXPECT_GT(base.simplex_mtbf, 0.0);
  // TMR masks single faults: availability and MTBF strictly better.
  EXPECT_GT(base.tmr_mtbf, base.simplex_mtbf);
  EXPECT_GE(base.tmr_availability, base.simplex_availability);

  // Tripling the raw rate triples the observable rate.
  in.upsets_per_bit_second *= 3.0;
  const analysis::DependabilityReport hot =
      analysis::estimate_dependability(in);
  EXPECT_NEAR(hot.observable_rate, 3.0 * base.observable_rate, 1e-12);
  EXPECT_LT(hot.simplex_availability, base.simplex_availability);
}

TEST(Dependability, FasterScrubBuysAvailability) {
  analysis::DependabilityInputs in;
  in.config_bits = 48 * 40 * 32;
  in.upsets_per_bit_second = 1e-6;  // harsh environment
  in.scrub_period = sim::milliseconds(100.0);
  const double slow =
      analysis::estimate_dependability(in).simplex_availability;
  in.scrub_period = sim::milliseconds(1.0);
  const double fast =
      analysis::estimate_dependability(in).simplex_availability;
  EXPECT_GT(fast, slow);
}

TEST(Dependability, ZeroAvfMeansPerfect) {
  analysis::DependabilityInputs in;
  in.config_bits = 1000;
  in.avf = 0.0;
  const analysis::DependabilityReport r =
      analysis::estimate_dependability(in);
  EXPECT_EQ(r.observable_rate, 0.0);
  EXPECT_EQ(r.simplex_availability, 1.0);
  EXPECT_EQ(r.tmr_availability, 1.0);
}

TEST(Dependability, ValidatesInputs) {
  analysis::DependabilityInputs in;
  in.config_bits = 0;
  EXPECT_THROW((void)analysis::estimate_dependability(in), std::logic_error);
  in.config_bits = 10;
  in.avf = 1.5;
  EXPECT_THROW((void)analysis::estimate_dependability(in), std::logic_error);
}

}  // namespace
}  // namespace ehw::platform
