// Tests for ehw/evo: genotype encoding, exact-k mutation, classic vs
// two-level offspring structure, extrinsic fitness and the (1+lambda) ES.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "ehw/evo/es.hpp"
#include "ehw/evo/fitness.hpp"
#include "ehw/evo/genotype.hpp"
#include "ehw/evo/mutation.hpp"
#include "ehw/evo/offspring.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/noise.hpp"
#include "ehw/img/synthetic.hpp"
#include "test_util.hpp"

namespace ehw::evo {
namespace {

TEST(Genotype, GeneCountsFor4x4) {
  const Genotype g(fpga::ArrayShape{4, 4});
  EXPECT_EQ(g.cell_count(), 16u);
  EXPECT_EQ(g.input_count(), 8u);
  EXPECT_EQ(g.gene_count(), 25u);
}

TEST(Genotype, RandomIsValidAndSeedStable) {
  Rng a(3), b(3);
  const Genotype ga = Genotype::random({4, 4}, a);
  const Genotype gb = Genotype::random({4, 4}, b);
  EXPECT_EQ(ga, gb);
  for (std::size_t i = 0; i < ga.cell_count(); ++i) {
    EXPECT_LT(ga.function_gene(i), 16);
  }
  for (std::size_t i = 0; i < ga.input_count(); ++i) {
    EXPECT_LT(ga.tap_gene(i), 9);
  }
  EXPECT_LT(ga.output_row(), 4);
}

TEST(Genotype, FlatGeneAddressingRoundTrips) {
  Rng rng(4);
  Genotype g = Genotype::random({4, 4}, rng);
  for (std::size_t i = 0; i < g.gene_count(); ++i) {
    const std::uint8_t v = g.gene_value(i);
    EXPECT_LT(v, g.gene_cardinality(i));
    g.set_gene_value(i, v);  // idempotent
    EXPECT_EQ(g.gene_value(i), v);
  }
  // Cardinalities per block.
  EXPECT_EQ(g.gene_cardinality(0), 16u);
  EXPECT_EQ(g.gene_cardinality(16), 9u);
  EXPECT_EQ(g.gene_cardinality(24), 4u);
}

TEST(Genotype, FunctionDiffAndHamming) {
  Rng rng(5);
  const Genotype a = Genotype::random({4, 4}, rng);
  Genotype b = a;
  EXPECT_TRUE(Genotype::function_diff(a, b).empty());
  EXPECT_EQ(Genotype::hamming_distance(a, b), 0u);
  b.set_function_gene(3, (b.function_gene(3) + 1) % 16);
  b.set_tap_gene(2, (b.tap_gene(2) + 1) % 9);
  EXPECT_EQ(Genotype::function_diff(a, b), std::vector<std::size_t>{3});
  EXPECT_EQ(Genotype::hamming_distance(a, b), 2u);
}

TEST(Genotype, HashStableEqualAndSensitiveToEveryGeneBlock) {
  Rng rng(6);
  const Genotype a = Genotype::random({4, 4}, rng);
  const Genotype copy = a;
  EXPECT_EQ(a.hash(), copy.hash());  // content hash: copies agree

  // Flipping any single gene block member moves the hash.
  Genotype f = a;
  f.set_function_gene(0, static_cast<std::uint8_t>((f.function_gene(0) + 1) %
                                                   16));
  EXPECT_NE(f.hash(), a.hash());
  Genotype t = a;
  t.set_tap_gene(1, static_cast<std::uint8_t>((t.tap_gene(1) + 1) % 9));
  EXPECT_NE(t.hash(), a.hash());
  Genotype o = a;
  o.set_output_row((o.output_row() + 1) % 4);
  EXPECT_NE(o.hash(), a.hash());

  // Shape participates too: a 3x3 and a 4x4 all-zero genotype differ.
  EXPECT_NE(Genotype(fpga::ArrayShape{3, 3}).hash(),
            Genotype(fpga::ArrayShape{4, 4}).hash());
}

TEST(Genotype, HashDedupsPopulations) {
  // The standalone use of the hash: duplicate-candidate statistics.
  Rng rng(7);
  const Genotype parent = Genotype::random({4, 4}, rng);
  std::unordered_set<Genotype, GenotypeHash> seen;
  seen.insert(parent);
  seen.insert(parent);                 // duplicate collapses
  Genotype child = parent;
  child.set_output_row((child.output_row() + 1) % 4);
  seen.insert(child);
  EXPECT_EQ(seen.size(), 2u);
}

TEST(Genotype, ToStringMentionsOps) {
  const Genotype g = test::identity_genotype();
  const std::string s = g.to_string();
  EXPECT_NE(s.find("W"), std::string::npos);
  EXPECT_NE(s.find("out=0"), std::string::npos);
}

/// Exact-k mutation property across rates.
class MutationRate : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MutationRate, ChangesExactlyKGenes) {
  const std::size_t k = GetParam();
  Rng rng(17 + k);
  for (int rep = 0; rep < 50; ++rep) {
    const Genotype parent = Genotype::random({4, 4}, rng);
    Genotype child = parent;
    const auto positions = mutate(child, k, rng);
    EXPECT_EQ(positions.size(), k);
    EXPECT_EQ(Genotype::hamming_distance(parent, child), k);
    // Positions are distinct and sorted.
    std::set<std::size_t> unique(positions.begin(), positions.end());
    EXPECT_EQ(unique.size(), k);
    // Every touched gene actually changed.
    for (const std::size_t p : positions) {
      EXPECT_NE(parent.gene_value(p), child.gene_value(p));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, MutationRate, ::testing::Values(1, 3, 5, 10));

TEST(Mutation, KClampsToGeneCount) {
  Rng rng(8);
  Genotype g = Genotype::random({4, 4}, rng);
  const auto positions = mutate(g, 1000, rng);
  EXPECT_EQ(positions.size(), g.gene_count());
}

TEST(Mutation, MutatedCopyLeavesParentIntact) {
  Rng rng(9);
  const Genotype parent = Genotype::random({4, 4}, rng);
  const Genotype before = parent;
  const Genotype child = mutated_copy(parent, 3, rng);
  EXPECT_EQ(parent, before);
  EXPECT_EQ(Genotype::hamming_distance(parent, child), 3u);
}

TEST(Offspring, ClassicStructure) {
  Rng rng(10);
  const Genotype parent = Genotype::random({4, 4}, rng);
  const auto kids = classic_offspring(parent, 9, 3, 3, rng);
  ASSERT_EQ(kids.size(), 9u);
  for (std::size_t i = 0; i < kids.size(); ++i) {
    EXPECT_EQ(kids[i].lane, i % 3);
    EXPECT_EQ(kids[i].batch, i / 3);
    EXPECT_EQ(Genotype::hamming_distance(parent, kids[i].genotype), 3u);
  }
}

TEST(Offspring, TwoLevelFirstBatchNominalRate) {
  Rng rng(11);
  const Genotype parent = Genotype::random({4, 4}, rng);
  const auto kids = two_level_offspring(parent, 9, 3, 5, rng);
  ASSERT_EQ(kids.size(), 9u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(Genotype::hamming_distance(parent, kids[i].genotype), 5u);
  }
}

TEST(Offspring, TwoLevelLaneChainsDistanceOne) {
  Rng rng(12);
  const Genotype parent = Genotype::random({4, 4}, rng);
  const auto kids = two_level_offspring(parent, 9, 3, 5, rng);
  // Candidate in batch b>0 on lane l is one mutation away from the lane's
  // previous-batch candidate (the key DPR-traffic property).
  for (std::size_t i = 3; i < 9; ++i) {
    const auto& prev = kids[i - 3].genotype;
    EXPECT_EQ(Genotype::hamming_distance(prev, kids[i].genotype), 1u);
  }
}

TEST(Offspring, TwoLevelShortFinalBatch) {
  Rng rng(13);
  const Genotype parent = Genotype::random({4, 4}, rng);
  const auto kids = two_level_offspring(parent, 7, 3, 3, rng);
  ASSERT_EQ(kids.size(), 7u);
  EXPECT_EQ(kids.back().batch, 2u);
  EXPECT_EQ(kids.back().lane, 0u);
}

TEST(Offspring, SingleLaneTwoLevelIsAChain) {
  Rng rng(14);
  const Genotype parent = Genotype::random({4, 4}, rng);
  const auto kids = two_level_offspring(parent, 5, 1, 4, rng);
  EXPECT_EQ(Genotype::hamming_distance(parent, kids[0].genotype), 4u);
  for (std::size_t i = 1; i < kids.size(); ++i) {
    EXPECT_EQ(Genotype::hamming_distance(kids[i - 1].genotype,
                                         kids[i].genotype),
              1u);
  }
}

TEST(ExtrinsicFitness, IdentityGenotypeIsPerfectOnSelf) {
  const img::Image scene = img::make_scene(24, 24, 3);
  const Genotype identity = test::identity_genotype();
  EXPECT_EQ(evaluate_extrinsic(identity, scene, scene), 0u);
  EXPECT_EQ(apply_genotype(identity, scene), scene);
}

TEST(ExtrinsicFitness, MatchesManualPipeline) {
  Rng rng(19);
  const Genotype g = Genotype::random({4, 4}, rng);
  const img::Image train = img::make_scene(20, 20, 1);
  const img::Image ref = img::make_scene(20, 20, 2);
  const img::Image out = apply_genotype(g, train);
  EXPECT_EQ(evaluate_extrinsic(g, train, ref), img::aggregated_mae(out, ref));
}

TEST(EvolutionStrategy, SolvesIdentityTaskQuickly) {
  // train == reference: the identity filter is a perfect solution and the
  // ES must reach fitness far below a random start within a small budget.
  const img::Image scene = img::make_scene(24, 24, 30);
  EsConfig cfg;
  cfg.lambda = 9;
  cfg.mutation_rate = 3;
  cfg.generations = 400;
  cfg.seed = 77;
  const EsResult r = evolve_extrinsic(cfg, {4, 4}, scene, scene);
  Rng rng(123);
  const Fitness random_level =
      evaluate_extrinsic(Genotype::random({4, 4}, rng), scene, scene);
  EXPECT_LT(r.best_fitness, random_level / 4);
}

TEST(EvolutionStrategy, HistoryIsMonotoneDecreasing) {
  const auto w = test::make_denoise_workload(24, 0.15, 5);
  EsConfig cfg;
  cfg.generations = 150;
  cfg.seed = 5;
  const EsResult r = evolve_extrinsic(cfg, {4, 4}, w.noisy, w.clean);
  ASSERT_FALSE(r.history.empty());
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_LT(r.history[i].fitness, r.history[i - 1].fitness);
    EXPECT_GT(r.history[i].generation, r.history[i - 1].generation);
  }
  EXPECT_EQ(r.history.front().generation, 0u);
}

TEST(EvolutionStrategy, TargetStopsEarly) {
  const img::Image scene = img::make_scene(16, 16, 40);
  EsConfig cfg;
  cfg.generations = 100000;  // would run long without the target
  cfg.target = 200000;       // trivially reachable
  cfg.seed = 6;
  const EsResult r = evolve_extrinsic(cfg, {4, 4}, scene, scene);
  EXPECT_LT(r.generations_run, 1000u);
  EXPECT_LE(r.best_fitness, 200000u);
}

TEST(EvolutionStrategy, SeedReproducible) {
  const auto w = test::make_denoise_workload(16, 0.2, 9);
  EsConfig cfg;
  cfg.generations = 60;
  cfg.seed = 99;
  const EsResult a = evolve_extrinsic(cfg, {4, 4}, w.noisy, w.clean);
  const EsResult b = evolve_extrinsic(cfg, {4, 4}, w.noisy, w.clean);
  EXPECT_EQ(a.best_fitness, b.best_fitness);
  EXPECT_EQ(a.best, b.best);
}

TEST(EvolutionStrategy, TwoLevelAlsoImproves) {
  const auto w = test::make_denoise_workload(24, 0.2, 11);
  EsConfig cfg;
  cfg.generations = 150;
  cfg.two_level = true;
  cfg.lanes = 3;
  cfg.seed = 11;
  const EsResult r = evolve_extrinsic(cfg, {4, 4}, w.noisy, w.clean);
  const Fitness start = img::aggregated_mae(w.noisy, w.clean);
  EXPECT_LT(r.best_fitness, start);
}

TEST(EvolutionStrategy, FromExplicitParent) {
  const img::Image scene = img::make_scene(16, 16, 50);
  EsConfig cfg;
  cfg.generations = 10;
  cfg.seed = 3;
  const Genotype identity = test::identity_genotype();
  const EsResult r =
      evolve_extrinsic_from(cfg, identity, scene, scene);
  EXPECT_EQ(r.best_fitness, 0u);   // parent is already perfect
  EXPECT_EQ(r.generations_run, 0u);  // target 0 reached immediately
}

}  // namespace
}  // namespace ehw::evo
