// Tests for the Fig. 10 resource model and floorplan renderer.

#include <gtest/gtest.h>

#include "ehw/resources/floorplan.hpp"
#include "ehw/resources/model.hpp"

namespace ehw::resources {
namespace {

TEST(ResourceModel, PaperConstants) {
  EXPECT_EQ(kStaticControl.slices, 733u);
  EXPECT_EQ(kStaticControl.ffs, 1365u);
  EXPECT_EQ(kStaticControl.luts, 1817u);
  EXPECT_EQ(kPerAcb.slices, 754u);
  EXPECT_EQ(kPerAcb.ffs, 1642u);
  EXPECT_EQ(kPerAcb.luts, 1528u);
  EXPECT_EQ(kClbsPerArray, 160u);
  EXPECT_DOUBLE_EQ(kPeReconfigMicros, 67.53);
}

TEST(ResourceModel, ThreeStageTotals) {
  const UtilizationReport r = utilization(3);
  ASSERT_EQ(r.modules.size(), 3u);
  // static + 3*ACB + 3*array(160 CLB * 2 slices).
  const std::uint64_t expected_slices = 733 + 3 * 754 + 3 * 160 * 2;
  EXPECT_EQ(r.total.slices, expected_slices);
  EXPECT_GT(r.device_slice_percent, 0.0);
  EXPECT_LT(r.device_slice_percent, 100.0);
}

TEST(ResourceModel, ScalesLinearlyInArrays) {
  const UtilizationReport r1 = utilization(1);
  const UtilizationReport r2 = utilization(2);
  const UtilizationReport r3 = utilization(3);
  const auto delta21 = r2.total.slices - r1.total.slices;
  const auto delta32 = r3.total.slices - r2.total.slices;
  EXPECT_EQ(delta21, delta32);  // each extra stage costs the same
  EXPECT_EQ(delta21, 754u + 160u * 2u);
}

TEST(ResourceModel, VectorArithmetic) {
  const ResourceVector a{1, 2, 3};
  const ResourceVector b{10, 20, 30};
  const ResourceVector s = a + b;
  EXPECT_EQ(s.slices, 11u);
  EXPECT_EQ(s.ffs, 22u);
  EXPECT_EQ(s.luts, 33u);
  const ResourceVector m = a * 4;
  EXPECT_EQ(m.slices, 4u);
  EXPECT_EQ(m.luts, 12u);
}

TEST(ResourceModel, ReconfigCosts) {
  const ReconfigCosts c = reconfig_costs(3);
  EXPECT_DOUBLE_EQ(c.per_pe_us, 67.53);
  EXPECT_DOUBLE_EQ(c.full_array_us, 67.53 * 16);
  EXPECT_DOUBLE_EQ(c.full_platform_us, 67.53 * 48);
}

TEST(Floorplan, MentionsEveryStage) {
  const std::string s = floorplan_string(3);
  EXPECT_NE(s.find("ACB0"), std::string::npos);
  EXPECT_NE(s.find("ACB1"), std::string::npos);
  EXPECT_NE(s.find("ACB2"), std::string::npos);
  EXPECT_NE(s.find("STATIC REGION"), std::string::npos);
  EXPECT_NE(s.find("160 CLBs"), std::string::npos);
}

TEST(Floorplan, NonDefaultShapeReported) {
  const std::string s = floorplan_string(1, {2, 2});
  EXPECT_NE(s.find("2x2"), std::string::npos);
  EXPECT_NE(s.find("40 CLBs"), std::string::npos);
}

}  // namespace
}  // namespace ehw::resources
