// Tests for ehw/reconfig: the PBS library and the shared reconfiguration
// engine (functional effect, timing constants, serialization).

#include <gtest/gtest.h>

#include "ehw/fpga/config_memory.hpp"
#include "ehw/fpga/geometry.hpp"
#include "ehw/reconfig/engine.hpp"
#include "ehw/reconfig/pbs_library.hpp"
#include "ehw/sim/timeline.hpp"

namespace ehw::reconfig {
namespace {

struct EngineFixture : ::testing::Test {
  EngineFixture()
      : geometry(3, fpga::ArrayShape{4, 4}),
        memory(geometry.total_words()),
        library(geometry.words_per_slot()),
        engine(memory, geometry, library, timeline) {
    for (std::size_t a = 0; a < 3; ++a) {
      arrays[a] = timeline.add_resource("array" + std::to_string(a));
    }
  }

  fpga::FabricGeometry geometry;
  fpga::ConfigMemory memory;
  PbsLibrary library;
  sim::Timeline timeline;
  ReconfigurationEngine engine;
  sim::ResourceId arrays[3]{};
};

TEST(PbsLibrary, SixteenDistinctFunctions) {
  PbsLibrary lib(40);
  for (std::size_t i = 0; i < kFunctionCount; ++i) {
    for (std::size_t j = i + 1; j < kFunctionCount; ++j) {
      EXPECT_FALSE(lib.function(static_cast<std::uint8_t>(i)) ==
                   lib.function(static_cast<std::uint8_t>(j)));
    }
  }
}

TEST(PbsLibrary, OpcodeFieldEncodesFunction) {
  PbsLibrary lib(40);
  for (std::size_t i = 0; i < kFunctionCount; ++i) {
    const auto& pbs = lib.function(static_cast<std::uint8_t>(i));
    EXPECT_EQ(PbsLibrary::opcode_of_word0(pbs.payload()[0]), i);
    EXPECT_EQ(pbs.word_count(), 40u);
    EXPECT_TRUE(lib.is_intact(pbs.payload()));
  }
}

TEST(PbsLibrary, DummyNeverIntact) {
  PbsLibrary lib(40);
  EXPECT_EQ(PbsLibrary::opcode_of_word0(lib.dummy().payload()[0]),
            kDummyOpcode);
  EXPECT_FALSE(lib.is_intact(lib.dummy().payload()));
}

TEST(PbsLibrary, CorruptedPayloadDetected) {
  PbsLibrary lib(40);
  auto payload = lib.function(7).payload();
  payload[13] ^= 0x400;  // one flipped bit
  EXPECT_FALSE(lib.is_intact(payload));
  // Wrong length is rejected too.
  payload.pop_back();
  EXPECT_FALSE(lib.is_intact(payload));
}

TEST(PbsLibrary, InvalidOpcodeRejected) {
  PbsLibrary lib(40);
  EXPECT_THROW(static_cast<void>(lib.function(16)), std::logic_error);
}

TEST_F(EngineFixture, WritePlacesIntactFunction) {
  engine.write_pe({1, 2, 3}, 9, 0, arrays[1]);
  std::uint8_t opcode = 0;
  EXPECT_TRUE(engine.slot_intact({1, 2, 3}, &opcode));
  EXPECT_EQ(opcode, 9);
  EXPECT_EQ(engine.stats().pe_writes, 1u);
}

TEST_F(EngineFixture, WriteTakesPaperLatency) {
  const sim::Interval span = engine.write_pe({0, 0, 0}, 3, 0, arrays[0]);
  EXPECT_EQ(span.duration(), kPeReconfigTime);
  EXPECT_DOUBLE_EQ(sim::to_microseconds(span.duration()), 67.53);
}

TEST_F(EngineFixture, WritesSerializeOnEngine) {
  // Two writes to two DIFFERENT arrays still serialize: one engine.
  const sim::Interval a = engine.write_pe({0, 0, 0}, 1, 0, arrays[0]);
  const sim::Interval b = engine.write_pe({1, 0, 0}, 1, 0, arrays[1]);
  EXPECT_EQ(a.end, b.start);
}

TEST_F(EngineFixture, WriteWaitsForBusyArray) {
  // Array 0 evaluating until t = 1 ms.
  timeline.reserve(arrays[0], 0, sim::milliseconds(1.0));
  const sim::Interval w = engine.write_pe({0, 1, 1}, 2, 0, arrays[0]);
  EXPECT_EQ(w.start, sim::milliseconds(1.0));
}

TEST_F(EngineFixture, ReadbackReturnsActualContent) {
  engine.write_pe({2, 1, 0}, 12, 0, arrays[2]);
  const fpga::PartialBitstream rb = engine.readback_slot({2, 1, 0}, 0);
  EXPECT_EQ(rb.payload(), library.function(12).payload());
  EXPECT_EQ(engine.stats().readbacks, 1u);
}

TEST_F(EngineFixture, RelocationSamePayloadDifferentSlots) {
  engine.write_pe({0, 0, 0}, 5, 0, arrays[0]);
  engine.write_pe({2, 3, 3}, 5, 0, arrays[2]);
  const auto a = engine.readback_slot({0, 0, 0}, 0);
  const auto b = engine.readback_slot({2, 3, 3}, 0);
  EXPECT_EQ(a.payload(), b.payload());  // relocated identical content
}

TEST_F(EngineFixture, ScrubRestoresSeu) {
  engine.write_pe({0, 2, 2}, 4, 0, arrays[0]);
  memory.flip_bit(geometry.slot_word_base({0, 2, 2}) + 7, 11);
  EXPECT_FALSE(engine.slot_intact({0, 2, 2}));
  std::size_t corrected = 0, uncorrectable = 0;
  engine.scrub_slot({0, 2, 2}, 0, arrays[0], &corrected, &uncorrectable);
  EXPECT_EQ(corrected, 1u);
  EXPECT_EQ(uncorrectable, 0u);
  EXPECT_TRUE(engine.slot_intact({0, 2, 2}));
}

TEST_F(EngineFixture, ScrubCannotClearStuckBit) {
  engine.write_pe({0, 1, 2}, 4, 0, arrays[0]);
  const std::size_t word = geometry.slot_word_base({0, 1, 2}) + 3;
  const bool current = (memory.read(word) >> 9) & 1u;
  memory.set_stuck_bit(word, 9, !current);
  std::size_t corrected = 0, uncorrectable = 0;
  engine.scrub_slot({0, 1, 2}, 0, arrays[0], &corrected, &uncorrectable);
  EXPECT_EQ(uncorrectable, 1u);
  EXPECT_FALSE(engine.slot_intact({0, 1, 2}));
}

TEST_F(EngineFixture, DummyWriteCorruptsSlot) {
  engine.write_pe({1, 1, 1}, kDummyOpcode, 0, arrays[1]);
  std::uint8_t opcode = 0;
  EXPECT_FALSE(engine.slot_intact({1, 1, 1}, &opcode));
  EXPECT_EQ(opcode, kDummyOpcode);
}

TEST_F(EngineFixture, StatsAccumulateBusyTime) {
  engine.write_pe({0, 0, 0}, 1, 0, arrays[0]);
  engine.write_pe({0, 0, 1}, 2, 0, arrays[0]);
  EXPECT_EQ(engine.stats().pe_writes, 2u);
  EXPECT_EQ(engine.stats().busy_time, 2 * kPeReconfigTime);
  engine.reset_stats();
  EXPECT_EQ(engine.stats().pe_writes, 0u);
}

TEST_F(EngineFixture, LibraryFootprintMustMatchFabric) {
  PbsLibrary wrong(geometry.words_per_slot() + 1);
  sim::Timeline tl2;
  EXPECT_THROW(ReconfigurationEngine(memory, geometry, wrong, tl2),
               std::logic_error);
}

}  // namespace
}  // namespace ehw::reconfig
