// Fuzz-lite: seeded random mutation of untrusted inputs — the wire JSON
// parser and the mission-manifest parser — entirely stdlib + the
// in-repo Rng, so it runs as an ordinary ctest case. The properties:
//
//   * no crash: every mutant either parses or reports an error (throws
//     JsonError / manifest runtime_error, or returns an error string) —
//     never UB, never an abort;
//   * no silent acceptance: structurally broken inputs are rejected;
//   * round-trip stability: whatever PARSES must dump/re-emit to a form
//     that parses again to the same value (so a daemon replaying its own
//     journal can never choke on what it wrote).
//
// Deterministic for a fixed seed — a failure reproduces exactly.

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "ehw/common/json.hpp"
#include "ehw/common/rng.hpp"
#include "ehw/common/version.hpp"
#include "ehw/sched/missions.hpp"
#include "ehw/svc/client.hpp"
#include "ehw/svc/protocol.hpp"
#include "ehw/svc/server.hpp"
#include "ehw/svc/socket.hpp"

namespace ehw {
namespace {

/// One random structural mutation: flip, insert, delete, truncate, or
/// splice a duplicated slice. Never returns the input unchanged unless
/// it is empty.
std::string mutate(const std::string& input, Rng& rng) {
  std::string out = input;
  if (out.empty()) return std::string(1, static_cast<char>(rng.range(0, 255)));
  const std::size_t at =
      static_cast<std::size_t>(rng.range(0, static_cast<std::int64_t>(out.size()) - 1));
  switch (rng.range(0, 4)) {
    case 0:  // flip a byte (often into a control char or quote)
      out[at] = static_cast<char>(rng.range(0, 255));
      break;
    case 1:  // insert a structural character
      out.insert(at, 1, "{}[]\",:x0\\\n"[static_cast<std::size_t>(
                            rng.range(0, 10))]);
      break;
    case 2:  // delete a byte
      out.erase(at, 1);
      break;
    case 3:  // truncate (torn write)
      out.resize(at);
      break;
    default:  // duplicate a slice (repeated key / doubled token)
      out.insert(at, out.substr(at / 2, (out.size() - at / 2) / 2));
      break;
  }
  return out;
}

const char* const kJsonCorpus[] = {
    R"({"op":"submit","spec":{"kind":"denoise","name":"dn","lanes":2,)"
    R"("generations":100,"seed":"18014398509481987","noise":0.3}})",
    R"({"ok":true,"job":42,"status":"done","best_fitness":123456,)"
    R"("genotype_hash":"00ff00ff00ff00ff","sim_ns":"123456789"})",
    R"({"rec":"finished","job":7,"waves":100,)"
    R"("result":{"status":"done","stages":[{"fitness":1},{"fitness":2}]}})",
    R"([1,2.5,-3,1e10,true,false,null,"\u0041\n\"esc\\"])",
    R"({"nested":{"a":{"b":{"c":[{}]}},"empty":[],"s":""}})",
};

TEST(FuzzLite, JsonParserNeverCrashesAndRoundTripsWhatItAccepts) {
  Rng rng(0xF022ED5EEDULL);
  std::uint64_t parsed_ok = 0;
  std::uint64_t rejected = 0;
  for (const char* seed_input : kJsonCorpus) {
    std::string current = seed_input;
    for (int round = 0; round < 600; ++round) {
      // Walk away from the corpus: mutate the previous mutant half the
      // time, the pristine seed otherwise (keeps inputs near-valid,
      // where parser bugs live).
      current = mutate(rng.chance(0.5) ? current : seed_input, rng);
      try {
        const Json value = Json::parse(current);
        ++parsed_ok;
        // Round-trip: the emitter's output must re-parse to an equal
        // dump (dump is deterministic, so dump-equality is
        // value-equality).
        const std::string emitted = value.dump();
        EXPECT_EQ(Json::parse(emitted).dump(), emitted)
            << "round-trip diverged for mutant: " << current;
      } catch (const std::exception&) {
        ++rejected;  // rejection is a correct outcome for a mutant
      }
    }
  }
  // The mutator must actually exercise both paths.
  EXPECT_GT(parsed_ok, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(FuzzLite, JsonParserRejectsStructurallyBrokenInputs) {
  const char* const kBroken[] = {
      "",      "{",        "}",           "[1,",       R"({"a")",
      R"({"a":})", "tru",  "nul",         R"("unterminated)",
      R"({"a":1,})", "[1 2]", R"({"a" 1})", "\"\\q\"",
  };
  for (const char* input : kBroken) {
    EXPECT_THROW(static_cast<void>(Json::parse(input)), std::exception)
        << "silently accepted: " << input;
  }
}

const char* const kManifestCorpus[] = {
    "denoise dn0 lanes=3 generations=300 noise=0.3 seed=5",
    "cascade ca0 lanes=3 generations=80 interleaved=1 merged=1",
    "edge ed0 lanes=2 size=64 rate=4 lambda=9 priority=-2\n"
    "morphology mo0 lanes=1 deadline-ms=5000 # trailing comment",
    "# full-line comment\n\ndenoise dn1 scene-seed=18446744073709551615",
};

TEST(FuzzLite, ManifestParserNeverCrashesOnMutants) {
  Rng rng(0xF022ED0CA7ULL);
  std::uint64_t parsed_ok = 0;
  std::uint64_t rejected = 0;
  for (const char* seed_input : kManifestCorpus) {
    std::string current = seed_input;
    for (int round = 0; round < 400; ++round) {
      current = mutate(rng.chance(0.5) ? current : seed_input, rng);
      std::istringstream in(current);
      try {
        const std::vector<sched::MissionSpec> specs =
            sched::parse_manifest(in);
        ++parsed_ok;
        // Anything accepted must survive the spec -> line -> spec
        // round trip (the journal stores specs in this vocabulary).
        for (const sched::MissionSpec& spec : specs) {
          sched::MissionSpec reparsed;
          ASSERT_EQ(sched::spec_from_manifest_line(
                        sched::spec_to_manifest_line(spec), reparsed),
                    "")
              << "re-emitted line unparsable for mutant: " << current;
          EXPECT_EQ(reparsed.name, spec.name);
          EXPECT_EQ(reparsed.lanes, spec.lanes);
          EXPECT_EQ(reparsed.generations, spec.generations);
          EXPECT_EQ(reparsed.seed, spec.seed);
          EXPECT_DOUBLE_EQ(reparsed.noise, spec.noise);
          EXPECT_EQ(reparsed.deadline_ms, spec.deadline_ms);
        }
      } catch (const std::exception&) {
        ++rejected;  // named-line manifest errors are the contract
      }
    }
  }
  EXPECT_GT(parsed_ok, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(FuzzLite, ManifestParserRejectsBrokenLinesLoudly) {
  const char* const kBroken[] = {
      "transmogrify x",             // unknown kind
      "denoise",                    // missing name
      "denoise dn lanes=0",         // out-of-range value
      "denoise dn lanes=-1",        // negative unsigned
      "denoise dn lanes",           // not key=value
      "denoise dn frobnicate=1",    // unknown key
      "denoise dn noise=2.0",       // out-of-range noise
      "denoise dup\ndenoise dup",   // duplicate mission name
      "denoise dn deadline-ms=x",   // unparsable deadline
  };
  for (const char* input : kBroken) {
    std::istringstream in(input);
    EXPECT_THROW(static_cast<void>(sched::parse_manifest(in)),
                 std::runtime_error)
        << "silently accepted: " << input;
  }
}

// --- socket-layer frame fuzz -------------------------------------------------
//
// The properties at the wire, below the JSON parser: a hostile or broken
// peer — binary garbage, NUL bytes, torn frames, pathological newline
// streams, oversized lines, writes split at arbitrary byte boundaries —
// must draw clean protocol errors or a clean hangup. Never a crash,
// never a hang, never unbounded buffering, and never collateral damage
// to well-behaved sessions on the same daemon.

/// One adversarial payload. Several shapes, all deterministic in `rng`.
std::string frame_garbage(Rng& rng) {
  switch (rng.range(0, 4)) {
    case 0: {  // pure binary noise, NULs and control bytes included
      std::string out;
      const std::size_t size = static_cast<std::size_t>(rng.range(1, 512));
      for (std::size_t i = 0; i < size; ++i) {
        out.push_back(static_cast<char>(rng.range(0, 255)));
      }
      return out + "\n";
    }
    case 1:  // near-valid request frame, structurally mutated
      return mutate(R"({"op":"hello","protocol":1})", rng) + "\n";
    case 2:  // torn frame: valid prefix, no terminator, then hangup
      return R"({"op":"submit","spec":{"kind":"deno)";
    case 3:  // well-formed JSON of the wrong shape
      return "[1,2,3]\n42\nnull\n\"just a string\"\n";
    default:  // a burst of empty frames
      return std::string(static_cast<std::size_t>(rng.range(1, 64)), '\n');
  }
}

TEST(FuzzLite, SocketLayerShrugsOffFrameGarbageAndStaysServiceable) {
  svc::ServerConfig config;
  config.pool.num_arrays = 1;
  config.max_line = 8192;  // tight bound: the fuzz can actually cross it
  svc::Server server(config);

  Rng rng(0xF022ED50C2ULL);
  for (int round = 0; round < 48; ++round) {
    svc::Socket peer = svc::Socket::connect_to("127.0.0.1", server.port());
    peer.set_recv_timeout(100);  // the test itself must never hang
    const std::string payload = frame_garbage(rng);
    // Split writes at arbitrary boundaries: the channel must reassemble
    // (or reject) frames identically however the bytes arrive.
    std::size_t sent = 0;
    while (sent < payload.size()) {
      const std::size_t chunk =
          std::min(static_cast<std::size_t>(rng.range(1, 7)),
                   payload.size() - sent);
      if (!peer.send_all(payload.data() + sent, chunk)) break;
      sent += chunk;
    }
    // Drain whatever the server answers (greeting + error frames) until
    // it hangs up or goes quiet; bounded reads, bounded time.
    char sink[1024];
    for (int reads = 0; reads < 64; ++reads) {
      if (peer.recv_some(sink, sizeof(sink)) <= 0) break;
    }
  }

  // After 48 hostile sessions the daemon still serves a clean handshake
  // and answers requests — no crash, no wedged acceptor, no leak of
  // session state into healthy connections.
  svc::Client client(server.port());
  EXPECT_EQ(client.server_version(), kVersion);
  EXPECT_TRUE(client.stats().get_bool("ok", false));
  server.stop();
}

TEST(FuzzLite, OversizedLinesDrawACleanProtocolErrorNotUnboundedBuffering) {
  svc::ServerConfig config;
  config.pool.num_arrays = 1;
  config.max_line = 4096;
  svc::Server server(config);

  svc::LineChannel channel(
      svc::Socket::connect_to("127.0.0.1", server.port()));
  channel.set_recv_timeout(5000);
  std::string line;
  ASSERT_TRUE(channel.read_line(line));  // greeting

  // A "line" three times the bound, never terminated. The server must
  // reject it the moment the bound is crossed — a clean error frame plus
  // a hangup — while holding at most max_line + one recv chunk.
  const std::string flood(3 * config.max_line, 'x');
  ASSERT_TRUE(channel.write_line(flood));
  ASSERT_TRUE(channel.read_line(line));
  const Json error = Json::parse(line);
  EXPECT_FALSE(error.get_bool("ok", true));
  EXPECT_EQ(error.get_string("code", ""), "oversize_frame");
  EXPECT_FALSE(channel.read_line(line));  // connection is gone

  // The rejection is per-session: a fresh client is unaffected.
  svc::Client client(server.port());
  EXPECT_TRUE(client.stats().get_bool("ok", false));
  server.stop();
}

}  // namespace
}  // namespace ehw
