// Randomized equivalence suite for the row-vectorized evaluation engine:
// CompiledArray's row kernel (filter_into / fitness_against) must be
// bit-identical to the per-window scalar path (CompiledArray::evaluate)
// and to the reference mesh model (SystolicArray::evaluate) over random
// genotypes — including defective cells, every output row, non-square
// shapes, constant/identity-heavy programs and full frames with borders.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ehw/common/rng.hpp"
#include "ehw/common/thread_pool.hpp"
#include "ehw/evo/batch.hpp"
#include "ehw/evo/genotype.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/pe/array.hpp"
#include "ehw/pe/compiled.hpp"

namespace ehw::pe {
namespace {

/// Filters via the public scalar path only (per-window evaluate), the
/// pre-row-kernel behaviour the engine must reproduce exactly.
img::Image scalar_filter(const CompiledArray& compiled,
                         const img::Image& src) {
  img::Image out(src.width(), src.height());
  Pixel win[kWindowTaps];
  for (std::size_t y = 0; y < src.height(); ++y) {
    for (std::size_t x = 0; x < src.width(); ++x) {
      img::gather_window3x3(src, x, y, win);
      out.set(x, y, compiled.evaluate(win, x, y));
    }
  }
  return out;
}

/// Sprinkles deterministic defects over the mesh (including, sometimes,
/// cells above/below the output row).
void inject_defects(SystolicArray& mesh, Rng& rng, int count) {
  for (int i = 0; i < count; ++i) {
    const auto r = static_cast<std::size_t>(rng.below(mesh.shape().rows));
    const auto c = static_cast<std::size_t>(rng.below(mesh.shape().cols));
    CellConfig cc = mesh.cell(r, c);
    cc.defective = true;
    cc.defect_seed = rng();
    mesh.set_cell(r, c, cc);
  }
}

struct EquivCase {
  std::size_t rows, cols;
  std::size_t width, height;
  int defects;
};

class RowKernelEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RowKernelEquivalence, RandomGenotypesAllPathsAgree) {
  Rng rng(GetParam() * 0x9E3779B97F4A7C15ULL + 1);
  const EquivCase cases[] = {
      {4, 4, 33, 17, 0}, {4, 4, 16, 16, 2}, {3, 5, 20, 11, 1},
      {5, 3, 13, 24, 3}, {1, 4, 9, 9, 1},   {2, 2, 7, 31, 0},
      {6, 2, 12, 12, 4},
  };
  for (const EquivCase& ec : cases) {
    evo::Genotype g = evo::Genotype::random(
        {ec.rows, ec.cols}, rng);
    for (std::uint8_t out_row = 0; out_row < ec.rows; ++out_row) {
      g.set_output_row(out_row);
      SystolicArray mesh = g.to_array();
      inject_defects(mesh, rng, ec.defects);
      const CompiledArray compiled(mesh);
      const img::Image src =
          img::make_scene(ec.width, ec.height, rng() & 0xFFFF);
      const img::Image ref =
          img::make_scene(ec.width, ec.height, rng() & 0xFFFF);

      // Reference mesh vs row kernel vs scalar path: bit-identical frames.
      const img::Image mesh_out = mesh.filter(src);
      const img::Image row_out = compiled.filter(src);
      EXPECT_EQ(mesh_out, row_out);
      EXPECT_EQ(scalar_filter(compiled, src), row_out);

      // Fitness fast path equals MAE over the materialized frame.
      EXPECT_EQ(compiled.fitness_against(src, ref),
                img::aggregated_mae(row_out, ref));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowKernelEquivalence,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(RowKernel, BorderOnlyFramesFallBackToScalar) {
  // Degenerate frames with no interior (w < 3 or h < 3) must still agree.
  Rng rng(77);
  const evo::Genotype g = evo::Genotype::random({4, 4}, rng);
  SystolicArray mesh = g.to_array();
  inject_defects(mesh, rng, 2);
  const CompiledArray compiled(mesh);
  for (const auto& [w, h] : {std::pair<std::size_t, std::size_t>{1, 1},
                             {2, 5}, {5, 2}, {3, 1}, {1, 8}, {3, 3}}) {
    const img::Image src = img::make_scene(w, h, w * 31 + h);
    EXPECT_EQ(mesh.filter(src), compiled.filter(src)) << w << "x" << h;
  }
}

TEST(RowKernel, FoldedProgramsStayExact) {
  // Programs dominated by identity/constant cells exercise the compile-
  // time folding: aliases chains, constant propagation, constant output.
  const fpga::ArrayShape shape{4, 4};
  const img::Image src = img::make_scene(19, 13, 5);

  // All-identity-W: output = west input tap of the output row.
  {
    evo::Genotype g(shape);
    for (std::size_t i = 0; i < g.cell_count(); ++i) {
      g.set_function_gene(i, static_cast<std::uint8_t>(PeOp::kIdentityW));
    }
    for (std::size_t i = 0; i < g.input_count(); ++i) {
      g.set_tap_gene(i, static_cast<std::uint8_t>(i % kWindowTaps));
    }
    for (std::uint8_t out = 0; out < 4; ++out) {
      g.set_output_row(out);
      const SystolicArray mesh = g.to_array();
      const CompiledArray compiled(mesh);
      EXPECT_EQ(compiled.step_count(), 0u);  // fully folded to an alias
      EXPECT_EQ(compiled.active_cell_count(), (out + 1u) * 4u);
      EXPECT_EQ(mesh.filter(src), compiled.filter(src));
    }
  }

  // Constant-dominated: C255 feeding inverts/shifts folds to a constant.
  {
    evo::Genotype g(shape);
    for (std::size_t i = 0; i < g.cell_count(); ++i) {
      g.set_function_gene(
          i, static_cast<std::uint8_t>(i % 2 == 0 ? PeOp::kConst255
                                                  : PeOp::kShiftR1));
    }
    g.set_output_row(3);
    const SystolicArray mesh = g.to_array();
    const CompiledArray compiled(mesh);
    EXPECT_EQ(compiled.step_count(), 0u);  // fully constant-folded
    EXPECT_EQ(mesh.filter(src), compiled.filter(src));
    const img::Image ref = img::make_scene(19, 13, 9);
    EXPECT_EQ(compiled.fitness_against(src, ref),
              img::aggregated_mae(mesh.filter(src), ref));
  }

  // Defective cell fed by folded constants: the defect must see the same
  // input values as the unfolded program.
  {
    evo::Genotype g(shape);
    for (std::size_t i = 0; i < g.cell_count(); ++i) {
      g.set_function_gene(i, static_cast<std::uint8_t>(PeOp::kConst255));
    }
    g.set_output_row(3);
    SystolicArray mesh = g.to_array();
    CellConfig cc = mesh.cell(3, 3);
    cc.defective = true;
    cc.defect_seed = 4242;
    mesh.set_cell(3, 3, cc);
    const CompiledArray compiled(mesh);
    EXPECT_TRUE(compiled.any_defective_active());
    EXPECT_EQ(mesh.filter(src), compiled.filter(src));
  }
}

TEST(RowKernel, ThreadedChunksMatchSequential) {
  Rng rng(31);
  ThreadPool pool(4);
  for (int rep = 0; rep < 4; ++rep) {
    const evo::Genotype g = evo::Genotype::random({4, 4}, rng);
    SystolicArray mesh = g.to_array();
    if (rep % 2 == 1) inject_defects(mesh, rng, 2);
    const CompiledArray compiled(mesh);
    const img::Image src = img::make_scene(96, 96, rep + 40);
    const img::Image ref = img::make_scene(96, 96, rep + 80);
    img::Image seq(96, 96), par(96, 96);
    compiled.filter_into(src, seq, nullptr);
    compiled.filter_into(src, par, &pool);
    EXPECT_EQ(seq, par);
    EXPECT_EQ(compiled.fitness_against(src, ref, &pool),
              compiled.fitness_against(src, ref, nullptr));
  }
}

TEST(BatchEvaluator, MatchesPerCandidateEvaluation) {
  Rng rng(91);
  const img::Image train = img::make_scene(64, 64, 3);
  const img::Image ref = img::make_scene(64, 64, 4);
  std::vector<evo::Genotype> population;
  for (int i = 0; i < 16; ++i) {
    population.push_back(evo::Genotype::random({4, 4}, rng));
  }
  ThreadPool pool(4);
  const evo::BatchEvaluator parallel_eval(train, ref, &pool);
  const evo::BatchEvaluator serial_eval(train, ref, nullptr);
  const std::vector<Fitness> par = parallel_eval.evaluate_genotypes(population);
  const std::vector<Fitness> ser = serial_eval.evaluate_genotypes(population);
  ASSERT_EQ(par.size(), population.size());
  EXPECT_EQ(par, ser);
  for (std::size_t i = 0; i < population.size(); ++i) {
    const CompiledArray compiled(population[i].to_array());
    EXPECT_EQ(par[i], compiled.fitness_against(train, ref));
  }
}

}  // namespace
}  // namespace ehw::pe
