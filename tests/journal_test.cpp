// Tests for daemon durability: the append-only mission journal (replay,
// torn-tail and corrupt-record handling), crash recovery in the Server
// (re-serving finished missions, resuming unfinished ones from their
// checkpoint with bit-identical results, duplicate names across
// restarts) and warm-state persistence across incarnations.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "ehw/common/persist.hpp"
#include "ehw/sched/checkpoint_store.hpp"
#include "ehw/sched/missions.hpp"
#include "ehw/svc/client.hpp"
#include "ehw/svc/journal.hpp"
#include "ehw/svc/server.hpp"

namespace ehw::svc {
namespace {

std::string fresh_dir(const std::string& leaf) {
  const std::string dir = testing::TempDir() + leaf;
  // Tests may run repeatedly in one tree: start from nothing.
  static_cast<void>(remove_file(dir + "/journal.jsonl"));
  static_cast<void>(remove_file(dir + "/warm.json"));
  for (std::uint64_t id = 1; id <= 16; ++id) {
    static_cast<void>(
        remove_file(dir + "/job-" + std::to_string(id) + ".ckpt"));
  }
  return dir;
}

sched::MissionSpec quick_spec(const std::string& name, Generation generations,
                              std::size_t lanes = 2) {
  sched::MissionSpec spec;
  spec.kind = sched::MissionKind::kDenoise;
  spec.name = name;
  spec.lanes = lanes;
  spec.generations = generations;
  spec.size = 16;
  spec.seed = 5;
  return spec;
}

ServerConfig durable_config(const std::string& journal_dir,
                            std::size_t arrays = 2) {
  ServerConfig config;
  config.pool.num_arrays = arrays;
  config.pool.line_width = 16;
  config.journal_dir = journal_dir;
  config.checkpoint_every = 4;
  return config;
}

// --- MissionJournal ---------------------------------------------------------

TEST(Journal, DirectoryCreatedOnDemand) {
  const std::string dir =
      testing::TempDir() + "ehw_journal_nested/deep/journal";
  static_cast<void>(remove_file(dir + "/journal.jsonl"));
  MissionJournal journal(dir);
  Json record = Json::object();
  record.set("rec", "submitted");
  record.set("job", static_cast<std::uint64_t>(1));
  EXPECT_TRUE(journal.append(record));
  EXPECT_EQ(journal.appended(), 1u);
  EXPECT_TRUE(file_exists(dir + "/journal.jsonl"));

  const MissionJournal::Replay replay = MissionJournal::replay(dir);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].get_string("rec", "?"), "submitted");
  EXPECT_EQ(replay.corrupt, 0u);
  EXPECT_FALSE(replay.truncated_tail);
}

TEST(Journal, ReplayOfMissingDirIsEmpty) {
  const MissionJournal::Replay replay =
      MissionJournal::replay(testing::TempDir() + "ehw_journal_never_made");
  EXPECT_TRUE(replay.records.empty());
  EXPECT_EQ(replay.corrupt, 0u);
  EXPECT_FALSE(replay.truncated_tail);
}

TEST(Journal, TruncatedTailIsToleratedAndFlagged) {
  const std::string dir = fresh_dir("ehw_journal_torn");
  ASSERT_EQ(ensure_directory(dir), "");
  // Two whole records, then a record torn mid-write — the exact wound a
  // kill -9 during append leaves.
  ASSERT_EQ(atomic_write_file(dir + "/journal.jsonl",
                              "{\"rec\":\"submitted\",\"job\":1}\n"
                              "{\"rec\":\"started\",\"job\":1}\n"
                              "{\"rec\":\"finished\",\"job\":1,\"stat"),
            "");
  const MissionJournal::Replay replay = MissionJournal::replay(dir);
  EXPECT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.corrupt, 0u);
  EXPECT_TRUE(replay.truncated_tail);
}

TEST(Journal, CorruptInteriorRecordIsCountedNotFatal) {
  const std::string dir = fresh_dir("ehw_journal_corrupt");
  ASSERT_EQ(ensure_directory(dir), "");
  ASSERT_EQ(atomic_write_file(dir + "/journal.jsonl",
                              "{\"rec\":\"submitted\",\"job\":1}\n"
                              "###garbage###\n"
                              "{\"rec\":\"started\",\"job\":1}\n"),
            "");
  const MissionJournal::Replay replay = MissionJournal::replay(dir);
  EXPECT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.corrupt, 1u);
  EXPECT_FALSE(replay.truncated_tail);
}

TEST(Journal, AppendAccumulatesAcrossIncarnations) {
  const std::string dir = fresh_dir("ehw_journal_accum");
  Json record = Json::object();
  record.set("rec", "started");
  record.set("job", static_cast<std::uint64_t>(7));
  {
    MissionJournal first(dir);
    EXPECT_TRUE(first.append(record));
    EXPECT_TRUE(first.append(record));
  }
  {
    MissionJournal second(dir);
    EXPECT_TRUE(second.append(record));
    EXPECT_EQ(second.appended(), 1u);  // this incarnation only
  }
  EXPECT_EQ(MissionJournal::replay(dir).records.size(), 3u);
}

// --- Server recovery --------------------------------------------------------

TEST(Recovery, FinishedMissionsAreReServedAcrossRestart) {
  const std::string dir = fresh_dir("ehw_recovery_reserve");
  const sched::MissionSpec spec = quick_spec("persisted", 8);

  Fitness fitness = 0;
  std::string hash;
  std::uint64_t job_id = 0;
  {
    Server server(durable_config(dir));
    Client client(server.port());
    const Client::Submitted submitted = client.submit(spec);
    ASSERT_TRUE(submitted.ok);
    job_id = submitted.job;
    const Json result = client.result(job_id);
    ASSERT_EQ(result.get_string("status", "?"), "done");
    fitness = static_cast<Fitness>(result.get_number("best_fitness", 0));
    hash = result.get_string("genotype_hash", "?");
    server.drain();
    server.stop();
  }

  // Restart on the same journal: the mission is answered from the log,
  // not recomputed.
  Server server(durable_config(dir));
  EXPECT_EQ(server.journal_stats().replayed_finished, 1u);
  EXPECT_EQ(server.journal_stats().resumed, 0u);
  Client client(server.port());
  const Json replayed = client.result(job_id);
  EXPECT_EQ(replayed.get_string("status", "?"), "done");
  EXPECT_TRUE(replayed.get_bool("replayed", false));
  EXPECT_EQ(static_cast<Fitness>(replayed.get_number("best_fitness", 0)),
            fitness);
  EXPECT_EQ(replayed.get_string("genotype_hash", "?"), hash);

  // The journal section of `stats` reports the recovery.
  const Json stats = client.stats();
  const Json* journal = stats.get("journal");
  ASSERT_NE(journal, nullptr);
  EXPECT_EQ(journal->get_string("dir", "?"), dir);
  EXPECT_EQ(journal->get_number("replayed_finished", -1), 1);
  EXPECT_FALSE(journal->get_bool("truncated_tail", true));
}

TEST(Recovery, DuplicateNamesAcrossRestartResolveToLatest) {
  const std::string dir = fresh_dir("ehw_recovery_dupes");
  const sched::MissionSpec spec = quick_spec("twin", 8);

  std::uint64_t first_id = 0;
  {
    Server server(durable_config(dir));
    Client client(server.port());
    const Client::Submitted submitted = client.submit(spec);
    ASSERT_TRUE(submitted.ok);
    first_id = submitted.job;
    static_cast<void>(client.result(first_id));
    server.drain();
    server.stop();
  }

  Server server(durable_config(dir));
  Client client(server.port());
  // Same name, new incarnation: ids must not collide...
  const Client::Submitted again = client.submit(spec);
  ASSERT_TRUE(again.ok);
  EXPECT_GT(again.job, first_id);
  static_cast<void>(client.result(again.job));
  // ...and a by-name lookup resolves to the LATEST submission (live),
  // while the replayed one stays reachable by id.
  Json by_name = Json::object();
  by_name.set("op", "result");
  by_name.set("job", "twin");
  const Json latest = client.request(by_name);
  EXPECT_EQ(static_cast<std::uint64_t>(latest.get_number("job", 0)),
            again.job);
  EXPECT_FALSE(latest.get_bool("replayed", false));
  const Json old = client.result(first_id);
  EXPECT_TRUE(old.get_bool("replayed", false));
  EXPECT_EQ(old.get_string("status", "?"), "done");
}

TEST(Recovery, ForgedCrashResumesFromCheckpointBitIdentical) {
  // Forge the on-disk state a kill -9 leaves behind: a journal whose
  // mission was submitted (write-ahead) but never finished, plus the
  // checkpoint sidecar of a mid-flight preemption. The restarted daemon
  // must resume it and land on the bit-identical result of an
  // uninterrupted run.
  const std::string dir = fresh_dir("ehw_recovery_forged");
  const sched::MissionSpec spec = quick_spec("phoenix", 24);

  const sched::JobOutcome reference = sched::run_spec_standalone(spec);
  const Fitness ref_fitness = reference.intrinsic.es.best_fitness;
  const std::string ref_hash = hash_hex(reference.intrinsic.es.best.hash());

  {
    MissionJournal journal(dir);
    Json submitted = Json::object();
    submitted.set("rec", "submitted");
    submitted.set("v", static_cast<std::uint64_t>(1));
    submitted.set("job", static_cast<std::uint64_t>(1));
    submitted.set("spec", spec_to_json(spec));
    ASSERT_TRUE(journal.append(submitted));
    Json started = Json::object();
    started.set("rec", "started");
    started.set("job", static_cast<std::uint64_t>(1));
    ASSERT_TRUE(journal.append(started));

    // The sidecar: a genuine mid-run checkpoint of the same spec.
    sched::MissionCheckpointing preempt;
    preempt.preempt_after = 9;
    preempt.sink = [&](const platform::MissionCheckpoint& state) {
      ASSERT_EQ(sched::save_mission_checkpoint(journal.checkpoint_path(1),
                                               spec, state),
                "");
    };
    static_cast<void>(sched::run_spec_standalone(spec, nullptr, preempt));
    ASSERT_TRUE(file_exists(journal.checkpoint_path(1)));
  }

  Server server(durable_config(dir));
  EXPECT_EQ(server.journal_stats().resumed, 1u);
  EXPECT_EQ(server.journal_stats().resumed_from_checkpoint, 1u);
  Client client(server.port());
  const Json result = client.result(1);
  EXPECT_EQ(result.get_string("status", "?"), "done");
  EXPECT_FALSE(result.get_bool("replayed", false));  // actually re-run
  EXPECT_EQ(static_cast<Fitness>(result.get_number("best_fitness", 0)),
            ref_fitness);
  EXPECT_EQ(result.get_string("genotype_hash", "?"), ref_hash);
  server.drain();
  server.stop();
  // By shutdown the finish observer has run: sidecar cleaned up and the
  // commit record journaled, so the NEXT restart re-serves instead of
  // re-running. (A client can observe `done` a beat before the observer
  // fires, so this is only checked post-stop.)
  EXPECT_FALSE(file_exists(dir + "/job-1.ckpt"));

  Server again(durable_config(dir));
  EXPECT_EQ(again.journal_stats().replayed_finished, 1u);
  EXPECT_EQ(again.journal_stats().resumed, 0u);
  Client verify(again.port());
  const Json reserved = verify.result(1);
  EXPECT_TRUE(reserved.get_bool("replayed", false));
  EXPECT_EQ(static_cast<Fitness>(reserved.get_number("best_fitness", 0)),
            ref_fitness);
  EXPECT_EQ(reserved.get_string("genotype_hash", "?"), ref_hash);
}

TEST(Recovery, ResumedMissionTooWideForShrunkenPoolFailsCleanly) {
  const std::string dir = fresh_dir("ehw_recovery_wide");
  const sched::MissionSpec spec = quick_spec("wide", 8, /*lanes=*/4);
  {
    MissionJournal journal(dir);
    Json submitted = Json::object();
    submitted.set("rec", "submitted");
    submitted.set("v", static_cast<std::uint64_t>(1));
    submitted.set("job", static_cast<std::uint64_t>(1));
    submitted.set("spec", spec_to_json(spec));
    ASSERT_TRUE(journal.append(submitted));
  }
  // Pool of 2 cannot host a 4-lane mission: recovery must mark it failed
  // (journaled, so the verdict survives the NEXT restart too).
  Server server(durable_config(dir, /*arrays=*/2));
  EXPECT_EQ(server.journal_stats().resumed, 0u);
  EXPECT_EQ(server.journal_stats().replayed_finished, 1u);
  Client client(server.port());
  const Json result = client.result(1);
  EXPECT_EQ(result.get_string("status", "?"), "failed");
  EXPECT_NE(result.get_string("error", ""), "");
}

TEST(Recovery, WarmStatePersistsAcrossRestart) {
  const std::string dir = fresh_dir("ehw_recovery_warm");
  {
    Server server(durable_config(dir));
    Client client(server.port());
    const Client::Submitted submitted =
        client.submit(quick_spec("warming", 8));
    ASSERT_TRUE(submitted.ok);
    static_cast<void>(client.result(submitted.job));
    server.drain();
    server.stop();
    EXPECT_TRUE(file_exists(dir + "/warm.json"));
  }
  Server server(durable_config(dir));
  // The mission memoized fitness evaluations; the restarted pool starts
  // preloaded with them.
  EXPECT_GT(server.journal_stats().warm_memo_loaded, 0u);
  EXPECT_GT(server.journal_stats().warm_cache_loaded, 0u);
}

}  // namespace
}  // namespace ehw::svc
