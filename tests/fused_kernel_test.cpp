// Randomized equivalence suite for the PR-5 fused SIMD kernels and the
// fitness memo: whatever lane configuration the build selected
// (vectorized or the EHW_SCALAR_KERNELS fallback), frame evaluation must
// stay bit-identical to the scalar mesh reference — over random defect
// maps, non-square frames, border rows and degenerate 1xN frames — and
// memo-on evaluation must be bit-identical to memo-off, including under
// concurrency. Runs under ASan and TSan in CI.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "ehw/common/rng.hpp"
#include "ehw/common/thread_pool.hpp"
#include "ehw/evo/batch.hpp"
#include "ehw/evo/fitness_memo.hpp"
#include "ehw/evo/genotype.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/pe/array.hpp"
#include "ehw/pe/compiled.hpp"
#include "ehw/pe/simd.hpp"

namespace ehw::pe {
namespace {

void inject_defects(SystolicArray& mesh, Rng& rng, int count) {
  for (int i = 0; i < count; ++i) {
    const auto r = static_cast<std::size_t>(rng.below(mesh.shape().rows));
    const auto c = static_cast<std::size_t>(rng.below(mesh.shape().cols));
    CellConfig cc = mesh.cell(r, c);
    cc.defective = true;
    cc.defect_seed = rng();
    mesh.set_cell(r, c, cc);
  }
}

TEST(FusedKernel, DefectiveRowLaneKernelMatchesScalarDefinition) {
  // The vectorized defective-cell kernel must reproduce
  // pe::defective_output byte for byte at every (x, y, w, n) — including
  // block offsets x0 > 0 (the fused kernel calls it per block).
  Rng rng(0xD0D0);
  for (int rep = 0; rep < 8; ++rep) {
    const std::uint64_t seed = rng();
    const std::size_t len = 1 + rng.below(300);
    const std::size_t x0 = rng.below(5000);
    const std::size_t y = rng.below(5000);
    std::vector<Pixel> w(len), n(len), out(len);
    for (std::size_t i = 0; i < len; ++i) {
      w[i] = rng.byte();
      n[i] = rng.byte();
    }
    defective_row(seed, x0, y, w.data(), n.data(), out.data(), len);
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_EQ(out[i], defective_output(seed, x0 + i, y, w[i], n[i]))
          << "len=" << len << " x0=" << x0 << " y=" << y << " i=" << i;
    }
  }
}

TEST(FusedKernel, AbsErrorBlocksMatchPlainSum) {
  Rng rng(0xAB5);
  for (int rep = 0; rep < 8; ++rep) {
    const std::size_t len = 1 + rng.below(kFuseBlock);
    std::vector<Pixel> a(len), b(len);
    for (std::size_t i = 0; i < len; ++i) {
      a[i] = rng.byte();
      b[i] = rng.byte();
    }
    std::uint32_t expect = 0;
    for (std::size_t i = 0; i < len; ++i) {
      expect += static_cast<std::uint32_t>(
          a[i] > b[i] ? a[i] - b[i] : b[i] - a[i]);
    }
    EXPECT_EQ(abs_error_block(a.data(), b.data(), len), expect);
    const Pixel c = rng.byte();
    std::uint32_t expect_const = 0;
    for (std::size_t i = 0; i < len; ++i) {
      expect_const += static_cast<std::uint32_t>(
          c > b[i] ? c - b[i] : b[i] - c);
    }
    EXPECT_EQ(abs_error_const_block(c, b.data(), len), expect_const);
  }
}

TEST(FusedKernel, DefectHeavyFramesMatchMeshEverywhere) {
  // Defect-dense random programs over frame shapes that stress the
  // padded line ring: widths around the fuse-block boundary, degenerate
  // 1xN / Nx1 frames, single rows and non-square extremes. Defects are
  // never folded or fused away — the mesh reference decides.
  Rng rng(0x5EED5);
  const std::pair<std::size_t, std::size_t> frames[] = {
      {1, 1},   {1, 9},  {9, 1},   {2, 7},
      {7, 2},   {3, 3},  {kFuseBlock - 1, 4}, {kFuseBlock, 3},
      {kFuseBlock + 1, 3}, {37, 53},
  };
  for (int rep = 0; rep < 4; ++rep) {
    const std::size_t rows = 1 + rng.below(5);
    const std::size_t cols = 1 + rng.below(5);
    evo::Genotype g = evo::Genotype::random({rows, cols}, rng);
    g.set_output_row(static_cast<std::uint8_t>(rng.below(rows)));
    SystolicArray mesh = g.to_array();
    inject_defects(mesh, rng, 1 + rep * 2);
    const CompiledArray compiled(mesh);
    for (const auto& [w, h] : frames) {
      const img::Image src = img::make_scene(w, h, rng() & 0xFFFF);
      const img::Image ref = img::make_scene(w, h, rng() & 0xFFFF);
      const img::Image mesh_out = mesh.filter(src);
      EXPECT_EQ(mesh_out, compiled.filter(src))
          << rows << "x" << cols << " frame " << w << "x" << h;
      EXPECT_EQ(compiled.fitness_against(src, ref),
                img::aggregated_mae(mesh_out, ref));
    }
  }
}

TEST(FusedKernel, ChunkedBordersAgreeWithWholeFrame) {
  // parallel_chunks splits the frame into row ranges; every chunk builds
  // its own line ring and must reproduce the unchunked result exactly,
  // including at chunk-boundary rows.
  Rng rng(0xC4C4);
  ThreadPool pool(3);
  for (int rep = 0; rep < 3; ++rep) {
    SystolicArray mesh = evo::Genotype::random({4, 4}, rng).to_array();
    inject_defects(mesh, rng, 3);
    const CompiledArray compiled(mesh);
    const img::Image src = img::make_scene(65, 97, rep + 11);
    const img::Image ref = img::make_scene(65, 97, rep + 90);
    img::Image seq(65, 97), par(65, 97);
    compiled.filter_into(src, seq, nullptr);
    compiled.filter_into(src, par, &pool);
    EXPECT_EQ(seq, par);
    EXPECT_EQ(compiled.fitness_against(src, ref, &pool),
              compiled.fitness_against(src, ref, nullptr));
  }
}

}  // namespace
}  // namespace ehw::pe

namespace ehw::evo {
namespace {

std::vector<Genotype> population_with_revisits(Rng& rng, std::size_t count) {
  std::vector<Genotype> population;
  population.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i >= 2 && i % 3 == 0) {
      population.push_back(population[i / 2]);  // deliberate revisit
    } else {
      population.push_back(Genotype::random({4, 4}, rng));
    }
  }
  return population;
}

TEST(FitnessMemo, LruStatsAndDisabledMode) {
  FitnessMemo memo(2);
  Fitness f = 0;
  EXPECT_FALSE(memo.lookup(1, &f));
  memo.store(1, 100);
  memo.store(2, 200);
  EXPECT_TRUE(memo.lookup(1, &f));  // 1 becomes MRU
  EXPECT_EQ(f, 100u);
  memo.store(3, 300);  // evicts 2
  EXPECT_FALSE(memo.lookup(2, &f));
  EXPECT_TRUE(memo.lookup(3, &f));
  EXPECT_EQ(f, 300u);
  const FitnessMemoStats stats = memo.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(memo.size(), 2u);

  FitnessMemo disabled(0);
  disabled.store(1, 100);
  EXPECT_FALSE(disabled.lookup(1, &f));
  EXPECT_EQ(disabled.size(), 0u);
}

TEST(FitnessMemo, MemoOnMatchesMemoOffBitExactly) {
  Rng rng(0x3E3E);
  const img::Image train = img::make_scene(48, 48, 3);
  const img::Image ref = img::make_scene(48, 48, 4);
  const std::vector<Genotype> population = population_with_revisits(rng, 24);

  const BatchEvaluator plain(train, ref, nullptr);
  FitnessMemo memo(1 << 10);
  const BatchEvaluator memoized(train, ref, nullptr, &memo);

  const std::vector<Fitness> expect = plain.evaluate_genotypes(population);
  EXPECT_EQ(memoized.evaluate_genotypes(population), expect);  // cold
  EXPECT_EQ(memoized.evaluate_genotypes(population), expect);  // warm
  const BatchMemoStats stats = memoized.memo_stats();
  EXPECT_GT(stats.hits, 0u);  // revisits + the full warm replay
  EXPECT_GT(memo.stats().hit_rate(), 0.4);
  for (const Genotype& g : population) {
    EXPECT_EQ(memoized.evaluate_one(g), plain.evaluate_one(g));
  }
}

TEST(FitnessMemo, DistinctFrameSetsNeverShareEntries) {
  Rng rng(0x1F1F);
  const Genotype g = Genotype::random({4, 4}, rng);
  const img::Image train_a = img::make_scene(32, 32, 1);
  const img::Image ref_a = img::make_scene(32, 32, 2);
  const img::Image train_b = img::make_scene(32, 32, 8);
  const img::Image ref_b = img::make_scene(32, 32, 9);
  FitnessMemo memo(64);
  const BatchEvaluator eval_a(train_a, ref_a, nullptr, &memo);
  const BatchEvaluator eval_b(train_b, ref_b, nullptr, &memo);
  static_cast<void>(eval_a.evaluate_one(g));
  const Fitness fb = eval_b.evaluate_one(g);
  const BatchEvaluator plain_b(train_b, ref_b, nullptr);
  EXPECT_EQ(fb, plain_b.evaluate_one(g));  // no cross-frame pollution
  // Same genotype, different frames: two distinct entries, zero hits.
  EXPECT_EQ(memo.size(), 2u);
  EXPECT_EQ(memo.stats().hits, 0u);
}

TEST(FitnessMemo, ConcurrentEvaluatorsStayBitIdentical) {
  // Several threads hammer one shared memo with overlapping populations;
  // every thread must see exactly the memo-off fitness values.
  Rng rng(0x7A7A);
  const img::Image train = img::make_scene(40, 40, 5);
  const img::Image ref = img::make_scene(40, 40, 6);
  const std::vector<Genotype> population = population_with_revisits(rng, 16);
  const BatchEvaluator plain(train, ref, nullptr);
  const std::vector<Fitness> expect = plain.evaluate_genotypes(population);

  FitnessMemo memo(1 << 10);
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      const BatchEvaluator memoized(train, ref, nullptr, &memo);
      for (int round = 0; round < 3; ++round) {
        if (memoized.evaluate_genotypes(population) != expect) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(memo.stats().hits, 0u);
}

}  // namespace
}  // namespace ehw::evo
