// Tests for ehw/common: RNG determinism and distribution sanity, running
// statistics, tables, CLI parsing, JSON, thread pool, build version.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ehw/common/cli.hpp"
#include "ehw/common/json.hpp"
#include "ehw/common/rng.hpp"
#include "ehw/common/stats.hpp"
#include "ehw/common/table.hpp"
#include "ehw/common/thread_pool.hpp"
#include "ehw/common/work_steal.hpp"
#include "ehw/common/version.hpp"

namespace ehw {
namespace {

// --- Json -------------------------------------------------------------------

TEST(Json, BuildsAndDumpsCompactFrames) {
  Json frame = Json::object();
  frame.set("op", "submit");
  frame.set("ok", true);
  frame.set("count", 42);
  frame.set("rate", 0.25);
  frame.set("note", nullptr);
  Json jobs = Json::array();
  jobs.push_back(std::uint64_t{1});
  jobs.push_back("two");
  frame.set("jobs", std::move(jobs));
  EXPECT_EQ(frame.dump(),
            R"({"op":"submit","ok":true,"count":42,"rate":0.25,)"
            R"("note":null,"jobs":[1,"two"]})");
  // set() replaces in place rather than appending a duplicate.
  frame.set("count", 43);
  EXPECT_EQ(frame.get_number("count", 0), 43.0);
}

TEST(Json, ParseRoundTripsEveryValueKind) {
  const std::string wire =
      R"({"s":"a\"b\\c\nAé","n":-12.5,"i":9007199254740992,)"
      R"("b":false,"z":null,"a":[1,[2,{"k":3}]],"o":{}})";
  const Json parsed = Json::parse(wire);
  EXPECT_EQ(parsed.get_string("s", ""), "a\"b\\c\nA\xC3\xA9");
  EXPECT_EQ(parsed.get_number("n", 0), -12.5);
  EXPECT_EQ(parsed.get_number("i", 0), 9007199254740992.0);
  EXPECT_FALSE(parsed.get_bool("b", true));
  ASSERT_NE(parsed.get("z"), nullptr);
  EXPECT_TRUE(parsed.get("z")->is_null());
  EXPECT_EQ(parsed.get("a")->as_array()[1].as_array()[1].get_number("k", 0),
            3.0);
  // dump() -> parse() is a fixed point.
  EXPECT_EQ(Json::parse(parsed.dump()), parsed);
}

TEST(Json, ParseHandlesSurrogatePairsAndEscapedOutput) {
  const Json parsed = Json::parse(R"("😀")");  // 😀 U+1F600
  EXPECT_EQ(parsed.as_string(), "\xF0\x9F\x98\x80");
  // Control characters are escaped on output, so frames stay one line.
  const Json newline(std::string("a\nb\x01"));
  EXPECT_EQ(newline.dump(), "\"a\\nb\\u0001\"");
  EXPECT_EQ(Json::parse(newline.dump()), newline);
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), JsonError);
  EXPECT_THROW(Json::parse("[1 2]"), JsonError);
  EXPECT_THROW(Json::parse("042"), JsonError);
  EXPECT_THROW(Json::parse("1.2.3"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("\"bad \\x escape\""), JsonError);
  EXPECT_THROW(Json::parse("\"lone \\ud800 surrogate\""), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
  EXPECT_THROW(Json::parse("{} trailing"), JsonError);
  EXPECT_THROW(Json::parse("\"raw\ncontrol\""), JsonError);
  // Overflow to inf must be rejected, not silently dumped as null.
  EXPECT_THROW(Json::parse("1e400"), JsonError);
  EXPECT_THROW(Json::parse("-1e400"), JsonError);
  // Nesting bomb: bounded depth instead of a stack overflow.
  EXPECT_THROW(Json::parse(std::string(1000, '[')), JsonError);
  // Type errors on accessors are JsonError too.
  EXPECT_THROW(static_cast<void>(Json(1.0).as_string()), JsonError);
  EXPECT_THROW(static_cast<void>(Json("x").as_array()), JsonError);
}

TEST(Json, NumberEmissionIsExactForIntegersAndRoundTripsDoubles) {
  EXPECT_EQ(Json(std::uint64_t{9007199254740992ULL}).dump(),
            "9007199254740992");  // 2^53, the exactness edge
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(0.1).dump(), "0.1");
  const double tricky = 1.0 / 3.0;
  EXPECT_EQ(Json::parse(Json(tricky).dump()).as_number(), tricky);
  EXPECT_TRUE(json_number_is_exact_int(42.0));
  EXPECT_FALSE(json_number_is_exact_int(0.5));
  EXPECT_FALSE(json_number_is_exact_int(1e300));
}

TEST(Version, IsNonEmptyAndMatchesComponents) {
  const std::string version = kVersion;
  EXPECT_EQ(version, std::to_string(kVersionMajor) + "." +
                         std::to_string(kVersionMinor) + "." +
                         std::to_string(kVersionPatch));
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(123), b(124);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 9ull, 16ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(9));
  EXPECT_EQ(seen.size(), 9u);
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(5);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(77);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(HashMix, DependsOnAllArguments) {
  EXPECT_NE(hash_mix(1, 2, 3, 4), hash_mix(1, 2, 3, 5));
  EXPECT_NE(hash_mix(1, 2, 3, 4), hash_mix(1, 2, 4, 4));
  EXPECT_NE(hash_mix(1, 2, 3, 4), hash_mix(2, 2, 3, 4));
  EXPECT_EQ(hash_mix(1, 2, 3, 4), hash_mix(1, 2, 3, 4));
}

TEST(RunningStats, MatchesBatchFormulas) {
  RunningStats s;
  const std::vector<double> xs{1.0, 2.0, 2.5, -4.0, 8.0, 0.5};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), mean_of(xs), 1e-12);
  EXPECT_NEAR(s.stddev(), stddev_of(xs), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -4.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10;
    all.add(x);
    (i < 25 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  s.add(5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 50), 25);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  const std::string s = t.to_string();
  // Column widths: "alpha" (5) and "value" (5).
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22.5  |"), std::string::npos);
}

TEST(Table, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::integer(42), "42");
}

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog", "--full",       "--runs=5", "--size", "128",
                        "pos1", "--rate=0.25"};
  Cli cli(7, argv);
  EXPECT_TRUE(cli.has("full"));
  EXPECT_FALSE(cli.has("absent"));
  EXPECT_EQ(cli.get_int("runs", 0), 5);
  EXPECT_EQ(cli.get_int("size", 0), 128);
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0), 0.25);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, FallbacksApply) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  EXPECT_EQ(cli.get_int("missing", 7), 7);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ParallelChunksCoverDisjointly) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(997);  // prime: uneven last chunk
  pool.parallel_chunks(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
    ASSERT_LT(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelChunksPropagatesExceptions) {
  ThreadPool pool(4);
  const auto run = [&] {
    pool.parallel_chunks(0, 400, [](std::size_t lo, std::size_t) {
      if (lo >= 100) throw std::runtime_error("chunk failed");
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
  // The pool must stay usable after a failed fan-out.
  std::atomic<int> sum{0};
  pool.parallel_for(0, 10, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) {
    futs.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 200);
}

// --- WorkStealPool ----------------------------------------------------------

TEST(WorkSteal, AllTasksExecuteAndDrainOnDestruction) {
  std::atomic<int> counter{0};
  {
    WorkStealPool pool(3);
    for (int i = 0; i < 500; ++i) {
      pool.submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor finishes every queued task before joining.
  }
  EXPECT_EQ(counter.load(), 500);
}

TEST(WorkSteal, StatsCountSubmissionsAndExecutions) {
  WorkStealPool pool(2);
  std::atomic<int> done{0};
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  while (done.load(std::memory_order_relaxed) != kTasks) {
    std::this_thread::yield();
  }
  const WorkStealPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(stats.executed, static_cast<std::uint64_t>(kTasks));
}

TEST(WorkSteal, IdleWorkerStealsFromBusyWorkersDeque) {
  // A worker task fans out subtasks onto its OWN deque and then blocks
  // until all of them ran. The submitting worker is occupied, so every
  // subtask must migrate to the other worker via steal-half raids.
  WorkStealPool pool(2);
  std::atomic<int> sub_done{0};
  std::atomic<bool> outer_done{false};
  constexpr int kSubtasks = 8;
  pool.submit([&] {
    for (int i = 0; i < kSubtasks; ++i) {
      pool.submit(
          [&] { sub_done.fetch_add(1, std::memory_order_relaxed); });
    }
    while (sub_done.load(std::memory_order_relaxed) != kSubtasks) {
      std::this_thread::yield();
    }
    outer_done.store(true, std::memory_order_release);
  });
  while (!outer_done.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  const WorkStealPool::Stats stats = pool.stats();
  // All subtasks migrated; the idle worker may additionally have stolen
  // the externally submitted outer task itself before running it.
  EXPECT_GE(stats.stolen, static_cast<std::uint64_t>(kSubtasks));
  EXPECT_LE(stats.stolen, static_cast<std::uint64_t>(kSubtasks) + 1);
  EXPECT_GE(stats.steal_batches, 1u);
  // Steal-half migrates batches, not single tasks: raiding the queued
  // tasks takes at most one raid per task even in the worst interleaving.
  EXPECT_LE(stats.steal_batches, static_cast<std::uint64_t>(kSubtasks) + 1);
}

TEST(WorkSteal, WorkerRecursiveSubmitsKeepDraining) {
  // Chained submits from inside tasks (the ArrayPool admission pattern:
  // a finishing job admits the next) must all run without external
  // nudging.
  // Declared before the pool: workers may still be returning through
  // `chain` when the count hits 21, so it must outlive the pool join.
  std::atomic<int> depth_done{0};
  std::function<void(int)> chain;
  {
    WorkStealPool pool(2);
    chain = [&](int depth) {
      if (depth > 0) {
        pool.submit([&chain, depth] { chain(depth - 1); });
      }
      depth_done.fetch_add(1, std::memory_order_relaxed);
    };
    pool.submit([&chain] { chain(20); });
    // The pool destructor drains every queued task and joins.
  }
  EXPECT_EQ(depth_done.load(), 21);
}

TEST(WorkSteal, SharedPoolIsBoundedAndReusable) {
  WorkStealPool& shared = WorkStealPool::shared();
  EXPECT_GE(shared.size(), 2u);
  std::atomic<int> ran{0};
  shared.submit([&] { ran.fetch_add(1); });
  while (ran.load() != 1) std::this_thread::yield();
  EXPECT_EQ(&shared, &WorkStealPool::shared());
}

}  // namespace
}  // namespace ehw
