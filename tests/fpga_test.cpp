// Tests for ehw/fpga: geometry addressing, the two-plane configuration
// memory, SEU/LPD fault semantics, and scrubbing.

#include <gtest/gtest.h>

#include "ehw/fpga/bitstream.hpp"
#include "ehw/fpga/config_memory.hpp"
#include "ehw/fpga/fault.hpp"
#include "ehw/fpga/geometry.hpp"
#include "ehw/fpga/scrubber.hpp"

namespace ehw::fpga {
namespace {

FabricGeometry make_geometry(std::size_t arrays = 3) {
  return FabricGeometry(arrays, ArrayShape{4, 4});
}

TEST(Geometry, SlotIndexingRoundTrips) {
  const FabricGeometry g = make_geometry();
  std::size_t expected = 0;
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t c = 0; c < 4; ++c) {
        const SlotAddress addr{a, r, c};
        EXPECT_EQ(g.slot_index(addr), expected);
        const std::size_t base = g.slot_word_base(addr);
        EXPECT_EQ(g.slot_of_word(base), addr);
        EXPECT_EQ(g.slot_of_word(base + g.words_per_slot() - 1), addr);
        ++expected;
      }
    }
  }
  EXPECT_EQ(g.total_slots(), 48u);
  EXPECT_EQ(g.total_words(), 48u * g.words_per_slot());
}

TEST(Geometry, RejectsOutOfRange) {
  const FabricGeometry g = make_geometry();
  EXPECT_THROW(static_cast<void>(g.slot_index({3, 0, 0})), std::logic_error);
  EXPECT_THROW(static_cast<void>(g.slot_index({0, 4, 0})), std::logic_error);
  EXPECT_THROW(static_cast<void>(g.slot_of_word(g.total_words())),
               std::logic_error);
}

TEST(Geometry, ClbFootprintMatchesPaper) {
  // 4x4 PEs x 10 CLBs + 16 cells of interconnect margin = 176 >= 160:
  // the layout constant the resource model reports separately is the
  // paper's 160-CLB clock region; geometry's own margin covers routing.
  const FabricGeometry g = make_geometry();
  EXPECT_EQ(g.layout().clbs_per_slot, 10u);
  EXPECT_GE(g.clbs_per_array(), 160u);
}

TEST(ConfigMemory, WriteThenRead) {
  ConfigMemory mem(16);
  mem.write(3, 0xDEADBEEF);
  EXPECT_EQ(mem.read(3), 0xDEADBEEFu);
  EXPECT_EQ(mem.read_intended(3), 0xDEADBEEFu);
  EXPECT_EQ(mem.upset_word_count(), 0u);
}

TEST(ConfigMemory, SeuDeviatesAndScrubRestores) {
  ConfigMemory mem(16);
  mem.write(5, 0xFFFF0000);
  mem.flip_bit(5, 0);
  EXPECT_EQ(mem.read(5), 0xFFFF0001u);
  EXPECT_EQ(mem.read_intended(5), 0xFFFF0000u);  // intent unchanged
  EXPECT_EQ(mem.upset_word_count(), 1u);
  EXPECT_TRUE(mem.rewrite(5));
  EXPECT_EQ(mem.read(5), 0xFFFF0000u);
  EXPECT_EQ(mem.upset_word_count(), 0u);
}

TEST(ConfigMemory, StuckBitDefeatsWrites) {
  ConfigMemory mem(16);
  mem.write(2, 0x0);
  mem.set_stuck_bit(2, 4, true);
  EXPECT_EQ(mem.read(2) & (1u << 4), 1u << 4);  // damage immediate
  mem.write(2, 0x0);                             // write cannot clear it
  EXPECT_EQ(mem.read(2), 1u << 4);
  EXPECT_EQ(mem.read_intended(2), 0u);
  mem.rewrite(2);  // scrub cannot clear it either
  EXPECT_EQ(mem.read(2), 1u << 4);
  EXPECT_EQ(mem.stuck_bit_count(), 1u);
  // Stuck deviation is not an "upset" (it is permanent damage).
  EXPECT_EQ(mem.upset_word_count(), 0u);
}

TEST(ConfigMemory, StuckAtZeroForcesZero) {
  ConfigMemory mem(8);
  mem.write(1, 0xFFFFFFFF);
  mem.set_stuck_bit(1, 31, false);
  EXPECT_EQ(mem.read(1), 0x7FFFFFFFu);
  mem.write(1, 0xFFFFFFFF);
  EXPECT_EQ(mem.read(1), 0x7FFFFFFFu);
  mem.clear_stuck_bit(1, 31);
  mem.write(1, 0xFFFFFFFF);
  EXPECT_EQ(mem.read(1), 0xFFFFFFFFu);
}

TEST(ConfigMemory, BoundsChecked) {
  ConfigMemory mem(4);
  EXPECT_THROW(static_cast<void>(mem.read(4)), std::logic_error);
  EXPECT_THROW(mem.write(9, 0), std::logic_error);
  EXPECT_THROW(mem.flip_bit(0, 32), std::logic_error);
}

TEST(Bitstream, ReadbackMatchesWrites) {
  ConfigMemory mem(64);
  std::vector<ConfigWord> payload{1, 2, 3, 4};
  const PartialBitstream pbs("test", payload);
  write_payload(mem, 8, pbs);
  const PartialBitstream back = readback(mem, 8, 4);
  EXPECT_EQ(back, pbs);
  EXPECT_EQ(back.word_count(), 4u);
}

TEST(Bitstream, OutOfRangeRejected) {
  ConfigMemory mem(4);
  const PartialBitstream pbs("p", {1, 2, 3});
  EXPECT_THROW(write_payload(mem, 2, pbs), std::logic_error);
  EXPECT_THROW(readback(mem, 2, 3), std::logic_error);
}

TEST(FaultInjector, SeuJournalAndEffect) {
  const FabricGeometry g = make_geometry();
  ConfigMemory mem(g.total_words());
  FaultInjector inj(mem, g, 99);
  const FaultRecord rec = inj.inject_seu_in_slot({1, 2, 3});
  EXPECT_EQ(rec.kind, FaultKind::kSeu);
  EXPECT_EQ(rec.slot, (SlotAddress{1, 2, 3}));
  // The flip landed inside the slot's word range.
  const std::size_t base = g.slot_word_base({1, 2, 3});
  EXPECT_GE(rec.word, base);
  EXPECT_LT(rec.word, base + g.words_per_slot());
  EXPECT_EQ(mem.upset_word_count(), 1u);
  EXPECT_EQ(inj.journal().size(), 1u);
}

TEST(FaultInjector, LpdIsObservableImmediately) {
  const FabricGeometry g = make_geometry();
  ConfigMemory mem(g.total_words());
  FaultInjector inj(mem, g, 7);
  const FaultRecord rec = inj.inject_lpd_in_slot({0, 0, 0});
  EXPECT_EQ(rec.kind, FaultKind::kLpd);
  // Stuck value is the complement of what was there: the bit now differs
  // from intent.
  const bool bit = (mem.read(rec.word) >> rec.bit) & 1u;
  EXPECT_EQ(bit, rec.stuck_value);
  EXPECT_EQ(mem.stuck_bit_count(), 1u);
}

TEST(FaultInjector, DescribeMentionsLocation) {
  const FabricGeometry g = make_geometry();
  ConfigMemory mem(g.total_words());
  FaultInjector inj(mem, g, 7);
  const FaultRecord rec = inj.inject_seu_anywhere();
  const std::string s = FaultInjector::describe(rec);
  EXPECT_NE(s.find("SEU"), std::string::npos);
  EXPECT_NE(s.find("array="), std::string::npos);
}

TEST(Scrubber, CorrectsSeuReportsLpd) {
  const FabricGeometry g = make_geometry(1);
  ConfigMemory mem(g.total_words());
  // Give intent everywhere.
  for (std::size_t i = 0; i < mem.size(); ++i) mem.write(i, 0xA5A5A5A5);
  FaultInjector inj(mem, g, 3);
  inj.inject_seu_in_slot({0, 1, 1});
  inj.inject_lpd(g.slot_word_base({0, 2, 2}), 3, false);  // A5: bit3 is 0? A5 = 1010 0101 -> bit3=0

  Scrubber scrub(mem, g);
  const ScrubReport r = scrub.scrub_all();
  EXPECT_EQ(r.words_checked, g.total_words());
  EXPECT_EQ(r.words_corrected, 1u);  // the SEU
  // The LPD at bit3 stuck-0 where intent has 0 is masked (no deviation):
  // supported-fault behaviour depends on the configured pattern (§V).
  EXPECT_EQ(mem.upset_word_count(), 0u);
  EXPECT_GT(r.duration, 0);
}

TEST(Scrubber, ReportsUncorrectableWhenStuckDisagrees) {
  const FabricGeometry g = make_geometry(1);
  ConfigMemory mem(g.total_words());
  for (std::size_t i = 0; i < mem.size(); ++i) mem.write(i, 0x0);
  // Stuck-at-1 where intent wants 0: uncorrectable deviation.
  mem.set_stuck_bit(5, 7, true);
  Scrubber scrub(mem, g);
  const ScrubReport r = scrub.scrub_array(0);
  EXPECT_EQ(r.words_corrected, 0u);
  EXPECT_EQ(r.words_uncorrectable, 1u);
  EXPECT_TRUE(r.found_fault());
}

TEST(Scrubber, SlotScrubTouchesOnlySlot) {
  const FabricGeometry g = make_geometry(2);
  ConfigMemory mem(g.total_words());
  for (std::size_t i = 0; i < mem.size(); ++i) mem.write(i, 0xFF00FF00);
  // Upsets in two different slots.
  mem.flip_bit(g.slot_word_base({0, 0, 0}), 1);
  mem.flip_bit(g.slot_word_base({1, 3, 3}), 1);
  Scrubber scrub(mem, g);
  const ScrubReport r = scrub.scrub_slot({0, 0, 0});
  EXPECT_EQ(r.words_corrected, 1u);
  EXPECT_EQ(mem.upset_word_count(), 1u);  // the other slot still upset
}

}  // namespace
}  // namespace ehw::fpga
