// Tests for ehw/analysis: the systematic PE fault campaign, the SEU
// sensitivity sweep, and the report renderers.

#include <gtest/gtest.h>

#include <sstream>

#include "ehw/analysis/campaign.hpp"
#include "ehw/analysis/report.hpp"
#include "ehw/analysis/seu_sweep.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/synthetic.hpp"
#include "test_util.hpp"

namespace ehw::analysis {
namespace {

TEST(FaultCampaign, IdentityCircuitCriticalityPattern) {
  // Identity genotype (output row 0, IdentityW chain on row 0, west tap 4):
  // only the row-0 cells carry the output; every other cell's fault is
  // masked. The row-0 cells are all critical.
  platform::EvolvablePlatform plat(test::small_platform_config(1));
  plat.configure_array(0, test::identity_genotype(), 0);
  const img::Image scene = img::make_scene(24, 24, 3);

  const CampaignResult r =
      run_pe_fault_campaign(plat, 0, scene, scene, {});
  ASSERT_EQ(r.cells.size(), 16u);
  for (const auto& cell : r.cells) {
    if (cell.row == 0) {
      EXPECT_FALSE(cell.masked())
          << "(" << cell.row << "," << cell.col << ")";
    } else {
      EXPECT_TRUE(cell.masked()) << "(" << cell.row << "," << cell.col << ")";
    }
  }
  EXPECT_EQ(r.masked_count(), 12u);
  EXPECT_EQ(r.critical_count(), 4u);
}

TEST(FaultCampaign, RestoresPlatformState) {
  platform::EvolvablePlatform plat(test::small_platform_config(1));
  Rng rng(5);
  const evo::Genotype circuit = evo::Genotype::random({4, 4}, rng);
  plat.configure_array(0, circuit, 0);
  const img::Image scene = img::make_scene(24, 24, 4);
  const img::Image before = plat.filter_array(0, scene);

  (void)run_pe_fault_campaign(plat, 0, scene, scene, {});

  // No residual faults, same behaviour as before the campaign.
  EXPECT_FALSE(plat.decode_array(0).any_defective());
  EXPECT_EQ(plat.filter_array(0, scene), before);
  ASSERT_TRUE(plat.configured_genotype(0).has_value());
  EXPECT_EQ(*plat.configured_genotype(0), circuit);
}

TEST(FaultCampaign, RecoveryClassifiesSupportedFaults) {
  platform::EvolvablePlatform plat(test::small_platform_config(1));
  plat.configure_array(0, test::identity_genotype(), 0);
  const img::Image scene = img::make_scene(24, 24, 6);

  CampaignConfig cfg;
  cfg.run_recovery = true;
  cfg.recovery_es.generations = 120;
  cfg.recovery_es.seed = 9;
  const CampaignResult r = run_pe_fault_campaign(plat, 0, scene, scene, cfg);
  // Identity task: re-evolution can route the identity through another row
  // for at least some of the 4 critical row-0 cells.
  EXPECT_GT(r.supported_count, 0u);
  for (const auto& cell : r.cells) {
    if (!cell.masked()) {
      EXPECT_NE(cell.recovered_fitness, kInvalidFitness);
      EXPECT_LE(cell.recovered_fitness, cell.faulty_fitness);
    }
  }
}

TEST(FaultCampaign, RequiresDeployedCircuit) {
  platform::EvolvablePlatform plat(test::small_platform_config(1));
  const img::Image scene = img::make_scene(16, 16, 7);
  EXPECT_THROW((void)run_pe_fault_campaign(plat, 0, scene, scene, {}),
               std::logic_error);
}

TEST(CriticalityReport, MapAndTableRender) {
  platform::EvolvablePlatform plat(test::small_platform_config(1));
  plat.configure_array(0, test::identity_genotype(), 0);
  const img::Image scene = img::make_scene(24, 24, 8);
  const CampaignResult r = run_pe_fault_campaign(plat, 0, scene, scene, {});

  const std::string map =
      criticality_map_string(r, plat.config().shape);
  // Row 0 critical (X), rows 1..3 masked (.).
  EXPECT_NE(map.find("X X X X"), std::string::npos);
  EXPECT_NE(map.find(". . . ."), std::string::npos);

  std::ostringstream os;
  render_campaign_table(os, r);
  EXPECT_NE(os.str().find("masked 12 / critical 4"), std::string::npos);
}

TEST(SeuSweep, IdentityCircuitRowZeroSensitivity) {
  platform::EvolvablePlatform plat(test::small_platform_config(1));
  plat.configure_array(0, test::identity_genotype(), 0);
  const img::Image probe = img::make_scene(16, 16, 9);

  SeuSweepConfig cfg;
  cfg.bit_stride = 64;  // sampled sweep keeps the test fast
  const SeuSweepResult r = run_seu_sweep(plat, 0, probe, cfg);
  ASSERT_EQ(r.slots.size(), 16u);
  // Any flip corrupts an intact slot's payload -> the cell turns
  // defective. Only row 0 is observable for the identity circuit.
  for (const auto& slot : r.slots) {
    if (slot.row == 0) {
      EXPECT_GT(slot.avf(), 0.9) << "(" << slot.row << "," << slot.col << ")";
    } else {
      EXPECT_EQ(slot.corrupting, 0u);
    }
  }
  // Every flip must be scrub-recoverable (transient-fault guarantee).
  EXPECT_TRUE(r.all_scrub_recovered());
  EXPECT_EQ(plat.config_memory().upset_word_count(), 0u);
}

TEST(SeuSweep, OverallAvfBetweenZeroAndOne) {
  platform::EvolvablePlatform plat(test::small_platform_config(1));
  Rng rng(11);
  plat.configure_array(0, evo::Genotype::random({4, 4}, rng), 0);
  const img::Image probe = img::make_scene(12, 12, 10);
  SeuSweepConfig cfg;
  cfg.bit_stride = 128;
  const SeuSweepResult r = run_seu_sweep(plat, 0, probe, cfg);
  EXPECT_GT(r.total_flips(), 0u);
  EXPECT_GE(r.overall_avf(), 0.0);
  EXPECT_LE(r.overall_avf(), 1.0);
}

TEST(SeuSweep, ReportRenders) {
  platform::EvolvablePlatform plat(test::small_platform_config(1));
  plat.configure_array(0, test::identity_genotype(), 0);
  const img::Image probe = img::make_scene(12, 12, 12);
  SeuSweepConfig cfg;
  cfg.bit_stride = 256;
  const SeuSweepResult r = run_seu_sweep(plat, 0, probe, cfg);
  std::ostringstream os;
  render_seu_table(os, r);
  EXPECT_NE(os.str().find("overall AVF"), std::string::npos);
  EXPECT_NE(os.str().find("scrubbing healed ALL flips"), std::string::npos);
}

}  // namespace
}  // namespace ehw::analysis
