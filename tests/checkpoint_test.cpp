// Tests for mission checkpoint/restore: the JSON round trips of the
// checkpoint vocabulary, and — above all — the bit-identity contract: a
// run that is preempted, serialized to JSON, and resumed on a FRESH
// platform must land on exactly the result (genotype hash, fitness,
// history, simulated duration, DPR writes) of an uninterrupted run.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ehw/common/persist.hpp"
#include "ehw/common/rng.hpp"
#include "ehw/evo/checkpoint.hpp"
#include "ehw/evo/serialize.hpp"
#include "ehw/platform/cascade_evolution.hpp"
#include "ehw/platform/checkpoint.hpp"
#include "ehw/platform/evolution_driver.hpp"
#include "ehw/sched/checkpoint_store.hpp"
#include "ehw/sched/missions.hpp"
#include "test_util.hpp"

namespace ehw::platform {
namespace {

evo::EsConfig quick_es(Generation generations, std::uint64_t seed,
                       std::size_t k = 3, bool two_level = false) {
  evo::EsConfig cfg;
  cfg.lambda = 9;
  cfg.mutation_rate = k;
  cfg.two_level = two_level;
  cfg.generations = generations;
  cfg.seed = seed;
  return cfg;
}

/// Serialize then parse — resumes in these tests always go through the
/// wire format, so a field missing from the JSON codec fails loudly.
MissionCheckpoint json_round_trip(const MissionCheckpoint& ckpt) {
  MissionCheckpoint out;
  const std::string error =
      mission_checkpoint_from_json(mission_checkpoint_to_json(ckpt), out);
  EXPECT_EQ(error, "");
  return out;
}

void expect_same_intrinsic(const IntrinsicResult& a,
                           const IntrinsicResult& b) {
  EXPECT_EQ(a.es.best, b.es.best);
  EXPECT_EQ(a.es.best_fitness, b.es.best_fitness);
  EXPECT_EQ(a.es.generations_run, b.es.generations_run);
  ASSERT_EQ(a.es.history.size(), b.es.history.size());
  for (std::size_t i = 0; i < a.es.history.size(); ++i) {
    EXPECT_EQ(a.es.history[i].generation, b.es.history[i].generation);
    EXPECT_EQ(a.es.history[i].fitness, b.es.history[i].fitness);
  }
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.pe_writes, b.pe_writes);
}

void expect_same_cascade(const CascadeResult& a, const CascadeResult& b) {
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t s = 0; s < a.stages.size(); ++s) {
    EXPECT_EQ(a.stages[s].best, b.stages[s].best) << "stage " << s;
    EXPECT_EQ(a.stages[s].stage_fitness, b.stages[s].stage_fitness)
        << "stage " << s;
  }
  EXPECT_EQ(a.chain_fitness, b.chain_fitness);
  EXPECT_EQ(a.duration, b.duration);
}

// --- serialization ----------------------------------------------------------

TEST(Checkpoint, RngStateRoundTrip) {
  Rng rng(0xFACE);
  for (int i = 0; i < 17; ++i) static_cast<void>(rng());
  const Rng::State state = rng.state();
  Rng clone(1);
  clone.set_state(state);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(clone(), rng());
}

TEST(Checkpoint, RngWordHexCodec) {
  for (const std::uint64_t word :
       {std::uint64_t{0}, std::uint64_t{0xDEADBEEF},
        ~std::uint64_t{0}}) {
    std::uint64_t back = 1;
    const Json json = evo::rng_word_to_json(word);
    ASSERT_TRUE(evo::rng_word_from_json(&json, back));
    EXPECT_EQ(back, word);
  }
  std::uint64_t back = 0;
  const Json short_word("abc");
  EXPECT_FALSE(evo::rng_word_from_json(&short_word, back));
  const Json upper("00000000DEADBEEF");
  EXPECT_FALSE(evo::rng_word_from_json(&upper, back));
  EXPECT_FALSE(evo::rng_word_from_json(nullptr, back));
}

TEST(Checkpoint, EsCheckpointJsonRoundTrip) {
  evo::EsCheckpoint ckpt;
  ckpt.next_generation = 42;
  ckpt.parent = test::identity_genotype();
  ckpt.parent_fitness = 777;
  ckpt.es.best = test::identity_genotype();
  ckpt.es.best_fitness = 777;
  ckpt.es.generations_run = 41;
  ckpt.es.history = {{1, 900}, {7, 801}, {40, 777}};
  Rng rng(5);
  static_cast<void>(rng());
  ckpt.rng_state = rng.state();

  evo::EsCheckpoint back;
  ASSERT_EQ(evo::es_checkpoint_from_json(evo::es_checkpoint_to_json(ckpt),
                                         back),
            "");
  EXPECT_EQ(back.next_generation, ckpt.next_generation);
  EXPECT_EQ(back.parent, ckpt.parent);
  EXPECT_EQ(back.parent_fitness, ckpt.parent_fitness);
  EXPECT_EQ(back.es.best, ckpt.es.best);
  EXPECT_EQ(back.es.best_fitness, ckpt.es.best_fitness);
  EXPECT_EQ(back.es.generations_run, ckpt.es.generations_run);
  ASSERT_EQ(back.es.history.size(), ckpt.es.history.size());
  EXPECT_EQ(back.es.history[2].generation, 40u);
  EXPECT_EQ(back.es.history[2].fitness, 777u);
  EXPECT_EQ(back.rng_state, ckpt.rng_state);
}

TEST(Checkpoint, MissionCheckpointJsonRoundTrip) {
  MissionCheckpoint ckpt;
  ckpt.kind = MissionCheckpoint::Kind::kCascade;
  ckpt.barrier = 123456789;
  ckpt.elapsed = 987654321;
  ckpt.pe_writes = 4242;
  ckpt.lane_genotypes = {test::identity_genotype(), std::nullopt,
                         test::identity_genotype()};
  ckpt.next_stage = 2;
  ckpt.next_generation = 9;
  CascadeStageState stage;
  stage.parent = test::identity_genotype();
  stage.parent_fitness = 55;
  Rng rng(9);
  stage.rng_state = rng.state();
  stage.dirty = false;
  ckpt.stages = {stage, stage};
  ckpt.stages[1].dirty = true;
  ckpt.stages[1].parent_fitness = kInvalidFitness;

  const MissionCheckpoint back = json_round_trip(ckpt);
  EXPECT_EQ(back.kind, ckpt.kind);
  EXPECT_EQ(back.barrier, ckpt.barrier);
  EXPECT_EQ(back.elapsed, ckpt.elapsed);
  EXPECT_EQ(back.pe_writes, ckpt.pe_writes);
  ASSERT_EQ(back.lane_genotypes.size(), 3u);
  EXPECT_TRUE(back.lane_genotypes[0].has_value());
  EXPECT_FALSE(back.lane_genotypes[1].has_value());
  EXPECT_EQ(*back.lane_genotypes[0], test::identity_genotype());
  ASSERT_EQ(back.stages.size(), 2u);
  EXPECT_EQ(back.stages[0].parent_fitness, 55u);
  EXPECT_FALSE(back.stages[0].dirty);
  EXPECT_TRUE(back.stages[1].dirty);
  EXPECT_EQ(back.stages[1].parent_fitness, kInvalidFitness);
  EXPECT_EQ(back.stages[0].rng_state, stage.rng_state);
  EXPECT_EQ(back.next_stage, 2u);
  EXPECT_EQ(back.next_generation, 9u);
}

TEST(Checkpoint, MissionCheckpointRejectsMalformed) {
  MissionCheckpoint out;
  EXPECT_NE(mission_checkpoint_from_json(Json("nope"), out), "");
  Json wrong_tag = Json::object();
  wrong_tag.set("format", "mpa-ckpt-v999");
  EXPECT_NE(mission_checkpoint_from_json(wrong_tag, out), "");
}

// --- evolve resume bit-identity ---------------------------------------------

/// Runs the workload uninterrupted; then preempted + resumed (through the
/// JSON wire format, on a fresh platform); asserts identical results.
void check_evolve_resume(std::size_t arrays, Generation generations,
                         Generation preempt_after, bool two_level) {
  const auto w = test::make_denoise_workload(32, 0.2, 31);
  std::vector<std::size_t> lanes(arrays);
  for (std::size_t a = 0; a < arrays; ++a) lanes[a] = a;
  const evo::EsConfig es = quick_es(generations, 11, 3, two_level);

  EvolvablePlatform uninterrupted(test::small_platform_config(arrays));
  const IntrinsicResult reference =
      evolve_on_platform(uninterrupted, lanes, w.noisy, w.clean, es);

  MissionCheckpoint saved;
  bool have_saved = false;
  CheckpointPolicy preempt;
  preempt.preempt_after = preempt_after;
  preempt.sink = [&](const MissionCheckpoint& ckpt) {
    saved = ckpt;
    have_saved = true;
  };
  EvolvablePlatform first(test::small_platform_config(arrays));
  const IntrinsicResult partial = evolve_on_platform(
      first, lanes, w.noisy, w.clean, es, nullptr, &preempt);
  ASSERT_TRUE(have_saved);
  EXPECT_EQ(partial.es.generations_run, preempt_after);
  EXPECT_LT(partial.es.generations_run, reference.es.generations_run);

  const MissionCheckpoint restored = json_round_trip(saved);
  CheckpointPolicy resume;
  resume.resume = &restored;
  EvolvablePlatform second(test::small_platform_config(arrays));
  const IntrinsicResult final_result = evolve_on_platform(
      second, lanes, w.noisy, w.clean, es, nullptr, &resume);

  expect_same_intrinsic(final_result, reference);
}

TEST(Checkpoint, EvolveResumeBitIdenticalSingleLane) {
  check_evolve_resume(1, 30, 13, false);
}

TEST(Checkpoint, EvolveResumeBitIdenticalParallelLanes) {
  check_evolve_resume(3, 30, 7, false);
}

TEST(Checkpoint, EvolveResumeBitIdenticalTwoLevel) {
  check_evolve_resume(2, 24, 11, true);
}

TEST(Checkpoint, EvolveResumableFromEveryCadencePoint) {
  const auto w = test::make_denoise_workload(32, 0.2, 32);
  const evo::EsConfig es = quick_es(20, 12);

  EvolvablePlatform uninterrupted(test::small_platform_config(2));
  const IntrinsicResult reference =
      evolve_on_platform(uninterrupted, {0, 1}, w.noisy, w.clean, es);

  std::vector<MissionCheckpoint> cadence;
  CheckpointPolicy every;
  every.every = 5;
  every.sink = [&](const MissionCheckpoint& ckpt) {
    cadence.push_back(ckpt);
  };
  EvolvablePlatform run(test::small_platform_config(2));
  const IntrinsicResult full = evolve_on_platform(run, {0, 1}, w.noisy,
                                                  w.clean, es, nullptr,
                                                  &every);
  expect_same_intrinsic(full, reference);  // checkpointing must not perturb
  ASSERT_EQ(cadence.size(), 4u);           // generations 5, 10, 15, 20

  for (const MissionCheckpoint& point : cadence) {
    const MissionCheckpoint restored = json_round_trip(point);
    CheckpointPolicy resume;
    resume.resume = &restored;
    EvolvablePlatform fresh(test::small_platform_config(2));
    const IntrinsicResult resumed = evolve_on_platform(
        fresh, {0, 1}, w.noisy, w.clean, es, nullptr, &resume);
    expect_same_intrinsic(resumed, reference);
  }
}

TEST(Checkpoint, EvolveZeroWorkResume) {
  // A checkpoint taken at the FINAL generation boundary resumes into a
  // loop that runs zero generations; accounting must still match.
  const auto w = test::make_denoise_workload(32, 0.2, 33);
  const evo::EsConfig es = quick_es(12, 13);

  EvolvablePlatform uninterrupted(test::small_platform_config(1));
  const IntrinsicResult reference =
      evolve_on_platform(uninterrupted, {0}, w.noisy, w.clean, es);

  MissionCheckpoint saved;
  CheckpointPolicy preempt;
  preempt.preempt_after = 12;  // == generations: preempted at the end
  preempt.sink = [&](const MissionCheckpoint& ckpt) { saved = ckpt; };
  EvolvablePlatform run(test::small_platform_config(1));
  static_cast<void>(evolve_on_platform(run, {0}, w.noisy, w.clean, es,
                                       nullptr, &preempt));

  const MissionCheckpoint restored = json_round_trip(saved);
  CheckpointPolicy resume;
  resume.resume = &restored;
  EvolvablePlatform fresh(test::small_platform_config(1));
  const IntrinsicResult resumed = evolve_on_platform(
      fresh, {0}, w.noisy, w.clean, es, nullptr, &resume);
  expect_same_intrinsic(resumed, reference);
}

// --- cascade resume bit-identity --------------------------------------------

void check_cascade_resume(CascadeSchedule schedule, CascadeFitness fitness,
                          Generation preempt_after) {
  const auto w = test::make_denoise_workload(32, 0.25, 34);
  CascadeConfig cfg;
  cfg.es = quick_es(6, 14);
  cfg.schedule = schedule;
  cfg.fitness = fitness;

  EvolvablePlatform uninterrupted(test::small_platform_config(3));
  const CascadeResult reference =
      evolve_cascade(uninterrupted, {0, 1, 2}, w.noisy, w.clean, cfg);

  MissionCheckpoint saved;
  bool have_saved = false;
  CheckpointPolicy preempt;
  preempt.preempt_after = preempt_after;
  preempt.sink = [&](const MissionCheckpoint& ckpt) {
    saved = ckpt;
    have_saved = true;
  };
  EvolvablePlatform first(test::small_platform_config(3));
  static_cast<void>(
      evolve_cascade(first, {0, 1, 2}, w.noisy, w.clean, cfg, &preempt));
  ASSERT_TRUE(have_saved);
  EXPECT_EQ(saved.kind, MissionCheckpoint::Kind::kCascade);

  const MissionCheckpoint restored = json_round_trip(saved);
  CheckpointPolicy resume;
  resume.resume = &restored;
  EvolvablePlatform second(test::small_platform_config(3));
  const CascadeResult resumed =
      evolve_cascade(second, {0, 1, 2}, w.noisy, w.clean, cfg, &resume);

  expect_same_cascade(resumed, reference);
}

TEST(Checkpoint, CascadeSequentialResumeMidStage) {
  // 3 stages x 6 generations; preempting after 8 steps lands inside
  // stage 1 — the restore must pick up mid-cascade, mid-stage.
  check_cascade_resume(CascadeSchedule::kSequential,
                       CascadeFitness::kSeparate, 8);
}

TEST(Checkpoint, CascadeInterleavedResume) {
  // Interleaved rotation: step 8 is mid-rotation (stage 2 of round 3).
  check_cascade_resume(CascadeSchedule::kInterleaved,
                       CascadeFitness::kSeparate, 8);
}

TEST(Checkpoint, CascadeMergedResume) {
  check_cascade_resume(CascadeSchedule::kSequential, CascadeFitness::kMerged,
                       7);
}

TEST(Checkpoint, CascadeInterleavedMergedResume) {
  check_cascade_resume(CascadeSchedule::kInterleaved,
                       CascadeFitness::kMerged, 10);
}

}  // namespace
}  // namespace ehw::platform

// --- sched layer: spec lines, checkpoint files, run_spec durability ---------

namespace ehw::sched {
namespace {

TEST(CheckpointStore, SpecManifestLineRoundTrip) {
  MissionSpec spec;
  spec.kind = MissionKind::kCascade;
  spec.name = "rt";
  spec.lanes = 3;
  spec.priority = -2;
  spec.generations = 77;
  spec.size = 24;
  spec.noise = 0.125;
  spec.mutation_rate = 4;
  spec.lambda = 7;
  spec.seed = 99;
  spec.scene_seed = 12;
  spec.two_level = true;
  spec.merged_fitness = true;
  spec.interleaved = true;

  MissionSpec back;
  ASSERT_EQ(spec_from_manifest_line(spec_to_manifest_line(spec), back), "");
  EXPECT_EQ(back.kind, spec.kind);
  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.lanes, spec.lanes);
  EXPECT_EQ(back.priority, spec.priority);
  EXPECT_EQ(back.generations, spec.generations);
  EXPECT_EQ(back.size, spec.size);
  EXPECT_EQ(back.noise, spec.noise);
  EXPECT_EQ(back.mutation_rate, spec.mutation_rate);
  EXPECT_EQ(back.lambda, spec.lambda);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.scene_seed, spec.scene_seed);
  EXPECT_EQ(back.two_level, spec.two_level);
  EXPECT_EQ(back.merged_fitness, spec.merged_fitness);
  EXPECT_EQ(back.interleaved, spec.interleaved);

  MissionSpec bad;
  EXPECT_NE(spec_from_manifest_line("not a kind x", bad), "");
  EXPECT_NE(spec_from_manifest_line("", bad), "");
}

TEST(CheckpointStore, FileRoundTripAndErrors) {
  const std::string dir = testing::TempDir() + "ehw_ckpt_store";
  ASSERT_EQ(ensure_directory(dir), "");
  const std::string path = dir + "/mission.ckpt";

  MissionSpec spec;
  spec.name = "stored";
  spec.lanes = 2;
  spec.generations = 40;
  platform::MissionCheckpoint ckpt;
  ckpt.barrier = 5555;
  ckpt.pe_writes = 66;
  ckpt.es.next_generation = 21;
  ckpt.es.parent = ehw::test::identity_genotype();
  ckpt.es.es.best = ehw::test::identity_genotype();
  ASSERT_EQ(save_mission_checkpoint(path, spec, ckpt), "");

  MissionSpec spec_back;
  platform::MissionCheckpoint ckpt_back;
  ASSERT_EQ(load_mission_checkpoint(path, spec_back, ckpt_back), "");
  EXPECT_EQ(spec_back.name, "stored");
  EXPECT_EQ(spec_back.lanes, 2u);
  EXPECT_EQ(ckpt_back.barrier, 5555);
  EXPECT_EQ(ckpt_back.pe_writes, 66u);
  EXPECT_EQ(ckpt_back.es.next_generation, 21u);

  // Missing file, torn JSON, wrong format tag: descriptive errors, no
  // throws.
  EXPECT_NE(load_mission_checkpoint(dir + "/absent.ckpt", spec_back,
                                    ckpt_back),
            "");
  ASSERT_EQ(atomic_write_file(path, "{\"format\":\"mpa-checkpoint-v1\","),
            "");
  EXPECT_NE(load_mission_checkpoint(path, spec_back, ckpt_back), "");
  ASSERT_EQ(atomic_write_file(path, "{\"format\":\"other\"}"), "");
  EXPECT_NE(load_mission_checkpoint(path, spec_back, ckpt_back), "");
}

TEST(CheckpointStore, RunSpecStandaloneCheckpointRestore) {
  // The CLI-facing path: run a spec preempted + checkpointed to a file,
  // then restore from the file and compare with an uninterrupted run.
  MissionSpec spec;
  spec.kind = MissionKind::kDenoise;
  spec.name = "durable";
  spec.lanes = 2;
  spec.generations = 24;
  spec.size = 16;
  spec.seed = 3;

  const JobOutcome reference = run_spec_standalone(spec);

  const std::string dir = testing::TempDir() + "ehw_ckpt_runspec";
  ASSERT_EQ(ensure_directory(dir), "");
  const std::string path = dir + "/durable.ckpt";
  MissionCheckpointing preempt;
  preempt.every = 5;
  preempt.preempt_after = 9;
  preempt.sink = [&](const platform::MissionCheckpoint& state) {
    ASSERT_EQ(save_mission_checkpoint(path, spec, state), "");
  };
  static_cast<void>(run_spec_standalone(spec, nullptr, preempt));

  MissionSpec loaded_spec;
  auto loaded = std::make_shared<platform::MissionCheckpoint>();
  ASSERT_EQ(load_mission_checkpoint(path, loaded_spec, *loaded), "");
  EXPECT_EQ(loaded_spec.name, "durable");
  MissionCheckpointing resume;
  resume.resume = loaded;
  const JobOutcome restored = run_spec_standalone(loaded_spec, nullptr,
                                                  resume);

  EXPECT_EQ(restored.intrinsic.es.best, reference.intrinsic.es.best);
  EXPECT_EQ(restored.intrinsic.es.best_fitness,
            reference.intrinsic.es.best_fitness);
  EXPECT_EQ(restored.intrinsic.es.generations_run,
            reference.intrinsic.es.generations_run);
  EXPECT_EQ(restored.stats.mission_time, reference.stats.mission_time);
}

}  // namespace
}  // namespace ehw::sched
