// Tests for the intrinsic evolution drivers: Fig. 11 timing properties
// (independent vs parallel), two-level DPR savings, imitation mode and
// cascaded evolution.

#include <gtest/gtest.h>

#include "ehw/evo/fitness.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/noise.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/platform/cascade_evolution.hpp"
#include "ehw/platform/evolution_driver.hpp"
#include "ehw/platform/imitation.hpp"
#include "test_util.hpp"

namespace ehw::platform {
namespace {

evo::EsConfig quick_es(Generation generations, std::uint64_t seed,
                       std::size_t k = 3, bool two_level = false) {
  evo::EsConfig cfg;
  cfg.lambda = 9;
  cfg.mutation_rate = k;
  cfg.two_level = two_level;
  cfg.generations = generations;
  cfg.seed = seed;
  return cfg;
}

TEST(EvolutionDriver, ImprovesFitnessOnDenoiseTask) {
  EvolvablePlatform plat(test::small_platform_config(1));
  const auto w = test::make_denoise_workload(32, 0.2, 21);
  const Fitness noisy_level = img::aggregated_mae(w.noisy, w.clean);
  const IntrinsicResult r = evolve_on_platform(
      plat, {0}, w.noisy, w.clean, quick_es(120, 1));
  EXPECT_LT(r.es.best_fitness, noisy_level);
  EXPECT_EQ(r.es.generations_run, 120u);
  EXPECT_GT(r.pe_writes, 0u);
  EXPECT_GT(r.duration, 0);
}

TEST(EvolutionDriver, SingleArrayGenerationIsSerial) {
  // With one array and one engine, simulated time per generation must be
  // at least lambda * (min R + F): candidates cannot overlap at all.
  EvolvablePlatform plat(test::small_platform_config(1));
  const img::Image scene = img::make_scene(32, 32, 22);
  const IntrinsicResult r =
      evolve_on_platform(plat, {0}, scene, scene, quick_es(30, 2));
  const sim::SimTime frame = plat.frame_time(32, 32);
  // Every candidate evaluates (F) serially on the single array:
  const sim::SimTime lower_bound = 30 * 9 * frame;
  EXPECT_GE(r.duration, lower_bound);
}

TEST(EvolutionDriver, ParallelEvolutionIsFaster) {
  // The paper's Fig. 12 headline: same EA, same candidate count, three
  // arrays evaluate in parallel -> less simulated time per generation.
  // The gain is the overlapped evaluation time, so it only outweighs the
  // extra per-lane DPR chains when frames are realistically large relative
  // to the 67.53 us PE write — exactly the paper's own Fig. 12-vs-13
  // observation. 64x64 frames at k=1 give a comfortable margin.
  const auto w = test::make_denoise_workload(64, 0.2, 23);

  EvolvablePlatform single(test::small_platform_config(1, 64));
  const IntrinsicResult r1 =
      evolve_on_platform(single, {0}, w.noisy, w.clean, quick_es(40, 3, 1));

  EvolvablePlatform triple(test::small_platform_config(3, 64));
  const IntrinsicResult r3 = evolve_on_platform(
      triple, {0, 1, 2}, w.noisy, w.clean, quick_es(40, 3, 1));

  EXPECT_LT(r3.duration, r1.duration);
}

TEST(EvolutionDriver, TwoLevelCutsDprTraffic) {
  // §VI.B: the two-level strategy configures near-identical circuits
  // back-to-back on each lane, so PE writes per generation drop sharply
  // for k > 1.
  // A denoising task keeps fitness > 0 so neither run stops early.
  const auto w = test::make_denoise_workload(32, 0.3, 24);
  EvolvablePlatform classic(test::small_platform_config(3));
  const IntrinsicResult rc = evolve_on_platform(
      classic, {0, 1, 2}, w.noisy, w.clean, quick_es(40, 4, /*k=*/5, false));
  EvolvablePlatform two_level(test::small_platform_config(3));
  const IntrinsicResult rt = evolve_on_platform(
      two_level, {0, 1, 2}, w.noisy, w.clean, quick_es(40, 4, /*k=*/5, true));
  ASSERT_EQ(rc.es.generations_run, 40u);
  ASSERT_EQ(rt.es.generations_run, 40u);
  EXPECT_LT(rt.pe_writes, rc.pe_writes);
  EXPECT_LT(rt.duration, rc.duration);
}

TEST(EvolutionDriver, HigherMutationRateCostsMoreTime) {
  // Fig. 12: evolution time grows with the mutation rate (more function
  // genes change -> more DPR writes per generation).
  const auto w = test::make_denoise_workload(32, 0.3, 25);
  std::vector<double> seconds;
  for (const std::size_t k : {1, 3, 5}) {
    EvolvablePlatform plat(test::small_platform_config(1));
    const IntrinsicResult r =
        evolve_on_platform(plat, {0}, w.noisy, w.clean, quick_es(30, 5, k));
    seconds.push_back(sim::to_seconds(r.duration));
  }
  EXPECT_LT(seconds[0], seconds[1]);
  EXPECT_LT(seconds[1], seconds[2]);
}

TEST(EvolutionDriver, DeterministicAcrossRuns) {
  const auto w = test::make_denoise_workload(24, 0.15, 26);
  EvolvablePlatform a(test::small_platform_config(3));
  EvolvablePlatform b(test::small_platform_config(3));
  const IntrinsicResult ra =
      evolve_on_platform(a, {0, 1, 2}, w.noisy, w.clean, quick_es(50, 6));
  const IntrinsicResult rb =
      evolve_on_platform(b, {0, 1, 2}, w.noisy, w.clean, quick_es(50, 6));
  EXPECT_EQ(ra.es.best_fitness, rb.es.best_fitness);
  EXPECT_EQ(ra.duration, rb.duration);
  EXPECT_EQ(ra.pe_writes, rb.pe_writes);
}

TEST(EvolutionDriver, InitialParentRespected) {
  EvolvablePlatform plat(test::small_platform_config(1));
  const img::Image scene = img::make_scene(24, 24, 27);
  const evo::Genotype identity = test::identity_genotype();
  evo::EsConfig cfg = quick_es(5, 7);
  const IntrinsicResult r =
      evolve_on_platform(plat, {0}, scene, scene, cfg, &identity);
  EXPECT_EQ(r.es.best_fitness, 0u);  // identity already solves train==ref
}

TEST(EvolutionDriver, EvolvesAroundInjectedFault) {
  // Self-healing property of the base EHW (§V): after a permanent PE
  // fault, a fresh evolution run finds a circuit avoiding the dead cell.
  EvolvablePlatform plat(test::small_platform_config(1));
  const img::Image scene = img::make_scene(32, 32, 28);
  plat.inject_pe_fault(0, 0, 1);
  const IntrinsicResult r = evolve_on_platform(
      plat, {0}, scene, scene, quick_es(200, 8));
  // A random circuit on a faulty array is far from 0; evolution must get
  // well below half of the noisy baseline.
  Rng rng(1);
  const Fitness random_level = evo::evaluate_extrinsic(
      evo::Genotype::random({4, 4}, rng), scene, scene);
  EXPECT_LT(r.es.best_fitness, random_level / 2);
}

TEST(Imitation, PerfectCopyWithoutFault) {
  // With no fault, imitation must reach fitness 0 immediately when
  // starting from the master's genotype (copying the chromosome).
  EvolvablePlatform plat(test::small_platform_config(3));
  Rng rng(31);
  const evo::Genotype master_circuit = evo::Genotype::random({4, 4}, rng);
  plat.configure_array(1, master_circuit, 0);
  const img::Image stream = img::make_scene(32, 32, 31);
  ImitationConfig cfg;
  cfg.es = quick_es(20, 9);
  cfg.es.target = 0;
  cfg.start_from_master = true;
  const ImitationResult r = evolve_by_imitation(plat, 0, 1, stream, cfg);
  EXPECT_EQ(r.es.best_fitness, 0u);
  EXPECT_EQ(r.es.generations_run, 0u);  // parent already perfect
}

TEST(Imitation, MasterStartBeatsRandomStartUnderFault) {
  // Fig. 19: with a permanent fault on the apprentice, starting from the
  // master genotype converges to a (much) lower residual than a random
  // start within the same budget.
  const img::Image stream = img::make_scene(32, 32, 32);
  Rng rng(33);
  const evo::Genotype master_circuit = evo::Genotype::random({4, 4}, rng);

  const auto run = [&](bool from_master) {
    EvolvablePlatform plat(test::small_platform_config(3));
    plat.configure_array(1, master_circuit, 0);
    plat.inject_pe_fault(0, 1, 1);
    ImitationConfig cfg;
    cfg.es = quick_es(60, 10);
    cfg.start_from_master = from_master;
    return evolve_by_imitation(plat, 0, 1, stream, cfg);
  };
  const ImitationResult master_start = run(true);
  const ImitationResult random_start = run(false);
  EXPECT_LE(master_start.es.best_fitness, random_start.es.best_fitness);
}

TEST(Imitation, RestoresBypassFlag) {
  EvolvablePlatform plat(test::small_platform_config(2));
  Rng rng(34);
  plat.configure_array(1, evo::Genotype::random({4, 4}, rng), 0);
  const img::Image stream = img::make_scene(24, 24, 34);
  ImitationConfig cfg;
  cfg.es = quick_es(3, 11);
  EXPECT_FALSE(plat.acb(0).bypass());
  evolve_by_imitation(plat, 0, 1, stream, cfg);
  EXPECT_FALSE(plat.acb(0).bypass());
  plat.acb(0).set_bypass(true);
  evolve_by_imitation(plat, 0, 1, stream, cfg);
  EXPECT_TRUE(plat.acb(0).bypass());
}

TEST(CascadeEvolution, SequentialImprovesDownTheChain) {
  EvolvablePlatform plat(test::small_platform_config(3));
  const auto w = test::make_denoise_workload(32, 0.3, 35);
  CascadeConfig cfg;
  cfg.es = quick_es(80, 12);
  cfg.fitness = CascadeFitness::kSeparate;
  cfg.schedule = CascadeSchedule::kSequential;
  const CascadeResult r =
      evolve_cascade(plat, {0, 1, 2}, w.noisy, w.clean, cfg);
  ASSERT_EQ(r.stages.size(), 3u);
  // Later stages refine earlier ones: chain fitness <= stage-0 fitness.
  EXPECT_LE(r.stages[1].stage_fitness, r.stages[0].stage_fitness);
  EXPECT_LE(r.chain_fitness, r.stages[0].stage_fitness);
  EXPECT_EQ(r.chain_fitness, r.stages[2].stage_fitness);
}

TEST(CascadeEvolution, InterleavedAlsoConverges) {
  EvolvablePlatform plat(test::small_platform_config(3));
  const auto w = test::make_denoise_workload(32, 0.3, 36);
  CascadeConfig cfg;
  cfg.es = quick_es(40, 13);
  cfg.schedule = CascadeSchedule::kInterleaved;
  const CascadeResult r =
      evolve_cascade(plat, {0, 1, 2}, w.noisy, w.clean, cfg);
  const Fitness noisy_level = img::aggregated_mae(w.noisy, w.clean);
  EXPECT_LT(r.chain_fitness, noisy_level);
}

TEST(CascadeEvolution, MergedFitnessJudgesChainEnd) {
  EvolvablePlatform plat(test::small_platform_config(2));
  const auto w = test::make_denoise_workload(24, 0.2, 37);
  CascadeConfig cfg;
  cfg.es = quick_es(30, 14);
  cfg.fitness = CascadeFitness::kMerged;
  cfg.schedule = CascadeSchedule::kInterleaved;
  const CascadeResult r = evolve_cascade(plat, {0, 1}, w.noisy, w.clean, cfg);
  // The chain the driver reports matches re-filtering through the fabric.
  std::vector<img::Image> stages;
  const img::Image out = plat.process_cascade(w.noisy, &stages);
  EXPECT_EQ(r.chain_fitness, img::aggregated_mae(out, w.clean));
}

TEST(CascadeEvolution, LeavesBestConfigured) {
  EvolvablePlatform plat(test::small_platform_config(2));
  const auto w = test::make_denoise_workload(24, 0.2, 38);
  CascadeConfig cfg;
  cfg.es = quick_es(20, 15);
  const CascadeResult r = evolve_cascade(plat, {0, 1}, w.noisy, w.clean, cfg);
  ASSERT_TRUE(plat.configured_genotype(0).has_value());
  EXPECT_EQ(*plat.configured_genotype(0), r.stages[0].best);
  ASSERT_TRUE(plat.configured_genotype(1).has_value());
  EXPECT_EQ(*plat.configured_genotype(1), r.stages[1].best);
}

}  // namespace
}  // namespace ehw::platform
