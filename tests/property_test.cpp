// Randomized property tests: each component is driven with thousands of
// random operations and checked against a simple reference model or an
// algebraic invariant.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ehw/common/rng.hpp"
#include "ehw/evo/mutation.hpp"
#include "ehw/fpga/config_memory.hpp"
#include "ehw/platform/registers.hpp"
#include "ehw/platform/voter.hpp"
#include "ehw/sim/timeline.hpp"

namespace ehw {
namespace {

/// ConfigMemory vs a naive reference model under a random op stream.
TEST(ConfigMemoryFuzz, MatchesReferenceModel) {
  constexpr std::size_t kWords = 64;
  fpga::ConfigMemory mem(kWords);

  struct RefWord {
    std::uint32_t intended = 0;
    std::uint32_t actual = 0;
    std::uint32_t stuck_mask = 0;
    std::uint32_t stuck_value = 0;
    void apply_stuck() {
      actual = (actual & ~stuck_mask) | (stuck_value & stuck_mask);
    }
  };
  std::vector<RefWord> ref(kWords);

  Rng rng(2024);
  for (int op = 0; op < 5000; ++op) {
    const std::size_t addr = rng.below(kWords);
    const auto bit = static_cast<unsigned>(rng.below(32));
    switch (rng.below(5)) {
      case 0: {  // write
        const auto v = static_cast<std::uint32_t>(rng());
        mem.write(addr, v);
        ref[addr].intended = v;
        ref[addr].actual = v;
        ref[addr].apply_stuck();
        break;
      }
      case 1: {  // SEU
        mem.flip_bit(addr, bit);
        ref[addr].actual ^= 1u << bit;
        break;
      }
      case 2: {  // stuck-at
        const bool val = rng.chance(0.5);
        mem.set_stuck_bit(addr, bit, val);
        ref[addr].stuck_mask |= 1u << bit;
        if (val) {
          ref[addr].stuck_value |= 1u << bit;
        } else {
          ref[addr].stuck_value &= ~(1u << bit);
        }
        ref[addr].apply_stuck();
        break;
      }
      case 3: {  // scrub rewrite
        mem.rewrite(addr);
        ref[addr].actual = ref[addr].intended;
        ref[addr].apply_stuck();
        break;
      }
      case 4: {  // repair (clear stuck bit)
        mem.clear_stuck_bit(addr, bit);
        ref[addr].stuck_mask &= ~(1u << bit);
        ref[addr].stuck_value &= ~(1u << bit);
        break;
      }
    }
    ASSERT_EQ(mem.read(addr), ref[addr].actual) << "op " << op;
    ASSERT_EQ(mem.read_intended(addr), ref[addr].intended) << "op " << op;
  }
}

/// Timeline invariants under random reservations: per-resource intervals
/// never overlap and never start before `earliest`.
TEST(TimelineFuzz, NoOverlapsMonotoneHorizons) {
  sim::Timeline tl;
  std::vector<sim::ResourceId> resources;
  for (int r = 0; r < 5; ++r) {
    // Appends instead of `"r" + std::to_string(r)`: GCC 12 flags the
    // chained operator+ form with a spurious -Wrestrict at -O3 (PR105329).
    std::string name = "r";
    name += std::to_string(r);
    resources.push_back(tl.add_resource(name));
  }
  std::map<sim::ResourceId, sim::SimTime> last_end;
  Rng rng(77);
  for (int op = 0; op < 3000; ++op) {
    const sim::ResourceId r = resources[rng.below(resources.size())];
    const auto earliest = static_cast<sim::SimTime>(rng.below(1000000));
    const auto duration = static_cast<sim::SimTime>(rng.below(10000));
    if (rng.chance(0.2)) {
      const sim::ResourceId r2 = resources[rng.below(resources.size())];
      const sim::Interval iv = tl.reserve_pair(r, r2, earliest, duration);
      ASSERT_GE(iv.start, earliest);
      ASSERT_GE(iv.start, last_end[r]);
      if (r2 != r) {
        ASSERT_GE(iv.start, last_end[r2]);
      }
      last_end[r] = iv.end;
      last_end[r2] = iv.end;
    } else {
      const sim::Interval iv = tl.reserve(r, earliest, duration);
      ASSERT_GE(iv.start, earliest);
      ASSERT_GE(iv.start, last_end[r]);  // no overlap with previous booking
      ASSERT_EQ(iv.duration(), duration);
      last_end[r] = iv.end;
    }
  }
  sim::SimTime horizon_max = 0;
  for (const auto& [r, t] : last_end) horizon_max = std::max(horizon_max, t);
  ASSERT_EQ(tl.makespan(), horizon_max);
}

/// Register file under random bus traffic: RO registers never change from
/// bus writes; RW registers hold the last value; decode is total on the
/// mapped range.
TEST(RegisterFileFuzz, BusContract) {
  platform::RegisterFile regs(4);
  std::map<platform::RegAddr, platform::RegValue> shadow;
  Rng rng(99);
  for (int op = 0; op < 4000; ++op) {
    const auto acb = rng.below(4);
    const auto off = static_cast<platform::RegAddr>(
        rng.below(platform::kAcbRegCount));
    const platform::RegAddr addr = platform::RegisterFile::acb_reg(acb, off);
    const auto value = static_cast<platform::RegValue>(rng());
    if (rng.chance(0.7)) {
      regs.write(addr, value);
      if (!platform::RegisterFile::is_read_only(off, false)) {
        shadow[addr] = value;
      }
    } else {
      regs.publish(addr, value);
      shadow[addr] = value;
    }
    ASSERT_EQ(regs.read(addr), shadow.count(addr) ? shadow[addr] : 0u);
  }
}

/// Pixel voter: exhaustive over a coarse value lattice — the voted pixel
/// is always the median, and two-agree always wins.
TEST(PixelVoterProperty, ExhaustiveLattice) {
  const std::vector<Pixel> lattice{0, 1, 64, 128, 200, 254, 255};
  for (const Pixel a : lattice) {
    for (const Pixel b : lattice) {
      for (const Pixel c : lattice) {
        img::Image ia(1, 1, a), ib(1, 1, b), ic(1, 1, c);
        const platform::PixelVoteResult r =
            platform::PixelVoter::vote(ia, ib, ic);
        const Pixel out = r.majority.at(0, 0);
        const Pixel median =
            std::max(std::min(a, b), std::min(std::max(a, b), c));
        EXPECT_EQ(out, median);
        if (a == b || a == c) {
          EXPECT_EQ(out, a);
        }
        if (b == c) {
          EXPECT_EQ(out, b);
        }
      }
    }
  }
}

/// Fitness voter is order-insensitive in its localization (relabeling the
/// arrays relabels the verdict).
TEST(FitnessVoterProperty, PermutationConsistency) {
  platform::FitnessVoter voter(10);
  Rng rng(5);
  for (int rep = 0; rep < 500; ++rep) {
    const Fitness good = rng.below(50);
    const Fitness bad = 500 + rng.below(100000);
    const std::array<Fitness, 3> base{good, good + rng.below(10), bad};
    for (std::size_t faulty_pos = 0; faulty_pos < 3; ++faulty_pos) {
      std::array<Fitness, 3> f{};
      std::size_t j = 0;
      for (std::size_t i = 0; i < 3; ++i) {
        f[i] = (i == faulty_pos) ? base[2] : base[j++];
      }
      const platform::FitnessVote v = voter.vote(f);
      ASSERT_TRUE(v.faulty.has_value());
      EXPECT_EQ(*v.faulty, faulty_pos);
    }
  }
}

/// Mutation positions are (approximately) uniform over the gene space.
TEST(MutationProperty, PositionsRoughlyUniform) {
  Rng rng(123);
  evo::Genotype g = evo::Genotype::random({4, 4}, rng);
  const std::size_t genes = g.gene_count();
  std::vector<std::size_t> hits(genes, 0);
  constexpr int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    evo::Genotype child = g;
    for (const std::size_t p : evo::mutate(child, 1, rng)) ++hits[p];
  }
  const double expected = static_cast<double>(kTrials) / genes;
  for (std::size_t p = 0; p < genes; ++p) {
    EXPECT_GT(hits[p], expected * 0.75) << "gene " << p;
    EXPECT_LT(hits[p], expected * 1.25) << "gene " << p;
  }
}

/// Mutated values are uniform over the alternatives (never the old value).
TEST(MutationProperty, NewValuesUniformOverAlternatives) {
  Rng rng(321);
  evo::Genotype g = evo::Genotype::random({4, 4}, rng);
  const std::size_t gene = 3;  // a function gene: 16 values
  const std::uint8_t old = g.gene_value(gene);
  std::map<std::uint8_t, int> counts;
  constexpr int kTrials = 15000;
  for (int t = 0; t < kTrials; ++t) {
    evo::Genotype child = g;
    // Mutate until the chosen gene is hit (cheap: k = gene_count hits all).
    evo::mutate(child, child.gene_count(), rng);
    counts[child.gene_value(gene)]++;
  }
  EXPECT_EQ(counts.count(old), 0u);
  const double expected = static_cast<double>(kTrials) / 15.0;
  for (const auto& [value, n] : counts) {
    EXPECT_GT(n, expected * 0.75) << int{value};
    EXPECT_LT(n, expected * 1.25) << int{value};
  }
}

}  // namespace
}  // namespace ehw
