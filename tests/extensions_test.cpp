// Tests for the extension drivers (independent cascade, adaptive depth),
// morphology golden filters and the neutral-drift ablation switch.

#include <gtest/gtest.h>

#include "ehw/evo/fitness.hpp"
#include "ehw/img/filters.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/morphology.hpp"
#include "ehw/img/noise.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/platform/adaptive_depth.hpp"
#include "ehw/platform/independent_cascade.hpp"
#include "test_util.hpp"

namespace ehw {
namespace {

TEST(Morphology, ErodeDilateOrdering) {
  const img::Image src = img::make_scene(24, 24, 1);
  const img::Image lo = img::erode3x3(src);
  const img::Image hi = img::dilate3x3(src);
  for (std::size_t y = 0; y < src.height(); ++y) {
    for (std::size_t x = 0; x < src.width(); ++x) {
      EXPECT_LE(lo.at(x, y), src.at(x, y));
      EXPECT_GE(hi.at(x, y), src.at(x, y));
    }
  }
}

TEST(Morphology, ConstantImageIsFixedPoint) {
  const img::Image c = img::make_constant(12, 12, 77);
  EXPECT_EQ(img::erode3x3(c), c);
  EXPECT_EQ(img::dilate3x3(c), c);
  EXPECT_EQ(img::open3x3(c), c);
  EXPECT_EQ(img::close3x3(c), c);
}

TEST(Morphology, OpeningRemovesBrightImpulse) {
  img::Image im = img::make_constant(9, 9, 50);
  im.set(4, 4, 255);  // isolated bright impulse
  const img::Image opened = img::open3x3(im);
  EXPECT_EQ(opened.at(4, 4), 50);
}

TEST(Morphology, ClosingRemovesDarkImpulse) {
  img::Image im = img::make_constant(9, 9, 200);
  im.set(4, 4, 0);
  const img::Image closed = img::close3x3(im);
  EXPECT_EQ(closed.at(4, 4), 200);
}

TEST(Morphology, GradientZeroOnFlatPositiveOnEdge) {
  const img::Image flat = img::make_constant(8, 8, 90);
  const img::Image g1 = img::morph_gradient3x3(flat);
  for (std::size_t y = 0; y < g1.height(); ++y) {
    for (std::size_t x = 0; x < g1.width(); ++x) EXPECT_EQ(g1.at(x, y), 0);
  }
  const img::Image board = img::make_checkerboard(8, 8, 4, 0, 255);
  const img::Image g2 = img::morph_gradient3x3(board);
  EXPECT_EQ(g2.at(3, 1), 255);  // tile boundary
}

TEST(Morphology, DualityErodeDilate) {
  // dilate(x) == 255 - erode(255 - x): the classic duality.
  const img::Image src = img::make_scene(16, 16, 2);
  img::Image inverted(src.width(), src.height());
  for (std::size_t y = 0; y < src.height(); ++y) {
    for (std::size_t x = 0; x < src.width(); ++x) {
      inverted.set(x, y, static_cast<Pixel>(255 - src.at(x, y)));
    }
  }
  const img::Image lhs = img::dilate3x3(src);
  const img::Image rhs_inner = img::erode3x3(inverted);
  for (std::size_t y = 0; y < src.height(); ++y) {
    for (std::size_t x = 0; x < src.width(); ++x) {
      EXPECT_EQ(lhs.at(x, y), 255 - rhs_inner.at(x, y));
    }
  }
}

TEST(IndependentCascade, EvolvesDistinctTasksPerStage) {
  // Stage 1: denoise toward the clean scene; stage 2: edge-detect toward
  // the Sobel map. The deployed chain runs both tasks in one pass.
  platform::EvolvablePlatform plat(test::small_platform_config(2));
  const auto w = test::make_denoise_workload(32, 0.15, 91);
  const img::Image edges = img::sobel_magnitude(w.clean);

  platform::IndependentCascadeConfig cfg;
  cfg.es.generations = 200;
  cfg.es.seed = 91;
  const platform::IndependentCascadeResult r = evolve_independent_cascade(
      plat, {0, 1}, w.noisy, {w.clean, edges}, cfg);
  ASSERT_EQ(r.stages.size(), 2u);
  // Each stage beats the do-nothing baseline for its own task.
  EXPECT_LT(r.stages[0].fitness, img::aggregated_mae(w.noisy, w.clean));
  const img::Image stage1_out = plat.filter_array(0, w.noisy);
  EXPECT_LT(r.stages[1].fitness, img::aggregated_mae(stage1_out, edges));
  // The deployed chain equals stage-by-stage filtering.
  std::vector<img::Image> stages;
  const img::Image chain = plat.process_cascade(w.noisy, &stages);
  EXPECT_EQ(chain, plat.filter_array(1, stage1_out));
}

TEST(IndependentCascade, ValidatesArguments) {
  platform::EvolvablePlatform plat(test::small_platform_config(2));
  const img::Image scene = img::make_scene(16, 16, 92);
  platform::IndependentCascadeConfig cfg;
  EXPECT_THROW(evolve_independent_cascade(plat, {0, 1}, scene, {scene}, cfg),
               std::logic_error);
  const img::Image wrong_shape(8, 8);
  EXPECT_THROW(evolve_independent_cascade(plat, {0}, scene, {wrong_shape},
                                          cfg),
               std::logic_error);
}

TEST(AdaptiveDepth, StopsWhenTargetMet) {
  platform::EvolvablePlatform plat(test::small_platform_config(3));
  const auto w = test::make_denoise_workload(32, 0.2, 93);
  platform::AdaptiveDepthConfig cfg;
  // Generous target: one stage should be enough.
  cfg.target = img::aggregated_mae(w.noisy, w.clean);
  cfg.es.generations = 120;
  cfg.es.seed = 93;
  const platform::AdaptiveDepthResult r =
      platform::grow_cascade_to_target(plat, {0, 1, 2}, w.noisy, w.clean, cfg);
  EXPECT_TRUE(r.target_met);
  EXPECT_EQ(r.depth, 1u);
  // Unused stages remain bypassed spares.
  EXPECT_FALSE(plat.acb(0).bypass());
  EXPECT_TRUE(plat.acb(1).bypass());
  EXPECT_TRUE(plat.acb(2).bypass());
}

TEST(AdaptiveDepth, GrowsForAmbitiousTargets) {
  platform::EvolvablePlatform plat(test::small_platform_config(3));
  const auto w = test::make_denoise_workload(32, 0.35, 94);
  platform::AdaptiveDepthConfig cfg;
  cfg.target = 1;  // unreachable: use every stage
  cfg.es.generations = 100;
  cfg.es.seed = 94;
  const platform::AdaptiveDepthResult r =
      platform::grow_cascade_to_target(plat, {0, 1, 2}, w.noisy, w.clean, cfg);
  EXPECT_FALSE(r.target_met);
  EXPECT_EQ(r.depth, 3u);
  ASSERT_EQ(r.fitness_per_depth.size(), 3u);
  // Each added stage refines the chain (monotone non-increasing).
  EXPECT_LE(r.fitness_per_depth[1], r.fitness_per_depth[0]);
  EXPECT_LE(r.fitness_per_depth[2], r.fitness_per_depth[1]);
  // All three stages active.
  EXPECT_FALSE(plat.acb(0).bypass());
  EXPECT_FALSE(plat.acb(1).bypass());
  EXPECT_FALSE(plat.acb(2).bypass());
  // Reported chain fitness matches the deployed platform.
  std::vector<img::Image> stages;
  plat.process_cascade_into(w.noisy, stages);
  EXPECT_EQ(r.fitness_per_depth[2],
            img::aggregated_mae(stages[2], w.clean));
}

TEST(NeutralDrift, SwitchChangesSearchTrajectory) {
  // Mechanism check for the ablation switch: with identical seeds the two
  // settings produce the SAME candidate stream until the first fitness
  // tie, after which the drifting run walks the plateau and the strict run
  // stays put — the final parents must diverge. (Whether drift pays off is
  // budget-dependent and measured by the ablation bench, not asserted
  // here.)
  const auto w = test::make_denoise_workload(24, 0.25, 95);
  evo::EsConfig cfg;
  cfg.generations = 250;
  cfg.seed = 3;
  cfg.accept_equal_fitness = true;
  const evo::EsResult drift =
      evo::evolve_extrinsic(cfg, {4, 4}, w.noisy, w.clean);
  cfg.accept_equal_fitness = false;
  const evo::EsResult strict =
      evo::evolve_extrinsic(cfg, {4, 4}, w.noisy, w.clean);
  EXPECT_FALSE(drift.best == strict.best);
  // Neither run may ever end worse than where it started.
  EXPECT_LE(drift.best_fitness, drift.history.front().fitness);
  EXPECT_LE(strict.best_fitness, strict.history.front().fitness);
}

}  // namespace
}  // namespace ehw
