// Tests for ehw/pe: the 16-function library, systolic dataflow, config
// decoding (fault semantics) and the compiled evaluator's equivalence with
// the reference mesh model.

#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "ehw/evo/genotype.hpp"
#include "ehw/fpga/config_memory.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/pe/array.hpp"
#include "ehw/pe/compiled.hpp"
#include "ehw/pe/decoder.hpp"
#include "ehw/pe/functions.hpp"
#include "ehw/reconfig/pbs_library.hpp"

namespace ehw::pe {
namespace {

TEST(PeFunctions, SpotChecks) {
  EXPECT_EQ(apply_op(PeOp::kConst255, 1, 2), 255);
  EXPECT_EQ(apply_op(PeOp::kIdentityW, 10, 20), 10);
  EXPECT_EQ(apply_op(PeOp::kIdentityN, 10, 20), 20);
  EXPECT_EQ(apply_op(PeOp::kInvertW, 10, 0), 245);
  EXPECT_EQ(apply_op(PeOp::kMax, 7, 9), 9);
  EXPECT_EQ(apply_op(PeOp::kMin, 7, 9), 7);
  EXPECT_EQ(apply_op(PeOp::kAddSat, 200, 100), 255);
  EXPECT_EQ(apply_op(PeOp::kAddSat, 20, 30), 50);
  EXPECT_EQ(apply_op(PeOp::kSubSat, 20, 30), 0);
  EXPECT_EQ(apply_op(PeOp::kSubSat, 30, 20), 10);
  EXPECT_EQ(apply_op(PeOp::kAverage, 10, 11), 11);  // rounded up
  EXPECT_EQ(apply_op(PeOp::kShiftR1, 9, 0), 4);
  EXPECT_EQ(apply_op(PeOp::kShiftR2, 9, 0), 2);
  EXPECT_EQ(apply_op(PeOp::kAddMod, 200, 100), 44);
  EXPECT_EQ(apply_op(PeOp::kAbsDiff, 30, 100), 70);
  EXPECT_EQ(apply_op(PeOp::kThreshold, 31, 30), 255);
  EXPECT_EQ(apply_op(PeOp::kThreshold, 30, 30), 0);
  EXPECT_EQ(apply_op(PeOp::kOr, 0xF0, 0x0F), 0xFF);
  EXPECT_EQ(apply_op(PeOp::kAnd, 0xF0, 0x1F), 0x10);
}

/// Property sweep over the whole input plane for the algebraic identities
/// the hardware relies on.
class PeFunctionProperty : public ::testing::TestWithParam<int> {};

TEST_P(PeFunctionProperty, AlgebraicInvariants) {
  const int w = GetParam();
  for (int n = 0; n < 256; n += 5) {
    const auto pw = static_cast<Pixel>(w);
    const auto pn = static_cast<Pixel>(n);
    // Commutativity of the symmetric ops.
    EXPECT_EQ(apply_op(PeOp::kMax, pw, pn), apply_op(PeOp::kMax, pn, pw));
    EXPECT_EQ(apply_op(PeOp::kMin, pw, pn), apply_op(PeOp::kMin, pn, pw));
    EXPECT_EQ(apply_op(PeOp::kAddSat, pw, pn),
              apply_op(PeOp::kAddSat, pn, pw));
    EXPECT_EQ(apply_op(PeOp::kAbsDiff, pw, pn),
              apply_op(PeOp::kAbsDiff, pn, pw));
    // min <= avg <= max.
    const Pixel avg = apply_op(PeOp::kAverage, pw, pn);
    EXPECT_LE(apply_op(PeOp::kMin, pw, pn), avg);
    EXPECT_GE(apply_op(PeOp::kMax, pw, pn), avg);
    // Involution: invert(invert(w)) == w.
    EXPECT_EQ(apply_op(PeOp::kInvertW, apply_op(PeOp::kInvertW, pw, 0), 0),
              pw);
    // AND <= OR.
    EXPECT_LE(apply_op(PeOp::kAnd, pw, pn), apply_op(PeOp::kOr, pw, pn));
  }
}

INSTANTIATE_TEST_SUITE_P(InputSweep, PeFunctionProperty,
                         ::testing::Values(0, 1, 17, 64, 127, 128, 200, 254,
                                           255));

TEST(PeFunctions, NamesAreUniqueAndStable) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kOpCount; ++i) {
    names.insert(op_name(static_cast<PeOp>(i)));
  }
  EXPECT_EQ(names.size(), kOpCount);
  EXPECT_EQ(op_name(PeOp::kMax), "MAX");
}

TEST(PeFunctions, UsageClassification) {
  EXPECT_TRUE(op_uses_only_w(PeOp::kIdentityW));
  EXPECT_TRUE(op_uses_only_w(PeOp::kShiftR2));
  EXPECT_FALSE(op_uses_only_w(PeOp::kMax));
  EXPECT_TRUE(op_is_constant(PeOp::kConst255));
  EXPECT_FALSE(op_is_constant(PeOp::kIdentityN));
}

/// Builds a 2x2 array with explicit wiring for hand-checked dataflow.
TEST(SystolicArray, HandComputedDataflow) {
  SystolicArray a(fpga::ArrayShape{2, 2});
  // Cells: (0,0)=ADD_SAT, (0,1)=MAX, (1,0)=IdentityN, (1,1)=MIN.
  a.set_cell(0, 0, {PeOp::kAddSat, false, 0});
  a.set_cell(0, 1, {PeOp::kMax, false, 0});
  a.set_cell(1, 0, {PeOp::kIdentityN, false, 0});
  a.set_cell(1, 1, {PeOp::kMin, false, 0});
  // Window taps: west rows from taps 0,1; north cols from taps 2,3.
  a.set_input_select(0, 0);  // west row0 <- win[0]
  a.set_input_select(1, 1);  // west row1 <- win[1]
  a.set_input_select(2, 2);  // north col0 <- win[2]
  a.set_input_select(3, 3);  // north col1 <- win[3]
  const Pixel win[9] = {10, 20, 30, 40, 0, 0, 0, 0, 0};
  // (0,0): addsat(W=10, N=30) = 40.
  // (0,1): max(W=40(out00), N=40(win3)) = 40.
  // (1,0): identityN(W=20, N=out00=40) = 40.
  // (1,1): min(W=out10=40, N=out01=40) = 40.
  a.set_output_row(0);
  EXPECT_EQ(a.evaluate(win, 0, 0), 40);
  a.set_output_row(1);
  EXPECT_EQ(a.evaluate(win, 0, 0), 40);
  // Change (1,1) to AddMod: (40+40)%256 = 80.
  a.set_cell(1, 1, {PeOp::kAddMod, false, 0});
  EXPECT_EQ(a.evaluate(win, 0, 0), 80);
}

TEST(SystolicArray, OutputRowSelectsEastPort) {
  SystolicArray a(fpga::ArrayShape{4, 4});
  // Row r passes its west input straight through; west input r taps win[r].
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      a.set_cell(r, c, {PeOp::kIdentityW, false, 0});
    }
    a.set_input_select(r, static_cast<std::uint8_t>(r));
  }
  const Pixel win[9] = {11, 22, 33, 44, 55, 66, 77, 88, 99};
  for (std::uint8_t row = 0; row < 4; ++row) {
    a.set_output_row(row);
    EXPECT_EQ(a.evaluate(win, 0, 0), win[row]);
  }
}

TEST(SystolicArray, LatencyModel) {
  SystolicArray a(fpga::ArrayShape{4, 4});
  a.set_output_row(0);
  EXPECT_EQ(a.latency(), 5u);  // cols + row + input register
  a.set_output_row(3);
  EXPECT_EQ(a.latency(), 8u);
}

TEST(SystolicArray, DefectiveCellIsDeterministicButErratic) {
  SystolicArray a(fpga::ArrayShape{4, 4});
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      a.set_cell(r, c, {PeOp::kIdentityW, false, 0});
    }
  }
  a.set_cell(0, 0, {PeOp::kIdentityW, true, 1234});
  a.set_output_row(0);
  EXPECT_TRUE(a.any_defective());
  const Pixel win[9] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const Pixel v1 = a.evaluate(win, 10, 20);
  const Pixel v2 = a.evaluate(win, 10, 20);
  EXPECT_EQ(v1, v2);  // reproducible for the same frame position
  // Across positions the output varies (random-value model).
  int distinct = 0;
  Pixel prev = v1;
  for (std::size_t x = 0; x < 32; ++x) {
    const Pixel v = a.evaluate(win, x, 0);
    distinct += v != prev ? 1 : 0;
    prev = v;
  }
  EXPECT_GT(distinct, 10);
}

TEST(SystolicArray, FilterMatchesPerWindowEvaluation) {
  Rng rng(5);
  const evo::Genotype g = evo::Genotype::random({4, 4}, rng);
  const SystolicArray a = g.to_array();
  const img::Image src = img::make_scene(24, 18, 7);
  const img::Image out = a.filter(src);
  Pixel win[9];
  for (std::size_t y = 0; y < src.height(); y += 3) {
    for (std::size_t x = 0; x < src.width(); x += 3) {
      img::gather_window3x3(src, x, y, win);
      EXPECT_EQ(out.at(x, y), a.evaluate(win, x, y));
    }
  }
}

/// Compiled evaluator equivalence with the reference mesh — the library's
/// core correctness property, swept over many random genotypes.
class CompiledEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompiledEquivalence, MatchesReferenceMesh) {
  Rng rng(GetParam());
  const evo::Genotype g = evo::Genotype::random({4, 4}, rng);
  const SystolicArray mesh = g.to_array();
  const CompiledArray compiled(mesh);
  const img::Image src = img::make_scene(20, 20, GetParam() ^ 0x77);
  const img::Image a = mesh.filter(src);
  const img::Image b = compiled.filter(src);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(RandomGenotypes, CompiledEquivalence,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(CompiledArray, DeadRowsAreDropped) {
  Rng rng(8);
  evo::Genotype g = evo::Genotype::random({4, 4}, rng);
  g.set_output_row(0);
  const CompiledArray c0(g.to_array());
  EXPECT_EQ(c0.active_cell_count(), 4u);  // only row 0
  g.set_output_row(3);
  const CompiledArray c3(g.to_array());
  EXPECT_EQ(c3.active_cell_count(), 16u);
}

TEST(CompiledArray, DefectBelowOutputRowIsInvisible) {
  evo::Genotype g(fpga::ArrayShape{4, 4});
  for (std::size_t i = 0; i < g.cell_count(); ++i) {
    g.set_function_gene(i, static_cast<std::uint8_t>(PeOp::kAverage));
  }
  g.set_output_row(0);
  SystolicArray mesh = g.to_array();
  // Corrupt a row-3 cell: the row-0 output cannot observe it.
  mesh.set_cell(3, 2, {PeOp::kIdentityW, true, 42});
  const CompiledArray compiled(mesh);
  EXPECT_FALSE(compiled.any_defective_active());
  const img::Image src = img::make_scene(16, 16, 3);
  SystolicArray clean_mesh = g.to_array();
  EXPECT_EQ(compiled.filter(src), clean_mesh.filter(src));
}

TEST(CompiledArray, FitnessAgainstMatchesManualMae) {
  Rng rng(15);
  const evo::Genotype g = evo::Genotype::random({4, 4}, rng);
  const CompiledArray compiled(g.to_array());
  const img::Image src = img::make_scene(20, 20, 4);
  const img::Image ref = img::make_scene(20, 20, 5);
  const img::Image out = compiled.filter(src);
  EXPECT_EQ(compiled.fitness_against(src, ref), img::aggregated_mae(out, ref));
}

TEST(CompiledArray, ThreadedFilterIsDeterministic) {
  Rng rng(21);
  const evo::Genotype g = evo::Genotype::random({4, 4}, rng);
  const CompiledArray compiled(g.to_array());
  const img::Image src = img::make_scene(64, 64, 6);
  ThreadPool pool(4);
  img::Image seq(64, 64), par(64, 64);
  compiled.filter_into(src, seq, nullptr);
  compiled.filter_into(src, par, &pool);
  EXPECT_EQ(seq, par);
  EXPECT_EQ(compiled.fitness_against(src, seq, &pool), 0u);
}

/// Decoder: intact slots yield library functions; corrupted slots yield
/// defective cells.
struct DecoderFixture : ::testing::Test {
  DecoderFixture()
      : geometry(1, fpga::ArrayShape{4, 4}),
        memory(geometry.total_words()),
        library(geometry.words_per_slot()) {}

  void write_function(const fpga::SlotAddress& slot, std::uint8_t opcode) {
    fpga::write_payload(memory, geometry.slot_word_base(slot),
                        library.function(opcode));
  }

  fpga::FabricGeometry geometry;
  fpga::ConfigMemory memory;
  reconfig::PbsLibrary library;
};

TEST_F(DecoderFixture, IntactSlotDecodesToFunction) {
  write_function({0, 1, 2}, 13);
  const CellConfig cc = decode_slot(memory, geometry, library, {0, 1, 2});
  EXPECT_FALSE(cc.defective);
  EXPECT_EQ(cc.op, PeOp::kThreshold);
}

TEST_F(DecoderFixture, FlippedBitDecodesDefective) {
  write_function({0, 0, 0}, 4);
  memory.flip_bit(geometry.slot_word_base({0, 0, 0}) + 9, 17);
  const CellConfig cc = decode_slot(memory, geometry, library, {0, 0, 0});
  EXPECT_TRUE(cc.defective);
}

TEST_F(DecoderFixture, DummyPayloadDecodesDefective) {
  fpga::write_payload(memory, geometry.slot_word_base({0, 2, 2}),
                      library.dummy());
  const CellConfig cc = decode_slot(memory, geometry, library, {0, 2, 2});
  EXPECT_TRUE(cc.defective);
}

TEST_F(DecoderFixture, DifferentCorruptionsDifferentSeeds) {
  write_function({0, 0, 0}, 4);
  write_function({0, 0, 1}, 4);
  memory.flip_bit(geometry.slot_word_base({0, 0, 0}) + 1, 1);
  memory.flip_bit(geometry.slot_word_base({0, 0, 1}) + 1, 1);
  const CellConfig a = decode_slot(memory, geometry, library, {0, 0, 0});
  const CellConfig b = decode_slot(memory, geometry, library, {0, 0, 1});
  EXPECT_TRUE(a.defective && b.defective);
  EXPECT_NE(a.defect_seed, b.defect_seed);
}

TEST_F(DecoderFixture, DecodeArrayAppliesRegisterGenes) {
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      write_function({0, r, c},
                     static_cast<std::uint8_t>(PeOp::kIdentityW));
    }
  }
  std::vector<std::uint8_t> taps{4, 4, 4, 4, 0, 1, 2, 3};
  const SystolicArray a =
      decode_array(memory, geometry, library, 0, taps, 2);
  EXPECT_EQ(a.output_row(), 2);
  EXPECT_EQ(a.input_select(0), 4);
  EXPECT_EQ(a.input_select(7), 3);
  // Identity row wiring: output = window centre (tap 4).
  const Pixel win[9] = {0, 0, 0, 0, 123, 0, 0, 0, 0};
  EXPECT_EQ(a.evaluate(win, 0, 0), 123);
}

}  // namespace
}  // namespace ehw::pe
