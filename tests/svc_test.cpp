// Tests for the mission service: protocol payload round trips, the
// versioned handshake, request validation, admission control
// (queue_full backpressure), drain semantics, progress streaming — and
// above all that results delivered through the socket are BIT-IDENTICAL
// to standalone runs of the same spec (the scheduler's determinism
// guarantee extended across the wire).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "ehw/common/persist.hpp"
#include "ehw/common/version.hpp"
#include "ehw/sched/missions.hpp"
#include "ehw/svc/client.hpp"
#include "ehw/svc/server.hpp"
#include "ehw/svc/socket.hpp"

namespace ehw::svc {
namespace {

sched::MissionSpec quick_spec(sched::MissionKind kind, std::string name,
                              std::size_t lanes, Generation generations,
                              std::uint64_t seed) {
  sched::MissionSpec spec;
  spec.kind = kind;
  spec.name = std::move(name);
  spec.lanes = lanes;
  spec.generations = generations;
  spec.size = 16;
  spec.seed = seed;
  return spec;
}

/// The wire answer a standalone run of `spec` would produce.
struct Reference {
  Fitness fitness = 0;
  std::string genotype_hash;
  std::string sim_ns;
};

Reference standalone_reference(const sched::MissionSpec& spec) {
  const sched::JobOutcome alone = sched::run_spec_standalone(spec);
  Reference ref;
  ref.sim_ns = std::to_string(alone.stats.mission_time);
  if (spec.kind == sched::MissionKind::kCascade) {
    ref.fitness = alone.cascade.chain_fitness;
    std::uint64_t chain_hash = 0;
    for (const platform::CascadeStageOutcome& stage : alone.cascade.stages) {
      chain_hash = hash_mix(chain_hash, stage.best.hash());
    }
    ref.genotype_hash = hash_hex(chain_hash);
  } else {
    ref.fitness = alone.intrinsic.es.best_fitness;
    ref.genotype_hash = hash_hex(alone.intrinsic.es.best.hash());
  }
  return ref;
}

void expect_result_matches(const Json& result, const Reference& ref) {
  EXPECT_EQ(result.get_string("status", "?"), "done");
  EXPECT_EQ(static_cast<Fitness>(result.get_number("best_fitness", 0)),
            ref.fitness);
  EXPECT_EQ(result.get_string("genotype_hash", "?"), ref.genotype_hash);
  EXPECT_EQ(result.get_string("sim_ns", "?"), ref.sim_ns);
}

// --- protocol payloads ------------------------------------------------------

TEST(SvcProtocol, SpecJsonRoundTrip) {
  sched::MissionSpec spec;
  spec.kind = sched::MissionKind::kCascade;
  spec.name = "rt";
  spec.lanes = 3;
  spec.priority = -2;
  spec.generations = 123;
  spec.size = 48;
  spec.noise = 0.25;
  spec.mutation_rate = 5;
  spec.lambda = 7;
  // Above 2^53: a JSON double would round these; they must survive the
  // wire bit-exactly (they travel as decimal strings).
  spec.seed = (1ULL << 53) + 3;
  spec.scene_seed = 0xFFFFFFFFFFFFFFFFULL;
  spec.two_level = true;
  spec.merged_fitness = true;
  spec.interleaved = true;

  // Emit -> dump -> parse -> rebuild must reproduce every field.
  const std::string wire = spec_to_json(spec).dump();
  sched::MissionSpec parsed;
  ASSERT_EQ(spec_from_json(Json::parse(wire), parsed), "");
  EXPECT_EQ(parsed.kind, spec.kind);
  EXPECT_EQ(parsed.name, spec.name);
  EXPECT_EQ(parsed.lanes, spec.lanes);
  EXPECT_EQ(parsed.priority, spec.priority);
  EXPECT_EQ(parsed.generations, spec.generations);
  EXPECT_EQ(parsed.size, spec.size);
  EXPECT_DOUBLE_EQ(parsed.noise, spec.noise);
  EXPECT_EQ(parsed.mutation_rate, spec.mutation_rate);
  EXPECT_EQ(parsed.lambda, spec.lambda);
  EXPECT_EQ(parsed.seed, spec.seed);
  EXPECT_EQ(parsed.scene_seed, spec.scene_seed);
  EXPECT_EQ(parsed.two_level, spec.two_level);
  EXPECT_EQ(parsed.merged_fitness, spec.merged_fitness);
  EXPECT_EQ(parsed.interleaved, spec.interleaved);
}

TEST(SvcProtocol, SpecFromJsonRejectsBadPayloads) {
  sched::MissionSpec spec;
  // Same vocabulary and validation as the manifest parser.
  EXPECT_NE(spec_from_json(Json::parse(R"({"name":"x"})"), spec), "");
  EXPECT_NE(spec_from_json(
                Json::parse(R"({"kind":"transmogrify","name":"x"})"), spec),
            "");
  EXPECT_NE(spec_from_json(
                Json::parse(R"({"kind":"denoise","name":"x","lanes":0})"),
                spec),
            "");
  EXPECT_NE(spec_from_json(
                Json::parse(
                    R"({"kind":"denoise","name":"x","frobnicate":1})"),
                spec),
            "");
  EXPECT_NE(spec_from_json(
                Json::parse(R"({"kind":"denoise","name":"x","noise":1.5})"),
                spec),
            "");
  EXPECT_NE(spec_from_json(Json::parse(R"({"kind":"denoise"})"), spec), "");
  EXPECT_NE(spec_from_json(Json::parse(R"([1,2,3])"), spec), "");
}

// --- handshake and request validation ---------------------------------------

TEST(SvcServer, HandshakeGreetsAndEnforcesProtocolVersion) {
  ServerConfig config;
  config.pool.num_arrays = 1;
  Server server(config);

  // Greeting frame announces service, protocol and build version.
  LineChannel channel(Socket::connect_to("127.0.0.1", server.port()));
  std::string line;
  ASSERT_TRUE(channel.read_line(line));
  const Json greeting = Json::parse(line);
  EXPECT_EQ(greeting.get_string("event", ""), "hello");
  EXPECT_EQ(greeting.get_string("service", ""), kServiceName);
  EXPECT_EQ(greeting.get_number("protocol", -1), kProtocolVersion);
  EXPECT_EQ(greeting.get_string("version", ""), kVersion);

  // Ops before the hello are refused.
  ASSERT_TRUE(channel.write_line(R"({"op":"list"})"));
  ASSERT_TRUE(channel.read_line(line));
  EXPECT_FALSE(Json::parse(line).get_bool("ok", true));

  // A protocol mismatch is rejected and the connection closed.
  ASSERT_TRUE(channel.write_line(R"({"op":"hello","protocol":99})"));
  ASSERT_TRUE(channel.read_line(line));
  const Json rejected = Json::parse(line);
  EXPECT_FALSE(rejected.get_bool("ok", true));
  EXPECT_EQ(rejected.get_string("code", ""), "unsupported_protocol");
  EXPECT_FALSE(channel.read_line(line));  // server hung up

  // The Client class performs the handshake; a fresh one must work.
  Client client(server.port());
  EXPECT_EQ(client.server_version(), kVersion);
  server.stop();
}

TEST(SvcServer, MalformedAndUnknownRequestsGetErrorsWithEchoedId) {
  ServerConfig config;
  config.pool.num_arrays = 1;
  Server server(config);
  LineChannel channel(Socket::connect_to("127.0.0.1", server.port()));
  std::string line;
  ASSERT_TRUE(channel.read_line(line));  // greeting
  ASSERT_TRUE(channel.write_line(R"({"op":"hello","protocol":1})"));
  ASSERT_TRUE(channel.read_line(line));
  ASSERT_TRUE(Json::parse(line).get_bool("ok", false));

  // Malformed JSON frame: an error response, connection stays usable.
  ASSERT_TRUE(channel.write_line("this is not json"));
  ASSERT_TRUE(channel.read_line(line));
  EXPECT_EQ(Json::parse(line).get_string("code", ""), "bad_request");

  // Unknown op, with the request id echoed back.
  ASSERT_TRUE(channel.write_line(R"({"op":"transmogrify","id":42})"));
  ASSERT_TRUE(channel.read_line(line));
  const Json response = Json::parse(line);
  EXPECT_EQ(response.get_string("code", ""), "bad_request");
  EXPECT_EQ(response.get_number("id", -1), 42.0);

  // Submit with a bad spec is rejected, not crashed on.
  ASSERT_TRUE(channel.write_line(
      R"({"op":"submit","spec":{"kind":"denoise","name":"x","lanes":0}})"));
  ASSERT_TRUE(channel.read_line(line));
  EXPECT_EQ(Json::parse(line).get_string("code", ""), "bad_spec");

  // Lane demand beyond the pool is a spec error too.
  ASSERT_TRUE(channel.write_line(
      R"({"op":"submit","spec":{"kind":"denoise","name":"x","lanes":7}})"));
  ASSERT_TRUE(channel.read_line(line));
  EXPECT_EQ(Json::parse(line).get_string("code", ""), "bad_spec");
  server.stop();
}

// --- end-to-end determinism -------------------------------------------------

TEST(SvcServer, SubmitWatchResultBitIdenticalToStandalone) {
  ServerConfig config;
  config.pool.num_arrays = 2;
  Server server(config);
  Client client(server.port());
  Client control(server.port());

  // Gate: an effectively endless 2-lane blocker keeps the real job
  // queued until the watch subscription is in place, so the test
  // observes the COMPLETE progress stream deterministically.
  const Client::Submitted blocker = control.submit(quick_spec(
      sched::MissionKind::kDenoise, "blocker", 2, 100000000, 1));
  ASSERT_TRUE(blocker.ok) << blocker.error;

  const sched::MissionSpec spec =
      quick_spec(sched::MissionKind::kDenoise, "dn", 2, 15, 5);
  const Client::Submitted submitted = client.submit(spec);
  ASSERT_TRUE(submitted.ok) << submitted.error;
  EXPECT_EQ(client.status(submitted.job).get_string("status", "?"),
            "queued");

  // Watch streams progress events and ends with done. The server
  // subscribes before acking, so waiting for on_subscribed before
  // releasing the gate guarantees the COMPLETE stream is observed.
  std::uint64_t events = 0;
  std::uint64_t last_waves = 0;
  std::string status;
  std::atomic<bool> subscribed{false};
  std::thread watcher([&] {
    status = client.watch(
        submitted.job,
        [&](std::uint64_t waves) {
          ++events;
          EXPECT_GT(waves, last_waves);
          last_waves = waves;
        },
        /*every=*/1, /*on_subscribed=*/[&] { subscribed.store(true); });
  });
  while (!subscribed.load()) std::this_thread::yield();
  ASSERT_TRUE(control.cancel(blocker.job));
  watcher.join();
  EXPECT_EQ(status, "done");
  EXPECT_EQ(events, 15u);  // one per generation, none missed

  const Json result = client.result(submitted.job);
  ASSERT_TRUE(result.get_bool("ok", false));
  // One wave per generation for the evolution kinds.
  EXPECT_EQ(result.get_number("waves", 0),
            result.get_number("generations", -1));
  expect_result_matches(result, standalone_reference(spec));

  // status reports the finished job consistently.
  const Json status_response = client.status(submitted.job);
  EXPECT_EQ(status_response.get_string("status", "?"), "done");
  EXPECT_EQ(status_response.get_string("sim_ns", "?"),
            result.get_string("sim_ns", "!"));
  server.stop();
}

TEST(SvcServer, CascadeResultBitIdenticalToStandalone) {
  ServerConfig config;
  config.pool.num_arrays = 2;
  Server server(config);
  Client client(server.port());

  sched::MissionSpec spec =
      quick_spec(sched::MissionKind::kCascade, "ca", 2, 6, 11);
  spec.noise = 0.2;
  spec.interleaved = true;
  const Client::Submitted submitted = client.submit(spec);
  ASSERT_TRUE(submitted.ok) << submitted.error;
  const Json result = client.result(submitted.job);
  ASSERT_TRUE(result.get_bool("ok", false));
  expect_result_matches(result, standalone_reference(spec));
  // Per-stage payload is present and sized by the lane count.
  const Json* stages = result.get("stages");
  ASSERT_NE(stages, nullptr);
  EXPECT_EQ(stages->as_array().size(), spec.lanes);
  server.stop();
}

TEST(SvcServer, ConcurrentClientsAllBitIdenticalToStandalone) {
  ServerConfig config;
  config.pool.num_arrays = 8;
  Server server(config);

  constexpr std::size_t kClients = 4;
  std::vector<sched::MissionSpec> specs;
  specs.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    // snprintf instead of string concatenation: gcc 12 -O3 trips a
    // -Wrestrict false positive on operator+(const char*, string&&).
    char name[8];
    std::snprintf(name, sizeof name, "c%zu", i);
    specs.push_back(
        quick_spec(sched::MissionKind::kDenoise, name, 2, 12, 100 + i));
  }

  std::vector<Json> results(kClients);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      try {
        Client client(server.port());
        const Client::Submitted submitted = client.submit(specs[i]);
        if (!submitted.ok) throw std::runtime_error(submitted.error);
        results[i] = client.result(submitted.job);
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  for (std::size_t i = 0; i < kClients; ++i) {
    expect_result_matches(results[i], standalone_reference(specs[i]));
  }

  // Service accounting saw all of them.
  Client client(server.port());
  const Json stats = client.stats();
  const Json* service = stats.get("service");
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->get_number("submitted", 0), kClients);
  const Json* pool = stats.get("pool");
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->get_number("done", 0), kClients);
  server.stop();
}

// --- admission control, cancel, drain ---------------------------------------

TEST(SvcServer, SubmitBatchRunsEverySpecBitIdenticalToStandalone) {
  ServerConfig config;
  config.pool.num_arrays = 4;
  Server server(config);
  Client client(server.port());

  std::vector<sched::MissionSpec> specs;
  specs.push_back(quick_spec(sched::MissionKind::kDenoise, "b0", 1, 12, 5));
  specs.push_back(quick_spec(sched::MissionKind::kEdge, "b1", 2, 10, 6));
  specs.push_back(quick_spec(sched::MissionKind::kMorphology, "b2", 1, 8, 7));
  const Client::BatchSubmitted submitted = client.submit_batch(specs);
  ASSERT_TRUE(submitted.ok) << submitted.error;
  ASSERT_EQ(submitted.jobs.size(), specs.size());

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const Json result = client.result(submitted.jobs[i]);
    ASSERT_TRUE(result.get_bool("ok", false));
    EXPECT_EQ(result.get_string("name", "?"), specs[i].name);
    expect_result_matches(result, standalone_reference(specs[i]));
  }
  server.stop();
}

TEST(SvcServer, SubmitBatchAppliesDefaultsAndNamesBadSpecs) {
  ServerConfig config;
  config.pool.num_arrays = 2;
  Server server(config);
  LineChannel channel(Socket::connect_to("127.0.0.1", server.port()));
  std::string line;
  ASSERT_TRUE(channel.read_line(line));  // greeting
  ASSERT_TRUE(channel.write_line(R"({"op":"hello","protocol":1})"));
  ASSERT_TRUE(channel.read_line(line));

  // "defaults" is the shared frame; specs override per mission. The
  // result must equal a standalone run of the merged spec.
  ASSERT_TRUE(channel.write_line(
      R"({"op":"submit_batch",)"
      R"("defaults":{"kind":"denoise","size":16,"generations":10,"seed":"5"},)"
      R"("specs":[{"name":"d0"},{"name":"d1","seed":"6"}]})"));
  ASSERT_TRUE(channel.read_line(line));
  const Json accepted = Json::parse(line);
  ASSERT_TRUE(accepted.get_bool("ok", false)) << line;
  ASSERT_EQ(accepted.get("jobs")->as_array().size(), 2u);

  Client results(server.port());
  const auto merged = [](const char* name, std::uint64_t seed) {
    sched::MissionSpec spec =
        quick_spec(sched::MissionKind::kDenoise, name, 1, 10, seed);
    return spec;
  };
  const Json r0 = results.result(static_cast<std::uint64_t>(
      accepted.get("jobs")->as_array()[0].get_number("job", 0)));
  expect_result_matches(r0, standalone_reference(merged("d0", 5)));
  const Json r1 = results.result(static_cast<std::uint64_t>(
      accepted.get("jobs")->as_array()[1].get_number("job", 0)));
  expect_result_matches(r1, standalone_reference(merged("d1", 6)));

  // A bad spec rejects the WHOLE batch, naming the offending index...
  ASSERT_TRUE(channel.write_line(
      R"({"op":"submit_batch","specs":[)"
      R"({"kind":"denoise","name":"ok"},)"
      R"({"kind":"denoise","name":"bad","lanes":0}]})"));
  ASSERT_TRUE(channel.read_line(line));
  Json rejected = Json::parse(line);
  EXPECT_FALSE(rejected.get_bool("ok", true));
  EXPECT_EQ(rejected.get_string("code", ""), "bad_spec");
  EXPECT_NE(rejected.get_string("error", "").find("spec 1"),
            std::string::npos);

  // ...as do duplicate names within the batch and an empty spec list.
  ASSERT_TRUE(channel.write_line(
      R"({"op":"submit_batch","specs":[)"
      R"({"kind":"denoise","name":"dup"},{"kind":"edge","name":"dup"}]})"));
  ASSERT_TRUE(channel.read_line(line));
  rejected = Json::parse(line);
  EXPECT_FALSE(rejected.get_bool("ok", true));
  EXPECT_NE(rejected.get_string("error", "").find("duplicate"),
            std::string::npos);
  ASSERT_TRUE(channel.write_line(R"({"op":"submit_batch","specs":[]})"));
  ASSERT_TRUE(channel.read_line(line));
  EXPECT_FALSE(Json::parse(line).get_bool("ok", true));

  // Nothing from the rejected batches was admitted.
  const Json list = results.list();
  EXPECT_EQ(list.get("jobs")->as_array().size(), 2u);
  server.stop();
}

TEST(SvcServer, SubmitBatchAdmissionIsAtomicAgainstTheInflightCap) {
  ServerConfig config;
  config.pool.num_arrays = 1;
  config.max_inflight = 2;
  Server server(config);
  Client client(server.port());

  // A 3-spec batch cannot fit the cap of 2: rejected whole, nothing runs.
  std::vector<sched::MissionSpec> three;
  for (int j = 0; j < 3; ++j) {
    // snprintf instead of "t" + to_string: gcc 12 -O3 trips a -Wrestrict
    // false positive on operator+(const char*, string&&).
    char name[8];
    std::snprintf(name, sizeof name, "t%d", j);
    three.push_back(quick_spec(sched::MissionKind::kDenoise, name, 1, 5,
                               static_cast<std::uint64_t>(40 + j)));
  }
  const Client::BatchSubmitted rejected = client.submit_batch(three);
  ASSERT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.code, "queue_full");

  // The cap is still fully available: a 2-spec batch is admitted.
  three.pop_back();
  const Client::BatchSubmitted accepted = client.submit_batch(three);
  ASSERT_TRUE(accepted.ok) << accepted.error;
  ASSERT_EQ(accepted.jobs.size(), 2u);
  for (const std::uint64_t job : accepted.jobs) {
    EXPECT_EQ(client.result(job).get_string("status", "?"), "done");
  }
  server.stop();
}

TEST(SvcServer, AdmissionControlRejectsQueueFullAndCancelUnblocks) {
  ServerConfig config;
  config.pool.num_arrays = 1;
  config.max_inflight = 1;
  Server server(config);
  Client client(server.port());

  // An effectively endless mission occupies the only inflight slot.
  const sched::MissionSpec long_spec =
      quick_spec(sched::MissionKind::kDenoise, "long", 1, 100000000, 3);
  const Client::Submitted first = client.submit(long_spec);
  ASSERT_TRUE(first.ok) << first.error;

  // Backpressure: the second submit is rejected, not queued.
  const Client::Submitted second = client.submit(
      quick_spec(sched::MissionKind::kDenoise, "extra", 1, 5, 4));
  ASSERT_FALSE(second.ok);
  EXPECT_EQ(second.code, "queue_full");

  // Cancel the hog from a second connection; watch sees it finish.
  Client controller(server.port());
  ASSERT_TRUE(controller.cancel(first.job));
  const std::string status = client.watch(first.job);
  EXPECT_EQ(status, "cancelled");

  // The slot freed up: submitting works again.
  const Client::Submitted third = client.submit(
      quick_spec(sched::MissionKind::kDenoise, "after", 1, 5, 4));
  ASSERT_TRUE(third.ok) << third.error;
  EXPECT_EQ(client.watch(third.job), "done");
  server.stop();
}

TEST(SvcServer, DrainFinishesInFlightJobsAndRefusesNewOnes) {
  ServerConfig config;
  config.pool.num_arrays = 2;
  Server server(config);
  Client submitter(server.port());

  const sched::MissionSpec spec =
      quick_spec(sched::MissionKind::kDenoise, "inflight", 2, 20, 7);
  const Client::Submitted submitted = submitter.submit(spec);
  ASSERT_TRUE(submitted.ok) << submitted.error;

  // Drain from a second connection, waiting for the in-flight job.
  Client controller(server.port());
  const Json drained = controller.drain(/*wait=*/true);
  ASSERT_TRUE(drained.get_bool("ok", false));
  EXPECT_EQ(drained.get_number("inflight", -1), 0.0);
  EXPECT_TRUE(server.draining());

  // New submissions are refused with an explicit code...
  const Client::Submitted rejected = submitter.submit(
      quick_spec(sched::MissionKind::kDenoise, "late", 1, 5, 8));
  ASSERT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.code, "draining");

  // ...while the in-flight job completed normally, bit-identical.
  const Json result = submitter.result(submitted.job);
  expect_result_matches(result, standalone_reference(spec));

  server.wait_drained();  // returns immediately: drained and empty
  server.stop();
}

TEST(SvcServer, RetentionEvictsOldestFinishedJobsOnly) {
  ServerConfig config;
  config.pool.num_arrays = 1;
  config.max_job_records = 2;
  Server server(config);
  Client client(server.port());
  std::vector<std::uint64_t> jobs;
  for (int i = 0; i < 3; ++i) {
    char name[8];
    std::snprintf(name, sizeof name, "r%d", i);
    const Client::Submitted submitted = client.submit(quick_spec(
        sched::MissionKind::kDenoise, name, 1, 5,
        static_cast<std::uint64_t>(40 + i)));
    ASSERT_TRUE(submitted.ok) << submitted.error;
    jobs.push_back(submitted.job);
    EXPECT_EQ(client.watch(submitted.job), "done");
  }
  // The third submit pushed the registry over the cap: the OLDEST
  // finished job was evicted, the newer ones still resolve.
  const Json list = client.list();
  ASSERT_EQ(list.get("jobs")->as_array().size(), 2u);
  EXPECT_EQ(list.get("jobs")->as_array()[0].get_string("name", ""), "r1");
  EXPECT_EQ(client.status(jobs[0]).get_string("code", ""), "unknown_job");
  EXPECT_EQ(client.status(jobs[2]).get_string("status", ""), "done");
  server.stop();
}

TEST(SvcServer, ListShowsJobsAcrossConnections) {
  ServerConfig config;
  config.pool.num_arrays = 2;
  Server server(config);
  Client client(server.port());
  const Client::Submitted a = client.submit(
      quick_spec(sched::MissionKind::kEdge, "list-a", 1, 8, 21));
  const Client::Submitted b = client.submit(
      quick_spec(sched::MissionKind::kMorphology, "list-b", 1, 8, 22));
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(client.watch(a.job), "done");
  EXPECT_EQ(client.watch(b.job), "done");

  Client other(server.port());  // listings are service-wide
  const Json list = other.list();
  const Json* jobs = list.get("jobs");
  ASSERT_NE(jobs, nullptr);
  ASSERT_EQ(jobs->as_array().size(), 2u);
  EXPECT_EQ(jobs->as_array()[0].get_string("name", ""), "list-a");
  EXPECT_EQ(jobs->as_array()[0].get_string("status", ""), "done");
  EXPECT_EQ(jobs->as_array()[1].get_string("kind", ""), "morphology");

  // Jobs are addressable by name as well as id.
  Json by_name = Json::object();
  by_name.set("op", "status");
  by_name.set("job", "list-b");
  EXPECT_EQ(other.request(by_name).get_number("job", 0),
            static_cast<double>(b.job));
  server.stop();
}

// --- membership identity ----------------------------------------------------

TEST(SvcServer, GreetingCarriesInstanceIdentityAndEphemeralEpochIsOne) {
  ServerConfig config;
  config.pool.num_arrays = 1;
  Server server(config);
  EXPECT_FALSE(server.instance_id().empty());
  EXPECT_EQ(server.epoch(), 1u);

  Client client(server.port());
  EXPECT_EQ(client.server_instance_id(), server.instance_id());
  EXPECT_EQ(client.server_epoch(), 1u);

  // The identity also rides the stats and health ops (additive fields).
  const Json stats = client.stats();
  const Json* service = stats.get("service");
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->get_string("instance_id", ""), server.instance_id());
  EXPECT_EQ(service->get_number("epoch", 0), 1.0);
  Json health_request = Json::object();
  health_request.set("op", "health");
  const Json health = client.request(health_request);
  EXPECT_EQ(health.get_string("instance_id", ""), server.instance_id());
  EXPECT_EQ(health.get_number("epoch", 0), 1.0);
  server.stop();
}

TEST(SvcServer, JournaledIdentityPersistsAndEpochBumpsAcrossRestarts) {
  const std::string dir = testing::TempDir() + "ehw_svc_identity";
  static_cast<void>(remove_file(dir + "/instance.json"));
  static_cast<void>(remove_file(dir + "/journal.jsonl"));
  static_cast<void>(remove_file(dir + "/warm.json"));
  ServerConfig config;
  config.pool.num_arrays = 1;
  config.journal_dir = dir;

  std::string first_id;
  {
    Server first(config);
    first_id = first.instance_id();
    EXPECT_FALSE(first_id.empty());
    EXPECT_EQ(first.epoch(), 1u);
    first.stop();
  }
  {
    // Same journal, new process incarnation: same instance, epoch + 1 —
    // the signal a forwarder uses to tell "restarted, volatile state
    // gone" from "stalled, state intact".
    Server second(config);
    EXPECT_EQ(second.instance_id(), first_id);
    EXPECT_EQ(second.epoch(), 2u);
    second.stop();
  }
  {
    // A corrupt identity file never wedges startup: fresh identity.
    ASSERT_TRUE(atomic_write_file(dir + "/instance.json", "{broken").empty());
    Server third(config);
    EXPECT_FALSE(third.instance_id().empty());
    EXPECT_EQ(third.epoch(), 1u);
    third.stop();
  }
}

// --- protocol armor ---------------------------------------------------------

TEST(SvcServer, OversizeFrameGetsCleanErrorAndCloseWithBoundedMemory) {
  ServerConfig config;
  config.pool.num_arrays = 1;
  config.max_line = 4096;
  Server server(config);

  LineChannel channel(Socket::connect_to("127.0.0.1", server.port()));
  std::string line;
  ASSERT_TRUE(channel.read_line(line));  // greeting
  // A "frame" that never ends, far past the bound. The server must
  // answer with a clean protocol error and close — never buffer it all.
  const std::string flood(64 * 1024, 'x');
  ASSERT_TRUE(channel.write_line(flood));
  ASSERT_TRUE(channel.read_line(line));
  const Json error = Json::parse(line);
  EXPECT_FALSE(error.get_bool("ok", true));
  EXPECT_EQ(error.get_string("code", ""), "oversize_frame");
  EXPECT_FALSE(channel.read_line(line));  // server hung up

  // The daemon itself is unharmed: a fresh handshake works.
  Client client(server.port());
  EXPECT_TRUE(client.stats().get_bool("ok", false));
  server.stop();
}

TEST(SvcServer, IdleSessionsTimeOutWithExplicitError) {
  ServerConfig config;
  config.pool.num_arrays = 1;
  config.idle_timeout_ms = 150;
  Server server(config);

  LineChannel channel(Socket::connect_to("127.0.0.1", server.port()));
  std::string line;
  ASSERT_TRUE(channel.read_line(line));  // greeting
  // Say nothing. The server must evict this session on its own instead
  // of holding the fd forever.
  ASSERT_TRUE(channel.read_line(line));
  const Json error = Json::parse(line);
  EXPECT_FALSE(error.get_bool("ok", true));
  EXPECT_EQ(error.get_string("code", ""), "idle_timeout");
  EXPECT_FALSE(channel.read_line(line));  // closed

  // Active sessions are untouched by the bound.
  Client client(server.port());
  const Client::Submitted submitted = client.submit(
      quick_spec(sched::MissionKind::kDenoise, "alive", 1, 5, 3));
  ASSERT_TRUE(submitted.ok) << submitted.error;
  EXPECT_EQ(client.watch(submitted.job), "done");
  server.stop();
}

// --- load shedding hints ----------------------------------------------------

TEST(SvcServer, QueueFullRejectionsCarryRetryAfterHint) {
  ServerConfig config;
  config.pool.num_arrays = 1;
  config.max_inflight = 1;
  Server server(config);
  Client client(server.port());

  const Client::Submitted hog = client.submit(
      quick_spec(sched::MissionKind::kDenoise, "hog", 1, 100000000, 3));
  ASSERT_TRUE(hog.ok) << hog.error;

  const Client::Submitted rejected = client.submit(
      quick_spec(sched::MissionKind::kDenoise, "extra", 1, 5, 4));
  ASSERT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.code, "queue_full");
  // The hint is clamped to a sane band so well-behaved clients neither
  // hammer (>= 25 ms) nor stall for ages (<= 60 s).
  EXPECT_GE(rejected.retry_after_ms, 25u);
  EXPECT_LE(rejected.retry_after_ms, 60'000u);

  Client controller(server.port());
  ASSERT_TRUE(controller.cancel(hog.job));
  EXPECT_EQ(client.watch(hog.job), "cancelled");
  server.stop();
}

TEST(SvcClient, WithRetryWaitsOutQueueFullHintAndLands) {
  ServerConfig config;
  config.pool.num_arrays = 1;
  config.max_inflight = 1;
  Server server(config);
  Client client(server.port());

  const Client::Submitted hog = client.submit(
      quick_spec(sched::MissionKind::kDenoise, "hog2", 1, 100000000, 3));
  ASSERT_TRUE(hog.ok) << hog.error;

  // Free the slot shortly after the first rejection lands.
  std::thread unblocker([&server, job = hog.job] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    Client controller(server.port());
    ASSERT_TRUE(controller.cancel(job));
  });

  const sched::MissionSpec spec =
      quick_spec(sched::MissionKind::kDenoise, "patient", 1, 5, 4);
  RetryPolicy policy;
  policy.retries = 20;
  policy.backoff_ms = 50;
  const Json response = with_retry(
      server.port(), "127.0.0.1", policy, [&spec](Client& c) -> Json {
        Json request = Json::object();
        request.set("op", "submit");
        request.set("spec", spec_to_json(spec));
        return c.request(request);
      });
  unblocker.join();
  ASSERT_TRUE(response.get_bool("ok", false))
      << response.get_string("error", "");
  EXPECT_EQ(client.watch(static_cast<std::uint64_t>(
                response.get_number("job", 0))),
            "done");
  server.stop();
}

}  // namespace
}  // namespace ehw::svc
