// Cross-mode scenario tests: the remaining combinations of evolution
// schedule x fitness mode, mixed bypass patterns, SEU-under-imitation,
// multi-fault accumulation, and 4-array platforms.

#include <gtest/gtest.h>

#include "ehw/evo/fitness.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/noise.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/platform/cascade_evolution.hpp"
#include "ehw/platform/evolution_driver.hpp"
#include "ehw/platform/imitation.hpp"
#include "test_util.hpp"

namespace ehw::platform {
namespace {

TEST(CascadeModes, AllFourCombinationsConverge) {
  const auto w = test::make_denoise_workload(24, 0.25, 401);
  const Fitness baseline = img::aggregated_mae(w.noisy, w.clean);
  for (const CascadeFitness fit :
       {CascadeFitness::kSeparate, CascadeFitness::kMerged}) {
    for (const CascadeSchedule sched :
         {CascadeSchedule::kSequential, CascadeSchedule::kInterleaved}) {
      EvolvablePlatform plat(test::small_platform_config(2, 24));
      CascadeConfig cfg;
      cfg.es.generations = 60;
      cfg.es.seed = 401;
      cfg.fitness = fit;
      cfg.schedule = sched;
      const CascadeResult r =
          evolve_cascade(plat, {0, 1}, w.noisy, w.clean, cfg);
      EXPECT_LT(r.chain_fitness, baseline)
          << "fitness mode " << int(fit) << " schedule " << int(sched);
      // The reported chain fitness always matches the deployed fabric.
      std::vector<img::Image> stages;
      plat.process_cascade_into(w.noisy, stages);
      EXPECT_EQ(r.chain_fitness,
                img::aggregated_mae(stages.back(), w.clean));
    }
  }
}

TEST(CascadeModes, SingleStageCascadeEqualsIndependent) {
  const auto w = test::make_denoise_workload(24, 0.2, 402);
  EvolvablePlatform plat(test::small_platform_config(1, 24));
  CascadeConfig cfg;
  cfg.es.generations = 50;
  cfg.es.seed = 402;
  const CascadeResult r = evolve_cascade(plat, {0}, w.noisy, w.clean, cfg);
  ASSERT_EQ(r.stages.size(), 1u);
  EXPECT_EQ(r.chain_fitness, r.stages[0].stage_fitness);
}

TEST(BypassPatterns, AnySubsetOfStagesCanBeBypassed) {
  EvolvablePlatform plat(test::small_platform_config(3, 24));
  Rng rng(403);
  std::array<evo::Genotype, 3> genos{evo::Genotype::random({4, 4}, rng),
                                     evo::Genotype::random({4, 4}, rng),
                                     evo::Genotype::random({4, 4}, rng)};
  for (std::size_t a = 0; a < 3; ++a) plat.configure_array(a, genos[a], 0);
  const img::Image src = img::make_scene(24, 24, 403);

  for (unsigned mask = 0; mask < 8; ++mask) {
    for (std::size_t a = 0; a < 3; ++a) {
      plat.acb(a).set_bypass((mask >> a) & 1u);
    }
    img::Image expected = src;
    for (std::size_t a = 0; a < 3; ++a) {
      if (!((mask >> a) & 1u)) {
        expected = evo::apply_genotype(genos[a], expected);
      }
    }
    EXPECT_EQ(plat.process_cascade(src), expected) << "mask " << mask;
  }
  // All bypassed: the chain is the identity.
  for (std::size_t a = 0; a < 3; ++a) plat.acb(a).set_bypass(true);
  EXPECT_EQ(plat.process_cascade(src), src);
}

TEST(ImitationUnderSeu, ScrubMidRecoveryDoesNotDerail) {
  // An SEU lands on the apprentice during imitation; scrubbing between
  // generations clears it and the recovery continues.
  EvolvablePlatform plat(test::small_platform_config(2, 24));
  Rng rng(404);
  const evo::Genotype master = evo::Genotype::random({4, 4}, rng);
  plat.configure_array(1, master, 0);
  const img::Image stream = img::make_scene(24, 24, 404);

  ImitationConfig cfg;
  cfg.es.generations = 30;
  cfg.es.seed = 404;
  cfg.start_from_master = true;
  const ImitationResult first = evolve_by_imitation(plat, 0, 1, stream, cfg);
  EXPECT_EQ(first.es.best_fitness, 0u);  // healthy copy is exact

  plat.inject_seu(0);
  plat.scrub_array(0, plat.now());
  // Post-scrub the apprentice still matches the master exactly.
  EXPECT_EQ(img::aggregated_mae(plat.filter_array(0, stream),
                                plat.filter_array(1, stream)),
            0u);
}

TEST(MultiFault, AccumulatedPermanentFaultsDegradeGracefully) {
  // §VI.D: "With two permanent fault injections, or even more, a fitness
  // reduction is still achieved, but the limitations imposed by the
  // accumulated faults avoid the apprentice to work as well as the
  // master." Residuals grow with the number of locked cells, but recovery
  // keeps reducing the damage below the unrepaired level.
  const img::Image stream = img::make_scene(32, 32, 405);
  Rng rng(405);
  const evo::Genotype master = evo::Genotype::random({4, 4}, rng);

  for (const std::size_t faults : {1u, 3u}) {
    EvolvablePlatform plat(test::small_platform_config(2, 32));
    plat.configure_array(1, master, 0);
    const std::pair<std::size_t, std::size_t> cells[] = {
        {0, 1}, {1, 2}, {0, 3}};
    for (std::size_t f = 0; f < faults; ++f) {
      plat.inject_pe_fault(0, cells[f].first, cells[f].second);
    }
    // Unrepaired level: apprentice configured with the master genotype.
    plat.configure_array(0, master, plat.now());
    const Fitness unrepaired = img::aggregated_mae(
        plat.filter_array(0, stream), plat.filter_array(1, stream));

    ImitationConfig cfg;
    cfg.es.generations = 150;
    cfg.es.seed = 405;
    const ImitationResult r = evolve_by_imitation(plat, 0, 1, stream, cfg);
    // "a fitness reduction is still achieved" — recovery never ends worse
    // than the unrepaired configuration, for any accumulated fault count.
    EXPECT_LE(r.es.best_fitness, unrepaired) << faults << " faults";
  }
}

TEST(FourArrays, ParallelEvolutionUsesAllLanes) {
  EvolvablePlatform plat(test::small_platform_config(4, 24));
  const auto w = test::make_denoise_workload(24, 0.2, 406);
  evo::EsConfig cfg;
  cfg.lambda = 8;  // two full waves of four
  cfg.generations = 20;
  cfg.seed = 406;
  const IntrinsicResult r =
      evolve_on_platform(plat, {0, 1, 2, 3}, w.noisy, w.clean, cfg);
  EXPECT_GT(r.pe_writes, 0u);
  // All four arrays ended up configured.
  for (std::size_t a = 0; a < 4; ++a) {
    EXPECT_TRUE(plat.configured_genotype(a).has_value());
  }
}

TEST(LaneSubsets, EvolutionMayUseAnyArraySubset) {
  // Lanes need not start at array 0 nor be contiguous.
  EvolvablePlatform plat(test::small_platform_config(3, 24));
  const auto w = test::make_denoise_workload(24, 0.2, 407);
  evo::EsConfig cfg;
  cfg.generations = 15;
  cfg.seed = 407;
  const IntrinsicResult r =
      evolve_on_platform(plat, {2, 0}, w.noisy, w.clean, cfg);
  EXPECT_TRUE(plat.configured_genotype(0).has_value());
  EXPECT_TRUE(plat.configured_genotype(2).has_value());
  EXPECT_FALSE(plat.configured_genotype(1).has_value());
  EXPECT_LE(r.es.best_fitness, img::aggregated_mae(w.noisy, w.clean));
}

}  // namespace
}  // namespace ehw::platform
