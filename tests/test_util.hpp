#pragma once
// Shared helpers for the test suite: small deterministic workloads and
// platform factories sized so that the whole suite stays fast.

#include <cstdint>

#include "ehw/common/rng.hpp"
#include "ehw/img/image.hpp"
#include "ehw/img/noise.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/platform/platform.hpp"

namespace ehw::test {

/// Small scene + salt&pepper pair for evolution smoke tests.
struct DenoiseWorkload {
  img::Image clean;
  img::Image noisy;
};

inline DenoiseWorkload make_denoise_workload(std::size_t size = 32,
                                             double density = 0.2,
                                             std::uint64_t seed = 42) {
  DenoiseWorkload w;
  w.clean = img::make_scene(size, size, seed);
  Rng rng(seed ^ 0xBEEF);
  w.noisy = img::add_salt_pepper(w.clean, density, rng);
  return w;
}

inline platform::PlatformConfig small_platform_config(
    std::size_t arrays = 3, std::size_t line_width = 32) {
  platform::PlatformConfig cfg;
  cfg.num_arrays = arrays;
  cfg.shape = {4, 4};
  cfg.line_width = line_width;
  cfg.seed = 0x5117E57;
  return cfg;
}

/// A genotype that behaves as the identity filter: every function gene is
/// IdentityW, the first west tap is the window centre (tap 4) and output
/// row 0 — so the centre pixel rides straight across row 0.
inline evo::Genotype identity_genotype(fpga::ArrayShape shape = {4, 4}) {
  evo::Genotype g(shape);
  for (std::size_t cell = 0; cell < g.cell_count(); ++cell) {
    g.set_function_gene(cell,
                        static_cast<std::uint8_t>(pe::PeOp::kIdentityW));
  }
  for (std::size_t i = 0; i < g.input_count(); ++i) g.set_tap_gene(i, 4);
  g.set_output_row(0);
  return g;
}

}  // namespace ehw::test
