// Tests for the multi-mission scheduler: compiled-array cache behaviour,
// job-queue priority/fairness/admission, and the ArrayPool — above all
// that K missions multiplexed on one pool produce BIT-IDENTICAL results
// to the same missions run standalone or one-at-a-time (simulated state
// is never shared between jobs; only host threads and the compiled-array
// cache are, and cache warmth must never leak into results).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "ehw/sched/array_pool.hpp"
#include "ehw/sched/missions.hpp"
#include "test_util.hpp"

namespace ehw::sched {
namespace {

pe::CompiledArray make_compiled(std::uint64_t seed) {
  Rng rng(seed);
  return pe::CompiledArray(
      evo::Genotype::random(fpga::ArrayShape{4, 4}, rng).to_array());
}

// --- CompiledArrayCache -----------------------------------------------------

TEST(CompiledCache, HitsMissesAndLruEviction) {
  CompiledArrayCache cache(2);
  std::size_t compiles = 0;
  const auto compile = [&compiles] {
    ++compiles;
    return make_compiled(1);
  };

  EXPECT_NE(cache.get_or_compile(10, compile), nullptr);  // miss
  EXPECT_NE(cache.get_or_compile(10, compile), nullptr);  // hit
  EXPECT_EQ(compiles, 1u);

  bool hit = false;
  static_cast<void>(cache.get_or_compile(20, compile, &hit));  // miss
  EXPECT_FALSE(hit);
  static_cast<void>(cache.get_or_compile(10, compile, &hit));  // hit: 10 MRU
  EXPECT_TRUE(hit);
  static_cast<void>(cache.get_or_compile(30, compile, &hit));  // evicts 20
  EXPECT_FALSE(hit);
  static_cast<void>(cache.get_or_compile(20, compile, &hit));  // miss again
  EXPECT_FALSE(hit);
  static_cast<void>(cache.get_or_compile(10, compile, &hit));  // 10 survived?
  EXPECT_FALSE(hit);  // no: 20's reinsert evicted LRU 10 (cap 2: {30, 20})

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 5u);
  EXPECT_EQ(stats.evictions, 3u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_GT(stats.hit_rate(), 0.0);
}

TEST(CompiledCache, SharedInstanceAndCapacityZeroDisables) {
  CompiledArrayCache cache(4);
  const auto a = cache.get_or_compile(7, [] { return make_compiled(2); });
  const auto b = cache.get_or_compile(7, [] { return make_compiled(2); });
  EXPECT_EQ(a.get(), b.get());  // one shared instance

  CompiledArrayCache off(0);
  const auto c = off.get_or_compile(7, [] { return make_compiled(2); });
  const auto d = off.get_or_compile(7, [] { return make_compiled(2); });
  EXPECT_NE(c.get(), d.get());
  EXPECT_EQ(off.stats().hits, 0u);
  EXPECT_EQ(off.stats().misses, 2u);
}

// --- JobQueue ---------------------------------------------------------------

JobTicket ticket(std::uint64_t id, std::size_t lanes, int priority) {
  // Plain to_string: gcc 12 -O3 has a -Wrestrict false positive on
  // operator+(const char*, std::string&&).
  return JobTicket{id, std::to_string(id), lanes, priority};
}

TEST(JobQueue, PriorityThenFifo) {
  JobQueue q;
  q.push(ticket(0, 1, 0));
  q.push(ticket(1, 1, 5));
  q.push(ticket(2, 1, 5));
  EXPECT_EQ(q.pop_admissible(8)->id, 1u);  // highest priority, earliest
  EXPECT_EQ(q.pop_admissible(8)->id, 2u);
  EXPECT_EQ(q.pop_admissible(8)->id, 0u);
  EXPECT_TRUE(q.empty());
}

TEST(JobQueue, RespectsCapacity) {
  JobQueue q;
  q.push(ticket(0, 3, 1));
  EXPECT_FALSE(q.pop_admissible(2).has_value());
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop_admissible(3)->id, 0u);
}

TEST(JobQueue, AgingPromotesStarvedJobOverFreshArrivals) {
  // A waiting ticket gains one effective priority per aging_rounds
  // admissions, so a continuous stream of FRESH high-priority arrivals
  // cannot starve it: once aged, it ties them and FIFO wins the tie.
  JobQueue q(/*aging_rounds=*/4);
  q.push(ticket(0, 1, 0));  // the starved low-priority job
  q.push(ticket(1, 1, 1));
  EXPECT_EQ(q.pop_admissible(8)->id, 1u);
  q.push(ticket(2, 1, 1));
  EXPECT_EQ(q.pop_admissible(8)->id, 2u);
  q.push(ticket(3, 1, 1));
  EXPECT_EQ(q.pop_admissible(8)->id, 3u);
  q.push(ticket(4, 1, 1));
  EXPECT_EQ(q.pop_admissible(8)->id, 4u);
  q.push(ticket(5, 1, 1));
  // Ticket 0 waited through 4 admissions: effective 0 + 4/4 = 1, and the
  // smaller id beats the fresh priority-1 arrival.
  EXPECT_EQ(q.pop_admissible(8)->id, 0u);
  EXPECT_EQ(q.pop_admissible(8)->id, 5u);
}

TEST(JobQueue, StarvationBoundedUnderContinuousHighPriorityStream) {
  // Adversarial arrival pattern: every admission is immediately followed
  // by a FRESH job with a large static priority advantage. Aging must
  // still dispatch the old low-priority job within a bounded number of
  // pops: it gains one effective priority per aging_rounds admissions,
  // so after gap * aging_rounds pops it ties the fresh arrivals and FIFO
  // wins. Without aging this loop would never pop ticket 0.
  constexpr std::uint64_t kAgingRounds = 4;
  constexpr int kPriorityGap = 9;
  JobQueue q(kAgingRounds);
  q.push(ticket(0, 1, 0));  // the victim
  const std::uint64_t bound = kPriorityGap * kAgingRounds + 1;
  std::uint64_t pops = 0;
  bool victim_dispatched = false;
  for (std::uint64_t id = 1; pops < 2 * bound; ++id) {
    q.push(ticket(id, 1, kPriorityGap));
    const auto admitted = q.pop_admissible(8);
    ASSERT_TRUE(admitted.has_value());
    ++pops;
    if (admitted->id == 0) {
      victim_dispatched = true;
      break;
    }
  }
  EXPECT_TRUE(victim_dispatched);
  EXPECT_LE(pops, bound);
}

TEST(JobQueue, HeadOfLineProtectionForWideJobs) {
  // Small jobs may backfill around a wide job that doesn't fit — but only
  // starvation_age times; then the queue refuses to admit anything until
  // the wide job fits.
  JobQueue q(/*aging_rounds=*/4, /*starvation_age=*/16);
  q.push(ticket(0, 4, 0));  // wide, head of line
  for (std::uint64_t id = 1; id <= 20; ++id) q.push(ticket(id, 1, 0));
  for (std::uint64_t round = 0; round < 16; ++round) {
    const auto t = q.pop_admissible(1);  // wide job never fits one array
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->id, round + 1);
  }
  EXPECT_FALSE(q.pop_admissible(1).has_value());  // drain mode
  EXPECT_EQ(q.pop_admissible(4)->id, 0u);         // wide job finally fits
  EXPECT_EQ(q.pop_admissible(1)->id, 17u);        // backfill resumes
}

// --- ArrayPool --------------------------------------------------------------

std::vector<MissionSpec> heterogeneous_specs() {
  // Four different workloads: parallel denoise (3 lanes), edge detection
  // (2 lanes), single-lane morphology, collaborative cascade (2 stages).
  std::istringstream manifest(R"(
# batch determinism workload
denoise    dn0 lanes=3 generations=30 size=24 noise=0.3 seed=5
edge       ed0 lanes=2 generations=25 size=24 seed=7
morphology mo0 lanes=1 generations=20 size=24 seed=9 two-level=1
cascade    ca0 lanes=2 generations=8 size=24 noise=0.2 seed=11
)");
  return parse_manifest(manifest);
}

void expect_same_outcome(const JobOutcome& a, const JobOutcome& b) {
  EXPECT_EQ(a.intrinsic.es.best, b.intrinsic.es.best);
  EXPECT_EQ(a.intrinsic.es.best_fitness, b.intrinsic.es.best_fitness);
  EXPECT_EQ(a.intrinsic.es.generations_run, b.intrinsic.es.generations_run);
  ASSERT_EQ(a.intrinsic.es.history.size(), b.intrinsic.es.history.size());
  for (std::size_t i = 0; i < a.intrinsic.es.history.size(); ++i) {
    EXPECT_EQ(a.intrinsic.es.history[i].generation,
              b.intrinsic.es.history[i].generation);
    EXPECT_EQ(a.intrinsic.es.history[i].fitness,
              b.intrinsic.es.history[i].fitness);
  }
  EXPECT_EQ(a.intrinsic.duration, b.intrinsic.duration);
  EXPECT_EQ(a.intrinsic.pe_writes, b.intrinsic.pe_writes);
  ASSERT_EQ(a.cascade.stages.size(), b.cascade.stages.size());
  for (std::size_t s = 0; s < a.cascade.stages.size(); ++s) {
    EXPECT_EQ(a.cascade.stages[s].best, b.cascade.stages[s].best);
    EXPECT_EQ(a.cascade.stages[s].stage_fitness,
              b.cascade.stages[s].stage_fitness);
  }
  EXPECT_EQ(a.cascade.chain_fitness, b.cascade.chain_fitness);
  EXPECT_EQ(a.cascade.duration, b.cascade.duration);
  // Simulated mission time is part of the reproducible result; cache
  // hits/misses intentionally are NOT (they depend on what other
  // missions warmed the shared cache with).
  EXPECT_EQ(a.stats.mission_time, b.stats.mission_time);
}

TEST(ArrayPool, MultiplexedMissionsBitIdenticalToSequentialAndStandalone) {
  const std::vector<MissionSpec> specs = heterogeneous_specs();
  ASSERT_EQ(specs.size(), 4u);

  // Concurrently multiplexed: 4 heterogeneous jobs on 8 arrays.
  PoolConfig concurrent;
  concurrent.num_arrays = 8;
  ArrayPool pool(concurrent);
  std::vector<std::shared_ptr<MissionRunner>> runners;
  for (const MissionSpec& spec : specs) {
    runners.push_back(pool.submit(make_job_config(spec),
                                  make_job_body(spec)));
  }
  pool.wait_all();

  // One-at-a-time on a fresh pool (shared cache, zero concurrency).
  PoolConfig serial = concurrent;
  serial.max_concurrent_jobs = 1;
  ArrayPool serial_pool(serial);
  std::vector<std::shared_ptr<MissionRunner>> serial_runners;
  for (const MissionSpec& spec : specs) {
    serial_runners.push_back(
        serial_pool.submit(make_job_config(spec), make_job_body(spec)));
  }
  serial_pool.wait_all();

  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_EQ(runners[i]->status(), JobStatus::kDone) << specs[i].name;
    ASSERT_EQ(serial_runners[i]->status(), JobStatus::kDone);
    // Multiplexed == one-at-a-time on the pool...
    expect_same_outcome(runners[i]->result(), serial_runners[i]->result());
    // ...== the pre-scheduler standalone driver run.
    expect_same_outcome(runners[i]->result(), run_spec_standalone(specs[i]));
  }

  // Progress accounting: evolution jobs run one wave per generation.
  EXPECT_EQ(runners[0]->waves_completed(),
            runners[0]->result().intrinsic.es.generations_run);
}

TEST(ArrayPool, CacheHitRateAboveZeroOnRepeatedGenotypeWorkload) {
  MissionSpec spec;
  spec.kind = MissionKind::kDenoise;
  spec.name = "repeat";
  spec.lanes = 2;
  spec.size = 24;
  spec.generations = 20;
  spec.seed = 33;

  PoolConfig config;
  config.num_arrays = 2;
  config.max_concurrent_jobs = 1;  // deterministic cache interleaving
  ArrayPool pool(config);
  const auto first = pool.submit(make_job_config(spec), make_job_body(spec));
  const auto second = pool.submit(make_job_config(spec), make_job_body(spec));
  pool.wait_all();

  ASSERT_EQ(first->status(), JobStatus::kDone);
  ASSERT_EQ(second->status(), JobStatus::kDone);
  // Identical mission replayed against a warm cache: every candidate the
  // first run compiled is served from the cache in the second.
  const platform::MissionStats& warm = second->result().stats;
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_GT(warm.cache_hit_rate(), 0.5);
  EXPECT_GT(pool.cache_stats().hits, 0u);
  // And the warm run's mission results are still bit-identical.
  expect_same_outcome(first->result(), second->result());
}

TEST(ArrayPool, FitnessMemoWarmReplayHitsAndStaysBitIdentical) {
  MissionSpec spec;
  spec.kind = MissionKind::kDenoise;
  spec.name = "memo";
  spec.lanes = 2;
  spec.size = 24;
  spec.generations = 20;
  spec.seed = 33;

  // Memo-enabled pool, identical mission twice (serialized so the warm
  // replay is deterministic).
  PoolConfig with_memo;
  with_memo.num_arrays = 2;
  with_memo.max_concurrent_jobs = 1;
  ArrayPool pool(with_memo);
  const auto cold = pool.submit(make_job_config(spec), make_job_body(spec));
  const auto warm = pool.submit(make_job_config(spec), make_job_body(spec));
  pool.wait_all();
  ASSERT_EQ(cold->status(), JobStatus::kDone);
  ASSERT_EQ(warm->status(), JobStatus::kDone);

  // Same missions with the memo disabled.
  PoolConfig no_memo = with_memo;
  no_memo.fitness_memo_capacity = 0;
  ArrayPool off_pool(no_memo);
  const auto off_cold =
      off_pool.submit(make_job_config(spec), make_job_body(spec));
  const auto off_warm =
      off_pool.submit(make_job_config(spec), make_job_body(spec));
  off_pool.wait_all();

  // Bit-identity: memo-on == memo-off == standalone, cold and warm.
  expect_same_outcome(cold->result(), off_cold->result());
  expect_same_outcome(warm->result(), off_warm->result());
  expect_same_outcome(warm->result(), run_spec_standalone(spec));

  // The warm replay re-encounters every candidate on the same frames.
  const platform::MissionStats& warm_stats = warm->result().stats;
  EXPECT_GT(warm_stats.memo_hits, 0u);
  EXPECT_GT(warm_stats.memo_hit_rate(), 0.5);
  EXPECT_GT(pool.memo_stats().hits, 0u);
  // Disabled memo never counts traffic.
  EXPECT_EQ(off_warm->result().stats.memo_hits, 0u);
  EXPECT_EQ(off_pool.memo_stats().hits, 0u);
}

TEST(ArrayPool, ConcurrentIdenticalMissionsShareMemoBitIdentically) {
  // Several copies of one mission racing on a shared memo: every result
  // must equal the memo-off standalone run no matter which mission
  // populated which entry first.
  MissionSpec spec;
  spec.kind = MissionKind::kEdge;
  spec.name = "race";
  spec.lanes = 1;
  spec.size = 16;
  spec.generations = 15;
  spec.seed = 77;
  const JobOutcome reference = run_spec_standalone(spec);

  PoolConfig config;
  config.num_arrays = 4;
  ArrayPool pool(config);
  std::vector<std::shared_ptr<MissionRunner>> runners;
  for (int j = 0; j < 4; ++j) {
    // snprintf: gcc 12 -Wrestrict false positive on const char* + string&&.
    char name[8];
    std::snprintf(name, sizeof name, "race%d", j);
    spec.name = name;
    runners.push_back(pool.submit(make_job_config(spec),
                                  make_job_body(spec)));
  }
  pool.wait_all();
  for (const auto& runner : runners) {
    ASSERT_EQ(runner->status(), JobStatus::kDone);
    expect_same_outcome(runner->result(), reference);
  }
  // Identical candidate streams on identical frames: the memo collapses
  // the duplicate evaluations.
  EXPECT_GT(pool.memo_stats().hits, 0u);
}

TEST(ArrayPool, CancelStopsMissionAtWaveBoundary) {
  PoolConfig config;
  config.num_arrays = 1;
  ArrayPool pool(config);
  std::atomic<bool> started{false};
  const auto runner = pool.submit(
      JobConfig{"cancellee", 1},
      [&started](MissionContext& context, JobOutcome&) {
        started.store(true);
        for (;;) {
          context.check_cancelled();
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
  while (!started.load()) std::this_thread::yield();
  runner->cancel();
  runner->wait();
  EXPECT_EQ(runner->status(), JobStatus::kCancelled);
}

TEST(ArrayPool, FailedJobReportsError) {
  ArrayPool pool(PoolConfig{});
  const auto runner =
      pool.submit(JobConfig{"thrower", 1},
                  [](MissionContext&, JobOutcome&) {
                    throw std::runtime_error("boom");
                  });
  runner->wait();
  EXPECT_EQ(runner->status(), JobStatus::kFailed);
  EXPECT_EQ(runner->result().error, "boom");
}

TEST(ArrayPool, SimulatedScheduleOverlapsMissionsOnFreeArrays) {
  // Four identical 2-lane jobs on 8 arrays all engage at pool time 0, so
  // the pool's simulated makespan is one job duration and multiplexed
  // throughput is 4x the one-at-a-time pool — the scheduler's win.
  MissionSpec spec;
  spec.kind = MissionKind::kDenoise;
  spec.lanes = 2;
  spec.size = 16;
  spec.generations = 10;

  PoolConfig config;
  config.num_arrays = 8;
  ArrayPool pool(config);
  for (int j = 0; j < 4; ++j) {
    spec.name = std::to_string(j);
    pool.submit(make_job_config(spec), make_job_body(spec));
  }
  const ArrayPool::ScheduleReport report = pool.simulated_schedule();
  ASSERT_EQ(report.jobs.size(), 4u);
  for (const ArrayPool::ScheduleEntry& entry : report.jobs) {
    EXPECT_EQ(entry.start, 0);  // all four admitted at pool time zero
    EXPECT_EQ(entry.end, report.makespan);
  }
  EXPECT_EQ(report.serialized, 4 * report.makespan);
  EXPECT_DOUBLE_EQ(report.speedup(), 4.0);
  EXPECT_GT(report.missions_per_sim_second(), 0.0);

  // The same workload on a one-job pool serializes completely.
  PoolConfig narrow = config;
  narrow.max_concurrent_jobs = 1;
  ArrayPool narrow_pool(narrow);
  for (int j = 0; j < 4; ++j) {
    spec.name = std::to_string(j);
    narrow_pool.submit(make_job_config(spec), make_job_body(spec));
  }
  const ArrayPool::ScheduleReport serial = narrow_pool.simulated_schedule();
  EXPECT_EQ(serial.makespan, serial.serialized);
  EXPECT_DOUBLE_EQ(serial.speedup(), 1.0);
}

TEST(ArrayPool, RejectsOversizedLaneDemand) {
  PoolConfig config;
  config.num_arrays = 2;
  ArrayPool pool(config);
  EXPECT_THROW(pool.submit(JobConfig{"too-wide", 3},
                           [](MissionContext&, JobOutcome&) {}),
               std::exception);
}

TEST(Manifest, ParsesKindsAndRejectsMalformedLines) {
  std::istringstream good(R"(
denoise a lanes=2 generations=5
edge b size=16        # trailing comment
)");
  const std::vector<MissionSpec> specs = parse_manifest(good);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].kind, MissionKind::kDenoise);
  EXPECT_EQ(specs[0].lanes, 2u);
  EXPECT_EQ(specs[1].name, "b");
  EXPECT_EQ(specs[1].size, 16u);

  std::istringstream bad_kind("transmogrify x lanes=1");
  EXPECT_THROW(parse_manifest(bad_kind), std::runtime_error);
  std::istringstream bad_kv("denoise x lanes");
  EXPECT_THROW(parse_manifest(bad_kv), std::runtime_error);
  std::istringstream bad_value("denoise x lanes=purple");
  EXPECT_THROW(parse_manifest(bad_value), std::runtime_error);
  std::istringstream no_name("denoise");
  EXPECT_THROW(parse_manifest(no_name), std::runtime_error);
  // Negative values must be rejected, not wrapped to 2^64-1 by stoul.
  std::istringstream negative_size("denoise x size=-1");
  EXPECT_THROW(parse_manifest(negative_size), std::runtime_error);
  std::istringstream negative_gens("denoise x generations=-5");
  EXPECT_THROW(parse_manifest(negative_gens), std::runtime_error);
  std::istringstream noise_range("denoise x noise=1.5");
  EXPECT_THROW(parse_manifest(noise_range), std::runtime_error);
}

std::string manifest_error_message(const std::string& text) {
  std::istringstream in(text);
  try {
    static_cast<void>(parse_manifest(in));
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

TEST(Manifest, ErrorsNameTheOffendingLineNumber) {
  // Malformed input is never silently skipped, and the diagnostic names
  // the exact line (comments and blank lines still count).
  const std::string unknown_key = R"(# header comment
denoise ok lanes=1

edge bad lanes=1 frobnicate=7
)";
  EXPECT_NE(manifest_error_message(unknown_key).find("line 4"),
            std::string::npos)
      << manifest_error_message(unknown_key);
  EXPECT_NE(manifest_error_message(unknown_key).find("frobnicate"),
            std::string::npos);

  const std::string bad_kind = "\n\ntransmogrify x\n";
  EXPECT_NE(manifest_error_message(bad_kind).find("line 3"),
            std::string::npos);

  const std::string bad_value = "denoise a size=purple";
  EXPECT_NE(manifest_error_message(bad_value).find("line 1"),
            std::string::npos);
}

TEST(Manifest, RejectsDuplicateMissionNamesNamingBothLines) {
  const std::string duplicate = R"(denoise job0 lanes=1
edge    job1 lanes=1
cascade job0 lanes=2
)";
  const std::string message = manifest_error_message(duplicate);
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("duplicate mission name 'job0'"), std::string::npos);
  EXPECT_NE(message.find("line 1"), std::string::npos);
}

}  // namespace
}  // namespace ehw::sched
