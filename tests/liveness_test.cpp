// Tests for the structural liveness analysis and its relation to the
// observed (behavioural) masking measured by the fault campaign.

#include <gtest/gtest.h>

#include "ehw/analysis/campaign.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/pe/liveness.hpp"
#include "test_util.hpp"

namespace ehw::pe {
namespace {

TEST(Liveness, IdentityRowCircuit) {
  const SystolicArray array = test::identity_genotype().to_array();
  const LivenessInfo live = analyze_liveness(array);
  // Output row 0, IdentityW chain: exactly row 0 is live; only the centre
  // tap (4) feeds it (IdentityW ignores N, so north taps are dead).
  EXPECT_EQ(live.live_cell_count, 4u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_TRUE(live.cell(0, c, 4));
    EXPECT_FALSE(live.cell(2, c, 4));
  }
  for (std::size_t t = 0; t < kWindowTaps; ++t) {
    EXPECT_EQ(live.live_taps[t], t == 4);
  }
}

TEST(Liveness, ConstantCellCutsUpstream) {
  evo::Genotype g = test::identity_genotype();
  // Make (0,2) constant: cells (0,0) and (0,1) become dead, the west tap
  // no longer matters; (0,3) still live.
  g.set_function_gene(2, static_cast<std::uint8_t>(PeOp::kConst255));
  const LivenessInfo live = analyze_liveness(g.to_array());
  EXPECT_TRUE(live.cell(0, 3, 4));
  EXPECT_TRUE(live.cell(0, 2, 4));
  EXPECT_FALSE(live.cell(0, 1, 4));
  EXPECT_FALSE(live.cell(0, 0, 4));
  for (std::size_t t = 0; t < kWindowTaps; ++t) {
    EXPECT_FALSE(live.live_taps[t]);
  }
}

TEST(Liveness, FullMeshWithTwoInputOps) {
  // All cells MAX, output row 3: every cell reaches the output.
  evo::Genotype g(fpga::ArrayShape{4, 4});
  for (std::size_t i = 0; i < g.cell_count(); ++i) {
    g.set_function_gene(i, static_cast<std::uint8_t>(PeOp::kMax));
  }
  g.set_output_row(3);
  const LivenessInfo live = analyze_liveness(g.to_array());
  EXPECT_EQ(live.live_cell_count, 16u);
}

TEST(Liveness, RowsBelowOutputAreDead) {
  Rng rng(8);
  for (int rep = 0; rep < 20; ++rep) {
    evo::Genotype g = evo::Genotype::random({4, 4}, rng);
    const SystolicArray array = g.to_array();
    const LivenessInfo live = analyze_liveness(array);
    for (std::size_t r = array.output_row() + 1u; r < 4; ++r) {
      for (std::size_t c = 0; c < 4; ++c) {
        EXPECT_FALSE(live.cell(r, c, 4));
      }
    }
  }
}

TEST(Liveness, StructurallyDeadImpliesBehaviourallyMasked) {
  // Soundness against the fault campaign: a structurally dead cell's
  // fault can never change the output. (The converse does not hold:
  // live cells may be logically masked.)
  platform::EvolvablePlatform plat(test::small_platform_config(1));
  Rng rng(9);
  const img::Image scene = img::make_scene(24, 24, 5);
  for (int rep = 0; rep < 5; ++rep) {
    const evo::Genotype g = evo::Genotype::random({4, 4}, rng);
    plat.configure_array(0, g, 0);
    const LivenessInfo live = analyze_liveness(g.to_array());
    const analysis::CampaignResult campaign =
        analysis::run_pe_fault_campaign(plat, 0, scene, scene, {});
    for (const auto& cell : campaign.cells) {
      if (!live.cell(cell.row, cell.col, 4)) {
        EXPECT_TRUE(cell.masked())
            << "dead cell (" << cell.row << "," << cell.col
            << ") changed the output";
      }
    }
  }
}

TEST(Schematic, MarksOpsOutputAndDeadCells) {
  const std::string s = render_schematic(test::identity_genotype().to_array());
  EXPECT_NE(s.find("==> out"), std::string::npos);
  EXPECT_NE(s.find("[W   ]"), std::string::npos);  // live identity cells
  EXPECT_NE(s.find("[..  ]"), std::string::npos);  // dead rows
  EXPECT_NE(s.find("live cells: 4/16"), std::string::npos);
  EXPECT_NE(s.find("live window taps: 4"), std::string::npos);
}

TEST(Schematic, MarksDefectiveCells) {
  SystolicArray array = test::identity_genotype().to_array();
  array.set_cell(0, 1, {PeOp::kIdentityW, true, 7});
  const std::string s = render_schematic(array);
  EXPECT_NE(s.find("XXXX"), std::string::npos);
}

}  // namespace
}  // namespace ehw::pe
