// TMR mission with autonomous self-healing (§V.B): three arrays run the
// same evolved filter in parallel behind a pixel voter; a permanent fault
// is injected mid-mission; the fitness voter localizes it, scrubbing rules
// out a transient, and evolution-by-imitation rebuilds the array online —
// all while the voted output stream stays valid.
//
//   $ ./tmr_selfhealing [--size=48] [--frames=8] [--generations=1500]

#include <cstdio>

#include "ehw/common/cli.hpp"
#include "ehw/common/log.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/noise.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/platform/evolution_driver.hpp"
#include "ehw/platform/self_healing.hpp"

using namespace ehw;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto size = static_cast<std::size_t>(cli.get_int("size", 48));
  const int frames = static_cast<int>(cli.get_int("frames", 8));
  const auto generations =
      static_cast<Generation>(cli.get_int("generations", 1500));
  set_log_level(LogLevel::kInfo);  // narrate the healing state machine

  ThreadPool pool;
  platform::PlatformConfig pc;
  pc.num_arrays = 3;
  pc.line_width = size;
  pc.pool = &pool;
  platform::EvolvablePlatform platform(pc);

  // Step a: initial evolution, then the same circuit into all 3 arrays.
  const img::Image clean = img::make_scene(size, size, 31);
  Rng rng(5);
  const img::Image noisy = img::add_salt_pepper(clean, 0.25, rng);
  evo::EsConfig es;
  es.generations = generations / 2;
  es.seed = 7;
  const platform::IntrinsicResult evolved =
      platform::evolve_on_platform(platform, {0, 1, 2}, noisy, clean, es);
  std::printf("initial evolution: fitness %llu after %llu generations\n\n",
              static_cast<unsigned long long>(evolved.es.best_fitness),
              static_cast<unsigned long long>(evolved.es.generations_run));

  platform::TmrSelfHealing::Config hcfg;
  hcfg.voter_threshold = 100;
  hcfg.recovery_es.generations = generations;
  hcfg.recovery_es.seed = 11;
  platform::TmrSelfHealing tmr(platform, {0, 1, 2}, hcfg);
  tmr.deploy(evolved.es.best);

  // Mission: stream frames; fault strikes at frame 3.
  Rng frame_rng(17);
  for (int f = 0; f < frames; ++f) {
    const img::Image frame_clean = img::make_scene(size, size, 100 + f);
    const img::Image frame_noisy =
        img::add_salt_pepper(frame_clean, 0.25, frame_rng);
    if (f == 3) {
      std::printf(">>> injecting permanent PE fault in array 2, cell (0,1)\n");
      platform.inject_pe_fault(2, 0, 1);
    }
    const auto r = tmr.process_frame(frame_noisy);
    std::printf(
        "frame %d: voter fitness = {%llu, %llu, %llu}%s | voted-output MAE "
        "vs clean = %llu\n",
        f, static_cast<unsigned long long>(r.fitness[0]),
        static_cast<unsigned long long>(r.fitness[1]),
        static_cast<unsigned long long>(r.fitness[2]),
        r.vote.faulty ? (" -> array " + std::to_string(*r.vote.faulty) +
                         " blamed, healing ran")
                            .c_str()
                      : "",
        static_cast<unsigned long long>(
            img::aggregated_mae(r.voted, frame_clean)));
  }

  std::printf("\nhealing log (%zu events):\n", tmr.events().size());
  for (const auto& e : tmr.events()) {
    std::printf("  t=%8.2f ms  array %zu  %-20s fitness=%llu %s\n",
                sim::to_milliseconds(e.time), e.array,
                std::string(platform::healing_event_name(e.kind)).c_str(),
                static_cast<unsigned long long>(e.fitness),
                e.detail.c_str());
  }
  return 0;
}
