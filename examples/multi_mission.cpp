// Multi-mission scheduling: four heterogeneous workloads — parallel
// denoise, edge detection, morphology and a collaborative cascade — share
// one 8-array pool instead of each owning a platform. The ArrayPool
// partitions arrays between concurrently running jobs, serves identical
// candidates from the shared compiled-array cache, and reports the
// cluster-level simulated schedule; every mission's result is
// bit-identical to running it alone (asserted here against the standalone
// driver path).
//
//   $ ./multi_mission [--arrays=8] [--generations=150] [--size=32]

#include <cstdio>

#include "ehw/common/cli.hpp"
#include "ehw/sched/array_pool.hpp"
#include "ehw/sched/missions.hpp"

using namespace ehw;

int main(int argc, char** argv) try {
  const Cli cli(argc, argv);
  const auto arrays = static_cast<std::size_t>(cli.get_int("arrays", 8));
  const auto generations =
      static_cast<Generation>(cli.get_int("generations", 150));
  const auto size = static_cast<std::size_t>(cli.get_int("size", 32));

  // Four missions wanting 8 lanes in total: with 8 arrays they all run
  // concurrently; with fewer the scheduler queues and backfills.
  std::vector<sched::MissionSpec> specs(4);
  specs[0].kind = sched::MissionKind::kDenoise;
  specs[0].name = "denoise";
  specs[0].lanes = 3;
  specs[0].noise = 0.3;
  specs[0].seed = 5;
  specs[1].kind = sched::MissionKind::kEdge;
  specs[1].name = "edges";
  specs[1].lanes = 2;
  specs[1].seed = 7;
  specs[2].kind = sched::MissionKind::kMorphology;
  specs[2].name = "dilate";
  specs[2].lanes = 1;
  specs[2].seed = 9;
  specs[3].kind = sched::MissionKind::kCascade;
  specs[3].name = "cascade";
  specs[3].lanes = 2;
  specs[3].noise = 0.2;
  specs[3].seed = 11;
  for (sched::MissionSpec& spec : specs) {
    spec.generations = generations;
    spec.size = size;
  }
  specs[3].generations = generations / 4;  // cascade budget is per stage

  ThreadPool host_pool;
  sched::PoolConfig pool_config;
  pool_config.num_arrays = arrays;
  pool_config.host_pool = &host_pool;
  sched::ArrayPool pool(pool_config);

  std::vector<std::shared_ptr<sched::MissionRunner>> runners;
  for (const sched::MissionSpec& spec : specs) {
    runners.push_back(pool.submit(sched::make_job_config(spec),
                                  sched::make_job_body(spec)));
  }
  pool.wait_all();
  const sched::ArrayPool::ScheduleReport schedule = pool.simulated_schedule();

  std::printf("%-8s %-10s %5s %12s %10s %14s %9s\n", "job", "kind", "lanes",
              "fitness", "sim s", "pool window s", "cache hit");
  bool all_identical = true;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const sched::JobOutcome& outcome = runners[i]->result();
    const bool cascade = specs[i].kind == sched::MissionKind::kCascade;
    const Fitness fitness = cascade ? outcome.cascade.chain_fitness
                                    : outcome.intrinsic.es.best_fitness;
    std::printf("%-8s %-10s %5zu %12llu %10.3f %6.3f-%6.3f %8.1f%%\n",
                specs[i].name.c_str(), sched::kind_name(specs[i].kind),
                specs[i].lanes, static_cast<unsigned long long>(fitness),
                sim::to_seconds(outcome.stats.mission_time),
                sim::to_seconds(schedule.jobs[i].start),
                sim::to_seconds(schedule.jobs[i].end),
                100.0 * outcome.stats.cache_hit_rate());

    // The scheduler's contract: multiplexing never changes results.
    const sched::JobOutcome alone =
        sched::run_spec_standalone(specs[i], &host_pool);
    const bool identical =
        cascade ? alone.cascade.chain_fitness == outcome.cascade.chain_fitness
                : alone.intrinsic.es.best == outcome.intrinsic.es.best &&
                      alone.intrinsic.duration == outcome.intrinsic.duration;
    all_identical = all_identical && identical;
  }

  const sched::CacheStats cache = pool.cache_stats();
  std::printf(
      "\npool of %zu arrays: simulated makespan %.3f s vs %.3f s serialized "
      "(%.2fx, %.2f missions/sim-s)\n"
      "compiled-array cache: %llu hits / %llu misses (%.1f%%)\n"
      "multiplexed results bit-identical to standalone runs: %s\n",
      pool.num_arrays(), sim::to_seconds(schedule.makespan),
      sim::to_seconds(schedule.serialized), schedule.speedup(),
      schedule.missions_per_sim_second(),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses), 100.0 * cache.hit_rate(),
      all_identical ? "yes" : "NO");
  return all_identical ? 0 : 1;
} catch (const std::exception& e) {
  // e.g. --arrays smaller than the widest mission's lane demand.
  std::fprintf(stderr, "multi_mission: %s\n", e.what());
  return 1;
}
