// Quickstart: evolve a salt & pepper denoiser on a 3-array platform.
//
//   $ ./quickstart [--size=64] [--noise=0.3] [--generations=800]
//
// Walks the paper's §III loop end to end: build the SoPC model, load a
// training/reference image pair, run (1+9) parallel intrinsic evolution,
// read the result back over the register bus, and deploy the winner.

#include <cstdio>

#include "ehw/common/cli.hpp"
#include "ehw/common/rng.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/noise.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/platform/evolution_driver.hpp"

using namespace ehw;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto size = static_cast<std::size_t>(cli.get_int("size", 64));
  const double noise = cli.get_double("noise", 0.3);
  const auto generations =
      static_cast<Generation>(cli.get_int("generations", 800));

  // Training pair: a procedural scene and its noisy version. Feeding the
  // pair the other way round would evolve a noise *generator* — the
  // platform learns whatever mapping the images describe (§III.A).
  const img::Image clean = img::make_scene(size, size, /*seed=*/7);
  Rng noise_rng(1234);
  const img::Image noisy = img::add_salt_pepper(clean, noise, noise_rng);

  // The SoPC: three 4x4 evolvable arrays stacked behind one
  // reconfiguration engine, 100 MHz, ACB register file.
  ThreadPool pool;
  platform::PlatformConfig pc;
  pc.num_arrays = 3;
  pc.line_width = size;
  pc.pool = &pool;
  platform::EvolvablePlatform platform(pc);

  // Parallel intrinsic evolution: 9 offspring per generation distributed
  // over the three arrays, two-level mutation (the paper's fast EA).
  evo::EsConfig es;
  es.lambda = 9;
  es.mutation_rate = 3;
  es.two_level = true;
  es.generations = generations;
  es.seed = 42;
  const platform::IntrinsicResult result = platform::evolve_on_platform(
      platform, {0, 1, 2}, noisy, clean, es);

  std::printf("evolved %llu generations in %.2f s of simulated platform time"
              " (%llu DPR writes)\n",
              static_cast<unsigned long long>(result.es.generations_run),
              sim::to_seconds(result.duration),
              static_cast<unsigned long long>(result.pe_writes));
  std::printf("fitness (aggregated MAE): noisy=%llu -> evolved=%llu\n",
              static_cast<unsigned long long>(
                  img::aggregated_mae(noisy, clean)),
              static_cast<unsigned long long>(result.es.best_fitness));
  std::printf("best circuit: %s\n", result.es.best.to_string().c_str());

  // Deploy and check generalization on an unseen frame.
  platform.configure_array(0, result.es.best, platform.now());
  const img::Image fresh_clean = img::make_scene(size, size, /*seed=*/8);
  Rng fresh_rng(77);
  const img::Image fresh_noisy =
      img::add_salt_pepper(fresh_clean, noise, fresh_rng);
  const img::Image filtered = platform.process_independent(0, fresh_noisy);
  std::printf("unseen frame:  noisy MAE=%llu -> filtered MAE=%llu\n",
              static_cast<unsigned long long>(
                  img::aggregated_mae(fresh_noisy, fresh_clean)),
              static_cast<unsigned long long>(
                  img::aggregated_mae(filtered, fresh_clean)));

  // The register bus view the MicroBlaze software would use.
  std::printf("register bus:  NUM_ACBS=%u, array0 fitness register=%llu\n",
              platform.reg_read(platform::kRegNumAcbs),
              static_cast<unsigned long long>(
                  platform.acb(0).read_fitness_registers()));
  return 0;
}
