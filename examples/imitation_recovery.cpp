// Reference-free recovery (§V.A + Fig. 7): the training/reference images
// are gone (flash worn out, memory hit by radiation) when a permanent
// fault strikes a cascade stage. The damaged array is bypassed — the
// stream keeps flowing — and LEARNS ITS OWN JOB BACK from the neighbouring
// stage by evolution by imitation.
//
//   $ ./imitation_recovery [--size=48] [--generations=2500]

#include <cstdio>

#include "ehw/common/cli.hpp"
#include "ehw/common/log.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/noise.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/platform/evolution_driver.hpp"
#include "ehw/platform/self_healing.hpp"

using namespace ehw;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto size = static_cast<std::size_t>(cli.get_int("size", 48));
  const auto generations =
      static_cast<Generation>(cli.get_int("generations", 2500));
  set_log_level(LogLevel::kInfo);

  ThreadPool pool;
  platform::PlatformConfig pc;
  pc.num_arrays = 3;
  pc.line_width = size;
  pc.pool = &pool;
  platform::EvolvablePlatform platform(pc);

  // Mission setup: all three arrays evolved to the same denoising duty
  // (parallel redundant configuration of §IV.A).
  const img::Image clean = img::make_scene(size, size, 71);
  Rng rng(3);
  const img::Image noisy = img::add_salt_pepper(clean, 0.25, rng);
  evo::EsConfig es;
  es.generations = generations / 2;
  es.seed = 13;
  const platform::IntrinsicResult evolved =
      platform::evolve_on_platform(platform, {0, 1, 2}, noisy, clean, es);
  sim::SimTime barrier = platform.now();
  for (std::size_t a = 0; a < 3; ++a) {
    barrier = platform.configure_array(a, evolved.es.best, barrier).end;
  }
  std::printf("deployed circuit with fitness %llu on all arrays\n",
              static_cast<unsigned long long>(evolved.es.best_fitness));

  // The calibration-driven §V.A healing loop, with the reference marked
  // UNAVAILABLE: recovery can only imitate.
  platform::CascadeSelfHealing::Config hcfg;
  hcfg.calibration_input = noisy;
  hcfg.calibration_reference = platform.filter_array(0, noisy);
  hcfg.tolerance = 0;
  hcfg.recovery_es.generations = generations;
  hcfg.recovery_es.seed = 17;
  hcfg.reference_available = false;  // training images lost!
  platform::CascadeSelfHealing healer(platform, {0, 1, 2}, hcfg);
  healer.record_baseline();
  std::printf("baselines recorded: {%llu, %llu, %llu}\n",
              static_cast<unsigned long long>(healer.baseline(0)),
              static_cast<unsigned long long>(healer.baseline(1)),
              static_cast<unsigned long long>(healer.baseline(2)));

  std::printf("\ncalibration check #1 (healthy)...\n");
  healer.run_calibration_check();

  std::printf("\n>>> permanent fault in array 1, cell (0,2); reference "
              "images are NOT available\n");
  platform.inject_pe_fault(1, 0, 2);
  std::printf("calibration check #2 (detect -> scrub -> classify -> bypass "
              "-> imitate)...\n");
  healer.run_calibration_check();

  std::printf("\ncalibration check #3 (recovered baseline)...\n");
  const bool healthy = healer.run_calibration_check();
  std::printf("\nfinal state: %s\n",
              healthy ? "all arrays healthy against refreshed baselines"
                      : "platform still degraded");

  std::printf("\nevent log:\n");
  for (const auto& e : healer.events()) {
    std::printf("  t=%8.2f ms  array %zu  %-20s fitness=%llu %s\n",
                sim::to_milliseconds(e.time), e.array,
                std::string(platform::healing_event_name(e.kind)).c_str(),
                static_cast<unsigned long long>(e.fitness),
                e.detail.c_str());
  }
  return 0;
}
