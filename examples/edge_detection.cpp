// Retargeting by swapping reference images (§III.A): "if the training
// image is the noise-free one, and the reference is set to the edge
// detected image, the circuit will converge to an edge-detection filter."
// The same platform, binaries and EA produce a completely different
// function purely from data.
//
//   $ ./edge_detection [--size=64] [--generations=1500]

#include <cstdio>

#include "ehw/common/cli.hpp"
#include "ehw/img/filters.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/pgm_io.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/platform/evolution_driver.hpp"

using namespace ehw;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto size = static_cast<std::size_t>(cli.get_int("size", 64));
  const auto generations =
      static_cast<Generation>(cli.get_int("generations", 1500));

  // Training image: clean scene. Reference: its Sobel edge map.
  const img::Image scene = img::make_scene(size, size, 55);
  const img::Image edges = img::sobel_magnitude(scene);

  ThreadPool pool;
  platform::PlatformConfig pc;
  pc.num_arrays = 3;
  pc.line_width = size;
  pc.pool = &pool;
  platform::EvolvablePlatform platform(pc);

  evo::EsConfig es;
  es.generations = generations;
  es.mutation_rate = 3;
  es.two_level = true;
  es.seed = 2718;
  const platform::IntrinsicResult result =
      platform::evolve_on_platform(platform, {0, 1, 2}, scene, edges, es);

  // Baseline: how far is "no filter at all" / a smoothing filter?
  const Fitness null_fit = img::aggregated_mae(scene, edges);
  const Fitness smooth_fit =
      img::aggregated_mae(img::gaussian3x3(scene), edges);
  std::printf("target: Sobel edge map of a %zux%zu scene\n", size, size);
  std::printf("identity baseline MAE: %llu\n",
              static_cast<unsigned long long>(null_fit));
  std::printf("gaussian baseline MAE: %llu\n",
              static_cast<unsigned long long>(smooth_fit));
  std::printf("evolved detector MAE:  %llu (%llu generations, %.2f s "
              "simulated)\n",
              static_cast<unsigned long long>(result.es.best_fitness),
              static_cast<unsigned long long>(result.es.generations_run),
              sim::to_seconds(result.duration));
  std::printf("evolved circuit: %s\n", result.es.best.to_string().c_str());

  platform.configure_array(0, result.es.best, platform.now());
  const img::Image detected = platform.process_independent(0, scene);
  img::write_pgm(scene, "edges_input.pgm");
  img::write_pgm(edges, "edges_reference.pgm");
  img::write_pgm(detected, "edges_evolved.pgm");
  std::printf("wrote edges_{input,reference,evolved}.pgm\n");
  return 0;
}
