// Collaborative cascaded denoising (§IV.A / Fig. 18 workload): three
// stages evolved in sequence, each specializing on the residual noise of
// the previous one, against heavy (40%) salt & pepper noise.
//
//   $ ./cascade_denoise [--size=64] [--noise=0.4] [--generations=1200]
//
// Writes cascade_{clean,noisy,out1,out2,out3}.pgm for visual inspection.

#include <cstdio>

#include "ehw/common/cli.hpp"
#include "ehw/img/filters.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/noise.hpp"
#include "ehw/img/pgm_io.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/platform/cascade_evolution.hpp"

using namespace ehw;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto size = static_cast<std::size_t>(cli.get_int("size", 64));
  const double noise = cli.get_double("noise", 0.4);
  const auto generations =
      static_cast<Generation>(cli.get_int("generations", 1200));

  const img::Image clean = img::make_scene(size, size, 21);
  Rng rng(4321);
  const img::Image noisy = img::add_salt_pepper(clean, noise, rng);

  ThreadPool pool;
  platform::PlatformConfig pc;
  pc.num_arrays = 3;
  pc.line_width = size;
  pc.pool = &pool;
  platform::EvolvablePlatform platform(pc);

  platform::CascadeConfig cfg;
  cfg.es.generations = generations;
  cfg.es.seed = 99;
  cfg.fitness = platform::CascadeFitness::kSeparate;
  cfg.schedule = platform::CascadeSchedule::kSequential;
  const platform::CascadeResult result =
      platform::evolve_cascade(platform, {0, 1, 2}, noisy, clean, cfg);

  std::printf("noisy input MAE: %llu\n",
              static_cast<unsigned long long>(
                  img::aggregated_mae(noisy, clean)));
  std::vector<img::Image> stages;
  platform.process_cascade_into(noisy, stages);
  for (std::size_t s = 0; s < stages.size(); ++s) {
    std::printf("after stage %zu:  MAE=%llu\n", s + 1,
                static_cast<unsigned long long>(
                    img::aggregated_mae(stages[s], clean)));
  }
  const img::Image median = img::median3x3(noisy);
  std::printf("golden median:   MAE=%llu (the paper's conventional "
              "baseline; not cascadable)\n",
              static_cast<unsigned long long>(
                  img::aggregated_mae(median, clean)));
  std::printf("cascade latency: %llu cycles (FIFO fills + pipelines)\n",
              static_cast<unsigned long long>(
                  platform.cascade_latency_cycles()));

  img::write_pgm(clean, "cascade_clean.pgm");
  img::write_pgm(noisy, "cascade_noisy.pgm");
  for (std::size_t s = 0; s < stages.size(); ++s) {
    img::write_pgm(stages[s],
                   "cascade_out" + std::to_string(s + 1) + ".pgm");
  }
  std::printf("wrote cascade_{clean,noisy,out1,out2,out3}.pgm\n");
  return 0;
}
