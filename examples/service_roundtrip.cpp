// Mission service round trip, all in one process: start an svc::Server
// on an ephemeral loopback port, drive it with concurrent svc::Clients
// submitting heterogeneous missions, stream progress events, and verify
// the determinism contract across the wire — every result (best fitness
// + genotype hash) must be bit-identical to running the same spec
// standalone, because the daemon is just a network front-end over the
// same ArrayPool job path.
//
//   $ ./service_roundtrip [--arrays=8] [--generations=150] [--size=32]

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "ehw/common/cli.hpp"
#include "ehw/sched/missions.hpp"
#include "ehw/svc/client.hpp"
#include "ehw/svc/server.hpp"

using namespace ehw;

namespace {

/// What the standalone run would answer over the wire (fitness + hash),
/// for comparison against the service's result payload.
void standalone_reference(const sched::MissionSpec& spec,
                          ThreadPool* host_pool, Fitness& fitness,
                          std::string& genotype_hash) {
  const sched::JobOutcome alone =
      sched::run_spec_standalone(spec, host_pool);
  if (spec.kind == sched::MissionKind::kCascade) {
    fitness = alone.cascade.chain_fitness;
    std::uint64_t chain_hash = 0;
    for (const platform::CascadeStageOutcome& stage : alone.cascade.stages) {
      chain_hash = hash_mix(chain_hash, stage.best.hash());
    }
    genotype_hash = svc::hash_hex(chain_hash);
  } else {
    fitness = alone.intrinsic.es.best_fitness;
    genotype_hash = svc::hash_hex(alone.intrinsic.es.best.hash());
  }
}

}  // namespace

int main(int argc, char** argv) try {
  const Cli cli(argc, argv);
  const auto arrays = static_cast<std::size_t>(cli.get_int("arrays", 8));
  const auto generations =
      static_cast<Generation>(cli.get_int("generations", 150));
  const auto size = static_cast<std::size_t>(cli.get_int("size", 32));

  std::vector<sched::MissionSpec> specs(4);
  specs[0].kind = sched::MissionKind::kDenoise;
  specs[0].name = "denoise";
  specs[0].lanes = 3;
  specs[0].seed = 5;
  specs[1].kind = sched::MissionKind::kEdge;
  specs[1].name = "edges";
  specs[1].lanes = 2;
  specs[1].seed = 7;
  specs[2].kind = sched::MissionKind::kMorphology;
  specs[2].name = "dilate";
  specs[2].lanes = 1;
  specs[2].seed = 9;
  specs[3].kind = sched::MissionKind::kCascade;
  specs[3].name = "cascade";
  specs[3].lanes = 2;
  specs[3].noise = 0.2;
  specs[3].seed = 11;
  for (sched::MissionSpec& spec : specs) {
    spec.generations = generations;
    spec.size = size;
  }
  specs[3].generations = generations / 4;  // cascade budget is per stage

  ThreadPool host_pool;
  svc::ServerConfig config;
  config.pool.num_arrays = arrays;
  config.pool.host_pool = &host_pool;
  svc::Server server(config);
  std::printf("service on 127.0.0.1:%u (%zu arrays)\n",
              static_cast<unsigned>(server.port()), arrays);

  // One client thread per mission, like separate operator terminals.
  std::vector<Fitness> fitness(specs.size(), 0);
  std::vector<std::string> hashes(specs.size());
  std::vector<std::string> statuses(specs.size());
  std::vector<std::uint64_t> progress_events(specs.size(), 0);
  std::atomic<bool> client_failed{false};
  std::vector<std::thread> clients;
  clients.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    clients.emplace_back([&, i] {
      try {
        svc::Client client(server.port());
        const svc::Client::Submitted submitted = client.submit(specs[i]);
        if (!submitted.ok) throw std::runtime_error(submitted.error);
        std::uint64_t events = 0;
        statuses[i] = client.watch(submitted.job,
                                   [&events](std::uint64_t) { ++events; });
        progress_events[i] = events;
        const Json result = client.result(submitted.job);
        fitness[i] =
            static_cast<Fitness>(result.get_number("best_fitness", 0));
        hashes[i] = result.get_string("genotype_hash", "?");
      } catch (const std::exception& e) {
        std::fprintf(stderr, "client %zu: %s\n", i, e.what());
        client_failed.store(true);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  if (client_failed.load()) return 1;

  std::printf("%-8s %-10s %5s %12s %18s %9s %s\n", "job", "kind", "lanes",
              "fitness", "genotype", "events", "= standalone?");
  bool all_identical = true;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Fitness alone_fitness = 0;
    std::string alone_hash;
    standalone_reference(specs[i], &host_pool, alone_fitness, alone_hash);
    const bool identical = statuses[i] == "done" &&
                           fitness[i] == alone_fitness &&
                           hashes[i] == alone_hash;
    all_identical = all_identical && identical;
    std::printf("%-8s %-10s %5zu %12llu %18s %9llu %s\n",
                specs[i].name.c_str(), sched::kind_name(specs[i].kind),
                specs[i].lanes, static_cast<unsigned long long>(fitness[i]),
                hashes[i].c_str(),
                static_cast<unsigned long long>(progress_events[i]),
                identical ? "yes" : "NO");
  }

  server.drain();
  server.wait_drained();
  server.stop();
  std::printf("\nservice results bit-identical to standalone runs: %s\n",
              all_identical ? "yes" : "NO");
  return all_identical ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "service_roundtrip: %s\n", e.what());
  return 1;
}
