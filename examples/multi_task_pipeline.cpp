// Independent Cascaded mode (§IV.A): one platform, three different tasks —
// "noise removal, followed by a smoothing filter, and then edge detection.
// ... each stage is specialized in a different task, and it will be
// obtained by evolving against different reference images."
//
//   $ ./multi_task_pipeline [--size=64] [--generations=800]
//
// Writes pipeline_{noisy,stage1,stage2,stage3,target}.pgm.

#include <cstdio>

#include "ehw/common/cli.hpp"
#include "ehw/img/filters.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/img/noise.hpp"
#include "ehw/img/pgm_io.hpp"
#include "ehw/img/synthetic.hpp"
#include "ehw/platform/independent_cascade.hpp"

using namespace ehw;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto size = static_cast<std::size_t>(cli.get_int("size", 64));
  const auto generations =
      static_cast<Generation>(cli.get_int("generations", 800));

  // The mission input: a noisy camera frame.
  const img::Image clean = img::make_scene(size, size, 88);
  Rng rng(6);
  const img::Image noisy = img::add_salt_pepper(clean, 0.2, rng);

  // Per-stage targets built from golden filters:
  //   stage 1 denoises (target: clean scene),
  //   stage 2 smooths (target: Gaussian of the clean scene),
  //   stage 3 extracts edges (target: Sobel of the smoothed scene).
  const img::Image smooth_target = img::gaussian3x3(clean);
  const img::Image edge_target = img::sobel_magnitude(smooth_target);

  ThreadPool pool;
  platform::PlatformConfig pc;
  pc.num_arrays = 3;
  pc.line_width = size;
  pc.pool = &pool;
  platform::EvolvablePlatform platform(pc);

  platform::IndependentCascadeConfig cfg;
  cfg.es.generations = generations;
  cfg.es.mutation_rate = 3;
  cfg.es.seed = 1003;
  const platform::IndependentCascadeResult result =
      evolve_independent_cascade(platform, {0, 1, 2}, noisy,
                                 {clean, smooth_target, edge_target}, cfg);

  static const char* kTask[] = {"denoise", "smooth", "edge-detect"};
  for (std::size_t s = 0; s < result.stages.size(); ++s) {
    std::printf("stage %zu (%s): fitness %llu against its own reference\n",
                s + 1, kTask[s],
                static_cast<unsigned long long>(result.stages[s].fitness));
  }

  // Mission pass: the whole pipeline in one streaming run.
  std::vector<img::Image> stages;
  platform.process_cascade_into(noisy, stages);
  std::printf("\npipeline output vs edge target: MAE=%llu (identity "
              "baseline %llu)\n",
              static_cast<unsigned long long>(
                  img::aggregated_mae(stages[2], edge_target)),
              static_cast<unsigned long long>(
                  img::aggregated_mae(noisy, edge_target)));

  img::write_pgm(noisy, "pipeline_noisy.pgm");
  img::write_pgm(stages[0], "pipeline_stage1.pgm");
  img::write_pgm(stages[1], "pipeline_stage2.pgm");
  img::write_pgm(stages[2], "pipeline_stage3.pgm");
  img::write_pgm(edge_target, "pipeline_target.pgm");
  std::printf("wrote pipeline_{noisy,stage1,stage2,stage3,target}.pgm\n");
  return 0;
}
