#pragma once
// Event trace + ASCII Gantt renderer. Used by the Fig. 12 bench with
// --trace to reproduce the Figure 11 pipeline diagram (M/R/F boxes for one
// vs three arrays) from the actually scheduled intervals.

#include <iosfwd>
#include <string>
#include <vector>

#include "ehw/sim/time.hpp"
#include "ehw/sim/timeline.hpp"

namespace ehw::sim {

struct TraceEvent {
  ResourceId resource = 0;
  std::string label;   // e.g. "R3" (reconfigure candidate 3), "F3" (evaluate)
  Interval span;
};

class Trace {
 public:
  /// Recording is off by default; benches switch it on for small runs only.
  void enable(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void record(ResourceId resource, std::string label, Interval span);
  void clear() noexcept { events_.clear(); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }

  /// Renders one text lane per resource, proportional to simulated time.
  /// `columns` is the total character budget for the time axis.
  void render_gantt(std::ostream& os, const Timeline& timeline,
                    int columns = 100) const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace ehw::sim
