#pragma once
// Busy-time bookkeeping for exclusive hardware resources.
//
// The paper's Figure 11 schedule has exactly two resource classes:
//   * ONE reconfiguration engine shared by every array (DPR serializes), and
//   * one evaluation datapath per array (evaluations overlap each other and
//     overlap DPR targeting *other* arrays, but an array cannot be
//     reconfigured while it is evaluating, nor evaluate while being
//     reconfigured).
// Timeline models this with a "free-at" horizon per resource: an operation
// asks for a start no earlier than `earliest` and no earlier than the
// resource's horizon, then occupies it for `duration`.

#include <cstddef>
#include <string>
#include <vector>

#include "ehw/sim/time.hpp"

namespace ehw::sim {

/// Identifies a resource registered with the Timeline.
using ResourceId = std::size_t;

struct Interval {
  SimTime start = 0;
  SimTime end = 0;
  [[nodiscard]] SimTime duration() const noexcept { return end - start; }
};

class Timeline {
 public:
  /// Registers a named exclusive resource starting free at t=0.
  ResourceId add_resource(std::string name);

  [[nodiscard]] std::size_t resource_count() const noexcept {
    return free_at_.size();
  }
  [[nodiscard]] const std::string& resource_name(ResourceId id) const;

  /// First instant at or after `earliest` when the resource is free.
  [[nodiscard]] SimTime free_at(ResourceId id) const;

  /// Occupies `id` for `duration`, starting at max(earliest, free_at(id)).
  Interval reserve(ResourceId id, SimTime earliest, SimTime duration);

  /// Occupies *two* resources simultaneously (e.g. the engine and the array
  /// being rewritten): the start honours both horizons.
  Interval reserve_pair(ResourceId a, ResourceId b, SimTime earliest,
                        SimTime duration);

  /// Latest horizon over all resources — the makespan so far.
  [[nodiscard]] SimTime makespan() const noexcept;

  /// Clears occupancy but keeps the registered resources.
  void reset() noexcept;

 private:
  std::vector<std::string> names_;
  std::vector<SimTime> free_at_;
};

}  // namespace ehw::sim
