#pragma once
// Simulated time. All FPGA-side costs (DPR, pixel streaming, FIFO fill,
// register access) are expressed in SimTime, fully decoupled from host
// wall-clock. Unit: nanoseconds, signed 64-bit (≈292 years of headroom).

#include <cstdint>

namespace ehw::sim {

/// Nanoseconds of simulated time.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

[[nodiscard]] constexpr SimTime nanoseconds(std::int64_t n) noexcept {
  return n * kNanosecond;
}
[[nodiscard]] constexpr SimTime microseconds(double us) noexcept {
  return static_cast<SimTime>(us * static_cast<double>(kMicrosecond));
}
[[nodiscard]] constexpr SimTime milliseconds(double ms) noexcept {
  return static_cast<SimTime>(ms * static_cast<double>(kMillisecond));
}
[[nodiscard]] constexpr SimTime seconds(double s) noexcept {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

[[nodiscard]] constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
[[nodiscard]] constexpr double to_milliseconds(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}
[[nodiscard]] constexpr double to_microseconds(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/// Duration of `cycles` clock cycles at `mhz` megahertz.
[[nodiscard]] constexpr SimTime cycles_at_mhz(std::uint64_t cycles,
                                              double mhz) noexcept {
  return static_cast<SimTime>(static_cast<double>(cycles) * 1000.0 / mhz);
}

}  // namespace ehw::sim
