#include "ehw/sim/clock.hpp"

#include "ehw/common/assert.hpp"

namespace ehw::sim {

SimTime SimClock::advance(SimTime by) {
  EHW_REQUIRE(by >= 0, "cannot advance the simulated clock backwards");
  now_ += by;
  return now_;
}

SimTime SimClock::advance_to(SimTime t) noexcept {
  if (t > now_) now_ = t;
  return now_;
}

}  // namespace ehw::sim
