#include "ehw/sim/trace.hpp"

#include <algorithm>
#include <ostream>

namespace ehw::sim {

void Trace::record(ResourceId resource, std::string label, Interval span) {
  if (!enabled_) return;
  events_.push_back(TraceEvent{resource, std::move(label), span});
}

void Trace::render_gantt(std::ostream& os, const Timeline& timeline,
                         int columns) const {
  if (events_.empty()) {
    os << "(trace empty)\n";
    return;
  }
  SimTime t0 = events_.front().span.start;
  SimTime t1 = events_.front().span.end;
  for (const auto& e : events_) {
    t0 = std::min(t0, e.span.start);
    t1 = std::max(t1, e.span.end);
  }
  const double span = std::max<double>(1.0, static_cast<double>(t1 - t0));
  const auto col = [&](SimTime t) {
    return static_cast<int>(static_cast<double>(t - t0) / span *
                            (columns - 1));
  };

  for (ResourceId r = 0; r < timeline.resource_count(); ++r) {
    std::string lane(static_cast<std::size_t>(columns), '.');
    for (const auto& e : events_) {
      if (e.resource != r) continue;
      const int a = col(e.span.start);
      const int b = std::max(a, col(e.span.end) - 1);
      for (int c = a; c <= b && c < columns; ++c) {
        lane[static_cast<std::size_t>(c)] = '#';
      }
      // Overlay as much of the label as fits.
      for (std::size_t i = 0; i < e.label.size(); ++i) {
        const auto c = static_cast<std::size_t>(a) + i;
        if (c < lane.size() && static_cast<int>(c) <= b) lane[c] = e.label[i];
      }
    }
    os << std::string(14 - std::min<std::size_t>(14, timeline.resource_name(r).size()), ' ')
       << timeline.resource_name(r).substr(0, 14) << " |" << lane << "|\n";
  }
  os << "  (time axis: " << to_microseconds(t1 - t0) << " us total)\n";
}

}  // namespace ehw::sim
