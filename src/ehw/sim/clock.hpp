#pragma once
// The platform-wide simulated clock. Components charge their latencies by
// advancing it; experiment harnesses read it to report "evolution time" the
// way the paper's Figures 12-14 do.

#include "ehw/sim/time.hpp"

namespace ehw::sim {

class SimClock {
 public:
  SimClock() = default;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Advances by a non-negative duration and returns the new time.
  SimTime advance(SimTime by);

  /// Moves the clock forward to `t` if `t` is later; never goes backwards.
  SimTime advance_to(SimTime t) noexcept;

  /// Resets to t=0 (used between experiment repetitions).
  void reset() noexcept { now_ = 0; }

 private:
  SimTime now_ = 0;
};

}  // namespace ehw::sim
