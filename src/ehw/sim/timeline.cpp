#include "ehw/sim/timeline.hpp"

#include <algorithm>

#include "ehw/common/assert.hpp"

namespace ehw::sim {

ResourceId Timeline::add_resource(std::string name) {
  names_.push_back(std::move(name));
  free_at_.push_back(0);
  return free_at_.size() - 1;
}

const std::string& Timeline::resource_name(ResourceId id) const {
  EHW_REQUIRE(id < names_.size(), "unknown timeline resource");
  return names_[id];
}

SimTime Timeline::free_at(ResourceId id) const {
  EHW_REQUIRE(id < free_at_.size(), "unknown timeline resource");
  return free_at_[id];
}

Interval Timeline::reserve(ResourceId id, SimTime earliest, SimTime duration) {
  EHW_REQUIRE(id < free_at_.size(), "unknown timeline resource");
  EHW_REQUIRE(duration >= 0, "negative duration");
  const SimTime start = std::max(earliest, free_at_[id]);
  const SimTime end = start + duration;
  free_at_[id] = end;
  return {start, end};
}

Interval Timeline::reserve_pair(ResourceId a, ResourceId b, SimTime earliest,
                                SimTime duration) {
  EHW_REQUIRE(a < free_at_.size() && b < free_at_.size(),
              "unknown timeline resource");
  EHW_REQUIRE(duration >= 0, "negative duration");
  const SimTime start =
      std::max(earliest, std::max(free_at_[a], free_at_[b]));
  const SimTime end = start + duration;
  free_at_[a] = end;
  free_at_[b] = end;
  return {start, end};
}

SimTime Timeline::makespan() const noexcept {
  SimTime m = 0;
  for (SimTime t : free_at_) m = std::max(m, t);
  return m;
}

void Timeline::reset() noexcept {
  std::fill(free_at_.begin(), free_at_.end(), SimTime{0});
}

}  // namespace ehw::sim
