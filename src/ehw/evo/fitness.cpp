#include "ehw/evo/fitness.hpp"

namespace ehw::evo {

Fitness evaluate_extrinsic(const Genotype& genotype, const img::Image& train,
                           const img::Image& reference, ThreadPool* pool) {
  const pe::CompiledArray compiled(genotype.to_array());
  return compiled.fitness_against(train, reference, pool);
}

img::Image apply_genotype(const Genotype& genotype, const img::Image& src,
                          ThreadPool* pool) {
  const pe::CompiledArray compiled(genotype.to_array());
  img::Image out(src.width(), src.height());
  compiled.filter_into(src, out, pool);
  return out;
}

}  // namespace ehw::evo
