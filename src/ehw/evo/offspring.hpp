#pragma once
// Offspring generation for one (1 + lambda) generation, in the two shapes
// compared by §VI.B:
//
//   CLASSIC: every one of the lambda offspring mutates the parent at the
//   nominal rate k. Configured back-to-back on an array, consecutive
//   circuits can differ in up to ~2k function genes (sibling-to-sibling),
//   so the DPR bill grows with k.
//
//   TWO-LEVEL (the paper's new EA): offspring are organized in batches of
//   `batch_size` (= number of arrays; candidates of one batch run
//   simultaneously). The FIRST batch mutates the parent at rate k; each
//   later batch mutates, per array lane, the chromosome the SAME lane
//   evaluated in the previous batch — always at rate 1. Circuits
//   configured consecutively on a lane thus differ in at most one gene,
//   which slashes reconfiguration count per generation.

#include <cstddef>
#include <vector>

#include "ehw/common/rng.hpp"
#include "ehw/evo/genotype.hpp"

namespace ehw::evo {

struct Candidate {
  Genotype genotype;
  std::size_t batch = 0;  // evaluation wave
  std::size_t lane = 0;   // which array evaluates it
};

/// Classic (1+lambda) offspring: lane = index % lanes, batch = index / lanes.
[[nodiscard]] std::vector<Candidate> classic_offspring(const Genotype& parent,
                                                       std::size_t lambda,
                                                       std::size_t lanes,
                                                       std::size_t k, Rng& rng);

/// Two-level offspring per §VI.B. `lanes` candidates per batch; lambda
/// need not be a multiple of lanes (the final batch is short).
[[nodiscard]] std::vector<Candidate> two_level_offspring(
    const Genotype& parent, std::size_t lambda, std::size_t lanes,
    std::size_t k, Rng& rng);

}  // namespace ehw::evo
