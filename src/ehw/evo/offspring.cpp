#include "ehw/evo/offspring.hpp"

#include "ehw/common/assert.hpp"
#include "ehw/evo/mutation.hpp"

namespace ehw::evo {

std::vector<Candidate> classic_offspring(const Genotype& parent,
                                         std::size_t lambda,
                                         std::size_t lanes, std::size_t k,
                                         Rng& rng) {
  EHW_REQUIRE(lambda > 0 && lanes > 0, "lambda and lanes must be positive");
  std::vector<Candidate> out;
  out.reserve(lambda);
  for (std::size_t i = 0; i < lambda; ++i) {
    Candidate c;
    c.genotype = mutated_copy(parent, k, rng);
    c.lane = i % lanes;
    c.batch = i / lanes;
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<Candidate> two_level_offspring(const Genotype& parent,
                                           std::size_t lambda,
                                           std::size_t lanes, std::size_t k,
                                           Rng& rng) {
  EHW_REQUIRE(lambda > 0 && lanes > 0, "lambda and lanes must be positive");
  std::vector<Candidate> out;
  out.reserve(lambda);
  // prev[lane] = chromosome that lane evaluated in the previous batch.
  std::vector<const Genotype*> prev(lanes, &parent);
  for (std::size_t i = 0; i < lambda; ++i) {
    const std::size_t batch = i / lanes;
    const std::size_t lane = i % lanes;
    Candidate c;
    if (batch == 0) {
      c.genotype = mutated_copy(parent, k, rng);  // nominal rate
    } else {
      c.genotype = mutated_copy(*prev[lane], 1, rng);  // low rate chain
    }
    c.lane = lane;
    c.batch = batch;
    out.push_back(std::move(c));
    prev[lane] = &out.back().genotype;  // stable: vector was reserved
  }
  return out;
}

}  // namespace ehw::evo
