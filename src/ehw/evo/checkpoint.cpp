#include "ehw/evo/checkpoint.hpp"

#include <cstdio>

#include "ehw/evo/serialize.hpp"

namespace ehw::evo {
namespace {

Json history_to_json(const std::vector<HistoryPoint>& history) {
  Json points = Json::array();
  for (const HistoryPoint& p : history) {
    points.push_back(Json::Object{{"g", json_u64(p.generation)},
                                  {"f", json_u64(p.fitness)}});
  }
  return points;
}

std::string history_from_json(const Json* field,
                              std::vector<HistoryPoint>& out) {
  out.clear();
  if (field == nullptr) return "missing history";
  if (!field->is_array()) return "history is not an array";
  for (const Json& entry : field->as_array()) {
    HistoryPoint p;
    if (!json_read_u64(entry.get("g"), p.generation) ||
        !json_read_u64(entry.get("f"), p.fitness)) {
      return "malformed history point";
    }
    out.push_back(p);
  }
  return "";
}

std::string genotype_from_json(const Json* field, Genotype& out) {
  if (field == nullptr || !field->is_string()) return "missing genotype line";
  try {
    out = deserialize_genotype(field->as_string());
  } catch (const std::exception& e) {
    return std::string("bad genotype line: ") + e.what();
  }
  return "";
}

}  // namespace

Json rng_word_to_json(std::uint64_t word) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(word));
  return Json(std::string(buf));
}

bool rng_word_from_json(const Json* field, std::uint64_t& out) {
  if (field == nullptr || !field->is_string()) return false;
  const std::string& text = field->as_string();
  if (text.size() != 16) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  out = value;
  return true;
}

Json es_checkpoint_to_json(const EsCheckpoint& ckpt) {
  Json rng = Json::array();
  for (const std::uint64_t word : ckpt.rng_state) {
    rng.push_back(rng_word_to_json(word));
  }
  return Json(Json::Object{
      {"next_generation", json_u64(ckpt.next_generation)},
      {"parent", Json(serialize_genotype(ckpt.parent))},
      {"parent_fitness", json_u64(ckpt.parent_fitness)},
      {"best", Json(serialize_genotype(ckpt.es.best))},
      {"best_fitness", json_u64(ckpt.es.best_fitness)},
      {"generations_run", json_u64(ckpt.es.generations_run)},
      {"history", history_to_json(ckpt.es.history)},
      {"rng", std::move(rng)},
  });
}

std::string es_checkpoint_from_json(const Json& json, EsCheckpoint& out) {
  if (!json.is_object()) return "ES checkpoint is not an object";
  if (!json_read_u64(json.get("next_generation"), out.next_generation)) {
    return "missing next_generation";
  }
  if (std::string err = genotype_from_json(json.get("parent"), out.parent);
      !err.empty()) {
    return "parent: " + err;
  }
  if (!json_read_u64(json.get("parent_fitness"), out.parent_fitness)) {
    return "missing parent_fitness";
  }
  if (std::string err = genotype_from_json(json.get("best"), out.es.best);
      !err.empty()) {
    return "best: " + err;
  }
  if (!json_read_u64(json.get("best_fitness"), out.es.best_fitness)) {
    return "missing best_fitness";
  }
  if (!json_read_u64(json.get("generations_run"), out.es.generations_run)) {
    return "missing generations_run";
  }
  if (std::string err = history_from_json(json.get("history"), out.es.history);
      !err.empty()) {
    return err;
  }
  const Json* rng = json.get("rng");
  if (rng == nullptr || !rng->is_array() ||
      rng->as_array().size() != out.rng_state.size()) {
    return "rng must be an array of 4 hex words";
  }
  for (std::size_t i = 0; i < out.rng_state.size(); ++i) {
    if (!rng_word_from_json(&rng->as_array()[i], out.rng_state[i])) {
      return "bad rng word";
    }
  }
  return "";
}

}  // namespace ehw::evo
