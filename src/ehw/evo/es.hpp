#pragma once
// The (1 + lambda) Evolution Strategy (§III.A: "getting inspiration from
// Cartesian Genetic Programming, a simple (1+k) Evolution Strategy with 1
// parent and lambda offspring"). This header provides:
//   * the configuration/result records shared by every evolution driver
//     (extrinsic below, and the intrinsic platform drivers), and
//   * an extrinsic implementation used for tests and algorithm studies.
// Parent replacement follows the CGP convention: an offspring replaces the
// parent when its fitness is LESS OR EQUAL (neutral drift is essential for
// escaping plateaus with such compact genotypes).

#include <cstdint>
#include <vector>

#include "ehw/common/thread_pool.hpp"
#include "ehw/common/types.hpp"
#include "ehw/evo/genotype.hpp"
#include "ehw/img/image.hpp"

namespace ehw::evo {

struct EsConfig {
  /// Offspring per generation ("nine chromosomes are generated in every
  /// generation", §VI.B).
  std::size_t lambda = 9;
  /// Mutation rate k: genes changed per offspring (paper sweeps 1/3/5).
  std::size_t mutation_rate = 3;
  /// Use the paper's two-level mutation strategy instead of classic.
  bool two_level = false;
  /// Evaluation lanes (= number of arrays used); controls batch structure.
  std::size_t lanes = 1;
  /// Generation budget.
  Generation generations = 1000;
  /// Stop early once best fitness <= target (0 keeps running to budget
  /// unless a perfect 0 fitness shows up).
  Fitness target = 0;
  /// Master seed for the run's RNG stream.
  std::uint64_t seed = 1;
  /// Record (generation, fitness) whenever the best improves.
  bool record_history = true;
  /// CGP neutral drift: accept an offspring whose fitness EQUALS the
  /// parent's. Keeping this on is the published design; the ablation bench
  /// switches it off to show why it matters on plateaued landscapes.
  bool accept_equal_fitness = true;
};

struct HistoryPoint {
  Generation generation = 0;
  Fitness fitness = 0;
};

struct EsResult {
  Genotype best;
  Fitness best_fitness = kInvalidFitness;
  Generation generations_run = 0;
  std::vector<HistoryPoint> history;
};

/// Runs the ES fully extrinsically (host evaluation, no fabric, no timing):
/// evolves a filter mapping `train` to `reference`.
[[nodiscard]] EsResult evolve_extrinsic(const EsConfig& config,
                                        fpga::ArrayShape shape,
                                        const img::Image& train,
                                        const img::Image& reference,
                                        ThreadPool* pool = nullptr);

/// Same, but starting from a given parent instead of a random genotype.
[[nodiscard]] EsResult evolve_extrinsic_from(const EsConfig& config,
                                             Genotype parent,
                                             const img::Image& train,
                                             const img::Image& reference,
                                             ThreadPool* pool = nullptr);

}  // namespace ehw::evo
