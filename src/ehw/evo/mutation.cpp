#include "ehw/evo/mutation.hpp"

#include <algorithm>

namespace ehw::evo {

std::vector<std::size_t> mutate(Genotype& genotype, std::size_t k, Rng& rng) {
  const std::size_t genes = genotype.gene_count();
  k = std::min(k, genes);
  // Partial Fisher-Yates over gene indices: k distinct positions, unbiased.
  std::vector<std::size_t> order(genes);
  for (std::size_t i = 0; i < genes; ++i) order[i] = i;
  std::vector<std::size_t> picked;
  picked.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng.below(genes - i);
    std::swap(order[i], order[j]);
    picked.push_back(order[i]);
  }
  for (const std::size_t g : picked) {
    const std::size_t card = genotype.gene_cardinality(g);
    if (card < 2) continue;  // cannot change a 1-valued gene
    const std::uint8_t old = genotype.gene_value(g);
    // Draw from the card-1 values != old.
    auto fresh = static_cast<std::uint8_t>(rng.below(card - 1));
    if (fresh >= old) ++fresh;
    genotype.set_gene_value(g, fresh);
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

Genotype mutated_copy(const Genotype& parent, std::size_t k, Rng& rng) {
  Genotype child = parent;
  mutate(child, k, rng);
  return child;
}

}  // namespace ehw::evo
