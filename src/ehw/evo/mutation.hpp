#pragma once
// Point mutation. The paper parameterizes evolution by a mutation rate
// k in {1, 3, 5}: the number of genes changed per offspring. Mutating a
// gene always assigns a *different* value (a silent self-assignment would
// make k meaningless for the DPR-cost analysis of §VI.B).

#include <cstddef>
#include <vector>

#include "ehw/common/rng.hpp"
#include "ehw/evo/genotype.hpp"

namespace ehw::evo {

/// Mutates exactly `k` distinct genes of `genotype` in place (k is clamped
/// to the gene count). Returns the indices of the mutated genes.
std::vector<std::size_t> mutate(Genotype& genotype, std::size_t k, Rng& rng);

/// Convenience: returns a mutated copy.
[[nodiscard]] Genotype mutated_copy(const Genotype& parent, std::size_t k,
                                    Rng& rng);

}  // namespace ehw::evo
