#include "ehw/evo/fitness_memo.hpp"

namespace ehw::evo {

bool FitnessMemo::lookup(std::uint64_t key, Fitness* fitness) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  *fitness = it->second.fitness;
  return true;
}

void FitnessMemo::store(std::uint64_t key, Fitness fitness) {
  if (capacity_ == 0) return;
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Deterministic evaluation: a concurrent mission already stored the
    // same value. Refresh recency only.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  while (index_.size() >= capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  index_.emplace(key, Entry{fitness, lru_.begin()});
}

std::size_t FitnessMemo::size() const {
  std::lock_guard lock(mutex_);
  return index_.size();
}

FitnessMemoStats FitnessMemo::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void FitnessMemo::clear() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace ehw::evo
