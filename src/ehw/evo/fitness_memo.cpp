#include "ehw/evo/fitness_memo.hpp"

#include "ehw/obs/trace.hpp"

namespace ehw::evo {

bool FitnessMemo::lookup(std::uint64_t key, Fitness* fitness) {
  EHW_TRACE_SPAN("memo_lookup");
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  *fitness = it->second.fitness;
  return true;
}

void FitnessMemo::store(std::uint64_t key, Fitness fitness) {
  if (capacity_ == 0) return;
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Deterministic evaluation: a concurrent mission already stored the
    // same value. Refresh recency only.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  while (index_.size() >= capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  index_.emplace(key, Entry{fitness, lru_.begin()});
}

std::size_t FitnessMemo::size() const {
  std::lock_guard lock(mutex_);
  return index_.size();
}

FitnessMemoStats FitnessMemo::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void FitnessMemo::clear() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  index_.clear();
}

std::vector<std::pair<std::uint64_t, Fitness>> FitnessMemo::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::uint64_t, Fitness>> entries;
  entries.reserve(index_.size());
  for (const std::uint64_t key : lru_) {
    entries.emplace_back(key, index_.at(key).fitness);
  }
  return entries;
}

void FitnessMemo::preload(
    const std::vector<std::pair<std::uint64_t, Fitness>>& entries) {
  if (capacity_ == 0) return;
  std::lock_guard lock(mutex_);
  // Oldest-first insertion reproduces the snapshot's recency order; the
  // store path's eviction loop then keeps only the newest `capacity_`.
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    const auto found = index_.find(it->first);
    if (found != index_.end()) {
      lru_.splice(lru_.begin(), lru_, found->second.lru_pos);
      continue;
    }
    while (index_.size() >= capacity_) {
      index_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(it->first);
    index_.emplace(it->first, Entry{it->second, lru_.begin()});
  }
}

}  // namespace ehw::evo
