#pragma once
// Extrinsic fitness evaluation: build the phenotype straight from the
// genotype and measure aggregated MAE on the host, bypassing the fabric.
// Used by unit tests, by the offline seeding of experiments, and as the
// golden reference the intrinsic (through-the-fabric) path must agree with
// when no faults are present.

#include "ehw/common/thread_pool.hpp"
#include "ehw/common/types.hpp"
#include "ehw/evo/genotype.hpp"
#include "ehw/img/image.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/pe/compiled.hpp"

namespace ehw::evo {

/// MAE of filtering `train` with `genotype` against `reference`.
[[nodiscard]] Fitness evaluate_extrinsic(const Genotype& genotype,
                                         const img::Image& train,
                                         const img::Image& reference,
                                         ThreadPool* pool = nullptr);

/// Filters `src` with the genotype's phenotype.
[[nodiscard]] img::Image apply_genotype(const Genotype& genotype,
                                        const img::Image& src,
                                        ThreadPool* pool = nullptr);

}  // namespace ehw::evo
