#include "ehw/evo/batch.hpp"

#include "ehw/common/rng.hpp"

namespace ehw::evo {
namespace {

/// Shared fan-out: fitness_of(i) runs single-threaded inside a worker
/// chunk (for genotype waves it also compiles the phenotype there, so
/// construction overlaps across candidates too).
template <typename FitnessOf>
std::vector<Fitness> run_wave(std::size_t count, ThreadPool* pool,
                              const FitnessOf& fitness_of) {
  std::vector<Fitness> fits(count, kInvalidFitness);
  const auto chunk = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fits[i] = fitness_of(i);
  };
  if (pool != nullptr && count > 1) {
    pool->parallel_chunks(0, count, chunk);
  } else {
    chunk(0, count);
  }
  return fits;
}

/// fitness_of(i) for a wave of genotypes produced by genotype_at(i).
template <typename GenotypeAt>
std::vector<Fitness> run_genotype_wave(std::size_t count,
                                       const img::Image& input,
                                       const img::Image& reference,
                                       ThreadPool* pool,
                                       const GenotypeAt& genotype_at) {
  return run_wave(count, pool, [&](std::size_t i) {
    const pe::CompiledArray compiled(genotype_at(i).to_array());
    return compiled.fitness_against(input, reference, nullptr);
  });
}

}  // namespace

std::vector<Fitness> batch_fitness(
    const std::vector<pe::CompiledArray>& compiled, const img::Image& input,
    const img::Image& reference, ThreadPool* pool) {
  return run_wave(compiled.size(), pool, [&](std::size_t i) {
    return compiled[i].fitness_against(input, reference, nullptr);
  });
}

std::vector<Fitness> batch_fitness(
    const std::vector<const pe::CompiledArray*>& compiled,
    const img::Image& input, const img::Image& reference, ThreadPool* pool) {
  return run_wave(compiled.size(), pool, [&](std::size_t i) {
    return compiled[i]->fitness_against(input, reference, nullptr);
  });
}

std::vector<Fitness> batch_fitness(
    const std::vector<const pe::CompiledArray*>& compiled,
    const std::vector<std::uint64_t>& keys, FitnessMemo* memo,
    const img::Image& input, const img::Image& reference, ThreadPool* pool,
    BatchMemoStats* stats) {
  EHW_REQUIRE(keys.size() == compiled.size(), "one memo key per candidate");
  if (memo == nullptr) {
    if (stats != nullptr) stats->misses += compiled.size();
    return batch_fitness(compiled, input, reference, pool);
  }

  // Probe the memo first, then run the survivors as one smaller wave.
  std::vector<Fitness> fits(compiled.size(), kInvalidFitness);
  std::vector<std::size_t> miss;
  miss.reserve(compiled.size());
  for (std::size_t i = 0; i < compiled.size(); ++i) {
    if (keys[i] == 0 || !memo->lookup(keys[i], &fits[i])) {
      miss.push_back(i);
    }
  }
  if (stats != nullptr) {
    stats->hits += compiled.size() - miss.size();
    stats->misses += miss.size();
  }
  if (miss.empty()) return fits;

  std::vector<const pe::CompiledArray*> views(miss.size());
  for (std::size_t j = 0; j < miss.size(); ++j) views[j] = compiled[miss[j]];
  const std::vector<Fitness> evaluated =
      batch_fitness(views, input, reference, pool);
  for (std::size_t j = 0; j < miss.size(); ++j) {
    fits[miss[j]] = evaluated[j];
    if (keys[miss[j]] != 0) memo->store(keys[miss[j]], evaluated[j]);
  }
  return fits;
}

std::uint64_t extrinsic_memo_key(std::uint64_t frame_set_id,
                                 const Genotype& genotype) {
  // Domain tag keeps extrinsic keys off the intrinsic fingerprint space.
  return hash_mix(frame_set_id, 0xE87A11C0DE000001ULL, genotype.hash());
}

std::uint64_t frame_set_id(const img::Image& input,
                           const img::Image& reference) {
  const std::uint64_t id =
      hash_mix(input.content_hash(), reference.content_hash());
  return id == 0 ? 1 : id;  // 0 is reserved for "no key"
}

BatchEvaluator::BatchEvaluator(const img::Image& train,
                               const img::Image& reference, ThreadPool* pool,
                               FitnessMemo* memo)
    : train_(&train), reference_(&reference), pool_(pool), memo_(memo) {
  EHW_REQUIRE(train.same_shape(reference), "train/reference shape mismatch");
  if (memo_ != nullptr) frame_set_id_ = frame_set_id(train, reference);
}

template <typename GenotypeAt>
std::vector<Fitness> BatchEvaluator::memoized_wave(
    std::size_t count, const GenotypeAt& genotype_at) const {
  if (memo_ == nullptr) {
    memo_misses_.fetch_add(count, std::memory_order_relaxed);
    return run_genotype_wave(count, *train_, *reference_, pool_, genotype_at);
  }
  // Memo hits skip compilation too, so probe before the wave compiles
  // anything: genotype hashing is orders of magnitude cheaper than
  // phenotype construction plus frame streaming.
  std::vector<Fitness> fits(count, kInvalidFitness);
  std::vector<std::size_t> miss;
  miss.reserve(count);
  std::vector<std::uint64_t> miss_keys;
  miss_keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t key =
        extrinsic_memo_key(frame_set_id_, genotype_at(i));
    if (!memo_->lookup(key, &fits[i])) {
      miss.push_back(i);
      miss_keys.push_back(key);
    }
  }
  memo_hits_.fetch_add(count - miss.size(), std::memory_order_relaxed);
  memo_misses_.fetch_add(miss.size(), std::memory_order_relaxed);
  if (miss.empty()) return fits;

  const std::vector<Fitness> evaluated = run_genotype_wave(
      miss.size(), *train_, *reference_, pool_,
      [&](std::size_t j) -> const Genotype& { return genotype_at(miss[j]); });
  for (std::size_t j = 0; j < miss.size(); ++j) {
    fits[miss[j]] = evaluated[j];
    memo_->store(miss_keys[j], evaluated[j]);
  }
  return fits;
}

Fitness BatchEvaluator::evaluate_one(const Genotype& genotype) const {
  if (memo_ != nullptr) {
    const std::uint64_t key = extrinsic_memo_key(frame_set_id_, genotype);
    Fitness memoized = kInvalidFitness;
    if (memo_->lookup(key, &memoized)) {
      memo_hits_.fetch_add(1, std::memory_order_relaxed);
      return memoized;
    }
    memo_misses_.fetch_add(1, std::memory_order_relaxed);
    const pe::CompiledArray compiled(genotype.to_array());
    const Fitness fitness =
        compiled.fitness_against(*train_, *reference_, pool_);
    memo_->store(key, fitness);
    return fitness;
  }
  memo_misses_.fetch_add(1, std::memory_order_relaxed);
  const pe::CompiledArray compiled(genotype.to_array());
  return compiled.fitness_against(*train_, *reference_, pool_);
}

std::vector<Fitness> BatchEvaluator::evaluate(
    const std::vector<Candidate>& offspring) const {
  return memoized_wave(offspring.size(),
                       [&](std::size_t i) -> const Genotype& {
                         return offspring[i].genotype;
                       });
}

std::vector<Fitness> BatchEvaluator::evaluate_genotypes(
    const std::vector<Genotype>& population) const {
  return memoized_wave(population.size(),
                       [&](std::size_t i) -> const Genotype& {
                         return population[i];
                       });
}

}  // namespace ehw::evo
