#include "ehw/evo/batch.hpp"

namespace ehw::evo {
namespace {

/// Shared fan-out: fitness_of(i) runs single-threaded inside a worker
/// chunk (for genotype waves it also compiles the phenotype there, so
/// construction overlaps across candidates too).
template <typename FitnessOf>
std::vector<Fitness> run_wave(std::size_t count, ThreadPool* pool,
                              const FitnessOf& fitness_of) {
  std::vector<Fitness> fits(count, kInvalidFitness);
  const auto chunk = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fits[i] = fitness_of(i);
  };
  if (pool != nullptr && count > 1) {
    pool->parallel_chunks(0, count, chunk);
  } else {
    chunk(0, count);
  }
  return fits;
}

/// fitness_of(i) for a wave of genotypes produced by genotype_at(i).
template <typename GenotypeAt>
std::vector<Fitness> run_genotype_wave(std::size_t count,
                                       const img::Image& input,
                                       const img::Image& reference,
                                       ThreadPool* pool,
                                       const GenotypeAt& genotype_at) {
  return run_wave(count, pool, [&](std::size_t i) {
    const pe::CompiledArray compiled(genotype_at(i).to_array());
    return compiled.fitness_against(input, reference, nullptr);
  });
}

}  // namespace

std::vector<Fitness> batch_fitness(
    const std::vector<pe::CompiledArray>& compiled, const img::Image& input,
    const img::Image& reference, ThreadPool* pool) {
  return run_wave(compiled.size(), pool, [&](std::size_t i) {
    return compiled[i].fitness_against(input, reference, nullptr);
  });
}

std::vector<Fitness> batch_fitness(
    const std::vector<const pe::CompiledArray*>& compiled,
    const img::Image& input, const img::Image& reference, ThreadPool* pool) {
  return run_wave(compiled.size(), pool, [&](std::size_t i) {
    return compiled[i]->fitness_against(input, reference, nullptr);
  });
}

BatchEvaluator::BatchEvaluator(const img::Image& train,
                               const img::Image& reference, ThreadPool* pool)
    : train_(&train), reference_(&reference), pool_(pool) {
  EHW_REQUIRE(train.same_shape(reference), "train/reference shape mismatch");
}

Fitness BatchEvaluator::evaluate_one(const Genotype& genotype) const {
  const pe::CompiledArray compiled(genotype.to_array());
  return compiled.fitness_against(*train_, *reference_, pool_);
}

std::vector<Fitness> BatchEvaluator::evaluate(
    const std::vector<Candidate>& offspring) const {
  return run_genotype_wave(offspring.size(), *train_, *reference_, pool_,
                           [&](std::size_t i) -> const Genotype& {
                             return offspring[i].genotype;
                           });
}

std::vector<Fitness> BatchEvaluator::evaluate_genotypes(
    const std::vector<Genotype>& population) const {
  return run_genotype_wave(population.size(), *train_, *reference_, pool_,
                           [&](std::size_t i) -> const Genotype& {
                             return population[i];
                           });
}

}  // namespace ehw::evo
