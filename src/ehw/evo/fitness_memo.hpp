#pragma once
// FitnessMemo — pool-wide fitness memoization.
//
// Evolutionary search revisits candidates constantly: neutral drift walks
// back over earlier genotypes, (1+lambda) waves duplicate mutations, and
// replayed/recovery missions re-evaluate entire populations. The fitness
// of a candidate is a pure function of (candidate configuration,
// evaluation frames), so identical candidates re-encountered on the same
// frame set — within one mission or across every mission sharing an
// ArrayPool — can skip frame streaming entirely.
//
// Key = hash_mix(frame-set id, candidate key):
//   * the frame-set id is a content hash over the (input, reference)
//     image pair (img::Image::content_hash), so it identifies WHAT is
//     being measured, independent of which mission asked;
//   * the candidate key is the platform configuration fingerprint mixed
//     with the genotype hash on the intrinsic path (defect map included —
//     a damaged candidate never shares an entry with its healthy twin),
//     or the genotype content hash on the extrinsic BatchEvaluator path.
// Keys are 64-bit content hashes: two distinct (candidate, frames) pairs
// collide with ~2^-64 probability, the same bound the compiled-array
// cache already accepts.
//
// Memoized values are exactly the fitnesses the evaluation engine would
// recompute (evaluation is deterministic), so memo-on and memo-off runs
// are bit-identical — the equivalence suite asserts this, concurrently.
//
// Thread safety: one mutex around an LRU index of plain u64 -> Fitness
// entries. Lookups copy the value out under the lock; there is no
// compile-outside-the-lock phase (values are 8 bytes, not compiled
// programs), which keeps the critical section tens of nanoseconds.

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ehw/common/types.hpp"

namespace ehw::evo {

/// Hit/miss tally of one memoized wave (or an accumulation of many);
/// what per-mission counters are built from.
struct BatchMemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

struct FitnessMemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class FitnessMemo {
 public:
  /// `capacity` is the entry cap (LRU eviction beyond it); 0 disables the
  /// memo (every lookup misses, nothing is stored).
  explicit FitnessMemo(std::size_t capacity) : capacity_(capacity) {}

  FitnessMemo(const FitnessMemo&) = delete;
  FitnessMemo& operator=(const FitnessMemo&) = delete;

  /// True (and fills `fitness`) when `key` is memoized. Counts the
  /// hit/miss and refreshes LRU recency on hit.
  [[nodiscard]] bool lookup(std::uint64_t key, Fitness* fitness);

  /// Records an evaluated fitness (no-op when disabled). Overwrites an
  /// existing entry with the identical value — evaluation is
  /// deterministic, so a key can never map to two fitnesses.
  void store(std::uint64_t key, Fitness fitness);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] FitnessMemoStats stats() const;
  void clear();

  /// Entries in LRU order (most recent first), for warm-state
  /// persistence: keys are content hashes, so a snapshot taken on one
  /// daemon incarnation is valid for the next.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, Fitness>> snapshot()
      const;

  /// Seeds the memo from a prior snapshot. Inserted oldest-first so the
  /// resulting LRU order matches the snapshot's; entries beyond capacity
  /// (and all entries when disabled) are dropped. Does not count as
  /// hits/misses.
  void preload(const std::vector<std::pair<std::uint64_t, Fitness>>& entries);

 private:
  struct Entry {
    Fitness fitness = kInvalidFitness;
    std::list<std::uint64_t>::iterator lru_pos;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<std::uint64_t> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, Entry> index_;
  FitnessMemoStats stats_;
};

}  // namespace ehw::evo
