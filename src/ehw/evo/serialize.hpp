#pragma once
// Genotype (de)serialization. On the paper's platform the selected
// chromosome outlives the evolutionary run — it is stored so the system
// can restore a mission configuration after power-up without re-evolving.
// Two formats:
//   * compact line format ("MPA1 rows cols | fn.. | taps.. | out") for
//     logs and single-genotype files;
//   * a small library file holding several named genotypes (the deployed
//     "filter library" a mission controller would keep in flash).

#include <iosfwd>
#include <map>
#include <string>

#include "ehw/evo/genotype.hpp"

namespace ehw::evo {

/// One line, fully reversible. Example for a 2x2 array:
///   MPA1 2 2 | 4 6 1 11 | 0 4 8 2 | 1
[[nodiscard]] std::string serialize_genotype(const Genotype& genotype);

/// Parses the line format. Throws std::runtime_error on malformed input
/// (wrong magic, gene counts, out-of-range values).
[[nodiscard]] Genotype deserialize_genotype(const std::string& line);

/// A named collection of genotypes with file round-trip. Line-oriented
/// format: "<name> := <genotype line>"; '#' starts a comment.
class GenotypeLibrary {
 public:
  void put(const std::string& name, const Genotype& genotype);
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] const Genotype& get(const std::string& name) const;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::map<std::string, Genotype>& entries()
      const noexcept {
    return entries_;
  }

  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;
  [[nodiscard]] static GenotypeLibrary load(std::istream& is);
  [[nodiscard]] static GenotypeLibrary load_file(const std::string& path);

 private:
  std::map<std::string, Genotype> entries_;
};

}  // namespace ehw::evo
