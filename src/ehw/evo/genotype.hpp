#pragma once
// Genotype encoding (§III.A): one candidate circuit is exactly described by
//   * one 4-bit function gene per PE (16 library functions);
//   * one window-tap gene per array input (rows + cols inputs, each a
//     9-to-1 mux over the 3x3 window);
//   * one output-mux gene selecting which east-side row drives the output.
// Function genes live in the fabric (changing one costs a DPR write);
// tap/output genes live in ACB control registers (cheap writes). The
// mutation-cost asymmetry is what the paper's two-level EA exploits.

#include <cstdint>
#include <string>
#include <vector>

#include "ehw/common/rng.hpp"
#include "ehw/fpga/geometry.hpp"
#include "ehw/pe/array.hpp"

namespace ehw::evo {

class Genotype {
 public:
  Genotype() = default;
  explicit Genotype(fpga::ArrayShape shape);

  /// Uniformly random genotype.
  [[nodiscard]] static Genotype random(fpga::ArrayShape shape, Rng& rng);

  [[nodiscard]] const fpga::ArrayShape& shape() const noexcept {
    return shape_;
  }

  /// --- gene blocks -------------------------------------------------------
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return shape_.cell_count();
  }
  [[nodiscard]] std::size_t input_count() const noexcept {
    return shape_.rows + shape_.cols;
  }
  /// Total genes = cells + inputs + 1 (output row).
  [[nodiscard]] std::size_t gene_count() const noexcept {
    return cell_count() + input_count() + 1;
  }

  [[nodiscard]] std::uint8_t function_gene(std::size_t cell) const;
  void set_function_gene(std::size_t cell, std::uint8_t op);

  [[nodiscard]] std::uint8_t tap_gene(std::size_t input) const;
  void set_tap_gene(std::size_t input, std::uint8_t tap);

  [[nodiscard]] std::uint8_t output_row() const noexcept { return output_row_; }
  void set_output_row(std::uint8_t row);

  [[nodiscard]] const std::vector<std::uint8_t>& function_genes()
      const noexcept {
    return function_genes_;
  }
  [[nodiscard]] const std::vector<std::uint8_t>& tap_genes() const noexcept {
    return tap_genes_;
  }

  /// --- flat gene addressing (mutation operates on this space) ------------
  /// Gene g: [0, cells) = function; [cells, cells+inputs) = tap; last =
  /// output row. Returns the number of alternative values gene g can take.
  [[nodiscard]] std::size_t gene_cardinality(std::size_t gene) const;
  [[nodiscard]] std::uint8_t gene_value(std::size_t gene) const;
  void set_gene_value(std::size_t gene, std::uint8_t value);

  /// --- phenotype ----------------------------------------------------------
  /// Builds the behavioural array directly (the extrinsic path used by
  /// unit tests; intrinsic evaluation goes through the fabric instead).
  [[nodiscard]] pe::SystolicArray to_array() const;

  /// --- analysis ------------------------------------------------------------
  /// Indices of cells whose function genes differ (the DPR diff).
  [[nodiscard]] static std::vector<std::size_t> function_diff(
      const Genotype& a, const Genotype& b);
  /// Total differing genes across all blocks.
  [[nodiscard]] static std::size_t hamming_distance(const Genotype& a,
                                                    const Genotype& b);

  [[nodiscard]] std::string to_string() const;

  /// Stable 64-bit content hash over the shape and every gene block
  /// (SplitMix64-chained, host- and build-independent). Equal genotypes
  /// hash equally; distinct genotypes collide with ~2^-64 probability.
  /// Mixed into the scheduler's compiled-array cache key (alongside the
  /// platform's configuration fingerprint); also useful standalone for
  /// population dedup statistics.
  [[nodiscard]] std::uint64_t hash() const noexcept;

  friend bool operator==(const Genotype&, const Genotype&) = default;

 private:
  fpga::ArrayShape shape_{};
  std::vector<std::uint8_t> function_genes_;
  std::vector<std::uint8_t> tap_genes_;
  std::uint8_t output_row_ = 0;
};

/// Hash functor so genotypes can key unordered containers (dedup sets,
/// fitness memo tables): std::unordered_set<Genotype, GenotypeHash>.
struct GenotypeHash {
  [[nodiscard]] std::size_t operator()(const Genotype& g) const noexcept {
    return static_cast<std::size_t>(g.hash());
  }
};

}  // namespace ehw::evo
