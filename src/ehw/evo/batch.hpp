#pragma once
// Population-level parallel evaluation: the host analogue of the paper's
// multiple processing arrays. Instead of forking/joining worker threads on
// every image row *inside* each candidate (one barrier per candidate,
// lambda barriers per generation), a whole wave of candidates is fanned
// out with one candidate per worker — like one candidate per physical
// array — and each candidate streams its frame single-threaded through
// the row-vectorized kernel. One fan-out and one join per generation.

#include <vector>

#include "ehw/common/thread_pool.hpp"
#include "ehw/common/types.hpp"
#include "ehw/evo/genotype.hpp"
#include "ehw/evo/offspring.hpp"
#include "ehw/img/image.hpp"
#include "ehw/pe/compiled.hpp"

namespace ehw::evo {

/// Fitness of every candidate in `compiled` against streaming `input`
/// through it and comparing to `reference`, dispatched whole-candidates-
/// per-worker over `pool` (sequential when null). Results are in input
/// order and bit-identical to evaluating each candidate alone.
[[nodiscard]] std::vector<Fitness> batch_fitness(
    const std::vector<pe::CompiledArray>& compiled, const img::Image& input,
    const img::Image& reference, ThreadPool* pool = nullptr);

/// Same wave over non-owning pointers — the form the scheduler's
/// compiled-array cache feeds (cached candidates are shared across
/// missions, so the wave must not copy or own them).
[[nodiscard]] std::vector<Fitness> batch_fitness(
    const std::vector<const pe::CompiledArray*>& compiled,
    const img::Image& input, const img::Image& reference,
    ThreadPool* pool = nullptr);

/// Extrinsic evaluation engine for a fixed train/reference pair. Holds no
/// image copies — both images must outlive the evaluator.
class BatchEvaluator {
 public:
  BatchEvaluator(const img::Image& train, const img::Image& reference,
                 ThreadPool* pool = nullptr);

  /// Single candidate (e.g. the initial parent): row-parallel inside the
  /// candidate, since there is no population to spread.
  [[nodiscard]] Fitness evaluate_one(const Genotype& genotype) const;

  /// One (1+lambda) offspring wave, candidate-per-worker.
  [[nodiscard]] std::vector<Fitness> evaluate(
      const std::vector<Candidate>& offspring) const;

  /// An arbitrary population of genotypes, candidate-per-worker.
  [[nodiscard]] std::vector<Fitness> evaluate_genotypes(
      const std::vector<Genotype>& population) const;

  [[nodiscard]] ThreadPool* pool() const noexcept { return pool_; }

 private:
  const img::Image* train_;
  const img::Image* reference_;
  ThreadPool* pool_;
};

}  // namespace ehw::evo
