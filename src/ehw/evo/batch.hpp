#pragma once
// Population-level parallel evaluation: the host analogue of the paper's
// multiple processing arrays. Instead of forking/joining worker threads on
// every image row *inside* each candidate (one barrier per candidate,
// lambda barriers per generation), a whole wave of candidates is fanned
// out with one candidate per worker — like one candidate per physical
// array — and each candidate streams its frame single-threaded through
// the row-vectorized kernel. One fan-out and one join per generation.

#include <atomic>
#include <cstdint>
#include <vector>

#include "ehw/common/thread_pool.hpp"
#include "ehw/common/types.hpp"
#include "ehw/evo/fitness_memo.hpp"
#include "ehw/evo/genotype.hpp"
#include "ehw/evo/offspring.hpp"
#include "ehw/img/image.hpp"
#include "ehw/pe/compiled.hpp"

namespace ehw::evo {

/// Fitness of every candidate in `compiled` against streaming `input`
/// through it and comparing to `reference`, dispatched whole-candidates-
/// per-worker over `pool` (sequential when null). Results are in input
/// order and bit-identical to evaluating each candidate alone.
[[nodiscard]] std::vector<Fitness> batch_fitness(
    const std::vector<pe::CompiledArray>& compiled, const img::Image& input,
    const img::Image& reference, ThreadPool* pool = nullptr);

/// Same wave over non-owning pointers — the form the scheduler's
/// compiled-array cache feeds (cached candidates are shared across
/// missions, so the wave must not copy or own them).
[[nodiscard]] std::vector<Fitness> batch_fitness(
    const std::vector<const pe::CompiledArray*>& compiled,
    const img::Image& input, const img::Image& reference,
    ThreadPool* pool = nullptr);

/// Memoized wave: `keys[i]` is the candidate's full memo key — the
/// frame-set id already mixed in (see FitnessMemo) — or 0 for "never
/// memoize this one". Keyed candidates found in `memo` skip evaluation;
/// the rest evaluate as one (smaller) wave and are stored. Results are
/// bit-identical to the unmemoized overloads. `stats` (optional)
/// accumulates this wave's hit/miss counts; unkeyed candidates count as
/// misses.
[[nodiscard]] std::vector<Fitness> batch_fitness(
    const std::vector<const pe::CompiledArray*>& compiled,
    const std::vector<std::uint64_t>& keys, FitnessMemo* memo,
    const img::Image& input, const img::Image& reference,
    ThreadPool* pool = nullptr, BatchMemoStats* stats = nullptr);

/// Extrinsic evaluation engine for a fixed train/reference pair. Holds no
/// image copies — both images must outlive the evaluator.
///
/// With a FitnessMemo attached, genotype waves skip BOTH compilation and
/// evaluation of candidates whose (genotype, frame set) was already
/// measured — the frame-set id is computed once here, the per-candidate
/// key is the genotype content hash. Memo-on results are bit-identical to
/// memo-off (asserted by the equivalence suite).
class BatchEvaluator {
 public:
  BatchEvaluator(const img::Image& train, const img::Image& reference,
                 ThreadPool* pool = nullptr, FitnessMemo* memo = nullptr);

  /// Single candidate (e.g. the initial parent): row-parallel inside the
  /// candidate, since there is no population to spread.
  [[nodiscard]] Fitness evaluate_one(const Genotype& genotype) const;

  /// One (1+lambda) offspring wave, candidate-per-worker.
  [[nodiscard]] std::vector<Fitness> evaluate(
      const std::vector<Candidate>& offspring) const;

  /// An arbitrary population of genotypes, candidate-per-worker.
  [[nodiscard]] std::vector<Fitness> evaluate_genotypes(
      const std::vector<Genotype>& population) const;

  [[nodiscard]] ThreadPool* pool() const noexcept { return pool_; }

  /// Accumulated memo traffic of this evaluator (both zero when no memo
  /// is attached).
  [[nodiscard]] BatchMemoStats memo_stats() const noexcept {
    return {memo_hits_.load(std::memory_order_relaxed),
            memo_misses_.load(std::memory_order_relaxed)};
  }

 private:
  template <typename GenotypeAt>
  [[nodiscard]] std::vector<Fitness> memoized_wave(
      std::size_t count, const GenotypeAt& genotype_at) const;

  const img::Image* train_;
  const img::Image* reference_;
  ThreadPool* pool_;
  FitnessMemo* memo_;
  std::uint64_t frame_set_id_ = 0;  // nonzero iff memo_ != nullptr
  mutable std::atomic<std::uint64_t> memo_hits_{0};
  mutable std::atomic<std::uint64_t> memo_misses_{0};
};

/// Memo key of an extrinsic (genotype-only, defect-free) candidate on a
/// frame set. The tag keeps the extrinsic key domain disjoint from the
/// intrinsic configuration-fingerprint domain.
[[nodiscard]] std::uint64_t extrinsic_memo_key(std::uint64_t frame_set_id,
                                               const Genotype& genotype);

/// Content identity of an (input, reference) evaluation pair — the
/// frame-set half of every memo key. Never returns 0 (0 is the "no key"
/// sentinel).
[[nodiscard]] std::uint64_t frame_set_id(const img::Image& input,
                                         const img::Image& reference);

}  // namespace ehw::evo
