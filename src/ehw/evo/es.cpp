#include "ehw/evo/es.hpp"

#include "ehw/evo/batch.hpp"
#include "ehw/evo/offspring.hpp"

namespace ehw::evo {

EsResult evolve_extrinsic_from(const EsConfig& config, Genotype parent,
                               const img::Image& train,
                               const img::Image& reference, ThreadPool* pool) {
  EHW_REQUIRE(train.same_shape(reference), "train/reference shape mismatch");
  Rng rng(config.seed);
  const BatchEvaluator evaluator(train, reference, pool);

  EsResult result;
  result.best = parent;
  result.best_fitness = evaluator.evaluate_one(parent);
  if (config.record_history) {
    result.history.push_back({0, result.best_fitness});
  }

  Fitness parent_fitness = result.best_fitness;
  for (Generation gen = 1; gen <= config.generations; ++gen) {
    if (result.best_fitness <= config.target) break;
    auto offspring =
        config.two_level
            ? two_level_offspring(parent, config.lambda, config.lanes,
                                  config.mutation_rate, rng)
            : classic_offspring(parent, config.lambda, config.lanes,
                                config.mutation_rate, rng);
    // Evaluate the wave whole-candidates-per-worker; lanes are a timing
    // concept, extrinsically we just evaluate everything (order does not
    // affect the selected survivor).
    const std::vector<Fitness> fits = evaluator.evaluate(offspring);
    std::size_t best_idx = 0;
    Fitness best_fit = kInvalidFitness;
    for (std::size_t i = 0; i < offspring.size(); ++i) {
      if (fits[i] < best_fit) {
        best_fit = fits[i];
        best_idx = i;
      }
    }
    result.generations_run = gen;
    // (1+lambda); with neutral drift a tie also replaces the parent.
    if (best_fit < parent_fitness ||
        (config.accept_equal_fitness && best_fit == parent_fitness)) {
      parent = offspring[best_idx].genotype;
      parent_fitness = best_fit;
    }
    if (best_fit < result.best_fitness) {
      result.best = offspring[best_idx].genotype;
      result.best_fitness = best_fit;
      if (config.record_history) result.history.push_back({gen, best_fit});
    }
  }
  return result;
}

EsResult evolve_extrinsic(const EsConfig& config, fpga::ArrayShape shape,
                          const img::Image& train, const img::Image& reference,
                          ThreadPool* pool) {
  Rng seed_rng(config.seed ^ 0xA5A5A5A5A5A5A5A5ULL);
  return evolve_extrinsic_from(config, Genotype::random(shape, seed_rng),
                               train, reference, pool);
}

}  // namespace ehw::evo
