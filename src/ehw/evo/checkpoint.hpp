#pragma once
// Checkpoint record for a running (1 + lambda) ES: everything needed to
// resume the search mid-run with a bit-identical continuation — the
// current parent, the accumulated result (best/history), and the raw
// xoshiro256** state of the mutation stream. Serialized through the
// shared JSON value type; 64-bit-exact fields travel as decimal strings
// and RNG words as 16-digit hex (see common/json.hpp).

#include <array>
#include <cstdint>
#include <string>

#include "ehw/common/json.hpp"
#include "ehw/common/types.hpp"
#include "ehw/evo/es.hpp"
#include "ehw/evo/genotype.hpp"

namespace ehw::evo {

struct EsCheckpoint {
  /// First generation the resumed loop will run (the saved generation + 1).
  Generation next_generation = 1;
  /// Current parent and its measured fitness.
  Genotype parent;
  Fitness parent_fitness = kInvalidFitness;
  /// Result accumulated so far (best genotype, best fitness, history).
  EsResult es;
  /// Raw state of the mutation Rng at the generation boundary.
  std::array<std::uint64_t, 4> rng_state{};
};

/// Hex codec for RNG state words: 16 lowercase hex digits, fixed width,
/// so checkpoint diffs line up and parsing is unambiguous.
[[nodiscard]] Json rng_word_to_json(std::uint64_t word);
[[nodiscard]] bool rng_word_from_json(const Json* field, std::uint64_t& out);

[[nodiscard]] Json es_checkpoint_to_json(const EsCheckpoint& ckpt);

/// Fills `out` from `json`. Returns "" on success, else a description of
/// the first malformed field (out is unspecified on failure).
[[nodiscard]] std::string es_checkpoint_from_json(const Json& json,
                                                  EsCheckpoint& out);

}  // namespace ehw::evo
