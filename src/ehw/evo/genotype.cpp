#include "ehw/evo/genotype.hpp"

#include <sstream>

#include "ehw/pe/functions.hpp"
#include "ehw/reconfig/pbs_library.hpp"

namespace ehw::evo {

Genotype::Genotype(fpga::ArrayShape shape)
    : shape_(shape),
      function_genes_(shape.cell_count(), 0),
      tap_genes_(shape.rows + shape.cols, 0) {
  EHW_REQUIRE(shape.rows > 0 && shape.cols > 0, "degenerate shape");
}

Genotype Genotype::random(fpga::ArrayShape shape, Rng& rng) {
  Genotype g(shape);
  for (auto& fg : g.function_genes_) {
    fg = static_cast<std::uint8_t>(rng.below(reconfig::kFunctionCount));
  }
  for (auto& tg : g.tap_genes_) {
    tg = static_cast<std::uint8_t>(rng.below(pe::kWindowTaps));
  }
  g.output_row_ = static_cast<std::uint8_t>(rng.below(shape.rows));
  return g;
}

std::uint8_t Genotype::function_gene(std::size_t cell) const {
  EHW_REQUIRE(cell < function_genes_.size(), "cell gene out of range");
  return function_genes_[cell];
}

void Genotype::set_function_gene(std::size_t cell, std::uint8_t op) {
  EHW_REQUIRE(cell < function_genes_.size(), "cell gene out of range");
  EHW_REQUIRE(op < reconfig::kFunctionCount, "function gene out of range");
  function_genes_[cell] = op;
}

std::uint8_t Genotype::tap_gene(std::size_t input) const {
  EHW_REQUIRE(input < tap_genes_.size(), "tap gene out of range");
  return tap_genes_[input];
}

void Genotype::set_tap_gene(std::size_t input, std::uint8_t tap) {
  EHW_REQUIRE(input < tap_genes_.size(), "tap gene out of range");
  EHW_REQUIRE(tap < pe::kWindowTaps, "tap value out of range");
  tap_genes_[input] = tap;
}

void Genotype::set_output_row(std::uint8_t row) {
  EHW_REQUIRE(row < shape_.rows, "output row out of range");
  output_row_ = row;
}

std::size_t Genotype::gene_cardinality(std::size_t gene) const {
  EHW_REQUIRE(gene < gene_count(), "gene index out of range");
  if (gene < cell_count()) return reconfig::kFunctionCount;
  if (gene < cell_count() + input_count()) return pe::kWindowTaps;
  return shape_.rows;
}

std::uint8_t Genotype::gene_value(std::size_t gene) const {
  EHW_REQUIRE(gene < gene_count(), "gene index out of range");
  if (gene < cell_count()) return function_genes_[gene];
  if (gene < cell_count() + input_count()) {
    return tap_genes_[gene - cell_count()];
  }
  return output_row_;
}

void Genotype::set_gene_value(std::size_t gene, std::uint8_t value) {
  EHW_REQUIRE(gene < gene_count(), "gene index out of range");
  EHW_REQUIRE(value < gene_cardinality(gene), "gene value out of range");
  if (gene < cell_count()) {
    function_genes_[gene] = value;
  } else if (gene < cell_count() + input_count()) {
    tap_genes_[gene - cell_count()] = value;
  } else {
    output_row_ = value;
  }
}

pe::SystolicArray Genotype::to_array() const {
  pe::SystolicArray array(shape_);
  for (std::size_t r = 0; r < shape_.rows; ++r) {
    for (std::size_t c = 0; c < shape_.cols; ++c) {
      pe::CellConfig cc;
      cc.op = static_cast<pe::PeOp>(function_genes_[r * shape_.cols + c]);
      array.set_cell(r, c, cc);
    }
  }
  for (std::size_t i = 0; i < tap_genes_.size(); ++i) {
    array.set_input_select(i, tap_genes_[i]);
  }
  array.set_output_row(output_row_);
  return array;
}

std::vector<std::size_t> Genotype::function_diff(const Genotype& a,
                                                 const Genotype& b) {
  EHW_REQUIRE(a.shape_ == b.shape_, "shape mismatch");
  std::vector<std::size_t> diff;
  for (std::size_t i = 0; i < a.function_genes_.size(); ++i) {
    if (a.function_genes_[i] != b.function_genes_[i]) diff.push_back(i);
  }
  return diff;
}

std::size_t Genotype::hamming_distance(const Genotype& a, const Genotype& b) {
  EHW_REQUIRE(a.shape_ == b.shape_, "shape mismatch");
  std::size_t d = 0;
  for (std::size_t g = 0; g < a.gene_count(); ++g) {
    if (a.gene_value(g) != b.gene_value(g)) ++d;
  }
  return d;
}

std::uint64_t Genotype::hash() const noexcept {
  // SplitMix64 chaining over every gene block. Bytes are mixed one at a
  // time — a genotype has ~2*cells + rows + cols + 1 genes, so this stays
  // far off any hot path while giving full avalanche per gene.
  std::uint64_t h = 0x243F6A8885A308D3ULL;  // pi fraction, arbitrary tag
  const auto mix = [&h](std::uint64_t v) noexcept {
    std::uint64_t s = h ^ (v * 0x9E3779B97F4A7C15ULL);
    h = splitmix64(s);
  };
  mix(shape_.rows);
  mix(shape_.cols);
  for (const std::uint8_t f : function_genes_) mix(f);
  for (const std::uint8_t t : tap_genes_) mix(t);
  mix(output_row_);
  return h;
}

std::string Genotype::to_string() const {
  std::ostringstream os;
  os << "fn[";
  for (std::size_t r = 0; r < shape_.rows; ++r) {
    if (r) os << " | ";
    for (std::size_t c = 0; c < shape_.cols; ++c) {
      if (c) os << ' ';
      os << pe::op_name(
          static_cast<pe::PeOp>(function_genes_[r * shape_.cols + c]));
    }
  }
  os << "] taps[";
  for (std::size_t i = 0; i < tap_genes_.size(); ++i) {
    if (i) os << ' ';
    os << int{tap_genes_[i]};
  }
  os << "] out=" << int{output_row_};
  return os.str();
}

}  // namespace ehw::evo
