#include "ehw/evo/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ehw/pe/array.hpp"
#include "ehw/reconfig/pbs_library.hpp"

namespace ehw::evo {
namespace {

constexpr const char* kMagic = "MPA1";

void expect_bar(std::istream& is, const char* where) {
  std::string tok;
  if (!(is >> tok) || tok != "|") {
    throw std::runtime_error(std::string("genotype parse: expected '|' ") +
                             where);
  }
}

unsigned read_value(std::istream& is, unsigned max_exclusive,
                    const char* what) {
  long v = -1;
  if (!(is >> v) || v < 0 || v >= static_cast<long>(max_exclusive)) {
    throw std::runtime_error(std::string("genotype parse: bad ") + what);
  }
  return static_cast<unsigned>(v);
}

}  // namespace

std::string serialize_genotype(const Genotype& genotype) {
  std::ostringstream os;
  os << kMagic << ' ' << genotype.shape().rows << ' '
     << genotype.shape().cols << " |";
  for (std::size_t i = 0; i < genotype.cell_count(); ++i) {
    os << ' ' << int{genotype.function_gene(i)};
  }
  os << " |";
  for (std::size_t i = 0; i < genotype.input_count(); ++i) {
    os << ' ' << int{genotype.tap_gene(i)};
  }
  os << " | " << int{genotype.output_row()};
  return os.str();
}

Genotype deserialize_genotype(const std::string& line) {
  std::istringstream is(line);
  std::string magic;
  if (!(is >> magic) || magic != kMagic) {
    throw std::runtime_error("genotype parse: bad magic (want MPA1)");
  }
  long rows = 0, cols = 0;
  if (!(is >> rows >> cols) || rows <= 0 || cols <= 0 || rows > 255 ||
      cols > 255) {
    throw std::runtime_error("genotype parse: bad shape");
  }
  Genotype g(fpga::ArrayShape{static_cast<std::size_t>(rows),
                              static_cast<std::size_t>(cols)});
  expect_bar(is, "before function genes");
  for (std::size_t i = 0; i < g.cell_count(); ++i) {
    g.set_function_gene(
        i, static_cast<std::uint8_t>(
               read_value(is, reconfig::kFunctionCount, "function gene")));
  }
  expect_bar(is, "before tap genes");
  for (std::size_t i = 0; i < g.input_count(); ++i) {
    g.set_tap_gene(i, static_cast<std::uint8_t>(
                          read_value(is, pe::kWindowTaps, "tap gene")));
  }
  expect_bar(is, "before output row");
  g.set_output_row(static_cast<std::uint8_t>(
      read_value(is, static_cast<unsigned>(rows), "output row")));
  std::string rest;
  if (is >> rest) {
    throw std::runtime_error("genotype parse: trailing tokens");
  }
  return g;
}

void GenotypeLibrary::put(const std::string& name, const Genotype& genotype) {
  EHW_REQUIRE(!name.empty() && name.find(":=") == std::string::npos &&
                  name.find('\n') == std::string::npos,
              "library entry names must be single-line and ':='-free");
  entries_.insert_or_assign(name, genotype);
}

bool GenotypeLibrary::contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

const Genotype& GenotypeLibrary::get(const std::string& name) const {
  const auto it = entries_.find(name);
  EHW_REQUIRE(it != entries_.end(), "unknown genotype library entry");
  return it->second;
}

void GenotypeLibrary::save(std::ostream& os) const {
  os << "# MPA-EHW genotype library (" << entries_.size() << " entries)\n";
  for (const auto& [name, genotype] : entries_) {
    os << name << " := " << serialize_genotype(genotype) << '\n';
  }
}

void GenotypeLibrary::save_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  save(os);
}

GenotypeLibrary GenotypeLibrary::load(std::istream& is) {
  GenotypeLibrary lib;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto sep = line.find(" := ");
    if (sep == std::string::npos) {
      throw std::runtime_error("library parse: missing ' := ' in: " + line);
    }
    lib.entries_.insert_or_assign(line.substr(0, sep),
                                  deserialize_genotype(line.substr(sep + 4)));
  }
  return lib;
}

GenotypeLibrary GenotypeLibrary::load_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return load(is);
}

}  // namespace ehw::evo
