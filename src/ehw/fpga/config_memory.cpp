#include "ehw/fpga/config_memory.hpp"

#include <bit>

namespace ehw::fpga {

ConfigMemory::ConfigMemory(std::size_t words)
    : actual_(words, 0),
      intended_(words, 0),
      stuck_mask_(words, 0),
      stuck_value_(words, 0) {
  EHW_REQUIRE(words > 0, "config memory must not be empty");
}

ConfigWord ConfigMemory::read(std::size_t addr) const {
  check(addr);
  return actual_[addr];
}

ConfigWord ConfigMemory::read_intended(std::size_t addr) const {
  check(addr);
  return intended_[addr];
}

void ConfigMemory::write(std::size_t addr, ConfigWord value) {
  check(addr);
  intended_[addr] = value;
  actual_[addr] = apply_stuck(addr, value);
}

bool ConfigMemory::rewrite(std::size_t addr) {
  check(addr);
  const ConfigWord fresh = apply_stuck(addr, intended_[addr]);
  const bool changed = fresh != actual_[addr];
  actual_[addr] = fresh;
  return changed;
}

void ConfigMemory::flip_bit(std::size_t addr, unsigned bit) {
  check(addr);
  EHW_REQUIRE(bit < 32, "bit index out of range");
  actual_[addr] ^= (ConfigWord{1} << bit);
}

void ConfigMemory::set_stuck_bit(std::size_t addr, unsigned bit,
                                 bool stuck_value) {
  check(addr);
  EHW_REQUIRE(bit < 32, "bit index out of range");
  const ConfigWord m = ConfigWord{1} << bit;
  stuck_mask_[addr] |= m;
  if (stuck_value) {
    stuck_value_[addr] |= m;
  } else {
    stuck_value_[addr] &= ~m;
  }
  // The damage takes effect immediately on the SRAM cell.
  actual_[addr] = apply_stuck(addr, actual_[addr]);
}

void ConfigMemory::clear_stuck_bit(std::size_t addr, unsigned bit) {
  check(addr);
  EHW_REQUIRE(bit < 32, "bit index out of range");
  const ConfigWord m = ConfigWord{1} << bit;
  stuck_mask_[addr] &= ~m;
  stuck_value_[addr] &= ~m;
}

ConfigWord ConfigMemory::stuck_mask(std::size_t addr) const {
  check(addr);
  return stuck_mask_[addr];
}

std::size_t ConfigMemory::upset_word_count() const noexcept {
  std::size_t n = 0;
  for (std::size_t i = 0; i < actual_.size(); ++i) {
    // A word counts as upset when actual deviates from what a fresh write
    // of the intended value would produce (stuck bits are not "upsets").
    if (actual_[i] != apply_stuck(i, intended_[i])) ++n;
  }
  return n;
}

std::size_t ConfigMemory::stuck_bit_count() const noexcept {
  std::size_t n = 0;
  for (ConfigWord m : stuck_mask_) n += std::popcount(m);
  return n;
}

}  // namespace ehw::fpga
