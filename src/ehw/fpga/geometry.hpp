#pragma once
// Virtual fabric geometry, modelled on the paper's Virtex-5 LX110T
// floorplan (§VI.A):
//   * a PE slot is 2 CLB columns wide by 1/4 clock region high (5 CLBs);
//   * a 4x4 array occupies 8 CLB columns over one full clock region
//     (20 CLB rows) = 160 CLBs;
//   * arrays (with their ACBs) stack vertically, one clock region each.
// Configuration memory addresses are expressed in frames of 32-bit words;
// each PE slot owns an integral number of consecutive frames so that the
// reconfiguration engine's readback/relocate/writeback works per-slot.

#include <cstddef>
#include <cstdint>

#include "ehw/common/assert.hpp"

namespace ehw::fpga {

/// Grid shape of one processing array (paper: 4x4).
struct ArrayShape {
  std::size_t rows = 4;
  std::size_t cols = 4;

  [[nodiscard]] std::size_t cell_count() const noexcept { return rows * cols; }
  friend bool operator==(const ArrayShape&, const ArrayShape&) = default;
};

/// Identifies one PE slot in the fabric: which array and which (row, col).
struct SlotAddress {
  std::size_t array = 0;
  std::size_t row = 0;
  std::size_t col = 0;
  friend bool operator==(const SlotAddress&, const SlotAddress&) = default;
};

/// Fixed layout constants of the virtual device.
struct GeometryLayout {
  /// 32-bit words per configuration frame.
  std::size_t words_per_frame = 8;
  /// Frames per PE slot (2 CLB columns x 5 CLBs; 1 frame per half-column
  /// chunk in this model -> 5 frames = 40 words of configuration per slot).
  std::size_t frames_per_slot = 5;
  /// CLBs per PE slot, used only by the resource model (paper: 2x5 = 10).
  std::size_t clbs_per_slot = 10;
};

class FabricGeometry {
 public:
  FabricGeometry(std::size_t num_arrays, ArrayShape shape,
                 GeometryLayout layout = {});

  [[nodiscard]] std::size_t num_arrays() const noexcept { return num_arrays_; }
  [[nodiscard]] const ArrayShape& shape() const noexcept { return shape_; }
  [[nodiscard]] const GeometryLayout& layout() const noexcept {
    return layout_;
  }

  [[nodiscard]] std::size_t words_per_slot() const noexcept {
    return layout_.words_per_frame * layout_.frames_per_slot;
  }
  [[nodiscard]] std::size_t slots_per_array() const noexcept {
    return shape_.cell_count();
  }
  [[nodiscard]] std::size_t total_slots() const noexcept {
    return num_arrays_ * slots_per_array();
  }
  /// Total configuration memory size in 32-bit words.
  [[nodiscard]] std::size_t total_words() const noexcept {
    return total_slots() * words_per_slot();
  }

  /// Linear slot index; slots are laid out array-major, then row-major
  /// inside the array (matching the vertical ACB stacking of Fig. 10).
  [[nodiscard]] std::size_t slot_index(const SlotAddress& a) const;

  /// First configuration-word address of a slot.
  [[nodiscard]] std::size_t slot_word_base(const SlotAddress& a) const {
    return slot_index(a) * words_per_slot();
  }

  /// Reverse mapping from a configuration word address to its slot.
  [[nodiscard]] SlotAddress slot_of_word(std::size_t word_addr) const;

  /// CLBs occupied by one array (paper: 160 for a 4x4 with 2x5-CLB PEs;
  /// the full clock region including routing overhead).
  [[nodiscard]] std::size_t clbs_per_array() const noexcept {
    return slots_per_array() * layout_.clbs_per_slot +
           shape_.rows * shape_.cols;  // interconnect margin per cell
  }

 private:
  std::size_t num_arrays_;
  ArrayShape shape_;
  GeometryLayout layout_;
};

}  // namespace ehw::fpga
