#pragma once
// Configuration scrubbing: "reading the configuration memory to check for
// faults, and re-writing it in case that any fault is found" (§II). The
// scrubber compares the actual plane against the intended plane and
// rewrites deviating words. SEUs disappear; stuck-at (LPD) bits survive —
// which is exactly how the self-healing controllers classify a fault as
// transient or permanent (§V.A steps f-i, §V.B steps d-g).

#include <cstddef>

#include "ehw/fpga/config_memory.hpp"
#include "ehw/fpga/geometry.hpp"
#include "ehw/sim/time.hpp"

namespace ehw::fpga {

struct ScrubReport {
  std::size_t words_checked = 0;
  std::size_t words_corrected = 0;   // deviations rewritten
  std::size_t words_uncorrectable = 0;  // still deviating after rewrite (LPD)
  sim::SimTime duration = 0;
  [[nodiscard]] bool found_fault() const noexcept {
    return words_corrected + words_uncorrectable > 0;
  }
};

class Scrubber {
 public:
  /// `word_time` is the simulated cost of readback+verify+conditional
  /// rewrite per configuration word (default: 4 ICAP cycles @ 100 MHz).
  Scrubber(ConfigMemory& memory, const FabricGeometry& geometry,
           sim::SimTime word_time = sim::cycles_at_mhz(4, 100.0));

  /// Scrubs one PE slot.
  ScrubReport scrub_slot(const SlotAddress& slot);

  /// Scrubs every slot of one array ("rewrite last reconfiguration in the
  /// damaged array").
  ScrubReport scrub_array(std::size_t array_index);

  /// Full-device scrub (blind scrubbing pass).
  ScrubReport scrub_all();

 private:
  ScrubReport scrub_range(std::size_t base, std::size_t words);

  ConfigMemory& memory_;
  const FabricGeometry& geometry_;
  sim::SimTime word_time_;
};

}  // namespace ehw::fpga
