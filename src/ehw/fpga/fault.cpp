#include "ehw/fpga/fault.hpp"

#include <sstream>

namespace ehw::fpga {

FaultInjector::FaultInjector(ConfigMemory& memory,
                             const FabricGeometry& geometry,
                             std::uint64_t seed)
    : memory_(memory), geometry_(geometry), rng_(seed) {}

FaultRecord FaultInjector::inject_seu_in_slot(const SlotAddress& slot) {
  const std::size_t base = geometry_.slot_word_base(slot);
  const std::size_t word =
      base + rng_.below(geometry_.words_per_slot());
  const auto bit = static_cast<unsigned>(rng_.below(32));
  memory_.flip_bit(word, bit);
  FaultRecord rec{FaultKind::kSeu, slot, word, bit, false};
  journal_.push_back(rec);
  return rec;
}

FaultRecord FaultInjector::inject_seu_anywhere() {
  const std::size_t word = rng_.below(memory_.size());
  const auto bit = static_cast<unsigned>(rng_.below(32));
  memory_.flip_bit(word, bit);
  FaultRecord rec{FaultKind::kSeu, geometry_.slot_of_word(word), word, bit,
                  false};
  journal_.push_back(rec);
  return rec;
}

FaultRecord FaultInjector::inject_lpd_in_slot(const SlotAddress& slot) {
  const std::size_t base = geometry_.slot_word_base(slot);
  const std::size_t word = base + rng_.below(geometry_.words_per_slot());
  const auto bit = static_cast<unsigned>(rng_.below(32));
  // Stick the bit at the complement of its current value so the fault is
  // guaranteed to corrupt the presently configured circuit.
  const bool current = (memory_.read(word) >> bit) & 1u;
  return inject_lpd(word, bit, !current);
}

FaultRecord FaultInjector::inject_lpd(std::size_t word, unsigned bit,
                                      bool stuck_value) {
  memory_.set_stuck_bit(word, bit, stuck_value);
  FaultRecord rec{FaultKind::kLpd, geometry_.slot_of_word(word), word, bit,
                  stuck_value};
  journal_.push_back(rec);
  return rec;
}

std::string FaultInjector::describe(const FaultRecord& record) {
  std::ostringstream os;
  switch (record.kind) {
    case FaultKind::kSeu: os << "SEU"; break;
    case FaultKind::kLpd: os << "LPD(stuck-" << (record.stuck_value ? 1 : 0)
                             << ")"; break;
    case FaultKind::kDummyPe: os << "DummyPE"; break;
  }
  os << " array=" << record.slot.array << " pe=(" << record.slot.row << ','
     << record.slot.col << ") word=" << record.word << " bit=" << record.bit;
  return os.str();
}

}  // namespace ehw::fpga
