#pragma once
// Fault injection. Mirrors §VI.D: "faults are generated reconfiguring
// dynamically the desired position of the array, with a modified bitstream
// corresponding to a dummy PE, which generates a random value in its
// output" (the PE-level model), plus raw configuration-plane SEUs and
// stuck-at LPDs for the finer-grained campaigns.

#include <cstdint>
#include <string>
#include <vector>

#include "ehw/common/rng.hpp"
#include "ehw/fpga/config_memory.hpp"
#include "ehw/fpga/geometry.hpp"

namespace ehw::fpga {

enum class FaultKind : std::uint8_t {
  kSeu,       // transient bit flip; cleared by scrubbing
  kLpd,       // permanent stuck-at bit; survives rewrites
  kDummyPe,   // paper's PE-level model: slot overwritten with a dummy PBS
};

struct FaultRecord {
  FaultKind kind = FaultKind::kSeu;
  SlotAddress slot{};
  std::size_t word = 0;   // absolute config word address (kSeu / kLpd)
  unsigned bit = 0;       // bit within the word (kSeu / kLpd)
  bool stuck_value = false;  // kLpd only
};

/// Injects faults and keeps a journal so experiments can report exactly
/// what was injected where.
class FaultInjector {
 public:
  FaultInjector(ConfigMemory& memory, const FabricGeometry& geometry,
                std::uint64_t seed);

  /// Flips a uniformly random bit within the given slot's footprint.
  FaultRecord inject_seu_in_slot(const SlotAddress& slot);

  /// Flips a uniformly random bit anywhere in configuration memory.
  FaultRecord inject_seu_anywhere();

  /// Declares a random stuck-at bit within the slot (value = current bit
  /// complement, so the damage is observable immediately).
  FaultRecord inject_lpd_in_slot(const SlotAddress& slot);

  /// Declares a stuck-at bit at an explicit location.
  FaultRecord inject_lpd(std::size_t word, unsigned bit, bool stuck_value);

  [[nodiscard]] const std::vector<FaultRecord>& journal() const noexcept {
    return journal_;
  }
  void clear_journal() noexcept { journal_.clear(); }

  /// Human-readable one-liner for logs.
  [[nodiscard]] static std::string describe(const FaultRecord& record);

 private:
  ConfigMemory& memory_;
  const FabricGeometry& geometry_;
  Rng rng_;
  std::vector<FaultRecord> journal_;
};

}  // namespace ehw::fpga
