#include "ehw/fpga/geometry.hpp"

namespace ehw::fpga {

FabricGeometry::FabricGeometry(std::size_t num_arrays, ArrayShape shape,
                               GeometryLayout layout)
    : num_arrays_(num_arrays), shape_(shape), layout_(layout) {
  EHW_REQUIRE(num_arrays_ > 0, "fabric needs at least one array");
  EHW_REQUIRE(shape_.rows > 0 && shape_.cols > 0, "array shape degenerate");
  EHW_REQUIRE(layout_.words_per_frame > 0 && layout_.frames_per_slot > 0,
              "layout degenerate");
}

std::size_t FabricGeometry::slot_index(const SlotAddress& a) const {
  EHW_REQUIRE(a.array < num_arrays_, "array index out of range");
  EHW_REQUIRE(a.row < shape_.rows && a.col < shape_.cols,
              "slot coordinates out of range");
  return (a.array * shape_.rows + a.row) * shape_.cols + a.col;
}

SlotAddress FabricGeometry::slot_of_word(std::size_t word_addr) const {
  EHW_REQUIRE(word_addr < total_words(), "word address out of range");
  const std::size_t slot = word_addr / words_per_slot();
  SlotAddress a;
  a.col = slot % shape_.cols;
  const std::size_t t = slot / shape_.cols;
  a.row = t % shape_.rows;
  a.array = t / shape_.rows;
  return a;
}

}  // namespace ehw::fpga
