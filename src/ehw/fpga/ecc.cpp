#include "ehw/fpga/ecc.hpp"

#include <bit>

namespace ehw::fpga {

FrameEcc::FrameEcc(const FabricGeometry& geometry, sim::SimTime frame_time)
    : geometry_(geometry),
      words_per_frame_(geometry.layout().words_per_frame),
      frame_time_(frame_time) {
  const std::size_t frames =
      geometry.total_words() / words_per_frame_;
  stored_.resize(frames);
}

FrameEcc::Syndrome FrameEcc::compute_syndrome(const ConfigMemory& memory,
                                              std::size_t frame) const {
  EHW_REQUIRE(frame < stored_.size(), "frame index out of range");
  Syndrome s;
  const std::size_t base = frame_base_word(frame);
  std::uint32_t ones = 0;
  for (std::size_t w = 0; w < words_per_frame_; ++w) {
    const ConfigWord word = memory.read(base + w);
    ones += static_cast<std::uint32_t>(std::popcount(word));
    // XOR of the 1-based positions of all set bits (Hamming construction).
    ConfigWord rest = word;
    while (rest != 0) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(rest));
      rest &= rest - 1;
      s.position ^= static_cast<std::uint32_t>(w * 32 + bit + 1);
    }
  }
  s.parity = (ones & 1u) != 0;
  return s;
}

void FrameEcc::resync_all(const ConfigMemory& memory) {
  for (std::size_t f = 0; f < stored_.size(); ++f) {
    stored_[f] = compute_syndrome(memory, f);
  }
}

void FrameEcc::resync_slot(const ConfigMemory& memory,
                           const SlotAddress& slot) {
  const std::size_t base = geometry_.slot_word_base(slot);
  const std::size_t first_frame = base / words_per_frame_;
  const std::size_t frames = geometry_.layout().frames_per_slot;
  for (std::size_t f = first_frame; f < first_frame + frames; ++f) {
    stored_[f] = compute_syndrome(memory, f);
  }
}

EccFrameCheck FrameEcc::check_and_correct_frame(ConfigMemory& memory,
                                                std::size_t frame) {
  EHW_REQUIRE(frame < stored_.size(), "frame index out of range");
  EccFrameCheck result;
  result.frame = frame;
  const Syndrome now = compute_syndrome(memory, frame);
  const std::uint32_t delta_position = now.position ^ stored_[frame].position;
  const bool delta_parity = now.parity != stored_[frame].parity;

  if (delta_position == 0 && !delta_parity) {
    result.status = EccStatus::kClean;
    return result;
  }
  if (delta_parity && delta_position != 0 &&
      delta_position <= words_per_frame_ * 32) {
    // Odd number of flips with an in-range position signature: single-bit
    // upset at 1-based position delta_position. Repair in place. (An odd
    // multi-flip can alias to a valid position — the classic SECDED
    // limitation — but then mis-corrects exactly as real frame ECC would.)
    const std::uint32_t pos = delta_position - 1;
    const std::size_t word = frame_base_word(frame) + pos / 32;
    const unsigned bit = pos % 32;
    memory.flip_bit(word, bit);
    result.status = EccStatus::kCorrectedSingle;
    result.corrected_word = word;
    result.corrected_bit = bit;
    return result;
  }
  // Even flip count (parity clean, syndrome dirty) or parity-only change:
  // detectable, not correctable.
  result.status = EccStatus::kDetectedDouble;
  return result;
}

std::size_t FrameEcc::SweepReport::corrected() const noexcept {
  std::size_t n = 0;
  for (const auto& f : findings) {
    n += f.status == EccStatus::kCorrectedSingle ? 1 : 0;
  }
  return n;
}

std::size_t FrameEcc::SweepReport::uncorrectable() const noexcept {
  std::size_t n = 0;
  for (const auto& f : findings) {
    n += f.status == EccStatus::kDetectedDouble ? 1 : 0;
  }
  return n;
}

FrameEcc::SweepReport FrameEcc::blind_scrub(ConfigMemory& memory) {
  SweepReport report;
  for (std::size_t f = 0; f < stored_.size(); ++f) {
    const EccFrameCheck check = check_and_correct_frame(memory, f);
    if (check.status != EccStatus::kClean) report.findings.push_back(check);
  }
  report.duration = static_cast<sim::SimTime>(stored_.size()) * frame_time_;
  return report;
}

}  // namespace ehw::fpga
