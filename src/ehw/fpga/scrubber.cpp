#include "ehw/fpga/scrubber.hpp"

namespace ehw::fpga {

Scrubber::Scrubber(ConfigMemory& memory, const FabricGeometry& geometry,
                   sim::SimTime word_time)
    : memory_(memory), geometry_(geometry), word_time_(word_time) {}

ScrubReport Scrubber::scrub_range(std::size_t base, std::size_t words) {
  ScrubReport report;
  report.words_checked = words;
  for (std::size_t i = 0; i < words; ++i) {
    const std::size_t addr = base + i;
    if (memory_.read(addr) != memory_.read_intended(addr)) {
      memory_.rewrite(addr);
      if (memory_.read(addr) == memory_.read_intended(addr)) {
        ++report.words_corrected;
      } else {
        ++report.words_uncorrectable;  // stuck-at damage
      }
    }
  }
  report.duration = static_cast<sim::SimTime>(words) * word_time_;
  return report;
}

ScrubReport Scrubber::scrub_slot(const SlotAddress& slot) {
  return scrub_range(geometry_.slot_word_base(slot),
                     geometry_.words_per_slot());
}

ScrubReport Scrubber::scrub_array(std::size_t array_index) {
  ScrubReport total;
  for (std::size_t r = 0; r < geometry_.shape().rows; ++r) {
    for (std::size_t c = 0; c < geometry_.shape().cols; ++c) {
      const ScrubReport part = scrub_slot({array_index, r, c});
      total.words_checked += part.words_checked;
      total.words_corrected += part.words_corrected;
      total.words_uncorrectable += part.words_uncorrectable;
      total.duration += part.duration;
    }
  }
  return total;
}

ScrubReport Scrubber::scrub_all() {
  ScrubReport total;
  for (std::size_t a = 0; a < geometry_.num_arrays(); ++a) {
    const ScrubReport part = scrub_array(a);
    total.words_checked += part.words_checked;
    total.words_corrected += part.words_corrected;
    total.words_uncorrectable += part.words_uncorrectable;
    total.duration += part.duration;
  }
  return total;
}

}  // namespace ehw::fpga
