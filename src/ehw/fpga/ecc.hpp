#pragma once
// Frame-level SECDED ECC — the realistic scrubbing aid the Virtex-5
// family actually ships (each configuration frame carries ECC syndrome
// bits). It enables BLIND scrubbing: a scrubber that walks the fabric can
// detect and repair single-bit upsets from the frame contents alone,
// without the golden-image comparison our readback scrubber uses — the
// "realistic fault models" direction of the paper's future work.
//
// Implementation: an extended Hamming code over the frame's data bits.
// The syndrome is computed over bit positions; a single flipped bit yields
// its position as the syndrome, a double flip is detected (overall parity
// clean but syndrome non-zero, or vice versa) but not correctable.

#include <cstdint>
#include <vector>

#include "ehw/fpga/config_memory.hpp"
#include "ehw/fpga/geometry.hpp"
#include "ehw/sim/time.hpp"

namespace ehw::fpga {

/// Outcome of checking one frame against its stored ECC.
enum class EccStatus : std::uint8_t {
  kClean = 0,         // syndrome zero, parity even
  kCorrectedSingle,   // one bit flipped; position identified and fixed
  kDetectedDouble,    // two flips detected; not correctable by ECC
};

struct EccFrameCheck {
  EccStatus status = EccStatus::kClean;
  std::size_t frame = 0;
  std::size_t corrected_word = 0;  // valid for kCorrectedSingle
  unsigned corrected_bit = 0;
};

/// SECDED codec + blind scrubber over the fabric's frames.
class FrameEcc {
 public:
  FrameEcc(const FabricGeometry& geometry, sim::SimTime frame_time =
                                               sim::cycles_at_mhz(16, 100.0));

  [[nodiscard]] std::size_t frame_count() const noexcept {
    return stored_.size();
  }

  /// (Re)computes and stores the syndrome of every frame from the CURRENT
  /// actual contents — done after each deliberate configuration write,
  /// exactly like the device recomputes frame ECC on writeback.
  void resync_all(const ConfigMemory& memory);
  /// Resyncs only the frames covering one slot (after a PE write).
  void resync_slot(const ConfigMemory& memory, const SlotAddress& slot);

  /// Checks one frame; on a single-bit upset repairs it IN PLACE (blind
  /// correction: no golden image involved).
  EccFrameCheck check_and_correct_frame(ConfigMemory& memory,
                                        std::size_t frame);

  /// Walks every frame; returns all non-clean outcomes and the simulated
  /// duration of the pass.
  struct SweepReport {
    std::vector<EccFrameCheck> findings;
    sim::SimTime duration = 0;
    [[nodiscard]] std::size_t corrected() const noexcept;
    [[nodiscard]] std::size_t uncorrectable() const noexcept;
  };
  SweepReport blind_scrub(ConfigMemory& memory);

  /// --- codec internals exposed for tests -----------------------------------
  struct Syndrome {
    std::uint32_t position = 0;  // XOR of 1-based flipped-bit positions
    bool parity = false;         // overall parity of the frame bits
    friend bool operator==(const Syndrome&, const Syndrome&) = default;
  };
  [[nodiscard]] Syndrome compute_syndrome(const ConfigMemory& memory,
                                          std::size_t frame) const;

 private:
  [[nodiscard]] std::size_t frame_base_word(std::size_t frame) const {
    return frame * words_per_frame_;
  }

  const FabricGeometry& geometry_;
  std::size_t words_per_frame_;
  sim::SimTime frame_time_;
  std::vector<Syndrome> stored_;
};

}  // namespace ehw::fpga
