#pragma once
// Partial bitstreams (PBS). A PBS is the slot-sized payload of
// configuration words that implements one PE function; the reconfiguration
// engine relocates the same payload to any slot (the paper stores one
// pre-synthesized PBS per PE type in DDR and relocates it on the fly).

#include <cstdint>
#include <string>
#include <vector>

#include "ehw/fpga/config_memory.hpp"

namespace ehw::fpga {

class PartialBitstream {
 public:
  PartialBitstream() = default;
  PartialBitstream(std::string name, std::vector<ConfigWord> payload)
      : name_(std::move(name)), payload_(std::move(payload)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<ConfigWord>& payload() const noexcept {
    return payload_;
  }
  [[nodiscard]] std::size_t word_count() const noexcept {
    return payload_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return payload_.empty(); }

  friend bool operator==(const PartialBitstream& a,
                         const PartialBitstream& b) noexcept {
    return a.payload_ == b.payload_;
  }

 private:
  std::string name_;
  std::vector<ConfigWord> payload_;
};

/// Reads `words` configuration words starting at `base` back from the
/// actual configuration plane (the engine's readback feature).
[[nodiscard]] PartialBitstream readback(const ConfigMemory& memory,
                                        std::size_t base, std::size_t words,
                                        std::string name = "readback");

/// Writes a PBS payload at `base` (the engine's write/relocate feature).
void write_payload(ConfigMemory& memory, std::size_t base,
                   const PartialBitstream& pbs);

}  // namespace ehw::fpga
