#include "ehw/fpga/bitstream.hpp"

namespace ehw::fpga {

PartialBitstream readback(const ConfigMemory& memory, std::size_t base,
                          std::size_t words, std::string name) {
  EHW_REQUIRE(base + words <= memory.size(), "readback out of range");
  std::vector<ConfigWord> payload(words);
  for (std::size_t i = 0; i < words; ++i) payload[i] = memory.read(base + i);
  return PartialBitstream(std::move(name), std::move(payload));
}

void write_payload(ConfigMemory& memory, std::size_t base,
                   const PartialBitstream& pbs) {
  EHW_REQUIRE(base + pbs.word_count() <= memory.size(),
              "bitstream write out of range");
  for (std::size_t i = 0; i < pbs.word_count(); ++i) {
    memory.write(base + i, pbs.payload()[i]);
  }
}

}  // namespace ehw::fpga
