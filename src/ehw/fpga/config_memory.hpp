#pragma once
// SRAM configuration memory model.
//
// Two planes are kept per word:
//   * `actual`   - what the SRAM cells currently hold (what the hardware
//                  decodes into circuit behaviour);
//   * `intended` - what the last deliberate write wanted (the golden image
//                  the scrubber compares against, exactly like scrubbing on
//                  the real device compares against the stored bitstream).
// Faults:
//   * SEU  = a bit flip in `actual` only. A scrub rewrite restores it.
//   * LPD  = stuck-at bits: a (mask, value) pair per word that every write
//            forces, so neither scrubbing nor reconfiguration can clear it.
// This is precisely the transient/permanent distinction of §II and §V.

#include <cstdint>
#include <vector>

#include "ehw/common/assert.hpp"

namespace ehw::fpga {

using ConfigWord = std::uint32_t;

class ConfigMemory {
 public:
  explicit ConfigMemory(std::size_t words);

  [[nodiscard]] std::size_t size() const noexcept { return actual_.size(); }

  /// The value hardware sees.
  [[nodiscard]] ConfigWord read(std::size_t addr) const;
  /// The value the last deliberate write intended (golden/scrub reference).
  [[nodiscard]] ConfigWord read_intended(std::size_t addr) const;

  /// Deliberate configuration write: records intent, then stores the value
  /// with stuck-at bits forced.
  void write(std::size_t addr, ConfigWord value);

  /// Re-applies the already-intended value (a scrub rewrite): clears SEUs,
  /// cannot clear stuck bits. Returns true if `actual` changed.
  bool rewrite(std::size_t addr);

  /// --- fault plane -------------------------------------------------------

  /// Flips one actual bit (Single Event Upset).
  void flip_bit(std::size_t addr, unsigned bit);

  /// Declares a stuck-at bit (Local Permanent Damage): the bit reads as
  /// `stuck_value` forever and writes cannot change it.
  void set_stuck_bit(std::size_t addr, unsigned bit, bool stuck_value);

  /// Removes a stuck-at bit (used by tests to model repair/replacement).
  void clear_stuck_bit(std::size_t addr, unsigned bit);

  [[nodiscard]] ConfigWord stuck_mask(std::size_t addr) const;

  /// Number of words whose actual value differs from intent (upset words).
  [[nodiscard]] std::size_t upset_word_count() const noexcept;

  /// Number of declared stuck bits over the whole memory.
  [[nodiscard]] std::size_t stuck_bit_count() const noexcept;

 private:
  void check(std::size_t addr) const {
    EHW_REQUIRE(addr < actual_.size(), "config address out of range");
  }
  [[nodiscard]] ConfigWord apply_stuck(std::size_t addr,
                                       ConfigWord v) const noexcept {
    return (v & ~stuck_mask_[addr]) | (stuck_value_[addr] & stuck_mask_[addr]);
  }

  std::vector<ConfigWord> actual_;
  std::vector<ConfigWord> intended_;
  std::vector<ConfigWord> stuck_mask_;
  std::vector<ConfigWord> stuck_value_;
};

}  // namespace ehw::fpga
