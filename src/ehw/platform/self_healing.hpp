#pragma once
// Self-healing controllers implementing the two strategies of §V.
//
// CascadeSelfHealing (§V.A, steps a-i):
//   a) initial evolution selects a working circuit per array;
//   b) the baseline fitness of every array on a CALIBRATION image is
//      recorded;
//   c-d) mission runs until the next calibration check re-measures;
//   e) equal fitness -> healthy, keep running;
//   f) deviation -> scrub the damaged array;
//   g-h) re-measure: back to baseline -> fault was TRANSIENT (SEU);
//   i) still deviating -> PERMANENT: set the array to BYPASS (stream keeps
//      flowing) and recover by re-evolution against a reference if one is
//      still available, else by EVOLUTION BY IMITATION from a neighbour.
//
// TmrSelfHealing (§V.B, steps a-h):
//   a) one evolved circuit is configured into all three arrays (parallel
//      mode);
//   b-c) each frame, the hardware FITNESS VOTER compares the three
//      per-array fitness readings (vs the pixel-voted output) within a
//      similarity threshold; the PIXEL VOTER keeps a valid output flowing;
//   d-f) divergence -> scrub the suspect; recovered -> transient;
//   g) still diverging -> permanent -> evolution by imitation from a
//      healthy neighbour;
//   h) if imitation does not reach fitness 0, the recovered chromosome can
//      be pasted into every array to re-align the TMR voter.

#include <optional>
#include <string>
#include <vector>

#include "ehw/platform/imitation.hpp"
#include "ehw/platform/platform.hpp"
#include "ehw/platform/voter.hpp"

namespace ehw::platform {

enum class HealingEventKind : std::uint8_t {
  kBaselineRecorded,
  kCheckPassed,
  kDivergenceDetected,
  kScrubbed,
  kTransientRecovered,
  kPermanentDeclared,
  kBypassEngaged,
  kImitationRecovered,
  kReEvolved,
  kGenotypePasted,
};

struct HealingEvent {
  sim::SimTime time = 0;
  std::size_t array = 0;
  HealingEventKind kind = HealingEventKind::kCheckPassed;
  Fitness fitness = 0;
  std::string detail;
};

[[nodiscard]] std::string_view healing_event_name(HealingEventKind kind);

/// ---------------------------------------------------------------------------
class CascadeSelfHealing {
 public:
  struct Config {
    /// Calibration input and the expected (reference) output used to
    /// obtain a *known* fitness value per §V.A step b.
    img::Image calibration_input;
    img::Image calibration_reference;
    /// Tolerance when comparing baseline and re-measured fitness (the
    /// stream is deterministic here, so 0 is exact equality).
    Fitness tolerance = 0;
    /// ES settings for recovery runs (imitation / re-evolution).
    evo::EsConfig recovery_es;
    /// When false, the reference image is treated as LOST after baseline
    /// recording: recovery can only use evolution by imitation.
    bool reference_available = true;
  };

  CascadeSelfHealing(EvolvablePlatform& platform,
                     std::vector<std::size_t> arrays, Config config);

  /// Step b: record per-array baseline fitness on the calibration image.
  void record_baseline();

  /// Steps c-i for one calibration period. Returns true when every array
  /// checks healthy (possibly after recovery).
  bool run_calibration_check();

  [[nodiscard]] const std::vector<HealingEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] Fitness baseline(std::size_t stage) const;

 private:
  /// Steps f-i for one damaged array; returns final healthy/recovered flag.
  bool heal(std::size_t stage, Fitness measured);
  Fitness measure(std::size_t stage);
  void log(std::size_t array, HealingEventKind kind, Fitness fitness,
           std::string detail = "");

  EvolvablePlatform& platform_;
  std::vector<std::size_t> arrays_;
  Config config_;
  std::vector<Fitness> baseline_;
  std::vector<HealingEvent> events_;
};

/// ---------------------------------------------------------------------------
class TmrSelfHealing {
 public:
  struct Config {
    /// Similarity threshold of the fitness voter (§V.B: tolerates the
    /// residual divergence of an imitation-recovered array).
    Fitness voter_threshold = 0;
    /// ES settings for the imitation recovery.
    evo::EsConfig recovery_es;
    /// Step h: paste the recovered chromosome into every array when the
    /// imitation residual is non-zero.
    bool paste_on_partial_recovery = true;
  };

  struct FrameResult {
    img::Image voted;                 // pixel-voter output (always valid)
    std::array<Fitness, 3> fitness{};  // per-array fitness vs voted output
    FitnessVote vote;                 // fitness-voter verdict
    bool recovered_this_frame = false;
  };

  /// `arrays` must name exactly three platform arrays (§V.B: "only three
  /// parallel arrays are considered").
  TmrSelfHealing(EvolvablePlatform& platform, std::array<std::size_t, 3> arrays,
                 Config config);

  /// Step a: configure `circuit` into all three arrays.
  void deploy(const evo::Genotype& circuit);

  /// Steps b-h for one frame: vote, detect, and — when a divergence is
  /// found — scrub, classify and recover without dropping the frame
  /// (the pixel-voted output remains valid throughout).
  FrameResult process_frame(const img::Image& input);

  [[nodiscard]] const std::vector<HealingEvent>& events() const noexcept {
    return events_;
  }

  /// Per-array residual allowance. §V.B: "expected fitness from the
  /// damaged filter may be different to the undamaged counterparts. To
  /// cope with this situation, a similarity threshold can be defined in
  /// the voter." After a partial recovery the recovering array's known
  /// residual is discounted before voting, so the same (already mitigated)
  /// fault is not re-flagged every frame while NEW faults still are.
  [[nodiscard]] Fitness allowance(std::size_t position) const {
    EHW_REQUIRE(position < 3, "TMR position out of range");
    return allowance_[position];
  }

 private:
  void log(std::size_t array, HealingEventKind kind, Fitness fitness,
           std::string detail = "");
  /// Steps d-h once the voter blames `faulty`.
  void heal(std::size_t faulty, const img::Image& input);

  EvolvablePlatform& platform_;
  std::array<std::size_t, 3> arrays_;
  Config config_;
  FitnessVoter voter_;
  std::array<Fitness, 3> allowance_{0, 0, 0};
  std::vector<HealingEvent> events_;
};

}  // namespace ehw::platform
