#include "ehw/platform/fitness_unit.hpp"

namespace ehw::platform {

Fitness FitnessUnit::measure(const img::Image& a, const img::Image& b) {
  last_ = img::aggregated_mae(a, b);
  valid_ = true;
  return last_;
}

}  // namespace ehw::platform
