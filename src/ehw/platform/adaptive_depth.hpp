#pragma once
// Adaptive cascade depth — §VII: "the cascaded modes offer unrivaled
// quality, which could be adjusted by selecting a variable number of
// stages", and the future-work plan of scaling the architecture to demand.
//
// The controller grows the active chain one stage at a time (evolving the
// new stage on the current chain output, exactly like sequential
// collaborative cascade evolution) and stops as soon as the chain fitness
// reaches the quality target — unused arrays stay in BYPASS, available as
// spares for the self-healing strategies.

#include <vector>

#include "ehw/evo/es.hpp"
#include "ehw/platform/platform.hpp"

namespace ehw::platform {

struct AdaptiveDepthConfig {
  /// Stop growing once the chain fitness is at or below this target.
  Fitness target = 0;
  /// Per-stage evolution budget.
  evo::EsConfig es;
};

struct AdaptiveDepthResult {
  /// Stages actually activated (1..num arrays).
  std::size_t depth = 0;
  /// Chain fitness after each activated stage (size == depth).
  std::vector<Fitness> fitness_per_depth;
  /// True when the target was met within the available arrays.
  bool target_met = false;
  sim::SimTime duration = 0;
};

/// Grows the cascade over `arrays` (in order) until `config.target` is met
/// or every array is active. On return the platform has the first
/// `result.depth` arrays configured and active, the rest bypassed.
AdaptiveDepthResult grow_cascade_to_target(
    EvolvablePlatform& platform, const std::vector<std::size_t>& arrays,
    const img::Image& train, const img::Image& reference,
    const AdaptiveDepthConfig& config);

}  // namespace ehw::platform
