#pragma once
// Independent Cascaded mode (§IV.A): "different filters are also used in
// each stage, but in this case, each one is in charge of a different task,
// such as noise removal, followed by a smoothing filter, and then edge
// detection. ... each stage is specialized in a different task, and it
// will be obtained by evolving against different reference images."
//
// Stage i trains on the output of stage i-1 and evolves toward its OWN
// reference image; the deployed chain then executes the whole multi-task
// pipeline in one streaming pass.

#include <vector>

#include "ehw/evo/es.hpp"
#include "ehw/platform/platform.hpp"

namespace ehw::platform {

struct IndependentCascadeConfig {
  /// Per-stage ES parameters (`generations` is the per-stage budget).
  evo::EsConfig es;
};

struct IndependentCascadeStage {
  evo::Genotype best;
  /// Fitness of the stage against ITS OWN reference, on its actual input.
  Fitness fitness = kInvalidFitness;
};

struct IndependentCascadeResult {
  std::vector<IndependentCascadeStage> stages;
  sim::SimTime duration = 0;
};

/// Evolves stage s (on arrays[s]) to map the chain stream onto
/// `stage_references[s]`. Leaves every stage's best chromosome configured,
/// so `platform.process_cascade` afterwards runs the full pipeline.
IndependentCascadeResult evolve_independent_cascade(
    EvolvablePlatform& platform, const std::vector<std::size_t>& arrays,
    const img::Image& input,
    const std::vector<img::Image>& stage_references,
    const IndependentCascadeConfig& config);

}  // namespace ehw::platform
