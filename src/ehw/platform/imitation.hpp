#pragma once
// Evolution by Imitation (§IV.B, Fig. 7) — the paper's headline proposal:
// a (typically faulty) array is placed in BYPASS so the mission stream
// keeps flowing, while its chromosome evolves to minimize the MAE between
// ITS OWN output and a neighbouring working array's output. No reference
// image is needed — the apprentice learns the master's transfer function
// from live data, which is what makes recovery possible after the
// training/reference images are lost (§V.A).

#include "ehw/evo/es.hpp"
#include "ehw/platform/platform.hpp"

namespace ehw::platform {

struct ImitationConfig {
  evo::EsConfig es;
  /// Fig. 19 compares starting the apprentice from the master's genotype
  /// ("imitation performs better if the starting genotype is the same as
  /// the non-faulty one") against a random restart.
  bool start_from_master = true;
};

struct ImitationResult {
  evo::EsResult es;  // fitness = MAE(apprentice output, master output)
  sim::SimTime duration = 0;
  /// Fitness of the final best chromosome, re-measured on the stream
  /// (equals es.best_fitness; kept for clarity in reports).
  Fitness residual = kInvalidFitness;
};

/// Evolves array `apprentice` to imitate array `master` on `stream`.
/// Leaves the best chromosome configured on the apprentice and restores
/// its bypass flag to its pre-call value.
ImitationResult evolve_by_imitation(EvolvablePlatform& platform,
                                    std::size_t apprentice,
                                    std::size_t master,
                                    const img::Image& stream,
                                    const ImitationConfig& config);

}  // namespace ehw::platform
