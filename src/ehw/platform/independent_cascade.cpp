#include "ehw/platform/independent_cascade.hpp"

#include "ehw/platform/evolution_driver.hpp"

namespace ehw::platform {

IndependentCascadeResult evolve_independent_cascade(
    EvolvablePlatform& platform, const std::vector<std::size_t>& arrays,
    const img::Image& input,
    const std::vector<img::Image>& stage_references,
    const IndependentCascadeConfig& config) {
  EHW_REQUIRE(!arrays.empty(), "need at least one stage");
  EHW_REQUIRE(arrays.size() == stage_references.size(),
              "one reference image per stage");
  for (const auto& ref : stage_references) {
    EHW_REQUIRE(ref.same_shape(input), "reference shape mismatch");
  }

  const sim::SimTime t_start = platform.now();
  IndependentCascadeResult result;
  result.stages.reserve(arrays.size());

  img::Image stream = input;
  for (std::size_t s = 0; s < arrays.size(); ++s) {
    evo::EsConfig es = config.es;
    es.seed = config.es.seed + 7919 * s;
    const IntrinsicResult r = evolve_on_platform(
        platform, {arrays[s]}, stream, stage_references[s], es);
    platform.configure_array(arrays[s], r.es.best, platform.now());
    IndependentCascadeStage stage;
    stage.best = r.es.best;
    stage.fitness = r.es.best_fitness;
    result.stages.push_back(std::move(stage));
    stream = platform.filter_array(arrays[s], stream);
  }
  result.duration = platform.now() - t_start;
  return result;
}

}  // namespace ehw::platform
