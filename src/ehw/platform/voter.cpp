#include "ehw/platform/voter.hpp"

#include <algorithm>

#include "ehw/common/assert.hpp"

namespace ehw::platform {

FitnessVote FitnessVoter::vote(const std::array<Fitness, 3>& f) const {
  const bool ab = close(f[0], f[1]);
  const bool ac = close(f[0], f[2]);
  const bool bc = close(f[1], f[2]);
  FitnessVote v;
  if (ab && ac && bc) return v;  // unanimous
  if (ab && !ac && !bc) {
    v.faulty = 2;
  } else if (ac && !ab && !bc) {
    v.faulty = 1;
  } else if (bc && !ab && !ac) {
    v.faulty = 0;
  } else if (ab && ac && !bc) {
    // 0 agrees with both 1 and 2 but they disagree with each other: the
    // threshold chain is ambiguous; report inconclusive.
    v.inconclusive = true;
  } else if ((ab && bc && !ac) || (ac && bc && !ab)) {
    v.inconclusive = true;
  } else {
    v.inconclusive = true;  // no two agree
  }
  return v;
}

PixelVoteResult PixelVoter::vote(const img::Image& a, const img::Image& b,
                                 const img::Image& c) {
  EHW_REQUIRE(a.same_shape(b) && b.same_shape(c),
              "voter inputs must share a shape");
  PixelVoteResult result;
  result.majority = img::Image(a.width(), a.height());
  for (std::size_t y = 0; y < a.height(); ++y) {
    const Pixel* ra = a.row(y);
    const Pixel* rb = b.row(y);
    const Pixel* rc = c.row(y);
    Pixel* rm = result.majority.row(y);
    for (std::size_t x = 0; x < a.width(); ++x) {
      const Pixel pa = ra[x];
      const Pixel pb = rb[x];
      const Pixel pc = rc[x];
      Pixel out;
      if (pa == pb || pa == pc) {
        out = pa;
      } else if (pb == pc) {
        out = pb;
      } else {
        // No exact majority: emit the median of the three values.
        out = std::max(std::min(pa, pb), std::min(std::max(pa, pb), pc));
        ++result.no_majority;
      }
      rm[x] = out;
      if (pa != out) ++result.outvoted[0];
      if (pb != out) ++result.outvoted[1];
      if (pc != out) ++result.outvoted[2];
    }
  }
  return result;
}

}  // namespace ehw::platform
