#include "ehw/platform/evolution_driver.hpp"

#include <algorithm>

#include "ehw/evo/offspring.hpp"

namespace ehw::platform {

IntrinsicResult evolve_mission(WaveExecutor& executor, const img::Image& train,
                               const img::Image& reference,
                               const evo::EsConfig& config,
                               const evo::Genotype* initial,
                               const CheckpointPolicy* checkpoint) {
  EvolvablePlatform& platform = executor.platform();
  const std::vector<std::size_t>& arrays = executor.lanes();
  EHW_REQUIRE(!arrays.empty(), "need at least one evaluation lane");
  EHW_REQUIRE(train.same_shape(reference), "train/reference shape mismatch");
  for (const std::size_t a : arrays) {
    EHW_REQUIRE(a < platform.num_arrays(), "lane array out of range");
  }
  const MissionCheckpoint* resume =
      checkpoint != nullptr ? checkpoint->resume : nullptr;

  Rng rng(config.seed);
  evo::Genotype parent;
  Fitness parent_fitness = kInvalidFitness;
  IntrinsicResult result;
  Generation first_gen = 1;
  // Accumulators carried across preemptions: the duration and DPR writes
  // spent before the checkpoint this run resumes from.
  sim::SimTime elapsed_base = 0;
  std::uint64_t writes_base = 0;

  if (resume != nullptr) {
    EHW_REQUIRE(resume->kind == MissionCheckpoint::Kind::kEvolve,
                "checkpoint kind mismatch (expected evolve)");
    EHW_REQUIRE(!resume->lane_genotypes.empty(),
                "checkpoint carries no lane state");
    // Rebuild the fabric exactly as it was at the boundary (so the first
    // resumed wave's DPR diffs replay bit-identically), then reanchor the
    // clock: the restore writes were already paid for before the save and
    // are carried in elapsed/pe_writes. Logical lane i lands on physical
    // array i % granted — ascending order, so when several logical lanes
    // share an array the highest-numbered one owns the fabric, exactly
    // the state the previous run's last wave left behind on that array.
    for (std::size_t i = 0; i < resume->lane_genotypes.size(); ++i) {
      if (resume->lane_genotypes[i].has_value()) {
        (void)platform.configure_array(arrays[i % arrays.size()],
                                       *resume->lane_genotypes[i], 0);
      }
    }
    platform.reset_time();
    rng.set_state(resume->es.rng_state);
    parent = resume->es.parent;
    parent_fitness = resume->es.parent_fitness;
    result.es = resume->es.es;
    first_gen = resume->es.next_generation;
    elapsed_base = resume->elapsed;
    writes_base = resume->pe_writes;
  }

  const sim::SimTime t_start = platform.now();
  const std::uint64_t writes_start = platform.engine_stats().pe_writes;

  if (resume == nullptr) {
    parent = initial != nullptr
                 ? *initial
                 : evo::Genotype::random(platform.config().shape, rng);

    // Generation 0: configure and evaluate the initial parent on lane 0.
    const sim::Interval conf =
        platform.configure_array(arrays[0], parent, t_start);
    const EvaluationResult ev =
        platform.evaluate_array(arrays[0], train, reference, conf.end, "F0");
    result.es.best = parent;
    result.es.best_fitness = ev.fitness;
    if (config.record_history) result.es.history.push_back({0, ev.fitness});
    parent_fitness = result.es.best_fitness;
  }

  // LOGICAL lane count: the width the search was born with. It drives
  // offspring distribution, RNG consumption and per-lane timing, so a
  // resumed mission keeps the checkpoint's width even when the granted
  // physical slice is narrower or wider (migration across slices).
  const std::size_t lanes =
      resume != nullptr ? resume->lane_genotypes.size() : arrays.size();
  // At every generation boundary ALL resource bookings end at or before
  // the barrier, so the post-boundary schedule depends only on its value
  // — the property that makes checkpoint/resume bit-identical. On resume
  // t_start is 0 (reset_time), so the saved t_start-relative barrier is
  // already absolute.
  sim::SimTime barrier =
      resume != nullptr ? t_start + resume->barrier : platform.now();
  Generation steps_done = 0;

  for (Generation gen = first_gen; gen <= config.generations; ++gen) {
    if (result.es.best_fitness <= config.target) break;

    // Mutation happens in software while the previous wave evaluates:
    // it costs nothing on the hardware timeline.
    auto offspring = config.two_level
                         ? evo::two_level_offspring(parent, config.lambda,
                                                    lanes,
                                                    config.mutation_rate, rng)
                         : evo::classic_offspring(parent, config.lambda, lanes,
                                                  config.mutation_rate, rng);

    // Candidate i evaluates on the array backing its LOGICAL lane; with
    // fewer physical arrays than logical lanes, lanes wrap (j % granted)
    // and candidates sharing an array serialize on its resource timeline.
    std::vector<std::size_t> wave_lanes(offspring.size());
    for (std::size_t i = 0; i < offspring.size(); ++i) {
      wave_lanes[i] = arrays[offspring[i].lane % arrays.size()];
    }
    const WaveOutcome wave = executor.run_wave(offspring, wave_lanes, train,
                                               reference, barrier);
    const std::size_t best_idx = wave.best_index;
    const Fitness best_fit = wave.best_fitness;

    result.es.generations_run = gen;
    barrier = wave.end;  // selection: next wave waits for every fitness

    if (best_fit < parent_fitness ||
        (config.accept_equal_fitness && best_fit == parent_fitness)) {
      parent = offspring[best_idx].genotype;
      parent_fitness = best_fit;
    }
    if (best_fit < result.es.best_fitness) {
      result.es.best = offspring[best_idx].genotype;
      result.es.best_fitness = best_fit;
      if (config.record_history) {
        result.es.history.push_back({gen, best_fit});
      }
    }

    if (checkpoint != nullptr && checkpoint->active()) {
      ++steps_done;
      const bool cadence =
          checkpoint->every != 0 && gen % checkpoint->every == 0;
      const bool preempt =
          (checkpoint->preempt_after != 0 &&
           steps_done >= checkpoint->preempt_after) ||
          (checkpoint->should_preempt && checkpoint->should_preempt());
      if ((cadence || preempt) && checkpoint->sink) {
        MissionCheckpoint ckpt;
        ckpt.kind = MissionCheckpoint::Kind::kEvolve;
        ckpt.barrier = barrier - t_start;
        // now() - t_start already spans the pre-resume portion (bookings
        // continue from the saved absolute barrier); the max only guards
        // the degenerate zero-progress save.
        ckpt.elapsed = std::max(platform.now() - t_start, elapsed_base);
        ckpt.pe_writes = writes_base +
                         (platform.engine_stats().pe_writes - writes_start);
        // Save LOGICAL lanes: slot j records the fabric of the array that
        // backs lane j, so a future restore — onto any slice width —
        // replays the same DPR diffs.
        ckpt.lane_genotypes.reserve(lanes);
        for (std::size_t j = 0; j < lanes; ++j) {
          ckpt.lane_genotypes.push_back(
              platform.configured_genotype(arrays[j % arrays.size()]));
        }
        ckpt.es.next_generation = gen + 1;
        ckpt.es.parent = parent;
        ckpt.es.parent_fitness = parent_fitness;
        ckpt.es.es = result.es;
        ckpt.es.rng_state = rng.state();
        checkpoint->sink(ckpt);
      }
      if (preempt) {
        result.preempted = true;
        break;
      }
    }
  }

  // max() covers the zero-work resume: no new booking means now() stays
  // at 0, but the mission already consumed `elapsed_base`.
  result.duration = std::max(platform.now() - t_start, elapsed_base);
  result.pe_writes =
      writes_base + (platform.engine_stats().pe_writes - writes_start);
  return result;
}

IntrinsicResult evolve_on_platform(EvolvablePlatform& platform,
                                   const std::vector<std::size_t>& arrays,
                                   const img::Image& train,
                                   const img::Image& reference,
                                   const evo::EsConfig& config,
                                   const evo::Genotype* initial,
                                   const CheckpointPolicy* checkpoint) {
  DirectWaveExecutor executor(platform, arrays);
  return evolve_mission(executor, train, reference, config, initial,
                        checkpoint);
}

}  // namespace ehw::platform
