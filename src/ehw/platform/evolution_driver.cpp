#include "ehw/platform/evolution_driver.hpp"

#include <algorithm>

#include "ehw/evo/offspring.hpp"

namespace ehw::platform {

IntrinsicResult evolve_mission(WaveExecutor& executor, const img::Image& train,
                               const img::Image& reference,
                               const evo::EsConfig& config,
                               const evo::Genotype* initial) {
  EvolvablePlatform& platform = executor.platform();
  const std::vector<std::size_t>& arrays = executor.lanes();
  EHW_REQUIRE(!arrays.empty(), "need at least one evaluation lane");
  EHW_REQUIRE(train.same_shape(reference), "train/reference shape mismatch");
  for (const std::size_t a : arrays) {
    EHW_REQUIRE(a < platform.num_arrays(), "lane array out of range");
  }

  const sim::SimTime t_start = platform.now();
  const std::uint64_t writes_start = platform.engine_stats().pe_writes;
  Rng rng(config.seed);

  evo::Genotype parent =
      initial != nullptr
          ? *initial
          : evo::Genotype::random(platform.config().shape, rng);

  IntrinsicResult result;

  // Generation 0: configure and evaluate the initial parent on lane 0.
  {
    const sim::Interval conf =
        platform.configure_array(arrays[0], parent, t_start);
    const EvaluationResult ev =
        platform.evaluate_array(arrays[0], train, reference, conf.end, "F0");
    result.es.best = parent;
    result.es.best_fitness = ev.fitness;
    if (config.record_history) result.es.history.push_back({0, ev.fitness});
  }
  Fitness parent_fitness = result.es.best_fitness;

  const std::size_t lanes = arrays.size();
  sim::SimTime barrier = platform.now();

  for (Generation gen = 1; gen <= config.generations; ++gen) {
    if (result.es.best_fitness <= config.target) break;

    // Mutation happens in software while the previous wave evaluates:
    // it costs nothing on the hardware timeline.
    auto offspring = config.two_level
                         ? evo::two_level_offspring(parent, config.lambda,
                                                    lanes,
                                                    config.mutation_rate, rng)
                         : evo::classic_offspring(parent, config.lambda, lanes,
                                                  config.mutation_rate, rng);

    // Candidate i evaluates on the array backing its lane.
    std::vector<std::size_t> wave_lanes(offspring.size());
    for (std::size_t i = 0; i < offspring.size(); ++i) {
      wave_lanes[i] = arrays[offspring[i].lane];
    }
    const WaveOutcome wave = executor.run_wave(offspring, wave_lanes, train,
                                               reference, barrier);
    const std::size_t best_idx = wave.best_index;
    const Fitness best_fit = wave.best_fitness;

    result.es.generations_run = gen;
    barrier = wave.end;  // selection: next wave waits for every fitness

    if (best_fit < parent_fitness ||
        (config.accept_equal_fitness && best_fit == parent_fitness)) {
      parent = offspring[best_idx].genotype;
      parent_fitness = best_fit;
    }
    if (best_fit < result.es.best_fitness) {
      result.es.best = offspring[best_idx].genotype;
      result.es.best_fitness = best_fit;
      if (config.record_history) {
        result.es.history.push_back({gen, best_fit});
      }
    }
  }

  result.duration = platform.now() - t_start;
  result.pe_writes = platform.engine_stats().pe_writes - writes_start;
  return result;
}

IntrinsicResult evolve_on_platform(EvolvablePlatform& platform,
                                   const std::vector<std::size_t>& arrays,
                                   const img::Image& train,
                                   const img::Image& reference,
                                   const evo::EsConfig& config,
                                   const evo::Genotype* initial) {
  DirectWaveExecutor executor(platform, arrays);
  return evolve_mission(executor, train, reference, config, initial);
}

}  // namespace ehw::platform
