#pragma once
// Cascaded evolution modes (§IV.B, Fig. 6): every stage of the chain is
// evolved taking the rest of the chain into account.
//
//   Fitness computation:
//     kSeparate - each stage has its own fitness unit, but all stages use
//                 the SAME reference image; stage i+1 trains on stage i's
//                 output (Fig. 6-a).
//     kMerged   - a single fitness unit at the chain end judges the whole
//                 chain; candidates are accepted or rejected jointly
//                 (Fig. 6-b).
//   Scheduling:
//     kSequential  - stage i+1 starts evolving once stage i has finished.
//     kInterleaved - one generation per stage in rotation ("moving forward
//                    a single generation in each array sequentially"), all
//                    stages adapting together. A separate chromosome is
//                    kept per stage in both cases.
//
// These drive the Collaborative Cascaded operation mode evaluated in
// Figs. 16/17.

#include <vector>

#include "ehw/evo/es.hpp"
#include "ehw/platform/checkpoint.hpp"
#include "ehw/platform/wave.hpp"

namespace ehw::platform {

enum class CascadeFitness { kSeparate, kMerged };
enum class CascadeSchedule { kSequential, kInterleaved };

struct CascadeConfig {
  /// Per-stage ES parameters; `generations` is the per-stage budget.
  evo::EsConfig es;
  CascadeFitness fitness = CascadeFitness::kSeparate;
  CascadeSchedule schedule = CascadeSchedule::kSequential;
};

struct CascadeStageOutcome {
  /// Best chromosome evolved for this stage.
  evo::Genotype best;
  /// That chromosome's own fitness (its output vs the common reference,
  /// measured on its stage input) — the per-stage series of Figs. 16/17.
  Fitness stage_fitness = kInvalidFitness;
};

struct CascadeResult {
  std::vector<CascadeStageOutcome> stages;
  /// MAE of the full chain output against the reference.
  Fitness chain_fitness = kInvalidFitness;
  sim::SimTime duration = 0;
  /// True when the run stopped early on a preemption request (budget or
  /// should_preempt); the final checkpoint went through the sink.
  bool preempted = false;
};

/// Evolves the chain formed by the executor's lanes (in order) to map
/// `train` onto `reference`, submitting every per-stage offspring wave to
/// the executor. The best chromosome of every stage is left configured,
/// so the platform is ready for cascaded mission mode on return.
///
/// `checkpoint` (optional) enables save/resume/preempt exactly as in
/// evolve_mission — one "step" of the cadence/preempt counters is one
/// per-stage generation. A resumed cascade continues the per-stage RNG
/// streams and loop cursors and yields bit-identical final results.
/// Unlike evolve_mission, a cascade's stage count IS its structure (one
/// physical array per chain stage), so resuming requires a slice exactly
/// as wide as the checkpoint's — cascades migrate only between
/// equal-width slices.
CascadeResult evolve_cascade_mission(
    WaveExecutor& executor, const img::Image& train,
    const img::Image& reference, const CascadeConfig& config,
    const CheckpointPolicy* checkpoint = nullptr);

/// Standalone entry point: runs evolve_cascade_mission through a
/// DirectWaveExecutor over the given arrays of a caller-owned platform.
CascadeResult evolve_cascade(EvolvablePlatform& platform,
                             const std::vector<std::size_t>& arrays,
                             const img::Image& train,
                             const img::Image& reference,
                             const CascadeConfig& config,
                             const CheckpointPolicy* checkpoint = nullptr);

}  // namespace ehw::platform
