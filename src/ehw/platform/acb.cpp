#include "ehw/platform/acb.hpp"

namespace ehw::platform {

ArrayControlBlock::ArrayControlBlock(RegisterFile& regs, std::size_t index,
                                     std::size_t array_inputs,
                                     std::size_t rows, std::size_t line_width,
                                     double clock_mhz)
    : regs_(regs),
      index_(index),
      array_inputs_(array_inputs),
      rows_(rows),
      fitness_unit_(clock_mhz),
      fifo_(line_width, clock_mhz) {
  EHW_REQUIRE(array_inputs_ <= 8, "register map holds 8 input-tap registers");
  EHW_REQUIRE(rows_ > 0, "array needs at least one row");
}

bool ArrayControlBlock::bypass() const {
  return (regs_.read(reg(kRegCtrl)) & kCtrlBypassBit) != 0;
}

void ArrayControlBlock::set_bypass(bool on) {
  RegValue ctrl = regs_.read(reg(kRegCtrl));
  ctrl = on ? (ctrl | kCtrlBypassBit) : (ctrl & ~kCtrlBypassBit);
  regs_.write(reg(kRegCtrl), ctrl);
}

InputSource ArrayControlBlock::input_source() const {
  const RegValue v =
      (regs_.read(reg(kRegCtrl)) & kCtrlInputSrcMask) >> kCtrlInputSrcShift;
  return v == 0 ? InputSource::kPrimary : InputSource::kPrevious;
}

void ArrayControlBlock::set_input_source(InputSource src) {
  RegValue ctrl = regs_.read(reg(kRegCtrl)) & ~kCtrlInputSrcMask;
  ctrl |= (static_cast<RegValue>(src) << kCtrlInputSrcShift) &
          kCtrlInputSrcMask;
  regs_.write(reg(kRegCtrl), ctrl);
}

FitnessSource ArrayControlBlock::fitness_source() const {
  const RegValue v =
      (regs_.read(reg(kRegCtrl)) & kCtrlFitnessSrcMask) >> kCtrlFitnessSrcShift;
  return v >= 3 ? FitnessSource::kRefVsOut : static_cast<FitnessSource>(v);
}

void ArrayControlBlock::set_fitness_source(FitnessSource src) {
  RegValue ctrl = regs_.read(reg(kRegCtrl)) & ~kCtrlFitnessSrcMask;
  ctrl |= (static_cast<RegValue>(src) << kCtrlFitnessSrcShift) &
          kCtrlFitnessSrcMask;
  regs_.write(reg(kRegCtrl), ctrl);
}

std::vector<std::uint8_t> ArrayControlBlock::input_taps() const {
  std::vector<std::uint8_t> taps(array_inputs_);
  for (std::size_t i = 0; i < array_inputs_; ++i) {
    const RegValue v = regs_.read(reg(kRegInputTap0 + static_cast<RegAddr>(i)));
    // A 9-to-1 mux ignores select values above 8: hardware wraps them.
    taps[i] = static_cast<std::uint8_t>(v % 9);
  }
  return taps;
}

void ArrayControlBlock::set_input_taps(const std::vector<std::uint8_t>& taps) {
  EHW_REQUIRE(taps.size() == array_inputs_, "one tap per array input");
  for (std::size_t i = 0; i < taps.size(); ++i) {
    regs_.write(reg(kRegInputTap0 + static_cast<RegAddr>(i)), taps[i]);
  }
}

std::uint8_t ArrayControlBlock::output_row() const {
  return static_cast<std::uint8_t>(regs_.read(reg(kRegOutputRow)) % rows_);
}

void ArrayControlBlock::set_output_row(std::uint8_t row) {
  regs_.write(reg(kRegOutputRow), row);
}

void ArrayControlBlock::publish_fitness(Fitness f) {
  regs_.publish(reg(kRegFitnessLo), static_cast<RegValue>(f & 0xFFFFFFFFu));
  regs_.publish(reg(kRegFitnessHi), static_cast<RegValue>(f >> 32));
  regs_.publish(reg(kRegStatus),
                regs_.read(reg(kRegStatus)) | kStatusFitnessValid);
}

void ArrayControlBlock::publish_latency(std::uint32_t cycles) {
  regs_.publish(reg(kRegLatency), cycles);
}

void ArrayControlBlock::invalidate_fitness() {
  regs_.publish(reg(kRegStatus),
                regs_.read(reg(kRegStatus)) & ~kStatusFitnessValid);
}

Fitness ArrayControlBlock::read_fitness_registers() const {
  const auto lo = static_cast<Fitness>(regs_.read(reg(kRegFitnessLo)));
  const auto hi = static_cast<Fitness>(regs_.read(reg(kRegFitnessHi)));
  return (hi << 32) | lo;
}

bool ArrayControlBlock::fitness_valid() const {
  return (regs_.read(reg(kRegStatus)) & kStatusFitnessValid) != 0;
}

}  // namespace ehw::platform
