#include "ehw/platform/platform.hpp"

#include <string>

#include "ehw/pe/decoder.hpp"

namespace ehw::platform {

EvolvablePlatform::EvolvablePlatform(PlatformConfig config)
    : config_(config),
      geometry_(config.num_arrays, config.shape),
      memory_(geometry_.total_words()),
      library_(geometry_.words_per_slot()),
      injector_(memory_, geometry_, config.seed ^ 0xFA017EC7ULL),
      regs_(config.num_arrays) {
  EHW_REQUIRE(config_.num_arrays > 0, "platform needs at least one array");
  trace_.enable(config_.enable_trace);
  engine_ = std::make_unique<reconfig::ReconfigurationEngine>(
      memory_, geometry_, library_, timeline_, &trace_);
  acbs_.reserve(config_.num_arrays);
  array_resources_.reserve(config_.num_arrays);
  configured_.resize(config_.num_arrays);
  for (std::size_t a = 0; a < config_.num_arrays; ++a) {
    acbs_.emplace_back(regs_, a, config_.shape.rows + config_.shape.cols,
                       config_.shape.rows, config_.line_width,
                       config_.clock_mhz);
    array_resources_.push_back(
        timeline_.add_resource("array" + std::to_string(a)));
  }
  // Power-on state: every slot holds function 0 so decode is well-defined
  // before the first evolution pass.
  for (std::size_t a = 0; a < config_.num_arrays; ++a) {
    for (std::size_t r = 0; r < config_.shape.rows; ++r) {
      for (std::size_t c = 0; c < config_.shape.cols; ++c) {
        fpga::write_payload(memory_,
                            geometry_.slot_word_base({a, r, c}),
                            library_.function(0));
      }
    }
  }
  timeline_.reset();  // power-on configuration is not charged
}

ArrayControlBlock& EvolvablePlatform::acb(std::size_t array) {
  check_array(array);
  return acbs_[array];
}

const ArrayControlBlock& EvolvablePlatform::acb(std::size_t array) const {
  check_array(array);
  return acbs_[array];
}

sim::ResourceId EvolvablePlatform::array_resource(std::size_t array) const {
  check_array(array);
  return array_resources_[array];
}

std::uint8_t EvolvablePlatform::effective_opcode(std::size_t slot_index,
                                                 std::uint8_t wanted) const {
  return locked_slots_.count(slot_index) ? reconfig::kDummyOpcode : wanted;
}

sim::Interval EvolvablePlatform::configure_array(std::size_t array,
                                                 const evo::Genotype& genotype,
                                                 sim::SimTime earliest) {
  check_array(array);
  EHW_REQUIRE(genotype.shape() == config_.shape,
              "genotype shape must match the fabric arrays");

  // Register-resident genes: software-speed writes over the bus.
  acbs_[array].set_input_taps(genotype.tap_genes());
  acbs_[array].set_output_row(genotype.output_row());

  // Fabric-resident genes: DPR only for cells whose function changed with
  // respect to what this array currently holds.
  const std::optional<evo::Genotype>& current = configured_[array];
  sim::Interval overall{earliest, earliest};
  bool first_write = true;
  const std::size_t cols = config_.shape.cols;
  for (std::size_t cell = 0; cell < genotype.cell_count(); ++cell) {
    const std::uint8_t wanted = genotype.function_gene(cell);
    if (current.has_value() && current->function_gene(cell) == wanted) {
      continue;
    }
    const fpga::SlotAddress slot{array, cell / cols, cell % cols};
    const std::size_t slot_index = geometry_.slot_index(slot);
    const sim::Interval span = engine_->write_pe(
        slot, effective_opcode(slot_index, wanted), earliest,
        array_resources_[array], "R");
    if (first_write) {
      overall = span;
      first_write = false;
    } else {
      overall.end = span.end;
    }
  }
  configured_[array] = genotype;
  acbs_[array].publish_latency(
      static_cast<std::uint32_t>(cols + genotype.output_row() + 1));
  return overall;
}

const std::optional<evo::Genotype>& EvolvablePlatform::configured_genotype(
    std::size_t array) const {
  check_array(array);
  return configured_[array];
}

pe::SystolicArray EvolvablePlatform::decode_array(std::size_t array) const {
  check_array(array);
  return pe::decode_array(memory_, geometry_, library_, array,
                          acbs_[array].input_taps(),
                          acbs_[array].output_row());
}

img::Image EvolvablePlatform::filter_array(std::size_t array,
                                           const img::Image& input) const {
  const pe::CompiledArray compiled(decode_array(array));
  img::Image out(input.width(), input.height());
  compiled.filter_into(input, out, config_.pool);
  return out;
}

sim::SimTime EvolvablePlatform::frame_time(std::size_t width,
                                           std::size_t height) const {
  // One pixel per cycle plus the array pipeline depth and the fitness
  // accumulator drain.
  const std::uint64_t cycles =
      static_cast<std::uint64_t>(width) * height + config_.shape.cols +
      config_.shape.rows + 4;
  return sim::cycles_at_mhz(cycles, config_.clock_mhz);
}

pe::CompiledArray EvolvablePlatform::compile_array(std::size_t array) const {
  return pe::CompiledArray(decode_array(array));
}

std::uint64_t EvolvablePlatform::configuration_fingerprint(
    std::size_t array) const {
  check_array(array);
  std::uint64_t h = hash_mix(0x5C4DF00DULL, array, config_.shape.rows,
                             config_.shape.cols);
  const std::size_t words = geometry_.words_per_slot();
  for (std::size_t r = 0; r < config_.shape.rows; ++r) {
    for (std::size_t c = 0; c < config_.shape.cols; ++c) {
      const std::size_t base = geometry_.slot_word_base({array, r, c});
      for (std::size_t i = 0; i < words; ++i) {
        h = hash_mix(h, memory_.read(base + i), i);
      }
    }
  }
  for (const std::uint8_t tap : acbs_[array].input_taps()) {
    h = hash_mix(h, tap);
  }
  return hash_mix(h, acbs_[array].output_row());
}

sim::Interval EvolvablePlatform::book_evaluation(
    std::size_t array, std::size_t width, std::size_t height,
    sim::SimTime earliest, const std::string& trace_label) {
  check_array(array);
  const sim::Interval span = timeline_.reserve(
      array_resources_[array], earliest, frame_time(width, height));
  trace_.record(array_resources_[array], trace_label, span);
  return span;
}

void EvolvablePlatform::publish_fitness(std::size_t array, Fitness fitness) {
  check_array(array);
  acbs_[array].publish_fitness(fitness);
}

EvaluationResult EvolvablePlatform::evaluate_array(
    std::size_t array, const img::Image& input, const img::Image& compare,
    sim::SimTime earliest, const std::string& trace_label) {
  check_array(array);
  EHW_REQUIRE(input.same_shape(compare),
              "fitness streams must share a shape");
  const pe::CompiledArray compiled = compile_array(array);
  const Fitness fitness =
      compiled.fitness_against(input, compare, config_.pool);
  publish_fitness(array, fitness);
  const sim::Interval span = book_evaluation(
      array, input.width(), input.height(), earliest, trace_label);
  return EvaluationResult{fitness, span};
}

std::vector<img::Image> EvolvablePlatform::process_parallel(
    const img::Image& input) const {
  std::vector<img::Image> outputs;
  outputs.reserve(config_.num_arrays);
  for (std::size_t a = 0; a < config_.num_arrays; ++a) {
    outputs.push_back(filter_array(a, input));
  }
  return outputs;
}

img::Image EvolvablePlatform::process_cascade(
    const img::Image& input, std::vector<img::Image>* stage_outputs) const {
  img::Image stream = input;
  if (stage_outputs != nullptr) stage_outputs->clear();
  for (std::size_t a = 0; a < config_.num_arrays; ++a) {
    if (!acbs_[a].bypass()) {
      stream = filter_array(a, stream);
    }
    // A bypassed stage forwards `stream` unchanged; its array still sees
    // the stream (imitation hooks read it via filter_array directly).
    if (stage_outputs != nullptr) stage_outputs->push_back(stream);
  }
  return stream;
}

std::uint64_t EvolvablePlatform::cascade_latency_cycles() const {
  std::uint64_t cycles = 0;
  for (std::size_t a = 0; a < config_.num_arrays; ++a) {
    if (acbs_[a].bypass()) continue;
    cycles += acbs_[a].line_fifo().fill_cycles();
    cycles += config_.shape.cols + acbs_[a].output_row() + 1;
  }
  return cycles;
}

void EvolvablePlatform::inject_pe_fault(std::size_t array, std::size_t row,
                                        std::size_t col) {
  check_array(array);
  const fpga::SlotAddress slot{array, row, col};
  locked_slots_.insert(geometry_.slot_index(slot));
  engine_->write_pe(slot, reconfig::kDummyOpcode, timeline_.makespan(),
                    array_resources_[array], "X");
}

void EvolvablePlatform::clear_pe_fault(std::size_t array, std::size_t row,
                                       std::size_t col) {
  check_array(array);
  const fpga::SlotAddress slot{array, row, col};
  locked_slots_.erase(geometry_.slot_index(slot));
  // Restore the intended function if one is configured.
  if (configured_[array].has_value()) {
    const std::size_t cell = row * config_.shape.cols + col;
    engine_->write_pe(slot, configured_[array]->function_gene(cell),
                      timeline_.makespan(), array_resources_[array], "R");
  }
}

bool EvolvablePlatform::has_pe_fault(std::size_t array, std::size_t row,
                                     std::size_t col) const {
  check_array(array);
  return locked_slots_.count(
             geometry_.slot_index({array, row, col})) > 0;
}

fpga::FaultRecord EvolvablePlatform::inject_seu(std::size_t array) {
  check_array(array);
  // Uniform over the array's slots (position derived from the journal
  // length so repeated injections hit different cells deterministically).
  return injector_.inject_seu_in_slot(
      {array,
       static_cast<std::size_t>(
           hash_mix(config_.seed, injector_.journal().size(), array) %
           config_.shape.rows),
       static_cast<std::size_t>(
           hash_mix(config_.seed, array, injector_.journal().size()) %
           config_.shape.cols)});
}

fpga::FaultRecord EvolvablePlatform::inject_lpd(std::size_t array) {
  check_array(array);
  return injector_.inject_lpd_in_slot(
      {array,
       static_cast<std::size_t>(
           hash_mix(~config_.seed, injector_.journal().size(), array) %
           config_.shape.rows),
       static_cast<std::size_t>(
           hash_mix(~config_.seed, array, injector_.journal().size()) %
           config_.shape.cols)});
}

sim::Interval EvolvablePlatform::scrub_array(std::size_t array,
                                             sim::SimTime earliest,
                                             std::size_t* corrected,
                                             std::size_t* uncorrectable) {
  check_array(array);
  std::size_t fixed_total = 0;
  std::size_t stuck_total = 0;
  sim::Interval overall{earliest, earliest};
  bool first = true;
  for (std::size_t r = 0; r < config_.shape.rows; ++r) {
    for (std::size_t c = 0; c < config_.shape.cols; ++c) {
      std::size_t fixed = 0;
      std::size_t stuck = 0;
      const sim::Interval span = engine_->scrub_slot(
          {array, r, c}, earliest, array_resources_[array], &fixed, &stuck);
      fixed_total += fixed;
      stuck_total += stuck;
      if (first) {
        overall = span;
        first = false;
      } else {
        overall.end = span.end;
      }
    }
  }
  if (corrected != nullptr) *corrected = fixed_total;
  if (uncorrectable != nullptr) *uncorrectable = stuck_total;
  return overall;
}

void EvolvablePlatform::reset_time() {
  timeline_.reset();
  engine_->reset_stats();
  trace_.clear();
}

}  // namespace ehw::platform
