#include "ehw/platform/line_fifo.hpp"

// Header-only component; this TU anchors the module archive.
namespace ehw::platform {}
