#pragma once
// Hardware fitness unit model (§III.B): each ACB embeds a unit that
// accumulates the pixel-aggregated MAE between two streams. The paper's
// three selectable sources:
//   kRefVsOut      - reference image vs array output (normal evolution);
//   kInVsOut       - array input vs array output (activity/identity check);
//   kNeighborVsOut - adjacent array's output vs own output (evolution by
//                    imitation and the TMR fitness voter feed).

#include <cstdint>

#include "ehw/common/types.hpp"
#include "ehw/img/image.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/sim/time.hpp"

namespace ehw::platform {

enum class FitnessSource : std::uint8_t {
  kRefVsOut = 0,
  kInVsOut = 1,
  kNeighborVsOut = 2,
};

class FitnessUnit {
 public:
  /// `clock_mhz` is the pixel-stream clock; the unit consumes one pixel
  /// pair per cycle plus a small drain latency.
  explicit FitnessUnit(double clock_mhz = 100.0) : clock_mhz_(clock_mhz) {}

  /// Accumulates |a-b| over both images and latches the result.
  Fitness measure(const img::Image& a, const img::Image& b);

  [[nodiscard]] Fitness last_value() const noexcept { return last_; }
  [[nodiscard]] bool valid() const noexcept { return valid_; }
  void invalidate() noexcept { valid_ = false; }

  /// Simulated duration of measuring a w x h frame (pipelined with the
  /// array output stream: pixels + accumulator drain).
  [[nodiscard]] sim::SimTime measure_duration(std::size_t width,
                                              std::size_t height) const {
    return sim::cycles_at_mhz(width * height + kDrainCycles, clock_mhz_);
  }

 private:
  static constexpr std::uint64_t kDrainCycles = 4;

  double clock_mhz_;
  Fitness last_ = kInvalidFitness;
  bool valid_ = false;
};

}  // namespace ehw::platform
