#include "ehw/platform/imitation.hpp"

#include <algorithm>

#include "ehw/evo/offspring.hpp"

namespace ehw::platform {

ImitationResult evolve_by_imitation(EvolvablePlatform& platform,
                                    std::size_t apprentice,
                                    std::size_t master,
                                    const img::Image& stream,
                                    const ImitationConfig& config) {
  EHW_REQUIRE(apprentice != master, "apprentice must differ from master");
  EHW_REQUIRE(apprentice < platform.num_arrays() &&
                  master < platform.num_arrays(),
              "array index out of range");

  const sim::SimTime t_start = platform.now();
  ArrayControlBlock& acb = platform.acb(apprentice);
  const bool was_bypassed = acb.bypass();
  acb.set_bypass(true);  // keep the mission stream flowing downstream
  acb.set_fitness_source(FitnessSource::kNeighborVsOut);

  // The master keeps filtering online; its output over this stream is the
  // imitation target.
  const img::Image target = platform.filter_array(master, stream);

  Rng rng(config.es.seed);
  evo::Genotype parent;
  if (config.start_from_master &&
      platform.configured_genotype(master).has_value()) {
    parent = *platform.configured_genotype(master);
  } else {
    parent = evo::Genotype::random(platform.config().shape, rng);
  }

  ImitationResult result;
  sim::SimTime barrier = t_start;
  {
    const sim::Interval conf =
        platform.configure_array(apprentice, parent, barrier);
    const EvaluationResult ev = platform.evaluate_array(
        apprentice, stream, target, conf.end, "I0");
    barrier = ev.span.end;
    result.es.best = parent;
    result.es.best_fitness = ev.fitness;
    if (config.es.record_history) {
      result.es.history.push_back({0, ev.fitness});
    }
  }
  Fitness parent_fitness = result.es.best_fitness;

  for (Generation gen = 1; gen <= config.es.generations; ++gen) {
    if (result.es.best_fitness <= config.es.target) break;
    auto offspring =
        config.es.two_level
            ? evo::two_level_offspring(parent, config.es.lambda, 1,
                                       config.es.mutation_rate, rng)
            : evo::classic_offspring(parent, config.es.lambda, 1,
                                     config.es.mutation_rate, rng);
    std::size_t best_idx = 0;
    Fitness best_fit = kInvalidFitness;
    sim::SimTime gen_end = barrier;
    for (std::size_t i = 0; i < offspring.size(); ++i) {
      const sim::Interval conf = platform.configure_array(
          apprentice, offspring[i].genotype, barrier);
      const EvaluationResult ev = platform.evaluate_array(
          apprentice, stream, target, conf.end, "I");
      gen_end = std::max(gen_end, ev.span.end);
      if (ev.fitness < best_fit) {
        best_fit = ev.fitness;
        best_idx = i;
      }
    }
    barrier = gen_end;
    result.es.generations_run = gen;
    if (best_fit <= parent_fitness) {
      parent = offspring[best_idx].genotype;
      parent_fitness = best_fit;
    }
    if (best_fit < result.es.best_fitness) {
      result.es.best = offspring[best_idx].genotype;
      result.es.best_fitness = best_fit;
      if (config.es.record_history) {
        result.es.history.push_back({gen, best_fit});
      }
    }
  }

  // Leave the best chromosome configured on the apprentice.
  platform.configure_array(apprentice, result.es.best, barrier);
  acb.set_bypass(was_bypassed);
  result.residual = result.es.best_fitness;
  result.duration = platform.now() - t_start;
  return result;
}

}  // namespace ehw::platform
