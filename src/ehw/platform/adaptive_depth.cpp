#include "ehw/platform/adaptive_depth.hpp"

#include "ehw/common/log.hpp"
#include "ehw/img/metrics.hpp"
#include "ehw/platform/evolution_driver.hpp"

namespace ehw::platform {

AdaptiveDepthResult grow_cascade_to_target(
    EvolvablePlatform& platform, const std::vector<std::size_t>& arrays,
    const img::Image& train, const img::Image& reference,
    const AdaptiveDepthConfig& config) {
  EHW_REQUIRE(!arrays.empty(), "need at least one array");
  const sim::SimTime t_start = platform.now();

  // Start with every candidate stage bypassed.
  for (const std::size_t a : arrays) platform.acb(a).set_bypass(true);

  AdaptiveDepthResult result;
  img::Image stream = train;
  for (std::size_t s = 0; s < arrays.size(); ++s) {
    evo::EsConfig es = config.es;
    es.seed = config.es.seed + 6151 * s;
    // The new stage specializes on the current chain output, aiming at
    // the common reference (collaborative cascade semantics).
    const IntrinsicResult r = evolve_on_platform(
        platform, {arrays[s]}, stream, reference, es);
    platform.configure_array(arrays[s], r.es.best, platform.now());
    platform.acb(arrays[s]).set_bypass(false);  // activate the stage

    stream = platform.filter_array(arrays[s], stream);
    const Fitness chain = img::aggregated_mae(stream, reference);
    result.fitness_per_depth.push_back(chain);
    result.depth = s + 1;
    log_info("adaptive-depth: stage ", s + 1, " active, chain fitness ",
             chain, " (target ", config.target, ")");
    if (chain <= config.target) {
      result.target_met = true;
      break;
    }
  }
  result.duration = platform.now() - t_start;
  return result;
}

}  // namespace ehw::platform
