#include "ehw/platform/wave.hpp"

#include <algorithm>

#include "ehw/common/rng.hpp"
#include "ehw/evo/batch.hpp"
#include "ehw/obs/trace.hpp"

namespace ehw::platform {

WaveOutcome evaluate_offspring_wave(EvolvablePlatform& platform,
                                    const std::vector<evo::Candidate>& offspring,
                                    const std::vector<std::size_t>& lanes,
                                    const img::Image& input,
                                    const img::Image& compare,
                                    sim::SimTime barrier,
                                    const WaveCompileFn& compile,
                                    WaveMemo* memo) {
  EHW_REQUIRE(lanes.size() == offspring.size(),
              "one evaluation lane per offspring");

  // Phase 1 (sequential): configure each candidate, compile its decoded
  // view before the next configuration overwrites the lane, and book the
  // R/F spans — identical timeline bookkeeping to evaluating in place.
  std::vector<CompiledLane> compiled;
  compiled.reserve(offspring.size());
  std::vector<sim::Interval> spans(offspring.size());
  for (std::size_t i = 0; i < offspring.size(); ++i) {
    // R: engine + lane array; no earlier than the generation barrier.
    const sim::Interval conf =
        platform.configure_array(lanes[i], offspring[i].genotype, barrier);
    compiled.push_back(compile(lanes[i]));
    // F: lane array only, after its reconfiguration.
    spans[i] = platform.book_evaluation(lanes[i], input.width(),
                                        input.height(), conf.end, "F");
  }

  // Phase 2 (parallel): whole candidates fan out across the host pool —
  // one candidate per worker, like one per physical array. With a memo
  // attached, candidates already measured on this frame set skip the
  // fan-out entirely (their simulated R/F spans above are booked either
  // way — memoization is a host-speed optimization, never a simulated
  // one).
  std::vector<const pe::CompiledArray*> views;
  views.reserve(compiled.size());
  for (const auto& c : compiled) views.push_back(c.array.get());
  EHW_TRACE_SPAN("wave_eval");
  WaveOutcome outcome;
  if (memo != nullptr && memo->memo != nullptr && memo->frame_set_id != 0) {
    std::vector<std::uint64_t> keys(compiled.size(), 0);
    for (std::size_t i = 0; i < compiled.size(); ++i) {
      if (compiled[i].memo_key != 0) {
        keys[i] = hash_mix(memo->frame_set_id, compiled[i].memo_key);
      }
    }
    outcome.fitness =
        evo::batch_fitness(views, keys, memo->memo, input, compare,
                           platform.pool(), &memo->stats);
  } else {
    if (memo != nullptr) memo->stats.misses += views.size();
    outcome.fitness =
        evo::batch_fitness(views, input, compare, platform.pool());
  }

  // Phase 3 (sequential): publish fitnesses in evaluation order and
  // select the survivor.
  outcome.end = barrier;
  for (std::size_t i = 0; i < offspring.size(); ++i) {
    platform.publish_fitness(lanes[i], outcome.fitness[i]);
    outcome.end = std::max(outcome.end, spans[i].end);
    if (outcome.fitness[i] < outcome.best_fitness) {
      outcome.best_fitness = outcome.fitness[i];
      outcome.best_index = i;
    }
  }
  return outcome;
}

WaveOutcome evaluate_offspring_wave(EvolvablePlatform& platform,
                                    const std::vector<evo::Candidate>& offspring,
                                    const std::vector<std::size_t>& lanes,
                                    const img::Image& input,
                                    const img::Image& compare,
                                    sim::SimTime barrier) {
  return evaluate_offspring_wave(
      platform, offspring, lanes, input, compare, barrier,
      [&platform](std::size_t lane) {
        return CompiledLane{std::make_shared<const pe::CompiledArray>(
                                platform.compile_array(lane)),
                            0};
      });
}

}  // namespace ehw::platform
