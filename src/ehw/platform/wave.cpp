#include "ehw/platform/wave.hpp"

#include <algorithm>

#include "ehw/evo/batch.hpp"

namespace ehw::platform {

WaveOutcome evaluate_offspring_wave(EvolvablePlatform& platform,
                                    const std::vector<evo::Candidate>& offspring,
                                    const std::vector<std::size_t>& lanes,
                                    const img::Image& input,
                                    const img::Image& compare,
                                    sim::SimTime barrier,
                                    const WaveCompileFn& compile) {
  EHW_REQUIRE(lanes.size() == offspring.size(),
              "one evaluation lane per offspring");

  // Phase 1 (sequential): configure each candidate, compile its decoded
  // view before the next configuration overwrites the lane, and book the
  // R/F spans — identical timeline bookkeeping to evaluating in place.
  std::vector<std::shared_ptr<const pe::CompiledArray>> compiled;
  compiled.reserve(offspring.size());
  std::vector<sim::Interval> spans(offspring.size());
  for (std::size_t i = 0; i < offspring.size(); ++i) {
    // R: engine + lane array; no earlier than the generation barrier.
    const sim::Interval conf =
        platform.configure_array(lanes[i], offspring[i].genotype, barrier);
    compiled.push_back(compile(lanes[i]));
    // F: lane array only, after its reconfiguration.
    spans[i] = platform.book_evaluation(lanes[i], input.width(),
                                        input.height(), conf.end, "F");
  }

  // Phase 2 (parallel): whole candidates fan out across the host pool —
  // one candidate per worker, like one per physical array.
  std::vector<const pe::CompiledArray*> views;
  views.reserve(compiled.size());
  for (const auto& c : compiled) views.push_back(c.get());
  WaveOutcome outcome;
  outcome.fitness =
      evo::batch_fitness(views, input, compare, platform.pool());

  // Phase 3 (sequential): publish fitnesses in evaluation order and
  // select the survivor.
  outcome.end = barrier;
  for (std::size_t i = 0; i < offspring.size(); ++i) {
    platform.publish_fitness(lanes[i], outcome.fitness[i]);
    outcome.end = std::max(outcome.end, spans[i].end);
    if (outcome.fitness[i] < outcome.best_fitness) {
      outcome.best_fitness = outcome.fitness[i];
      outcome.best_index = i;
    }
  }
  return outcome;
}

WaveOutcome evaluate_offspring_wave(EvolvablePlatform& platform,
                                    const std::vector<evo::Candidate>& offspring,
                                    const std::vector<std::size_t>& lanes,
                                    const img::Image& input,
                                    const img::Image& compare,
                                    sim::SimTime barrier) {
  return evaluate_offspring_wave(
      platform, offspring, lanes, input, compare, barrier,
      [&platform](std::size_t lane) {
        return std::make_shared<const pe::CompiledArray>(
            platform.compile_array(lane));
      });
}

}  // namespace ehw::platform
