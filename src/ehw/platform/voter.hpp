#pragma once
// The two voter modules of §V.B:
//   * FitnessVoter — compares the per-frame fitness of the three parallel
//     arrays; a similarity threshold tolerates the residual divergence an
//     imitation-recovered array keeps. Detects (and localizes) the
//     misbehaving array after each frame.
//   * PixelVoter — per-pixel majority over three output streams, keeping a
//     valid output flowing while one array misbehaves; also counts, per
//     array, how often that array was outvoted (a localization signal).

#include <array>
#include <cstdint>
#include <optional>

#include "ehw/common/types.hpp"
#include "ehw/img/image.hpp"

namespace ehw::platform {

struct FitnessVote {
  /// Index (0..2) of the array whose fitness deviates from the other two;
  /// empty when all three agree within the threshold.
  std::optional<std::size_t> faulty;
  /// True when no two arrays agree (vote inconclusive — more than one
  /// fault, or threshold too tight).
  bool inconclusive = false;
};

class FitnessVoter {
 public:
  /// `threshold` is the similarity margin (in aggregated-MAE units) within
  /// which two fitness readings count as "equal" (§V.B: "a similarity
  /// threshold can be defined in the voter").
  explicit FitnessVoter(Fitness threshold = 0) : threshold_(threshold) {}

  [[nodiscard]] Fitness threshold() const noexcept { return threshold_; }
  void set_threshold(Fitness t) noexcept { threshold_ = t; }

  [[nodiscard]] FitnessVote vote(const std::array<Fitness, 3>& fitness) const;

 private:
  [[nodiscard]] bool close(Fitness a, Fitness b) const noexcept {
    return (a > b ? a - b : b - a) <= threshold_;
  }

  Fitness threshold_;
};

struct PixelVoteResult {
  img::Image majority;
  /// Per-array count of pixels where that array disagreed with the voted
  /// output.
  std::array<std::uint64_t, 3> outvoted{};
  /// Pixels where all three disagreed pairwise (voter emits the median).
  std::uint64_t no_majority = 0;
};

class PixelVoter {
 public:
  /// Majority-of-three per pixel; with no exact majority the median value
  /// is emitted (the standard TMR-with-median fallback for data words).
  [[nodiscard]] static PixelVoteResult vote(const img::Image& a,
                                            const img::Image& b,
                                            const img::Image& c);
};

}  // namespace ehw::platform
