#pragma once
// The 3-image-line FIFO between cascaded stages (§IV.A: "the output of an
// array is taken through a 3 image lines FIFO to rebuild the 3x3 window,
// and fed to the next processing array"). Functionally the downstream
// stage just sees the upstream image through border-replicated windows;
// what the FIFO adds is timing: the next stage cannot start until 3 lines
// (plus a couple of pixels of skew) have been buffered, and it adds that
// much latency to the chain.

#include <cstddef>

#include "ehw/sim/time.hpp"

namespace ehw::platform {

class LineFifo {
 public:
  explicit LineFifo(std::size_t line_width, double clock_mhz = 100.0)
      : line_width_(line_width), clock_mhz_(clock_mhz) {}

  [[nodiscard]] std::size_t line_width() const noexcept { return line_width_; }

  /// Cycles before the first full 3x3 window is available downstream:
  /// two full lines plus two pixels of the third.
  [[nodiscard]] std::uint64_t fill_cycles() const noexcept {
    return 2 * line_width_ + 2;
  }

  [[nodiscard]] sim::SimTime fill_time() const noexcept {
    return sim::cycles_at_mhz(fill_cycles(), clock_mhz_);
  }

  /// Storage footprint in pixels (three whole lines).
  [[nodiscard]] std::size_t capacity_pixels() const noexcept {
    return 3 * line_width_;
  }

 private:
  std::size_t line_width_;
  double clock_mhz_;
};

}  // namespace ehw::platform
