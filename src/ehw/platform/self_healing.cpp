#include "ehw/platform/self_healing.hpp"

#include "ehw/common/log.hpp"
#include "ehw/platform/evolution_driver.hpp"

namespace ehw::platform {

std::string_view healing_event_name(HealingEventKind kind) {
  switch (kind) {
    case HealingEventKind::kBaselineRecorded: return "baseline-recorded";
    case HealingEventKind::kCheckPassed: return "check-passed";
    case HealingEventKind::kDivergenceDetected: return "divergence-detected";
    case HealingEventKind::kScrubbed: return "scrubbed";
    case HealingEventKind::kTransientRecovered: return "transient-recovered";
    case HealingEventKind::kPermanentDeclared: return "permanent-declared";
    case HealingEventKind::kBypassEngaged: return "bypass-engaged";
    case HealingEventKind::kImitationRecovered: return "imitation-recovered";
    case HealingEventKind::kReEvolved: return "re-evolved";
    case HealingEventKind::kGenotypePasted: return "genotype-pasted";
  }
  return "?";
}

/// --------------------------------------------------------------------------
CascadeSelfHealing::CascadeSelfHealing(EvolvablePlatform& platform,
                                       std::vector<std::size_t> arrays,
                                       Config config)
    : platform_(platform), arrays_(std::move(arrays)), config_(std::move(config)) {
  EHW_REQUIRE(!arrays_.empty(), "cascade healing needs at least one stage");
  EHW_REQUIRE(config_.calibration_input.same_shape(
                  config_.calibration_reference),
              "calibration image pair must share a shape");
  baseline_.assign(arrays_.size(), kInvalidFitness);
}

void CascadeSelfHealing::log(std::size_t array, HealingEventKind kind,
                             Fitness fitness, std::string detail) {
  events_.push_back(
      HealingEvent{platform_.now(), array, kind, fitness, std::move(detail)});
  log_info("self-heal[cascade] array=", array, ' ',
           healing_event_name(kind), " fitness=", fitness,
           detail.empty() ? "" : " ", detail);
}

Fitness CascadeSelfHealing::measure(std::size_t stage) {
  // Each stage is checked against the calibration pair in isolation: the
  // calibration input is fed to the array directly (§V.A uses a pattern
  // image with a known per-array fitness).
  const EvaluationResult ev = platform_.evaluate_array(
      arrays_[stage], config_.calibration_input,
      config_.calibration_reference, platform_.now(), "C");
  return ev.fitness;
}

Fitness CascadeSelfHealing::baseline(std::size_t stage) const {
  EHW_REQUIRE(stage < baseline_.size(), "stage out of range");
  return baseline_[stage];
}

void CascadeSelfHealing::record_baseline() {
  for (std::size_t s = 0; s < arrays_.size(); ++s) {
    baseline_[s] = measure(s);
    log(arrays_[s], HealingEventKind::kBaselineRecorded, baseline_[s]);
  }
}

bool CascadeSelfHealing::run_calibration_check() {
  bool all_healthy = true;
  for (std::size_t s = 0; s < arrays_.size(); ++s) {
    EHW_REQUIRE(baseline_[s] != kInvalidFitness,
                "record_baseline() must run before checks");
    const Fitness measured = measure(s);  // step d
    const Fitness delta = measured > baseline_[s] ? measured - baseline_[s]
                                                  : baseline_[s] - measured;
    if (delta <= config_.tolerance) {  // step e
      log(arrays_[s], HealingEventKind::kCheckPassed, measured);
      continue;
    }
    log(arrays_[s], HealingEventKind::kDivergenceDetected, measured);
    all_healthy &= heal(s, measured);
  }
  return all_healthy;
}

bool CascadeSelfHealing::heal(std::size_t stage, Fitness /*measured*/) {
  const std::size_t array = arrays_[stage];
  // Step f: scrub (rewrite last reconfiguration) of the damaged array.
  std::size_t corrected = 0;
  std::size_t uncorrectable = 0;
  platform_.scrub_array(array, platform_.now(), &corrected, &uncorrectable);
  log(array, HealingEventKind::kScrubbed, 0,
      "corrected=" + std::to_string(corrected) +
          " uncorrectable=" + std::to_string(uncorrectable));

  // Step g: re-evaluate with the pattern image.
  const Fitness after = measure(stage);
  const Fitness delta = after > baseline_[stage] ? after - baseline_[stage]
                                                 : baseline_[stage] - after;
  if (delta <= config_.tolerance) {  // step h: transient
    log(array, HealingEventKind::kTransientRecovered, after);
    return true;
  }

  // Step i: permanent. Bypass the stage so the stream keeps flowing.
  log(array, HealingEventKind::kPermanentDeclared, after);
  platform_.acb(array).set_bypass(true);
  log(array, HealingEventKind::kBypassEngaged, after);

  if (config_.reference_available) {
    // Re-evolve against the still-available reference.
    IntrinsicResult r = evolve_on_platform(
        platform_, {array}, config_.calibration_input,
        config_.calibration_reference, config_.recovery_es,
        platform_.configured_genotype(array).has_value()
            ? &*platform_.configured_genotype(array)
            : nullptr);
    platform_.configure_array(array, r.es.best, platform_.now());
    baseline_[stage] = measure(stage);
    log(array, HealingEventKind::kReEvolved, r.es.best_fitness);
  } else {
    // Reference lost: learn from the closest working neighbour.
    const std::size_t master =
        stage > 0 ? arrays_[stage - 1] : arrays_[(stage + 1) % arrays_.size()];
    ImitationConfig ic;
    ic.es = config_.recovery_es;
    ic.start_from_master = true;
    const ImitationResult r = evolve_by_imitation(
        platform_, array, master, config_.calibration_input, ic);
    baseline_[stage] = measure(stage);
    log(array, HealingEventKind::kImitationRecovered, r.residual,
        "master=" + std::to_string(master));
  }
  platform_.acb(array).set_bypass(false);
  return false;  // a permanent fault was found (and mitigated)
}

/// --------------------------------------------------------------------------
TmrSelfHealing::TmrSelfHealing(EvolvablePlatform& platform,
                               std::array<std::size_t, 3> arrays,
                               Config config)
    : platform_(platform),
      arrays_(arrays),
      config_(std::move(config)),
      voter_(config_.voter_threshold) {
  EHW_REQUIRE(platform_.num_arrays() >= 3, "TMR needs three arrays");
}

void TmrSelfHealing::log(std::size_t array, HealingEventKind kind,
                         Fitness fitness, std::string detail) {
  events_.push_back(
      HealingEvent{platform_.now(), array, kind, fitness, std::move(detail)});
  log_info("self-heal[tmr] array=", array, ' ', healing_event_name(kind),
           " fitness=", fitness, detail.empty() ? "" : " ", detail);
}

void TmrSelfHealing::deploy(const evo::Genotype& circuit) {
  sim::SimTime barrier = platform_.now();
  for (const std::size_t a : arrays_) {
    const sim::Interval conf = platform_.configure_array(a, circuit, barrier);
    barrier = conf.end;
    platform_.acb(a).set_fitness_source(FitnessSource::kNeighborVsOut);
  }
  allowance_ = {0, 0, 0};
}

TmrSelfHealing::FrameResult TmrSelfHealing::process_frame(
    const img::Image& input) {
  FrameResult result;
  // Parallel mode: the three arrays filter the same frame; the pixel voter
  // merges them so a valid output flows regardless of a single fault.
  const img::Image out0 = platform_.filter_array(arrays_[0], input);
  const img::Image out1 = platform_.filter_array(arrays_[1], input);
  const img::Image out2 = platform_.filter_array(arrays_[2], input);
  PixelVoteResult voted = PixelVoter::vote(out0, out1, out2);

  // Fitness voter feed: each ACB fitness unit measures its array's output
  // against the voted stream (out-vs-neighbour mode).
  const sim::SimTime t = platform_.now();
  result.fitness[0] =
      platform_.evaluate_array(arrays_[0], input, voted.majority, t, "V").fitness;
  result.fitness[1] =
      platform_.evaluate_array(arrays_[1], input, voted.majority, t, "V").fitness;
  result.fitness[2] =
      platform_.evaluate_array(arrays_[2], input, voted.majority, t, "V").fitness;
  // Discount each array's known post-recovery residual before voting, so
  // an already-mitigated fault is not re-flagged while new faults are.
  std::array<Fitness, 3> adjusted{};
  for (std::size_t i = 0; i < 3; ++i) {
    adjusted[i] = result.fitness[i] > allowance_[i]
                      ? result.fitness[i] - allowance_[i]
                      : 0;
  }
  result.vote = voter_.vote(adjusted);

  // The voted stream that flowed out during THIS frame: the pixel voter
  // already masked the fault, so this is valid even when healing runs.
  result.voted = std::move(voted.majority);

  if (result.vote.faulty.has_value()) {
    const std::size_t faulty = *result.vote.faulty;
    log(arrays_[faulty], HealingEventKind::kDivergenceDetected,
        result.fitness[faulty]);
    heal(faulty, input);  // takes effect from the next frame on
    result.recovered_this_frame = true;
  }
  return result;
}

void TmrSelfHealing::heal(std::size_t faulty, const img::Image& input) {
  const std::size_t array = arrays_[faulty];
  // Step d: scrub the damaged array.
  std::size_t corrected = 0;
  std::size_t uncorrectable = 0;
  platform_.scrub_array(array, platform_.now(), &corrected, &uncorrectable);
  log(array, HealingEventKind::kScrubbed, 0,
      "corrected=" + std::to_string(corrected) +
          " uncorrectable=" + std::to_string(uncorrectable));

  // Step e/f: re-measure against the healthy pair's voted output.
  const std::size_t m0 = arrays_[(faulty + 1) % 3];
  const std::size_t m1 = arrays_[(faulty + 2) % 3];
  const img::Image healthy0 = platform_.filter_array(m0, input);
  const img::Image healthy1 = platform_.filter_array(m1, input);
  const PixelVoteResult healthy_vote =
      PixelVoter::vote(healthy0, healthy1, healthy0);
  const Fitness after = platform_
                            .evaluate_array(array, input,
                                            healthy_vote.majority,
                                            platform_.now(), "V")
                            .fitness;
  if (after <= config_.voter_threshold) {
    log(array, HealingEventKind::kTransientRecovered, after);
    return;
  }

  // Step g: permanent -> evolution by imitation from a healthy neighbour.
  log(array, HealingEventKind::kPermanentDeclared, after);
  ImitationConfig ic;
  ic.es = config_.recovery_es;
  ic.start_from_master = true;
  const ImitationResult r =
      evolve_by_imitation(platform_, array, m0, input, ic);
  log(array, HealingEventKind::kImitationRecovered, r.residual,
      "master=" + std::to_string(m0) +
          " generations=" + std::to_string(r.es.generations_run));

  // Step h: non-zero residual -> paste the recovered chromosome everywhere
  // so the voter sees three identical circuits again, and record the
  // residual as this array's similarity allowance (the damaged fabric
  // still deviates by about that much even under the same chromosome).
  if (r.residual > 0 && config_.paste_on_partial_recovery) {
    sim::SimTime barrier = platform_.now();
    for (const std::size_t a : arrays_) {
      const sim::Interval conf =
          platform_.configure_array(a, r.es.best, barrier);
      barrier = conf.end;
    }
    log(array, HealingEventKind::kGenotypePasted, r.residual);
  }
  if (r.residual > 0) {
    // Measure the ACTUAL post-recovery divergence of the damaged array
    // against the refreshed voted output (the quantity the voter will see
    // from now on) and discount it with a 50% margin.
    const img::Image o0 = platform_.filter_array(arrays_[0], input);
    const img::Image o1 = platform_.filter_array(arrays_[1], input);
    const img::Image o2 = platform_.filter_array(arrays_[2], input);
    const PixelVoteResult fresh = PixelVoter::vote(o0, o1, o2);
    const Fitness measured =
        platform_
            .evaluate_array(array, input, fresh.majority, platform_.now(),
                            "V")
            .fitness;
    allowance_[faulty] = measured + measured / 2 + config_.voter_threshold;
  }
}

}  // namespace ehw::platform
