#pragma once
// Intrinsic evolution drivers (§IV.B Independent & Parallel modes).
//
// Time model — exactly the Fig. 11 pipeline:
//   * chromosome MUTATION happens in software, overlapped with the
//     previous candidates' evaluation, so it never appears on the
//     hardware timeline;
//   * RECONFIGURATION (R) books the single engine AND the target array;
//   * FITNESS EVALUATION (F) books the target array only — so with one
//     array every candidate is strictly R then F (9(R+F) per generation),
//     while with three arrays the engine reconfigures array B while array
//     A evaluates, and evaluations overlap each other;
//   * parent SELECTION closes the generation: no next-generation R may
//     start before every fitness of the current generation is known.
//
// Offspring generation is either CLASSIC (all lambda mutate the parent at
// rate k) or the paper's TWO-LEVEL strategy (§VI.B) — see evo/offspring.hpp.

#include <cstdint>
#include <vector>

#include "ehw/evo/es.hpp"
#include "ehw/platform/checkpoint.hpp"
#include "ehw/platform/wave.hpp"

namespace ehw::platform {

struct IntrinsicResult {
  evo::EsResult es;
  /// Simulated duration of the run (timeline makespan delta).
  sim::SimTime duration = 0;
  /// DPR writes performed during the run.
  std::uint64_t pe_writes = 0;
  /// True when the run stopped early because the checkpoint policy asked
  /// for preemption (preempt_after budget or should_preempt). The final
  /// checkpoint has already been emitted through the sink.
  bool preempted = false;
  /// Average simulated time per generation (duration / generations).
  [[nodiscard]] double seconds_per_generation() const {
    return es.generations_run == 0
               ? 0.0
               : sim::to_seconds(duration) /
                     static_cast<double>(es.generations_run);
  }
};

/// Runs (1+lambda) evolution as a client of `executor`: every offspring
/// wave is submitted to it (lanes/arrays are whatever the executor
/// granted), so the same loop runs standalone or multiplexed on a
/// scheduler pool. The filter evolves to map `train` onto `reference`,
/// starting from a random parent drawn from config.seed, or from
/// `initial` when given.
///
/// `checkpoint` (optional) enables durable runs: emit state at generation
/// boundaries, resume from a prior MissionCheckpoint, and/or preempt
/// after a step budget — see platform/checkpoint.hpp. Resuming reanchors
/// the platform clock via reset_time(), so the caller must own the
/// platform exclusively. The checkpoint's LOGICAL lane count (which
/// drives offspring distribution, RNG consumption and per-lane timing)
/// need not match the granted slice: logical lane j maps onto physical
/// array j % granted. With granted >= logical the resumed run is
/// bit-identical to the uninterrupted one including simulated time (the
/// surplus arrays are never booked); with granted < logical fitness,
/// genotypes and RNG stream stay bit-identical while the simulated
/// timeline honestly dilates (lanes share arrays). A nullptr / inactive
/// policy is byte-identical to the historical path.
IntrinsicResult evolve_mission(WaveExecutor& executor, const img::Image& train,
                               const img::Image& reference,
                               const evo::EsConfig& config,
                               const evo::Genotype* initial = nullptr,
                               const CheckpointPolicy* checkpoint = nullptr);

/// Standalone entry point: runs evolve_mission through a
/// DirectWaveExecutor over the given arrays of a caller-owned platform
/// (one array = Independent evolution; several = Parallel evolution with
/// offspring distributed across the arrays).
IntrinsicResult evolve_on_platform(EvolvablePlatform& platform,
                                   const std::vector<std::size_t>& arrays,
                                   const img::Image& train,
                                   const img::Image& reference,
                                   const evo::EsConfig& config,
                                   const evo::Genotype* initial = nullptr,
                                   const CheckpointPolicy* checkpoint = nullptr);

}  // namespace ehw::platform
