#pragma once
// EvolvablePlatform — the SoPC of Fig. 2: a stack of ACB+array modules on
// a virtual reconfigurable fabric, one shared reconfiguration engine, the
// self-addressed register file, and the simulated-time model.
//
// Responsibilities:
//   * intrinsic candidate configuration: DPR-diff a genotype against what
//     is currently configured on an array and write only changed PEs
//     (67.53 us each, serialized on the single engine);
//   * intrinsic evaluation: decode the array FROM CONFIGURATION MEMORY
//     (so injected faults perturb behaviour), stream an image through it,
//     measure aggregated MAE in the ACB's fitness unit, and charge the
//     streaming time on the array's timeline resource;
//   * mission-time processing in the four modes of §IV.A (independent,
//     parallel, cascaded, bypass);
//   * fault injection (dummy-PE / SEU / LPD) and scrubbing.

#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "ehw/common/thread_pool.hpp"
#include "ehw/evo/genotype.hpp"
#include "ehw/fpga/config_memory.hpp"
#include "ehw/fpga/fault.hpp"
#include "ehw/fpga/geometry.hpp"
#include "ehw/img/image.hpp"
#include "ehw/pe/compiled.hpp"
#include "ehw/platform/acb.hpp"
#include "ehw/platform/registers.hpp"
#include "ehw/reconfig/engine.hpp"
#include "ehw/sim/timeline.hpp"
#include "ehw/sim/trace.hpp"

namespace ehw::platform {

struct PlatformConfig {
  std::size_t num_arrays = 3;
  fpga::ArrayShape shape{4, 4};
  /// Pixel/ICAP nominal clock (paper: 100 MHz).
  double clock_mhz = 100.0;
  /// Width of the images the line FIFOs are sized for.
  std::size_t line_width = 128;
  std::uint64_t seed = 0x13572468ACE02468ULL;
  /// Record R/F/S intervals for Gantt rendering (small runs only).
  bool enable_trace = false;
  /// Host thread pool for image streaming; nullptr = sequential.
  ThreadPool* pool = nullptr;
};

struct EvaluationResult {
  Fitness fitness = kInvalidFitness;
  sim::Interval span;  // occupancy of the array's datapath
};

class EvolvablePlatform {
 public:
  explicit EvolvablePlatform(PlatformConfig config);

  // Non-copyable: owns fabric state and timeline identities.
  EvolvablePlatform(const EvolvablePlatform&) = delete;
  EvolvablePlatform& operator=(const EvolvablePlatform&) = delete;

  [[nodiscard]] const PlatformConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t num_arrays() const noexcept {
    return config_.num_arrays;
  }
  [[nodiscard]] const fpga::FabricGeometry& geometry() const noexcept {
    return geometry_;
  }

  /// --- the MicroBlaze bus --------------------------------------------------
  [[nodiscard]] RegValue reg_read(RegAddr addr) const {
    return regs_.read(addr);
  }
  void reg_write(RegAddr addr, RegValue value) { regs_.write(addr, value); }
  [[nodiscard]] ArrayControlBlock& acb(std::size_t array);
  [[nodiscard]] const ArrayControlBlock& acb(std::size_t array) const;

  /// --- intrinsic configuration ---------------------------------------------
  /// Writes `genotype` onto array `array`: mux/output genes go to ACB
  /// registers (software-speed, not charged), changed function genes go
  /// through the reconfiguration engine (kPeReconfigTime each, engine +
  /// array booked, starting no earlier than `earliest`). Returns the span
  /// covering all

  /// DPR writes (zero-length at `earliest` when nothing changed).
  sim::Interval configure_array(std::size_t array,
                                const evo::Genotype& genotype,
                                sim::SimTime earliest = 0);

  /// The genotype most recently configured on the array (nullopt before
  /// the first configure_array call).
  [[nodiscard]] const std::optional<evo::Genotype>& configured_genotype(
      std::size_t array) const;

  /// --- intrinsic evaluation / processing ----------------------------------
  /// Decodes the array from configuration memory (faults included) with
  /// the ACB's current mux registers and filters `input` through it.
  /// Functional only — no time charged.
  [[nodiscard]] img::Image filter_array(std::size_t array,
                                        const img::Image& input) const;

  /// Streams `input` through the array and measures aggregated MAE of the
  /// output against `compare` in the ACB fitness unit. Publishes the value
  /// to the RO registers and charges streaming time on the array resource.
  EvaluationResult evaluate_array(std::size_t array, const img::Image& input,
                                  const img::Image& compare,
                                  sim::SimTime earliest = 0,
                                  const std::string& trace_label = "F");

  /// The three phases of evaluate_array split out so evolution drivers can
  /// overlap the host-side fitness computation of a whole candidate wave
  /// (evo::batch_fitness) while keeping the per-candidate simulated-time
  /// bookkeeping byte-identical to sequential evaluate_array calls:
  ///   compile_array    — host-compiled view of the array as currently
  ///                      configured (decoded from configuration memory,
  ///                      faults included);
  ///   book_evaluation  — charges the frame-streaming span on the array's
  ///                      timeline resource and records the trace box;
  ///   publish_fitness  — latches a fitness value into the ACB's RO
  ///                      registers (what the MicroBlaze would read back).
  [[nodiscard]] pe::CompiledArray compile_array(std::size_t array) const;

  /// Stable content hash of everything compile_array(array) observes: the
  /// array's *actual* configuration-memory words (the genotype as
  /// materialized through the engine, plus any SEU/LPD/dummy-PE damage —
  /// the defect map), the ACB tap/output registers, the fabric shape and
  /// the array index (defective-cell seeds are position-dependent). Equal
  /// fingerprints — on this platform or any platform with the same shape
  /// and layout — decode to behaviourally identical circuits, which makes
  /// this the scheduler's compiled-array cache key.
  [[nodiscard]] std::uint64_t configuration_fingerprint(
      std::size_t array) const;
  sim::Interval book_evaluation(std::size_t array, std::size_t width,
                                std::size_t height, sim::SimTime earliest,
                                const std::string& trace_label = "F");
  void publish_fitness(std::size_t array, Fitness fitness);

  /// --- mission-time processing modes (§IV.A) -------------------------------
  /// Independent: each array processes its own input.
  [[nodiscard]] img::Image process_independent(std::size_t array,
                                               const img::Image& input) const {
    return filter_array(array, input);
  }

  /// Parallel: every array processes the same input (TMR substrate).
  [[nodiscard]] std::vector<img::Image> process_parallel(
      const img::Image& input) const;

  /// Cascaded: ACB order defines the chain; a bypassed stage forwards its
  /// input downstream unchanged (while its array still *sees* the stream —
  /// the hook evolution-by-imitation relies on). Returns the chain output;
  /// optionally all stage outputs (stage_outputs[i] = what stage i passed
  /// downstream) and the bypassed arrays' own outputs.
  [[nodiscard]] img::Image process_cascade(
      const img::Image& input,
      std::vector<img::Image>* stage_outputs = nullptr) const;

  /// Cascade variant for callers that only need the per-stage outputs
  /// (the chain output is always stage_outputs.back()).
  void process_cascade_into(const img::Image& input,
                            std::vector<img::Image>& stage_outputs) const {
    static_cast<void>(process_cascade(input, &stage_outputs));
  }

  /// Total cascade latency in cycles (array latencies + FIFO fills) for
  /// the latency-compensation report.
  [[nodiscard]] std::uint64_t cascade_latency_cycles() const;

  /// --- faults & scrubbing ---------------------------------------------------
  /// Paper's PE-level fault model: writes the dummy PBS into the slot and
  /// locks it (subsequent reconfiguration writes keep producing the dummy,
  /// making the damage permanent until clear_pe_fault).
  void inject_pe_fault(std::size_t array, std::size_t row, std::size_t col);
  void clear_pe_fault(std::size_t array, std::size_t row, std::size_t col);
  [[nodiscard]] bool has_pe_fault(std::size_t array, std::size_t row,
                                  std::size_t col) const;

  /// Transient fault: flips one random configuration bit in the array.
  fpga::FaultRecord inject_seu(std::size_t array);
  /// Permanent fault: random stuck-at bit in the array.
  fpga::FaultRecord inject_lpd(std::size_t array);

  /// Scrubs every slot of the array through the engine; returns the number
  /// of corrected and uncorrectable words and the time span.
  sim::Interval scrub_array(std::size_t array, sim::SimTime earliest,
                            std::size_t* corrected = nullptr,
                            std::size_t* uncorrectable = nullptr);

  /// --- time & instrumentation ----------------------------------------------
  [[nodiscard]] sim::SimTime now() const noexcept {
    return timeline_.makespan();
  }
  void reset_time();
  [[nodiscard]] const reconfig::EngineStats& engine_stats() const noexcept {
    return engine_->stats();
  }
  [[nodiscard]] sim::Trace& trace() noexcept { return trace_; }
  [[nodiscard]] const sim::Timeline& timeline() const noexcept {
    return timeline_;
  }
  [[nodiscard]] sim::ResourceId array_resource(std::size_t array) const;
  [[nodiscard]] fpga::ConfigMemory& config_memory() noexcept {
    return memory_;
  }
  [[nodiscard]] reconfig::ReconfigurationEngine& engine() noexcept {
    return *engine_;
  }
  [[nodiscard]] ThreadPool* pool() const noexcept { return config_.pool; }

  /// Decoded behavioural view of the array (fabric + ACB registers).
  [[nodiscard]] pe::SystolicArray decode_array(std::size_t array) const;

  /// Evaluation duration of a w x h frame on one array.
  [[nodiscard]] sim::SimTime frame_time(std::size_t width,
                                        std::size_t height) const;

 private:
  void check_array(std::size_t array) const {
    EHW_REQUIRE(array < config_.num_arrays, "array index out of range");
  }
  [[nodiscard]] std::uint8_t effective_opcode(std::size_t slot_index,
                                              std::uint8_t wanted) const;

  PlatformConfig config_;
  fpga::FabricGeometry geometry_;
  fpga::ConfigMemory memory_;
  reconfig::PbsLibrary library_;
  sim::Timeline timeline_;
  sim::Trace trace_;
  std::unique_ptr<reconfig::ReconfigurationEngine> engine_;
  fpga::FaultInjector injector_;
  RegisterFile regs_;
  std::vector<ArrayControlBlock> acbs_;
  std::vector<sim::ResourceId> array_resources_;
  std::vector<std::optional<evo::Genotype>> configured_;
  std::set<std::size_t> locked_slots_;  // dummy-PE (permanent) fault sites
};

}  // namespace ehw::platform
