#pragma once
// MissionController — the deployment-level wrapper a downstream user runs:
// it owns an operating mode, streams frames through the platform, applies
// the configured dependability policy (periodic blind ECC scrubbing,
// calibration checks, TMR voting) and keeps mission statistics. This is
// the glue the paper describes verbally in §IV/§V — pick the processing
// mode from the mission goal, pick the self-healing strategy from the
// mode — packaged behind one API.

#include <memory>
#include <optional>
#include <vector>

#include "ehw/fpga/ecc.hpp"
#include "ehw/platform/self_healing.hpp"
#include "ehw/platform/wave.hpp"

namespace ehw::platform {

/// The §IV.A processing modes at mission granularity.
enum class MissionMode : std::uint8_t {
  kIndependent,  // each frame through one array
  kParallelTmr,  // three arrays + voters + §V.B healing
  kCascaded,     // the ACB chain, §V.A healing
};

struct MissionConfig {
  MissionMode mode = MissionMode::kParallelTmr;
  /// Blind ECC scrub every N frames (0 disables). Clears accumulating
  /// SEUs before they ever become observable.
  std::size_t ecc_scrub_period = 4;
  /// Calibration check every N frames (0 disables; cascaded mode only).
  std::size_t calibration_period = 8;
  /// Voter threshold / §V.B similarity margin (TMR mode).
  Fitness voter_threshold = 100;
  /// Recovery evolution settings shared by both healing strategies.
  evo::EsConfig recovery_es;
  /// Calibration images (cascaded mode).
  img::Image calibration_input;
  img::Image calibration_reference;
  /// Whether reference imagery survives at mission time (§V.A step i).
  bool reference_available = false;
};

struct MissionStats {
  std::uint64_t frames = 0;
  std::uint64_t ecc_scrubs = 0;
  std::uint64_t ecc_corrected_bits = 0;
  std::uint64_t calibration_checks = 0;
  std::uint64_t faults_detected = 0;
  std::uint64_t transient_recoveries = 0;
  std::uint64_t permanent_recoveries = 0;
  sim::SimTime mission_time = 0;
  /// Compiled-array cache traffic of this mission's evaluation waves
  /// (filled by the scheduler when the mission runs on an ArrayPool;
  /// both stay 0 on the direct, uncached path). Unlike every field above,
  /// these depend on what OTHER missions warmed the shared cache with, so
  /// they are execution statistics — not part of the bit-reproducible
  /// mission result.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  [[nodiscard]] double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
  /// Fitness-memo traffic of this mission's evaluation waves (filled by
  /// the scheduler when the pool's FitnessMemo is enabled; both stay 0
  /// otherwise). Execution statistics like the cache counters: a hit
  /// means the candidate's fitness was served without streaming the
  /// frame, with bit-identical mission results either way.
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  [[nodiscard]] double memo_hit_rate() const {
    const std::uint64_t total = memo_hits + memo_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(memo_hits) /
                            static_cast<double>(total);
  }
};

class MissionController {
 public:
  /// The platform must already hold evolved circuits (deploy() helps).
  MissionController(EvolvablePlatform& platform, MissionConfig config);

  /// Pool-client form: runs the mission on the arrays a scheduler lease
  /// granted (executor.platform()), e.g. inside an ArrayPool job body.
  MissionController(WaveExecutor& executor, MissionConfig config)
      : MissionController(executor.platform(), std::move(config)) {}

  /// Configures `circuit` according to the mode: every TMR array, every
  /// cascade stage, or array 0 for independent mode.
  void deploy(const evo::Genotype& circuit);

  /// Streams one frame and returns the mission output, running whatever
  /// periodic maintenance is due. Never blocks the output: healing uses
  /// bypass/voting per the §V strategies.
  [[nodiscard]] img::Image process_frame(const img::Image& frame);

  [[nodiscard]] const MissionStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<HealingEvent>& healing_events() const;

  /// Direct access for scenario scripting (fault injection etc.).
  [[nodiscard]] EvolvablePlatform& platform() noexcept { return platform_; }

 private:
  void run_ecc_scrub();
  void run_calibration();

  EvolvablePlatform& platform_;
  MissionConfig config_;
  MissionStats stats_;
  fpga::FrameEcc ecc_;
  std::unique_ptr<TmrSelfHealing> tmr_;
  std::unique_ptr<CascadeSelfHealing> cascade_;
  std::vector<HealingEvent> no_events_;
};

}  // namespace ehw::platform
