#include "ehw/platform/registers.hpp"

namespace ehw::platform {

RegisterFile::RegisterFile(std::size_t num_acbs)
    : num_acbs_(num_acbs),
      global_(2, 0),
      acb_(num_acbs * kAcbRegCount, 0) {
  EHW_REQUIRE(num_acbs_ > 0, "platform needs at least one ACB");
  global_[kRegPlatformId] =
      kPlatformMagic | static_cast<RegValue>(num_acbs_ & 0xFF);
  global_[kRegNumAcbs] = static_cast<RegValue>(num_acbs_);
}

bool RegisterFile::decode(RegAddr addr, std::size_t* acb,
                          RegAddr* offset) const {
  if (addr < kAcbBase) return false;
  const RegAddr rel = addr - kAcbBase;
  const std::size_t block = rel / kAcbStride;
  const RegAddr off = rel % kAcbStride;
  if (block >= num_acbs_ || off >= kAcbRegCount) return false;
  if (acb != nullptr) *acb = block;
  if (offset != nullptr) *offset = off;
  return true;
}

std::size_t RegisterFile::index_of(RegAddr addr) const {
  std::size_t acb = 0;
  RegAddr off = 0;
  EHW_REQUIRE(decode(addr, &acb, &off), "unmapped ACB register address");
  return acb * kAcbRegCount + off;
}

RegValue RegisterFile::read(RegAddr addr) const {
  if (addr < kAcbBase) {
    EHW_REQUIRE(addr < global_.size(), "unmapped global register");
    return global_[addr];
  }
  return acb_[index_of(addr)];
}

void RegisterFile::write(RegAddr addr, RegValue value) {
  if (addr < kAcbBase) {
    // Whole global block is read-only; bus writes are ignored like a
    // well-behaved slave.
    return;
  }
  std::size_t acb = 0;
  RegAddr off = 0;
  EHW_REQUIRE(decode(addr, &acb, &off), "unmapped ACB register address");
  if (is_read_only(off, /*is_global=*/false)) return;
  acb_[acb * kAcbRegCount + off] = value;
}

void RegisterFile::publish(RegAddr addr, RegValue value) {
  if (addr < kAcbBase) {
    EHW_REQUIRE(addr < global_.size(), "unmapped global register");
    global_[addr] = value;
    return;
  }
  acb_[index_of(addr)] = value;
}

bool RegisterFile::is_read_only(RegAddr offset_or_global, bool is_global) {
  if (is_global) return true;
  switch (offset_or_global) {
    case kRegFitnessLo:
    case kRegFitnessHi:
    case kRegLatency:
    case kRegStatus:
      return true;
    default:
      return false;
  }
}

}  // namespace ehw::platform
