#pragma once
// Mission-level checkpointing. A MissionCheckpoint captures everything an
// intrinsic evolution run (plain or cascaded) needs to continue with
// bit-identical final results on a FRESH platform: the ES search state
// (evo::EsCheckpoint), the simulated-clock barrier at the generation
// boundary, the accumulated pe_writes/elapsed counters, and the genotype
// currently configured on each lane (so the DPR-diff reconfiguration
// stream — and therefore the timeline — replays exactly).
//
// The restore protocol the drivers implement:
//   1. configure each saved lane genotype at time 0 (full writes; their
//      cost is NOT charged to the mission — it was charged before the
//      checkpoint and is carried in `pe_writes`/`elapsed`);
//   2. reset the platform timeline and engine stats;
//   3. resume the generation loop at `next_generation` with the saved
//      absolute barrier and RNG state.
// Because every resource booking ends at or before the barrier at a
// generation boundary, the post-restore schedule depends only on the
// barrier value — the uninterrupted and the resumed run book identical
// intervals from there on.

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ehw/common/json.hpp"
#include "ehw/common/types.hpp"
#include "ehw/evo/checkpoint.hpp"
#include "ehw/evo/genotype.hpp"
#include "ehw/sim/time.hpp"

namespace ehw::platform {

/// Per-stage search state of a cascaded mission (each stage keeps its own
/// parent and its own split RNG stream).
struct CascadeStageState {
  evo::Genotype parent;
  Fitness parent_fitness = kInvalidFitness;
  std::array<std::uint64_t, 4> rng_state{};
  /// The driver's staleness marker: the stage input moved since
  /// parent_fitness was measured. Kept separate from the fitness value —
  /// the sequential schedule's early-exit reads the (stale) fitness even
  /// while dirty, so collapsing the two would change results.
  bool dirty = true;
};

struct MissionCheckpoint {
  enum class Kind : std::uint8_t { kEvolve, kCascade };
  Kind kind = Kind::kEvolve;

  /// Absolute simulated time of the generation boundary (every booking
  /// ends at or before it).
  sim::SimTime barrier = 0;
  /// Simulated duration consumed before the checkpoint (accumulated
  /// across prior resumes).
  sim::SimTime elapsed = 0;
  /// DPR writes performed before the checkpoint (same accumulation).
  std::uint64_t pe_writes = 0;
  /// Genotype configured on each lane at the boundary (slot i = lane i of
  /// the mission's slice); nullopt when the lane was never configured.
  std::vector<std::optional<evo::Genotype>> lane_genotypes;

  /// kEvolve: the single ES stream.
  evo::EsCheckpoint es;

  /// kCascade: one search state per stage, plus the loop cursors — the
  /// next (stage, generation) pair the schedule loop will execute.
  std::vector<CascadeStageState> stages;
  std::size_t next_stage = 0;
  Generation next_generation = 1;
};

/// How a driver should checkpoint. Default-constructed = no checkpointing
/// (the historical behaviour, byte-for-byte).
struct CheckpointPolicy {
  /// Emit a checkpoint every N generations (0 = never). For cascades the
  /// unit is one stage-generation step.
  Generation every = 0;
  /// Receives each checkpoint; invoked synchronously at the boundary.
  std::function<void(const MissionCheckpoint&)> sink;
  /// When set, the driver restores from this state instead of starting
  /// fresh.
  const MissionCheckpoint* resume = nullptr;
  /// Preempt the run after this many generations/steps executed since
  /// (re)start (0 = run to completion): a final checkpoint is emitted and
  /// the driver returns its partial result. This is how a mission is
  /// migrated off its slice without killing the process.
  Generation preempt_after = 0;
  /// Asynchronous preemption: polled at every generation boundary; when
  /// it returns true the driver emits a final checkpoint (sink set) and
  /// returns its partial result with `preempted` set. This is how the
  /// scheduler pulls a running mission off a quarantined slice.
  std::function<bool()> should_preempt;

  [[nodiscard]] bool active() const noexcept {
    return every != 0 || resume != nullptr || preempt_after != 0 ||
           static_cast<bool>(sink) || static_cast<bool>(should_preempt);
  }
};

/// JSON round trip; format tag "mpa-ckpt-v1". 64-bit fields travel as
/// decimal strings, RNG words as 16-hex, genotypes as MPA1 lines.
[[nodiscard]] Json mission_checkpoint_to_json(const MissionCheckpoint& ckpt);

/// Returns "" on success, else a description of the first bad field.
[[nodiscard]] std::string mission_checkpoint_from_json(const Json& json,
                                                       MissionCheckpoint& out);

}  // namespace ehw::platform
