#pragma once
// The self-addressing register map (§III.B: "A self-addressing scheme was
// designed so that every control register in any ACB can be easily
// addressed by the EA in the MicroBlaze. The control registers allow
// different modes of operation of every individual array, as well as
// reading fitness and latency values.").
//
// Address layout (word addresses, 32-bit registers):
//   global block at 0x000:
//     0x000 PLATFORM_ID      (RO)  magic 0x0EH0ACB0 | num ACBs in low byte
//     0x001 NUM_ACBS         (RO)
//   ACB n block at kAcbBase + n * kAcbStride:
//     +0x00 CTRL       bit0 BYPASS; bits[2:1] INPUT_SRC (0 primary,
//                      1 previous ACB); bits[5:4] FITNESS_SRC
//                      (0 ref-vs-out, 1 in-vs-out, 2 neighbor-vs-out)
//     +0x01..0x08 INPUT_TAP[0..7]   window tap per array input
//     +0x09 OUTPUT_ROW
//     +0x0A FITNESS_LO (RO)   +0x0B FITNESS_HI (RO)
//     +0x0C LATENCY    (RO)
//     +0x0D STATUS     (RO)  bit0 FITNESS_VALID
//
// The EA software drives the platform exclusively through reg_read /
// reg_write on the EvolvablePlatform, exactly as the MicroBlaze would.

#include <cstdint>
#include <vector>

#include "ehw/common/assert.hpp"

namespace ehw::platform {

using RegAddr = std::uint32_t;
using RegValue = std::uint32_t;

inline constexpr RegAddr kGlobalBase = 0x000;
inline constexpr RegAddr kAcbBase = 0x100;
inline constexpr RegAddr kAcbStride = 0x40;

// Global register offsets.
inline constexpr RegAddr kRegPlatformId = 0x000;
inline constexpr RegAddr kRegNumAcbs = 0x001;

// Per-ACB register offsets.
inline constexpr RegAddr kRegCtrl = 0x00;
inline constexpr RegAddr kRegInputTap0 = 0x01;  // ..kRegInputTap0+7
inline constexpr RegAddr kRegOutputRow = 0x09;
inline constexpr RegAddr kRegFitnessLo = 0x0A;
inline constexpr RegAddr kRegFitnessHi = 0x0B;
inline constexpr RegAddr kRegLatency = 0x0C;
inline constexpr RegAddr kRegStatus = 0x0D;
inline constexpr RegAddr kAcbRegCount = 0x0E;

// CTRL bit fields.
inline constexpr RegValue kCtrlBypassBit = 1u << 0;
inline constexpr unsigned kCtrlInputSrcShift = 1;   // bits [2:1]
inline constexpr RegValue kCtrlInputSrcMask = 0x3u << kCtrlInputSrcShift;
inline constexpr unsigned kCtrlFitnessSrcShift = 4;  // bits [5:4]
inline constexpr RegValue kCtrlFitnessSrcMask = 0x3u << kCtrlFitnessSrcShift;

// STATUS bits.
inline constexpr RegValue kStatusFitnessValid = 1u << 0;

inline constexpr RegValue kPlatformMagic = 0x0E400000;

/// Raw register backing store for one platform: global block + one block
/// per ACB. Read-only enforcement lives in the platform front-end (the bus
/// slave would simply ignore writes to RO addresses, which we replicate).
class RegisterFile {
 public:
  explicit RegisterFile(std::size_t num_acbs);

  [[nodiscard]] std::size_t num_acbs() const noexcept { return num_acbs_; }

  /// Absolute address of register `offset` in ACB `acb`.
  [[nodiscard]] static RegAddr acb_reg(std::size_t acb, RegAddr offset) {
    return kAcbBase + static_cast<RegAddr>(acb) * kAcbStride + offset;
  }

  /// True if `addr` decodes to some ACB register; outputs which.
  [[nodiscard]] bool decode(RegAddr addr, std::size_t* acb,
                            RegAddr* offset) const;

  [[nodiscard]] RegValue read(RegAddr addr) const;
  void write(RegAddr addr, RegValue value);

  /// Backdoor used by the hardware side (ACBs) to publish RO values.
  void publish(RegAddr addr, RegValue value);

  /// True if the address is a read-only register (bus writes ignored).
  [[nodiscard]] static bool is_read_only(RegAddr offset_or_global,
                                         bool is_global);

 private:
  [[nodiscard]] std::size_t index_of(RegAddr addr) const;

  std::size_t num_acbs_;
  std::vector<RegValue> global_;
  std::vector<RegValue> acb_;  // num_acbs * kAcbRegCount
};

}  // namespace ehw::platform
