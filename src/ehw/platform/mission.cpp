#include "ehw/platform/mission.hpp"

#include "ehw/common/log.hpp"

namespace ehw::platform {

MissionController::MissionController(EvolvablePlatform& platform,
                                     MissionConfig config)
    : platform_(platform),
      config_(std::move(config)),
      ecc_(platform.geometry()) {
  switch (config_.mode) {
    case MissionMode::kParallelTmr: {
      EHW_REQUIRE(platform_.num_arrays() >= 3, "TMR mission needs 3 arrays");
      TmrSelfHealing::Config hc;
      hc.voter_threshold = config_.voter_threshold;
      hc.recovery_es = config_.recovery_es;
      tmr_ = std::make_unique<TmrSelfHealing>(platform_,
                                              std::array<std::size_t, 3>{0, 1,
                                                                         2},
                                              hc);
      break;
    }
    case MissionMode::kCascaded: {
      EHW_REQUIRE(!config_.calibration_input.empty() &&
                      config_.calibration_input.same_shape(
                          config_.calibration_reference),
                  "cascaded mission needs a calibration image pair");
      CascadeSelfHealing::Config hc;
      hc.calibration_input = config_.calibration_input;
      hc.calibration_reference = config_.calibration_reference;
      hc.recovery_es = config_.recovery_es;
      hc.reference_available = config_.reference_available;
      std::vector<std::size_t> stages(platform_.num_arrays());
      for (std::size_t a = 0; a < stages.size(); ++a) stages[a] = a;
      cascade_ = std::make_unique<CascadeSelfHealing>(platform_,
                                                      std::move(stages), hc);
      break;
    }
    case MissionMode::kIndependent:
      break;
  }
}

void MissionController::deploy(const evo::Genotype& circuit) {
  switch (config_.mode) {
    case MissionMode::kParallelTmr:
      tmr_->deploy(circuit);
      break;
    case MissionMode::kCascaded: {
      sim::SimTime barrier = platform_.now();
      for (std::size_t a = 0; a < platform_.num_arrays(); ++a) {
        barrier = platform_.configure_array(a, circuit, barrier).end;
      }
      cascade_->record_baseline();
      break;
    }
    case MissionMode::kIndependent:
      platform_.configure_array(0, circuit, platform_.now());
      break;
  }
  // ECC syndromes follow the deployed configuration.
  ecc_.resync_all(platform_.config_memory());
}

void MissionController::run_ecc_scrub() {
  const fpga::FrameEcc::SweepReport report =
      ecc_.blind_scrub(platform_.config_memory());
  ++stats_.ecc_scrubs;
  stats_.ecc_corrected_bits += report.corrected();
  stats_.mission_time += report.duration;
  if (report.corrected() > 0) {
    log_info("mission: ECC blind scrub corrected ", report.corrected(),
             " bit(s)");
  }
  if (report.uncorrectable() > 0) {
    log_warn("mission: ECC found ", report.uncorrectable(),
             " uncorrectable frame(s); readback scrubbing will handle them");
  }
}

void MissionController::run_calibration() {
  ++stats_.calibration_checks;
  const std::size_t faults_before = cascade_->events().size();
  cascade_->run_calibration_check();
  for (std::size_t i = faults_before; i < cascade_->events().size(); ++i) {
    const HealingEvent& e = cascade_->events()[i];
    if (e.kind == HealingEventKind::kDivergenceDetected) {
      ++stats_.faults_detected;
    }
    if (e.kind == HealingEventKind::kTransientRecovered) {
      ++stats_.transient_recoveries;
    }
    if (e.kind == HealingEventKind::kReEvolved ||
        e.kind == HealingEventKind::kImitationRecovered) {
      ++stats_.permanent_recoveries;
    }
  }
}

img::Image MissionController::process_frame(const img::Image& frame) {
  ++stats_.frames;
  stats_.mission_time +=
      platform_.frame_time(frame.width(), frame.height());

  img::Image out;
  switch (config_.mode) {
    case MissionMode::kParallelTmr: {
      const std::size_t events_before = tmr_->events().size();
      TmrSelfHealing::FrameResult r = tmr_->process_frame(frame);
      for (std::size_t i = events_before; i < tmr_->events().size(); ++i) {
        const HealingEvent& e = tmr_->events()[i];
        if (e.kind == HealingEventKind::kDivergenceDetected) {
          ++stats_.faults_detected;
        }
        if (e.kind == HealingEventKind::kTransientRecovered) {
          ++stats_.transient_recoveries;
        }
        if (e.kind == HealingEventKind::kImitationRecovered) {
          ++stats_.permanent_recoveries;
        }
      }
      if (r.recovered_this_frame) {
        // Recovery reconfigured the fabric; re-arm the ECC reference.
        ecc_.resync_all(platform_.config_memory());
      }
      out = std::move(r.voted);
      break;
    }
    case MissionMode::kCascaded:
      out = platform_.process_cascade(frame);
      break;
    case MissionMode::kIndependent:
      out = platform_.process_independent(0, frame);
      break;
  }

  if (config_.ecc_scrub_period != 0 &&
      stats_.frames % config_.ecc_scrub_period == 0) {
    run_ecc_scrub();
  }
  if (config_.mode == MissionMode::kCascaded &&
      config_.calibration_period != 0 &&
      stats_.frames % config_.calibration_period == 0) {
    run_calibration();
    // Calibration may have re-evolved a stage.
    ecc_.resync_all(platform_.config_memory());
  }
  return out;
}

const std::vector<HealingEvent>& MissionController::healing_events() const {
  if (tmr_ != nullptr) return tmr_->events();
  if (cascade_ != nullptr) return cascade_->events();
  return no_events_;
}

}  // namespace ehw::platform
