#include "ehw/platform/checkpoint.hpp"

#include "ehw/evo/serialize.hpp"

namespace ehw::platform {
namespace {

constexpr const char* kFormatTag = "mpa-ckpt-v1";

std::string genotype_from_json(const Json* field, evo::Genotype& out) {
  if (field == nullptr || !field->is_string()) return "missing genotype line";
  try {
    out = evo::deserialize_genotype(field->as_string());
  } catch (const std::exception& e) {
    return std::string("bad genotype line: ") + e.what();
  }
  return "";
}

std::string rng_state_from_json(const Json* field,
                                std::array<std::uint64_t, 4>& out) {
  if (field == nullptr || !field->is_array() ||
      field->as_array().size() != out.size()) {
    return "rng must be an array of 4 hex words";
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!evo::rng_word_from_json(&field->as_array()[i], out[i])) {
      return "bad rng word";
    }
  }
  return "";
}

Json rng_state_to_json(const std::array<std::uint64_t, 4>& state) {
  Json words = Json::array();
  for (const std::uint64_t w : state) {
    words.push_back(evo::rng_word_to_json(w));
  }
  return words;
}

}  // namespace

Json mission_checkpoint_to_json(const MissionCheckpoint& ckpt) {
  Json lanes = Json::array();
  for (const auto& genotype : ckpt.lane_genotypes) {
    lanes.push_back(genotype.has_value()
                        ? Json(evo::serialize_genotype(*genotype))
                        : Json(nullptr));
  }
  Json json(Json::Object{
      {"format", Json(kFormatTag)},
      {"kind", Json(ckpt.kind == MissionCheckpoint::Kind::kEvolve
                        ? "evolve"
                        : "cascade")},
      {"barrier", json_i64(ckpt.barrier)},
      {"elapsed", json_i64(ckpt.elapsed)},
      {"pe_writes", json_u64(ckpt.pe_writes)},
      {"lanes", std::move(lanes)},
  });
  if (ckpt.kind == MissionCheckpoint::Kind::kEvolve) {
    json.set("es", evo::es_checkpoint_to_json(ckpt.es));
  } else {
    Json stages = Json::array();
    for (const CascadeStageState& stage : ckpt.stages) {
      stages.push_back(Json::Object{
          {"parent", Json(evo::serialize_genotype(stage.parent))},
          {"parent_fitness", json_u64(stage.parent_fitness)},
          {"rng", rng_state_to_json(stage.rng_state)},
          {"dirty", Json(stage.dirty)},
      });
    }
    json.set("stages", std::move(stages));
    json.set("next_stage", json_u64(ckpt.next_stage));
    json.set("next_generation", json_u64(ckpt.next_generation));
  }
  return json;
}

std::string mission_checkpoint_from_json(const Json& json,
                                         MissionCheckpoint& out) {
  if (!json.is_object()) return "checkpoint is not an object";
  if (json.get_string("format", "") != kFormatTag) {
    return "unknown checkpoint format (want " + std::string(kFormatTag) + ")";
  }
  const std::string kind = json.get_string("kind", "");
  if (kind == "evolve") {
    out.kind = MissionCheckpoint::Kind::kEvolve;
  } else if (kind == "cascade") {
    out.kind = MissionCheckpoint::Kind::kCascade;
  } else {
    return "unknown checkpoint kind: " + kind;
  }
  if (!json_read_i64(json.get("barrier"), out.barrier)) {
    return "missing barrier";
  }
  if (!json_read_i64(json.get("elapsed"), out.elapsed)) {
    return "missing elapsed";
  }
  if (!json_read_u64(json.get("pe_writes"), out.pe_writes)) {
    return "missing pe_writes";
  }
  const Json* lanes = json.get("lanes");
  if (lanes == nullptr || !lanes->is_array()) return "missing lanes";
  out.lane_genotypes.clear();
  for (const Json& lane : lanes->as_array()) {
    if (lane.is_null()) {
      out.lane_genotypes.emplace_back(std::nullopt);
      continue;
    }
    evo::Genotype genotype;
    if (std::string err = genotype_from_json(&lane, genotype); !err.empty()) {
      return "lane: " + err;
    }
    out.lane_genotypes.emplace_back(std::move(genotype));
  }
  if (out.kind == MissionCheckpoint::Kind::kEvolve) {
    const Json* es = json.get("es");
    if (es == nullptr) return "missing es";
    return evo::es_checkpoint_from_json(*es, out.es);
  }
  const Json* stages = json.get("stages");
  if (stages == nullptr || !stages->is_array()) return "missing stages";
  out.stages.clear();
  for (const Json& entry : stages->as_array()) {
    CascadeStageState stage;
    if (std::string err =
            genotype_from_json(entry.get("parent"), stage.parent);
        !err.empty()) {
      return "stage parent: " + err;
    }
    if (!json_read_u64(entry.get("parent_fitness"), stage.parent_fitness)) {
      return "missing stage parent_fitness";
    }
    if (std::string err = rng_state_from_json(entry.get("rng"),
                                              stage.rng_state);
        !err.empty()) {
      return "stage " + err;
    }
    const Json* dirty = entry.get("dirty");
    if (dirty == nullptr || !dirty->is_bool()) return "missing stage dirty";
    stage.dirty = dirty->as_bool();
    out.stages.push_back(std::move(stage));
  }
  std::uint64_t next_stage = 0;
  if (!json_read_u64(json.get("next_stage"), next_stage)) {
    return "missing next_stage";
  }
  out.next_stage = static_cast<std::size_t>(next_stage);
  if (!json_read_u64(json.get("next_generation"), out.next_generation)) {
    return "missing next_generation";
  }
  return "";
}

}  // namespace ehw::platform
