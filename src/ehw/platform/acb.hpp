#pragma once
// Array Control Block (§III.B, Fig. 3): the modular unit the platform
// stacks vertically — one per processing array — containing the array's
// controller, the input-source selection, the 3-line window FIFO, the
// latency-compensation bookkeeping and the fitness unit. All its control
// state lives in the self-addressed register file; this class is the
// hardware-side interpreter of those registers.

#include <cstdint>
#include <vector>

#include "ehw/platform/fitness_unit.hpp"
#include "ehw/platform/line_fifo.hpp"
#include "ehw/platform/registers.hpp"

namespace ehw::platform {

enum class InputSource : std::uint8_t {
  kPrimary = 0,   // the platform's common input stream
  kPrevious = 1,  // the previous ACB's output (cascade)
};

class ArrayControlBlock {
 public:
  ArrayControlBlock(RegisterFile& regs, std::size_t index,
                    std::size_t array_inputs, std::size_t rows,
                    std::size_t line_width, double clock_mhz);

  [[nodiscard]] std::size_t index() const noexcept { return index_; }

  /// --- control register interpretation -----------------------------------
  [[nodiscard]] bool bypass() const;
  void set_bypass(bool on);

  [[nodiscard]] InputSource input_source() const;
  void set_input_source(InputSource src);

  [[nodiscard]] FitnessSource fitness_source() const;
  void set_fitness_source(FitnessSource src);

  /// Window taps for each array input, masked into [0, 9) the way the
  /// hardware mux would truncate an oversized register value.
  [[nodiscard]] std::vector<std::uint8_t> input_taps() const;
  void set_input_taps(const std::vector<std::uint8_t>& taps);

  [[nodiscard]] std::uint8_t output_row() const;
  void set_output_row(std::uint8_t row);

  /// --- hardware-side publication ------------------------------------------
  /// Latches a fitness measurement into the RO registers.
  void publish_fitness(Fitness f);
  void publish_latency(std::uint32_t cycles);
  void invalidate_fitness();

  /// RO register views (what the EA software reads back over the bus).
  [[nodiscard]] Fitness read_fitness_registers() const;
  [[nodiscard]] bool fitness_valid() const;

  [[nodiscard]] FitnessUnit& fitness_unit() noexcept { return fitness_unit_; }
  [[nodiscard]] const LineFifo& line_fifo() const noexcept { return fifo_; }

 private:
  [[nodiscard]] RegAddr reg(RegAddr offset) const {
    return RegisterFile::acb_reg(index_, offset);
  }

  RegisterFile& regs_;
  std::size_t index_;
  std::size_t array_inputs_;
  std::size_t rows_;
  FitnessUnit fitness_unit_;
  LineFifo fifo_;
};

}  // namespace ehw::platform
