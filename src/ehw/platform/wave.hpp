#pragma once
// Shared wave-evaluation protocol for the intrinsic evolution drivers:
// one (1+lambda) offspring wave is configured/compiled/booked candidate
// by candidate (simulated-time bookkeeping identical to evaluating each
// candidate in place), then every fitness is computed host-parallel with
// whole-candidate granularity (evo::batch_fitness), then published to the
// ACBs in evaluation order. evolution_driver and cascade_evolution both
// run exactly this protocol and differ only in how a candidate maps to an
// evaluation lane.

#include <vector>

#include "ehw/evo/offspring.hpp"
#include "ehw/platform/platform.hpp"

namespace ehw::platform {

struct WaveOutcome {
  /// Per-candidate fitness, in offspring order.
  std::vector<Fitness> fitness;
  /// When every fitness of the wave is known (>= the barrier passed in).
  sim::SimTime end = 0;
  /// Argmin over `fitness` (first on ties, matching sequential selection).
  std::size_t best_index = 0;
  Fitness best_fitness = kInvalidFitness;
};

/// Evaluates one offspring wave on the platform. `lanes[i]` is the array
/// that evaluates offspring[i]; every R starts no earlier than `barrier`.
[[nodiscard]] WaveOutcome evaluate_offspring_wave(
    EvolvablePlatform& platform, const std::vector<evo::Candidate>& offspring,
    const std::vector<std::size_t>& lanes, const img::Image& input,
    const img::Image& compare, sim::SimTime barrier);

}  // namespace ehw::platform
