#pragma once
// Shared wave-evaluation protocol for the intrinsic evolution drivers:
// one (1+lambda) offspring wave is configured/compiled/booked candidate
// by candidate (simulated-time bookkeeping identical to evaluating each
// candidate in place), then every fitness is computed host-parallel with
// whole-candidate granularity (evo::batch_fitness), then published to the
// ACBs in evaluation order. evolution_driver and cascade_evolution both
// run exactly this protocol and differ only in how a candidate maps to an
// evaluation lane.
//
// The wave is also the scheduler's unit of work: drivers do not own
// arrays any more — they hold a WaveExecutor and submit waves to it. The
// DirectWaveExecutor below runs them in place on a caller-owned platform
// (the standalone path); sched::MissionContext routes them through an
// ArrayPool lease with a shared compiled-array cache.

#include <functional>
#include <memory>
#include <vector>

#include "ehw/evo/fitness_memo.hpp"
#include "ehw/evo/offspring.hpp"
#include "ehw/platform/platform.hpp"

namespace ehw::platform {

struct WaveOutcome {
  /// Per-candidate fitness, in offspring order.
  std::vector<Fitness> fitness;
  /// When every fitness of the wave is known (>= the barrier passed in).
  sim::SimTime end = 0;
  /// Argmin over `fitness` (first on ties, matching sequential selection).
  std::size_t best_index = 0;
  Fitness best_fitness = kInvalidFitness;
};

/// What compiling one lane's candidate yields: the evaluable array plus
/// the candidate's identity key for fitness memoization (the platform
/// configuration fingerprint mixed with the genotype hash on the
/// scheduler path; 0 = unkeyed, never memoized).
struct CompiledLane {
  std::shared_ptr<const pe::CompiledArray> array;
  std::uint64_t memo_key = 0;
};

/// Compiles the candidate currently configured on `lane`. Returning a
/// shared pointer lets implementations serve cached instances (the
/// scheduler's genotype-keyed LRU) instead of recompiling.
using WaveCompileFn = std::function<CompiledLane(std::size_t lane)>;

/// Fitness-memo hookup for one wave: the shared memo, the frame-set
/// identity of the (input, compare) pair, and the wave's hit/miss tally
/// (accumulated across calls — hand the same instance to every wave of a
/// mission). A null memo or zero frame id disables memoization for the
/// wave; results are bit-identical either way.
struct WaveMemo {
  evo::FitnessMemo* memo = nullptr;
  std::uint64_t frame_set_id = 0;
  evo::BatchMemoStats stats;
};

/// Evaluates one offspring wave on the platform. `lanes[i]` is the array
/// that evaluates offspring[i]; every R starts no earlier than `barrier`.
[[nodiscard]] WaveOutcome evaluate_offspring_wave(
    EvolvablePlatform& platform, const std::vector<evo::Candidate>& offspring,
    const std::vector<std::size_t>& lanes, const img::Image& input,
    const img::Image& compare, sim::SimTime barrier);

/// As above, with candidate compilation delegated to `compile` (the
/// scheduler's cache hook) and optional fitness memoization (`memo` may
/// be null). Configuration and R/F span bookkeeping are unchanged, so
/// outcomes are bit-identical as long as `compile` returns an array
/// behaviourally equal to platform.compile_array(lane) — memo hits only
/// skip the host-side frame streaming, never the simulated bookkeeping.
[[nodiscard]] WaveOutcome evaluate_offspring_wave(
    EvolvablePlatform& platform, const std::vector<evo::Candidate>& offspring,
    const std::vector<std::size_t>& lanes, const img::Image& input,
    const img::Image& compare, sim::SimTime barrier,
    const WaveCompileFn& compile, WaveMemo* memo = nullptr);

/// What an evolution driver needs from whoever owns the arrays: a platform
/// to configure/measure on, the set of evaluation lanes it was granted,
/// and a wave submission point. Drivers are written against this interface
/// so the same loop runs standalone (DirectWaveExecutor) or multiplexed on
/// a scheduler pool (sched::MissionContext).
class WaveExecutor {
 public:
  virtual ~WaveExecutor() = default;

  /// The platform the mission's lanes live on. Simulated state behind it
  /// is exclusive to this mission for the executor's lifetime.
  [[nodiscard]] virtual EvolvablePlatform& platform() noexcept = 0;

  /// Array indices (on platform()) this mission may evaluate on.
  [[nodiscard]] virtual const std::vector<std::size_t>& lanes()
      const noexcept = 0;

  /// Runs one offspring wave; wave_lanes[i] must be one of lanes().
  virtual WaveOutcome run_wave(const std::vector<evo::Candidate>& offspring,
                               const std::vector<std::size_t>& wave_lanes,
                               const img::Image& input,
                               const img::Image& compare,
                               sim::SimTime barrier) = 0;
};

/// Runs waves in place on a caller-owned platform — the standalone
/// behaviour of the platform+arrays driver entry points.
class DirectWaveExecutor final : public WaveExecutor {
 public:
  DirectWaveExecutor(EvolvablePlatform& platform,
                     std::vector<std::size_t> lanes)
      : platform_(platform), lanes_(std::move(lanes)) {}

  [[nodiscard]] EvolvablePlatform& platform() noexcept override {
    return platform_;
  }
  [[nodiscard]] const std::vector<std::size_t>& lanes()
      const noexcept override {
    return lanes_;
  }
  WaveOutcome run_wave(const std::vector<evo::Candidate>& offspring,
                       const std::vector<std::size_t>& wave_lanes,
                       const img::Image& input, const img::Image& compare,
                       sim::SimTime barrier) override {
    return evaluate_offspring_wave(platform_, offspring, wave_lanes, input,
                                   compare, barrier);
  }

 private:
  EvolvablePlatform& platform_;
  std::vector<std::size_t> lanes_;
};

}  // namespace ehw::platform
