#include "ehw/platform/cascade_evolution.hpp"

#include <algorithm>

#include "ehw/evo/offspring.hpp"
#include "ehw/img/metrics.hpp"

namespace ehw::platform {
namespace {

/// Filters `input` through the chain stages [from, arrays.size()) as they
/// are currently configured on the fabric.
img::Image chain_filter(const EvolvablePlatform& platform,
                        const std::vector<std::size_t>& arrays,
                        std::size_t from, const img::Image& input) {
  img::Image stream = input;
  for (std::size_t s = from; s < arrays.size(); ++s) {
    stream = platform.filter_array(arrays[s], stream);
  }
  return stream;
}

/// One stage's evolving chromosome.
struct Stage {
  evo::Genotype parent;
  Fitness parent_fitness = kInvalidFitness;
  Rng rng{0};
};

}  // namespace

CascadeResult evolve_cascade_mission(WaveExecutor& executor,
                                     const img::Image& train,
                                     const img::Image& reference,
                                     const CascadeConfig& config,
                                     const CheckpointPolicy* checkpoint) {
  EvolvablePlatform& platform = executor.platform();
  const std::vector<std::size_t>& arrays = executor.lanes();
  EHW_REQUIRE(!arrays.empty(), "cascade needs at least one stage");
  EHW_REQUIRE(train.same_shape(reference), "train/reference shape mismatch");
  const std::size_t n = arrays.size();
  const MissionCheckpoint* resume =
      checkpoint != nullptr ? checkpoint->resume : nullptr;

  Rng master_rng(config.es.seed);
  std::vector<Stage> stages(n);
  // Accumulators carried across preemptions (see evolution_driver.cpp).
  sim::SimTime elapsed_base = 0;
  std::uint64_t writes_base = 0;
  std::size_t first_stage = 0;
  Generation first_gen = 0;

  if (resume != nullptr) {
    EHW_REQUIRE(resume->kind == MissionCheckpoint::Kind::kCascade,
                "checkpoint kind mismatch (expected cascade)");
    EHW_REQUIRE(resume->stages.size() == n,
                "cascade checkpoint needs a slice exactly as wide as its "
                "stage count (stages are physical chain positions)");
    EHW_REQUIRE(resume->lane_genotypes.size() == n,
                "cascade checkpoint lane count must equal the granted slice");
    // Rebuild the fabric at the saved boundary, then reanchor the clock;
    // the restore writes were charged before the save.
    for (std::size_t s = 0; s < n; ++s) {
      if (resume->lane_genotypes[s].has_value()) {
        (void)platform.configure_array(arrays[s], *resume->lane_genotypes[s],
                                       0);
      }
    }
    platform.reset_time();
    for (std::size_t s = 0; s < n; ++s) {
      stages[s].parent = resume->stages[s].parent;
      stages[s].parent_fitness = resume->stages[s].parent_fitness;
      stages[s].rng.set_state(resume->stages[s].rng_state);
    }
    first_stage = resume->next_stage;
    first_gen = resume->next_generation;
    elapsed_base = resume->elapsed;
    writes_base = resume->pe_writes;
  }

  const sim::SimTime t_start = platform.now();
  const std::uint64_t writes_start = platform.engine_stats().pe_writes;
  sim::SimTime barrier = t_start;

  if (resume == nullptr) {
    // Initialize one chromosome per stage and configure it.
    for (std::size_t s = 0; s < n; ++s) {
      stages[s].rng = master_rng.split(s + 1);
      stages[s].parent =
          evo::Genotype::random(platform.config().shape, stages[s].rng);
      const sim::Interval conf =
          platform.configure_array(arrays[s], stages[s].parent, barrier);
      barrier = std::max(barrier, conf.end);
    }
  } else {
    barrier = t_start + resume->barrier;
  }

  // Stage inputs under the current parents; inputs[0] is the train image.
  // When an upstream parent changes, downstream inputs move and the
  // affected stages' parent fitness becomes stale: `dirty` forces a
  // re-measure before the next acceptance decision.
  std::vector<img::Image> inputs(n);
  std::vector<bool> dirty(n, true);
  const auto refresh_inputs_from = [&](std::size_t from) {
    img::Image stream;
    if (from > 0) {
      stream = platform.filter_array(arrays[from - 1], inputs[from - 1]);
    } else {
      stream = train;
    }
    for (std::size_t s = from; s < n; ++s) {
      inputs[s] = stream;
      dirty[s] = true;
      if (s + 1 < n) stream = platform.filter_array(arrays[s], stream);
    }
  };
  // Input recomputation is pure in the configured parents, so a restored
  // fabric reproduces the saved inputs exactly; only the staleness
  // markers carry checkpoint state.
  refresh_inputs_from(0);
  if (resume != nullptr) {
    for (std::size_t s = 0; s < n; ++s) dirty[s] = resume->stages[s].dirty;
  }

  // Seeds parent fitness for every stage under the current chain state.
  const auto measure_parent = [&](std::size_t s) {
    if (config.fitness == CascadeFitness::kSeparate) {
      const EvaluationResult ev = platform.evaluate_array(
          arrays[s], inputs[s], reference, barrier, "Fp");
      barrier = std::max(barrier, ev.span.end);
      stages[s].parent_fitness = ev.fitness;
    } else {
      const img::Image chain_out = chain_filter(platform, arrays, 0, train);
      stages[s].parent_fitness = img::aggregated_mae(chain_out, reference);
      barrier += platform.frame_time(train.width(), train.height());
    }
  };

  /// Runs one (1+lambda) generation on stage `s`; returns true if the
  /// stage's parent chromosome changed.
  const auto one_generation = [&](std::size_t s) -> bool {
    Stage& stage = stages[s];
    if (dirty[s]) {
      // The stage input moved (upstream change or first generation):
      // the acceptance baseline must be measured on the CURRENT input.
      measure_parent(s);
      dirty[s] = false;
    }
    auto offspring =
        config.es.two_level
            ? evo::two_level_offspring(stage.parent, config.es.lambda, 1,
                                       config.es.mutation_rate, stage.rng)
            : evo::classic_offspring(stage.parent, config.es.lambda, 1,
                                     config.es.mutation_rate, stage.rng);
    std::size_t best_idx = 0;
    Fitness best_fit = kInvalidFitness;
    sim::SimTime gen_end = barrier;
    if (config.fitness == CascadeFitness::kSeparate) {
      // Separate fitness judges each candidate on the stage input alone,
      // so the whole wave runs the shared configure/compile/book +
      // batch-fitness protocol on this stage's single lane.
      const std::vector<std::size_t> wave_lanes(offspring.size(), arrays[s]);
      const WaveOutcome wave = executor.run_wave(offspring, wave_lanes,
                                                 inputs[s], reference, barrier);
      gen_end = std::max(gen_end, wave.end);
      best_idx = wave.best_index;
      best_fit = wave.best_fitness;
    } else {
      for (std::size_t i = 0; i < offspring.size(); ++i) {
        const sim::Interval conf = platform.configure_array(
            arrays[s], offspring[i].genotype, barrier);
        // Merged: judge at the chain end through the downstream parents.
        const img::Image out = platform.filter_array(arrays[s], inputs[s]);
        const img::Image chain_out =
            s + 1 < n ? chain_filter(platform, arrays, s + 1, out) : out;
        const Fitness f = img::aggregated_mae(chain_out, reference);
        // The chain streams once; each remaining stage adds a frame pass.
        const auto frames = static_cast<sim::SimTime>(n - s);
        gen_end = std::max(
            gen_end, conf.end + frames * platform.frame_time(
                                             train.width(), train.height()));
        if (f < best_fit) {
          best_fit = f;
          best_idx = i;
        }
      }
    }
    barrier = gen_end;
    bool changed = false;
    if (best_fit <= stage.parent_fitness) {
      changed = stage.parent != offspring[best_idx].genotype;
      stage.parent = offspring[best_idx].genotype;
      stage.parent_fitness = best_fit;
    }
    // Leave the parent configured so downstream refreshes see it.
    const sim::Interval conf =
        platform.configure_array(arrays[s], stage.parent, barrier);
    barrier = std::max(barrier, conf.end);
    return changed;
  };

  // Checkpoint bookkeeping: one "step" is one per-stage generation.
  // Returns true when the run must preempt. `next_*` are the loop
  // cursors the resumed run continues from.
  Generation steps_done = 0;
  const auto maybe_checkpoint = [&](std::size_t next_stage,
                                    Generation next_gen) -> bool {
    if (checkpoint == nullptr || !checkpoint->active()) return false;
    ++steps_done;
    const bool cadence =
        checkpoint->every != 0 && steps_done % checkpoint->every == 0;
    const bool preempt =
        (checkpoint->preempt_after != 0 &&
         steps_done >= checkpoint->preempt_after) ||
        (checkpoint->should_preempt && checkpoint->should_preempt());
    if ((cadence || preempt) && checkpoint->sink) {
      MissionCheckpoint ckpt;
      ckpt.kind = MissionCheckpoint::Kind::kCascade;
      ckpt.barrier = barrier - t_start;
      ckpt.elapsed = std::max(platform.now() - t_start, elapsed_base);
      ckpt.pe_writes =
          writes_base + (platform.engine_stats().pe_writes - writes_start);
      ckpt.lane_genotypes.reserve(n);
      for (const std::size_t a : arrays) {
        ckpt.lane_genotypes.push_back(platform.configured_genotype(a));
      }
      ckpt.stages.resize(n);
      for (std::size_t s = 0; s < n; ++s) {
        ckpt.stages[s].parent = stages[s].parent;
        ckpt.stages[s].parent_fitness = stages[s].parent_fitness;
        ckpt.stages[s].rng_state = stages[s].rng.state();
        ckpt.stages[s].dirty = dirty[s];
      }
      ckpt.next_stage = next_stage;
      ckpt.next_generation = next_gen;
      checkpoint->sink(ckpt);
    }
    return preempt;
  };

  bool preempted = false;
  if (config.schedule == CascadeSchedule::kSequential) {
    for (std::size_t s = first_stage; s < n && !preempted; ++s) {
      const Generation g0 = s == first_stage ? first_gen : 0;
      for (Generation g = g0; g < config.es.generations; ++g) {
        if (stages[s].parent_fitness <= config.es.target) break;
        one_generation(s);
        if (maybe_checkpoint(s, g + 1)) {
          preempted = true;
          break;
        }
      }
      if (!preempted && s + 1 < n) refresh_inputs_from(s + 1);
    }
  } else {
    for (Generation g = first_gen; g < config.es.generations && !preempted;
         ++g) {
      const std::size_t s0 = g == first_gen ? first_stage : 0;
      for (std::size_t s = s0; s < n; ++s) {
        const bool changed = one_generation(s);
        if (changed && s + 1 < n) refresh_inputs_from(s + 1);
        // Cursor: next stage this generation, or generation+1, stage 0.
        if (maybe_checkpoint(s + 1 < n ? s + 1 : 0,
                             s + 1 < n ? g : g + 1)) {
          preempted = true;
          break;
        }
      }
    }
  }

  // Final pass: leave every parent configured, record per-stage outcomes.
  // (After a preemption this reports the chain as it stands — the caller
  // treats the emitted checkpoint, not this value, as the continuation.)
  CascadeResult result;
  result.stages.resize(n);
  refresh_inputs_from(0);
  for (std::size_t s = 0; s < n; ++s) {
    result.stages[s].best = stages[s].parent;
    const img::Image out = platform.filter_array(arrays[s], inputs[s]);
    result.stages[s].stage_fitness = img::aggregated_mae(out, reference);
  }
  const img::Image chain_out = chain_filter(platform, arrays, 0, train);
  result.chain_fitness = img::aggregated_mae(chain_out, reference);
  result.duration = std::max(platform.now() - t_start, elapsed_base);
  result.preempted = preempted;
  return result;
}

CascadeResult evolve_cascade(EvolvablePlatform& platform,
                             const std::vector<std::size_t>& arrays,
                             const img::Image& train,
                             const img::Image& reference,
                             const CascadeConfig& config,
                             const CheckpointPolicy* checkpoint) {
  DirectWaveExecutor executor(platform, arrays);
  return evolve_cascade_mission(executor, train, reference, config,
                                checkpoint);
}

}  // namespace ehw::platform
