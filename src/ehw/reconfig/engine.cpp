#include "ehw/reconfig/engine.hpp"

namespace ehw::reconfig {

ReconfigurationEngine::ReconfigurationEngine(
    fpga::ConfigMemory& memory, const fpga::FabricGeometry& geometry,
    const PbsLibrary& library, sim::Timeline& timeline, sim::Trace* trace)
    : memory_(memory),
      geometry_(geometry),
      library_(library),
      timeline_(timeline),
      trace_(trace),
      self_(timeline.add_resource("icap")) {
  EHW_REQUIRE(library_.words_per_slot() == geometry_.words_per_slot(),
              "PBS library footprint must match the fabric slot size");
}

sim::Interval ReconfigurationEngine::write_pe(const fpga::SlotAddress& slot,
                                              std::uint8_t opcode,
                                              sim::SimTime earliest,
                                              sim::ResourceId array_resource,
                                              const std::string& trace_label) {
  const fpga::PartialBitstream& pbs =
      opcode == kDummyOpcode ? library_.dummy() : library_.function(opcode);
  const std::size_t base = geometry_.slot_word_base(slot);
  // Functional effect (relocation = writing the payload at this base).
  fpga::write_payload(memory_, base, pbs);
  // Timing: engine and target array are both busy for the PE write. The
  // 67.53 us constant already covers readback/merge/writeback.
  const sim::Interval span = timeline_.reserve_pair(
      self_, array_resource, earliest, kPeReconfigTime);
  ++stats_.pe_writes;
  stats_.busy_time += span.duration();
  if (trace_ != nullptr) {
    trace_->record(self_, trace_label.empty() ? "R" : trace_label, span);
  }
  return span;
}

fpga::PartialBitstream ReconfigurationEngine::readback_slot(
    const fpga::SlotAddress& slot, sim::SimTime earliest,
    sim::Interval* span) {
  const std::size_t base = geometry_.slot_word_base(slot);
  const std::size_t words = geometry_.words_per_slot();
  // Readback streams frames out of the ICAP: ~1 cycle per word @100 MHz.
  const sim::Interval iv = timeline_.reserve(
      self_, earliest, sim::cycles_at_mhz(words, 100.0));
  ++stats_.readbacks;
  stats_.busy_time += iv.duration();
  if (span != nullptr) *span = iv;
  return fpga::readback(memory_, base, words, "slot-readback");
}

sim::Interval ReconfigurationEngine::scrub_slot(const fpga::SlotAddress& slot,
                                                sim::SimTime earliest,
                                                sim::ResourceId array_resource,
                                                std::size_t* corrected,
                                                std::size_t* uncorrectable) {
  const std::size_t base = geometry_.slot_word_base(slot);
  const std::size_t words = geometry_.words_per_slot();
  std::size_t fixed = 0;
  std::size_t stuck = 0;
  for (std::size_t i = 0; i < words; ++i) {
    const std::size_t addr = base + i;
    if (memory_.read(addr) != memory_.read_intended(addr)) {
      memory_.rewrite(addr);
      if (memory_.read(addr) == memory_.read_intended(addr)) {
        ++fixed;
      } else {
        ++stuck;
      }
    }
  }
  if (corrected != nullptr) *corrected = fixed;
  if (uncorrectable != nullptr) *uncorrectable = stuck;
  // A scrub rewrite costs a full slot write through the same datapath.
  const sim::Interval span = timeline_.reserve_pair(
      self_, array_resource, earliest, kPeReconfigTime);
  ++stats_.scrub_rewrites;
  stats_.busy_time += span.duration();
  if (trace_ != nullptr) trace_->record(self_, "S", span);
  return span;
}

bool ReconfigurationEngine::slot_intact(const fpga::SlotAddress& slot,
                                        std::uint8_t* opcode_out) const {
  const std::size_t base = geometry_.slot_word_base(slot);
  const std::size_t words = geometry_.words_per_slot();
  std::vector<fpga::ConfigWord> payload(words);
  for (std::size_t i = 0; i < words; ++i) payload[i] = memory_.read(base + i);
  const std::uint8_t opcode = PbsLibrary::opcode_of_word0(payload[0]);
  if (opcode_out != nullptr) *opcode_out = opcode;
  return library_.is_intact(payload);
}

}  // namespace ehw::reconfig
