#pragma once
// The library of pre-synthesized partial bitstreams.
//
// The paper keeps one PBS per PE type in external DDR; the reconfiguration
// engine relocates it into the target slot. Here each function's payload is
// a deterministic pseudo-random word pattern (standing in for LUT/routing
// bits) with the function opcode stored in a defined field of word 0:
//
//   word 0, bits [7:0]  = opcode (0..15 = library functions, 0xFF = dummy)
//   word 0, bits [31:8] + words 1..N-1 = implementation pattern
//
// The PE decoder (ehw::pe) treats ANY deviation of the implementation
// pattern from the library's as a defective PE emitting random values.
// That realizes the paper's PE-level fault model: a fault in any element
// inside a PE corrupts its output.

#include <cstdint>

#include "ehw/fpga/bitstream.hpp"
#include "ehw/fpga/geometry.hpp"

namespace ehw::reconfig {

/// Opcode stored in a dummy-PE bitstream (the fault-injection payload).
inline constexpr std::uint8_t kDummyOpcode = 0xFF;

/// Number of library functions (4-bit gene space, §III.A).
inline constexpr std::size_t kFunctionCount = 16;

class PbsLibrary {
 public:
  /// Builds the library for a fabric with the given slot footprint. `seed`
  /// individualizes the synthetic implementation patterns (any fixed value
  /// is fine; it is part of the "synthesis" of the library).
  PbsLibrary(std::size_t words_per_slot, std::uint64_t seed = 0x5EED5EED);

  /// PBS implementing library function `opcode` (0..15).
  [[nodiscard]] const fpga::PartialBitstream& function(
      std::uint8_t opcode) const;

  /// The dummy-PE PBS used for PE-level fault injection (§VI.D).
  [[nodiscard]] const fpga::PartialBitstream& dummy() const noexcept {
    return dummy_;
  }

  [[nodiscard]] std::size_t words_per_slot() const noexcept {
    return words_per_slot_;
  }

  /// Extracts the opcode field from a slot readback's word 0.
  [[nodiscard]] static std::uint8_t opcode_of_word0(
      fpga::ConfigWord word0) noexcept {
    return static_cast<std::uint8_t>(word0 & 0xFFu);
  }

  /// True iff `payload` matches the library bit pattern for its opcode
  /// exactly (i.e. the slot is healthy). Dummy payloads never match.
  [[nodiscard]] bool is_intact(const std::vector<fpga::ConfigWord>& payload)
      const;

 private:
  [[nodiscard]] fpga::PartialBitstream synthesize(std::uint8_t opcode,
                                                  std::uint64_t seed) const;

  std::size_t words_per_slot_;
  std::vector<fpga::PartialBitstream> functions_;
  fpga::PartialBitstream dummy_;
};

}  // namespace ehw::reconfig
