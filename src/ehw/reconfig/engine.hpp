#pragma once
// The reconfiguration engine — the modular DPR peripheral of [14] that the
// platform shares between all arrays. Key properties reproduced:
//
//   * there is exactly ONE engine, so every DPR request serializes on it
//     (this is why parallel evolution only overlaps *evaluations*, Fig. 11);
//   * a PE write costs 67.53 us at the nominal 100 MHz ICAP clock,
//     including the readback/relocate/writeback cycle the paper describes
//     (a PE is smaller than a clock-region frame set, so surrounding
//     configuration must be read back and merged);
//   * it can read back a slot, write a library PBS relocated to any slot,
//     and re-write (scrub) a slot.
//
// Scheduling: callers pass an `earliest` simulated time and the timeline
// resource of the target array; the engine books itself + the array and
// returns the busked interval. Functional state (config memory) is updated
// immediately — simulated time is bookkeeping layered on top.

#include <cstdint>

#include "ehw/fpga/bitstream.hpp"
#include "ehw/fpga/config_memory.hpp"
#include "ehw/fpga/geometry.hpp"
#include "ehw/reconfig/pbs_library.hpp"
#include "ehw/sim/time.hpp"
#include "ehw/sim/timeline.hpp"
#include "ehw/sim/trace.hpp"

namespace ehw::reconfig {

/// Per-PE reconfiguration latency measured in the paper (§VI.A): 67.53 us
/// with the ICAP at its nominal 100 MHz.
inline constexpr sim::SimTime kPeReconfigTime = sim::microseconds(67.53);

struct EngineStats {
  std::uint64_t pe_writes = 0;
  std::uint64_t readbacks = 0;
  std::uint64_t scrub_rewrites = 0;
  sim::SimTime busy_time = 0;
};

class ReconfigurationEngine {
 public:
  /// The engine registers itself as a timeline resource named "icap".
  ReconfigurationEngine(fpga::ConfigMemory& memory,
                        const fpga::FabricGeometry& geometry,
                        const PbsLibrary& library, sim::Timeline& timeline,
                        sim::Trace* trace = nullptr);

  [[nodiscard]] sim::ResourceId resource() const noexcept { return self_; }
  [[nodiscard]] const PbsLibrary& library() const noexcept { return library_; }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// Writes the library PBS for `opcode` (or the dummy PBS when opcode ==
  /// kDummyOpcode) into `slot`, relocated to the slot's base address.
  /// Books the engine and `array_resource` for kPeReconfigTime starting no
  /// earlier than `earliest`. Returns the occupied interval.
  sim::Interval write_pe(const fpga::SlotAddress& slot, std::uint8_t opcode,
                         sim::SimTime earliest,
                         sim::ResourceId array_resource,
                         const std::string& trace_label = "");

  /// Reads the slot's current actual configuration back (no array booking:
  /// readback does not disturb operation).
  fpga::PartialBitstream readback_slot(const fpga::SlotAddress& slot,
                                       sim::SimTime earliest,
                                       sim::Interval* span = nullptr);

  /// Re-writes the slot from its intended plane (scrub step f of §V.A).
  /// Returns the interval; `corrected`/`uncorrectable` report the outcome.
  sim::Interval scrub_slot(const fpga::SlotAddress& slot, sim::SimTime earliest,
                           sim::ResourceId array_resource,
                           std::size_t* corrected = nullptr,
                           std::size_t* uncorrectable = nullptr);

  /// True iff the slot currently holds an intact library function and
  /// reports which opcode; false means corrupted/dummy content.
  [[nodiscard]] bool slot_intact(const fpga::SlotAddress& slot,
                                 std::uint8_t* opcode_out = nullptr) const;

 private:
  fpga::ConfigMemory& memory_;
  const fpga::FabricGeometry& geometry_;
  const PbsLibrary& library_;
  sim::Timeline& timeline_;
  sim::Trace* trace_;
  sim::ResourceId self_;
  EngineStats stats_;
};

}  // namespace ehw::reconfig
