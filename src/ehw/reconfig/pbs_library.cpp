#include "ehw/reconfig/pbs_library.hpp"

#include <string>

#include "ehw/common/rng.hpp"

namespace ehw::reconfig {

PbsLibrary::PbsLibrary(std::size_t words_per_slot, std::uint64_t seed)
    : words_per_slot_(words_per_slot) {
  EHW_REQUIRE(words_per_slot_ >= 1, "slot footprint must hold word 0");
  functions_.reserve(kFunctionCount);
  for (std::size_t op = 0; op < kFunctionCount; ++op) {
    functions_.push_back(synthesize(static_cast<std::uint8_t>(op), seed));
  }
  dummy_ = synthesize(kDummyOpcode, seed);
}

const fpga::PartialBitstream& PbsLibrary::function(std::uint8_t opcode) const {
  EHW_REQUIRE(opcode < kFunctionCount, "opcode outside the PE library");
  return functions_[opcode];
}

fpga::PartialBitstream PbsLibrary::synthesize(std::uint8_t opcode,
                                              std::uint64_t seed) const {
  std::vector<fpga::ConfigWord> payload(words_per_slot_);
  for (std::size_t i = 0; i < words_per_slot_; ++i) {
    const std::uint64_t h = hash_mix(seed, opcode, i);
    payload[i] = static_cast<fpga::ConfigWord>(h);
  }
  // Word 0 carries the opcode in its low byte; upper bits stay pattern.
  payload[0] = (payload[0] & ~fpga::ConfigWord{0xFF}) | opcode;
  const std::string name = opcode == kDummyOpcode
                               ? std::string("pbs:dummy")
                               : "pbs:fn" + std::to_string(opcode);
  return fpga::PartialBitstream(name, std::move(payload));
}

bool PbsLibrary::is_intact(
    const std::vector<fpga::ConfigWord>& payload) const {
  if (payload.size() != words_per_slot_) return false;
  const std::uint8_t opcode = opcode_of_word0(payload[0]);
  if (opcode >= kFunctionCount) return false;  // dummy or corrupted opcode
  return payload == functions_[opcode].payload();
}

}  // namespace ehw::reconfig
