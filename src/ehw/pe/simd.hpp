#pragma once
// Compile-time SIMD configuration and the portable lane kernels the fused
// row evaluator is built from.
//
// All kernels are written as fixed-width lane loops over plain byte/u64
// arrays — no intrinsics — so any modern compiler auto-vectorizes them
// for whatever ISA the build targets. Selection happens at compile time:
//   * default            — portable lane loops sized for 128/256-bit
//                          vector units (SSE2/NEON/AVX2 baselines);
//   * EHW_NATIVE_ARCH=ON — the CMake option adds -march=native and wider
//                          blocks so the same loops compile to the
//                          build host's widest vector ISA;
//   * EHW_SCALAR_KERNELS=ON (defines EHW_SIMD_FORCE_SCALAR) — the scalar
//                          reference fallback: straightforward per-pixel
//                          loops, no lane structure.
// Every path is BIT-IDENTICAL: lanes only change how the exact integer
// arithmetic is scheduled, never its results. The scalar fallback is the
// reference the randomized equivalence suite pins the others against.

#include <cstddef>
#include <cstdint>

#include "ehw/common/aligned.hpp"
#include "ehw/common/types.hpp"

namespace ehw::pe {

#if defined(EHW_SIMD_FORCE_SCALAR)
/// Scalar reference fallback: no lane blocking.
inline constexpr bool kSimdLanes = false;
inline constexpr std::size_t kFuseBlock = 64;
#elif defined(EHW_NATIVE_ARCH) || defined(__AVX2__)
inline constexpr bool kSimdLanes = true;
inline constexpr std::size_t kFuseBlock = 256;
#else
// 128-bit baseline vector units (SSE2 on x86-64, NEON on aarch64).
inline constexpr bool kSimdLanes = true;
inline constexpr std::size_t kFuseBlock = 128;
#endif

static_assert(kFuseBlock % kCacheLineBytes == 0,
              "fused blocks must be whole cache lines");

/// Sum of |a[i] - b[i]| over at most kFuseBlock bytes (the per-block
/// error reduction of the fitness path). Caller guarantees
/// len <= kFuseBlock so the 32-bit lane accumulators cannot overflow
/// (255 * kFuseBlock << 2^32).
[[nodiscard]] inline std::uint32_t abs_error_block(const Pixel* a,
                                                   const Pixel* b,
                                                   std::size_t len) noexcept {
  if constexpr (kSimdLanes) {
    // Fixed-width lanes: 8-bit |a-b| (exact in u8), widened into u32
    // accumulators. GCC/Clang turn this into psadbw/uabal-style code.
    std::uint32_t acc = 0;
    for (std::size_t i = 0; i < len; ++i) {
      const Pixel d = a[i] > b[i] ? static_cast<Pixel>(a[i] - b[i])
                                  : static_cast<Pixel>(b[i] - a[i]);
      acc += d;
    }
    return acc;
  } else {
    std::uint32_t acc = 0;
    for (std::size_t i = 0; i < len; ++i) {
      const int d = static_cast<int>(a[i]) - static_cast<int>(b[i]);
      acc += static_cast<std::uint32_t>(d < 0 ? -d : d);
    }
    return acc;
  }
}

/// As abs_error_block with a constant left operand (folded-constant
/// output circuits).
[[nodiscard]] inline std::uint32_t abs_error_const_block(
    Pixel c, const Pixel* b, std::size_t len) noexcept {
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < len; ++i) {
    const Pixel d =
        c > b[i] ? static_cast<Pixel>(c - b[i]) : static_cast<Pixel>(b[i] - c);
    acc += d;
  }
  return acc;
}

/// Defective-cell row kernel: the SplitMix64-derived pseudo-random output
/// of a dummy PE for every pixel of a block, vectorized over the u64
/// lane pipeline. Bit-identical to calling pe::defective_output(seed,
/// x0+i, y, w[i], n[i]) per pixel (the scalar fallback does exactly
/// that).
void defective_row(std::uint64_t defect_seed, std::size_t x0, std::size_t y,
                   const Pixel* w, const Pixel* n, Pixel* out,
                   std::size_t len) noexcept;

}  // namespace ehw::pe
