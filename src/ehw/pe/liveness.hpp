#pragma once
// Structural circuit analysis: which cells, window taps and edges of a
// configured array can actually influence the output.
//
// Dataflow facts used (see array.hpp):
//   * cell (r,c) feeds East -> (r,c+1).W and South -> (r+1,c).N;
//   * the output is the East port of (output_row, cols-1);
//   * an op that ignores an input (op_uses_only_w / constants) cuts the
//     corresponding edge.
// Backward reachability over live edges yields the live cell set — a
// SUPERSET of the behaviourally relevant cells (a live cell can still be
// logically masked, e.g. ANDed with a constant 0 path), which the fault
// campaign's observed masking can be checked against. Used by the
// criticality reports and by circuit pretty-printing.

#include <string>
#include <vector>

#include "ehw/pe/array.hpp"

namespace ehw::pe {

struct LivenessInfo {
  /// live[r * cols + c]: the cell's output can structurally reach the
  /// array output.
  std::vector<bool> live_cells;
  /// live_taps[i]: window tap index i (0..8) feeds some live input mux.
  std::vector<bool> live_taps;
  /// Number of live cells.
  std::size_t live_cell_count = 0;

  [[nodiscard]] bool cell(std::size_t row, std::size_t col,
                          std::size_t cols) const {
    return live_cells[row * cols + col];
  }
};

/// Computes structural liveness for the array as configured.
[[nodiscard]] LivenessInfo analyze_liveness(const SystolicArray& array);

/// ASCII schematic of the array: one box per cell with its op mnemonic,
/// dead cells dimmed to '..', the output port marked. For logs/reports.
[[nodiscard]] std::string render_schematic(const SystolicArray& array);

}  // namespace ehw::pe
