#include "ehw/pe/simd.hpp"

#include "ehw/pe/array.hpp"

namespace ehw::pe {

void defective_row(std::uint64_t defect_seed, std::size_t x0, std::size_t y,
                   const Pixel* w, const Pixel* n, Pixel* out,
                   std::size_t len) noexcept {
  if constexpr (kSimdLanes) {
    // The SplitMix64 finalizer unrolled into a u64 lane loop: shifts,
    // xors and 64-bit multiplies only, so the whole pipeline vectorizes
    // (AVX-512 natively; AVX2/NEON via the compiler's 32x32 multiply
    // decomposition). XOR associativity lets the (seed, y) half of the
    // state hoist out of the loop.
    const std::uint64_t base =
        defect_seed ^ static_cast<std::uint64_t>(y);
    for (std::size_t i = 0; i < len; ++i) {
      std::uint64_t z = base ^ (static_cast<std::uint64_t>(x0 + i) << 32) ^
                        ((static_cast<std::uint64_t>(w[i]) << 8) | n[i]);
      z += 0x9E3779B97F4A7C15ULL;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      z ^= z >> 31;
      out[i] = static_cast<Pixel>(z >> 56);
    }
  } else {
    for (std::size_t i = 0; i < len; ++i) {
      out[i] = defective_output(defect_seed, x0 + i, y, w[i], n[i]);
    }
  }
}

}  // namespace ehw::pe
