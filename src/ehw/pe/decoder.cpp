#include "ehw/pe/decoder.hpp"

#include "ehw/common/rng.hpp"

namespace ehw::pe {

CellConfig decode_slot(const fpga::ConfigMemory& memory,
                       const fpga::FabricGeometry& geometry,
                       const reconfig::PbsLibrary& library,
                       const fpga::SlotAddress& slot) {
  const std::size_t base = geometry.slot_word_base(slot);
  const std::size_t words = geometry.words_per_slot();
  std::vector<fpga::ConfigWord> payload(words);
  std::uint64_t content_hash = 0x9E3779B97F4A7C15ULL;
  for (std::size_t i = 0; i < words; ++i) {
    payload[i] = memory.read(base + i);
    content_hash = hash_mix(content_hash, payload[i], i);
  }

  CellConfig config;
  const std::uint8_t opcode = reconfig::PbsLibrary::opcode_of_word0(payload[0]);
  if (library.is_intact(payload)) {
    config.op = static_cast<PeOp>(opcode);
    config.defective = false;
  } else {
    // Any deviation from a library PBS — dummy payload, SEU-flipped bit,
    // stuck LPD bit, invalid opcode — misbehaves at the PE output.
    config.op = PeOp::kIdentityW;  // irrelevant; defective path wins
    config.defective = true;
    // Seed ties the random behaviour to the exact corrupted content and
    // location, so two different corruptions behave differently but each
    // is reproducible.
    config.defect_seed = hash_mix(content_hash, slot.array,
                                  slot.row * 97 + slot.col);
  }
  return config;
}

SystolicArray decode_array(const fpga::ConfigMemory& memory,
                           const fpga::FabricGeometry& geometry,
                           const reconfig::PbsLibrary& library,
                           std::size_t array_index,
                           const std::vector<std::uint8_t>& input_taps,
                           std::uint8_t output_row) {
  const fpga::ArrayShape& shape = geometry.shape();
  EHW_REQUIRE(input_taps.size() == shape.rows + shape.cols,
              "one tap per array input required");
  SystolicArray array(shape);
  for (std::size_t r = 0; r < shape.rows; ++r) {
    for (std::size_t c = 0; c < shape.cols; ++c) {
      array.set_cell(r, c,
                     decode_slot(memory, geometry, library,
                                 {array_index, r, c}));
    }
  }
  for (std::size_t i = 0; i < input_taps.size(); ++i) {
    array.set_input_select(i, input_taps[i]);
  }
  array.set_output_row(output_row);
  return array;
}

}  // namespace ehw::pe
