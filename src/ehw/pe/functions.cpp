#include "ehw/pe/functions.hpp"

#include <algorithm>

#include "ehw/common/assert.hpp"

namespace ehw::pe {

Pixel apply_op(PeOp op, Pixel w, Pixel n) noexcept {
  const int iw = w;
  const int in = n;
  switch (op) {
    case PeOp::kConst255: return Pixel{255};
    case PeOp::kIdentityW: return w;
    case PeOp::kIdentityN: return n;
    case PeOp::kInvertW: return static_cast<Pixel>(255 - iw);
    case PeOp::kMax: return static_cast<Pixel>(std::max(iw, in));
    case PeOp::kMin: return static_cast<Pixel>(std::min(iw, in));
    case PeOp::kAddSat: return static_cast<Pixel>(std::min(255, iw + in));
    case PeOp::kSubSat: return static_cast<Pixel>(std::max(0, iw - in));
    case PeOp::kAverage: return static_cast<Pixel>((iw + in + 1) / 2);
    case PeOp::kShiftR1: return static_cast<Pixel>(iw >> 1);
    case PeOp::kShiftR2: return static_cast<Pixel>(iw >> 2);
    case PeOp::kAddMod: return static_cast<Pixel>((iw + in) & 0xFF);
    case PeOp::kAbsDiff: return static_cast<Pixel>(iw > in ? iw - in : in - iw);
    case PeOp::kThreshold: return iw > in ? Pixel{255} : Pixel{0};
    case PeOp::kOr: return static_cast<Pixel>(iw | in);
    case PeOp::kAnd: return static_cast<Pixel>(iw & in);
  }
  return 0;  // unreachable for valid ops
}

std::string_view op_name(PeOp op) noexcept {
  switch (op) {
    case PeOp::kConst255: return "C255";
    case PeOp::kIdentityW: return "W";
    case PeOp::kIdentityN: return "N";
    case PeOp::kInvertW: return "INVW";
    case PeOp::kMax: return "MAX";
    case PeOp::kMin: return "MIN";
    case PeOp::kAddSat: return "ADDS";
    case PeOp::kSubSat: return "SUBS";
    case PeOp::kAverage: return "AVG";
    case PeOp::kShiftR1: return "SHR1";
    case PeOp::kShiftR2: return "SHR2";
    case PeOp::kAddMod: return "ADDM";
    case PeOp::kAbsDiff: return "ADIF";
    case PeOp::kThreshold: return "THR";
    case PeOp::kOr: return "OR";
    case PeOp::kAnd: return "AND";
  }
  return "?";
}

bool op_uses_only_w(PeOp op) noexcept {
  switch (op) {
    case PeOp::kIdentityW:
    case PeOp::kInvertW:
    case PeOp::kShiftR1:
    case PeOp::kShiftR2:
      return true;
    default:
      return false;
  }
}

bool op_is_constant(PeOp op) noexcept { return op == PeOp::kConst255; }

}  // namespace ehw::pe
