#include "ehw/pe/compiled.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <numeric>

#include "ehw/pe/simd.hpp"

namespace ehw::pe {
namespace {

/// Applies one library function across a row span. The per-op dispatch is
/// hoisted out of the pixel loop, so every case body is a tight byte loop
/// the compiler auto-vectorizes. Each form reproduces apply_op() exactly.
void apply_op_row(PeOp op, const Pixel* w, const Pixel* n, Pixel* out,
                  std::size_t len) noexcept {
  switch (op) {
    case PeOp::kConst255:
      std::memset(out, 255, len);
      break;
    case PeOp::kIdentityW:
      std::memcpy(out, w, len);
      break;
    case PeOp::kIdentityN:
      std::memcpy(out, n, len);
      break;
    case PeOp::kInvertW:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = static_cast<Pixel>(255 - w[i]);
      }
      break;
    case PeOp::kMax:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = w[i] > n[i] ? w[i] : n[i];
      }
      break;
    case PeOp::kMin:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = w[i] < n[i] ? w[i] : n[i];
      }
      break;
    case PeOp::kAddSat:
      for (std::size_t i = 0; i < len; ++i) {
        const int t = w[i] + n[i];
        out[i] = static_cast<Pixel>(t > 255 ? 255 : t);
      }
      break;
    case PeOp::kSubSat:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = static_cast<Pixel>(w[i] > n[i] ? w[i] - n[i] : 0);
      }
      break;
    case PeOp::kAverage:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = static_cast<Pixel>((w[i] + n[i] + 1) >> 1);
      }
      break;
    case PeOp::kShiftR1:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = static_cast<Pixel>(w[i] >> 1);
      }
      break;
    case PeOp::kShiftR2:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = static_cast<Pixel>(w[i] >> 2);
      }
      break;
    case PeOp::kAddMod:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = static_cast<Pixel>((w[i] + n[i]) & 0xFF);
      }
      break;
    case PeOp::kAbsDiff:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = static_cast<Pixel>(w[i] > n[i] ? w[i] - n[i] : n[i] - w[i]);
      }
      break;
    case PeOp::kThreshold:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = w[i] > n[i] ? Pixel{255} : Pixel{0};
      }
      break;
    case PeOp::kOr:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = static_cast<Pixel>(w[i] | n[i]);
      }
      break;
    case PeOp::kAnd:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = static_cast<Pixel>(w[i] & n[i]);
      }
      break;
  }
}

}  // namespace

CompiledArray::CompiledArray(const SystolicArray& array) {
  const auto& shape = array.shape();
  const std::size_t rows = shape.rows;
  const std::size_t cols = shape.cols;
  buffer_size_ = kWindowTaps + rows * cols;
  EHW_REQUIRE(buffer_size_ <= kEvalBufferSlots,
              "mesh too large for the scalar evaluator's value buffer");

  const auto cell_slot = [&](std::size_t r, std::size_t c) {
    return static_cast<std::uint16_t>(kWindowTaps + r * cols + c);
  };

  // Rows strictly below the output row are dead: a cell's value flows only
  // east (same row) and south (greater row), so nothing from row > out
  // can ever come back up to the output row.
  const std::size_t active_rows = array.output_row() + std::size_t{1};
  active_cells_ = active_rows * cols;

  // Compile-time folding state. A slot is either computed by an emitted
  // step, aliased to an earlier slot (identity cells), or a known constant.
  // The mesh is walked in dependency order, so inputs resolve fully in one
  // hop: aliases always point at canonical (non-aliased) slots.
  std::vector<std::uint16_t> alias(buffer_size_);
  std::iota(alias.begin(), alias.end(), std::uint16_t{0});
  std::vector<std::int16_t> cval(buffer_size_, -1);  // -1 = not constant

  steps_.reserve(active_cells_);
  for (std::size_t r = 0; r < active_rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const CellConfig& cc = array.cell(r, c);
      const std::uint16_t w =
          alias[c == 0 ? array.input_select(r) : cell_slot(r, c - 1)];
      const std::uint16_t n =
          alias[r == 0
                    ? static_cast<std::uint16_t>(array.input_select(rows + c))
                    : cell_slot(r - 1, c)];
      const std::uint16_t out = cell_slot(r, c);
      if (cc.defective) {
        // Never folded: the output depends on position and input data.
        steps_.push_back({0, true, w, n, out, cc.defect_seed});
        continue;
      }
      const std::int16_t cw = cval[w];
      const std::int16_t cn = cval[n];
      if (cc.op == PeOp::kIdentityW) {
        alias[out] = w;
        cval[out] = cw;
        continue;
      }
      if (cc.op == PeOp::kIdentityN) {
        alias[out] = n;
        cval[out] = cn;
        continue;
      }
      if (op_is_constant(cc.op) ||
          (cw >= 0 && (cn >= 0 || op_uses_only_w(cc.op)))) {
        cval[out] = apply_op(cc.op, static_cast<Pixel>(cw >= 0 ? cw : 0),
                             static_cast<Pixel>(cn >= 0 ? cn : 0));
        continue;
      }
      steps_.push_back(
          {static_cast<std::uint8_t>(cc.op), false, w, n, out, 0});
    }
  }

  const std::uint16_t out_slot = cell_slot(array.output_row(), cols - 1);
  output_index_ = alias[out_slot];
  output_const_ = cval[out_slot];

  // Materialize only the folded constants a surviving step still reads
  // (a constant output is handled via output_const_ directly).
  std::vector<bool> needed(buffer_size_, false);
  for (const Step& s : steps_) {
    if (cval[s.w_index] >= 0) needed[s.w_index] = true;
    if (cval[s.n_index] >= 0) needed[s.n_index] = true;
  }
  for (std::size_t slot = 0; slot < buffer_size_; ++slot) {
    if (needed[slot]) {
      consts_.push_back({static_cast<std::uint16_t>(slot),
                         static_cast<Pixel>(cval[slot])});
    }
  }
}

Pixel CompiledArray::evaluate(const Pixel window[kWindowTaps], std::size_t x,
                              std::size_t y) const noexcept {
  // Value buffer on the stack; 16x16 arrays (265 slots) fit comfortably.
  Pixel buf[kEvalBufferSlots];
  for (std::size_t i = 0; i < kWindowTaps; ++i) buf[i] = window[i];
  for (const SlotConst& sc : consts_) buf[sc.slot] = sc.value;
  for (const Step& s : steps_) {
    const Pixel w = buf[s.w_index];
    const Pixel n = buf[s.n_index];
    buf[s.out_index] = s.defective
                           ? defective_output(s.defect_seed, x, y, w, n)
                           : apply_op(static_cast<PeOp>(s.op), w, n);
  }
  return output_const_ >= 0 ? static_cast<Pixel>(output_const_)
                            : buf[output_index_];
}

Fitness CompiledArray::process_rows(const img::Image& src, img::Image* dst,
                                    const img::Image* reference,
                                    std::size_t y0, std::size_t y1) const {
  const std::size_t w = src.width();
  const std::size_t h = src.height();
  Fitness total = 0;

  // Padded line ring: the three clamp-replicated source rows around y,
  // each with one duplicated pixel on either side, so EVERY pixel of the
  // frame — borders and degenerate 1-to-2-pixel-wide frames included — is
  // an interior pixel of the padded rows and flows through the vector
  // kernels (the software analogue of the platform's 3-line FIFOs, which
  // replicate at the frame edges the same way). Source row r lives in
  // ring slot r % 3; the rows needed for consecutive y overlap 2-of-3, so
  // sliding down the frame copies one new row per step.
  const std::size_t padded = (w + 2 + kCacheLineBytes - 1) &
                             ~(kCacheLineBytes - 1);
  std::vector<Pixel, AlignedAllocator<Pixel, kCacheLineBytes>> ring(3 *
                                                                    padded);
  std::size_t loaded[3] = {h, h, h};  // h = "nothing loaded"
  const auto clamp_row = [h](std::size_t y, std::ptrdiff_t dy) {
    const auto r = static_cast<std::ptrdiff_t>(y) + dy;
    if (r < 0) return std::size_t{0};
    if (static_cast<std::size_t>(r) >= h) return h - 1;
    return static_cast<std::size_t>(r);
  };
  const auto load_row = [&](std::size_t r) -> const Pixel* {
    Pixel* p = ring.data() + (r % 3) * padded;
    if (loaded[r % 3] != r) {
      std::memcpy(p + 1, src.row(r), w);
      p[0] = p[1];
      p[w + 1] = p[w];
      loaded[r % 3] = r;
    }
    return p;
  };

  // Fused block workspace: every surviving step runs over one kFuseBlock
  // span before the next block starts, so a step's intermediate row never
  // leaves L1 before its consumers read it — adjacent steps compose in
  // one pass over the row triple instead of materializing a full
  // frame-width row each. Read pointers rp[] cover the whole value
  // buffer: tap slots [0, 9) aim into the padded ring (re-aimed per
  // block), cell slots at their fixed storage blocks.
  const std::size_t cell_slots = buffer_size_ - kWindowTaps;
  std::vector<Pixel, AlignedAllocator<Pixel, kCacheLineBytes>> storage(
      cell_slots * kFuseBlock);
  std::vector<const Pixel*> rp(buffer_size_, nullptr);
  for (std::size_t s = 0; s < cell_slots; ++s) {
    rp[kWindowTaps + s] = storage.data() + s * kFuseBlock;
  }
  for (const SlotConst& sc : consts_) {
    // Tap slots are never constant; see the constructor.
    std::memset(storage.data() + (sc.slot - kWindowTaps) * kFuseBlock,
                sc.value, kFuseBlock);
  }

  for (std::size_t y = y0; y < y1; ++y) {
    const Pixel* tap_rows[3] = {load_row(clamp_row(y, -1)), load_row(y),
                                load_row(clamp_row(y, +1))};
    for (std::size_t b0 = 0; b0 < w; b0 += kFuseBlock) {
      const std::size_t len = std::min(kFuseBlock, w - b0);
      for (std::size_t t = 0; t < kWindowTaps; ++t) {
        rp[t] = tap_rows[t / 3] + t % 3 + b0;
      }
      for (const Step& s : steps_) {
        Pixel* out =
            storage.data() + (s.out_index - kWindowTaps) * kFuseBlock;
        if (s.defective) {
          defective_row(s.defect_seed, b0, y, rp[s.w_index], rp[s.n_index],
                        out, len);
        } else {
          apply_op_row(static_cast<PeOp>(s.op), rp[s.w_index], rp[s.n_index],
                       out, len);
        }
      }
      if (dst != nullptr) {
        Pixel* drow = dst->row(y) + b0;
        if (output_const_ >= 0) {
          std::memset(drow, static_cast<Pixel>(output_const_), len);
        } else {
          std::memcpy(drow, rp[output_index_], len);
        }
      }
      if (reference != nullptr) {
        const Pixel* rrow = reference->row(y) + b0;
        total += output_const_ >= 0
                     ? abs_error_const_block(
                           static_cast<Pixel>(output_const_), rrow, len)
                     : abs_error_block(rp[output_index_], rrow, len);
      }
    }
  }
  return total;
}

img::Image CompiledArray::filter(const img::Image& src) const {
  img::Image out(src.width(), src.height());
  filter_into(src, out, nullptr);
  return out;
}

void CompiledArray::filter_into(const img::Image& src, img::Image& dst,
                                ThreadPool* pool) const {
  EHW_REQUIRE(src.same_shape(dst), "destination shape mismatch");
  const std::size_t h = src.height();
  if (pool != nullptr && h >= 32) {
    pool->parallel_chunks(0, h, [&](std::size_t lo, std::size_t hi) {
      process_rows(src, &dst, nullptr, lo, hi);
    });
  } else {
    process_rows(src, &dst, nullptr, 0, h);
  }
}

Fitness CompiledArray::fitness_against(const img::Image& src,
                                       const img::Image& reference,
                                       ThreadPool* pool) const {
  EHW_REQUIRE(src.same_shape(reference), "reference shape mismatch");
  const std::size_t h = src.height();
  if (pool != nullptr && h >= 64) {
    // Each chunk accumulates privately; one atomic add per chunk keeps
    // worker cache lines disjoint (no per-row shared partial array).
    std::atomic<Fitness> total{0};
    pool->parallel_chunks(0, h, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(process_rows(src, nullptr, &reference, lo, hi),
                      std::memory_order_relaxed);
    });
    return total.load(std::memory_order_relaxed);
  }
  return process_rows(src, nullptr, &reference, 0, h);
}

bool CompiledArray::any_defective_active() const noexcept {
  for (const Step& s : steps_) {
    if (s.defective) return true;
  }
  return false;
}

}  // namespace ehw::pe
