#include "ehw/pe/compiled.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>

namespace ehw::pe {
namespace {

/// Applies one library function across a row span. The per-op dispatch is
/// hoisted out of the pixel loop, so every case body is a tight byte loop
/// the compiler auto-vectorizes. Each form reproduces apply_op() exactly.
void apply_op_row(PeOp op, const Pixel* w, const Pixel* n, Pixel* out,
                  std::size_t len) noexcept {
  switch (op) {
    case PeOp::kConst255:
      std::memset(out, 255, len);
      break;
    case PeOp::kIdentityW:
      std::memcpy(out, w, len);
      break;
    case PeOp::kIdentityN:
      std::memcpy(out, n, len);
      break;
    case PeOp::kInvertW:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = static_cast<Pixel>(255 - w[i]);
      }
      break;
    case PeOp::kMax:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = w[i] > n[i] ? w[i] : n[i];
      }
      break;
    case PeOp::kMin:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = w[i] < n[i] ? w[i] : n[i];
      }
      break;
    case PeOp::kAddSat:
      for (std::size_t i = 0; i < len; ++i) {
        const int t = w[i] + n[i];
        out[i] = static_cast<Pixel>(t > 255 ? 255 : t);
      }
      break;
    case PeOp::kSubSat:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = static_cast<Pixel>(w[i] > n[i] ? w[i] - n[i] : 0);
      }
      break;
    case PeOp::kAverage:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = static_cast<Pixel>((w[i] + n[i] + 1) >> 1);
      }
      break;
    case PeOp::kShiftR1:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = static_cast<Pixel>(w[i] >> 1);
      }
      break;
    case PeOp::kShiftR2:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = static_cast<Pixel>(w[i] >> 2);
      }
      break;
    case PeOp::kAddMod:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = static_cast<Pixel>((w[i] + n[i]) & 0xFF);
      }
      break;
    case PeOp::kAbsDiff:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = static_cast<Pixel>(w[i] > n[i] ? w[i] - n[i] : n[i] - w[i]);
      }
      break;
    case PeOp::kThreshold:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = w[i] > n[i] ? Pixel{255} : Pixel{0};
      }
      break;
    case PeOp::kOr:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = static_cast<Pixel>(w[i] | n[i]);
      }
      break;
    case PeOp::kAnd:
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = static_cast<Pixel>(w[i] & n[i]);
      }
      break;
  }
}

/// Sum of |a[i] - b[i]| over a row span.
Fitness row_abs_error(const Pixel* a, const Pixel* b,
                      std::size_t len) noexcept {
  Fitness acc = 0;
  for (std::size_t i = 0; i < len; ++i) {
    const int d = static_cast<int>(a[i]) - static_cast<int>(b[i]);
    acc += static_cast<Fitness>(d < 0 ? -d : d);
  }
  return acc;
}

}  // namespace

CompiledArray::CompiledArray(const SystolicArray& array) {
  const auto& shape = array.shape();
  const std::size_t rows = shape.rows;
  const std::size_t cols = shape.cols;
  buffer_size_ = kWindowTaps + rows * cols;
  EHW_REQUIRE(buffer_size_ <= kEvalBufferSlots,
              "mesh too large for the scalar evaluator's value buffer");

  const auto cell_slot = [&](std::size_t r, std::size_t c) {
    return static_cast<std::uint16_t>(kWindowTaps + r * cols + c);
  };

  // Rows strictly below the output row are dead: a cell's value flows only
  // east (same row) and south (greater row), so nothing from row > out
  // can ever come back up to the output row.
  const std::size_t active_rows = array.output_row() + std::size_t{1};
  active_cells_ = active_rows * cols;

  // Compile-time folding state. A slot is either computed by an emitted
  // step, aliased to an earlier slot (identity cells), or a known constant.
  // The mesh is walked in dependency order, so inputs resolve fully in one
  // hop: aliases always point at canonical (non-aliased) slots.
  std::vector<std::uint16_t> alias(buffer_size_);
  std::iota(alias.begin(), alias.end(), std::uint16_t{0});
  std::vector<std::int16_t> cval(buffer_size_, -1);  // -1 = not constant

  steps_.reserve(active_cells_);
  for (std::size_t r = 0; r < active_rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const CellConfig& cc = array.cell(r, c);
      const std::uint16_t w =
          alias[c == 0 ? array.input_select(r) : cell_slot(r, c - 1)];
      const std::uint16_t n =
          alias[r == 0
                    ? static_cast<std::uint16_t>(array.input_select(rows + c))
                    : cell_slot(r - 1, c)];
      const std::uint16_t out = cell_slot(r, c);
      if (cc.defective) {
        // Never folded: the output depends on position and input data.
        steps_.push_back({0, true, w, n, out, cc.defect_seed});
        continue;
      }
      const std::int16_t cw = cval[w];
      const std::int16_t cn = cval[n];
      if (cc.op == PeOp::kIdentityW) {
        alias[out] = w;
        cval[out] = cw;
        continue;
      }
      if (cc.op == PeOp::kIdentityN) {
        alias[out] = n;
        cval[out] = cn;
        continue;
      }
      if (op_is_constant(cc.op) ||
          (cw >= 0 && (cn >= 0 || op_uses_only_w(cc.op)))) {
        cval[out] = apply_op(cc.op, static_cast<Pixel>(cw >= 0 ? cw : 0),
                             static_cast<Pixel>(cn >= 0 ? cn : 0));
        continue;
      }
      steps_.push_back(
          {static_cast<std::uint8_t>(cc.op), false, w, n, out, 0});
    }
  }

  const std::uint16_t out_slot = cell_slot(array.output_row(), cols - 1);
  output_index_ = alias[out_slot];
  output_const_ = cval[out_slot];

  // Materialize only the folded constants a surviving step still reads
  // (a constant output is handled via output_const_ directly).
  std::vector<bool> needed(buffer_size_, false);
  for (const Step& s : steps_) {
    if (cval[s.w_index] >= 0) needed[s.w_index] = true;
    if (cval[s.n_index] >= 0) needed[s.n_index] = true;
  }
  for (std::size_t slot = 0; slot < buffer_size_; ++slot) {
    if (needed[slot]) {
      consts_.push_back({static_cast<std::uint16_t>(slot),
                         static_cast<Pixel>(cval[slot])});
    }
  }
}

Pixel CompiledArray::evaluate(const Pixel window[kWindowTaps], std::size_t x,
                              std::size_t y) const noexcept {
  // Value buffer on the stack; 16x16 arrays (265 slots) fit comfortably.
  Pixel buf[kEvalBufferSlots];
  for (std::size_t i = 0; i < kWindowTaps; ++i) buf[i] = window[i];
  for (const SlotConst& sc : consts_) buf[sc.slot] = sc.value;
  for (const Step& s : steps_) {
    const Pixel w = buf[s.w_index];
    const Pixel n = buf[s.n_index];
    buf[s.out_index] = s.defective
                           ? defective_output(s.defect_seed, x, y, w, n)
                           : apply_op(static_cast<PeOp>(s.op), w, n);
  }
  return output_const_ >= 0 ? static_cast<Pixel>(output_const_)
                            : buf[output_index_];
}

Fitness CompiledArray::process_rows(const img::Image& src, img::Image* dst,
                                    const img::Image* reference,
                                    std::size_t y0, std::size_t y1) const {
  const std::size_t w = src.width();
  const std::size_t h = src.height();
  Fitness total = 0;
  Pixel win[kWindowTaps];
  const auto scalar_span = [&](std::size_t y, std::size_t x_lo,
                               std::size_t x_hi) {
    for (std::size_t x = x_lo; x < x_hi; ++x) {
      img::gather_window3x3(src, x, y, win);
      const Pixel out = evaluate(win, x, y);
      if (dst != nullptr) dst->set(x, y, out);
      if (reference != nullptr) {
        total += static_cast<Fitness>(
            std::abs(static_cast<int>(out) -
                     static_cast<int>(reference->at(x, y))));
      }
    }
  };

  if (w < 3) {  // no interior columns: everything is border
    for (std::size_t y = y0; y < y1; ++y) scalar_span(y, 0, w);
    return total;
  }

  // Row workspace. Slot read pointers rp[] cover the whole value buffer:
  // tap slots [0, 9) point straight into the three source rows around y
  // (re-aimed every row, like the platform's line FIFOs sliding down the
  // frame); cell slots point at backing rows in `storage`, written by the
  // steps. The interior span covers x in [1, w-2].
  const std::size_t span = w - 2;
  const std::size_t cell_slots = buffer_size_ - kWindowTaps;
  std::vector<Pixel> storage(cell_slots * span);
  std::vector<const Pixel*> rp(buffer_size_, nullptr);
  for (std::size_t s = 0; s < cell_slots; ++s) {
    rp[kWindowTaps + s] = storage.data() + s * span;
  }
  for (const SlotConst& sc : consts_) {
    if (sc.slot >= kWindowTaps) {
      std::memset(storage.data() + (sc.slot - kWindowTaps) * span, sc.value,
                  span);
    }
  }

  for (std::size_t y = y0; y < y1; ++y) {
    if (y == 0 || y + 1 >= h) {  // boundary rows replicate: scalar path
      scalar_span(y, 0, w);
      continue;
    }
    scalar_span(y, 0, 1);  // west border pixel
    for (std::size_t t = 0; t < kWindowTaps; ++t) {
      rp[t] = src.row(y + t / 3 - 1) + t % 3;
    }
    for (const Step& s : steps_) {
      Pixel* out =
          storage.data() + (s.out_index - kWindowTaps) * span;
      if (s.defective) {
        const Pixel* ws = rp[s.w_index];
        const Pixel* ns = rp[s.n_index];
        for (std::size_t i = 0; i < span; ++i) {
          out[i] = defective_output(s.defect_seed, i + 1, y, ws[i], ns[i]);
        }
      } else {
        apply_op_row(static_cast<PeOp>(s.op), rp[s.w_index], rp[s.n_index],
                     out, span);
      }
    }
    if (dst != nullptr) {
      Pixel* drow = dst->row(y) + 1;
      if (output_const_ >= 0) {
        std::memset(drow, static_cast<Pixel>(output_const_), span);
      } else {
        std::memcpy(drow, rp[output_index_], span);
      }
    }
    if (reference != nullptr) {
      const Pixel* rrow = reference->row(y) + 1;
      if (output_const_ >= 0) {
        const auto cv = static_cast<Pixel>(output_const_);
        for (std::size_t i = 0; i < span; ++i) {
          const int d = static_cast<int>(cv) - static_cast<int>(rrow[i]);
          total += static_cast<Fitness>(d < 0 ? -d : d);
        }
      } else {
        total += row_abs_error(rp[output_index_], rrow, span);
      }
    }
    scalar_span(y, w - 1, w);  // east border pixel
  }
  return total;
}

img::Image CompiledArray::filter(const img::Image& src) const {
  img::Image out(src.width(), src.height());
  filter_into(src, out, nullptr);
  return out;
}

void CompiledArray::filter_into(const img::Image& src, img::Image& dst,
                                ThreadPool* pool) const {
  EHW_REQUIRE(src.same_shape(dst), "destination shape mismatch");
  const std::size_t h = src.height();
  if (pool != nullptr && h >= 32) {
    pool->parallel_chunks(0, h, [&](std::size_t lo, std::size_t hi) {
      process_rows(src, &dst, nullptr, lo, hi);
    });
  } else {
    process_rows(src, &dst, nullptr, 0, h);
  }
}

Fitness CompiledArray::fitness_against(const img::Image& src,
                                       const img::Image& reference,
                                       ThreadPool* pool) const {
  EHW_REQUIRE(src.same_shape(reference), "reference shape mismatch");
  const std::size_t h = src.height();
  if (pool != nullptr && h >= 64) {
    // Each chunk accumulates privately; one atomic add per chunk keeps
    // worker cache lines disjoint (no per-row shared partial array).
    std::atomic<Fitness> total{0};
    pool->parallel_chunks(0, h, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(process_rows(src, nullptr, &reference, lo, hi),
                      std::memory_order_relaxed);
    });
    return total.load(std::memory_order_relaxed);
  }
  return process_rows(src, nullptr, &reference, 0, h);
}

bool CompiledArray::any_defective_active() const noexcept {
  for (const Step& s : steps_) {
    if (s.defective) return true;
  }
  return false;
}

}  // namespace ehw::pe
