#include "ehw/pe/compiled.hpp"

#include <cstdlib>

namespace ehw::pe {

CompiledArray::CompiledArray(const SystolicArray& array) {
  const auto& shape = array.shape();
  const std::size_t rows = shape.rows;
  const std::size_t cols = shape.cols;
  buffer_size_ = kWindowTaps + rows * cols;

  const auto cell_slot = [&](std::size_t r, std::size_t c) {
    return static_cast<std::uint16_t>(kWindowTaps + r * cols + c);
  };

  // Rows strictly below the output row are dead: a cell's value flows only
  // east (same row) and south (greater row), so nothing from row > out
  // can ever come back up to the output row.
  const std::size_t active_rows = array.output_row() + std::size_t{1};
  steps_.reserve(active_rows * cols);
  for (std::size_t r = 0; r < active_rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const CellConfig& cc = array.cell(r, c);
      Step step;
      step.op = static_cast<std::uint8_t>(cc.op);
      step.defective = cc.defective;
      step.defect_seed = cc.defect_seed;
      step.w_index = c == 0 ? array.input_select(r) : cell_slot(r, c - 1);
      step.n_index = r == 0 ? static_cast<std::uint16_t>(
                                  array.input_select(rows + c))
                            : cell_slot(r - 1, c);
      step.out_index = cell_slot(r, c);
      steps_.push_back(step);
    }
  }
  output_index_ = cell_slot(array.output_row(), cols - 1);
}

Pixel CompiledArray::evaluate(const Pixel window[kWindowTaps], std::size_t x,
                              std::size_t y) const noexcept {
  // Value buffer on the stack; 16x16 arrays (265 slots) fit comfortably.
  Pixel buf[512];
  for (std::size_t i = 0; i < kWindowTaps; ++i) buf[i] = window[i];
  for (const Step& s : steps_) {
    const Pixel w = buf[s.w_index];
    const Pixel n = buf[s.n_index];
    buf[s.out_index] = s.defective
                           ? defective_output(s.defect_seed, x, y, w, n)
                           : apply_op(static_cast<PeOp>(s.op), w, n);
  }
  return buf[output_index_];
}

img::Image CompiledArray::filter(const img::Image& src) const {
  img::Image out(src.width(), src.height());
  filter_into(src, out, nullptr);
  return out;
}

void CompiledArray::filter_into(const img::Image& src, img::Image& dst,
                                ThreadPool* pool) const {
  EHW_REQUIRE(src.same_shape(dst), "destination shape mismatch");
  const auto process_row = [&](std::size_t y) {
    Pixel win[kWindowTaps];
    for (std::size_t x = 0; x < src.width(); ++x) {
      img::gather_window3x3(src, x, y, win);
      dst.set(x, y, evaluate(win, x, y));
    }
  };
  if (pool != nullptr && src.height() >= 32) {
    pool->parallel_for(0, src.height(), process_row);
  } else {
    for (std::size_t y = 0; y < src.height(); ++y) process_row(y);
  }
}

Fitness CompiledArray::fitness_against(const img::Image& src,
                                       const img::Image& reference,
                                       ThreadPool* pool) const {
  EHW_REQUIRE(src.same_shape(reference), "reference shape mismatch");
  const std::size_t h = src.height();
  const auto row_error = [&](std::size_t y) {
    Pixel win[kWindowTaps];
    Fitness acc = 0;
    for (std::size_t x = 0; x < src.width(); ++x) {
      img::gather_window3x3(src, x, y, win);
      const int out = evaluate(win, x, y);
      const int ref = reference.at(x, y);
      acc += static_cast<Fitness>(std::abs(out - ref));
    }
    return acc;
  };
  if (pool != nullptr && h >= 64) {
    std::vector<Fitness> partial(h, 0);
    pool->parallel_for(0, h, [&](std::size_t y) { partial[y] = row_error(y); });
    Fitness total = 0;
    for (Fitness f : partial) total += f;
    return total;
  }
  Fitness total = 0;
  for (std::size_t y = 0; y < h; ++y) total += row_error(y);
  return total;
}

bool CompiledArray::any_defective_active() const noexcept {
  for (const Step& s : steps_) {
    if (s.defective) return true;
  }
  return false;
}

}  // namespace ehw::pe
