#pragma once
// Flattened, allocation-free evaluator for a SystolicArray.
//
// The evolutionary loop evaluates millions of 3x3 windows per run, so the
// mesh is "compiled" once per candidate into a linear program over a value
// buffer:
//   slots [0, 9)            = window taps;
//   slot  9 + r*cols + c    = output of cell (r, c).
// Cells strictly below the selected output row can never reach the output
// (dependencies only point west and north), so compilation drops them —
// the same dead logic the physical array simply doesn't observe.
//
// Compilation additionally folds trivial steps exactly:
//   * identity cells (W / N pass-throughs) become slot aliases,
//   * constant cells — and cells whose live inputs are already known
//     constants — become precomputed slot constants,
// so the emitted program contains only steps that do real work. Folding is
// bit-exact and never touches defective cells (their pseudo-random output
// depends on position and inputs).
//
// Whole-frame evaluation runs a FUSED SIMD kernel (see pe/simd.hpp for
// the lane configuration): the 9 window taps read from a padded
// 3-row line ring whose clamp-replicated edge pixels make every frame
// pixel — borders and 1-pixel-wide frames included — an interior pixel of
// the kernel, and the surviving steps execute block-by-block over
// cache-line-sized spans so adjacent steps compose in L1 instead of
// materializing a frame-width intermediate row each (step fusion).
// Defective cells run through the vectorized defective_row lane kernel.
// Outputs are bit-identical to the scalar evaluator in all cases,
// including defective cells — defects are never folded or fused away.

#include <cstdint>
#include <vector>

#include "ehw/common/thread_pool.hpp"
#include "ehw/img/image.hpp"
#include "ehw/pe/array.hpp"

namespace ehw::pe {

class CompiledArray {
 public:
  /// Scalar-path value-buffer capacity: window taps + every cell of the
  /// largest supported mesh. Enforced at construction.
  static constexpr std::size_t kEvalBufferSlots = 512;

  explicit CompiledArray(const SystolicArray& array);

  /// Evaluates one window; (x, y) seed defective-cell randomness only.
  [[nodiscard]] Pixel evaluate(const Pixel window[kWindowTaps], std::size_t x,
                               std::size_t y) const noexcept;

  /// Filters a whole image sequentially.
  [[nodiscard]] img::Image filter(const img::Image& src) const;

  /// Filters into a pre-allocated destination; row chunks are distributed
  /// over `pool` when given (deterministic: disjoint row ranges).
  void filter_into(const img::Image& src, img::Image& dst,
                   ThreadPool* pool = nullptr) const;

  /// Aggregated MAE against `reference` of filtering `src`, without
  /// materializing the output image (the fitness-unit fast path).
  [[nodiscard]] Fitness fitness_against(const img::Image& src,
                                        const img::Image& reference,
                                        ThreadPool* pool = nullptr) const;

  /// Cells in rows reachable from the output mux (compile-folded steps
  /// still count: folding is an evaluator optimization, not dead logic).
  [[nodiscard]] std::size_t active_cell_count() const noexcept {
    return active_cells_;
  }
  /// Steps surviving constant/identity folding (evaluator work per pixel).
  [[nodiscard]] std::size_t step_count() const noexcept {
    return steps_.size();
  }
  [[nodiscard]] bool any_defective_active() const noexcept;

 private:
  struct Step {
    std::uint8_t op;         // PeOp, valid when !defective
    bool defective;
    std::uint16_t w_index;   // operand slots in the value buffer
    std::uint16_t n_index;
    std::uint16_t out_index;
    std::uint64_t defect_seed;
  };
  /// A slot whose value folded to a compile-time constant and is still
  /// read by a surviving step.
  struct SlotConst {
    std::uint16_t slot;
    Pixel value;
  };

  /// Row-vectorized kernel over rows [y0, y1); `dst` may be null when only
  /// the error sum against `reference` is wanted (then `reference` must be
  /// non-null, and vice versa).
  Fitness process_rows(const img::Image& src, img::Image* dst,
                       const img::Image* reference, std::size_t y0,
                       std::size_t y1) const;

  std::vector<Step> steps_;
  std::vector<SlotConst> consts_;
  std::uint16_t output_index_ = 0;
  std::int16_t output_const_ = -1;  // >= 0: the output folded to a constant
  std::size_t buffer_size_ = 0;
  std::size_t active_cells_ = 0;
};

}  // namespace ehw::pe
