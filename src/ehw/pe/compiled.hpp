#pragma once
// Flattened, allocation-free evaluator for a SystolicArray.
//
// The evolutionary loop evaluates millions of 3x3 windows per run, so the
// mesh is "compiled" once per candidate into a linear program over a value
// buffer:
//   slots [0, 9)            = window taps;
//   slot  9 + r*cols + c    = output of cell (r, c).
// Cells strictly below the selected output row can never reach the output
// (dependencies only point west and north), so compilation drops them —
// the same dead logic the physical array simply doesn't observe.

#include <cstdint>
#include <vector>

#include "ehw/common/thread_pool.hpp"
#include "ehw/img/image.hpp"
#include "ehw/pe/array.hpp"

namespace ehw::pe {

class CompiledArray {
 public:
  explicit CompiledArray(const SystolicArray& array);

  /// Evaluates one window; (x, y) seed defective-cell randomness only.
  [[nodiscard]] Pixel evaluate(const Pixel window[kWindowTaps], std::size_t x,
                               std::size_t y) const noexcept;

  /// Filters a whole image sequentially.
  [[nodiscard]] img::Image filter(const img::Image& src) const;

  /// Filters into a pre-allocated destination; rows are distributed over
  /// `pool` when given (deterministic: disjoint row ranges).
  void filter_into(const img::Image& src, img::Image& dst,
                   ThreadPool* pool = nullptr) const;

  /// Aggregated MAE against `reference` of filtering `src`, without
  /// materializing the output image (the fitness-unit fast path).
  [[nodiscard]] Fitness fitness_against(const img::Image& src,
                                        const img::Image& reference,
                                        ThreadPool* pool = nullptr) const;

  [[nodiscard]] std::size_t active_cell_count() const noexcept {
    return steps_.size();
  }
  [[nodiscard]] bool any_defective_active() const noexcept;

 private:
  struct Step {
    std::uint8_t op;         // PeOp, valid when !defective
    bool defective;
    std::uint16_t w_index;   // operand slots in the value buffer
    std::uint16_t n_index;
    std::uint16_t out_index;
    std::uint64_t defect_seed;
  };

  std::vector<Step> steps_;
  std::uint16_t output_index_ = 0;
  std::size_t buffer_size_ = 0;
};

}  // namespace ehw::pe
