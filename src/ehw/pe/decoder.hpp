#pragma once
// Configuration decoder: turns the *actual* configuration-memory contents
// of an array's PE slots into cell behaviour. This is the point where the
// phenotype is read FROM THE FABRIC rather than from the genotype, so that
// faults (SEU/LPD/dummy-PE) perturb behaviour exactly as on the device:
//
//   * slot bits == an intact library PBS      -> that library function;
//   * anything else (flipped bit, stuck bit,
//     dummy payload, garbled opcode)          -> defective cell emitting
//                                                seeded random values.
//
// The window muxes and output mux are NOT in the fabric: the paper keeps
// them as EA-controlled registers in the ACB, so the decoder receives them
// separately.

#include "ehw/fpga/config_memory.hpp"
#include "ehw/fpga/geometry.hpp"
#include "ehw/pe/array.hpp"
#include "ehw/reconfig/pbs_library.hpp"

namespace ehw::pe {

/// Decodes one slot into cell behaviour.
[[nodiscard]] CellConfig decode_slot(const fpga::ConfigMemory& memory,
                                     const fpga::FabricGeometry& geometry,
                                     const reconfig::PbsLibrary& library,
                                     const fpga::SlotAddress& slot);

/// Decodes the whole array `array_index`. Mux settings are applied from
/// the caller's register values (`input_taps` has rows+cols entries).
[[nodiscard]] SystolicArray decode_array(
    const fpga::ConfigMemory& memory, const fpga::FabricGeometry& geometry,
    const reconfig::PbsLibrary& library, std::size_t array_index,
    const std::vector<std::uint8_t>& input_taps, std::uint8_t output_row);

}  // namespace ehw::pe
