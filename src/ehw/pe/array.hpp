#pragma once
// Functional model of one systolic processing array (§III.A).
//
// Topology (rows x cols, paper: 4x4):
//   * PE(r,c) reads W from PE(r,c-1)'s output, or from west edge input r
//     when c == 0; reads N from PE(r-1,c)'s output, or from north edge
//     input c when r == 0.
//   * Every PE registers its output and drives it to BOTH South and East —
//     so the value seen on the E and S fan-outs is identical.
//   * The array has rows west inputs + cols north inputs (4+4 = 8). Each
//     is fed by a 9-to-1 mux over the current 3x3 sliding window.
//   * The output is one of the `rows` east-side outputs of the last
//     column, chosen by an output mux.
// Pipelining: registers make execution systolic; the *value* computed for
// a window equals the combinational evaluation, so the model computes
// combinationally and exposes the pipeline depth as latency() for the
// ACB's latency-compensation logic.
//
// Fault semantics: a cell whose configuration is not an intact library
// function is `defective`: its output is a deterministic pseudo-random
// byte derived from (defect_seed, window position, inputs). This is the
// paper's dummy-PE model ("generates a random value in its output").

#include <array>
#include <cstdint>
#include <vector>

#include "ehw/common/rng.hpp"
#include "ehw/fpga/geometry.hpp"
#include "ehw/img/image.hpp"
#include "ehw/pe/functions.hpp"

namespace ehw::pe {

/// Behavioural configuration of one cell after decoding its slot.
struct CellConfig {
  PeOp op = PeOp::kIdentityW;
  bool defective = false;
  std::uint64_t defect_seed = 0;  // differentiates distinct faulty cells

  friend bool operator==(const CellConfig&, const CellConfig&) = default;
};

/// Number of window taps each input mux can select from (3x3 window).
inline constexpr std::size_t kWindowTaps = 9;

/// Widest mesh the evaluators support; lets the per-window reference
/// evaluator keep its column state on the stack. Far above any practical
/// shape (the paper uses 4x4) and enforced at construction.
inline constexpr std::size_t kMaxMeshCols = 256;

class SystolicArray {
 public:
  explicit SystolicArray(fpga::ArrayShape shape);

  [[nodiscard]] const fpga::ArrayShape& shape() const noexcept {
    return shape_;
  }
  [[nodiscard]] std::size_t input_count() const noexcept {
    return shape_.rows + shape_.cols;
  }

  /// Cell access (row-major).
  [[nodiscard]] const CellConfig& cell(std::size_t row, std::size_t col) const;
  void set_cell(std::size_t row, std::size_t col, CellConfig config);

  /// Input mux i selects window tap input_select(i) in [0, 9).
  /// Muxes [0, rows) feed the west edge; [rows, rows+cols) the north edge.
  [[nodiscard]] std::uint8_t input_select(std::size_t input) const;
  void set_input_select(std::size_t input, std::uint8_t tap);

  /// Which east-side row drives the array output.
  [[nodiscard]] std::uint8_t output_row() const noexcept { return output_row_; }
  void set_output_row(std::uint8_t row);

  /// Evaluates the array over one 3x3 window (row-major taps).
  /// (x, y) locate the window in the image; they only seed defective-cell
  /// randomness so that faulty outputs vary across the frame.
  [[nodiscard]] Pixel evaluate(const Pixel window[kWindowTaps], std::size_t x,
                               std::size_t y) const;

  /// Filters a whole image (border-replicated windows).
  [[nodiscard]] img::Image filter(const img::Image& src) const;

  /// Pipeline latency in clock cycles: one register per PE along the
  /// longest W-path to the selected output row, plus the input register.
  [[nodiscard]] std::size_t latency() const noexcept {
    return shape_.cols + output_row_ + 1;
  }

  /// True if any cell is defective (used by health monitors in tests).
  [[nodiscard]] bool any_defective() const noexcept;

  friend bool operator==(const SystolicArray&, const SystolicArray&) = default;

 private:
  fpga::ArrayShape shape_;
  std::vector<CellConfig> cells_;          // rows * cols
  std::vector<std::uint8_t> input_sel_;    // rows + cols entries in [0,9)
  std::uint8_t output_row_ = 0;
};

/// Deterministic "random output" of a defective cell. Stateless so that
/// repeated evaluation of the same frame is reproducible, but varies with
/// position and data like a metastable/damaged LUT would.
[[nodiscard]] inline Pixel defective_output(std::uint64_t defect_seed,
                                            std::size_t x, std::size_t y,
                                            Pixel w, Pixel n) noexcept {
  std::uint64_t s = defect_seed ^ (static_cast<std::uint64_t>(x) << 32) ^ y;
  s ^= (static_cast<std::uint64_t>(w) << 8) | n;
  return static_cast<Pixel>(splitmix64(s) >> 56);
}

}  // namespace ehw::pe
