#include "ehw/pe/array.hpp"

namespace ehw::pe {

SystolicArray::SystolicArray(fpga::ArrayShape shape)
    : shape_(shape),
      cells_(shape.cell_count()),
      input_sel_(shape.rows + shape.cols, 0) {
  EHW_REQUIRE(shape_.rows > 0 && shape_.cols > 0, "degenerate array shape");
  EHW_REQUIRE(shape_.rows <= 255, "output mux gene is 8-bit");
  EHW_REQUIRE(shape_.cols <= kMaxMeshCols, "mesh wider than evaluator buffer");
}

const CellConfig& SystolicArray::cell(std::size_t row, std::size_t col) const {
  EHW_REQUIRE(row < shape_.rows && col < shape_.cols, "cell out of range");
  return cells_[row * shape_.cols + col];
}

void SystolicArray::set_cell(std::size_t row, std::size_t col,
                             CellConfig config) {
  EHW_REQUIRE(row < shape_.rows && col < shape_.cols, "cell out of range");
  cells_[row * shape_.cols + col] = config;
}

std::uint8_t SystolicArray::input_select(std::size_t input) const {
  EHW_REQUIRE(input < input_sel_.size(), "input index out of range");
  return input_sel_[input];
}

void SystolicArray::set_input_select(std::size_t input, std::uint8_t tap) {
  EHW_REQUIRE(input < input_sel_.size(), "input index out of range");
  EHW_REQUIRE(tap < kWindowTaps, "window tap out of range");
  input_sel_[input] = tap;
}

void SystolicArray::set_output_row(std::uint8_t row) {
  EHW_REQUIRE(row < shape_.rows, "output row out of range");
  output_row_ = row;
}

Pixel SystolicArray::evaluate(const Pixel window[kWindowTaps], std::size_t x,
                              std::size_t y) const {
  // Outputs of the previous column (W sources) and the running-north
  // values per column. Row-major sweep keeps each dependency ready.
  // The width bound enforced at construction keeps this on the stack —
  // this reference path runs under equivalence sweeps, so a per-pixel
  // heap allocation here is pure overhead.
  Pixel north[kMaxMeshCols];
  for (std::size_t c = 0; c < shape_.cols; ++c) {
    north[c] = window[input_sel_[shape_.rows + c]];
  }
  Pixel out = 0;
  for (std::size_t r = 0; r < shape_.rows; ++r) {
    Pixel west = window[input_sel_[r]];
    for (std::size_t c = 0; c < shape_.cols; ++c) {
      const CellConfig& cc = cells_[r * shape_.cols + c];
      const Pixel n = north[c];
      const Pixel v = cc.defective
                          ? defective_output(cc.defect_seed, x, y, west, n)
                          : apply_op(cc.op, west, n);
      // The registered output drives both East (next west) and South
      // (next north).
      west = v;
      north[c] = v;
      if (c + 1 == shape_.cols && r == output_row_) out = v;
    }
  }
  return out;
}

img::Image SystolicArray::filter(const img::Image& src) const {
  img::Image out(src.width(), src.height());
  Pixel win[kWindowTaps];
  for (std::size_t y = 0; y < src.height(); ++y) {
    for (std::size_t x = 0; x < src.width(); ++x) {
      img::gather_window3x3(src, x, y, win);
      out.set(x, y, evaluate(win, x, y));
    }
  }
  return out;
}

bool SystolicArray::any_defective() const noexcept {
  for (const auto& c : cells_) {
    if (c.defective) return true;
  }
  return false;
}

}  // namespace ehw::pe
