#include "ehw/pe/liveness.hpp"

#include <sstream>
#include <vector>

namespace ehw::pe {

LivenessInfo analyze_liveness(const SystolicArray& array) {
  const auto& shape = array.shape();
  const std::size_t rows = shape.rows;
  const std::size_t cols = shape.cols;

  LivenessInfo info;
  info.live_cells.assign(rows * cols, false);
  info.live_taps.assign(kWindowTaps, false);

  // Which of a cell's inputs are consumed by its op.
  const auto uses_w = [&](const CellConfig& cc) {
    // A defective cell's output depends on both inputs (they seed the
    // pseudo-random hash), so treat both as used.
    if (cc.defective) return true;
    return !op_is_constant(cc.op);
  };
  const auto uses_n = [&](const CellConfig& cc) {
    if (cc.defective) return true;
    return !op_is_constant(cc.op) && !op_uses_only_w(cc.op);
  };

  // Backward BFS from the output cell along used edges.
  std::vector<std::pair<std::size_t, std::size_t>> work;
  const std::size_t out_row = array.output_row();
  info.live_cells[out_row * cols + (cols - 1)] = true;
  work.emplace_back(out_row, cols - 1);
  while (!work.empty()) {
    const auto [r, c] = work.back();
    work.pop_back();
    const CellConfig& cc = array.cell(r, c);
    // W source: (r, c-1) or west edge input r.
    if (uses_w(cc)) {
      if (c > 0) {
        if (!info.live_cells[r * cols + (c - 1)]) {
          info.live_cells[r * cols + (c - 1)] = true;
          work.emplace_back(r, c - 1);
        }
      } else {
        info.live_taps[array.input_select(r)] = true;
      }
    }
    // N source: (r-1, c) or north edge input c.
    if (uses_n(cc)) {
      if (r > 0) {
        if (!info.live_cells[(r - 1) * cols + c]) {
          info.live_cells[(r - 1) * cols + c] = true;
          work.emplace_back(r - 1, c);
        }
      } else {
        info.live_taps[array.input_select(shape.rows + c)] = true;
      }
    }
  }
  for (const bool b : info.live_cells) info.live_cell_count += b ? 1 : 0;
  return info;
}

std::string render_schematic(const SystolicArray& array) {
  const auto& shape = array.shape();
  const LivenessInfo live = analyze_liveness(array);
  std::ostringstream os;
  // Header: north tap assignments.
  os << "north taps:";
  for (std::size_t c = 0; c < shape.cols; ++c) {
    os << " w" << int{array.input_select(shape.rows + c)};
  }
  os << "\n";
  for (std::size_t r = 0; r < shape.rows; ++r) {
    os << "w" << int{array.input_select(r)} << " ->";
    for (std::size_t c = 0; c < shape.cols; ++c) {
      const CellConfig& cc = array.cell(r, c);
      std::string label;
      if (cc.defective) {
        label = "XXXX";
      } else if (live.cell(r, c, shape.cols)) {
        label = std::string(op_name(cc.op));
      } else {
        label = "..";
      }
      os << " [" << label << std::string(label.size() < 4 ? 4 - label.size()
                                                          : 0,
                                         ' ')
         << "]";
    }
    if (r == array.output_row()) os << " ==> out";
    os << "\n";
  }
  os << "live cells: " << live.live_cell_count << "/" << shape.cell_count()
     << ", live window taps:";
  for (std::size_t t = 0; t < kWindowTaps; ++t) {
    if (live.live_taps[t]) os << ' ' << t;
  }
  os << "\n";
  return os.str();
}

}  // namespace ehw::pe
