#pragma once
// The 16-entry PE function library (§III.A): each PE computes one
// operation over its West (W) and/or North (N) inputs; redundancies and
// symmetries were eliminated to fit a 4-bit gene. This is the standard
// CGP-for-image-filters function set (constants, identities, inversion,
// min/max, saturating arithmetic, averaging, shifts, logic ops,
// thresholding) that the single-array ancestor system [4] uses.

#include <cstdint>
#include <string_view>

#include "ehw/common/types.hpp"

namespace ehw::pe {

enum class PeOp : std::uint8_t {
  kConst255 = 0,   // 255
  kIdentityW = 1,  // W
  kIdentityN = 2,  // N
  kInvertW = 3,    // 255 - W
  kMax = 4,        // max(W, N)
  kMin = 5,        // min(W, N)
  kAddSat = 6,     // min(255, W + N)
  kSubSat = 7,     // max(0, W - N)
  kAverage = 8,    // (W + N + 1) / 2
  kShiftR1 = 9,    // W >> 1
  kShiftR2 = 10,   // W >> 2
  kAddMod = 11,    // (W + N) mod 256
  kAbsDiff = 12,   // |W - N|
  kThreshold = 13, // W > N ? 255 : 0
  kOr = 14,        // W | N
  kAnd = 15,       // W & N
};

inline constexpr std::size_t kOpCount = 16;

/// Applies a library function to the two 8-bit inputs.
[[nodiscard]] Pixel apply_op(PeOp op, Pixel w, Pixel n) noexcept;

/// Short mnemonic ("MAX", "ADDSAT", ...) for logs and genotype dumps.
[[nodiscard]] std::string_view op_name(PeOp op) noexcept;

/// True if the op reads only W (the N input is don't-care). Used by the
/// structural analysis in tests and by the criticality reports.
[[nodiscard]] bool op_uses_only_w(PeOp op) noexcept;

/// True if the op's output is constant (ignores both inputs).
[[nodiscard]] bool op_is_constant(PeOp op) noexcept;

}  // namespace ehw::pe
