#pragma once
// Noise injectors. The paper's headline workload is salt & pepper noise at
// up to 40% density (Fig. 18); Gaussian and impulse noise are provided for
// the wider "window-based image filter" application family of §I.

#include "ehw/common/rng.hpp"
#include "ehw/img/image.hpp"

namespace ehw::img {

/// Replaces each pixel, with probability `density`, by 0 or 255 (fair coin).
[[nodiscard]] Image add_salt_pepper(const Image& src, double density,
                                    Rng& rng);

/// Adds zero-mean Gaussian noise with standard deviation `sigma` (clamped).
[[nodiscard]] Image add_gaussian(const Image& src, double sigma, Rng& rng);

/// Replaces each pixel, with probability `density`, by a uniform random
/// value (uniform impulse / "random-valued" noise).
[[nodiscard]] Image add_impulse(const Image& src, double density, Rng& rng);

/// Fraction of pixels differing between two same-shape images.
[[nodiscard]] double differing_fraction(const Image& a, const Image& b);

}  // namespace ehw::img
