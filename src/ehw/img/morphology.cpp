#include "ehw/img/morphology.hpp"

#include <algorithm>

namespace ehw::img {
namespace {

template <typename Select>
Image window_reduce(const Image& src, Select select) {
  Image out(src.width(), src.height());
  Pixel win[9];
  for (std::size_t y = 0; y < src.height(); ++y) {
    for (std::size_t x = 0; x < src.width(); ++x) {
      gather_window3x3(src, x, y, win);
      Pixel v = win[0];
      for (int k = 1; k < 9; ++k) v = select(v, win[k]);
      out.set(x, y, v);
    }
  }
  return out;
}

}  // namespace

Image erode3x3(const Image& src) {
  return window_reduce(src, [](Pixel a, Pixel b) { return std::min(a, b); });
}

Image dilate3x3(const Image& src) {
  return window_reduce(src, [](Pixel a, Pixel b) { return std::max(a, b); });
}

Image open3x3(const Image& src) { return dilate3x3(erode3x3(src)); }

Image close3x3(const Image& src) { return erode3x3(dilate3x3(src)); }

Image morph_gradient3x3(const Image& src) {
  const Image lo = erode3x3(src);
  const Image hi = dilate3x3(src);
  Image out(src.width(), src.height());
  for (std::size_t y = 0; y < out.height(); ++y) {
    const Pixel* ph = hi.row(y);
    const Pixel* pl = lo.row(y);
    Pixel* po = out.row(y);
    for (std::size_t x = 0; x < out.width(); ++x) {
      po[x] = static_cast<Pixel>(ph[x] - pl[x]);
    }
  }
  return out;
}

}  // namespace ehw::img
