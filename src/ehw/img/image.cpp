#include "ehw/img/image.hpp"

// Image is header-only except for this translation unit, which exists so
// the module has a stable archive even if the header inlines everything.
namespace ehw::img {}
