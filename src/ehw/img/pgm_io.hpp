#pragma once
// Minimal binary PGM (P5) reader/writer so examples and the Fig. 18 bench
// can emit inspectable images without external dependencies.

#include <iosfwd>
#include <string>

#include "ehw/img/image.hpp"

namespace ehw::img {

/// Writes `image` as binary PGM (P5, maxval 255). Throws std::runtime_error
/// on I/O failure.
void write_pgm(const Image& image, const std::string& path);
void write_pgm(const Image& image, std::ostream& os);

/// Reads a binary (P5) or ASCII (P2) PGM with maxval <= 255.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] Image read_pgm(const std::string& path);
[[nodiscard]] Image read_pgm(std::istream& is);

}  // namespace ehw::img
