#pragma once
// Procedural test scenes. The paper's platform takes its training image
// from flash (or a camera at mission time); we have neither, so we generate
// deterministic scenes with the feature mix window filters care about:
// smooth gradients, sharp edges, corners, thin lines and mild texture.
// Every generator is pure in (size, seed), making experiments reproducible.

#include <cstdint>

#include "ehw/img/image.hpp"

namespace ehw::img {

/// A natural-image stand-in: overlapping soft blobs + polygons + gradient
/// background + low-amplitude deterministic texture.
[[nodiscard]] Image make_scene(std::size_t width, std::size_t height,
                               std::uint64_t seed);

/// Linear horizontal gradient from `from` to `to`.
[[nodiscard]] Image make_gradient(std::size_t width, std::size_t height,
                                  Pixel from = 0, Pixel to = 255);

/// Checkerboard with the given tile size; exercises edge responses.
[[nodiscard]] Image make_checkerboard(std::size_t width, std::size_t height,
                                      std::size_t tile, Pixel dark = 32,
                                      Pixel bright = 224);

/// Constant image (calibration pattern building block).
[[nodiscard]] Image make_constant(std::size_t width, std::size_t height,
                                  Pixel value);

/// The platform's calibration pattern (paper §V.A step b: "a calibration
/// image, which must provide a known fitness value"): a fixed mix of
/// gradient + checkerboard chosen to excite every PE input combination.
[[nodiscard]] Image make_calibration_pattern(std::size_t width,
                                             std::size_t height);

}  // namespace ehw::img
