#include "ehw/img/pgm_io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ehw::img {
namespace {

/// Skips whitespace and '#' comment lines in a PGM header.
void skip_pgm_separators(std::istream& is) {
  for (;;) {
    const int c = is.peek();
    if (c == '#') {
      std::string line;
      std::getline(is, line);
    } else if (c != EOF && std::isspace(c)) {
      is.get();
    } else {
      return;
    }
  }
}

std::size_t read_header_number(std::istream& is) {
  skip_pgm_separators(is);
  std::size_t v = 0;
  if (!(is >> v)) throw std::runtime_error("pgm: malformed header number");
  return v;
}

}  // namespace

void write_pgm(const Image& image, std::ostream& os) {
  os << "P5\n"
     << image.width() << ' ' << image.height() << "\n255\n";
  // Rows are stride-padded in memory; the file format is dense.
  for (std::size_t y = 0; y < image.height(); ++y) {
    os.write(reinterpret_cast<const char*>(image.row(y)),
             static_cast<std::streamsize>(image.width()));
  }
  if (!os) throw std::runtime_error("pgm: write failed");
}

void write_pgm(const Image& image, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("pgm: cannot open for write: " + path);
  write_pgm(image, os);
}

Image read_pgm(std::istream& is) {
  std::string magic;
  is >> magic;
  if (magic != "P5" && magic != "P2") {
    throw std::runtime_error("pgm: unsupported magic '" + magic + "'");
  }
  const std::size_t w = read_header_number(is);
  const std::size_t h = read_header_number(is);
  const std::size_t maxval = read_header_number(is);
  if (w == 0 || h == 0) throw std::runtime_error("pgm: zero dimension");
  if (maxval == 0 || maxval > 255) {
    throw std::runtime_error("pgm: only 8-bit images supported");
  }
  Image image(w, h);
  if (magic == "P5") {
    is.get();  // single whitespace after maxval
    for (std::size_t y = 0; y < h; ++y) {
      is.read(reinterpret_cast<char*>(image.row(y)),
              static_cast<std::streamsize>(w));
      if (is.gcount() != static_cast<std::streamsize>(w)) {
        throw std::runtime_error("pgm: truncated pixel data");
      }
    }
  } else {
    for (std::size_t y = 0; y < h; ++y) {
      Pixel* r = image.row(y);
      for (std::size_t x = 0; x < w; ++x) {
        unsigned v = 0;
        if (!(is >> v) || v > maxval) {
          throw std::runtime_error("pgm: malformed ascii pixel");
        }
        r[x] = static_cast<Pixel>(v);
      }
    }
  }
  return image;
}

Image read_pgm(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("pgm: cannot open for read: " + path);
  return read_pgm(is);
}

}  // namespace ehw::img
