#include "ehw/img/noise.hpp"

#include <algorithm>
#include <cmath>

namespace ehw::img {

Image add_salt_pepper(const Image& src, double density, Rng& rng) {
  EHW_REQUIRE(density >= 0.0 && density <= 1.0, "density must be in [0,1]");
  Image out = src;
  for (std::size_t y = 0; y < out.height(); ++y) {
    Pixel* r = out.row(y);
    for (std::size_t x = 0; x < out.width(); ++x) {
      if (rng.chance(density)) {
        r[x] = rng.chance(0.5) ? Pixel{255} : Pixel{0};
      }
    }
  }
  return out;
}

Image add_gaussian(const Image& src, double sigma, Rng& rng) {
  EHW_REQUIRE(sigma >= 0.0, "sigma must be non-negative");
  Image out = src;
  for (std::size_t y = 0; y < out.height(); ++y) {
    Pixel* r = out.row(y);
    for (std::size_t x = 0; x < out.width(); ++x) {
      // Box-Muller; one draw per pixel is plenty for 8-bit noise.
      const double u1 = std::max(rng.uniform(), 1e-12);
      const double u2 = rng.uniform();
      const double n = std::sqrt(-2.0 * std::log(u1)) *
                       std::cos(6.28318530717958647692 * u2);
      const double v = static_cast<double>(r[x]) + sigma * n;
      r[x] = static_cast<Pixel>(std::clamp(v, 0.0, 255.0));
    }
  }
  return out;
}

Image add_impulse(const Image& src, double density, Rng& rng) {
  EHW_REQUIRE(density >= 0.0 && density <= 1.0, "density must be in [0,1]");
  Image out = src;
  for (std::size_t y = 0; y < out.height(); ++y) {
    Pixel* r = out.row(y);
    for (std::size_t x = 0; x < out.width(); ++x) {
      if (rng.chance(density)) r[x] = rng.byte();
    }
  }
  return out;
}

double differing_fraction(const Image& a, const Image& b) {
  EHW_REQUIRE(a.same_shape(b), "images must have the same shape");
  std::size_t diff = 0;
  for (std::size_t y = 0; y < a.height(); ++y) {
    const Pixel* pa = a.row(y);
    const Pixel* pb = b.row(y);
    for (std::size_t x = 0; x < a.width(); ++x) {
      diff += pa[x] != pb[x] ? 1 : 0;
    }
  }
  return static_cast<double>(diff) / static_cast<double>(a.pixel_count());
}

}  // namespace ehw::img
