#include "ehw/img/filters.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>

namespace ehw::img {

Image median3x3(const Image& src) {
  Image out(src.width(), src.height());
  Pixel win[9];
  for (std::size_t y = 0; y < src.height(); ++y) {
    for (std::size_t x = 0; x < src.width(); ++x) {
      gather_window3x3(src, x, y, win);
      std::array<Pixel, 9> sorted;
      std::copy(win, win + 9, sorted.begin());
      std::nth_element(sorted.begin(), sorted.begin() + 4, sorted.end());
      out.set(x, y, sorted[4]);
    }
  }
  return out;
}

Image mean3x3(const Image& src) {
  static constexpr int kKernel[9] = {1, 1, 1, 1, 1, 1, 1, 1, 1};
  return convolve3x3(src, kKernel, 9);
}

Image gaussian3x3(const Image& src) {
  static constexpr int kKernel[9] = {1, 2, 1, 2, 4, 2, 1, 2, 1};
  return convolve3x3(src, kKernel, 16);
}

Image sobel_magnitude(const Image& src) {
  Image out(src.width(), src.height());
  Pixel win[9];
  for (std::size_t y = 0; y < src.height(); ++y) {
    for (std::size_t x = 0; x < src.width(); ++x) {
      gather_window3x3(src, x, y, win);
      const int gx = -win[0] + win[2] - 2 * win[3] + 2 * win[5] - win[6] +
                     win[8];
      const int gy = -win[0] - 2 * win[1] - win[2] + win[6] + 2 * win[7] +
                     win[8];
      const int mag = std::abs(gx) + std::abs(gy);
      out.set(x, y, static_cast<Pixel>(std::min(mag, 255)));
    }
  }
  return out;
}

Image convolve3x3(const Image& src, const int kernel[9], int divisor,
                  int offset) {
  EHW_REQUIRE(divisor != 0, "divisor must be non-zero");
  Image out(src.width(), src.height());
  Pixel win[9];
  for (std::size_t y = 0; y < src.height(); ++y) {
    for (std::size_t x = 0; x < src.width(); ++x) {
      gather_window3x3(src, x, y, win);
      int acc = 0;
      for (int k = 0; k < 9; ++k) acc += kernel[k] * win[k];
      // Round-to-nearest for positive divisors keeps mean filters unbiased.
      const int v = offset + (acc + (acc >= 0 ? divisor / 2 : -divisor / 2)) /
                                 divisor;
      out.set(x, y, static_cast<Pixel>(std::clamp(v, 0, 255)));
    }
  }
  return out;
}

}  // namespace ehw::img
