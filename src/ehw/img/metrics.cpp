#include "ehw/img/metrics.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>

namespace ehw::img {

Fitness aggregated_mae(const Image& a, const Image& b) {
  EHW_REQUIRE(a.same_shape(b), "images must have the same shape");
  Fitness acc = 0;
  for (std::size_t y = 0; y < a.height(); ++y) {
    const Pixel* pa = a.row(y);
    const Pixel* pb = b.row(y);
    for (std::size_t x = 0; x < a.width(); ++x) {
      acc += static_cast<Fitness>(std::abs(int{pa[x]} - int{pb[x]}));
    }
  }
  return acc;
}

double mean_absolute_error(const Image& a, const Image& b) {
  return static_cast<double>(aggregated_mae(a, b)) /
         static_cast<double>(a.pixel_count());
}

double psnr(const Image& a, const Image& b) {
  EHW_REQUIRE(a.same_shape(b), "images must have the same shape");
  double mse = 0.0;
  for (std::size_t y = 0; y < a.height(); ++y) {
    const Pixel* pa = a.row(y);
    const Pixel* pb = b.row(y);
    for (std::size_t x = 0; x < a.width(); ++x) {
      const double d = static_cast<double>(pa[x]) - static_cast<double>(pb[x]);
      mse += d * d;
    }
  }
  mse /= static_cast<double>(a.pixel_count());
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

int max_abs_difference(const Image& a, const Image& b) {
  EHW_REQUIRE(a.same_shape(b), "images must have the same shape");
  int worst = 0;
  for (std::size_t y = 0; y < a.height(); ++y) {
    const Pixel* pa = a.row(y);
    const Pixel* pb = b.row(y);
    for (std::size_t x = 0; x < a.width(); ++x) {
      worst = std::max(worst, std::abs(int{pa[x]} - int{pb[x]}));
    }
  }
  return worst;
}

}  // namespace ehw::img
