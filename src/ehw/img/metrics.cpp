#include "ehw/img/metrics.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>

namespace ehw::img {

Fitness aggregated_mae(const Image& a, const Image& b) {
  EHW_REQUIRE(a.same_shape(b), "images must have the same shape");
  Fitness acc = 0;
  const Pixel* pa = a.data();
  const Pixel* pb = b.data();
  const std::size_t n = a.pixel_count();
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<Fitness>(std::abs(int{pa[i]} - int{pb[i]}));
  }
  return acc;
}

double mean_absolute_error(const Image& a, const Image& b) {
  return static_cast<double>(aggregated_mae(a, b)) /
         static_cast<double>(a.pixel_count());
}

double psnr(const Image& a, const Image& b) {
  EHW_REQUIRE(a.same_shape(b), "images must have the same shape");
  double mse = 0.0;
  const std::size_t n = a.pixel_count();
  for (std::size_t i = 0; i < n; ++i) {
    const double d =
        static_cast<double>(a.data()[i]) - static_cast<double>(b.data()[i]);
    mse += d * d;
  }
  mse /= static_cast<double>(n);
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

int max_abs_difference(const Image& a, const Image& b) {
  EHW_REQUIRE(a.same_shape(b), "images must have the same shape");
  int worst = 0;
  for (std::size_t i = 0; i < a.pixel_count(); ++i) {
    worst = std::max(worst, std::abs(int{a.data()[i]} - int{b.data()[i]}));
  }
  return worst;
}

}  // namespace ehw::img
