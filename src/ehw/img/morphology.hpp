#pragma once
// 3x3 grayscale morphology — additional golden baselines for the
// window-filter family (§I: "a wide range of window-based digital image
// filters"). Erosion/dilation are the min/max window filters the PE
// library can express natively; opening/closing are their compositions and
// the classical conservative impulse removers.

#include "ehw/img/image.hpp"

namespace ehw::img {

/// Minimum over the border-replicated 3x3 window.
[[nodiscard]] Image erode3x3(const Image& src);

/// Maximum over the border-replicated 3x3 window.
[[nodiscard]] Image dilate3x3(const Image& src);

/// Opening: erosion then dilation (removes bright impulses).
[[nodiscard]] Image open3x3(const Image& src);

/// Closing: dilation then erosion (removes dark impulses).
[[nodiscard]] Image close3x3(const Image& src);

/// Morphological gradient: dilate - erode (an edge detector baseline).
[[nodiscard]] Image morph_gradient3x3(const Image& src);

}  // namespace ehw::img
