#pragma once
// Image quality metrics. The platform's fitness unit computes the
// "pixel-aggregated MAE" — the sum over all pixels of |a - b| — which is
// the Fitness the evolutionary loop minimizes (0 = identical images).

#include "ehw/common/types.hpp"
#include "ehw/img/image.hpp"

namespace ehw::img {

/// Pixel-aggregated MAE (sum of absolute differences). This matches the
/// paper's magnitudes: ~8000 for a good 128x128 denoiser, ~100 as the
/// imitation "practically identical" threshold.
[[nodiscard]] Fitness aggregated_mae(const Image& a, const Image& b);

/// Per-pixel mean absolute error (aggregated MAE / pixel count).
[[nodiscard]] double mean_absolute_error(const Image& a, const Image& b);

/// Peak signal-to-noise ratio in dB; +inf for identical images.
[[nodiscard]] double psnr(const Image& a, const Image& b);

/// Largest single-pixel absolute difference.
[[nodiscard]] int max_abs_difference(const Image& a, const Image& b);

}  // namespace ehw::img
