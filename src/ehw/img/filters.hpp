#pragma once
// Golden (conventional) 3x3 window filters. These are the model-based
// baselines the paper compares against: the median filter ("the
// conventional reference filter for such type of noise... it is not
// cascadable", Fig. 18 discussion), plus mean/Gaussian smoothing and Sobel
// edge detection used to build reference images for evolution targets.

#include "ehw/img/image.hpp"

namespace ehw::img {

/// 3x3 median filter (border replicated).
[[nodiscard]] Image median3x3(const Image& src);

/// 3x3 box (mean) filter, rounded to nearest.
[[nodiscard]] Image mean3x3(const Image& src);

/// 3x3 Gaussian (1 2 1 / 2 4 2 / 1 2 1) / 16, rounded.
[[nodiscard]] Image gaussian3x3(const Image& src);

/// Sobel gradient magnitude, |Gx| + |Gy| clamped to 255.
[[nodiscard]] Image sobel_magnitude(const Image& src);

/// Generic signed 3x3 convolution with divisor and offset:
///   out = clamp(offset + (sum_k kernel[k] * window[k]) / divisor).
/// Kernel is row-major like gather_window3x3.
[[nodiscard]] Image convolve3x3(const Image& src, const int kernel[9],
                                int divisor, int offset = 0);

/// Applies `filter` n times in sequence ("cascading" a conventional filter;
/// used by the Fig. 16/17 'same filter in every stage' baseline).
template <typename F>
[[nodiscard]] Image apply_n(const Image& src, std::size_t n, F filter) {
  Image cur = src;
  for (std::size_t i = 0; i < n; ++i) cur = filter(cur);
  return cur;
}

}  // namespace ehw::img
