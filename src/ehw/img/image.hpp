#pragma once
// 8-bit grayscale image container. This is the only data format the
// evolvable arrays process: the paper's system streams 8-bit pixels from
// flash/camera through 3x3 sliding windows into the arrays.

#include <cstddef>
#include <vector>

#include "ehw/common/assert.hpp"
#include "ehw/common/types.hpp"

namespace ehw::img {

class Image {
 public:
  Image() = default;

  /// Creates a width x height image filled with `fill`.
  Image(std::size_t width, std::size_t height, Pixel fill = 0)
      : width_(width), height_(height), data_(width * height, fill) {
    EHW_REQUIRE(width > 0 && height > 0, "image dimensions must be positive");
  }

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t pixel_count() const noexcept {
    return width_ * height_;
  }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] Pixel at(std::size_t x, std::size_t y) const {
    EHW_ASSERT(x < width_ && y < height_, "pixel out of bounds");
    return data_[y * width_ + x];
  }
  void set(std::size_t x, std::size_t y, Pixel v) {
    EHW_ASSERT(x < width_ && y < height_, "pixel out of bounds");
    data_[y * width_ + x] = v;
  }

  /// Border-replicated ("clamp to edge") access; how the window FIFOs in
  /// the platform extend the image beyond its edges.
  [[nodiscard]] Pixel at_clamped(std::ptrdiff_t x, std::ptrdiff_t y) const {
    const auto cx = clamp_index(x, width_);
    const auto cy = clamp_index(y, height_);
    return data_[cy * width_ + cx];
  }

  /// Row-major backing store (for fast kernels and I/O).
  [[nodiscard]] const Pixel* data() const noexcept { return data_.data(); }
  [[nodiscard]] Pixel* data() noexcept { return data_.data(); }
  [[nodiscard]] const Pixel* row(std::size_t y) const {
    EHW_ASSERT(y < height_, "row out of bounds");
    return data_.data() + y * width_;
  }
  [[nodiscard]] Pixel* row(std::size_t y) {
    EHW_ASSERT(y < height_, "row out of bounds");
    return data_.data() + y * width_;
  }

  void fill(Pixel v) noexcept {
    for (auto& p : data_) p = v;
  }

  [[nodiscard]] bool same_shape(const Image& other) const noexcept {
    return width_ == other.width_ && height_ == other.height_;
  }

  friend bool operator==(const Image& a, const Image& b) noexcept {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.data_ == b.data_;
  }

 private:
  static std::size_t clamp_index(std::ptrdiff_t i, std::size_t n) noexcept {
    if (i < 0) return 0;
    if (static_cast<std::size_t>(i) >= n) return n - 1;
    return static_cast<std::size_t>(i);
  }

  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<Pixel> data_;
};

/// Gathers the 3x3 border-replicated window centred on (x, y) into `out`
/// in row-major order:
///   out[0] out[1] out[2]
///   out[3] out[4] out[5]     (out[4] is the centre pixel)
///   out[6] out[7] out[8]
/// This indexing is the contract between the platform's line FIFOs and the
/// array input muxes (each of the 8 array inputs selects one of these 9).
inline void gather_window3x3(const Image& src, std::size_t x, std::size_t y,
                             Pixel out[9]) {
  const auto ix = static_cast<std::ptrdiff_t>(x);
  const auto iy = static_cast<std::ptrdiff_t>(y);
  int k = 0;
  for (std::ptrdiff_t dy = -1; dy <= 1; ++dy) {
    for (std::ptrdiff_t dx = -1; dx <= 1; ++dx) {
      out[k++] = src.at_clamped(ix + dx, iy + dy);
    }
  }
}

}  // namespace ehw::img
