#pragma once
// 8-bit grayscale image container. This is the only data format the
// evolvable arrays process: the paper's system streams 8-bit pixels from
// flash/camera through 3x3 sliding windows into the arrays.
//
// Storage: row-major with the row stride padded up to a 64-byte multiple
// and the buffer allocated 64-byte aligned, so every row starts on its
// own cache line and the SIMD row kernels never issue a load that splits
// one. Padding bytes are kept at zero (and are never part of equality or
// content_hash), so images stay value-comparable. There is deliberately
// no flat data() accessor — iterate rows via row(y); the stride is an
// implementation detail callers must not bake in.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ehw/common/aligned.hpp"
#include "ehw/common/assert.hpp"
#include "ehw/common/rng.hpp"
#include "ehw/common/types.hpp"

namespace ehw::img {

class Image {
 public:
  Image() = default;

  /// Creates a width x height image filled with `fill`.
  Image(std::size_t width, std::size_t height, Pixel fill = 0)
      : width_(width),
        height_(height),
        stride_((width + kCacheLineBytes - 1) & ~(kCacheLineBytes - 1)),
        data_(stride_ * height) {
    EHW_REQUIRE(width > 0 && height > 0, "image dimensions must be positive");
    if (fill != 0) this->fill(fill);
  }

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  /// Logical pixels (padding excluded).
  [[nodiscard]] std::size_t pixel_count() const noexcept {
    return width_ * height_;
  }
  /// Bytes from one row's first pixel to the next row's (>= width; a
  /// 64-byte multiple). Exposed for kernels that walk rows by pointer.
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] Pixel at(std::size_t x, std::size_t y) const {
    EHW_ASSERT(x < width_ && y < height_, "pixel out of bounds");
    return data_[y * stride_ + x];
  }
  void set(std::size_t x, std::size_t y, Pixel v) {
    EHW_ASSERT(x < width_ && y < height_, "pixel out of bounds");
    data_[y * stride_ + x] = v;
  }

  /// Border-replicated ("clamp to edge") access; how the window FIFOs in
  /// the platform extend the image beyond its edges.
  [[nodiscard]] Pixel at_clamped(std::ptrdiff_t x, std::ptrdiff_t y) const {
    const auto cx = clamp_index(x, width_);
    const auto cy = clamp_index(y, height_);
    return data_[cy * stride_ + cx];
  }

  /// Row pointers (64-byte aligned; width() valid pixels each).
  [[nodiscard]] const Pixel* row(std::size_t y) const {
    EHW_ASSERT(y < height_, "row out of bounds");
    return data_.data() + y * stride_;
  }
  [[nodiscard]] Pixel* row(std::size_t y) {
    EHW_ASSERT(y < height_, "row out of bounds");
    return data_.data() + y * stride_;
  }

  void fill(Pixel v) noexcept {
    // Row spans only: inter-row padding stays zero so equality and
    // content_hash remain content-only.
    for (std::size_t y = 0; y < height_; ++y) {
      Pixel* r = data_.data() + y * stride_;
      for (std::size_t x = 0; x < width_; ++x) r[x] = v;
    }
  }

  [[nodiscard]] bool same_shape(const Image& other) const noexcept {
    return width_ == other.width_ && height_ == other.height_;
  }

  /// Stable 64-bit content hash over the shape and every pixel (row-major,
  /// padding excluded; SplitMix64-chained like evo::Genotype::hash). The
  /// fitness memo uses this as the frame-set identity, so equal images
  /// must hash equally on every host and build.
  [[nodiscard]] std::uint64_t content_hash() const noexcept {
    std::uint64_t h = 0x696D670000000001ULL;  // 'img' tag, arbitrary
    const auto mix = [&h](std::uint64_t v) noexcept {
      std::uint64_t s = h ^ (v * 0x9E3779B97F4A7C15ULL);
      h = splitmix64(s);
    };
    mix(width_);
    mix(height_);
    for (std::size_t y = 0; y < height_; ++y) {
      const Pixel* r = data_.data() + y * stride_;
      std::size_t x = 0;
      for (; x + 8 <= width_; x += 8) {
        std::uint64_t word = 0;
        for (std::size_t b = 0; b < 8; ++b) {
          word |= static_cast<std::uint64_t>(r[x + b]) << (8 * b);
        }
        mix(word);
      }
      if (x < width_) {
        std::uint64_t tail = 0;
        for (std::size_t b = 0; x + b < width_; ++b) {
          tail |= static_cast<std::uint64_t>(r[x + b]) << (8 * b);
        }
        mix(tail ^ (static_cast<std::uint64_t>(width_ - x) << 56));
      }
    }
    return h;
  }

  friend bool operator==(const Image& a, const Image& b) noexcept {
    // Padding is zero on both sides by construction, so the raw buffers
    // compare equal iff the visible pixels do.
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.data_ == b.data_;
  }

 private:
  static std::size_t clamp_index(std::ptrdiff_t i, std::size_t n) noexcept {
    if (i < 0) return 0;
    if (static_cast<std::size_t>(i) >= n) return n - 1;
    return static_cast<std::size_t>(i);
  }

  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::size_t stride_ = 0;
  std::vector<Pixel, AlignedAllocator<Pixel, kCacheLineBytes>> data_;
};

/// Gathers the 3x3 border-replicated window centred on (x, y) into `out`
/// in row-major order:
///   out[0] out[1] out[2]
///   out[3] out[4] out[5]     (out[4] is the centre pixel)
///   out[6] out[7] out[8]
/// This indexing is the contract between the platform's line FIFOs and the
/// array input muxes (each of the 8 array inputs selects one of these 9).
inline void gather_window3x3(const Image& src, std::size_t x, std::size_t y,
                             Pixel out[9]) {
  const auto ix = static_cast<std::ptrdiff_t>(x);
  const auto iy = static_cast<std::ptrdiff_t>(y);
  int k = 0;
  for (std::ptrdiff_t dy = -1; dy <= 1; ++dy) {
    for (std::ptrdiff_t dx = -1; dx <= 1; ++dx) {
      out[k++] = src.at_clamped(ix + dx, iy + dy);
    }
  }
}

}  // namespace ehw::img
