#include "ehw/img/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "ehw/common/rng.hpp"

namespace ehw::img {
namespace {

Pixel to_pixel(double v) noexcept {
  return static_cast<Pixel>(std::clamp(v, 0.0, 255.0));
}

struct Blob {
  double cx, cy, radius, amplitude;
};

struct Box {
  double x0, y0, x1, y1, value;
};

}  // namespace

Image make_scene(std::size_t width, std::size_t height, std::uint64_t seed) {
  Rng rng(seed);
  const auto w = static_cast<double>(width);
  const auto h = static_cast<double>(height);

  // 4-7 soft blobs, 3-5 hard boxes, one diagonal line.
  std::vector<Blob> blobs;
  const auto n_blobs = 4 + rng.below(4);
  for (std::uint64_t i = 0; i < n_blobs; ++i) {
    blobs.push_back(Blob{rng.uniform() * w, rng.uniform() * h,
                         (0.08 + 0.22 * rng.uniform()) * std::min(w, h),
                         40.0 + 70.0 * rng.uniform()});
  }
  std::vector<Box> boxes;
  const auto n_boxes = 3 + rng.below(3);
  for (std::uint64_t i = 0; i < n_boxes; ++i) {
    const double x0 = rng.uniform() * 0.8 * w;
    const double y0 = rng.uniform() * 0.8 * h;
    boxes.push_back(Box{x0, y0, x0 + (0.08 + 0.25 * rng.uniform()) * w,
                        y0 + (0.08 + 0.25 * rng.uniform()) * h,
                        rng.uniform() * 255.0});
  }
  const double grad_angle = rng.uniform() * 6.28318530717958647692;
  const double gx = std::cos(grad_angle), gy = std::sin(grad_angle);
  const double line_off = rng.uniform() * w;
  const std::uint64_t texture_salt = rng();

  Image image(width, height);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const auto fx = static_cast<double>(x);
      const auto fy = static_cast<double>(y);
      // Background gradient 60..160.
      double v = 110.0 + 50.0 * ((fx * gx + fy * gy) / (w + h) * 2.0 - 0.5);
      // Boxes overwrite (hard edges).
      for (const auto& b : boxes) {
        if (fx >= b.x0 && fx <= b.x1 && fy >= b.y0 && fy <= b.y1) {
          v = 0.35 * v + 0.65 * b.value;
        }
      }
      // Soft blobs add (smooth regions).
      for (const auto& b : blobs) {
        const double dx = fx - b.cx, dy = fy - b.cy;
        const double d2 = (dx * dx + dy * dy) / (b.radius * b.radius);
        if (d2 < 9.0) v += b.amplitude * std::exp(-d2);
      }
      // One thin bright diagonal line (stress for window muxes).
      if (std::abs(std::fmod(fx + fy + line_off, w) - w / 2.0) < 1.0) {
        v = 235.0;
      }
      // Deterministic +-6 texture derived from coordinates, not call order.
      const std::uint64_t hsh = hash_mix(texture_salt, x, y);
      v += static_cast<double>(hsh % 13) - 6.0;
      image.set(x, y, to_pixel(v));
    }
  }
  return image;
}

Image make_gradient(std::size_t width, std::size_t height, Pixel from,
                    Pixel to) {
  Image image(width, height);
  const double step =
      width > 1 ? (static_cast<double>(to) - from) / static_cast<double>(width - 1)
                : 0.0;
  for (std::size_t x = 0; x < width; ++x) {
    const Pixel v = to_pixel(from + step * static_cast<double>(x));
    for (std::size_t y = 0; y < height; ++y) image.set(x, y, v);
  }
  return image;
}

Image make_checkerboard(std::size_t width, std::size_t height,
                        std::size_t tile, Pixel dark, Pixel bright) {
  EHW_REQUIRE(tile > 0, "tile size must be positive");
  Image image(width, height);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const bool on = ((x / tile) + (y / tile)) % 2 == 0;
      image.set(x, y, on ? bright : dark);
    }
  }
  return image;
}

Image make_constant(std::size_t width, std::size_t height, Pixel value) {
  return Image(width, height, value);
}

Image make_calibration_pattern(std::size_t width, std::size_t height) {
  // Left half: horizontal ramp (exercises smooth propagation).
  // Right half: tile-4 checkerboard (exercises min/max/threshold paths).
  Image image(width, height);
  const std::size_t half = width / 2;
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      Pixel v;
      if (x < half || half == 0) {
        v = static_cast<Pixel>((x * 255) / std::max<std::size_t>(1, width - 1));
      } else {
        v = (((x / 4) + (y / 4)) % 2 == 0) ? Pixel{224} : Pixel{32};
      }
      image.set(x, y, v);
    }
  }
  return image;
}

}  // namespace ehw::img
