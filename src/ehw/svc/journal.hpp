#pragma once
// MissionJournal — the daemon's persistent append-only job log.
//
// One directory holds everything a daemon incarnation needs to survive a
// crash:
//   journal.jsonl   append-only NDJSON records, one per line:
//                     {"rec":"submitted","v":1,"job":N,"spec":{...}}
//                     {"rec":"started","job":N}
//                     {"rec":"finished","job":N,"status":...,"waves":N,
//                      "result":{...}}
//                   Spec payloads are the submit vocabulary
//                   (svc::spec_to_json), result payloads the result
//                   vocabulary (svc::outcome_to_json) — replay re-serves
//                   finished results byte-comparably.
//   job-<id>.ckpt   latest mission checkpoint of an in-flight job
//                   (sched checkpoint-store format), deleted on finish.
//   warm.json       FitnessMemo + compiled-cache recipes, written on
//                   graceful stop (sched::ArrayPool warm state).
//
// Appends are fsync'd per record: "submitted" is a write-ahead record (a
// crash right after the ack still resubmits on restart), "finished" is
// the commit point after which replay re-serves instead of re-running.
// Replay tolerates a torn tail — a kill -9 mid-append truncates at most
// the final line, which parses as corrupt and is counted, never fatal.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "ehw/common/json.hpp"

namespace ehw::svc {

class MissionJournal {
 public:
  /// Opens `dir`/journal.jsonl for appending, creating the directory on
  /// demand. Throws std::runtime_error when the directory or file cannot
  /// be created.
  explicit MissionJournal(std::string dir);
  ~MissionJournal();

  MissionJournal(const MissionJournal&) = delete;
  MissionJournal& operator=(const MissionJournal&) = delete;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Appends one record as a single NDJSON line and fsyncs it. Safe from
  /// any thread. Returns false (once) when the write failed — the daemon
  /// keeps serving, degraded to non-durable.
  bool append(const Json& record);

  /// Records appended by THIS incarnation.
  [[nodiscard]] std::uint64_t appended() const;

  /// Sidecar paths inside the journal directory.
  [[nodiscard]] std::string checkpoint_path(std::uint64_t job_id) const;
  [[nodiscard]] std::string warm_path() const;
  /// Same sidecar naming without opening the journal — how the forwarder
  /// reads a DEAD backend's checkpoint for failover (the backend's
  /// journal dir must be readable from the forwarder host; loopback or
  /// shared-filesystem deployments).
  [[nodiscard]] static std::string checkpoint_path_in(const std::string& dir,
                                                      std::uint64_t job_id);

  /// Everything read back from a journal directory.
  struct Replay {
    std::vector<Json> records;  // parseable records, file order
    /// Unparsable non-tail lines (bit rot, manual edits).
    std::size_t corrupt = 0;
    /// The FINAL line was unparsable — the signature of a crash
    /// mid-append; at most one record (not yet acked durable) is lost.
    bool truncated_tail = false;
  };
  /// Reads `dir`/journal.jsonl; a missing directory or file replays
  /// empty (a fresh journal), never errors.
  [[nodiscard]] static Replay replay(const std::string& dir);

 private:
  std::string dir_;
  int fd_ = -1;
  mutable std::mutex mutex_;
  std::uint64_t appended_ = 0;
};

}  // namespace ehw::svc
