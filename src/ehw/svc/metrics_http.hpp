#pragma once
// svc::MetricsHttp — a minimal HTTP/1.0 responder that serves the
// Prometheus text exposition of an obs::Registry, the network face of
// `mpa serve --metrics-port` / `mpa forward --metrics-port`.
//
// Scope matches a scrape target and nothing more: every accepted
// connection gets one 200 response with the producer's current text and
// is closed (Connection: close), whatever the request line says — GET /,
// GET /metrics and a bare netcat probe all work. The producer callback
// runs on the endpoint's own thread; it typically refreshes scrape-time
// gauges (pool depths, steal counts, poll ages) before rendering.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "ehw/svc/socket.hpp"

namespace ehw::svc {

class MetricsHttp {
 public:
  /// Binds `address`:`port` (0 = ephemeral) and starts serving. Throws
  /// std::runtime_error when the endpoint cannot be bound.
  MetricsHttp(const std::string& address, std::uint16_t port,
              std::function<std::string()> producer);
  ~MetricsHttp();

  MetricsHttp(const MetricsHttp&) = delete;
  MetricsHttp& operator=(const MetricsHttp&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Stops accepting and joins the serving thread. Idempotent.
  void stop();

 private:
  void loop();

  std::unique_ptr<Listener> listener_;
  std::uint16_t port_ = 0;
  std::function<std::string()> producer_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace ehw::svc
