#include "ehw/svc/protocol.hpp"

#include <cstdio>

#include "ehw/common/rng.hpp"

namespace ehw::svc {
namespace {

/// Stringifies a JSON scalar into the manifest value vocabulary so the
/// shared sched::apply_spec_option performs ALL interpretation (one
/// validation path for manifest lines and submit payloads).
std::string scalar_to_option_value(const Json& value, bool& ok) {
  ok = true;
  if (value.is_string()) return value.as_string();
  if (value.is_bool()) return value.as_bool() ? "1" : "0";
  if (value.is_number()) {
    char buf[32];
    const double n = value.as_number();
    if (json_number_is_exact_int(n) && n >= 0) {
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(n));
    } else {
      std::snprintf(buf, sizeof buf, "%.17g", n);
    }
    return buf;
  }
  ok = false;
  return {};
}

}  // namespace

const char* status_name(sched::JobStatus status) noexcept {
  switch (status) {
    case sched::JobStatus::kQueued: return "queued";
    case sched::JobStatus::kRunning: return "running";
    case sched::JobStatus::kDone: return "done";
    case sched::JobStatus::kFailed: return "failed";
    case sched::JobStatus::kCancelled: return "cancelled";
  }
  return "?";
}

std::string hash_hex(std::uint64_t value) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

Json spec_to_json(const sched::MissionSpec& spec) {
  Json payload = Json::object();
  payload.set("kind", sched::kind_name(spec.kind));
  payload.set("name", spec.name);
  payload.set("lanes", static_cast<std::uint64_t>(spec.lanes));
  payload.set("priority", spec.priority);
  payload.set("generations", static_cast<std::uint64_t>(spec.generations));
  payload.set("size", static_cast<std::uint64_t>(spec.size));
  payload.set("noise", spec.noise);
  payload.set("rate", static_cast<std::uint64_t>(spec.mutation_rate));
  payload.set("lambda", static_cast<std::uint64_t>(spec.lambda));
  // Seeds are full 64-bit values; as JSON numbers they would round at
  // 2^53 and silently change the mission. Strings keep them bit-exact
  // (apply_spec_option parses decimal strings natively).
  payload.set("seed", std::to_string(spec.seed));
  payload.set("scene-seed", std::to_string(spec.scene_seed));
  payload.set("two-level", spec.two_level);
  payload.set("merged", spec.merged_fitness);
  payload.set("interleaved", spec.interleaved);
  return payload;
}

std::string spec_from_json(const Json& payload, sched::MissionSpec& spec) {
  if (!payload.is_object()) return "spec must be a JSON object";
  bool saw_kind = false;
  for (const auto& [key, value] : payload.as_object()) {
    if (key == "kind") {
      if (!value.is_string() || !sched::parse_kind(value.as_string(),
                                                   spec.kind)) {
        return "unknown mission kind '" +
               (value.is_string() ? value.as_string() : value.dump()) + "'";
      }
      saw_kind = true;
      continue;
    }
    if (key == "name") {
      if (!value.is_string()) return "mission name must be a string";
      spec.name = value.as_string();
      continue;
    }
    bool scalar = false;
    const std::string text = scalar_to_option_value(value, scalar);
    if (!scalar) return "value for '" + key + "' must be a scalar";
    const std::string error = sched::apply_spec_option(spec, key, text);
    if (!error.empty()) return error;
  }
  if (!saw_kind) return "spec is missing 'kind'";
  return sched::validate_spec(spec);
}

Json outcome_to_json(sched::MissionKind kind, sched::JobStatus status,
                     const sched::JobOutcome& outcome) {
  Json result = Json::object();
  result.set("status", status_name(status));
  if (!outcome.error.empty()) result.set("error", outcome.error);
  result.set("cache_hits", outcome.stats.cache_hits);
  result.set("cache_misses", outcome.stats.cache_misses);
  if (status != sched::JobStatus::kDone) return result;

  result.set("sim_ns",
             std::to_string(outcome.stats.mission_time));  // bit-exact
  result.set("sim_s", sim::to_seconds(outcome.stats.mission_time));
  if (kind == sched::MissionKind::kCascade) {
    result.set("best_fitness",
               static_cast<std::uint64_t>(outcome.cascade.chain_fitness));
    std::uint64_t chain_hash = 0;
    Json stages = Json::array();
    for (const platform::CascadeStageOutcome& stage :
         outcome.cascade.stages) {
      const std::uint64_t stage_hash = stage.best.hash();
      chain_hash = hash_mix(chain_hash, stage_hash);
      Json entry = Json::object();
      entry.set("fitness", static_cast<std::uint64_t>(stage.stage_fitness));
      entry.set("genotype_hash", hash_hex(stage_hash));
      stages.push_back(std::move(entry));
    }
    result.set("genotype_hash", hash_hex(chain_hash));
    result.set("stages", std::move(stages));
  } else {
    result.set("generations",
               static_cast<std::uint64_t>(outcome.intrinsic.es.generations_run));
    result.set("best_fitness",
               static_cast<std::uint64_t>(outcome.intrinsic.es.best_fitness));
    result.set("genotype_hash", hash_hex(outcome.intrinsic.es.best.hash()));
    result.set("pe_writes", outcome.intrinsic.pe_writes);
  }
  return result;
}

Json make_ok() {
  Json response = Json::object();
  response.set("ok", true);
  return response;
}

Json make_error(const std::string& message, const std::string& code) {
  Json response = Json::object();
  response.set("ok", false);
  response.set("error", message);
  if (!code.empty()) response.set("code", code);
  return response;
}

}  // namespace ehw::svc
